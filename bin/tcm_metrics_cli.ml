(** Analyze and convert tcm.metrics dumps (JSONL, as written by
    [bench/main.exe --metrics] or [Tcm_metrics.Export.write_jsonl]). *)

open Cmdliner

let load path =
  try Tcm_metrics.Export.read_jsonl path
  with
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

let file_arg =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"METRICS" ~doc:"Metrics dump (JSONL).")

(* report: the contention health table — one row per (manager, runtime)
   pair present in the snapshot. *)
let report path =
  let snap, _ = load path in
  let rows = Tcm_metrics.Health.rows snap in
  if rows = [] then begin
    Printf.eprintf "error: no %s series in %s (was the run captured with metrics enabled?)\n"
      Tcm_metrics.Conventions.n_attempts path;
    exit 1
  end;
  Tcm_metrics.Health.pp Format.std_formatter rows

(* prom: JSONL -> Prometheus text, then parse the result back as a
   self-check so a formatting regression fails loudly here rather than
   in whatever scrapes the file. *)
let prom path out =
  let snap, _ = load path in
  let text = Tcm_metrics.Export.to_prometheus snap in
  let samples =
    try Tcm_metrics.Export.parse_prometheus text
    with Failure msg ->
      Printf.eprintf "error: emitted Prometheus text does not parse back: %s\n" msg;
      exit 1
  in
  let oc = open_out out in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s (%d samples from %d series; parse-back OK)\n" out
    (List.length samples)
    (List.length snap.Tcm_metrics.Snapshot.entries)

let out_arg =
  Arg.(
    value
    & opt string "metrics.prom"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

(* series: the sampler's throughput-over-time windows for one counter,
   rendered as rate per second per label set. *)
let series path name =
  let _, windows = load path in
  let matching =
    List.filter (fun (w : Tcm_metrics.Sampler.window) -> w.w_name = name) windows
  in
  if matching = [] then begin
    Printf.eprintf "error: no windows for %s in %s (known: %s)\n" name path
      (String.concat ", "
         (List.sort_uniq compare
            (List.map (fun (w : Tcm_metrics.Sampler.window) -> w.w_name) windows)));
    exit 1
  end;
  let t0 =
    List.fold_left
      (fun acc (w : Tcm_metrics.Sampler.window) -> Float.min acc w.w_t0)
      infinity matching
  in
  Printf.printf "%-8s %-8s %8s %12s  %s\n" "t0(s)" "t1(s)" "delta" "rate(/s)" "labels";
  List.iter
    (fun (w : Tcm_metrics.Sampler.window) ->
      let dt = w.w_t1 -. w.w_t0 in
      Printf.printf "%8.3f %8.3f %8d %12.0f  %s\n" (w.w_t0 -. t0) (w.w_t1 -. t0) w.w_delta
        (if dt > 0. then float_of_int w.w_delta /. dt else 0.)
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) w.w_labels)))
    matching

let name_arg =
  Arg.(
    value
    & opt string Tcm_metrics.Conventions.n_commits
    & info [ "name" ] ~docv:"METRIC" ~doc:"Counter to render (default: commits).")

let cmds =
  [
    Cmd.v
      (Cmd.info "report"
         ~doc:"Contention health table: abort/commit ratio, wasted work, latency and wait \
               percentiles, resolve verdicts per manager.")
      Term.(const report $ file_arg);
    Cmd.v
      (Cmd.info "prom"
         ~doc:"Convert a JSONL dump to Prometheus text exposition format (with parse-back \
               self-check).")
      Term.(const prom $ file_arg $ out_arg);
    Cmd.v
      (Cmd.info "series" ~doc:"Throughput-over-time windows of one counter.")
      Term.(const series $ file_arg $ name_arg);
  ]

let () =
  let doc = "Analyze tcm.metrics dumps." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-metrics" ~doc) cmds))
