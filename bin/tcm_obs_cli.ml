(** Inspect tcm.obs artifacts: flight-recorder bundles (as written by
    [tcm_service.exe run --flight-dir]) and priced conflict scores over
    tcm.trace dumps.

    [report] renders a bundle — or every bundle under a directory —
    as the ledger / hot-key / event summary it froze; [price] scores a
    trace dump (or a bundle's embedded events) in the Alistarh et al.
    cost model; [hot] prints just the hot-key tables; [replay]
    re-emits a bundle's events as a plain tcm-trace/1 JSONL file so
    the tcm_trace.exe analyzers can chew on them. *)

open Cmdliner
module Flight = Tcm_obs.Flight
module Ledger = Tcm_obs.Ledger
module Hot = Tcm_obs.Hot

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2)
    fmt

(* A positional argument that may name one bundle or a directory of
   them (the --flight-dir of a service run). *)
let bundle_paths path =
  if Sys.is_directory path then (
    match Flight.bundles path with
    | [] -> fail "%s: no flight-*.jsonl bundles" path
    | ps -> ps)
  else [ path ]

let load_bundle path =
  try Flight.read_bundle path with
  | Sys_error msg -> fail "%s" msg
  | Failure msg -> fail "%s: %s" path msg

let pp_bundle ppf (path, (b : Flight.bundle)) =
  Format.fprintf ppf "@[<v>bundle   %s@," path;
  Format.fprintf ppf "tag      %s@," b.b_tag;
  Format.fprintf ppf "trigger  %s@," b.b_trigger;
  Format.fprintf ppf "unix_ms  %d@," b.b_unix_ms;
  Format.fprintf ppf "events   %d%s@,"
    (Array.length b.b_events)
    (if b.b_drops > 0 then Printf.sprintf " (+%d dropped)" b.b_drops else "");
  if b.b_ledger <> [] then Format.fprintf ppf "%a" Ledger.pp b.b_ledger;
  if b.b_hot <> [] then Format.fprintf ppf "%a" (Hot.pp ?n:None) b.b_hot;
  Format.fprintf ppf "@]"

let report path =
  let bundles = List.map (fun p -> (p, load_bundle p)) (bundle_paths path) in
  List.iter (fun b -> Format.printf "%a@." pp_bundle b) bundles;
  Printf.printf "%d bundle(s)\n" (List.length bundles)

let path_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BUNDLE" ~doc:"A flight bundle, or a directory of them.")

(* price: accept either a plain trace dump or a flight bundle — the
   latter is detected by its schema header. *)
let is_flight path =
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  let needle = Printf.sprintf "%S" Flight.schema in
  let n = String.length needle and l = String.length line in
  let rec scan i = i + n <= l && (String.sub line i n = needle || scan (i + 1)) in
  scan 0

let price path =
  let score name events =
    Format.printf "%s:@.%a" name Tcm_trace.Analysis.pp_price
      (Tcm_trace.Analysis.price events)
  in
  if Sys.is_directory path then
    List.iter
      (fun p -> score p (load_bundle p).b_events)
      (bundle_paths path)
  else if is_flight path then score path (load_bundle path).b_events
  else
    let events =
      try fst (Tcm_trace.Export.read_jsonl path) with
      | Sys_error msg -> fail "%s" msg
      | Failure msg -> fail "%s: %s" path msg
    in
    score path events

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE"
        ~doc:"A tcm-trace/1 dump, a flight bundle, or a directory of bundles.")

let hot n path =
  let bundles = List.map load_bundle (bundle_paths path) in
  List.iter
    (fun (b : Flight.bundle) ->
      if b.b_hot <> [] then Format.printf "%a@." (Hot.pp ~n) b.b_hot)
    bundles

let n_arg =
  Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Keys per family to print.")

let replay path out =
  let b = load_bundle path in
  Tcm_trace.Export.write_jsonl ~drops:b.b_drops ~manager:b.b_tag out b.b_events;
  Printf.printf "wrote %s (%d events, %d drops; feed to tcm_trace.exe)\n" out
    (Array.length b.b_events) b.b_drops

let out_arg =
  Arg.(
    value
    & opt string "flight_replay.jsonl"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let cmds =
  [
    Cmd.v
      (Cmd.info "report"
         ~doc:"Render flight bundle(s): trigger, ledger rows, hot keys, event counts.")
      Term.(const report $ path_arg);
    Cmd.v
      (Cmd.info "price"
         ~doc:
           "Score a trace (or a bundle's events) in the Alistarh et al. cost \
            model: wasted work + wait cost per commit.")
      Term.(const price $ trace_arg);
    Cmd.v
      (Cmd.info "hot" ~doc:"Print the hot-key tables of flight bundle(s).")
      Term.(const hot $ n_arg $ path_arg);
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Re-emit a bundle's events as a plain tcm-trace/1 JSONL dump.")
      Term.(const replay $ path_arg $ out_arg);
  ]

let () =
  let doc = "Inspect tcm.obs flight bundles and priced conflict scores." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-obs" ~doc) cmds))
