(** Drive the tcm.service open-loop KV engine from the command line,
    and validate bench JSON dumps that carry service figures.

    [run] executes one service instance (backend x manager x arrival
    process) and prints the per-class SLO summary; with [--flight-dir]
    it also arms the tcm.obs flight recorder and dumps breach bundles.
    [validate] checks a [bench/main.exe --json] dump: schema
    tcm-bench/4 .. /7 with at least one [kind = "service"] figure
    whose per-class entries carry the SLO and latency fields; with
    [--store N] it additionally builds an N-key store via the direct
    preload path, spot-checks it transactionally on both backends, and
    verifies the preload is measurably faster per key than the
    transactional reference build.  [ladder] runs the offered-load
    rate ladder on both backends; [--check] turns it into the smoke
    gate (knee detected on each backend, exact admission conservation
    on every rung, an allocation-free generator, and the sharded
    admission queue beating the single-mutex baseline). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let backend_of_string = function
  | "locator" -> Tcm_stm.Stm.Locator
  | "tl2" -> Tcm_stm.Stm.Tl2_backend
  | b ->
      Printf.eprintf "error: --backend must be locator or tl2, got %S\n" b;
      exit 2

let manager_of_string name =
  match Tcm_core.Registry.find name with
  | Some m -> m
  | None ->
      Printf.eprintf "error: unknown manager %S (known: %s)\n" name
        (String.concat ", "
           (List.map Tcm_stm.Cm_intf.name Tcm_core.Registry.all));
      exit 2

let run backend manager duration rate burst_rate burst_period burst_frac
    workers queue_cap n_keys theta seed flight_dir slo_scale =
  let process =
    match burst_rate with
    | None -> Tcm_service.Arrival.Poisson { rate }
    | Some burst_rate ->
        Tcm_service.Arrival.Bursty
          { base_rate = rate; burst_rate; period_s = burst_period; burst_frac }
  in
  let flight =
    Option.map
      (fun dir ->
        Tcm_obs.Flight.create ~dir ~tag:(backend ^ "-" ^ manager) ())
      flight_dir
  in
  let cfg =
    {
      Tcm_service.Service.default with
      backend = backend_of_string backend;
      manager = manager_of_string manager;
      duration_s = duration;
      process;
      workers;
      queue_cap;
      n_keys;
      theta;
      seed;
      slo_us =
        Array.map
          (fun s -> s *. slo_scale)
          Tcm_service.Service.default.slo_us;
      flight;
    }
  in
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  if flight <> None then (
    Tcm_obs.reset ();
    Tcm_obs.enable ());
  let s = Tcm_service.Service.run cfg in
  Format.printf "%a@." Tcm_service.Service.pp_summary s;
  Tcm_metrics.Health.pp_slo Format.std_formatter
    (Tcm_metrics.Health.slo_rows (Tcm_metrics.snapshot ()));
  (match flight with
  | None -> ()
  | Some f ->
      (* Flush the final window so a breach-free run still leaves one
         bundle to inspect, then show what the ledger saw. *)
      Tcm_obs.Flight.force f ~trigger:"run_end";
      Format.printf "%a" Tcm_obs.Ledger.pp (Tcm_obs.Ledger.rows ());
      Format.printf "%a" (Tcm_obs.Hot.pp ?n:None) (Tcm_obs.Hot.top ());
      Printf.printf "flight: %d bundle(s) in %s\n" (Tcm_obs.Flight.count f)
        (Tcm_obs.Flight.dir f);
      Tcm_obs.disable ());
  Tcm_metrics.disable ()

let backend_arg =
  Arg.(
    value & opt string "locator"
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"Runtime backend (locator or tl2).")

let manager_arg =
  Arg.(
    value & opt string "greedy"
    & info [ "manager" ] ~docv:"CM" ~doc:"Contention manager (registry name).")

let duration_arg =
  Arg.(
    value & opt float 0.5
    & info [ "duration" ] ~docv:"S" ~doc:"Traffic duration in seconds.")

let rate_arg =
  Arg.(
    value & opt float 2_000.
    & info [ "rate" ] ~docv:"RPS"
        ~doc:"Arrival rate (Poisson; the base rate when bursty).")

let burst_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "burst-rate" ] ~docv:"RPS"
        ~doc:"Enable bursty on/off arrivals with this peak rate.")

let burst_period_arg =
  Arg.(
    value & opt float 0.2
    & info [ "burst-period" ] ~docv:"S" ~doc:"Bursty on/off cycle length.")

let burst_frac_arg =
  Arg.(
    value & opt float 0.25
    & info [ "burst-frac" ] ~docv:"F"
        ~doc:"Fraction of each cycle spent at the burst rate.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")

let queue_cap_arg =
  Arg.(
    value & opt int 512
    & info [ "queue-cap" ] ~docv:"N" ~doc:"Admission-queue capacity (sheds beyond).")

let n_keys_arg =
  Arg.(value & opt int 8_192 & info [ "keys" ] ~docv:"N" ~doc:"Keyspace size.")

let theta_arg =
  Arg.(
    value & opt float 0.9
    & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew, 0 <= T < 1 (0 = uniform).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let flight_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Arm the SLO-breach flight recorder: enable tcm.obs for the run \
           and write breach bundles (plus a final run_end bundle) to $(docv); \
           inspect them with tcm_obs.exe report.")

let slo_scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "slo-scale" ] ~docv:"F"
        ~doc:
          "Scale every class SLO by $(docv) (e.g. 0.01 tightens them 100x to \
           force breaches — the smoke test's trick).")

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

module Json = Tcm_workload.Report.Json

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "error: %s\n" msg; exit 1) fmt

(* The per-class fields a tcm-bench/4 service figure must carry. *)
let class_fields =
  [
    "class"; "submitted"; "completed"; "dropped"; "slo_us"; "slo_ok";
    "slo_attainment"; "latency_p50_us"; "latency_p99_us";
  ]

let check_service_figure j =
  let str k = match Json.member k j with Some (Json.Str s) -> s | _ -> fail "service figure missing %S" k in
  let backend = str "backend" in
  let manager = str "manager" in
  let classes =
    match Json.member "classes" j with
    | Some (Json.Arr cs) when cs <> [] -> cs
    | _ -> fail "service figure %s/%s has no classes" backend manager
  in
  List.iter
    (fun c ->
      List.iter
        (fun k ->
          if Json.member k c = None then
            fail "service figure %s/%s: class entry missing %S" backend manager k)
        class_fields)
    classes;
  (backend, manager)

let validate_dump path =
  let j =
    try Json.of_string (String.trim (read_file path))
    with Json.Parse_error msg -> fail "%s: %s" path msg
  in
  (* Service figures exist from tcm-bench/4 on; later versions only
     add fields and figure kinds. *)
  let service_schemas =
    [ "tcm-bench/4"; "tcm-bench/5"; "tcm-bench/6"; "tcm-bench/7" ]
  in
  (match Tcm_workload.Report.bench_schema_of j with
  | Error msg -> fail "%s: %s" path msg
  | Ok s when not (List.mem s service_schemas) ->
      fail "%s: schema %s carries no service figures (need one of %s)" path s
        (String.concat ", " service_schemas)
  | Ok _ -> ());
  let figures =
    match Json.member "figures" j with
    | Some (Json.Arr fs) -> fs
    | _ -> fail "%s: missing figures array" path
  in
  let kind_of f =
    match Json.member "kind" f with Some (Json.Str k) -> k | _ -> fail "figure entry missing \"kind\""
  in
  let services = List.filter (fun f -> kind_of f = "service") figures in
  if services = [] then fail "%s: no kind=\"service\" figure entries" path;
  let pairs = List.map check_service_figure services in
  let uniq l = List.sort_uniq compare l in
  let schema =
    match Tcm_workload.Report.bench_schema_of j with Ok s -> s | Error _ -> "?"
  in
  Printf.printf
    "%s: OK (%s; %d figure entries, %d service: %d backend(s) x %d manager(s))\n"
    path schema (List.length figures)
    (List.length services)
    (List.length (uniq (List.map fst pairs)))
    (List.length (uniq (List.map snd pairs)))

(* ------------------------------------------------------------------ *)
(* validate --store: end-to-end million-key store check                *)
(* ------------------------------------------------------------------ *)

(* Build an [n]-key store through the direct (non-transactional)
   preload path, spot-check it transactionally on both backends, and
   verify the preload is measurably faster per key than the
   transactional reference build it replaced. *)
let validate_store n =
  if n < 1 then fail "--store requires a positive key count, got %d" n;
  let manager = manager_of_string "greedy" in
  let spot_checks backend =
    let t0 = Unix.gettimeofday () in
    let store = Tcm_service.Store.create ~n_keys:n () in
    Tcm_service.Store.preload store;
    let preload_s = Unix.gettimeofday () -. t0 in
    let rt = Tcm_stm.Stm.create ~backend manager in
    let name = Tcm_stm.Stm.backend_name backend in
    let get k =
      Tcm_stm.Stm.atomically rt (fun tx -> Tcm_service.Store.get tx store k)
    in
    let rng = Tcm_stm.Splitmix.create (0x5707 + n) in
    (* Point lookups: boundaries, a random sample, and one past the
       keyspace (preload stores value = key). *)
    List.iter
      (fun k ->
        match get k with
        | Some v when v = k -> ()
        | Some v -> fail "%s: get %d returned %d (expected %d)" name k v k
        | None -> fail "%s: get %d returned None after preload" name k)
      (0 :: (n - 1) :: List.init 64 (fun _ -> Tcm_stm.Splitmix.int rng n));
    if get n <> None then fail "%s: get %d (out of range) returned a binding" name n;
    (* Ordered scans through the skiplist index: [len] consecutive keys
       from a random base must come back complete and correctly
       summed. *)
    for _ = 1 to 16 do
      let len = 64 in
      let lo = Tcm_stm.Splitmix.int rng (max 1 (n - len)) in
      let count, sum =
        Tcm_stm.Stm.atomically rt (fun tx ->
            Tcm_service.Store.scan tx store ~lo ~len)
      in
      let want = min len (n - lo) in
      let want_sum = ((lo + lo + want - 1) * want) / 2 in
      if count <> want || sum <> want_sum then
        fail "%s: scan lo=%d len=%d returned (%d, %d), expected (%d, %d)" name
          lo len count sum want want_sum
    done;
    (* A read-modify-write through the hashmap write path. *)
    let k = Tcm_stm.Splitmix.int rng n in
    Tcm_stm.Stm.atomically rt (fun tx ->
        Tcm_service.Store.rmw tx store k (Option.map (fun v -> v + 1)));
    (match get k with
    | Some v when v = k + 1 -> ()
    | v ->
        fail "%s: rmw at %d not visible (got %s)" name k
          (match v with Some v -> string_of_int v | None -> "None"));
    Printf.printf
      "  %-8s preload %.3fs (%.0f keys/s); point/scan/rmw spot checks OK\n"
      name preload_s
      (float_of_int n /. preload_s);
    preload_s
  in
  List.iter (fun b -> ignore (spot_checks b)) Tcm_stm.Stm.all_backends;
  (* Per-key rate comparison against the transactional reference
     build, both paths building a store of the same size (a slice of
     the keyspace: the full transactional build would dominate the CI
     budget). *)
  let ref_n = min n 20_000 in
  let pre_store = Tcm_service.Store.create ~n_keys:ref_n () in
  let t0 = Unix.gettimeofday () in
  Tcm_service.Store.preload pre_store;
  let preload_s = Unix.gettimeofday () -. t0 in
  let ref_store = Tcm_service.Store.create ~n_keys:ref_n () in
  let rt = Tcm_stm.Stm.create manager in
  let t1 = Unix.gettimeofday () in
  Tcm_service.Store.prefill rt ref_store;
  let prefill_s = Unix.gettimeofday () -. t1 in
  let per_key_pre = preload_s /. float_of_int ref_n in
  let per_key_txn = prefill_s /. float_of_int ref_n in
  Printf.printf
    "  preload %.0f ns/key vs transactional build %.0f ns/key (%.1fx)\n"
    (per_key_pre *. 1e9) (per_key_txn *. 1e9)
    (per_key_txn /. per_key_pre);
  if per_key_pre *. 2. > per_key_txn then
    fail
      "preload not measurably faster than the transactional build \
       (%.0f ns/key vs %.0f ns/key; need >= 2x)"
      (per_key_pre *. 1e9) (per_key_txn *. 1e9);
  Printf.printf "store: OK (%d keys on %d backend(s))\n" n
    (List.length Tcm_stm.Stm.all_backends)

let validate path store =
  (match path with Some p -> validate_dump p | None -> ());
  (match store with Some n -> validate_store n | None -> ());
  if path = None && store = None then
    fail "nothing to validate: pass a BENCH_JSON file and/or --store N"

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"BENCH_JSON" ~doc:"Bench dump to validate.")

let store_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "store" ] ~docv:"N"
        ~doc:
          "Also validate an $(docv)-key store end-to-end: direct preload, \
           transactional spot checks on both backends, and the \
           preload-vs-transactional-build speed gate.")

(* ------------------------------------------------------------------ *)
(* ladder                                                              *)
(* ------------------------------------------------------------------ *)

(* Producer-side push+pop cost through the sharded admission queue vs
   the retired single-mutex ring, per op, best of [trials].  Run with
   [shards] shards so the round-robin dispatch and per-shard ring
   arithmetic are on the measured path (>= 4 matches the gated worker
   count); each push is drained immediately, so occupancy stays at one
   and the comparison isolates the admission cost itself. *)
let queue_ab ~shards ~ops ~trials =
  let best f =
    let b = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      f ();
      b := Float.min !b (Unix.gettimeofday () -. t0)
    done;
    !b
  in
  let sharded =
    best (fun () ->
        let q = Tcm_service.Squeue.create ~shards 1024 in
        for i = 0 to ops - 1 do
          ignore (Tcm_service.Squeue.try_push q i);
          ignore
            (Tcm_service.Squeue.pop q ~shard:(Tcm_service.Squeue.last_shard q))
        done)
  in
  let mutex =
    best (fun () ->
        let q = Tcm_service.Squeue.Single_mutex.create 1024 in
        for i = 0 to ops - 1 do
          ignore (Tcm_service.Squeue.Single_mutex.try_push q i);
          ignore (Tcm_service.Squeue.Single_mutex.pop q)
        done)
  in
  (sharded /. float_of_int ops *. 1e9, mutex /. float_of_int ops *. 1e9)

let ladder manager duration rates workers queue_cap n_keys theta seed check =
  let manager = manager_of_string manager in
  let rates =
    match rates with
    | [] -> Tcm_service.Ladder.quick_rates
    | rs -> Array.of_list rs
  in
  let failures = ref [] in
  let gate fmt =
    Printf.ksprintf
      (fun msg ->
        failures := msg :: !failures;
        Printf.printf "  GATE VIOLATION: %s\n" msg)
      fmt
  in
  Printf.printf "%-8s %10s %12s %12s %12s %9s %8s %10s\n" "backend" "rps"
    "attainment" "p50 (us)" "p99 (us)" "dropped" "spills" "gen w/req";
  List.iter
    (fun backend ->
      let cfg =
        {
          Tcm_service.Service.default with
          backend;
          manager;
          duration_s = duration;
          workers;
          queue_cap;
          n_keys;
          theta;
          seed;
        }
      in
      let c = Tcm_service.Ladder.run ~rates cfg in
      List.iter
        (fun (r : Tcm_service.Ladder.rung) ->
          let s = r.Tcm_service.Ladder.summary in
          let open Tcm_service.Service in
          Printf.printf "%-8s %10.0f %11.1f%% %12.1f %12.1f %9d %8d %10.1f\n"
            c.Tcm_service.Ladder.backend r.Tcm_service.Ladder.offered_rps
            (100. *. Tcm_service.Ladder.attainment s)
            s.p50_us s.p99_us s.dropped s.queue_spills
            s.gen_minor_words_per_req;
          if check then begin
            (* Exact admission conservation on every rung: nothing the
               generator produced may go unaccounted. *)
            if s.submitted <> s.completed + s.dropped then
              gate "%s @ %.0f rps: submitted %d <> completed %d + dropped %d"
                c.Tcm_service.Ladder.backend r.Tcm_service.Ladder.offered_rps
                s.submitted s.completed s.dropped;
            (* The precomputed-schedule generator must not allocate per
               request (clock reads only; the budget is words, not
               bytes, and leaves room for boxing in the timer calls). *)
            if Float.is_finite s.gen_minor_words_per_req
               && s.gen_minor_words_per_req > 32.
            then
              gate "%s @ %.0f rps: generator allocates %.1f minor words/request"
                c.Tcm_service.Ladder.backend r.Tcm_service.Ladder.offered_rps
                s.gen_minor_words_per_req
          end)
        c.Tcm_service.Ladder.rungs;
      (match c.Tcm_service.Ladder.knee_rps with
      | Some r ->
          Printf.printf "  -> knee: %s saturates at %.0f rps\n"
            c.Tcm_service.Ladder.backend r
      | None ->
          Printf.printf "  -> no knee: %s held its SLOs on every rung\n"
            c.Tcm_service.Ladder.backend;
          if check then
            gate "%s: ladder never crossed saturation (no knee detected)"
              c.Tcm_service.Ladder.backend))
    Tcm_stm.Stm.all_backends;
  if check then begin
    let shards = max 4 workers in
    let sharded_ns, mutex_ns = queue_ab ~shards ~ops:200_000 ~trials:3 in
    Printf.printf
      "admission push+pop: sharded %.0f ns/op vs single-mutex %.0f ns/op \
       (%d shards)\n"
      sharded_ns mutex_ns shards;
    if sharded_ns >= mutex_ns then
      gate
        "sharded admission (%.0f ns/op) does not beat the single-mutex \
         baseline (%.0f ns/op)"
        sharded_ns mutex_ns;
    match !failures with
    | [] -> Printf.printf "ladder: OK (all gates held)\n"
    | fs ->
        Printf.eprintf "ladder: %d gate violation(s)\n" (List.length fs);
        exit 1
  end

let rates_arg =
  Arg.(
    value
    & opt (list float) []
    & info [ "rates" ] ~docv:"RPS,..."
        ~doc:
          "Comma-separated rung rates (ascending).  Default: the 3-rung \
           mini-ladder (8k/64k/512k).")

let ladder_duration_arg =
  Arg.(
    value & opt float 0.12
    & info [ "duration" ] ~docv:"S" ~doc:"Traffic duration per rung.")

let ladder_workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains (= admission-queue shards).")

let ladder_keys_arg =
  Arg.(
    value & opt int 8_192 & info [ "keys" ] ~docv:"N" ~doc:"Keyspace size.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Gate the run: fail unless a knee is detected on every backend, \
           admission conservation is exact on every rung, the generator \
           stays allocation-free, and the sharded queue beats the \
           single-mutex baseline on push+pop cost.")

let cmds =
  [
    Cmd.v
      (Cmd.info "run"
         ~doc:"Run one open-loop service instance and print the per-class SLO summary.")
      Term.(
        const run $ backend_arg $ manager_arg $ duration_arg $ rate_arg
        $ burst_rate_arg $ burst_period_arg $ burst_frac_arg $ workers_arg
        $ queue_cap_arg $ n_keys_arg $ theta_arg $ seed_arg $ flight_dir_arg
        $ slo_scale_arg);
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Check a bench JSON dump (schema tcm-bench/4 .. /7 with \
            well-formed service figures) and/or an N-key store end-to-end \
            (--store).")
      Term.(const validate $ file_arg $ store_arg);
    Cmd.v
      (Cmd.info "ladder"
         ~doc:
           "Run the offered-load rate ladder on both backends; with --check, \
            gate knee detection, conservation, generator allocation and the \
            sharded-admission speedup.")
      Term.(
        const ladder $ manager_arg $ ladder_duration_arg $ rates_arg
        $ ladder_workers_arg $ queue_cap_arg $ ladder_keys_arg $ theta_arg
        $ seed_arg $ check_arg);
  ]

let () =
  let doc = "Drive and validate the tcm.service open-loop KV engine." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-service" ~doc) cmds))
