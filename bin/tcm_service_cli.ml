(** Drive the tcm.service open-loop KV engine from the command line,
    and validate bench JSON dumps that carry service figures.

    [run] executes one service instance (backend x manager x arrival
    process) and prints the per-class SLO summary; with [--flight-dir]
    it also arms the tcm.obs flight recorder and dumps breach bundles.
    [validate] checks a [bench/main.exe --json] dump: schema
    tcm-bench/4 or /5 with at least one [kind = "service"] figure
    whose per-class entries carry the SLO and latency fields. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let backend_of_string = function
  | "locator" -> Tcm_stm.Stm.Locator
  | "tl2" -> Tcm_stm.Stm.Tl2_backend
  | b ->
      Printf.eprintf "error: --backend must be locator or tl2, got %S\n" b;
      exit 2

let manager_of_string name =
  match Tcm_core.Registry.find name with
  | Some m -> m
  | None ->
      Printf.eprintf "error: unknown manager %S (known: %s)\n" name
        (String.concat ", "
           (List.map Tcm_stm.Cm_intf.name Tcm_core.Registry.all));
      exit 2

let run backend manager duration rate burst_rate burst_period burst_frac
    workers queue_cap n_keys theta seed flight_dir slo_scale =
  let process =
    match burst_rate with
    | None -> Tcm_service.Arrival.Poisson { rate }
    | Some burst_rate ->
        Tcm_service.Arrival.Bursty
          { base_rate = rate; burst_rate; period_s = burst_period; burst_frac }
  in
  let flight =
    Option.map
      (fun dir ->
        Tcm_obs.Flight.create ~dir ~tag:(backend ^ "-" ^ manager) ())
      flight_dir
  in
  let cfg =
    {
      Tcm_service.Service.default with
      backend = backend_of_string backend;
      manager = manager_of_string manager;
      duration_s = duration;
      process;
      workers;
      queue_cap;
      n_keys;
      theta;
      seed;
      slo_us =
        Array.map
          (fun s -> s *. slo_scale)
          Tcm_service.Service.default.slo_us;
      flight;
    }
  in
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  if flight <> None then (
    Tcm_obs.reset ();
    Tcm_obs.enable ());
  let s = Tcm_service.Service.run cfg in
  Format.printf "%a@." Tcm_service.Service.pp_summary s;
  Tcm_metrics.Health.pp_slo Format.std_formatter
    (Tcm_metrics.Health.slo_rows (Tcm_metrics.snapshot ()));
  (match flight with
  | None -> ()
  | Some f ->
      (* Flush the final window so a breach-free run still leaves one
         bundle to inspect, then show what the ledger saw. *)
      Tcm_obs.Flight.force f ~trigger:"run_end";
      Format.printf "%a" Tcm_obs.Ledger.pp (Tcm_obs.Ledger.rows ());
      Format.printf "%a" (Tcm_obs.Hot.pp ?n:None) (Tcm_obs.Hot.top ());
      Printf.printf "flight: %d bundle(s) in %s\n" (Tcm_obs.Flight.count f)
        (Tcm_obs.Flight.dir f);
      Tcm_obs.disable ());
  Tcm_metrics.disable ()

let backend_arg =
  Arg.(
    value & opt string "locator"
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"Runtime backend (locator or tl2).")

let manager_arg =
  Arg.(
    value & opt string "greedy"
    & info [ "manager" ] ~docv:"CM" ~doc:"Contention manager (registry name).")

let duration_arg =
  Arg.(
    value & opt float 0.5
    & info [ "duration" ] ~docv:"S" ~doc:"Traffic duration in seconds.")

let rate_arg =
  Arg.(
    value & opt float 2_000.
    & info [ "rate" ] ~docv:"RPS"
        ~doc:"Arrival rate (Poisson; the base rate when bursty).")

let burst_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "burst-rate" ] ~docv:"RPS"
        ~doc:"Enable bursty on/off arrivals with this peak rate.")

let burst_period_arg =
  Arg.(
    value & opt float 0.2
    & info [ "burst-period" ] ~docv:"S" ~doc:"Bursty on/off cycle length.")

let burst_frac_arg =
  Arg.(
    value & opt float 0.25
    & info [ "burst-frac" ] ~docv:"F"
        ~doc:"Fraction of each cycle spent at the burst rate.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")

let queue_cap_arg =
  Arg.(
    value & opt int 512
    & info [ "queue-cap" ] ~docv:"N" ~doc:"Admission-queue capacity (sheds beyond).")

let n_keys_arg =
  Arg.(value & opt int 8_192 & info [ "keys" ] ~docv:"N" ~doc:"Keyspace size.")

let theta_arg =
  Arg.(
    value & opt float 0.9
    & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew, 0 <= T < 1 (0 = uniform).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let flight_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Arm the SLO-breach flight recorder: enable tcm.obs for the run \
           and write breach bundles (plus a final run_end bundle) to $(docv); \
           inspect them with tcm_obs.exe report.")

let slo_scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "slo-scale" ] ~docv:"F"
        ~doc:
          "Scale every class SLO by $(docv) (e.g. 0.01 tightens them 100x to \
           force breaches — the smoke test's trick).")

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

module Json = Tcm_workload.Report.Json

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "error: %s\n" msg; exit 1) fmt

(* The per-class fields a tcm-bench/4 service figure must carry. *)
let class_fields =
  [
    "class"; "submitted"; "completed"; "dropped"; "slo_us"; "slo_ok";
    "slo_attainment"; "latency_p50_us"; "latency_p99_us";
  ]

let check_service_figure j =
  let str k = match Json.member k j with Some (Json.Str s) -> s | _ -> fail "service figure missing %S" k in
  let backend = str "backend" in
  let manager = str "manager" in
  let classes =
    match Json.member "classes" j with
    | Some (Json.Arr cs) when cs <> [] -> cs
    | _ -> fail "service figure %s/%s has no classes" backend manager
  in
  List.iter
    (fun c ->
      List.iter
        (fun k ->
          if Json.member k c = None then
            fail "service figure %s/%s: class entry missing %S" backend manager k)
        class_fields)
    classes;
  (backend, manager)

let validate path =
  let j =
    try Json.of_string (String.trim (read_file path))
    with Json.Parse_error msg -> fail "%s: %s" path msg
  in
  (* Service figures exist from tcm-bench/4 on; /5 only adds fields. *)
  let service_schemas = [ "tcm-bench/4"; Tcm_workload.Report.bench_schema ] in
  (match Tcm_workload.Report.bench_schema_of j with
  | Error msg -> fail "%s: %s" path msg
  | Ok s when not (List.mem s service_schemas) ->
      fail "%s: schema %s carries no service figures (need one of %s)" path s
        (String.concat ", " service_schemas)
  | Ok _ -> ());
  let figures =
    match Json.member "figures" j with
    | Some (Json.Arr fs) -> fs
    | _ -> fail "%s: missing figures array" path
  in
  let kind_of f =
    match Json.member "kind" f with Some (Json.Str k) -> k | _ -> fail "figure entry missing \"kind\""
  in
  let services = List.filter (fun f -> kind_of f = "service") figures in
  if services = [] then fail "%s: no kind=\"service\" figure entries" path;
  let pairs = List.map check_service_figure services in
  let uniq l = List.sort_uniq compare l in
  let schema =
    match Tcm_workload.Report.bench_schema_of j with Ok s -> s | Error _ -> "?"
  in
  Printf.printf
    "%s: OK (%s; %d figure entries, %d service: %d backend(s) x %d manager(s))\n"
    path schema (List.length figures)
    (List.length services)
    (List.length (uniq (List.map fst pairs)))
    (List.length (uniq (List.map snd pairs)))

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BENCH_JSON" ~doc:"Bench dump to validate.")

let cmds =
  [
    Cmd.v
      (Cmd.info "run"
         ~doc:"Run one open-loop service instance and print the per-class SLO summary.")
      Term.(
        const run $ backend_arg $ manager_arg $ duration_arg $ rate_arg
        $ burst_rate_arg $ burst_period_arg $ burst_frac_arg $ workers_arg
        $ queue_cap_arg $ n_keys_arg $ theta_arg $ seed_arg $ flight_dir_arg
        $ slo_scale_arg);
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Check a bench JSON dump: schema tcm-bench/4 or /5 with \
            well-formed service figures.")
      Term.(const validate $ file_arg);
  ]

let () =
  let doc = "Drive and validate the tcm.service open-loop KV engine." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-service" ~doc) cmds))
