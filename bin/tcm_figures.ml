(** CLI for the Figure 1–4 reproductions.

    Examples:

    {v
    tcm_figures fig1
    tcm_figures fig3 --mode real --threads 1,2,4 --duration 0.2
    tcm_figures fig1 --mode real --backend tl2
    tcm_figures all --mode sim --horizon 8000
    tcm_figures --summary BENCH.json
    v} *)

open Cmdliner
open Tcm_workload

let figure_arg =
  let doc = "Figure to run: fig1, fig2, fig3, fig4 or all." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc)

let mode_arg =
  let doc = "Execution mode: 'sim' (deterministic discrete-event) or 'real' (live STM)." in
  Arg.(value & opt string "sim" & info [ "mode" ] ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts." in
  Arg.(value & opt string "1,2,4,8,16,24,32" & info [ "threads" ] ~doc)

let duration_arg =
  let doc = "Seconds per data point (real mode)." in
  Arg.(value & opt float 0.2 & info [ "duration" ] ~doc)

let horizon_arg =
  let doc = "Ticks per data point (sim mode)." in
  Arg.(value & opt int 6000 & info [ "horizon" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let backend_arg =
  let doc =
    "Runtime backend for real mode: 'locator' (obstruction-free, default) or 'tl2' \
     (lock-based).  Sim mode always models the locator protocol."
  in
  Arg.(value & opt string "locator" & info [ "backend" ] ~doc)

let summary_arg =
  let doc =
    "Summarize a bench JSON dump (bench/main.exe --json) instead of running figures: \
     per-figure throughput, GC words per committed transaction (schema tcm-bench/2+), \
     the runtime backend per sweep (tcm-bench/3+), open-loop service summaries \
     (tcm-bench/4+), and the rate-ladder attainment / latency-degradation curves \
     with the saturation knee marked (tcm-bench/7).  Accepts every shipped schema; \
     refuses dumps with a missing or unknown schema header."
  in
  Arg.(value & opt (some file) None & info [ "summary" ] ~docv:"FILE" ~doc)

let parse_threads s =
  String.split_on_char ',' s |> List.filter (fun x -> x <> "") |> List.map int_of_string

(* ------------------------------------------------------------------ *)
(* --summary: re-read a bench dump (tcm-bench/1, /2 or /3)             *)
(* ------------------------------------------------------------------ *)

let num = function
  | Some (Report.Json.Int i) -> float_of_int i
  | Some (Report.Json.Float f) -> f
  | _ -> nan

let jstr = function Some (Report.Json.Str s) -> s | _ -> "?"

let jarr = function Some (Report.Json.Arr xs) -> xs | _ -> []

let per_commit words commits =
  if Float.is_nan words || commits <= 0. then "-"
  else Printf.sprintf "%.1f" (words /. commits)

let summarize path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j =
    match Report.Json.of_string text with
    | j -> j
    | exception Report.Json.Parse_error msg ->
        Printf.eprintf "%s: malformed JSON (%s)\n" path msg;
        exit 2
  in
  let open Report.Json in
  let schema =
    match Report.bench_schema_of j with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
  in
  Printf.printf "bench dump %s (schema %s, mode %s, seed %.0f)\n" path schema
    (jstr (member "mode" j))
    (num (member "seed" j));
  let render_sweep fig backend =
    Printf.printf "\n== %s [%s]: %s ==\n" (jstr (member "id" fig)) backend
      (jstr (member "title" fig));
    Printf.printf "%8s %-14s %12s %10s %12s %12s\n" "threads" "manager" "throughput"
      "commits" "minor-w/txn" "major-w/txn";
    List.iter
      (fun row ->
        let threads = num (member "threads" row) in
        List.iter
          (fun m ->
            let commits = num (member "commits" m) in
            (* tcm-bench/1 rows have no words fields; render "-". *)
            Printf.printf "%8.0f %-14s %12.1f %10.0f %12s %12s\n" threads
              (jstr (member "name" m))
              (num (member "throughput" m))
              commits
              (per_commit (num (member "minor_words" m)) commits)
              (per_commit (num (member "major_words" m)) commits))
          (jarr (member "managers" row)))
      (jarr (member "rows" fig))
  in
  (* tcm-bench/4+: one line per open-loop service run. *)
  let render_service fig backend =
    Printf.printf
      "\n== service [%s/%s]: %s — %.0f submitted, %.0f completed, %.0f \
       dropped, %.0f/s, p50 %.1f us, p99 %.1f us ==\n"
      backend
      (jstr (member "manager" fig))
      (jstr (member "process" fig))
      (num (member "submitted" fig))
      (num (member "completed" fig))
      (num (member "dropped" fig))
      (num (member "throughput" fig))
      (num (member "latency_p50_us" fig))
      (num (member "latency_p99_us" fig));
    List.iter
      (fun c ->
        Printf.printf "  %-6s slo %6.0f us  attainment %6.1f%%  p99 %9.1f us\n"
          (jstr (member "class" c))
          (num (member "slo_us" c))
          (100. *. num (member "slo_attainment" c))
          (num (member "latency_p99_us" c)))
      (jarr (member "classes" fig))
  in
  (* tcm-bench/7: the saturation sweep — attainment-vs-load and
     latency-degradation curves, knee marked on its rung. *)
  let render_ladder fig backend =
    let knee = num (member "knee_rps" fig) in
    Printf.printf "\n== ladder [%s/%s]: %s ==\n" backend
      (jstr (member "manager" fig))
      (jstr (member "title" fig));
    Printf.printf "%12s %12s %12s %12s %9s %8s\n" "offered rps" "attainment"
      "p50 (us)" "p99 (us)" "dropped" "spills";
    List.iter
      (fun r ->
        let rps = num (member "offered_rps" r) in
        Printf.printf "%12.0f %11.1f%% %12.1f %12.1f %9.0f %8.0f%s\n" rps
          (100. *. num (member "attainment" r))
          (num (member "latency_p50_us" r))
          (num (member "latency_p99_us" r))
          (num (member "dropped" r))
          (num (member "queue_spills" r))
          (if (not (Float.is_nan knee)) && rps = knee then "   <- knee" else ""))
      (jarr (member "rungs" fig));
    if Float.is_nan knee then
      Printf.printf "  (no knee: every rung held its SLOs)\n"
    else
      Printf.printf "  knee at %.0f rps (first rung under %.0f%% attainment)\n"
        knee
        (100. *. num (member "knee_threshold" fig))
  in
  let render_obs fig backend =
    Printf.printf
      "== obs [%s/%s/%s] class %s: %.0f commits, %.0f aborts, wasted %.0f, \
       price %.0f ==\n"
      backend
      (jstr (member "manager" fig))
      (jstr (member "runtime" fig))
      (jstr (member "class" fig))
      (num (member "commits" fig))
      (num (member "aborts" fig))
      (num (member "wasted_work" fig))
      (num (member "price" fig))
  in
  let render_consult fig backend =
    Printf.printf "== consult [%s/%s]: %.1f ns, %.4f minor words per resolve ==\n"
      backend
      (jstr (member "manager" fig))
      (num (member "ns_per_resolve" fig))
      (num (member "minor_words_per_resolve" fig))
  in
  List.iter
    (fun fig ->
      (* Pre-/3 dumps have no backend field; those sweeps ran on the
         (then only) locator runtime.  Pre-/4 dumps have no kind field;
         every figure was a closed-loop sweep. *)
      let backend =
        match member "backend" fig with Some (Str b) -> b | _ -> "locator"
      in
      match member "kind" fig with
      | None | Some (Str "sweep") -> render_sweep fig backend
      | Some (Str "service") -> render_service fig backend
      | Some (Str "ladder") -> render_ladder fig backend
      | Some (Str "obs") -> render_obs fig backend
      | Some (Str "consult") -> render_consult fig backend
      | Some (Str k) -> Printf.printf "\n== (unrendered figure kind %S) ==\n" k
      | Some _ -> Printf.printf "\n== (malformed figure kind) ==\n")
    (jarr (member "figures" j))

let run_figures figure mode threads duration horizon seed backend =
  let backend =
    match Tcm_stm.Stm.backend_of_name backend with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown backend %S (locator or tl2)\n" backend;
        exit 2
  in
  let specs =
    match figure with
    | "all" -> Figures.all
    | id -> (
        match Figures.of_id id with
        | Some f -> [ f ]
        | None -> (
            Printf.eprintf "unknown figure %S (fig1..fig4 or all)\n" id;
            exit 2))
  in
  let mode =
    match mode with
    | "sim" -> Figures.Sim { horizon }
    | "real" -> Figures.Real { duration_s = duration }
    | m ->
        Printf.eprintf "unknown mode %S (sim or real)\n" m;
        exit 2
  in
  let threads_list = parse_threads threads in
  List.iter
    (fun spec ->
      let r = Figures.run ~threads_list ~seed ~mode ~backend spec in
      Report.print_figure Format.std_formatter r)
    specs

let run summary figure mode threads duration horizon seed backend =
  match summary with
  | Some path -> summarize path
  | None -> run_figures figure mode threads duration horizon seed backend

let cmd =
  let doc = "Reproduce the figures of 'Toward a Theory of Transactional Contention Managers'." in
  Cmd.v
    (Cmd.info "tcm-figures" ~doc)
    Term.(
      const run $ summary_arg $ figure_arg $ mode_arg $ threads_arg $ duration_arg
      $ horizon_arg $ seed_arg $ backend_arg)

let () = exit (Cmd.eval cmd)
