(** CLI for the Figure 1–4 reproductions.

    Examples:

    {v
    tcm_figures fig1
    tcm_figures fig3 --mode real --threads 1,2,4 --duration 0.2
    tcm_figures fig1 --mode real --backend tl2
    tcm_figures all --mode sim --horizon 8000
    tcm_figures --summary BENCH.json
    v} *)

open Cmdliner
open Tcm_workload

let figure_arg =
  let doc = "Figure to run: fig1, fig2, fig3, fig4 or all." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc)

let mode_arg =
  let doc = "Execution mode: 'sim' (deterministic discrete-event) or 'real' (live STM)." in
  Arg.(value & opt string "sim" & info [ "mode" ] ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts." in
  Arg.(value & opt string "1,2,4,8,16,24,32" & info [ "threads" ] ~doc)

let duration_arg =
  let doc = "Seconds per data point (real mode)." in
  Arg.(value & opt float 0.2 & info [ "duration" ] ~doc)

let horizon_arg =
  let doc = "Ticks per data point (sim mode)." in
  Arg.(value & opt int 6000 & info [ "horizon" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let backend_arg =
  let doc =
    "Runtime backend for real mode: 'locator' (obstruction-free, default) or 'tl2' \
     (lock-based).  Sim mode always models the locator protocol."
  in
  Arg.(value & opt string "locator" & info [ "backend" ] ~doc)

let summary_arg =
  let doc =
    "Summarize a bench JSON dump (bench/main.exe --json) instead of running figures: \
     per-figure throughput, GC words per committed transaction (schema tcm-bench/2+) \
     and the runtime backend per sweep (schema tcm-bench/3).  Accepts schemas \
     tcm-bench/1, tcm-bench/2 and tcm-bench/3; refuses dumps with a missing or \
     unknown schema header."
  in
  Arg.(value & opt (some file) None & info [ "summary" ] ~docv:"FILE" ~doc)

let parse_threads s =
  String.split_on_char ',' s |> List.filter (fun x -> x <> "") |> List.map int_of_string

(* ------------------------------------------------------------------ *)
(* --summary: re-read a bench dump (tcm-bench/1, /2 or /3)             *)
(* ------------------------------------------------------------------ *)

let num = function
  | Some (Report.Json.Int i) -> float_of_int i
  | Some (Report.Json.Float f) -> f
  | _ -> nan

let jstr = function Some (Report.Json.Str s) -> s | _ -> "?"

let jarr = function Some (Report.Json.Arr xs) -> xs | _ -> []

let per_commit words commits =
  if Float.is_nan words || commits <= 0. then "-"
  else Printf.sprintf "%.1f" (words /. commits)

let summarize path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j =
    match Report.Json.of_string text with
    | j -> j
    | exception Report.Json.Parse_error msg ->
        Printf.eprintf "%s: malformed JSON (%s)\n" path msg;
        exit 2
  in
  let open Report.Json in
  let schema =
    match Report.bench_schema_of j with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
  in
  Printf.printf "bench dump %s (schema %s, mode %s, seed %.0f)\n" path schema
    (jstr (member "mode" j))
    (num (member "seed" j));
  List.iter
    (fun fig ->
      (* Pre-/3 dumps have no backend field; those sweeps ran on the
         (then only) locator runtime. *)
      let backend =
        match member "backend" fig with Some (Str b) -> b | _ -> "locator"
      in
      Printf.printf "\n== %s [%s]: %s ==\n" (jstr (member "id" fig)) backend
        (jstr (member "title" fig));
      Printf.printf "%8s %-14s %12s %10s %12s %12s\n" "threads" "manager" "throughput"
        "commits" "minor-w/txn" "major-w/txn";
      List.iter
        (fun row ->
          let threads = num (member "threads" row) in
          List.iter
            (fun m ->
              let commits = num (member "commits" m) in
              (* tcm-bench/1 rows have no words fields; render "-". *)
              Printf.printf "%8.0f %-14s %12.1f %10.0f %12s %12s\n" threads
                (jstr (member "name" m))
                (num (member "throughput" m))
                commits
                (per_commit (num (member "minor_words" m)) commits)
                (per_commit (num (member "major_words" m)) commits))
            (jarr (member "managers" row)))
        (jarr (member "rows" fig)))
    (jarr (member "figures" j))

let run_figures figure mode threads duration horizon seed backend =
  let backend =
    match Tcm_stm.Stm.backend_of_name backend with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown backend %S (locator or tl2)\n" backend;
        exit 2
  in
  let specs =
    match figure with
    | "all" -> Figures.all
    | id -> (
        match Figures.of_id id with
        | Some f -> [ f ]
        | None -> (
            Printf.eprintf "unknown figure %S (fig1..fig4 or all)\n" id;
            exit 2))
  in
  let mode =
    match mode with
    | "sim" -> Figures.Sim { horizon }
    | "real" -> Figures.Real { duration_s = duration }
    | m ->
        Printf.eprintf "unknown mode %S (sim or real)\n" m;
        exit 2
  in
  let threads_list = parse_threads threads in
  List.iter
    (fun spec ->
      let r = Figures.run ~threads_list ~seed ~mode ~backend spec in
      Report.print_figure Format.std_formatter r)
    specs

let run summary figure mode threads duration horizon seed backend =
  match summary with
  | Some path -> summarize path
  | None -> run_figures figure mode threads duration horizon seed backend

let cmd =
  let doc = "Reproduce the figures of 'Toward a Theory of Transactional Contention Managers'." in
  Cmd.v
    (Cmd.info "tcm-figures" ~doc)
    Term.(
      const run $ summary_arg $ figure_arg $ mode_arg $ threads_arg $ duration_arg
      $ horizon_arg $ seed_arg $ backend_arg)

let () = exit (Cmd.eval cmd)
