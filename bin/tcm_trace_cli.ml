(** Analyze and convert tcm.trace dumps (JSONL, as written by
    [bench/main.exe --trace] or [Tcm_trace.Export.write_jsonl]). *)

open Cmdliner

let load path =
  try Tcm_trace.Export.read_jsonl path
  with
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace dump (JSONL).")

(* check: empirical pending-commit. Live hardware traces can carry rare
   benign violations from the stale-waiting-flag window (an enemy observes
   the waiting flag after the wait already ended), so the default exit code
   is 0 and --strict opts into gating. *)
let check strict path =
  let trace, drops = load path in
  let pc = Tcm_trace.Analysis.pending_commit trace in
  Printf.printf "events      %d\n" (Array.length trace);
  Printf.printf "drops       %d%s\n" drops
    (if drops > 0 then " (trace is incomplete)" else "");
  Printf.printf "conflicts   %d\n" pc.conflicts;
  Printf.printf "violations  %d\n" pc.violations;
  Printf.printf "undecidable %d\n" pc.undecidable;
  if pc.first_violation_seq >= 0 then
    Printf.printf "first violation at seq %d\n" pc.first_violation_seq;
  if pc.violations = 0 then
    print_endline "pending-commit: OK (every conflict saw a live attempt that commits)"
  else
    Printf.printf "pending-commit: VIOLATED at %d of %d conflicts\n" pc.violations
      pc.conflicts;
  (* A trace with drops proves nothing: the missing events could hold
     the violation.  Strict mode therefore gates on completeness too. *)
  if drops > 0 then
    Printf.printf "completeness: %d dropped events%s\n" drops
      (if strict then " -> FAIL (--strict)" else "");
  if strict && (pc.violations > 0 || drops > 0) then exit 1

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit 1 when violations or dropped events are found.")

(* stats: whole-trace summary, then a per-manager x per-event-kind
   breakdown when the dump carries named sections (one per manager, as
   bench --trace writes them). *)
let all_kinds =
  Tcm_trace.Event.
    [ Begin; Commit; Abort; Resolve; Wait_begin; Wait_end; Open ]

let pp_sections sections =
  let count events k =
    Array.fold_left
      (fun n (e : Tcm_trace.Event.t) -> if e.kind = k then n + 1 else n)
      0 events
  in
  Printf.printf "\nper-manager event kinds\n";
  Printf.printf "  %-16s" "manager";
  List.iter
    (fun k -> Printf.printf " %10s" (Tcm_trace.Event.kind_name k))
    all_kinds;
  Printf.printf " %10s\n" "drops";
  List.iter
    (fun (manager, events, drops) ->
      Printf.printf "  %-16s" (Option.value manager ~default:"-");
      List.iter (fun k -> Printf.printf " %10d" (count events k)) all_kinds;
      Printf.printf " %10d\n" drops)
    sections

let stats path =
  let trace, drops = load path in
  Printf.printf "drops: %d%s\n" drops
    (if drops > 0 then " (trace is incomplete)" else "");
  Tcm_trace.Analysis.pp_summary Format.std_formatter trace;
  Format.printf "%a@." Tcm_trace.Analysis.pp_price
    (Tcm_trace.Analysis.price trace);
  match Tcm_trace.Export.read_jsonl_sections path with
  | [] | [ (None, _, _) ] -> ()
  | sections -> pp_sections sections

let chrome path out =
  let trace, _ = load path in
  Tcm_trace.Export.write_chrome out trace;
  Printf.printf "wrote %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n" out
    (Array.length trace)

let out_arg =
  Arg.(
    value
    & opt string "trace_chrome.json"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let makespan path optimal s =
  let trace, _ = load path in
  let bound_factor = Tcm_sched.Bounds.pending_commit_factor ~s in
  let r = Tcm_trace.Analysis.makespan_report ~optimal ~bound_factor trace in
  Printf.printf "measured     %d\n" r.measured;
  Printf.printf "optimal      %d\n" r.optimal;
  Printf.printf "ratio        %.3f\n" r.ratio;
  Printf.printf "bound s(s+1)+2 with s=%d: %d (ratio <= %d: %s)\n" s bound_factor
    bound_factor
    (if r.within_bound then "yes" else "NO");
  if not r.within_bound then exit 1

let optimal_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "optimal" ] ~docv:"N" ~doc:"Clairvoyant makespan to compare against.")

let s_arg =
  Arg.(value & opt int 3 & info [ "s" ] ~docv:"S" ~doc:"Max objects any transaction touches.")

let cmds =
  [
    Cmd.v
      (Cmd.info "check"
         ~doc:"Empirical pending-commit check (Theorem 1) over a trace."
         ~man:
           [
             `S Manpage.s_exit_status;
             `P
               "$(b,0) on success — including found violations or dropped \
                events unless $(b,--strict) is given; $(b,1) when \
                $(b,--strict) is set and the trace has violations or drops; \
                $(b,2) when the trace cannot be read or parsed.";
           ])
      Term.(const check $ strict_arg $ file_arg);
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Event counts, pending-commit, abort cascades, wasted work, \
            makespan, priced conflict score, and a per-manager x event-kind \
            breakdown for multi-section dumps.")
      Term.(const stats $ file_arg);
    Cmd.v
      (Cmd.info "chrome" ~doc:"Convert a trace to Chrome trace-event JSON.")
      Term.(const chrome $ file_arg $ out_arg);
    Cmd.v
      (Cmd.info "makespan"
         ~doc:"Empirical makespan ratio against a clairvoyant optimum and the s(s+1)+2 bound.")
      Term.(const makespan $ file_arg $ optimal_arg $ s_arg);
  ]

let () =
  let doc = "Analyze tcm.trace event dumps." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-trace" ~doc) cmds))
