(** [tcm.obs]: cross-cutting conflict attribution.

    Sits on top of [tcm.trace] and [tcm.metrics] and below both
    runtime backends, the simulator and the service: {!Ledger} prices
    every abort and CM-induced wait in the cost model of Alistarh et
    al.'s "The Transactional Conflict Problem" and charges it to
    [{backend; manager; runtime}] x transaction class; {!Hot} keeps
    per-domain space-saving {!Sketch}es of the conflicting tvar /
    orec-stripe identities; {!Flight} snapshots the armed trace rings
    plus a ledger/hot summary into a JSONL bundle when a service SLO
    breaks.  One shared [Atomic.get] + branch disables the whole layer
    (the default), per the trace/metrics discipline. *)

module Sketch = Sketch
module Ledger = Ledger
module Hot = Hot
module Flight = Flight

let enable = Ledger.enable
let disable = Ledger.disable
let enabled = Ledger.enabled

let reset () =
  Ledger.reset ();
  Hot.reset ()
