let line_words = 8
let class_slots = 8

(* Field offsets within a (family, class) cache line. *)
let ix_aborts = 0
let ix_wasted = 1
let ix_waits = 2
let ix_wait_cost = 3
let ix_commits = 4
let ix_useful = 5
let ix_wait_ticks = 6

let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

(* ------------------------------------------------------------------ *)
(* Registry: families and class slots                                  *)
(* ------------------------------------------------------------------ *)

type family = {
  f_backend : string;
  f_manager : string;
  f_runtime : string;
  f_index : int;
}

let mu = Mutex.create ()
let families : (string * string * string, family) Hashtbl.t = Hashtbl.create 16
let family_order : family list ref = ref []
let n_families = ref 0
let classes : (string, int) Hashtbl.t = Hashtbl.create 8
let class_names = Array.make class_slots "-"
let n_classes = ref 1
let () = Hashtbl.replace classes "-" 0

let class_slot name =
  Mutex.lock mu;
  let s =
    match Hashtbl.find_opt classes name with
    | Some s -> s
    | None ->
        if !n_classes >= class_slots then 0
        else begin
          let s = !n_classes in
          incr n_classes;
          class_names.(s) <- name;
          Hashtbl.replace classes name s;
          s
        end
  in
  Mutex.unlock mu;
  s

let class_name slot =
  if slot < 0 || slot >= class_slots then "-" else class_names.(slot)

type t = { base : int }

let for_manager ?(backend = "locator") ~runtime manager =
  Mutex.lock mu;
  let fam =
    match Hashtbl.find_opt families (backend, manager, runtime) with
    | Some f -> f
    | None ->
        let f =
          {
            f_backend = backend;
            f_manager = manager;
            f_runtime = runtime;
            f_index = !n_families;
          }
        in
        incr n_families;
        Hashtbl.replace families (backend, manager, runtime) f;
        family_order := f :: !family_order;
        f
  in
  Mutex.unlock mu;
  { base = fam.f_index * class_slots * line_words }

(* ------------------------------------------------------------------ *)
(* Per-domain storage                                                  *)
(* ------------------------------------------------------------------ *)

(* One store per domain: a flat array indexed
   [family * class_slots * line_words + class * line_words + field],
   grown (rarely) when a new family first records on this domain, plus
   the domain's current class slot.  Only the owning domain writes;
   snapshot reads by other domains are benignly racy, same as metric
   shards. *)
type store = { mutable arr : int array; mutable cls : int }

let stores_mu = Mutex.create ()
let stores : store list ref = ref []

let dls : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { arr = Array.make (line_words * class_slots * 4) 0; cls = 0 } in
      Mutex.lock stores_mu;
      stores := s :: !stores;
      Mutex.unlock stores_mu;
      s)

let ensure (s : store) need =
  if Array.length s.arr < need then begin
    let bigger = Array.make (max need (2 * Array.length s.arr)) 0 in
    Array.blit s.arr 0 bigger 0 (Array.length s.arr);
    s.arr <- bigger
  end

let cell (t : t) : store * int =
  let s = Domain.DLS.get dls in
  ensure s (t.base + (class_slots * line_words));
  (s, t.base + (s.cls * line_words))

let set_class slot =
  let s = Domain.DLS.get dls in
  s.cls <- (if slot < 0 || slot >= class_slots then 0 else slot)

let current_class () = (Domain.DLS.get dls).cls

let charge_abort t ~work =
  if Atomic.get flag then begin
    let s, b = cell t in
    let a = s.arr in
    a.(b + ix_aborts) <- a.(b + ix_aborts) + 1;
    a.(b + ix_wasted) <- a.(b + ix_wasted) + work
  end

let charge_wait t ~cost ~ticks =
  if Atomic.get flag then begin
    let s, b = cell t in
    let a = s.arr in
    a.(b + ix_waits) <- a.(b + ix_waits) + 1;
    a.(b + ix_wait_cost) <- a.(b + ix_wait_cost) + cost;
    a.(b + ix_wait_ticks) <- a.(b + ix_wait_ticks) + ticks
  end

let note_commit t ~work =
  if Atomic.get flag then begin
    let s, b = cell t in
    let a = s.arr in
    a.(b + ix_commits) <- a.(b + ix_commits) + 1;
    a.(b + ix_useful) <- a.(b + ix_useful) + work
  end

let reset () =
  Mutex.lock stores_mu;
  let ss = !stores in
  Mutex.unlock stores_mu;
  List.iter (fun s -> Array.fill s.arr 0 (Array.length s.arr) 0) ss

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type row = {
  backend : string;
  manager : string;
  runtime : string;
  cls : string;
  aborts : int;
  wasted_work : int;
  waits : int;
  wait_cost : int;
  wait_ticks : int;
  commits : int;
  useful_work : int;
}

let price r = r.wasted_work + r.wait_ticks

let rows () =
  Mutex.lock mu;
  let fams = List.rev !family_order in
  let ncls = !n_classes in
  Mutex.unlock mu;
  Mutex.lock stores_mu;
  let ss = !stores in
  Mutex.unlock stores_mu;
  List.concat_map
    (fun f ->
      List.filter_map
        (fun c ->
          let base = ((f.f_index * class_slots) + c) * line_words in
          let sum field =
            List.fold_left
              (fun acc (s : store) ->
                if Array.length s.arr >= base + line_words then
                  acc + s.arr.(base + field)
                else acc)
              0 ss
          in
          let r =
            {
              backend = f.f_backend;
              manager = f.f_manager;
              runtime = f.f_runtime;
              cls = class_name c;
              aborts = sum ix_aborts;
              wasted_work = sum ix_wasted;
              waits = sum ix_waits;
              wait_cost = sum ix_wait_cost;
              wait_ticks = sum ix_wait_ticks;
              commits = sum ix_commits;
              useful_work = sum ix_useful;
            }
          in
          if
            r.aborts = 0 && r.wasted_work = 0 && r.waits = 0
            && r.wait_cost = 0 && r.wait_ticks = 0 && r.commits = 0
            && r.useful_work = 0
          then None
          else Some r)
        (List.init ncls (fun c -> c)))
    fams

let pp fmt (rs : row list) =
  Format.fprintf fmt "%-14s %-8s %-5s %-6s %9s %9s %10s %8s %10s %10s %8s@."
    "manager" "backend" "rt" "class" "commits" "aborts" "wasted" "waits"
    "wait-cost" "wait-ticks" "price";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s %-8s %-5s %-6s %9d %9d %10d %8d %10d %10d %8d@."
        r.manager r.backend r.runtime r.cls r.commits r.aborts r.wasted_work
        r.waits r.wait_cost r.wait_ticks (price r))
    rs

(* ------------------------------------------------------------------ *)
(* Reconciliation against tcm.metrics                                  *)
(* ------------------------------------------------------------------ *)

let reconcile ?(wait_cost_tol = 0.) (s : Tcm_metrics.Snapshot.t) =
  let open Tcm_metrics in
  Mutex.lock mu;
  let fams = List.rev !family_order in
  Mutex.unlock mu;
  let rs = rows () in
  let msgs = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> msgs := m :: !msgs) fmt in
  List.iter
    (fun f ->
      let mine =
        List.filter
          (fun r ->
            r.backend = f.f_backend && r.manager = f.f_manager
            && r.runtime = f.f_runtime)
          rs
      in
      let tot field = List.fold_left (fun a r -> a + field r) 0 mine in
      let l_aborts = tot (fun r -> r.aborts)
      and l_commits = tot (fun r -> r.commits)
      and l_waits = tot (fun r -> r.waits)
      and l_wait_cost = tot (fun r -> r.wait_cost) in
      let labels =
        [
          ("backend", f.f_backend);
          ("manager", f.f_manager);
          ("runtime", f.f_runtime);
        ]
      in
      let m_aborts =
        Snapshot.counter_value s ~name:Conventions.n_aborts ~labels
      in
      let m_commits =
        Snapshot.counter_value s ~name:Conventions.n_commits ~labels
      in
      let wait_h = Snapshot.hist_value s ~name:Conventions.n_wait ~labels in
      let m_waits = match wait_h with None -> 0 | Some h -> Snapshot.hist_count h in
      let m_wait_cost =
        match wait_h with None -> 0 | Some h -> Snapshot.hist_sum h
      in
      let active =
        l_aborts + l_commits + l_waits + m_aborts + m_commits + m_waits > 0
      in
      if active then begin
        let who = f.f_manager ^ "/" ^ f.f_backend ^ "/" ^ f.f_runtime in
        if l_aborts <> m_aborts then
          fail "%s: ledger aborts %d <> metrics %d" who l_aborts m_aborts;
        if l_commits <> m_commits then
          fail "%s: ledger commits %d <> metrics %d" who l_commits m_commits;
        if l_waits <> m_waits then
          fail "%s: ledger waits %d <> metrics %d" who l_waits m_waits;
        let slack =
          wait_cost_tol *. float_of_int (max 1 (max l_wait_cost m_wait_cost))
        in
        if float_of_int (abs (l_wait_cost - m_wait_cost)) > slack then
          fail "%s: ledger wait cost %d <> metrics %d (tol %.2f)" who
            l_wait_cost m_wait_cost wait_cost_tol
      end)
    fams;
  (!msgs = [], List.rev !msgs)
