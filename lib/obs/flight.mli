(** The SLO-breach flight recorder.  The service keeps the [tcm.trace]
    rings armed; this module watches per-class SLO attainment and the
    shed rate, and on a breach atomically snapshots the recent event
    window (the rings drained since the last bundle) together with a
    ledger and hot-key summary into a timestamped JSONL bundle —
    "what the runtime looked like when the SLO broke".

    Triggers (checked under a mutex, so the hot paths only pay when
    the service accounting already holds it):
    - ["slo_breach"]: over a tumbling window of [window] completions
      of one class, the missed fraction reached [miss_frac];
    - ["shed_spike"]: [shed_spike] admission-queue drops accumulated
      since the last bundle.

    Bundles are rate-limited to one per [min_interval_s] and capped at
    [max_bundles] per recorder; each is written to a temporary file
    and renamed into place, so a concurrent reader never observes a
    half-written bundle. *)

type t

val create :
  ?window:int ->
  ?miss_frac:float ->
  ?shed_spike:int ->
  ?min_interval_s:float ->
  ?max_bundles:int ->
  dir:string ->
  tag:string ->
  unit ->
  t
(** Defaults: [window] 64, [miss_frac] 0.5, [shed_spike] 64,
    [min_interval_s] 0.25, [max_bundles] 16.  Creates [dir] if
    missing. *)

val note_completion : t -> cls:string -> within_slo:bool -> unit
val note_drop : t -> unit

val force : t -> trigger:string -> unit
(** Dump a bundle unconditionally (ignores rate limit and cap); used
    by the smoke test and at end-of-run to flush the final window. *)

val count : t -> int
(** Bundles written so far. *)

val dir : t -> string

(** {1 Bundles on disk} *)

val schema : string
(** ["tcm-flight/1"]: line 1 a header
    [{schema; tag; trigger; unix_ms; events; drops}], then one line
    per record, discriminated by a ["rec"] field —
    ["ledger"] rows, ["hot"] entries, ["event"]s in the
    [tcm-trace/1] field layout. *)

type bundle = {
  b_tag : string;
  b_trigger : string;
  b_unix_ms : int;
  b_events : Tcm_trace.Event.t array;
  b_drops : int;
  b_ledger : Ledger.row list;
  b_hot : (Hot.family * Sketch.entry list) list;
}

val read_bundle : string -> bundle
(** @raise Failure on malformed input or unknown schema. *)

val bundles : string -> string list
(** The [flight-*.jsonl] paths under a directory, sorted (i.e. in
    write order — the timestamp leads the filename). *)
