(** Hot-key tracking: one {!Sketch} per (family, domain), fed from the
    conflict-resolution sites of both runtime backends (tvar ids on
    the locator runtime, orec stripe indices on TL2) and the
    simulator's access-conflict check (object ids).  Only the owning
    domain records into a sketch — the record path is the shared
    one-branch enabled gate plus one O(k) scan — and {!snapshot}
    merges across domains with {!Sketch.merged}. *)

type t
(** Per-domain handle; create alongside the per-domain metric handle. *)

val for_manager : ?k:int -> ?backend:string -> runtime:string -> string -> t
(** Deduplicated per (family, calling domain), so repeated runs on the
    same domain keep accumulating into one sketch.  [k] (default 32)
    applies on first creation. *)

val record : t -> int -> unit
(** Count one conflict on a key.  Gated on [Ledger.enabled]. *)

type family = { backend : string; manager : string; runtime : string }

val snapshot : unit -> (family * Sketch.entry list) list
(** Per-family cross-domain merge, families sorted by
    (backend, manager, runtime); families whose merge is empty are
    dropped.  Concurrent recording makes the read benignly racy, as
    with metric snapshots. *)

val top : ?n:int -> unit -> (family * Sketch.entry list) list
(** {!snapshot} truncated to the [n] (default 10) hottest keys per
    family. *)

val pp : ?n:int -> Format.formatter -> (family * Sketch.entry list) list -> unit
(** The "hot keys" table (Health-report style): one line per family,
    keys as [key:count(±err)]. *)

val prom_lines : ?n:int -> unit -> string list
(** Prometheus text series
    [tcm_hot_key_conflicts_total{backend,manager,runtime,key}] for the
    top [n] (default 10) keys per family. *)

val reset : unit -> unit
