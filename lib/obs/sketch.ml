type t = {
  cap : int;
  keys : int array;
  counts : int array;
  errs : int array;
  mutable n : int;
  mutable total : int;
}

let create k =
  let cap = max 1 k in
  {
    cap;
    keys = Array.make cap 0;
    counts = Array.make cap 0;
    errs = Array.make cap 0;
    n = 0;
    total = 0;
  }

let capacity t = t.cap
let total t = t.total

let clear t =
  t.n <- 0;
  t.total <- 0;
  Array.fill t.keys 0 t.cap 0;
  Array.fill t.counts 0 t.cap 0;
  Array.fill t.errs 0 t.cap 0

let record ?(weight = 1) t key =
  if weight > 0 then begin
    t.total <- t.total + weight;
    (* One scan finds both the key (if resident) and the minimum
       counter (the eviction victim if it is not). *)
    let hit = ref (-1) in
    let mn = ref 0 in
    for i = 0 to t.n - 1 do
      if t.keys.(i) = key then hit := i
      else if t.counts.(i) < t.counts.(!mn) then mn := i
    done;
    if !hit >= 0 then t.counts.(!hit) <- t.counts.(!hit) + weight
    else if t.n < t.cap then begin
      let i = t.n in
      t.n <- i + 1;
      t.keys.(i) <- key;
      t.counts.(i) <- weight;
      t.errs.(i) <- 0
    end
    else begin
      (* Space-saving eviction: the newcomer takes over the minimum
         counter and inherits its count as the error bound. *)
      let i = !mn in
      t.errs.(i) <- t.counts.(i);
      t.counts.(i) <- t.counts.(i) + weight;
      t.keys.(i) <- key
    end
  end

type entry = { key : int; count : int; err : int }

let compare_entries a b =
  if a.count <> b.count then compare b.count a.count else compare a.key b.key

let entries t =
  let es = ref [] in
  for i = t.n - 1 downto 0 do
    es := { key = t.keys.(i); count = t.counts.(i); err = t.errs.(i) } :: !es
  done;
  List.sort compare_entries !es

let max_error t =
  if t.n < t.cap then 0
  else begin
    let mn = ref max_int in
    for i = 0 to t.n - 1 do
      if t.counts.(i) < !mn then mn := t.counts.(i)
    done;
    if !mn = max_int then 0 else !mn
  end

let merged ts =
  (* Union-with-sum is commutative and associative, and the final sort
     is total (count desc, key asc), so the result cannot depend on
     the order sketches are presented in. *)
  let acc : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      List.iter
        (fun e ->
          let c, er =
            match Hashtbl.find_opt acc e.key with
            | Some (c, er) -> (c, er)
            | None -> (0, 0)
          in
          Hashtbl.replace acc e.key (c + e.count, er + e.err))
        (entries t))
    ts;
  let cap = List.fold_left (fun m t -> max m t.cap) 0 ts in
  let all =
    Hashtbl.fold (fun key (count, err) l -> { key; count; err } :: l) acc []
  in
  let sorted = List.sort compare_entries all in
  List.filteri (fun i _ -> i < cap) sorted
