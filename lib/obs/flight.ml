let schema = "tcm-flight/1"

type cls_window = { mutable seen : int; mutable missed : int }

type t = {
  f_dir : string;
  tag : string;
  window : int;
  miss_frac : float;
  shed_spike : int;
  min_interval_s : float;
  max_bundles : int;
  mu : Mutex.t;
  per_class : (string, cls_window) Hashtbl.t;
  mutable drops_pending : int;
  mutable last_dump : float;
  mutable written : int;
}

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(window = 64) ?(miss_frac = 0.5) ?(shed_spike = 64)
    ?(min_interval_s = 0.25) ?(max_bundles = 16) ~dir ~tag () =
  mkdir_p dir;
  {
    f_dir = dir;
    tag;
    window = max 1 window;
    miss_frac;
    shed_spike = max 1 shed_spike;
    min_interval_s;
    max_bundles;
    mu = Mutex.create ();
    per_class = Hashtbl.create 8;
    drops_pending = 0;
    last_dump = 0.;
    written = 0;
  }

let dir t = t.f_dir
let count t = Mutex.lock t.mu; let n = t.written in Mutex.unlock t.mu; n

(* ------------------------------------------------------------------ *)
(* Bundle writer                                                       *)
(* ------------------------------------------------------------------ *)

let output_bundle oc t ~trigger ~unix_ms (events : Tcm_trace.Event.t array)
    ~drops =
  Printf.fprintf oc
    "{\"schema\":\"%s\",\"tag\":%S,\"trigger\":%S,\"unix_ms\":%d,\"events\":%d,\"drops\":%d}\n"
    schema t.tag trigger unix_ms (Array.length events) drops;
  List.iter
    (fun (r : Ledger.row) ->
      Printf.fprintf oc
        "{\"rec\":\"ledger\",\"backend\":%S,\"manager\":%S,\"runtime\":%S,\"class\":%S,\"aborts\":%d,\"wasted_work\":%d,\"waits\":%d,\"wait_cost\":%d,\"wait_ticks\":%d,\"commits\":%d,\"useful_work\":%d}\n"
        r.backend r.manager r.runtime r.cls r.aborts r.wasted_work r.waits
        r.wait_cost r.wait_ticks r.commits r.useful_work)
    (Ledger.rows ());
  List.iter
    (fun ((f : Hot.family), es) ->
      List.iter
        (fun (e : Sketch.entry) ->
          Printf.fprintf oc
            "{\"rec\":\"hot\",\"backend\":%S,\"manager\":%S,\"runtime\":%S,\"key\":%d,\"count\":%d,\"err\":%d}\n"
            f.backend f.manager f.runtime e.key e.count e.err)
        es)
    (Hot.snapshot ());
  Array.iter
    (fun (e : Tcm_trace.Event.t) ->
      Printf.fprintf oc
        "{\"rec\":\"event\",\"seq\":%d,\"dom\":%d,\"tick\":%d,\"kind\":\"%s\",\"a\":%d,\"b\":%d,\"c\":%d}\n"
        e.seq e.dom e.tick
        (Tcm_trace.Event.kind_name e.kind)
        e.a e.b e.c)
    events

(* Caller holds t.mu. *)
let dump_locked t ~trigger =
  let now = Unix.gettimeofday () in
  let unix_ms = int_of_float (now *. 1e3) in
  (* Drain the rings: each bundle carries the window since the
     previous one (Sink.collect only returns new events). *)
  let events = Tcm_trace.Sink.collect () in
  let drops = Tcm_trace.Sink.drops () in
  let name = Printf.sprintf "flight-%013d-%02d-%s.jsonl" unix_ms t.written trigger in
  let path = Filename.concat t.f_dir name in
  let tmp = Filename.concat t.f_dir ("." ^ name ^ ".tmp") in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bundle oc t ~trigger ~unix_ms events ~drops);
  Sys.rename tmp path;
  t.written <- t.written + 1;
  t.last_dump <- now

let maybe_dump_locked t ~trigger =
  if
    t.written < t.max_bundles
    && Unix.gettimeofday () -. t.last_dump >= t.min_interval_s
  then dump_locked t ~trigger

let force t ~trigger =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () ->
      dump_locked t ~trigger)

let note_completion t ~cls ~within_slo =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () ->
      let w =
        match Hashtbl.find_opt t.per_class cls with
        | Some w -> w
        | None ->
            let w = { seen = 0; missed = 0 } in
            Hashtbl.replace t.per_class cls w;
            w
      in
      w.seen <- w.seen + 1;
      if not within_slo then w.missed <- w.missed + 1;
      if w.seen >= t.window then begin
        let breach =
          float_of_int w.missed >= t.miss_frac *. float_of_int w.seen
        in
        w.seen <- 0;
        w.missed <- 0;
        if breach then maybe_dump_locked t ~trigger:"slo_breach"
      end)

let note_drop t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () ->
      t.drops_pending <- t.drops_pending + 1;
      if t.drops_pending >= t.shed_spike then begin
        t.drops_pending <- 0;
        maybe_dump_locked t ~trigger:"shed_spike"
      end)

(* ------------------------------------------------------------------ *)
(* Bundle reader                                                       *)
(* ------------------------------------------------------------------ *)

(* Same minimal scanners as Tcm_trace.Export — fixed shapes, tolerant
   of key order. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then -1
    else if String.sub line i m = pat then i
    else go (i + 1)
  in
  go 0

let int_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "flight line missing %S: %s" key line)
  else begin
    let j = ref (i + String.length pat) in
    let n = String.length line in
    let neg = !j < n && line.[!j] = '-' in
    if neg then incr j;
    let start = !j in
    while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do incr j done;
    if !j = start then failwith ("flight line bad int for " ^ key ^ ": " ^ line);
    let v = int_of_string (String.sub line start (!j - start)) in
    if neg then -v else v
  end

let str_field line key =
  let pat = "\"" ^ key ^ "\":\"" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "flight line missing %S: %s" key line)
  else begin
    let start = i + String.length pat in
    match String.index_from_opt line start '"' with
    | None -> failwith ("flight line unterminated string for " ^ key ^ ": " ^ line)
    | Some stop -> String.sub line start (stop - start)
  end

type bundle = {
  b_tag : string;
  b_trigger : string;
  b_unix_ms : int;
  b_events : Tcm_trace.Event.t array;
  b_drops : int;
  b_ledger : Ledger.row list;
  b_hot : (Hot.family * Sketch.entry list) list;
}

let read_bundle path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tag = ref "" and trigger = ref "" and unix_ms = ref 0 in
      let drops = ref 0 in
      let seen_header = ref false in
      let events = ref [] in
      let ledger = ref [] in
      let hot : (Hot.family, Sketch.entry list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if find_sub line "\"schema\"" >= 0 then begin
             let s = str_field line "schema" in
             if s <> schema then failwith ("unknown flight schema: " ^ s);
             seen_header := true;
             tag := str_field line "tag";
             trigger := str_field line "trigger";
             unix_ms := int_field line "unix_ms";
             drops := int_field line "drops"
           end
           else
             match str_field line "rec" with
             | "event" ->
                 events :=
                   {
                     Tcm_trace.Event.seq = int_field line "seq";
                     dom = int_field line "dom";
                     tick = int_field line "tick";
                     kind =
                       Tcm_trace.Event.kind_of_name (str_field line "kind");
                     a = int_field line "a";
                     b = int_field line "b";
                     c = int_field line "c";
                   }
                   :: !events
             | "ledger" ->
                 ledger :=
                   {
                     Ledger.backend = str_field line "backend";
                     manager = str_field line "manager";
                     runtime = str_field line "runtime";
                     cls = str_field line "class";
                     aborts = int_field line "aborts";
                     wasted_work = int_field line "wasted_work";
                     waits = int_field line "waits";
                     wait_cost = int_field line "wait_cost";
                     wait_ticks = int_field line "wait_ticks";
                     commits = int_field line "commits";
                     useful_work = int_field line "useful_work";
                   }
                   :: !ledger
             | "hot" ->
                 let f =
                   {
                     Hot.backend = str_field line "backend";
                     manager = str_field line "manager";
                     runtime = str_field line "runtime";
                   }
                 in
                 let e =
                   {
                     Sketch.key = int_field line "key";
                     count = int_field line "count";
                     err = int_field line "err";
                   }
                 in
                 let cell =
                   match Hashtbl.find_opt hot f with
                   | Some c -> c
                   | None ->
                       let c = ref [] in
                       Hashtbl.replace hot f c;
                       c
                 in
                 cell := e :: !cell
             | other -> failwith ("unknown flight record kind: " ^ other)
         done
       with End_of_file -> ());
      if not !seen_header then failwith ("flight bundle missing header: " ^ path);
      let ev = Array.of_list (List.rev !events) in
      Array.sort (fun a b -> compare a.Tcm_trace.Event.seq b.Tcm_trace.Event.seq) ev;
      let hot_list =
        Hashtbl.fold (fun f es acc -> (f, List.rev !es) :: acc) hot []
      in
      {
        b_tag = !tag;
        b_trigger = !trigger;
        b_unix_ms = !unix_ms;
        b_events = ev;
        b_drops = !drops;
        b_ledger = List.rev !ledger;
        b_hot = List.sort compare hot_list;
      })

let bundles dirname =
  if not (Sys.file_exists dirname) then []
  else
    Sys.readdir dirname |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 7
           && String.sub f 0 7 = "flight-"
           && Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (Filename.concat dirname)
