type t = { sk : Sketch.t }
type family = { backend : string; manager : string; runtime : string }

let mu = Mutex.create ()

(* All sketches ever created, tagged by family; one per (family,
   domain).  The per-domain table makes creation idempotent on a
   domain, so the sim can re-create handles per run without leaking
   sketches. *)
let all : (family * Sketch.t) list ref = ref []

let dls : (string * string * string, Sketch.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let for_manager ?(k = 32) ?(backend = "locator") ~runtime manager =
  let tbl = Domain.DLS.get dls in
  let key = (backend, manager, runtime) in
  match Hashtbl.find_opt tbl key with
  | Some sk -> { sk }
  | None ->
      let sk = Sketch.create k in
      Hashtbl.replace tbl key sk;
      Mutex.lock mu;
      all := ({ backend; manager; runtime }, sk) :: !all;
      Mutex.unlock mu;
      { sk }

let record t key = if Ledger.enabled () then Sketch.record t.sk key

let snapshot () =
  Mutex.lock mu;
  let entries = !all in
  Mutex.unlock mu;
  let fams =
    List.sort_uniq compare (List.map (fun (f, _) -> f) entries)
  in
  List.filter_map
    (fun f ->
      let sks =
        List.filter_map
          (fun (f', sk) -> if f' = f then Some sk else None)
          entries
      in
      match Sketch.merged sks with [] -> None | es -> Some (f, es))
    fams

let truncate n es = List.filteri (fun i _ -> i < n) es

let top ?(n = 10) () =
  List.map (fun (f, es) -> (f, truncate n es)) (snapshot ())

let pp ?(n = 10) fmt snap =
  Format.fprintf fmt "%-14s %-8s %-5s %10s  %s@." "manager" "backend" "rt"
    "conflicts" "hot keys (key:count, +-err when estimated)";
  List.iter
    (fun (f, es) ->
      let total = List.fold_left (fun a (e : Sketch.entry) -> a + e.count) 0 es in
      let keys =
        String.concat " "
          (List.map
             (fun (e : Sketch.entry) ->
               if e.err = 0 then Printf.sprintf "%d:%d" e.key e.count
               else Printf.sprintf "%d:%d(+-%d)" e.key e.count e.err)
             (truncate n es))
      in
      Format.fprintf fmt "%-14s %-8s %-5s %10d  %s@." f.manager f.backend
        f.runtime total keys)
    snap

let prom_lines ?(n = 10) () =
  List.concat_map
    (fun (f, es) ->
      List.map
        (fun (e : Sketch.entry) ->
          Printf.sprintf
            "tcm_hot_key_conflicts_total{backend=%S,manager=%S,runtime=%S,key=\"%d\"} %d"
            f.backend f.manager f.runtime e.key e.count)
        (truncate n es))
    (snapshot ())

let reset () =
  Mutex.lock mu;
  let entries = !all in
  Mutex.unlock mu;
  List.iter (fun (_, sk) -> Sketch.clear sk) entries
