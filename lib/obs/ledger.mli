(** The wasted-work ledger: every abort and every CM-induced wait,
    priced in the cost model of Alistarh et al.'s "The Transactional
    Conflict Problem" and charged to a [{backend; manager; runtime}]
    family crossed with the service transaction class.

    Storage follows the PR-3/PR-4 shard discipline: one flat int array
    per domain, each (family, class) cell owning a full cache line of
    {!line_words} words, so the record path is a handful of plain int
    stores by the owning domain — no allocation, no atomics — behind
    the one-branch {!enabled} gate shared with {!Hot}.

    Cost model:
    - an abort wastes the dead attempt's work, measured in opens
      (reads + writes + upgrades — the same unit
      {!Tcm_trace.Analysis.wasted_work} and [Analysis.price] use, so
      ledger totals and trace pricing agree);
    - a CM-induced wait costs its duration in the runtime's native
      unit (microseconds live, ticks in the simulator — the exact
      value also observed into [tcm_wait_duration], which is what
      makes {!reconcile} exact), plus the spin/yield ladder rounds
      spent, recorded separately as [wait_ticks]. *)

val enable : unit -> unit
(** Arm the ledger and the {!Hot} sketches (shared flag). *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every domain's accumulators.  Families and class slots
    survive, as in [Tcm_metrics.reset]. *)

val line_words : int
val class_slots : int
(** Fixed class capacity per family (8).  Slot 0 is the unclassified
    ["-"] bucket; classes past the capacity fold into it. *)

val class_slot : string -> int
(** Register (idempotently) a transaction class, returning its slot. *)

val class_name : int -> string

val set_class : int -> unit
(** Set the calling domain's current class slot; subsequent charges on
    this domain land there.  The service sets this around [execute];
    everything else runs in slot 0. *)

val current_class : unit -> int

type t
(** A family handle — cheap to create, deduplicated per
    (backend, manager, runtime) under a mutex like metric series. *)

val for_manager : ?backend:string -> runtime:string -> string -> t
(** Mirrors [Tcm_metrics.Conventions.for_manager]. *)

val charge_abort : t -> work:int -> unit
(** One dead attempt: [work] = opens it had performed. *)

val charge_wait : t -> cost:int -> ticks:int -> unit
(** One CM-induced wait: [cost] in the runtime's duration unit (the
    same value given to [Conventions.wait]), [ticks] the spin/yield
    ladder rounds spent. *)

val note_commit : t -> work:int -> unit
(** One committed attempt and its useful work, so wasted work can be
    reported as a fraction. *)

type row = {
  backend : string;
  manager : string;
  runtime : string;
  cls : string;
  aborts : int;
  wasted_work : int;  (** Opens discarded by aborts. *)
  waits : int;
  wait_cost : int;  (** Wait durations (us live / ticks sim). *)
  wait_ticks : int;  (** Spin/yield ladder rounds. *)
  commits : int;
  useful_work : int;  (** Opens retired by commits. *)
}

val price : row -> int
(** The row's total price: [wasted_work + wait_ticks] — work thrown
    away plus time spent not making progress, in comparable attempt
    units. *)

val rows : unit -> row list
(** Merge every domain's accumulators; all-zero (family, class) cells
    are dropped.  Like metric snapshots, a read concurrent with
    recording domains may lag a few events; one ordered after the
    recording domains joined is exact. *)

val pp : Format.formatter -> row list -> unit

val reconcile :
  ?wait_cost_tol:float -> Tcm_metrics.Snapshot.t -> bool * string list
(** Check that per-family ledger totals match the [tcm.metrics]
    counters: aborts and commits against [tcm_aborts_total] /
    [tcm_commits_total], wait count against the [tcm_wait_duration]
    sample count, and wait cost against that histogram's sample sum.
    Counts must match exactly; the cost comparison tolerates a
    relative error of [wait_cost_tol] (default 0 — both paths observe
    the same integer, so equality is exact when metrics and obs were
    enabled over the same span; pass a tolerance when they were not).
    Families with no activity on either side are skipped.  Returns
    [(ok, mismatches)]. *)
