(** Space-saving heavy-hitter sketch (Metwally et al.) over integer
    keys, used to track the hottest conflicting tvar / orec-stripe
    identities.  A sketch of capacity [k] holds at most [k] counters;
    any key whose true frequency exceeds [total / k] is guaranteed
    present, and each reported count overestimates the true count by
    at most that entry's [err] (itself bounded by [total / k]).

    The record path is a single O(k) scan over two int arrays — no
    allocation, no hashing — which is why the per-domain sketches kept
    by {!Hot} stay cheap enough to sit on the conflict-resolution
    path. *)

type t

val create : int -> t
(** [create k] — capacity [k] (clamped to at least 1) counters. *)

val capacity : t -> int

val total : t -> int
(** Sum of all recorded weights, including those of evicted keys. *)

val record : ?weight:int -> t -> int -> unit
(** Count one occurrence of a key (or [weight] occurrences).  When the
    sketch is full and the key absent, the minimum counter is
    recycled: the new key inherits its count as error bound. *)

val clear : t -> unit

type entry = { key : int; count : int; err : int }
(** [count] overestimates the key's true frequency by at most [err]
    ([count - err] is a guaranteed lower bound). *)

val entries : t -> entry list
(** Sorted by count descending, then key ascending (deterministic). *)

val max_error : t -> int
(** The eviction floor: 0 until the sketch fills, then the smallest
    resident count — the worst-case overestimate for a new arrival. *)

val merged : t list -> entry list
(** Merge per-domain sketches: counts and error bounds add per key
    (the standard mergeable-summary rule), the result is sorted like
    {!entries} and truncated to the largest input capacity.  The
    outcome is independent of the order of the list. *)
