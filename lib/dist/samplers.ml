(** Shared workload distribution samplers.

    One implementation of each skew/arrival distribution, drawn from a
    deterministic {!Tcm_stm.Splitmix} stream, shared by the simulator's
    scenario generators and the service-layer load generator — so "sim
    under Zipf(θ)" and "live service under Zipf(θ)" mean the same
    distribution, and every experiment reproduces from its seed. *)

module Rng = Tcm_stm.Splitmix

module Zipf = struct
  (* The Gray et al. generator ("Quickly generating billion-record
     synthetic databases", SIGMOD '94), as popularized by YCSB:
     constant-time draws after an O(n) harmonic-sum precomputation,
     item 0 the hottest.  θ = 0 degenerates to uniform; θ → 1
     approaches the classic 1/rank law. *)
  type t = {
    n : int;
    theta : float;
    zetan : float;
    alpha : float;
    eta : float;
    half_pow_theta : float;
  }

  let zeta ~n ~theta =
    let s = ref 0. in
    for i = 1 to n do
      s := !s +. (1. /. (float_of_int i ** theta))
    done;
    !s

  let create ~n ~theta =
    if n < 1 then invalid_arg "Samplers.Zipf.create: n >= 1";
    if theta < 0. || theta >= 1. then
      invalid_arg "Samplers.Zipf.create: theta in [0, 1)";
    if theta = 0. then
      { n; theta; zetan = 0.; alpha = 0.; eta = 0.; half_pow_theta = 0. }
    else begin
      let zetan = zeta ~n ~theta in
      let zeta2 = zeta ~n:(min n 2) ~theta in
      let alpha = 1. /. (1. -. theta) in
      let eta =
        (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
        /. (1. -. (zeta2 /. zetan))
      in
      { n; theta; zetan; alpha; eta; half_pow_theta = 0.5 ** theta }
    end

  let n t = t.n
  let theta t = t.theta

  let draw t rng =
    if t.theta = 0. then Rng.int rng t.n
    else begin
      let u = Rng.float rng in
      let uz = u *. t.zetan in
      if uz < 1. then 0
      else if uz < 1. +. t.half_pow_theta then min 1 (t.n - 1)
      else
        let k =
          int_of_float
            (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.) ** t.alpha))
        in
        min (t.n - 1) (max 0 k)
    end
end

(** Exponential inter-arrival gap of a Poisson process with the given
    rate (events per unit time); the gap is in the same time unit. *)
let exp_draw rng ~rate =
  if rate <= 0. then invalid_arg "Samplers.exp_draw: rate > 0";
  -.log (1. -. Rng.float rng) /. rate

(** Precomputed arrival schedules.

    The service generator's hot loop must allocate nothing per
    request, so arrival times are drawn {e ahead of the run} into one
    flat float array: a non-homogeneous Poisson process materialized
    by thinning against its peak rate, exactly the draw-by-draw
    process the open-loop generator used to sample inline — same rng
    discipline, same distribution, zero allocation at fire time. *)
module Schedule = struct
  (** Arrival times (strictly increasing, in [0, horizon)) of a
      Poisson process whose instantaneous rate is [rate_at t],
      thinned against [peak] (an upper bound on [rate_at]).
      Deterministic in the rng stream.
      @raise Invalid_argument on a non-positive peak or horizon. *)
  let arrivals rng ~rate_at ~peak ~horizon =
    if peak <= 0. then invalid_arg "Samplers.Schedule.arrivals: peak > 0";
    if horizon <= 0. then invalid_arg "Samplers.Schedule.arrivals: horizon > 0";
    (* Expected count is peak·horizon before thinning; grow by
       doubling so a bursty process with a low duty cycle doesn't
       over-reserve. *)
    let cap = ref (max 16 (int_of_float (1.2 *. peak *. horizon) + 8)) in
    let buf = ref (Array.make !cap 0.) in
    let n = ref 0 in
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      t := !t +. exp_draw rng ~rate:peak;
      if !t >= horizon then continue := false
      else if Rng.float rng *. peak <= rate_at !t then begin
        if !n = !cap then begin
          let bigger = Array.make (2 * !cap) 0. in
          Array.blit !buf 0 bigger 0 !n;
          buf := bigger;
          cap := 2 * !cap
        end;
        !buf.(!n) <- !t;
        incr n
      end
    done;
    Array.sub !buf 0 !n
end

(** Index drawn proportionally to [weights] (non-negative, at least one
    positive); a zero-weight index is never returned. *)
let pick_weighted rng ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Samplers.pick_weighted: total weight > 0";
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let acc = ref 0. in
  let chosen = ref (-1) in
  (try
     for i = 0 to n - 1 do
       if weights.(i) > 0. then begin
         acc := !acc +. weights.(i);
         if u < !acc then begin
           chosen := i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if !chosen >= 0 then !chosen
  else
    (* Floating-point slack pushed [u] past the cumulative sum: take
       the last positive-weight index. *)
    let rec back i = if weights.(i) > 0. then i else back (i - 1) in
    back (n - 1)
