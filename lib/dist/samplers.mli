(** Shared workload distribution samplers: the one Zipf(θ) and Poisson
    implementation drawn on by both the simulator scenarios and the
    service-layer load generator, deterministic in the
    {!Tcm_stm.Splitmix} stream passed to each draw. *)

module Rng = Tcm_stm.Splitmix

module Zipf : sig
  type t
  (** Precomputed Zipf(θ) sampler over items [0 .. n-1]; item 0 is the
      hottest (frequency ∝ 1/(rank+1)^θ).  Gray et al. / YCSB
      generator: O(n) setup, O(1) per draw. *)

  val create : n:int -> theta:float -> t
  (** θ in [0, 1): 0 is uniform, 0.99 extremely skewed.
      @raise Invalid_argument on [n < 1] or θ outside [0, 1). *)

  val draw : t -> Rng.t -> int
  val n : t -> int
  val theta : t -> float
end

module Schedule : sig
  val arrivals :
    Rng.t -> rate_at:(float -> float) -> peak:float -> horizon:float -> float array
  (** Arrival times (strictly increasing, in [0, horizon)) of a
      non-homogeneous Poisson process with instantaneous rate
      [rate_at t], materialized ahead of time by thinning against
      [peak] (an upper bound on [rate_at]) — the allocation-free-at-
      fire-time form of the open-loop generator's draw.
      @raise Invalid_argument on non-positive [peak] or [horizon]. *)
end

val exp_draw : Rng.t -> rate:float -> float
(** Exponential inter-arrival gap of a Poisson process with [rate]
    events per unit time.  @raise Invalid_argument on [rate <= 0]. *)

val pick_weighted : Rng.t -> weights:float array -> int
(** Index drawn proportionally to [weights]; zero-weight indices are
    never returned.  @raise Invalid_argument when no weight is
    positive. *)
