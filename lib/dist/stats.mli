(** Small statistics helpers for benchmark reporting. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation; 0 for fewer than two points. *)

val percentile : float -> float list -> float
(** Nearest-rank percentile, [p] in [0, 100]; [nan] on an empty
    sample list. *)

val median : float list -> float

val cv : float list -> float
(** Coefficient of variation (0 when the mean is 0); quantifies the
    red-black forest's transaction-length variance. *)

val histogram : buckets:int -> lo:float -> hi:float -> float list -> int array
(** Equal-width buckets over the closed range [[lo, hi]]; a sample
    exactly at [hi] counts in the last bucket.  Samples outside the
    range are dropped. *)
