(** Small statistics helpers for benchmark reporting. *)

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(** p in [0, 100]; nearest-rank percentile.  [nan] on an empty sample
    (a --quick / short-duration run can finish with zero samples). *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let median xs = percentile 50. xs

(** Coefficient of variation — used to demonstrate the "high variance"
    of red-black-forest transaction lengths. *)
let cv xs = match mean xs with 0. -> 0. | m -> stddev xs /. m

(* The range is closed at both ends: a sample exactly at [hi] lands in
   the last bucket rather than being dropped (p100 of a latency sample
   IS the max — losing it skewed every tail histogram). *)
let histogram ~buckets ~lo ~hi xs =
  let h = Array.make buckets 0 in
  let w = (hi -. lo) /. float_of_int buckets in
  List.iter
    (fun x ->
      if x >= lo && x <= hi then
        let b = int_of_float ((x -. lo) /. w) in
        h.(min (buckets - 1) b) <- h.(min (buckets - 1) b) + 1)
    xs;
  h
