(** Global trace sink: one SPSC {!Ring} per domain, lazily created on first
    emit and registered with the collector.  Disabled is the default; every
    emitter is a single [Atomic.get] branch away from a return, so dormant
    emit sites cost one load on the hot path and allocate nothing.

    Lifecycle is single-controller: one thread (the benchmark driver or a
    test) calls {!start}, runs traced work, calls {!stop} once the traced
    domains have quiesced, then {!collect}.  [start] bumps a generation
    counter, so rings left over from a previous capture are abandoned rather
    than mixed in.  {!collect} may also be called mid-run: draining is safe
    against concurrent pushes. *)

val start : ?capacity:int -> unit -> unit
(** Enable tracing. [capacity] is the per-domain ring capacity in events
    (default 65536, rounded up to a power of two). Resets the sequence
    counter and abandons rings from earlier captures. *)

val stop : unit -> unit
(** Disable tracing. Buffered events stay available to {!collect}. *)

val enabled : unit -> bool

val collect : unit -> Event.t array
(** Drain every registered ring and return the merged events sorted by [seq]
    (a linearized order: [seq] comes from one global counter). Repeated calls
    return only events pushed since the previous drain. *)

val drops : unit -> int
(** Total events dropped (rings full) across registered rings. *)

(** {1 Emitters}

    All no-ops unless {!start}ed. [tick] is the simulator tick; hardware
    (STM) emit sites pass [~tick:0]. *)

val attempt_begin : txid:int -> attempt:int -> tick:int -> unit
val attempt_commit : txid:int -> attempt:int -> tick:int -> unit
val attempt_abort : txid:int -> attempt:int -> tick:int -> unit

val conflict : me:int -> other:int -> decision:int -> tick:int -> unit
(** Emitted when a contention manager returns a verdict; [decision] is one of
    the [Event.d_*] codes. *)

val wait_begin : me:int -> enemy:int -> tick:int -> unit
val wait_end : me:int -> enemy:int -> tick:int -> unit

val acquired : txid:int -> obj:int -> write:bool -> tick:int -> unit
(** Locator install / object open. *)
