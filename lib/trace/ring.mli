(** Single-producer single-consumer ring of fixed-size integer event slots.

    The producer is the domain running transactions; the consumer is whoever
    calls {!drain} (the collector).  Capacity is rounded up to a power of two.
    [push] never blocks and never allocates: when the ring is full the event
    is dropped and counted.  Publication order: slot words are plain writes,
    made visible by the subsequent [Atomic.set] on [tail] (release);  [drain]
    reads [tail] (acquire) before touching slots, so it only reads slots whose
    writes happened-before. *)

type t

val create : ?capacity:int -> dom:int -> unit -> t
(** [capacity] is in events (default 65536), rounded up to a power of two. *)

val dom : t -> int
val capacity : t -> int

val push : t -> seq:int -> kind:int -> a:int -> b:int -> c:int -> tick:int -> unit
(** Producer side. Drops (and counts) when the ring is full. *)

val drain :
  t -> f:(seq:int -> kind:int -> a:int -> b:int -> c:int -> tick:int -> unit) -> int
(** Consumer side: calls [f] on every unconsumed event in push order, advances
    the read cursor, returns the number of events consumed. Safe to call while
    the producer is still pushing. *)

val dropped : t -> int
(** Events discarded because the ring was full. *)
