(** Offline analyses over a merged trace (an [Event.t array] sorted by [seq],
    as returned by {!Sink.collect} or {!Export.read}). *)

(** {1 Pending commit (Theorem 1, empirically)}

    The paper's pending-commit property: at any time, some running
    transaction will run uninterrupted until it commits.  The observable
    consequence in a trace: at every conflict-resolution event, at least one
    attempt that has begun and not yet terminated goes on to commit.  This is
    deliberately the global (any live attempt) reading, not the per-pair one:
    under Greedy the paper's own Section 4 chain has both parties of a
    conflict eventually aborted (T_{i+1} aborts T_i and is later aborted by
    T_{i+2}) while the property still holds. *)

type pc_report = {
  conflicts : int;  (** [Resolve] events examined *)
  violations : int;
      (** conflicts where every live attempt's outcome is known and none
          commits *)
  undecidable : int;
      (** conflicts where no live attempt commits but some live attempt's
          outcome never appears in the trace (truncated run) *)
  first_violation_seq : int;  (** seq of the first violation, or -1 *)
}

val pending_commit : Event.t array -> pc_report

(** {1 Abort cascades}

    A cascade is a chain of [Resolve]/abort_other events where each aborter
    is later itself aborted by another transaction: its length bounds how far
    one decision's wasted work propagates.  Chains are matched on logical
    txids; a resolve verdict whose victim had already terminated still counts
    (the manager chose to abort — this measures decisions, not outcomes). *)

type cascade_report = {
  enemy_aborts : int;  (** abort_other verdicts *)
  max_cascade : int;
  mean_cascade : float;
}

val cascades : Event.t array -> cascade_report

(** {1 Wasted work}

    [Open] events (locator installs) attributed to attempts that go on to
    abort: the trace-level analogue of the paper's "work is wasted when a
    transaction aborts". *)

type waste_report = {
  attempts : int;
  committed : int;
  aborted : int;
  opens_total : int;
  opens_wasted : int;  (** opens charged to attempts that abort *)
  waste_ratio : float;  (** opens_wasted / opens_total, or 0. *)
}

val wasted_work : Event.t array -> waste_report

(** {1 Conflict pricing ("The Transactional Conflict Problem")}

    Alistarh et al. price each abort-vs-wait decision by the work it
    destroys: an abort wastes everything the dead attempt had done, a
    wait costs the time spent blocked.  Applied to a trace: wasted
    work is [Open]s charged to aborting attempts (exactly
    {!wasted_work}'s attribution) and wait cost is the summed length
    of [Wait_begin]/[Wait_end] intervals — an interval an abort cuts
    short (the victim never emits [Wait_end]) is closed at the
    terminal event.  Time is in ticks when the trace carries them, seq
    units otherwise, so live and simulated runs of the manager zoo can
    be ranked on the same scalar. *)

type price_report = {
  p_attempts : int;
  p_committed : int;
  p_aborted : int;
  work_total : int;  (** opens *)
  work_wasted : int;  (** opens by attempts that abort *)
  waits : int;  (** wait intervals (terminal-closed ones included) *)
  wait_cost : int;  (** summed interval length, ticks or seq units *)
  price : int;  (** [work_wasted + wait_cost] *)
  price_per_commit : float;  (** [price / committed]; [inf] when none *)
}

val price : Event.t array -> price_report
val pp_price : Format.formatter -> price_report -> unit

(** {1 Makespan (Theorem 9, empirically)} *)

val empirical_makespan : Event.t array -> int
(** Last [Commit] time minus first [Begin] time; measured in ticks when the
    trace carries simulator ticks, in seq units otherwise. 0 on a trace with
    no commit. *)

type makespan_report = {
  measured : int;
  optimal : int;  (** caller-supplied clairvoyant makespan *)
  ratio : float;
  bound_factor : int;  (** caller-supplied, e.g. s(s+1)+2 from tcm_sched *)
  within_bound : bool;
}

val makespan_report : optimal:int -> bound_factor:int -> Event.t array -> makespan_report
(** [tcm_trace] depends on nothing, so the scheduler-side quantities come in
    as arguments: pass [Tcm_sched.Optimal] results and
    [Tcm_sched.Bounds.pending_commit_factor]. *)

(** {1 Summary} *)

val kind_counts : Event.t array -> (Event.kind * int) list
val pp_summary : Format.formatter -> Event.t array -> unit
