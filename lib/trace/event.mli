(** Fixed-size integer event records shared by the STM runtime and the
    simulator.  A slot is six ints: [seq; kind; a; b; c; tick].  The meaning
    of [a]/[b]/[c] depends on [kind]; [tick] is the simulator tick (0 for
    hardware runs); [seq] is a global order drawn from one atomic counter, so
    merging per-domain rings by [seq] yields a linearized event order. *)

type kind =
  | Begin  (** a = txid (logical timestamp), b = attempt uid *)
  | Commit  (** a = txid, b = attempt uid *)
  | Abort  (** a = txid, b = attempt uid *)
  | Resolve  (** a = me txid, b = other txid, c = decision code *)
  | Wait_begin  (** a = me txid, b = enemy txid *)
  | Wait_end  (** a = me txid, b = enemy txid (0 if unknown at wakeup) *)
  | Open  (** locator install: a = txid, b = object id, c = 0 read / 1 write *)

type t = { seq : int; dom : int; tick : int; kind : kind; a : int; b : int; c : int }

val slot_words : int
(** Ints per ring slot (6: seq, kind, a, b, c, tick). *)

val kind_code : kind -> int
val kind_of_code : int -> kind
val kind_name : kind -> string
val kind_of_name : string -> kind

(** Decision codes carried in [c] of a [Resolve] event. *)

val d_abort_other : int
val d_abort_self : int
val d_block : int
val d_backoff : int
val decision_name : int -> string

val pp : Format.formatter -> t -> unit
