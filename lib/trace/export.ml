let schema = "tcm-trace/1"

let output_jsonl ?(drops = 0) oc (trace : Event.t array) =
  Printf.fprintf oc "{\"schema\":\"%s\",\"events\":%d,\"drops\":%d}\n" schema
    (Array.length trace) drops;
  Array.iter
    (fun (e : Event.t) ->
      Printf.fprintf oc
        "{\"seq\":%d,\"dom\":%d,\"tick\":%d,\"kind\":\"%s\",\"a\":%d,\"b\":%d,\"c\":%d}\n"
        e.seq e.dom e.tick (Event.kind_name e.kind) e.a e.b e.c)
    trace

let write_jsonl ?drops path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_jsonl ?drops oc trace)

(* Minimal scanners for the fixed shapes we emit; tolerant of key order. *)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then -1
    else if String.sub line i m = pat then i
    else go (i + 1)
  in
  go 0

let int_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "trace line missing %S: %s" key line)
  else begin
    let j = ref (i + String.length pat) in
    let n = String.length line in
    let neg = !j < n && line.[!j] = '-' in
    if neg then incr j;
    let start = !j in
    while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do incr j done;
    if !j = start then failwith ("trace line bad int for " ^ key ^ ": " ^ line);
    let v = int_of_string (String.sub line start (!j - start)) in
    if neg then -v else v
  end

let str_field line key =
  let pat = "\"" ^ key ^ "\":\"" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "trace line missing %S: %s" key line)
  else begin
    let start = i + String.length pat in
    match String.index_from_opt line start '"' with
    | None -> failwith ("trace line unterminated string for " ^ key ^ ": " ^ line)
    | Some stop -> String.sub line start (stop - start)
  end

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let drops = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if find_sub line "\"schema\"" >= 0 then begin
             let s = str_field line "schema" in
             if s <> schema then failwith ("unknown trace schema: " ^ s);
             drops := int_field line "drops"
           end
           else
             events :=
               {
                 Event.seq = int_field line "seq";
                 dom = int_field line "dom";
                 tick = int_field line "tick";
                 kind = Event.kind_of_name (str_field line "kind");
                 a = int_field line "a";
                 b = int_field line "b";
                 c = int_field line "c";
               }
               :: !events
         done
       with End_of_file -> ());
      let arr = Array.of_list !events in
      Array.sort (fun (x : Event.t) (y : Event.t) -> compare x.seq y.seq) arr;
      (arr, !drops))

(* Chrome Trace Event Format. Tracks are domains; attempts and waits are B/E
   slices, resolves and opens are instants. Waits nest inside attempts, but a
   waiting attempt can be aborted without a Wait_end event, so slice closure
   is tracked per track and forced before closing the enclosing attempt. *)

type track = { mutable txn_open : bool; mutable wait_open : bool }

let output_chrome oc (trace : Event.t array) =
  let tracks : (int, track) Hashtbl.t = Hashtbl.create 16 in
  let track dom =
    match Hashtbl.find_opt tracks dom with
    | Some t -> t
    | None ->
      let t = { txn_open = false; wait_open = false } in
      Hashtbl.add tracks dom t;
      t
  in
  let first = ref true in
  let emit dom ts ph name cat args =
    if !first then first := false else output_string oc ",\n";
    Printf.fprintf oc
      "{\"pid\":0,\"tid\":%d,\"ts\":%d,\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\"%s}"
      dom ts ph name cat
      (if args = "" then "" else ",\"args\":{" ^ args ^ "}")
  in
  let close_wait dom ts =
    let t = track dom in
    if t.wait_open then begin
      t.wait_open <- false;
      emit dom ts "E" "wait" "wait" ""
    end
  in
  let close_txn dom ts =
    let t = track dom in
    close_wait dom ts;
    if t.txn_open then begin
      t.txn_open <- false;
      emit dom ts "E" "tx" "txn" ""
    end
  in
  output_string oc "{\"traceEvents\":[\n";
  let last_ts = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      let ts = e.seq in
      last_ts := ts;
      match e.kind with
      | Event.Begin ->
        close_txn e.dom ts;
        (track e.dom).txn_open <- true;
        emit e.dom ts "B" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"txid\":%d,\"attempt\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Commit ->
        close_wait e.dom ts;
        (track e.dom).txn_open <- false;
        emit e.dom ts "E" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"outcome\":\"commit\",\"tick\":%d" e.tick)
      | Event.Abort ->
        close_wait e.dom ts;
        (track e.dom).txn_open <- false;
        emit e.dom ts "E" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"outcome\":\"abort\",\"tick\":%d" e.tick)
      | Event.Wait_begin ->
        close_wait e.dom ts;
        (track e.dom).wait_open <- true;
        emit e.dom ts "B" "wait" "wait"
          (Printf.sprintf "\"me\":%d,\"enemy\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Wait_end -> close_wait e.dom ts
      | Event.Resolve ->
        emit e.dom ts "i" ("resolve:" ^ Event.decision_name e.c) "cm"
          (Printf.sprintf "\"me\":%d,\"other\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Open ->
        emit e.dom ts "i" "open" "obj"
          (Printf.sprintf "\"txid\":%d,\"obj\":%d,\"write\":%s,\"tick\":%d" e.a e.b
             (if e.c = 1 then "true" else "false")
             e.tick))
    trace;
  Hashtbl.iter (fun dom _ -> close_txn dom (!last_ts + 1)) tracks;
  output_string oc "\n]}\n"

let write_chrome path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_chrome oc trace)
