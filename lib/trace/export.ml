let schema = "tcm-trace/1"

let output_jsonl ?(drops = 0) ?manager oc (trace : Event.t array) =
  (match manager with
  | None ->
    Printf.fprintf oc "{\"schema\":\"%s\",\"events\":%d,\"drops\":%d}\n" schema
      (Array.length trace) drops
  | Some m ->
    Printf.fprintf oc
      "{\"schema\":\"%s\",\"manager\":%S,\"events\":%d,\"drops\":%d}\n" schema m
      (Array.length trace) drops);
  Array.iter
    (fun (e : Event.t) ->
      Printf.fprintf oc
        "{\"seq\":%d,\"dom\":%d,\"tick\":%d,\"kind\":\"%s\",\"a\":%d,\"b\":%d,\"c\":%d}\n"
        e.seq e.dom e.tick (Event.kind_name e.kind) e.a e.b e.c)
    trace

let write_jsonl ?drops ?manager path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_jsonl ?drops ?manager oc trace)

(* Minimal scanners for the fixed shapes we emit; tolerant of key order. *)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then -1
    else if String.sub line i m = pat then i
    else go (i + 1)
  in
  go 0

let int_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "trace line missing %S: %s" key line)
  else begin
    let j = ref (i + String.length pat) in
    let n = String.length line in
    let neg = !j < n && line.[!j] = '-' in
    if neg then incr j;
    let start = !j in
    while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do incr j done;
    if !j = start then failwith ("trace line bad int for " ^ key ^ ": " ^ line);
    let v = int_of_string (String.sub line start (!j - start)) in
    if neg then -v else v
  end

let str_field line key =
  let pat = "\"" ^ key ^ "\":\"" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "trace line missing %S: %s" key line)
  else begin
    let start = i + String.length pat in
    match String.index_from_opt line start '"' with
    | None -> failwith ("trace line unterminated string for " ^ key ^ ": " ^ line)
    | Some stop -> String.sub line start (stop - start)
  end

(* A file holds one or more sections, each opened by a header line
   (optionally labelled with the manager that produced the capture)
   and followed by its events.  Headerless files read as one anonymous
   section, so pre-section traces keep parsing unchanged. *)
let read_jsonl_sections path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let sections = ref [] in
      let cur_mgr = ref None and cur_drops = ref 0 and cur_events = ref [] in
      let in_section = ref false in
      let flush () =
        if !in_section || !cur_events <> [] then begin
          let arr = Array.of_list !cur_events in
          Array.sort (fun (x : Event.t) (y : Event.t) -> compare x.seq y.seq) arr;
          sections := (!cur_mgr, arr, !cur_drops) :: !sections
        end
      in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if find_sub line "\"schema\"" >= 0 then begin
             let s = str_field line "schema" in
             if s <> schema then failwith ("unknown trace schema: " ^ s);
             flush ();
             in_section := true;
             cur_mgr :=
               (if find_sub line "\"manager\"" >= 0 then
                  Some (str_field line "manager")
                else None);
             cur_drops := int_field line "drops";
             cur_events := []
           end
           else
             cur_events :=
               {
                 Event.seq = int_field line "seq";
                 dom = int_field line "dom";
                 tick = int_field line "tick";
                 kind = Event.kind_of_name (str_field line "kind");
                 a = int_field line "a";
                 b = int_field line "b";
                 c = int_field line "c";
               }
               :: !cur_events
         done
       with End_of_file -> ());
      flush ();
      List.rev !sections)

let read_jsonl path =
  match read_jsonl_sections path with
  | [] -> ([||], 0)
  | sections ->
    (* Sections come from separate captures whose seq counters restart
       at 0, so re-offset each one past its predecessor's range before
       concatenating: downstream analyses assume seq is monotone. *)
    let drops = List.fold_left (fun a (_, _, d) -> a + d) 0 sections in
    let base = ref 0 in
    let parts =
      List.map
        (fun (_, arr, _) ->
          let b = !base in
          let shifted =
            Array.map (fun (e : Event.t) -> { e with Event.seq = e.seq + b }) arr
          in
          let n = Array.length shifted in
          if n > 0 then base := shifted.(n - 1).Event.seq + 1;
          shifted)
        sections
    in
    (Array.concat parts, drops)

(* Chrome Trace Event Format. Tracks are domains; attempts and waits are B/E
   slices, resolves and opens are instants. Waits nest inside attempts, but a
   waiting attempt can be aborted without a Wait_end event, so slice closure
   is tracked per track and forced before closing the enclosing attempt. *)

type track = { mutable txn_open : bool; mutable wait_open : bool }

let output_chrome oc (trace : Event.t array) =
  let tracks : (int, track) Hashtbl.t = Hashtbl.create 16 in
  let track dom =
    match Hashtbl.find_opt tracks dom with
    | Some t -> t
    | None ->
      let t = { txn_open = false; wait_open = false } in
      Hashtbl.add tracks dom t;
      t
  in
  let first = ref true in
  let emit dom ts ph name cat args =
    if !first then first := false else output_string oc ",\n";
    Printf.fprintf oc
      "{\"pid\":0,\"tid\":%d,\"ts\":%d,\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\"%s}"
      dom ts ph name cat
      (if args = "" then "" else ",\"args\":{" ^ args ^ "}")
  in
  let close_wait dom ts =
    let t = track dom in
    if t.wait_open then begin
      t.wait_open <- false;
      emit dom ts "E" "wait" "wait" ""
    end
  in
  let close_txn dom ts =
    let t = track dom in
    close_wait dom ts;
    if t.txn_open then begin
      t.txn_open <- false;
      emit dom ts "E" "tx" "txn" ""
    end
  in
  output_string oc "{\"traceEvents\":[\n";
  let last_ts = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      let ts = e.seq in
      last_ts := ts;
      match e.kind with
      | Event.Begin ->
        close_txn e.dom ts;
        (track e.dom).txn_open <- true;
        emit e.dom ts "B" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"txid\":%d,\"attempt\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Commit ->
        close_wait e.dom ts;
        (track e.dom).txn_open <- false;
        emit e.dom ts "E" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"outcome\":\"commit\",\"tick\":%d" e.tick)
      | Event.Abort ->
        close_wait e.dom ts;
        (track e.dom).txn_open <- false;
        emit e.dom ts "E" (Printf.sprintf "tx%d" e.a) "txn"
          (Printf.sprintf "\"outcome\":\"abort\",\"tick\":%d" e.tick)
      | Event.Wait_begin ->
        close_wait e.dom ts;
        (track e.dom).wait_open <- true;
        emit e.dom ts "B" "wait" "wait"
          (Printf.sprintf "\"me\":%d,\"enemy\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Wait_end -> close_wait e.dom ts
      | Event.Resolve ->
        emit e.dom ts "i" ("resolve:" ^ Event.decision_name e.c) "cm"
          (Printf.sprintf "\"me\":%d,\"other\":%d,\"tick\":%d" e.a e.b e.tick)
      | Event.Open ->
        emit e.dom ts "i" "open" "obj"
          (Printf.sprintf "\"txid\":%d,\"obj\":%d,\"write\":%s,\"tick\":%d" e.a e.b
             (if e.c = 1 then "true" else "false")
             e.tick))
    trace;
  Hashtbl.iter (fun dom _ -> close_txn dom (!last_ts + 1)) tracks;
  output_string oc "\n]}\n"

let write_chrome path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_chrome oc trace)
