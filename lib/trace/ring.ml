type t = {
  dom : int;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  buf : int array;
  head : int Atomic.t;  (* next event index to consume *)
  tail : int Atomic.t;  (* next event index to produce *)
  dropped : int Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 1 lsl 16) ~dom () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  let cap = next_pow2 capacity in
  {
    dom;
    mask = cap - 1;
    buf = Array.make (cap * Event.slot_words) 0;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    dropped = Atomic.make 0;
  }

let dom t = t.dom
let capacity t = t.mask + 1

let push t ~seq ~kind ~a ~b ~c ~tick =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head > t.mask then Atomic.incr t.dropped
  else begin
    let base = (tl land t.mask) * Event.slot_words in
    let buf = t.buf in
    Array.unsafe_set buf base seq;
    Array.unsafe_set buf (base + 1) kind;
    Array.unsafe_set buf (base + 2) a;
    Array.unsafe_set buf (base + 3) b;
    Array.unsafe_set buf (base + 4) c;
    Array.unsafe_set buf (base + 5) tick;
    Atomic.set t.tail (tl + 1)
  end

let drain t ~f =
  let h = Atomic.get t.head in
  let tl = Atomic.get t.tail in
  for i = h to tl - 1 do
    let base = (i land t.mask) * Event.slot_words in
    let buf = t.buf in
    f ~seq:buf.(base) ~kind:buf.(base + 1) ~a:buf.(base + 2) ~b:buf.(base + 3)
      ~c:buf.(base + 4) ~tick:buf.(base + 5)
  done;
  Atomic.set t.head tl;
  tl - h

let dropped t = Atomic.get t.dropped
