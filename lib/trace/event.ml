type kind = Begin | Commit | Abort | Resolve | Wait_begin | Wait_end | Open

type t = { seq : int; dom : int; tick : int; kind : kind; a : int; b : int; c : int }

let slot_words = 6

let kind_code = function
  | Begin -> 0
  | Commit -> 1
  | Abort -> 2
  | Resolve -> 3
  | Wait_begin -> 4
  | Wait_end -> 5
  | Open -> 6

let kind_of_code = function
  | 0 -> Begin
  | 1 -> Commit
  | 2 -> Abort
  | 3 -> Resolve
  | 4 -> Wait_begin
  | 5 -> Wait_end
  | 6 -> Open
  | n -> invalid_arg (Printf.sprintf "Event.kind_of_code: %d" n)

let kind_name = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | Resolve -> "resolve"
  | Wait_begin -> "wait_begin"
  | Wait_end -> "wait_end"
  | Open -> "open"

let kind_of_name = function
  | "begin" -> Begin
  | "commit" -> Commit
  | "abort" -> Abort
  | "resolve" -> Resolve
  | "wait_begin" -> Wait_begin
  | "wait_end" -> Wait_end
  | "open" -> Open
  | s -> invalid_arg ("Event.kind_of_name: " ^ s)

let d_abort_other = 0
let d_abort_self = 1
let d_block = 2
let d_backoff = 3

let decision_name = function
  | 0 -> "abort_other"
  | 1 -> "abort_self"
  | 2 -> "block"
  | 3 -> "backoff"
  | n -> Printf.sprintf "decision_%d" n

let pp fmt e =
  Format.fprintf fmt "#%d d%d t%d %s a=%d b=%d c=%d" e.seq e.dom e.tick
    (kind_name e.kind) e.a e.b e.c
