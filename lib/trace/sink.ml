let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let seq = Atomic.make 0
let default_capacity = 1 lsl 16
let ring_capacity = ref default_capacity

(* Ring registry. Mutated only on ring creation (once per domain per capture)
   and on [start]/[collect] from the controlling thread. *)
let registry : Ring.t list ref = ref []
let registry_lock = Mutex.create ()

let register r =
  Mutex.lock registry_lock;
  registry := r :: !registry;
  Mutex.unlock registry_lock

type slot = { mutable gen : int; mutable ring : Ring.t option }

let key = Domain.DLS.new_key (fun () -> { gen = -1; ring = None })

let my_ring () =
  let s = Domain.DLS.get key in
  let g = Atomic.get generation in
  match s.ring with
  | Some r when s.gen = g -> r
  | _ ->
    let r = Ring.create ~capacity:!ring_capacity ~dom:(Domain.self () :> int) () in
    s.gen <- g;
    s.ring <- Some r;
    register r;
    r

let record kind a b c tick =
  let r = my_ring () in
  let s = Atomic.fetch_and_add seq 1 in
  Ring.push r ~seq:s ~kind ~a ~b ~c ~tick

let start ?(capacity = default_capacity) () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.incr generation;
  Atomic.set seq 0;
  ring_capacity := capacity;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let collect () =
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  let acc = ref [] in
  List.iter
    (fun r ->
      let dom = Ring.dom r in
      ignore
        (Ring.drain r ~f:(fun ~seq ~kind ~a ~b ~c ~tick ->
             acc :=
               { Event.seq; dom; tick; kind = Event.kind_of_code kind; a; b; c }
               :: !acc)))
    rings;
  let arr = Array.of_list !acc in
  Array.sort (fun (x : Event.t) (y : Event.t) -> compare x.seq y.seq) arr;
  arr

let drops () =
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  List.fold_left (fun n r -> n + Ring.dropped r) 0 rings

(* Emitters: the [Atomic.get] is the only cost when tracing is off. *)

let k_begin = Event.kind_code Event.Begin
let k_commit = Event.kind_code Event.Commit
let k_abort = Event.kind_code Event.Abort
let k_resolve = Event.kind_code Event.Resolve
let k_wait_begin = Event.kind_code Event.Wait_begin
let k_wait_end = Event.kind_code Event.Wait_end
let k_open = Event.kind_code Event.Open

let[@inline] attempt_begin ~txid ~attempt ~tick =
  if Atomic.get enabled_flag then record k_begin txid attempt 0 tick

let[@inline] attempt_commit ~txid ~attempt ~tick =
  if Atomic.get enabled_flag then record k_commit txid attempt 0 tick

let[@inline] attempt_abort ~txid ~attempt ~tick =
  if Atomic.get enabled_flag then record k_abort txid attempt 0 tick

let[@inline] conflict ~me ~other ~decision ~tick =
  if Atomic.get enabled_flag then record k_resolve me other decision tick

let[@inline] wait_begin ~me ~enemy ~tick =
  if Atomic.get enabled_flag then record k_wait_begin me enemy 0 tick

let[@inline] wait_end ~me ~enemy ~tick =
  if Atomic.get enabled_flag then record k_wait_end me enemy 0 tick

let[@inline] acquired ~txid ~obj ~write ~tick =
  if Atomic.get enabled_flag then
    record k_open txid obj (if write then 1 else 0) tick
