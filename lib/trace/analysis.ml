type pc_report = {
  conflicts : int;
  violations : int;
  undecidable : int;
  first_violation_seq : int;
}

(* Pass 1: final outcome of every attempt uid. Pass 2: sweep in seq order
   keeping counts of live attempts by eventual outcome; a Resolve with no
   live committer is a violation (or undecidable if a live attempt's outcome
   never shows up, e.g. the run was truncated mid-attempt). The [live] table
   guards the counters against unbalanced begin/terminal pairs from ring
   drops. *)
let pending_commit (trace : Event.t array) =
  let outcomes : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Commit -> Hashtbl.replace outcomes e.b true
      | Event.Abort -> Hashtbl.replace outcomes e.b false
      | _ -> ())
    trace;
  let live : (int, [ `C | `A | `U ]) Hashtbl.t = Hashtbl.create 256 in
  let live_commit = ref 0 and live_unknown = ref 0 in
  let conflicts = ref 0 and violations = ref 0 and undecidable = ref 0 in
  let first_violation = ref (-1) in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Begin ->
        if not (Hashtbl.mem live e.b) then begin
          let cls =
            match Hashtbl.find_opt outcomes e.b with
            | Some true -> incr live_commit; `C
            | Some false -> `A
            | None -> incr live_unknown; `U
          in
          Hashtbl.replace live e.b cls
        end
      | Event.Commit | Event.Abort -> (
        match Hashtbl.find_opt live e.b with
        | Some cls ->
          Hashtbl.remove live e.b;
          (match cls with
          | `C -> decr live_commit
          | `U -> decr live_unknown
          | `A -> ())
        | None -> ())
      | Event.Resolve ->
        incr conflicts;
        if !live_commit = 0 then
          if !live_unknown > 0 then incr undecidable
          else begin
            incr violations;
            if !first_violation < 0 then first_violation := e.seq
          end
      | _ -> ())
    trace;
  {
    conflicts = !conflicts;
    violations = !violations;
    undecidable = !undecidable;
    first_violation_seq = !first_violation;
  }

type cascade_report = { enemy_aborts : int; max_cascade : int; mean_cascade : float }

(* Backward sweep: [best] maps a txid to the longest abort chain rooted at an
   abort_other verdict (at a later seq) whose victim is that txid. An
   abort_other of victim V by A at seq s extends A's best later chain by 1. *)
let cascades (trace : Event.t array) =
  let best : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let max_c = ref 0 and total = ref 0 and count = ref 0 in
  for i = Array.length trace - 1 downto 0 do
    let e = trace.(i) in
    if e.kind = Event.Resolve && e.c = Event.d_abort_other then begin
      let len = 1 + Option.value (Hashtbl.find_opt best e.a) ~default:0 in
      let cur = Option.value (Hashtbl.find_opt best e.b) ~default:0 in
      if len > cur then Hashtbl.replace best e.b len;
      if len > !max_c then max_c := len;
      total := !total + len;
      incr count
    end
  done;
  {
    enemy_aborts = !count;
    max_cascade = !max_c;
    mean_cascade = (if !count = 0 then 0. else float_of_int !total /. float_of_int !count);
  }

type waste_report = {
  attempts : int;
  committed : int;
  aborted : int;
  opens_total : int;
  opens_wasted : int;
  waste_ratio : float;
}

let wasted_work (trace : Event.t array) =
  let outcomes : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Commit -> Hashtbl.replace outcomes e.b true
      | Event.Abort -> Hashtbl.replace outcomes e.b false
      | _ -> ())
    trace;
  (* txid -> uid of its attempt current at this point of the sweep *)
  let cur : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let attempts = ref 0 and committed = ref 0 and aborted = ref 0 in
  let opens_total = ref 0 and opens_wasted = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Begin ->
        incr attempts;
        Hashtbl.replace cur e.a e.b
      | Event.Commit -> incr committed
      | Event.Abort -> incr aborted
      | Event.Open -> (
        incr opens_total;
        match Hashtbl.find_opt cur e.a with
        | Some uid -> (
          match Hashtbl.find_opt outcomes uid with
          | Some false -> incr opens_wasted
          | Some true | None -> ())
        | None -> ())
      | _ -> ())
    trace;
  {
    attempts = !attempts;
    committed = !committed;
    aborted = !aborted;
    opens_total = !opens_total;
    opens_wasted = !opens_wasted;
    waste_ratio =
      (if !opens_total = 0 then 0.
       else float_of_int !opens_wasted /. float_of_int !opens_total);
  }

type price_report = {
  p_attempts : int;
  p_committed : int;
  p_aborted : int;
  work_total : int;
  work_wasted : int;
  waits : int;
  wait_cost : int;
  price : int;
  price_per_commit : float;
}

(* The same outcome/current-attempt machinery as [wasted_work], plus
   wait-interval pairing: a Wait_begin opens an interval for its txid,
   closed by the matching Wait_end — or by the attempt's terminal
   event, since an attempt blocked on an enemy can be aborted while
   waiting and never emit Wait_end.  Intervals are measured in ticks
   when the trace carries them, in seq units otherwise (same
   convention as [empirical_makespan]). *)
let price (trace : Event.t array) =
  let outcomes : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Commit -> Hashtbl.replace outcomes e.b true
      | Event.Abort -> Hashtbl.replace outcomes e.b false
      | _ -> ())
    trace;
  let has_ticks = Array.exists (fun (e : Event.t) -> e.tick > 0) trace in
  let time (e : Event.t) = if has_ticks then e.tick else e.seq in
  let cur : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let wait_start : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let attempts = ref 0 and committed = ref 0 and aborted = ref 0 in
  let work_total = ref 0 and work_wasted = ref 0 in
  let waits = ref 0 and wait_cost = ref 0 in
  let close_wait txid t =
    match Hashtbl.find_opt wait_start txid with
    | None -> ()
    | Some t0 ->
      Hashtbl.remove wait_start txid;
      incr waits;
      wait_cost := !wait_cost + max 0 (t - t0)
  in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Begin ->
        incr attempts;
        Hashtbl.replace cur e.a e.b
      | Event.Commit ->
        incr committed;
        close_wait e.a (time e)
      | Event.Abort ->
        incr aborted;
        close_wait e.a (time e)
      | Event.Wait_begin -> Hashtbl.replace wait_start e.a (time e)
      | Event.Wait_end -> close_wait e.a (time e)
      | Event.Open -> (
        incr work_total;
        match Hashtbl.find_opt cur e.a with
        | Some uid -> (
          match Hashtbl.find_opt outcomes uid with
          | Some false -> incr work_wasted
          | Some true | None -> ())
        | None -> ())
      | _ -> ())
    trace;
  {
    p_attempts = !attempts;
    p_committed = !committed;
    p_aborted = !aborted;
    work_total = !work_total;
    work_wasted = !work_wasted;
    waits = !waits;
    wait_cost = !wait_cost;
    price = !work_wasted + !wait_cost;
    price_per_commit =
      (if !committed = 0 then infinity
       else float_of_int (!work_wasted + !wait_cost) /. float_of_int !committed);
  }

let pp_price fmt p =
  Format.fprintf fmt
    "price: attempts=%d committed=%d aborted=%d work=%d wasted=%d waits=%d wait-cost=%d price=%d per-commit=%s@."
    p.p_attempts p.p_committed p.p_aborted p.work_total p.work_wasted p.waits
    p.wait_cost p.price
    (if p.price_per_commit = infinity then "inf"
     else Printf.sprintf "%.2f" p.price_per_commit)

let empirical_makespan (trace : Event.t array) =
  let has_ticks = Array.exists (fun (e : Event.t) -> e.tick > 0) trace in
  let time (e : Event.t) = if has_ticks then e.tick else e.seq in
  let first_begin = ref max_int and last_commit = ref min_int in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Begin -> if time e < !first_begin then first_begin := time e
      | Event.Commit -> if time e > !last_commit then last_commit := time e
      | _ -> ())
    trace;
  if !last_commit = min_int || !first_begin = max_int then 0
  else !last_commit - !first_begin

type makespan_report = {
  measured : int;
  optimal : int;
  ratio : float;
  bound_factor : int;
  within_bound : bool;
}

let makespan_report ~optimal ~bound_factor trace =
  let measured = empirical_makespan trace in
  {
    measured;
    optimal;
    ratio = (if optimal <= 0 then 0. else float_of_int measured /. float_of_int optimal);
    bound_factor;
    within_bound = measured <= bound_factor * optimal;
  }

let kind_counts (trace : Event.t array) =
  let kinds =
    [
      Event.Begin; Event.Commit; Event.Abort; Event.Resolve; Event.Wait_begin;
      Event.Wait_end; Event.Open;
    ]
  in
  let counts = Array.make (List.length kinds) 0 in
  Array.iter
    (fun (e : Event.t) ->
      let c = Event.kind_code e.kind in
      counts.(c) <- counts.(c) + 1)
    trace;
  List.map (fun k -> (k, counts.(Event.kind_code k))) kinds

let pp_summary fmt trace =
  Format.fprintf fmt "events: %d@." (Array.length trace);
  List.iter
    (fun (k, n) ->
      if n > 0 then Format.fprintf fmt "  %-10s %d@." (Event.kind_name k) n)
    (kind_counts trace);
  let pc = pending_commit trace in
  Format.fprintf fmt "pending-commit: conflicts=%d violations=%d undecidable=%d@."
    pc.conflicts pc.violations pc.undecidable;
  (if pc.first_violation_seq >= 0 then
     Format.fprintf fmt "  first violation at seq %d@." pc.first_violation_seq);
  let ca = cascades trace in
  Format.fprintf fmt "cascades: enemy-aborts=%d max=%d mean=%.2f@." ca.enemy_aborts
    ca.max_cascade ca.mean_cascade;
  let wa = wasted_work trace in
  Format.fprintf fmt
    "wasted work: attempts=%d committed=%d aborted=%d opens=%d wasted=%d (%.1f%%)@."
    wa.attempts wa.committed wa.aborted wa.opens_total wa.opens_wasted
    (100. *. wa.waste_ratio);
  let mk = empirical_makespan trace in
  Format.fprintf fmt "makespan (%s): %d@."
    (if Array.exists (fun (e : Event.t) -> e.tick > 0) trace then "ticks" else "seq")
    mk
