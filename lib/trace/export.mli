(** Trace serialization.

    JSONL: first line is a header
    [{"schema":"tcm-trace/1","events":N,"drops":D}] (plus an optional
    ["manager"] label naming the capture), then one event object per
    line with keys [seq dom tick kind a b c].  A file may concatenate
    several header-led sections — one per captured manager, as
    [bench --trace] writes them.  [read] accepts traces with or
    without the header and raises [Failure] on malformed lines.

    Chrome: the Trace Event Format (chrome://tracing, Perfetto).  Attempts
    become duration (B/E) slices named [tx<txid>] on track [dom]; waits
    become nested slices; resolves and opens become instants.  Timestamps are
    the linearized [seq] (one unit = 1us); the simulator tick, when present,
    rides along in [args]. *)

val write_jsonl : ?drops:int -> ?manager:string -> string -> Event.t array -> unit
val output_jsonl : ?drops:int -> ?manager:string -> out_channel -> Event.t array -> unit

val read_jsonl : string -> Event.t array * int
(** Returns the events (sorted by seq) and the summed drop counts.  On
    a multi-section file the sections are concatenated with each
    section's seqs re-offset past its predecessor's, so seq stays
    monotone for the analyses. *)

val read_jsonl_sections : string -> (string option * Event.t array * int) list
(** One [(manager, events, drops)] triple per header-led section, in
    file order; a headerless trace reads as a single anonymous
    section. *)

val write_chrome : string -> Event.t array -> unit
val output_chrome : out_channel -> Event.t array -> unit
