(** Trace serialization.

    JSONL: first line is a header
    [{"schema":"tcm-trace/1","events":N,"drops":D}], then one event object
    per line with keys [seq dom tick kind a b c].  [read] accepts traces
    with or without the header and raises [Failure] on malformed lines.

    Chrome: the Trace Event Format (chrome://tracing, Perfetto).  Attempts
    become duration (B/E) slices named [tx<txid>] on track [dom]; waits
    become nested slices; resolves and opens become instants.  Timestamps are
    the linearized [seq] (one unit = 1us); the simulator tick, when present,
    rides along in [args]. *)

val write_jsonl : ?drops:int -> string -> Event.t array -> unit
val output_jsonl : ?drops:int -> out_channel -> Event.t array -> unit

val read_jsonl : string -> Event.t array * int
(** Returns the events (sorted by seq) and the drop count from the header
    (0 when absent). *)

val write_chrome : string -> Event.t array -> unit
val output_chrome : out_channel -> Event.t array -> unit
