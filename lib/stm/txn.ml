(** Transaction descriptors.

    A {e logical transaction} corresponds to one call to
    [Runtime.atomically].  It may run as several {e attempts}: when an
    attempt aborts, the runtime starts a new attempt of the same logical
    transaction.  Fields that the paper requires to survive aborts — the
    timestamp above all (Section 3: "when a transaction begins, it is
    given a timestamp which it retains even if it aborts and restarts")
    — live in the [shared] record, which all attempts of one logical
    transaction point to.  Per-attempt fields ([status], [waiting]) are
    fresh for every attempt, because enemies abort a specific attempt by
    CAS-ing its status word.

    The fields that carry the inter-transaction protocol — [status] and
    [waiting] — are [Atomic.t]: enemies CAS the status word, and the
    waiting flag is a cross-domain signal (Greedy Rule 1).  The
    heuristic counters ([priority], [aborts], [opens]) are plain
    mutable ints.  They are monotone advisory inputs to the contention
    managers, not synchronisation: an enemy comparing priorities may
    read a value that lags by a few increments, and Eruption's
    cross-domain pressure transfer may occasionally lose an update to
    a racing increment — both decide at worst a different but equally
    legitimate conflict verdict (the managers are heuristics over
    racy snapshots by design, Section 2's decentralised setting).
    Plain-int accesses cannot tear in OCaml, so the values read are
    always some value that was written. *)

type shared = {
  timestamp : int;
      (** Priority: smaller is older is higher-priority.  Retained
          across aborts, refreshed only for a new logical transaction. *)
  mutable priority : int;
      (** Accumulated priority used by Karma / Eruption / Polka:
          incremented on each successful object open, retained across
          aborts, reset on commit (by virtue of the logical transaction
          ending). Other managers ignore it. *)
  mutable aborts : int;
      (** Number of times this logical transaction was aborted. *)
  mutable opens : int;
      (** Number of successful object opens over all attempts. *)
  mutable cm_stamp : int;
      (** Manager-owned priority stamp, published through the shared
          descriptor so enemies can read it (the decentralised
          "public field" of Section 2).  [max_int] is the reserved
          "no stamp yet" sentinel; the STO-style adaptive manager
          stores its acquired global timestamp here once a transaction
          leaves the timid phase.  Plain int: advisory, racy-snapshot
          semantics like [priority]. *)
}

type t = {
  attempt_id : int;  (** Unique across all attempts of all transactions. *)
  status : Status.t Atomic.t;
  waiting : bool Atomic.t;
      (** Public flag: true while this attempt is blocked waiting for an
          enemy.  Greedy Rule 1 aborts enemies whose flag is set. *)
  shared : shared;
}

let new_shared () =
  {
    timestamp = Txid.next_timestamp ();
    priority = 0;
    aborts = 0;
    opens = 0;
    cm_stamp = max_int;
  }

let new_attempt shared =
  {
    attempt_id = Txid.next_attempt_id ();
    status = Atomic.make Status.Active;
    waiting = Atomic.make false;
    shared;
  }

(** Sentinel owner used for the initial locator of every tvar: a
    permanently committed transaction. *)
let committed_sentinel =
  let shared =
    { timestamp = 0; priority = 0; aborts = 0; opens = 0; cm_stamp = 0 }
  in
  {
    attempt_id = 0;
    status = Atomic.make Status.Committed;
    waiting = Atomic.make false;
    shared;
  }

let status t = Atomic.get t.status

(* Match, not [=]: polymorphic equality on variant constants is a
   runtime call, and these predicates sit on the hot path. *)
let is_active t = match status t with Status.Active -> true | _ -> false
let is_committed t = match status t with Status.Committed -> true | _ -> false
let is_aborted t = match status t with Status.Aborted -> true | _ -> false
let is_waiting t = Atomic.get t.waiting

let timestamp t = t.shared.timestamp
let priority t = t.shared.priority
let abort_count t = t.shared.aborts
let open_count t = t.shared.opens
let cm_stamp t = t.shared.cm_stamp
let set_cm_stamp t v = t.shared.cm_stamp <- v

(** Reserved [cm_stamp] value meaning "no manager stamp acquired". *)
let no_cm_stamp = max_int

(** [older_than a b] is true when [a] has higher (older) priority. *)
let older_than a b = timestamp a < timestamp b

(** Enemy-side abort.  Returns [true] if the attempt is aborted after
    the call (whether we did it or it already was). *)
let try_abort t =
  if Atomic.compare_and_set t.status Status.Active Status.Aborted then begin
    t.shared.aborts <- t.shared.aborts + 1;
    true
  end
  else is_aborted t

(** Owner-side commit.  Fails iff an enemy aborted us first. *)
let try_commit t = Atomic.compare_and_set t.status Status.Active Status.Committed

let add_priority t n = t.shared.priority <- t.shared.priority + n

let record_open t =
  t.shared.opens <- t.shared.opens + 1;
  t.shared.priority <- t.shared.priority + 1

let pp fmt t =
  Format.fprintf fmt "tx#%d[ts=%d;%a%s]" t.attempt_id (timestamp t) Status.pp
    (status t)
    (if is_waiting t then ";waiting" else "")
