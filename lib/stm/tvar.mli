(** Transactional variables — the STM's shared objects, following the
    DSTM/SXM locator protocol.

    The variable atomically points at a {e locator}: the owning
    attempt, the last committed value [old_v], and the tentative value
    [new_v].  The logical value is [!new_v] if the owner committed,
    [old_v] otherwise.  Writers acquire by CAS-installing a fresh
    locator; [new_v] is mutated exclusively by the active owner and is
    published through the owner's atomic status transition
    (message-passing pattern, safe under the OCaml memory model).

    [version] carries a stamp from a global clock, advanced by
    invisible-mode writers on locator install and commit publication;
    invisible readers compare it against the clock value their read set
    is known valid at, turning the common-case revalidation into a
    single load (see [Runtime]).

    Visible readers register in a fixed array of CAS-claimed reader
    slots (allocation-free in the common case) with a list overflow,
    so writers resolve read-write conflicts through the contention
    manager, matching the paper's conflict definition. *)

type 'a locator = { owner : Txn.t; old_v : 'a; new_v : 'a ref }

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  version : int Atomic.t;  (** Stamp of the last invisible-writer event. *)
  reader_slots : Txn.t Atomic.t array;
  reader_overflow : Txn.t list Atomic.t;
}

val make : 'a -> 'a t

val id : 'a t -> int

val value_of_locator : 'a locator -> 'a
(** Value as seen by an outside observer (owner status read after the
    locator itself). *)

val peek : 'a t -> 'a
(** Latest committed value, for non-transactional inspection (tests,
    debugging); linearizes at the atomic load of the locator. *)

(** {2 Version stamps (invisible-read validation)} *)

val now : unit -> int
(** Current value of the global stamp clock. *)

val next_stamp : unit -> int
(** Advance the global clock and return the new stamp. *)

val version : 'a t -> int
(** The variable's current stamp. *)

val stamp_cell : 'a t -> int Atomic.t
(** The stamp cell itself, for bulk publication at commit time. *)

val advance_stamp : int Atomic.t -> int -> unit
(** Monotone stamp store: moves the cell forward to the given stamp,
    never backward (a lagging publication must not undo a newer
    owner's bump). *)

val bump_version : 'a t -> unit
(** Move the variable's stamp past every watermark taken so far. *)

(** {2 Visible readers} *)

val register_reader : 'a t -> Txn.t -> unit
(** Add a visible reader; reclaims dead slots lazily, allocation-free
    while the slot array suffices.  May leave a duplicate entry for a
    re-reading transaction (benign: writers drain every live entry). *)

val find_active_reader : 'a t -> Txn.t -> Txn.t option
(** First active reader other than the given transaction. *)

val purge_readers : 'a t -> unit
(** Opportunistically drop dead reader entries (single pass; no CAS
    when nothing died). *)
