(** Transactional variables — the STM's shared objects, following the
    DSTM/SXM locator protocol.

    The variable atomically points at a {e locator}: the owning
    attempt, the last committed value [old_v], and the tentative value
    [new_v].  The logical value is [new_v] if the owner committed,
    [old_v] otherwise.  Writers acquire by CAS-installing a locator
    they own; [new_v] is mutated exclusively by the active owner and is
    published through the owner's atomic status transition
    (message-passing pattern, safe under the OCaml memory model).

    Locators are {e pooled} per domain, so the steady-state write path
    allocates nothing.  Pooling makes locator fields mutable, guarded
    by two mechanisms (see the implementation for the full argument):

    - a {e two-phase seqlock generation} [gen]: a refill bumps it to
      an odd value before its field stores and to the next even value
      after.  Readers retry on an odd generation and re-check the
      generation after reading fields — unchanged (hence even) proves
      the fields belong to one completed incarnation, the one linked
      at the initial load;
    - one {e hazard slot} per domain: publish the locator you are
      about to dereference, re-check it is still linked, and it cannot
      be refilled until you clear the slot.  The freelist pop scans
      all hazard slots and {e drops} (never reuses) held candidates.

    {b Reclamation rule}: a locator may be recycled only once its
    owner's status is decided {e and} it is unlinked from the variable
    — in practice, by the writer whose CAS displaced it (or for a
    locator that lost its install CAS and was never published).  A
    still-published locator must never be recycled: concurrent readers
    resolve values through it.

    [version] carries a stamp from a global clock, advanced by
    invisible-mode writers on locator install and commit publication;
    invisible readers compare it against the clock value their read set
    is known valid at, turning the common-case revalidation into a
    single load (see [Runtime]).

    Visible readers register in a fixed array of CAS-claimed reader
    slots (allocation-free in the common case) with a list overflow,
    so writers resolve read-write conflicts through the contention
    manager, matching the paper's conflict definition. *)

type 'a locator = {
  mutable owner : Txn.t;
  mutable old_v : 'a;
  mutable new_v : 'a;
  gen : int Atomic.t;
      (** Two-phase incarnation counter; odd while a refill is in
          flight, even once the incarnation is complete. *)
}

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  version : int Atomic.t;  (** Stamp of the last invisible-writer event. *)
  reader_slots : Txn.t Atomic.t array;
  reader_overflow : Txn.t list Atomic.t;
}

val make : 'a -> 'a t

val id : 'a t -> int

val value_of_locator : 'a locator -> 'a
(** Value as seen by an outside observer (owner status read after the
    locator itself).  Only meaningful on a locator known stable —
    owned, hazard-protected, or seqlock-validated by the caller. *)

val peek : 'a t -> 'a
(** Latest committed value, for non-transactional inspection (tests,
    debugging); linearizes at the atomic load of the locator
    (seqlock-guarded against concurrent recycling). *)

val unsafe_init : 'a t -> 'a -> unit
(** Non-transactional store (fresh committed locator), for bulk
    preloading {e before} the variable is published to any
    transaction.  Bypasses conflict detection on both backends: unsound
    the moment a concurrent transaction may have read the variable. *)

(** {2 Locator pool (per-domain freelist + hazard slot)} *)

type pool
(** A domain's locator freelist and hazard slot.  Only ever used by
    the owning domain, except that other domains' freelist pops read
    the hazard slot. *)

val domain_pool : unit -> pool
(** The calling domain's pool (created on first use; shared by every
    runtime on the domain). *)

val take_locator : pool -> owner:Txn.t -> old_v:'a -> new_v:'a -> 'a locator
(** A locator owned by [owner] with the given value slots (tentative
    value preset before publication); refilled from the freelist when
    possible, freshly allocated otherwise.  {!last_take_hit} reports
    which (out-of-band, so the hot path allocates no tuple). *)

val last_take_hit : pool -> bool
(** Whether the most recent {!take_locator} on this pool was a
    freelist refill. *)

val recycle_locator : pool -> 'a locator -> bool
(** Return a locator to the freelist.  Caller must uphold the
    reclamation rule: owner decided, and unlinked (displaced by the
    caller's CAS, or never published).  [false] when the pool was full
    and the locator was dropped for the GC. *)

val protect : pool -> 'a locator -> unit
(** Publish the locator in this domain's hazard slot.  After a
    subsequent check that it is still linked, its fields are frozen
    until {!unprotect}. *)

val unprotect : pool -> unit
(** Clear this domain's hazard slot. *)

val locator_gen : 'a locator -> int
(** Current incarnation of the locator (seqlock read protocol: load
    locator, load generation — retry if {!gen_stable} says it is odd —
    read fields, re-check generation). *)

val gen_stable : int -> bool
(** Whether a generation value is even, i.e. no refill was in flight
    when it was read.  Fields read under an odd generation may mix
    incarnations and must be discarded. *)

val pool_size : pool -> int
(** Number of locators currently on the freelist (tests). *)

val hazard_slot_count : unit -> int
(** Number of registered hazard slots — one per live domain that has
    used a pool; slots are unregistered at domain exit (tests). *)

(** {2 Version stamps (invisible-read validation)} *)

val now : unit -> int
(** Current value of the global stamp clock. *)

val next_stamp : unit -> int
(** Advance the global clock and return the new stamp. *)

val version : 'a t -> int
(** The variable's current stamp. *)

val stamp_cell : 'a t -> int Atomic.t
(** The stamp cell itself, for bulk publication at commit time. *)

val advance_stamp : int Atomic.t -> int -> unit
(** Monotone stamp store: moves the cell forward to the given stamp,
    never backward (a lagging publication must not undo a newer
    owner's bump). *)

val bump_version : 'a t -> unit
(** Move the variable's stamp past every watermark taken so far. *)

(** {2 Visible readers} *)

val register_reader : 'a t -> Txn.t -> unit
(** Add a visible reader; reclaims dead slots lazily, allocation-free
    while the slot array suffices.  May leave a duplicate entry for a
    re-reading transaction (benign: writers drain every live entry). *)

val find_active_reader : 'a t -> Txn.t -> Txn.t option
(** First active reader other than the given transaction. *)

val purge_readers : 'a t -> unit
(** Opportunistically drop dead reader entries (single pass; no CAS
    when nothing died). *)
