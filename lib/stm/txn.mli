(** Transaction descriptors.

    A {e logical transaction} is one call to [Runtime.atomically]; it
    may run as several {e attempts}.  Fields the paper requires to
    survive aborts — above all the timestamp ("a timestamp which it
    retains even if it aborts and restarts", Section 3) — live in
    [shared], pointed to by every attempt of the same logical
    transaction.  Per-attempt fields ([status], [waiting]) are fresh
    each retry, because enemies abort a specific attempt by CAS-ing its
    status word.

    [status] and [waiting] are atomic — they carry the inter-thread
    protocol.  The heuristic counters ([priority], [aborts], [opens])
    are plain mutable ints: monotone advisory inputs to the contention
    managers, read cross-domain as racy snapshots (no tearing on
    OCaml ints; a lagging read yields at worst a different but equally
    legitimate verdict from a heuristic that is defined over stale
    views anyway). *)

type shared = {
  timestamp : int;  (** Priority: smaller = older = higher. *)
  mutable priority : int;  (** Karma-style accumulated priority. *)
  mutable aborts : int;  (** Times this logical transaction aborted. *)
  mutable opens : int;  (** Successful opens across attempts. *)
  mutable cm_stamp : int;
      (** Manager-owned priority stamp published to enemies;
          [no_cm_stamp] until a manager assigns one. *)
}

type t = {
  attempt_id : int;  (** Unique across all attempts. *)
  status : Status.t Atomic.t;
  waiting : bool Atomic.t;
      (** Public flag: set while blocked behind an enemy; greedy's
          Rule 1 aborts enemies whose flag is set. *)
  shared : shared;
}

val new_shared : unit -> shared
(** Fresh logical transaction: takes the next global timestamp. *)

val new_attempt : shared -> t

val committed_sentinel : t
(** Permanently committed owner used by initial locators. *)

val status : t -> Status.t
val is_active : t -> bool
val is_committed : t -> bool
val is_aborted : t -> bool
val is_waiting : t -> bool
val timestamp : t -> int
val priority : t -> int
val abort_count : t -> int
val open_count : t -> int

val cm_stamp : t -> int
(** The manager-owned priority stamp (see {!shared}); [no_cm_stamp]
    while none has been acquired. *)

val set_cm_stamp : t -> int -> unit

val no_cm_stamp : int
(** Reserved [cm_stamp] sentinel ([max_int]): no stamp acquired. *)

val older_than : t -> t -> bool
(** [older_than a b]: [a] has the earlier timestamp (higher priority). *)

val try_abort : t -> bool
(** Enemy-side abort; [true] if the attempt is aborted after the call
    (whether by us or already). *)

val try_commit : t -> bool
(** Owner-side commit CAS; fails iff an enemy aborted us first. *)

val add_priority : t -> int -> unit
(** Used by Eruption to push pressure onto a blocker. *)

val record_open : t -> unit
(** Bumps the open and priority counters (runtime hook). *)

val pp : Format.formatter -> t -> unit
