(** The STM execution engine.

    [atomically rt f] runs [f] as a transaction under the runtime's
    contention manager, retrying on abort until the commit CAS
    succeeds.  Conflicts are detected eagerly, at access time, exactly
    as in DSTM/SXM: the acquiring transaction consults its local
    contention manager and either aborts the enemy or stands back.

    Two read modes are supported:

    - [`Visible] (default): readers register on the variable; writers
      resolve each active reader through the contention manager after
      acquiring the locator.  This makes read-write conflicts go
      through the manager (the paper's model) and yields serializable
      executions without commit-time validation.
    - [`Invisible]: DSTM-style invisible reads with incremental
      (TL2-style) validation.  Each transaction keeps a watermark
      [valid_upto]: the global stamp-clock value at which its whole
      read set is known valid.  Invisible-mode writers advance a
      variable's stamp when they install a locator and just before
      they publish a commit, so a newly opened variable whose stamp is
      at or below the watermark extends the read set in O(1); a moved
      stamp forces a full revalidation (which itself skips entries
      whose stamps did not move).  Stamps are trusted only for entries
      resolved from terminal-status owners: an entry read under a
      still-Active owner is rechecked on every validation — and forces
      per-read revalidation while it exists — because that owner may
      already have published its commit stamp, so its status flip
      would not move the stamp again.  Cheaper under read-mostly
      loads; provided for the ablation benchmarks.  Note the classic
      caveat: the window between the last validation and the commit
      CAS admits a narrow write-skew race, so this mode trades
      strictness for speed.  Invisible-mode consistency assumes the
      writers sharing those tvars also run in invisible mode (stamps
      are not advanced by visible-mode writers). *)

exception Abort_attempt
(** Internal control flow: the current attempt is (being) aborted and
    must restart. *)

exception Too_many_attempts of int
(** Raised when [max_attempts] is exceeded. *)

exception Retry_wait
(** Internal control flow for [retry_wait]/[check]: abort the attempt
    and re-run after a pause, i.e. block until the world changes. *)

type read_mode = [ `Visible | `Invisible ]

type config = {
  read_mode : read_mode;
  max_attempts : int option;  (** [None] = retry forever. *)
  block_poll_usec : int;
      (** Cap on the sleeping period while blocked on an enemy (the
          wait spins, then yields, then sleeps with geometrically
          growing pauses up to this cap). *)
  backoff_cap_usec : int;  (** Upper bound applied to [Backoff] verdicts. *)
}

let default_config =
  { read_mode = `Visible; max_attempts = None; block_poll_usec = 50; backoff_cap_usec = 100_000 }

(* ------------------------------------------------------------------ *)
(* Statistics: per-domain shards                                       *)
(* ------------------------------------------------------------------ *)

(* Each domain increments only its own shard, so the per-commit /
   per-conflict counters never ping-pong cache lines between cores.  A
   shard is one flat (unboxed) [int array]: counters sit a cache line
   (8 words) apart, with a line of slack at each end so no counter
   shares a line with a neighbouring heap block — a layout the GC
   cannot break, unlike a record of boxed [Atomic.t] cells, where each
   counter is its own heap block and record padding pads nothing.
   Only the owning domain ever writes a counter; [stats] reads them
   from other domains, which is a benign race on monotone int cells
   (OCaml plain-int reads cannot tear): a concurrent snapshot may lag
   a few events, and a snapshot ordered after the counting domain's
   work — joined domains, as in the harness and every test — is
   exact. *)
type shard = int array

let line_words = 8 (* ints per 64-byte cache line *)
let n_counters = 7
let counter_ix i = (i + 1) * line_words
let make_shard () : shard = Array.make ((n_counters + 2) * line_words) 0

let ix_commits = counter_ix 0
let ix_aborts = counter_ix 1
let ix_conflicts = counter_ix 2
let ix_enemy_aborts = counter_ix 3 (* times we aborted an enemy *)
let ix_self_aborts = counter_ix 4
let ix_blocks = counter_ix 5
let ix_backoffs = counter_ix 6
let tick (s : shard) ix = s.(ix) <- s.(ix) + 1

type stats_snapshot = {
  n_commits : int;
  n_aborts : int;
  n_conflicts : int;
  n_enemy_aborts : int;
  n_self_aborts : int;
  n_blocks : int;
  n_backoffs : int;
}

(* Validity of a read entry at recheck time.  [Valid_stable]: the
   entry cannot be invalidated without the variable's stamp moving
   (its locator carries a terminal-status owner, or our own upgrade
   locator), so revalidation may cache the current stamp in [seen].
   [Valid_fragile]: the value is right now, but rests on a
   still-Active owner — and commit publication writes stamps {e
   before} the status CAS, so that owner may already have published
   its commit stamp, in which case its status flip would invalidate
   the entry without any further stamp movement.  Fragile entries
   therefore never cache a stamp and are rechecked on every
   validation. *)
type validity = Invalid | Valid_fragile | Valid_stable

(* A validated invisible read.  [stamp] is the variable's version cell
   and [seen] the stamp at which the entry was last known
   stable-valid: an unchanged stamp then means no invisible writer
   installed or committed on the variable since, so revalidation can
   skip the entry.  Fragile entries keep [seen = -1] (matching no real
   stamp) until a recheck finds them stable.  [check] decides validity
   from the locator: the entry stays valid while the variable still
   carries the locator we resolved the value from and the resolution
   is unchanged — or once the reading transaction itself owns the
   variable with the observed value as the locator's old version
   (read-then-write upgrade). *)
type read_entry = { stamp : int Atomic.t; mutable seen : int; check : unit -> validity }

type t = {
  config : config;
  cm : Cm_intf.factory;
  shards : shard list Atomic.t;  (** One per domain that used this runtime. *)
  dls : per_domain Domain.DLS.key;
}

and per_domain = {
  cm_state : Cm_intf.packed;
  shard : shard;
  mx : Tcm_metrics.Conventions.t;
      (** Metric handles for this runtime's manager; every emit is a
          single enabled-check branch while metrics are off. *)
  mutable current : tx option;
}

and tx = {
  rt : t;
  txn : Txn.t;
  dom : per_domain;
  mutable read_log : read_entry array;  (** Invisible mode only. *)
  mutable read_len : int;
  mutable valid_upto : int;
      (** Stamp-clock watermark: the read set is known valid as of this
          clock value (invisible mode only). *)
  mutable n_fragile : int;
      (** Read-log entries currently resting on a still-Active owner
          (see [validity]).  While non-zero, the watermark argument is
          unsound — such an entry can go stale without a stamp moving —
          so every read revalidates the whole set, as the pre-stamp
          runtime did. *)
  mutable write_stamps : int Atomic.t list;
      (** Stamp cells of variables acquired this attempt, bulk-bumped
          at commit publication (invisible mode only). *)
  mutable n_opens : int;
      (** Objects opened by this attempt (reads and writes) — the
          read-set-size sample recorded at commit. *)
}

let create ?(config = default_config) cm =
  let shards = Atomic.make [] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let shard = make_shard () in
        let rec register () =
          let l = Atomic.get shards in
          if not (Atomic.compare_and_set shards l (shard :: l)) then register ()
        in
        register ();
        {
          cm_state = Cm_intf.instantiate cm;
          shard;
          mx = Tcm_metrics.Conventions.for_manager ~runtime:"live" (Cm_intf.name cm);
          current = None;
        })
  in
  { config; cm; shards; dls }

let manager_name t = Cm_intf.name t.cm

let stats t =
  List.fold_left
    (fun acc (s : shard) ->
      {
        n_commits = acc.n_commits + s.(ix_commits);
        n_aborts = acc.n_aborts + s.(ix_aborts);
        n_conflicts = acc.n_conflicts + s.(ix_conflicts);
        n_enemy_aborts = acc.n_enemy_aborts + s.(ix_enemy_aborts);
        n_self_aborts = acc.n_self_aborts + s.(ix_self_aborts);
        n_blocks = acc.n_blocks + s.(ix_blocks);
        n_backoffs = acc.n_backoffs + s.(ix_backoffs);
      })
    {
      n_commits = 0;
      n_aborts = 0;
      n_conflicts = 0;
      n_enemy_aborts = 0;
      n_self_aborts = 0;
      n_blocks = 0;
      n_backoffs = 0;
    }
    (Atomic.get t.shards)

let pp_stats fmt s =
  Format.fprintf fmt "commits=%d aborts=%d conflicts=%d enemy-aborts=%d blocks=%d backoffs=%d"
    s.n_commits s.n_aborts s.n_conflicts s.n_enemy_aborts s.n_blocks s.n_backoffs

(* ------------------------------------------------------------------ *)
(* Attempt-local helpers                                               *)
(* ------------------------------------------------------------------ *)

let check_self tx = if not (Txn.is_active tx.txn) then raise Abort_attempt

let sleep_usec usec = if usec > 0 then Unix.sleepf (float_of_int usec *. 1e-6)

(* Adaptive waiting: spin on the CPU hint first (an enemy on another
   core often finishes within nanoseconds), then yield the timeslice,
   then sleep with geometrically growing pauses capped at [cap_usec].
   The wall clock is consulted only once a wait reaches the sleeping
   phase — never in the spin loop. *)
let spin_rounds = 32
let yield_rounds = 16

let wait_step ~round ~cap_usec =
  if round < spin_rounds then Domain.cpu_relax ()
  else if round < spin_rounds + yield_rounds then Unix.sleepf 0.
  else
    let r = round - spin_rounds - yield_rounds in
    sleep_usec (min cap_usec (1 lsl min r 10))

(* Block until [other] is no longer active, or starts waiting itself,
   or the timeout expires.  Sets our public waiting flag for the
   duration, so that greedy enemies may abort us (Rule 1). *)
let block_on tx (other : Txn.t) timeout_usec =
  tick tx.dom.shard ix_blocks;
  Atomic.set tx.txn.Txn.waiting true;
  Tcm_trace.Sink.wait_begin ~me:(Txn.timestamp tx.txn)
    ~enemy:(Txn.timestamp other) ~tick:0;
  (* Wall clock only when metrics are on; the spin loop itself never
     consults it. *)
  let m_t0 = if Tcm_metrics.enabled () then Unix.gettimeofday () else 0. in
  let finish () =
    Atomic.set tx.txn.Txn.waiting false;
    Tcm_trace.Sink.wait_end ~me:(Txn.timestamp tx.txn)
      ~enemy:(Txn.timestamp other) ~tick:0;
    if m_t0 > 0. then
      Tcm_metrics.Conventions.wait tx.dom.mx
        ~duration:(int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6))
  in
  let cap_usec = tx.rt.config.block_poll_usec in
  let deadline =
    match timeout_usec with
    | None -> infinity
    | Some us -> Unix.gettimeofday () +. (float_of_int us *. 1e-6)
  in
  let rec wait round =
    if not (Txn.is_active tx.txn) then begin
      finish ();
      raise Abort_attempt
    end;
    if
      Txn.is_active other
      && (not (Txn.is_waiting other))
      && (deadline = infinity || round < spin_rounds || Unix.gettimeofday () < deadline)
    then begin
      wait_step ~round ~cap_usec;
      wait (round + 1)
    end
  in
  wait 0;
  finish ()

let decision_trace_code = function
  | Decision.Abort_other -> Tcm_trace.Event.d_abort_other
  | Decision.Abort_self -> Tcm_trace.Event.d_abort_self
  | Decision.Block _ -> Tcm_trace.Event.d_block
  | Decision.Backoff _ -> Tcm_trace.Event.d_backoff

(* Execute one contention-manager verdict for a conflict with [other].
   Returns when the caller should re-examine the object. *)
let resolve_conflict tx ~(other : Txn.t) ~attempts =
  check_self tx;
  tick tx.dom.shard ix_conflicts;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  let verdict = M.resolve st ~me:tx.txn ~other ~attempts in
  (* The trace decision codes double as the metrics verdict codes. *)
  if Tcm_trace.Sink.enabled () then
    Tcm_trace.Sink.conflict ~me:(Txn.timestamp tx.txn)
      ~other:(Txn.timestamp other)
      ~decision:(decision_trace_code verdict) ~tick:0;
  Tcm_metrics.Conventions.resolve tx.dom.mx (decision_trace_code verdict);
  match verdict with
  | Decision.Abort_other ->
      if Txn.try_abort other then tick tx.dom.shard ix_enemy_aborts
  | Decision.Abort_self ->
      tick tx.dom.shard ix_self_aborts;
      ignore (Txn.try_abort tx.txn);
      raise Abort_attempt
  | Decision.Block { timeout_usec } -> block_on tx other timeout_usec
  | Decision.Backoff { usec } ->
      tick tx.dom.shard ix_backoffs;
      sleep_usec (min usec tx.rt.config.backoff_cap_usec);
      check_self tx

let cm_opened tx =
  tx.n_opens <- tx.n_opens + 1;
  Txn.record_open tx.txn;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  M.opened st tx.txn

(* ------------------------------------------------------------------ *)
(* Invisible-read validation                                           *)
(* ------------------------------------------------------------------ *)

let dummy_entry = { stamp = Atomic.make 0; seen = 0; check = (fun () -> Valid_stable) }
let empty_log : read_entry array = [||]

let push_read tx e =
  let cap = Array.length tx.read_log in
  if tx.read_len = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) dummy_entry in
    Array.blit tx.read_log 0 a 0 cap;
    tx.read_log <- a
  end;
  tx.read_log.(tx.read_len) <- e;
  tx.read_len <- tx.read_len + 1

let make_read_entry (type v) (tx : tx) (tvar : v Tvar.t) (loc : v Tvar.locator)
    ~saw_committed ~seen (value : v) : read_entry =
  let check () =
    let cur = Atomic.get tvar.Tvar.loc in
    if cur == loc then
      if saw_committed then Valid_stable
      else
        (* We resolved [old_v] against a non-committed owner: the value
           goes wrong exactly if that owner commits.  Aborted is
           terminal, so the entry is stable from then on; an Active
           owner may still commit — possibly having already published
           its commit stamp — so the entry stays fragile. *)
        (match Txn.status loc.Tvar.owner with
        | Status.Committed -> Invalid
        | Status.Aborted -> Valid_stable
        | Status.Active -> Valid_fragile)
    else if cur.Tvar.owner == tx.txn && cur.Tvar.old_v == value then
      (* Upgrade: we acquired the variable ourselves after reading it;
         the read stays consistent iff the stable value we captured at
         acquisition is the one we had read.  Stable: only we can
         replace our own locator while this attempt lives, and any
         later replacement bumps the stamp. *)
      Valid_stable
    else Invalid
  in
  { stamp = tvar.Tvar.version; seen; check }

(* Revalidate the read set, skipping entries whose stamp did not move
   since they were last found {e stable-}valid (an unchanged stamp
   then means no invisible writer installed or committed on that
   variable).  Fragile entries never cached a stamp ([seen = -1]), so
   they are rechecked on every call; the scan recounts them so reads
   know whether the watermark argument currently holds.  On success
   the watermark advances to the clock value read {e before} the scan,
   so later stamp bumps cannot be masked. *)
let validate_extend tx ~extend =
  let g = Tvar.now () in
  let ok = ref true in
  let frag = ref 0 in
  let i = ref 0 in
  while !ok && !i < tx.read_len do
    let e = tx.read_log.(!i) in
    let cur = Atomic.get e.stamp in
    if cur <> e.seen then (
      match e.check () with
      | Valid_stable -> e.seen <- cur
      | Valid_fragile -> incr frag
      | Invalid -> ok := false);
    incr i
  done;
  if not !ok then begin
    ignore (Txn.try_abort tx.txn);
    raise Abort_attempt
  end;
  tx.n_fragile <- !frag;
  if extend then tx.valid_upto <- g

let validate tx = validate_extend tx ~extend:false

(* ------------------------------------------------------------------ *)
(* Open for write                                                      *)
(* ------------------------------------------------------------------ *)

(* After acquiring the locator, resolve every active visible reader.
   Readers registering after our CAS observe us as active owner and
   resolve from their side, so scanning once per remaining active
   reader suffices for mutual awareness. *)
let rec drain_readers tx tvar attempts =
  check_self tx;
  match Tvar.find_active_reader tvar tx.txn with
  | None -> Tvar.purge_readers tvar
  | Some r ->
      resolve_conflict tx ~other:r ~attempts;
      drain_readers tx tvar (attempts + 1)

let rec acquire : 'a. tx -> 'a Tvar.t -> int -> 'a Tvar.locator =
  fun tx tvar attempts ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   if loc.Tvar.owner == tx.txn then loc
   else
     match Txn.status loc.Tvar.owner with
     | Status.Active ->
         resolve_conflict tx ~other:loc.Tvar.owner ~attempts;
         acquire tx tvar (attempts + 1)
     | Status.Committed | Status.Aborted ->
         let cur = Tvar.value_of_locator loc in
         let nloc = { Tvar.owner = tx.txn; old_v = cur; new_v = ref cur } in
         if Atomic.compare_and_set tvar.Tvar.loc loc nloc then begin
           if tx.rt.config.read_mode = `Visible then drain_readers tx tvar 0
           else begin
             (* Make concurrent invisible readers revalidate, record the
                cell for commit publication, and re-check our own read
                set (the entry on this very variable flips to its
                upgrade branch). *)
             Tvar.bump_version tvar;
             tx.write_stamps <- Tvar.stamp_cell tvar :: tx.write_stamps;
             validate_extend tx ~extend:true
           end;
           cm_opened tx;
           Tcm_trace.Sink.acquired ~txid:(Txn.timestamp tx.txn)
             ~obj:tvar.Tvar.id ~write:true ~tick:0;
           nloc
         end
         else acquire tx tvar attempts

(* ------------------------------------------------------------------ *)
(* Public transactional operations                                     *)
(* ------------------------------------------------------------------ *)

let write tx tvar v =
  let loc = acquire tx tvar 0 in
  loc.Tvar.new_v := v

let rec read_visible : 'a. tx -> 'a Tvar.t -> int -> 'a =
  fun tx tvar attempts ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
   else begin
     Tvar.register_reader tvar tx.txn;
     (* Re-read after registration: any writer that acquired before our
        registration either drained us (sees us in the list) or is
        observed right here. *)
     let loc = Atomic.get tvar.Tvar.loc in
     if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
     else
       match Txn.status loc.Tvar.owner with
       | Status.Active ->
           resolve_conflict tx ~other:loc.Tvar.owner ~attempts;
           read_visible tx tvar (attempts + 1)
       | Status.Committed ->
           cm_opened tx;
           !(loc.Tvar.new_v)
       | Status.Aborted ->
           cm_opened tx;
           loc.Tvar.old_v
   end

let read_invisible tx tvar =
  check_self tx;
  let loc = Atomic.get tvar.Tvar.loc in
  if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
  else begin
    let saw_committed = Txn.status loc.Tvar.owner = Status.Committed in
    let v = if saw_committed then !(loc.Tvar.new_v) else loc.Tvar.old_v in
    (* The stamp is read after the owner's status: commit publication
       bumps stamps before the status CAS, so observing a committed
       owner implies observing its bump and taking the slow path. *)
    let ver = Tvar.version tvar in
    (* Trust the stamp only when the resolution came from a committed
       owner.  A still-Active owner may already have published its
       commit stamp to this very cell, so its later status flip would
       invalidate the entry while leaving the stamp — and hence every
       stamp-gated skip, including commit-time validation — unchanged.
       [seen = -1] keeps such entries on the recheck path until a
       validation finds their owner in a terminal state. *)
    let seen =
      if saw_committed then ver
      else begin
        tx.n_fragile <- tx.n_fragile + 1;
        -1
      end
    in
    push_read tx (make_read_entry tx tvar loc ~saw_committed ~seen v);
    if ver > tx.valid_upto || tx.n_fragile > 0 then validate_extend tx ~extend:true;
    cm_opened tx;
    v
  end

let read tx tvar =
  match tx.rt.config.read_mode with
  | `Visible -> read_visible tx tvar 0
  | `Invisible -> read_invisible tx tvar

(** Read through the write path: acquires the variable exclusively.
    Use for read-modify-write accesses to avoid upgrade conflicts. *)
let read_for_write tx tvar =
  let loc = acquire tx tvar 0 in
  !(loc.Tvar.new_v)

let modify tx tvar f =
  let loc = acquire tx tvar 0 in
  loc.Tvar.new_v := f !(loc.Tvar.new_v)

(** User-requested abort-and-retry of the current attempt. *)
let retry_now tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Abort_attempt

(** Blocking retry (Harris-et-al style [retry]): abort and re-run the
    transaction after a pause, so the caller effectively waits for the
    state it read to change.  The pause grows geometrically up to the
    configured cap. *)
let retry_wait tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Retry_wait

(** [check tx cond]: proceed if [cond] holds, otherwise block (via
    {!retry_wait}) until a later re-execution sees it hold. *)
let check tx cond = if not cond then retry_wait tx

(* ------------------------------------------------------------------ *)
(* The atomic block                                                    *)
(* ------------------------------------------------------------------ *)

let commit tx =
  (* [validate] raises on failure; [commit] runs outside [atomically]'s
     exception match (the [v ->] branch), so convert to a [false]
     return here rather than letting [Abort_attempt] escape. *)
  let valid =
    tx.rt.config.read_mode <> `Invisible
    || match validate tx with () -> true | exception Abort_attempt -> false
  in
  valid
  && begin
       (* Publish stamps before the status CAS: a reader that observes
          the committed owner then necessarily observes moved stamps and
          falls back to full validation.  The store is monotone
          ([advance_stamp]): an attempt that loses the CAS below may
          publish arbitrarily late, and must not drag a stamp backward
          past the next owner's bump — its forward bump merely causes
          spurious revalidations elsewhere. *)
       (match tx.write_stamps with
       | [] -> ()
       | ws ->
           let s = Tvar.next_stamp () in
           List.iter (fun cell -> Tvar.advance_stamp cell s) ws);
       Txn.try_commit tx.txn
     end

let atomically rt f =
  let dom = Domain.DLS.get rt.dls in
  match dom.current with
  | Some tx when Txn.is_active tx.txn ->
      (* Nested atomically: flatten into the enclosing transaction. *)
      f tx
  | _ ->
      let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
      let shared = Txn.new_shared () in
      let rec attempt ?(wait_round = 0) n =
        (match rt.config.max_attempts with
        | Some m when n > m -> raise (Too_many_attempts n)
        | _ -> ());
        let txn = Txn.new_attempt shared in
        let tx =
          {
            rt;
            txn;
            dom;
            read_log = empty_log;
            read_len = 0;
            valid_upto = Tvar.now ();
            n_fragile = 0;
            write_stamps = [];
            n_opens = 0;
          }
        in
        dom.current <- Some tx;
        M.begin_attempt cm_st txn;
        Tcm_trace.Sink.attempt_begin ~txid:(Txn.timestamp txn)
          ~attempt:txn.Txn.attempt_id ~tick:0;
        (* Attempt latency: the clock is read only while metrics are
           enabled; [0.] doubles as the "disabled" sentinel. *)
        let m_t0 = if Tcm_metrics.enabled () then Unix.gettimeofday () else 0. in
        let m_us () = int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6) in
        Tcm_metrics.Conventions.attempt_begin dom.mx;
        let finish_abort () =
          ignore (Txn.try_abort txn);
          Atomic.set txn.Txn.waiting false;
          Tcm_trace.Sink.attempt_abort ~txid:(Txn.timestamp txn)
            ~attempt:txn.Txn.attempt_id ~tick:0;
          if m_t0 > 0. then
            Tcm_metrics.Conventions.attempt_abort dom.mx ~duration:(m_us ());
          tick dom.shard ix_aborts;
          M.aborted cm_st txn;
          dom.current <- None
        in
        match f tx with
        | v ->
            if commit tx then begin
              tick dom.shard ix_commits;
              Tcm_trace.Sink.attempt_commit ~txid:(Txn.timestamp txn)
                ~attempt:txn.Txn.attempt_id ~tick:0;
              if m_t0 > 0. then
                Tcm_metrics.Conventions.attempt_commit dom.mx ~duration:(m_us ())
                  ~read_set:tx.n_opens;
              M.committed cm_st txn;
              dom.current <- None;
              v
            end
            else begin
              finish_abort ();
              attempt (n + 1)
            end
        | exception Abort_attempt ->
            finish_abort ();
            attempt (n + 1)
        | exception Retry_wait ->
            finish_abort ();
            (* The caller is waiting for another transaction to change
               the state it checked: yield first (the writer is often
               already runnable), then pause geometrically. *)
            if wait_round = 0 then Unix.sleepf 0.
            else
              sleep_usec
                (min rt.config.backoff_cap_usec
                   (rt.config.block_poll_usec * (1 lsl min (wait_round - 1) 12)));
            attempt ~wait_round:(wait_round + 1) (n + 1)
        | exception e ->
            (* User exception: abort the transaction, propagate. *)
            finish_abort ();
            raise e
      in
      attempt 1

(** Number of attempts the currently running transaction has made so
    far on this domain (1 for the first attempt); for diagnostics. *)
let current_txn rt =
  let dom = Domain.DLS.get rt.dls in
  Option.map (fun tx -> tx.txn) dom.current
