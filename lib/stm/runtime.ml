(** The STM execution engine.

    [atomically rt f] runs [f] as a transaction under the runtime's
    contention manager, retrying on abort until the commit CAS
    succeeds.  Conflicts are detected eagerly, at access time, exactly
    as in DSTM/SXM: the acquiring transaction consults its local
    contention manager and either aborts the enemy or stands back.

    Two read modes are supported:

    - [`Visible] (default): readers register on the variable; writers
      resolve each active reader through the contention manager after
      acquiring the locator.  This makes read-write conflicts go
      through the manager (the paper's model) and yields serializable
      executions without commit-time validation.
    - [`Invisible]: DSTM-style invisible reads with incremental
      (TL2-style) validation.  Each transaction keeps a watermark
      [valid_upto]: the global stamp-clock value at which its whole
      read set is known valid.  Invisible-mode writers advance a
      variable's stamp when they install a locator and just before
      they publish a commit, so a newly opened variable whose stamp is
      at or below the watermark extends the read set in O(1); a moved
      stamp forces a full revalidation (which itself skips entries
      whose stamps did not move).  Stamps are trusted only for entries
      resolved from terminal-status owners: an entry read under a
      still-Active owner is rechecked on every validation — and forces
      per-read revalidation while it exists — because that owner may
      already have published its commit stamp, so its status flip
      would not move the stamp again.  Cheaper under read-mostly
      loads; provided for the ablation benchmarks.  Note the classic
      caveat: the window between the last validation and the commit
      CAS admits a narrow write-skew race, so this mode trades
      strictness for speed.  Invisible-mode consistency assumes the
      writers sharing those tvars also run in invisible mode (stamps
      are not advanced by visible-mode writers).

    {1 Allocation discipline}

    The steady-state hot paths allocate nothing (see DESIGN.md,
    "Allocation discipline"):

    - locators come from the per-domain pool in [Tvar], refilled in
      place and recycled when displaced;
    - the transaction context [tx] is a per-domain scratch record,
      reused across attempts and logical transactions; its read log
      and write-stamp log are growable flat arrays, never reallocated
      mid-attempt and scrubbed (dummy-filled, oversized arrays
      dropped) when the attempt ends, so a finished transaction pins
      none of its read set;
    - per logical transaction the runtime allocates only the [shared]
      descriptor, and per attempt only the [Txn.t] attempt record with
      its two atomics — those must stay fresh, because enemies abort a
      specific attempt by CAS-ing {e its} status word, and a reused
      status cell could receive an abort meant for a dead attempt.

    Committing a read-only transaction in invisible mode takes a fast
    path: final validation alone, with no status CAS and no stamp
    publication (nothing was published that other transactions could
    observe, so no terminal status needs to be advertised).  Visible
    mode cannot skip the CAS: registered reader-slot entries are
    reclaimed by writers {e only} when the registrant's status is
    decided, so a forever-Active reader descriptor would pin its slots
    and stall writers. *)

let backend_name = "locator"

(* The control-flow exceptions, configuration and statistics layout
   are shared with the TL2 backend through [Runtime_intf]; the
   re-export equations below keep existing [Runtime.]-qualified
   callers compiling unchanged. *)

exception Abort_attempt = Runtime_intf.Abort_attempt
exception Too_many_attempts = Runtime_intf.Too_many_attempts
exception Retry_wait = Runtime_intf.Retry_wait

type read_mode = Runtime_intf.read_mode

type config = Runtime_intf.config = {
  read_mode : read_mode;
  max_attempts : int option;
  block_poll_usec : int;
  backoff_cap_usec : int;
}

let default_config = Runtime_intf.default_config

(* ------------------------------------------------------------------ *)
(* Statistics: per-domain shards (layout shared via [Runtime_intf])    *)
(* ------------------------------------------------------------------ *)

type shard = Runtime_intf.Shard.t

let make_shard = Runtime_intf.Shard.make
let ix_commits = Runtime_intf.Shard.ix_commits
let ix_aborts = Runtime_intf.Shard.ix_aborts
let ix_conflicts = Runtime_intf.Shard.ix_conflicts
let ix_enemy_aborts = Runtime_intf.Shard.ix_enemy_aborts
let ix_self_aborts = Runtime_intf.Shard.ix_self_aborts
let ix_backoffs = Runtime_intf.Shard.ix_backoffs
let tick = Runtime_intf.Shard.tick

type stats_snapshot = Runtime_intf.stats_snapshot = {
  n_commits : int;
  n_aborts : int;
  n_conflicts : int;
  n_enemy_aborts : int;
  n_self_aborts : int;
  n_blocks : int;
  n_backoffs : int;
}

(* Validity of a read entry at recheck time.  [Valid_stable]: the
   entry cannot be invalidated without the variable's stamp moving
   (its locator carries a terminal-status owner, or our own upgrade
   locator), so revalidation may cache the current stamp in [seen].
   [Valid_fragile]: the value is right now, but rests on a
   still-Active owner — and commit publication writes stamps {e
   before} the status CAS, so that owner may already have published
   its commit stamp, in which case its status flip would invalidate
   the entry without any further stamp movement.  Fragile entries
   therefore never cache a stamp and are rechecked on every
   validation. *)
type validity = Invalid | Valid_fragile | Valid_stable

(* A validated invisible read.  [stamp] is the variable's version cell
   and [seen] the stamp at which the entry was last known
   stable-valid: an unchanged stamp then means no invisible writer
   installed or committed on the variable since, so revalidation can
   skip the entry.  Fragile entries keep [seen = -1] (matching no real
   stamp) until a recheck finds them stable.  [check] decides validity
   from the locator: the entry stays valid while the variable still
   carries the locator we resolved the value from {e in the same
   incarnation} (locator pointer plus seqlock generation) and the
   resolution is unchanged — or once the reading transaction itself
   owns the variable with the observed value as the locator's old
   version (read-then-write upgrade). *)
type read_entry = { stamp : int Atomic.t; mutable seen : int; check : unit -> validity }

type t = {
  config : config;
  cm : Cm_intf.factory;
  shards : shard list Atomic.t;  (** One per domain that used this runtime. *)
  dls : per_domain Domain.DLS.key;
}

and per_domain = {
  cm_state : Cm_intf.packed;
  shard : shard;
  mx : Tcm_metrics.Conventions.t;
      (** Metric handles for this runtime's manager; every emit is a
          single enabled-check branch while metrics are off. *)
  obs : Tcm_obs.Ledger.t;
      (** Wasted-work ledger handle, same family labels as [mx]. *)
  hot : Tcm_obs.Hot.t;
      (** This domain's hot-key sketch; fed tvar ids at conflicts. *)
  pool : Tvar.pool;  (** This domain's locator freelist + hazard slot. *)
  scratch : tx;
      (** The domain's reusable transaction context; reset (by lengths
          and field stores, never reallocation) at each attempt start. *)
  mutable running : bool;
      (** Whether [scratch] is currently inside [atomically] (the
          nested-transaction test; replaces an allocated [tx option]). *)
}

and tx = {
  cfg : config;
  dom : per_domain;
  mutable txn : Txn.t;  (** Current attempt; fresh per attempt. *)
  mutable read_log : read_entry array;  (** Invisible mode only. *)
  mutable read_len : int;
  mutable valid_upto : int;
      (** Stamp-clock watermark: the read set is known valid as of this
          clock value (invisible mode only). *)
  mutable n_fragile : int;
      (** Read-log entries currently resting on a still-Active owner
          (see [validity]).  While non-zero, the watermark argument is
          unsound — such an entry can go stale without a stamp moving —
          so every read revalidates the whole set, as the pre-stamp
          runtime did. *)
  mutable wstamps : int Atomic.t array;
      (** Stamp cells of variables acquired this attempt, bulk-bumped
          at commit publication (invisible mode only).  Flat array,
          cleared by [wstamps_len <- 0]. *)
  mutable wstamps_len : int;
  mutable n_writes : int;
      (** Variables acquired by this attempt (both read modes) — zero
          means the commit may take the read-only fast path. *)
  mutable n_opens : int;
      (** Objects opened by this attempt (reads and writes) — the
          read-set-size sample recorded at commit. *)
}

let empty_log : read_entry array = [||]
let empty_wstamps : int Atomic.t array = [||]

let create ?(config = default_config) cm =
  let shards = Atomic.make [] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let shard = make_shard () in
        let rec register () =
          let l = Atomic.get shards in
          if not (Atomic.compare_and_set shards l (shard :: l)) then register ()
        in
        register ();
        let rec dom =
          {
            cm_state = Cm_intf.instantiate cm;
            shard;
            mx =
              Tcm_metrics.Conventions.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            obs =
              Tcm_obs.Ledger.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            hot =
              Tcm_obs.Hot.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            pool = Tvar.domain_pool ();
            scratch;
            running = false;
          }
        and scratch =
          {
            cfg = config;
            dom;
            txn = Txn.committed_sentinel;
            read_log = empty_log;
            read_len = 0;
            valid_upto = 0;
            n_fragile = 0;
            wstamps = empty_wstamps;
            wstamps_len = 0;
            n_writes = 0;
            n_opens = 0;
          }
        in
        dom)
  in
  { config; cm; shards; dls }

let manager_name t = Cm_intf.name t.cm
let stats t = Runtime_intf.stats_of_shards (Atomic.get t.shards)
let pp_stats = Runtime_intf.pp_stats

(* ------------------------------------------------------------------ *)
(* Attempt-local helpers                                               *)
(* ------------------------------------------------------------------ *)

let check_self tx = if not (Txn.is_active tx.txn) then raise Abort_attempt

let sleep_usec = Runtime_intf.sleep_usec

(* Block until [other] is no longer active, or starts waiting itself,
   or the timeout expires (the shared adaptive-wait ladder).  Sets our
   public waiting flag for the duration, so that greedy enemies may
   abort us (Rule 1). *)
let block_on tx (other : Txn.t) timeout_usec =
  Runtime_intf.block_on ~me:tx.txn ~other ~shard:tx.dom.shard ~mx:tx.dom.mx
    ~obs:tx.dom.obs ~cap_usec:tx.cfg.block_poll_usec ~timeout_usec

let decision_trace_code = Runtime_intf.decision_trace_code

(* The conflict adapter: ask the manager for a verdict.  Kept as a
   named function (and exported) so the registry duel test can drive
   the same scripted conflict through both backends' adapters. *)
let consult (Cm_intf.Packed ((module M), st)) ~me ~other ~attempts =
  M.resolve st ~me ~other ~attempts

(* Execute one contention-manager verdict for a conflict with [other].
   Returns when the caller should re-examine the object. *)
let resolve_conflict tx ~(other : Txn.t) ~attempts =
  check_self tx;
  tick tx.dom.shard ix_conflicts;
  let verdict = consult tx.dom.cm_state ~me:tx.txn ~other ~attempts in
  (* The trace decision codes double as the metrics verdict codes. *)
  if Tcm_trace.Sink.enabled () then
    Tcm_trace.Sink.conflict ~me:(Txn.timestamp tx.txn)
      ~other:(Txn.timestamp other)
      ~decision:(decision_trace_code verdict) ~tick:0;
  Tcm_metrics.Conventions.resolve tx.dom.mx (decision_trace_code verdict);
  match verdict with
  | Decision.Abort_other ->
      if Txn.try_abort other then tick tx.dom.shard ix_enemy_aborts
  | Decision.Abort_self ->
      tick tx.dom.shard ix_self_aborts;
      ignore (Txn.try_abort tx.txn);
      raise Abort_attempt
  | Decision.Block { timeout_usec } -> block_on tx other timeout_usec
  | Decision.Backoff { usec } ->
      tick tx.dom.shard ix_backoffs;
      sleep_usec (min usec tx.cfg.backoff_cap_usec);
      check_self tx

let cm_opened tx =
  tx.n_opens <- tx.n_opens + 1;
  Txn.record_open tx.txn;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  M.opened st tx.txn

(* ------------------------------------------------------------------ *)
(* Invisible-read validation                                           *)
(* ------------------------------------------------------------------ *)

let dummy_entry = { stamp = Atomic.make 0; seen = 0; check = (fun () -> Valid_stable) }

let push_read tx e =
  let cap = Array.length tx.read_log in
  if tx.read_len = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) dummy_entry in
    Array.blit tx.read_log 0 a 0 cap;
    tx.read_log <- a
  end;
  tx.read_log.(tx.read_len) <- e;
  tx.read_len <- tx.read_len + 1

let no_stamp = Atomic.make 0

let push_wstamp tx cell =
  let cap = Array.length tx.wstamps in
  if tx.wstamps_len = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) no_stamp in
    Array.blit tx.wstamps 0 a 0 cap;
    tx.wstamps <- a
  end;
  tx.wstamps.(tx.wstamps_len) <- cell;
  tx.wstamps_len <- tx.wstamps_len + 1

(* Scratch arrays above this capacity are replaced rather than kept: a
   single huge transaction must not pin a huge log on the domain
   forever. *)
let log_retain_cap = 1024

(* Scrub the scratch logs when an attempt ends.  Resetting by length
   alone would keep every entry — closures over tvars, stamp cells and
   user values — reachable until the slot happens to be overwritten by
   a later transaction, pinning a finished transaction's whole read
   set.  Runs in the attempt epilogue (commit and abort), so the cost
   sits next to the O(read set) work the attempt already did. *)
let clear_logs tx =
  if Array.length tx.read_log > log_retain_cap then tx.read_log <- empty_log
  else if tx.read_len > 0 then Array.fill tx.read_log 0 tx.read_len dummy_entry;
  tx.read_len <- 0;
  if Array.length tx.wstamps > log_retain_cap then tx.wstamps <- empty_wstamps
  else if tx.wstamps_len > 0 then Array.fill tx.wstamps 0 tx.wstamps_len no_stamp;
  tx.wstamps_len <- 0

(* The entry captures the owner and seqlock generation it was resolved
   under: [check] must never dereference [loc.owner] afresh, because a
   recycled locator's owner field belongs to a different transaction —
   a live one whose status would be mistaken for our resolution
   basis. *)
let make_read_entry (type v) (tx : tx) (tvar : v Tvar.t) (loc : v Tvar.locator)
    ~(owner : Txn.t) ~gen0 ~saw_committed ~seen (value : v) : read_entry =
  let check () =
    let cur = Atomic.get tvar.Tvar.loc in
    if cur == loc && Tvar.locator_gen loc = gen0 then
      if saw_committed then Valid_stable
      else
        (* We resolved [old_v] against a non-committed owner: the value
           goes wrong exactly if that owner commits.  Aborted is
           terminal, so the entry is stable from then on; an Active
           owner may still commit — possibly having already published
           its commit stamp — so the entry stays fragile. *)
        (match Txn.status owner with
        | Status.Committed -> Invalid
        | Status.Aborted -> Valid_stable
        | Status.Active -> Valid_fragile)
    else if cur.Tvar.owner == tx.txn && cur.Tvar.old_v == value then
      (* Upgrade: we acquired the variable ourselves after reading it;
         the read stays consistent iff the stable value we captured at
         acquisition is the one we had read.  Stable: only we can
         replace our own locator while this attempt lives, and any
         later replacement bumps the stamp.  (No false positives from
         recycling: only this domain ever writes this attempt's
         descriptor into a locator's owner field.) *)
      Valid_stable
    else Invalid
  in
  { stamp = tvar.Tvar.version; seen; check }

(* Revalidate the read set, skipping entries whose stamp did not move
   since they were last found {e stable-}valid (an unchanged stamp
   then means no invisible writer installed or committed on that
   variable).  Fragile entries never cached a stamp ([seen = -1]), so
   they are rechecked on every call; the scan recounts them so reads
   know whether the watermark argument currently holds.  On success
   the watermark advances to the clock value read {e before} the scan,
   so later stamp bumps cannot be masked. *)
let validate_extend tx ~extend =
  let g = Tvar.now () in
  let ok = ref true in
  let frag = ref 0 in
  let i = ref 0 in
  while !ok && !i < tx.read_len do
    let e = tx.read_log.(!i) in
    let cur = Atomic.get e.stamp in
    if cur <> e.seen then (
      match e.check () with
      | Valid_stable -> e.seen <- cur
      | Valid_fragile -> incr frag
      | Invalid -> ok := false);
    incr i
  done;
  if not !ok then begin
    ignore (Txn.try_abort tx.txn);
    raise Abort_attempt
  end;
  tx.n_fragile <- !frag;
  if extend then tx.valid_upto <- g

let validate tx = validate_extend tx ~extend:false

(* ------------------------------------------------------------------ *)
(* Open for write                                                      *)
(* ------------------------------------------------------------------ *)

(* After acquiring the locator, resolve every active visible reader.
   Readers registering after our CAS observe us as active owner and
   resolve from their side, so scanning once per remaining active
   reader suffices for mutual awareness. *)
let rec drain_readers tx tvar attempts =
  check_self tx;
  match Tvar.find_active_reader tvar tx.txn with
  | None -> Tvar.purge_readers tvar
  | Some r ->
      Tcm_obs.Hot.record tx.dom.hot (Tvar.id tvar);
      resolve_conflict tx ~other:r ~attempts;
      drain_readers tx tvar (attempts + 1)

(* Open [tvar] for writing and return the transaction's tentative
   value for it.  With [put = true] the tentative value becomes [v];
   with [put = false] ([read_for_write]) it is left as it was.

   Pooled locators make the two classic windows of the DSTM install
   CAS dangerous, and one hazard-slot publication per open closes
   both — {e provided no field of [loc] is read before the hazard is
   known effective}:

   - {e Field reads.}  [Tvar.protect] (an SC store, so it fences) is
     followed by a re-load of the variable that must still yield
     [loc] before any field is touched.  The re-load orders the field
     reads after the install CAS of whichever incarnation is linked
     (they read a locator whose refill completed before that CAS),
     and the hazard guarantees there will be no {e next} incarnation
     while we hold it: any displacement ordered after our re-load
     reaches the freelist pop's hazard scan, which drops held
     candidates.  Protecting without re-loading would not be enough —
     a freelist pop that raced the protect leaves [loc] mid-refill,
     its [owner] and value fields mixing incarnations (the bug class
     this ordering exists to rule out: a stale [owner] read could
     even present a dead attempt of ours as live ownership and let
     the repeat-write store below corrupt an enemy's locator).

   - {e The CAS itself.}  The same argument makes the install CAS
     ABA-free — from the re-load on, [loc] cannot be displaced,
     recycled and reinstalled behind its back — so a successful CAS
     proves the incarnation we validated was linked continuously, and
     the displaced [loc] satisfies the reclamation rule (owner
     decided, unlinked by our CAS).

   Presetting [new_v] through [take_locator] (before publication)
   means no store into a {e published} locator is needed on the fresh
   path; the only such store is the repeat-write branch below, safe
   because the hazard-then-linked re-check proved [loc] is our own
   live incarnation and pinned it against recycling.  The hazard slot
   stays published between opens — the next open overwrites it, and
   the attempt epilogue clears it — so an open costs one hazard store
   and one extra load, not a protect/unprotect pair.

   When the incumbent's owner is already decided — the uncontended
   case — the contention manager is not consulted at all: a dead
   owner cannot lose anything, so there is no conflict in the paper's
   sense, and the open costs one CAS plus the pool refill. *)
let rec open_write : 'a. tx -> 'a Tvar.t -> put:bool -> 'a -> int -> 'a =
  fun tx tvar ~put v attempts ->
   check_self tx;
   let pool = tx.dom.pool in
   let loc = Atomic.get tvar.Tvar.loc in
   Tvar.protect pool loc;
   if Atomic.get tvar.Tvar.loc != loc then
     (* Displaced before the hazard took effect (possibly mid-refill
        by now); nothing was read from it.  Retry from a fresh load. *)
     open_write tx tvar ~put v attempts
   else if loc.Tvar.owner == tx.txn then
     (* Repeat access to a variable we hold.  (Ownership cannot be
        spurious: the linked re-check above ordered this read after
        the install CAS of the linked incarnation, and only this
        domain writes this attempt's descriptor into owner fields.)
        [loc] is pinned by the hazard, so the store below cannot land
        in a recycled locator's next incarnation. *)
     if put then begin
       loc.Tvar.new_v <- v;
       v
     end
     else loc.Tvar.new_v
   else begin
     let owner = loc.Tvar.owner in
     let st = Txn.status owner in
     match st with
     | Status.Active ->
         Tcm_obs.Hot.record tx.dom.hot (Tvar.id tvar);
         resolve_conflict tx ~other:owner ~attempts;
         open_write tx tvar ~put v (attempts + 1)
     | Status.Committed | Status.Aborted ->
         let cur =
           match st with Status.Committed -> loc.Tvar.new_v | _ -> loc.Tvar.old_v
         in
         let value = if put then v else cur in
         let nloc = Tvar.take_locator pool ~owner:tx.txn ~old_v:cur ~new_v:value in
         Tcm_metrics.Conventions.pool_event tx.dom.mx
           (if Tvar.last_take_hit pool then Tcm_metrics.Conventions.p_hit
            else Tcm_metrics.Conventions.p_miss);
         if Atomic.compare_and_set tvar.Tvar.loc loc nloc then begin
           if Tvar.recycle_locator pool loc then
             Tcm_metrics.Conventions.pool_event tx.dom.mx
               Tcm_metrics.Conventions.p_recycled;
           (match tx.cfg.read_mode with
            | `Visible -> drain_readers tx tvar 0
            | `Invisible ->
                (* Make concurrent invisible readers revalidate,
                   record the cell for commit publication, and
                   re-check our own read set (the entry on this very
                   variable flips to its upgrade branch). *)
                Tvar.bump_version tvar;
                push_wstamp tx (Tvar.stamp_cell tvar);
                validate_extend tx ~extend:true);
           tx.n_writes <- tx.n_writes + 1;
           cm_opened tx;
           Tcm_trace.Sink.acquired ~txid:(Txn.timestamp tx.txn)
             ~obj:tvar.Tvar.id ~write:true ~tick:0;
           value
         end
         else begin
           (* Lost the install race; [nloc] was never published, so
              it goes straight back to the freelist (no [recycled]
              event: nothing was displaced). *)
           ignore (Tvar.recycle_locator pool nloc);
           open_write tx tvar ~put v attempts
         end
   end

(* ------------------------------------------------------------------ *)
(* Public transactional operations                                     *)
(* ------------------------------------------------------------------ *)

let write tx tvar v = ignore (open_write tx tvar ~put:true v 0)

(* Seqlock read of a locator we believe we own.  The generation must
   be even (no refill in flight) before any field is trusted — an odd
   or changed generation means the fields may mix incarnations, so the
   read retries from a fresh locator load.  Under a stable generation
   the ownership test cannot be spurious: only this domain ever stores
   this attempt's descriptor into an owner field.  A re-check that
   fails on the owned path means our locator was displaced — possible
   only after an enemy aborted us — so the attempt restarts.

   The linked re-check after the first generation sample ([Atomic.get
   tvar.loc != loc]) is as load-bearing as the generation itself:
   stability only proves the fields came from a single incarnation,
   not that the incarnation belongs to {e this} variable.  A reader
   preempted between the locator load and the generation sample can
   find the record displaced, recycled and refilled for a {e
   different} variable — readers hold no hazard, so the freelist pop
   does not spare them — and the refill leaves a new {e even}
   generation that validates perfectly.  The leaked value then
   belongs to the other variable (observed in the wild as a skiplist
   node surfacing in a taller level's slot and indexing past its
   forward array).  Re-checking the link inside the stable-generation
   window closes this: the record is linked to [tvar] at the
   re-check, and the unchanged generation across the whole window
   rules out any interleaved refill, so the fields are [tvar]'s. *)

let rec read_visible : 'a. tx -> 'a Tvar.t -> int -> 'a =
  fun tx tvar attempts ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   let g = Tvar.locator_gen loc in
   if (not (Tvar.gen_stable g)) || Atomic.get tvar.Tvar.loc != loc then
     read_visible tx tvar attempts
   else if loc.Tvar.owner == tx.txn then begin
     let v = loc.Tvar.new_v in
     if Tvar.locator_gen loc = g then v
     else begin
       check_self tx;
       raise Abort_attempt
     end
   end
   else begin
     Tvar.register_reader tvar tx.txn;
     (* Re-read after registration: any writer that acquired before our
        registration either drained us (sees us in the list) or is
        observed right here. *)
     let loc = Atomic.get tvar.Tvar.loc in
     let g = Tvar.locator_gen loc in
     if (not (Tvar.gen_stable g)) || Atomic.get tvar.Tvar.loc != loc then
       read_visible tx tvar attempts
     else begin
       let owner = loc.Tvar.owner in
       if owner == tx.txn then begin
         let v = loc.Tvar.new_v in
         if Tvar.locator_gen loc = g then v
         else begin
           check_self tx;
           raise Abort_attempt
         end
       end
       else begin
         let st = Txn.status owner in
         let v =
           match st with Status.Committed -> loc.Tvar.new_v | _ -> loc.Tvar.old_v
         in
         if Tvar.locator_gen loc <> g then
           (* Recycled under us: fields (and [owner]) may mix
              incarnations; retry from a fresh locator load. *)
           read_visible tx tvar attempts
         else
           match st with
           | Status.Active ->
               Tcm_obs.Hot.record tx.dom.hot (Tvar.id tvar);
               resolve_conflict tx ~other:owner ~attempts;
               read_visible tx tvar (attempts + 1)
           | Status.Committed | Status.Aborted ->
               cm_opened tx;
               v
       end
     end
   end

let rec read_invisible : 'a. tx -> 'a Tvar.t -> 'a =
  fun tx tvar ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   let g = Tvar.locator_gen loc in
   if (not (Tvar.gen_stable g)) || Atomic.get tvar.Tvar.loc != loc then
     read_invisible tx tvar
   else if loc.Tvar.owner == tx.txn then begin
     let v = loc.Tvar.new_v in
     if Tvar.locator_gen loc = g then v
     else begin
       check_self tx;
       raise Abort_attempt
     end
   end
   else begin
     let owner = loc.Tvar.owner in
     let saw_committed =
       match Txn.status owner with Status.Committed -> true | _ -> false
     in
     let v = if saw_committed then loc.Tvar.new_v else loc.Tvar.old_v in
     (* The stamp is read after the owner's status: commit publication
        bumps stamps before the status CAS, so observing a committed
        owner implies observing its bump and taking the slow path. *)
     let ver = Tvar.version tvar in
     if Tvar.locator_gen loc <> g then read_invisible tx tvar
     else begin
       (* Trust the stamp only when the resolution came from a
          committed owner.  A still-Active owner may already have
          published its commit stamp to this very cell, so its later
          status flip would invalidate the entry while leaving the
          stamp — and hence every stamp-gated skip, including
          commit-time validation — unchanged.  [seen = -1] keeps such
          entries on the recheck path until a validation finds their
          owner in a terminal state. *)
       let seen =
         if saw_committed then ver
         else begin
           tx.n_fragile <- tx.n_fragile + 1;
           -1
         end
       in
       push_read tx (make_read_entry tx tvar loc ~owner ~gen0:g ~saw_committed ~seen v);
       if ver > tx.valid_upto || tx.n_fragile > 0 then validate_extend tx ~extend:true;
       cm_opened tx;
       v
     end
   end

let read tx tvar =
  match tx.cfg.read_mode with
  | `Visible -> read_visible tx tvar 0
  | `Invisible -> read_invisible tx tvar

(** Read through the write path: acquires the variable exclusively.
    Use for read-modify-write accesses to avoid upgrade conflicts. *)
let read_for_write (tx : tx) tvar =
  (* [v] is never used on the [put = false] path; any value of the
     right type will do, and the variable's own current value is one
     we can name without touching the user's type. *)
  open_write tx tvar ~put:false (Atomic.get tvar.Tvar.loc).Tvar.old_v 0

let modify tx tvar f = write tx tvar (f (read_for_write tx tvar))

(** User-requested abort-and-retry of the current attempt. *)
let retry_now tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Abort_attempt

(** Blocking retry (Harris-et-al style [retry]): abort and re-run the
    transaction after a pause, so the caller effectively waits for the
    state it read to change.  The pause grows geometrically up to the
    configured cap. *)
let retry_wait tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Retry_wait

(** [check tx cond]: proceed if [cond] holds, otherwise block (via
    {!retry_wait}) until a later re-execution sees it hold. *)
let check tx cond = if not cond then retry_wait tx

(* ------------------------------------------------------------------ *)
(* The atomic block                                                    *)
(* ------------------------------------------------------------------ *)

let publish_stamps tx =
  (* Publish stamps before the status CAS: a reader that observes the
     committed owner then necessarily observes moved stamps and falls
     back to full validation.  The store is monotone ([advance_stamp]):
     an attempt that loses the CAS below may publish arbitrarily late,
     and must not drag a stamp backward past the next owner's bump —
     its forward bump merely causes spurious revalidations
     elsewhere. *)
  if tx.wstamps_len > 0 then begin
    let s = Tvar.next_stamp () in
    for i = 0 to tx.wstamps_len - 1 do
      Tvar.advance_stamp tx.wstamps.(i) s
    done
  end

let commit tx =
  (* [validate] raises on failure; [commit] runs outside [atomically]'s
     exception match (the [v ->] branch), so convert to a [false]
     return here rather than letting [Abort_attempt] escape. *)
  match tx.cfg.read_mode with
  | `Invisible when tx.n_writes = 0 ->
      (* Read-only fast path: the transaction published nothing — no
         locators, no reader-slot entries, no waiting flag — so no
         other transaction ever consults its status, and final
         validation alone decides the commit.  The status CAS and
         stamp publication are skipped entirely.  (Writers keep the
         CAS: their locators make the attempt's status the variables'
         pending value, and visible-mode readers keep it too — their
         reader-slot entries are reclaimed only once the status is
         decided.) *)
      (match validate tx with () -> true | exception Abort_attempt -> false)
  | `Invisible -> (
      match validate tx with
      | () ->
          publish_stamps tx;
          Txn.try_commit tx.txn
      | exception Abort_attempt -> false)
  | `Visible -> Txn.try_commit tx.txn

(* One attempt bookkeeping cycle.  Top-level (not a closure inside
   [atomically]) so the per-transaction path allocates nothing beyond
   the attempt descriptor itself. *)

let m_us m_t0 = int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6)

let finish_abort dom tx m_t0 =
  ignore (Txn.try_abort tx.txn);
  Atomic.set tx.txn.Txn.waiting false;
  (* An abort can be raised while the hazard slot covers a locator
     (validation inside [acquire], conflict resolution mid-drain). *)
  Tvar.unprotect dom.pool;
  clear_logs tx;
  Tcm_trace.Sink.attempt_abort ~txid:(Txn.timestamp tx.txn)
    ~attempt:tx.txn.Txn.attempt_id ~tick:0;
  if m_t0 > 0. then Tcm_metrics.Conventions.attempt_abort dom.mx ~duration:(m_us m_t0);
  (* The dead attempt's work — everything it opened — is what the
     abort wastes, in the cost model's unit. *)
  Tcm_obs.Ledger.charge_abort dom.obs ~work:tx.n_opens;
  tick dom.shard ix_aborts;
  let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
  M.aborted cm_st tx.txn;
  dom.running <- false

let rec attempt_loop : 'a. t -> per_domain -> tx -> (tx -> 'a) -> Txn.shared -> int -> int -> 'a =
  fun rt dom tx f shared wait_round n ->
   (match rt.config.max_attempts with
   | Some m when n > m -> raise (Too_many_attempts n)
   | _ -> ());
   let txn = Txn.new_attempt shared in
   tx.txn <- txn;
   tx.read_len <- 0;
   tx.valid_upto <- Tvar.now ();
   tx.n_fragile <- 0;
   tx.wstamps_len <- 0;
   tx.n_writes <- 0;
   tx.n_opens <- 0;
   dom.running <- true;
   let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
   M.begin_attempt cm_st txn;
   Tcm_trace.Sink.attempt_begin ~txid:(Txn.timestamp txn)
     ~attempt:txn.Txn.attempt_id ~tick:0;
   (* Attempt latency: the clock is read only while metrics are
      enabled; [0.] doubles as the "disabled" sentinel. *)
   let m_t0 = if Tcm_metrics.enabled () then Unix.gettimeofday () else 0. in
   Tcm_metrics.Conventions.attempt_begin dom.mx;
   match f tx with
   | v ->
       if commit tx then begin
         (* Opens leave the hazard slot published (one store per open,
            not a pair); release it now so the last locator we touched
            does not linger un-recyclable.  Scrub the logs so the
            committed read set's entries (and the values they close
            over) do not stay pinned by the scratch descriptor. *)
         Tvar.unprotect dom.pool;
         clear_logs tx;
         tick dom.shard ix_commits;
         Tcm_trace.Sink.attempt_commit ~txid:(Txn.timestamp txn)
           ~attempt:txn.Txn.attempt_id ~tick:0;
         if m_t0 > 0. then
           Tcm_metrics.Conventions.attempt_commit dom.mx ~duration:(m_us m_t0)
             ~read_set:tx.n_opens;
         Tcm_obs.Ledger.note_commit dom.obs ~work:tx.n_opens;
         M.committed cm_st txn;
         dom.running <- false;
         v
       end
       else begin
         finish_abort dom tx m_t0;
         attempt_loop rt dom tx f shared 0 (n + 1)
       end
   | exception Abort_attempt ->
       finish_abort dom tx m_t0;
       attempt_loop rt dom tx f shared 0 (n + 1)
   | exception Retry_wait ->
       finish_abort dom tx m_t0;
       (* The caller is waiting for another transaction to change the
          state it checked: yield first (the writer is often already
          runnable), then pause geometrically. *)
       if wait_round = 0 then Unix.sleepf 0.
       else
         sleep_usec
           (min rt.config.backoff_cap_usec
              (rt.config.block_poll_usec * (1 lsl min (wait_round - 1) 12)));
       attempt_loop rt dom tx f shared (wait_round + 1) (n + 1)
   | exception e ->
       (* User exception: abort the transaction, propagate. *)
       finish_abort dom tx m_t0;
       raise e

let atomically rt f =
  let dom = Domain.DLS.get rt.dls in
  if dom.running then
    if Txn.is_active dom.scratch.txn then
      (* Nested atomically: flatten into the enclosing transaction. *)
      f dom.scratch
    else
      (* The enclosing attempt was aborted by an enemy but has not yet
         noticed.  Starting an unrelated top-level transaction here (the
         historical behaviour) would alias the enclosing attempt's
         reused context, so instead abort the enclosing attempt — it is
         doomed anyway, and its restart re-runs this call. *)
      raise Abort_attempt
  else attempt_loop rt dom dom.scratch f (Txn.new_shared ()) 0 1

(** Descriptor of the transaction currently running on this domain;
    for diagnostics. *)
let current_txn rt =
  let dom = Domain.DLS.get rt.dls in
  if dom.running then Some dom.scratch.txn else None
