(** Transactional variables (the STM's shared objects).

    A [Tvar] follows the DSTM/SXM locator protocol.  The variable
    points atomically at a {e locator}: the owning transaction attempt,
    the last committed value [old_v] and the tentative value [new_v].
    The logical value of the variable is

    - [!new_v]  if the owner committed,
    - [old_v]   if the owner is active or aborted.

    A writer acquires the variable by installing (with CAS) a fresh
    locator that carries itself as owner; [new_v] is a ref mutated
    exclusively by the owner while it is active, and becomes the
    committed value if the owner's commit CAS succeeds.  Publication of
    [new_v] happens through the owner's atomic status transition, which
    makes the plain ref safe under the OCaml memory model
    (message-passing pattern).

    Two pieces of per-variable bookkeeping support the runtime's hot
    paths:

    - [version] is a stamp drawn from a global clock, advanced by
      invisible-mode writers when they install a locator and again just
      before they publish a commit.  Invisible readers use it for
      incremental validation: a read set known valid at clock value [g]
      stays valid as long as no variable in it carries a stamp above
      [g], so the common-case read validates one variable instead of
      re-checking the whole set.

    - Visible readers register in a small fixed array of {e reader
      slots} (CAS-claimed, lazily reclaimed when the registrant dies)
      with a list-based overflow for the rare case of more simultaneous
      readers than slots.  Registration and writer-side scans are
      allocation-free while the slots suffice. *)

type 'a locator = { owner : Txn.t; old_v : 'a; new_v : 'a ref }

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  version : int Atomic.t;
  reader_slots : Txn.t Atomic.t array;
  reader_overflow : Txn.t list Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Version stamps                                                      *)
(* ------------------------------------------------------------------ *)

(* Global stamp clock.  Advanced only by invisible-mode writers (once
   per locator install, once per commit publication), so the default
   visible mode never contends on it. *)
let clock = Atomic.make 1

let now () = Atomic.get clock
let next_stamp () = 1 + Atomic.fetch_and_add clock 1

let version t = Atomic.get t.version
let stamp_cell t = t.version

(* Stamp cells only move forward.  A plain store would let a lagging
   commit publication (an attempt that loses its status CAS after
   drawing a stamp) overwrite a newer stamp installed by the next
   owner, moving the variable's version backward past watermarks that
   were taken in between. *)
let rec advance_stamp cell s =
  let cur = Atomic.get cell in
  if s > cur && not (Atomic.compare_and_set cell cur s) then advance_stamp cell s

let bump_version t = advance_stamp t.version (next_stamp ())

(* ------------------------------------------------------------------ *)
(* Construction & inspection                                           *)
(* ------------------------------------------------------------------ *)

(* An empty reader slot.  The sentinel is permanently committed, hence
   never an active reader, so scans need no separate emptiness test. *)
let no_reader = Txn.committed_sentinel

let make v =
  {
    id = Txid.next_tvar_id ();
    loc = Atomic.make { owner = Txn.committed_sentinel; old_v = v; new_v = ref v };
    version = Atomic.make 0;
    reader_slots =
      [| Atomic.make no_reader; Atomic.make no_reader; Atomic.make no_reader;
         Atomic.make no_reader |];
    reader_overflow = Atomic.make [];
  }

let id t = t.id

(** Value of a locator as seen by an outside observer, given the
    owner's status read {e after} the locator itself. *)
let value_of_locator (loc : 'a locator) : 'a =
  match Txn.status loc.owner with
  | Status.Committed -> !(loc.new_v)
  | Status.Active | Status.Aborted -> loc.old_v

(** Latest committed value, for non-transactional inspection (tests,
    debugging).  Linearizes at the atomic load of the locator. *)
let peek t =
  let loc = Atomic.get t.loc in
  value_of_locator loc

(* ------------------------------------------------------------------ *)
(* Visible readers                                                     *)
(* ------------------------------------------------------------------ *)

(* Filter out dead readers, reporting whether any died, in one pass. *)
let rec live_readers acc died = function
  | [] -> (List.rev acc, died)
  | r :: rest ->
      if Txn.is_active r then live_readers (r :: acc) died rest
      else live_readers acc true rest

(** Register [txn] as a visible reader.  The scan stops at the first
    slot that already holds [txn] or at the first claimable (dead)
    slot, so the common case — a lone reader claiming slot 0, or
    re-reading a variable it already registered on — costs one load
    and at most one CAS, with no allocation.  The early exit tolerates
    the occasional duplicate registration (a transaction can claim an
    earlier slot than the one it already holds): visibility only
    requires {e at least} one live entry, writers drain until no
    active reader remains, and dead duplicates are reclaimed lazily
    like any other entry.  Only when every slot holds a live reader
    does registration fall back to the CAS'd overflow list. *)
let register_reader t (txn : Txn.t) =
  let slots = t.reader_slots in
  let n = Array.length slots in
  let rec overflow () =
    let rs = Atomic.get t.reader_overflow in
    if List.memq txn rs then ()
    else
      let live, _ = live_readers [] false rs in
      if not (Atomic.compare_and_set t.reader_overflow rs (txn :: live)) then overflow ()
  in
  let rec go i =
    if i = n then overflow ()
    else
      let cell = slots.(i) in
      let r = Atomic.get cell in
      if r == txn then ()
      else if Txn.is_active r then go (i + 1)
      else if Atomic.compare_and_set cell r txn then ()
      else go i (* lost the race for this slot; re-examine it *)
  in
  go 0

(** First active reader other than [txn], if any.  Allocation-free
    while the overflow list is empty. *)
let find_active_reader t (txn : Txn.t) =
  let slots = t.reader_slots in
  let n = Array.length slots in
  let rec over = function
    | [] -> None
    | r :: rest -> if r != txn && Txn.is_active r then Some r else over rest
  in
  let rec slot i =
    if i = n then over (Atomic.get t.reader_overflow)
    else
      let r = Atomic.get slots.(i) in
      if r != txn && Txn.is_active r then Some r else slot (i + 1)
  in
  slot 0

(** Opportunistically drop dead reader entries: dead slots are reset to
    the sentinel, and the overflow list is rebuilt in a single pass —
    the CAS is skipped entirely when nothing died. *)
let purge_readers t =
  Array.iter
    (fun s ->
      let r = Atomic.get s in
      if r != no_reader && not (Txn.is_active r) then
        ignore (Atomic.compare_and_set s r no_reader))
    t.reader_slots;
  match Atomic.get t.reader_overflow with
  | [] -> ()
  | rs ->
      let live, died = live_readers [] false rs in
      if died then ignore (Atomic.compare_and_set t.reader_overflow rs live)
