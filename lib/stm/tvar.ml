(** Transactional variables (the STM's shared objects).

    A [Tvar] follows the DSTM/SXM locator protocol.  The variable
    points atomically at a {e locator}: the owning transaction attempt,
    the last committed value [old_v] and the tentative value [new_v].
    The logical value of the variable is

    - [new_v]  if the owner committed,
    - [old_v]  if the owner is active or aborted.

    A writer acquires the variable by installing (with CAS) a locator
    that carries itself as owner; [new_v] is mutated exclusively by the
    owner while it is active, and becomes the committed value if the
    owner's commit CAS succeeds.  Publication of [new_v] happens
    through the owner's atomic status transition, which makes the plain
    field safe under the OCaml memory model (message-passing pattern).

    {1 Locator pooling}

    Locators are {e pooled}: instead of allocating a record (plus a
    value ref) on every [open_write], each domain keeps a small
    freelist of dead locators and refills one in place.  That makes
    the steady-state write path allocation-free, at the price of two
    hazards that the plain protocol did not have:

    - {e Seqlock generations.}  A pooled locator's fields are mutable,
      so a reader that loaded the locator pointer may observe fields
      from a {e later incarnation} if the locator is recycled
      mid-read.  Every locator therefore carries a two-phase
      generation counter [gen]: a refill bumps it to an {e odd} value
      before storing any field of the new incarnation and to the next
      {e even} value once the stores are done, so an odd generation
      means "refill in flight — fields unreliable".  Readers use the
      seqlock recipe: load the locator, load [gen] and {e retry if it
      is odd}, read the fields, re-check [gen].  An unchanged (hence
      even) generation proves the fields all belonged to one completed
      incarnation — a reader whose first [gen] load lands between the
      odd bump and the field stores sees the odd value and retries,
      which a single bump could not detect — so the read linearizes at
      the initial load, exactly like the unpooled protocol.

    - {e Hazard slots (the reclamation rule).}  A locator may be
      recycled only after its owner's status is decided {e and} it has
      been unlinked from the variable: recycling is therefore driven
      by displacement — the writer whose CAS replaces a dead locator
      pushes the displaced one onto its own domain's freelist.  A
      still-published locator is never recycled, since concurrent
      readers resolve values through it.  Unlinking alone is not
      enough, though: a reader (or the owner mutating [new_v]) may
      still hold a reference it is about to dereference.  Each domain
      owns one {e hazard slot}; publishing a locator there and then
      re-checking that it is still linked guarantees the locator
      cannot be refilled until the slot is cleared (any unlink ordered
      after the re-check happens before the freelist pop that would
      reuse it, and the pop scans every hazard slot, dropping — never
      reusing — a candidate that is held).  This also makes the
      acquire CAS ABA-free: a hazard-protected incumbent cannot be
      displaced, recycled and reinstalled behind the CAS's back.

    The pool is bounded ([pool_cap] per domain); beyond that, and for
    hazard-held candidates, locators are simply dropped for the GC —
    pooling is an optimisation, never a liveness requirement.  A
    pooled locator pins its last [owner]/[old_v]/[new_v] until reuse;
    the bound keeps that retention O(pool_cap) per domain.

    {1 Per-variable bookkeeping}

    Two pieces of per-variable bookkeeping support the runtime's hot
    paths:

    - [version] is a stamp drawn from a global clock, advanced by
      invisible-mode writers when they install a locator and again just
      before they publish a commit.  Invisible readers use it for
      incremental validation: a read set known valid at clock value [g]
      stays valid as long as no variable in it carries a stamp above
      [g], so the common-case read validates one variable instead of
      re-checking the whole set.

    - Visible readers register in a small fixed array of {e reader
      slots} (CAS-claimed, lazily reclaimed when the registrant dies)
      with a list-based overflow for the rare case of more simultaneous
      readers than slots.  Registration and writer-side scans are
      allocation-free while the slots suffice. *)

type 'a locator = {
  mutable owner : Txn.t;
  mutable old_v : 'a;
  mutable new_v : 'a;
  gen : int Atomic.t;
      (** Two-phase incarnation counter: odd while a refill's field
          stores are in flight, even once the incarnation is complete
          (see the seqlock rule above).  Never reset. *)
}

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  version : int Atomic.t;
  reader_slots : Txn.t Atomic.t array;
  reader_overflow : Txn.t list Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Version stamps                                                      *)
(* ------------------------------------------------------------------ *)

(* Global stamp clock.  Advanced only by invisible-mode writers (once
   per locator install, once per commit publication), so the default
   visible mode never contends on it. *)
let clock = Atomic.make 1

let now () = Atomic.get clock
let next_stamp () = 1 + Atomic.fetch_and_add clock 1

let version t = Atomic.get t.version
let stamp_cell t = t.version

(* Stamp cells only move forward.  A plain store would let a lagging
   commit publication (an attempt that loses its status CAS after
   drawing a stamp) overwrite a newer stamp installed by the next
   owner, moving the variable's version backward past watermarks that
   were taken in between. *)
let rec advance_stamp cell s =
  let cur = Atomic.get cell in
  if s > cur && not (Atomic.compare_and_set cell cur s) then advance_stamp cell s

let bump_version t = advance_stamp t.version (next_stamp ())

(* ------------------------------------------------------------------ *)
(* Locator pool & hazard slots                                         *)
(* ------------------------------------------------------------------ *)

let locator_gen (loc : 'a locator) = Atomic.get loc.gen

(* Even = the incarnation's refill stores are complete; odd = a refill
   is in flight and the fields may mix incarnations. *)
let gen_stable g = g land 1 = 0

(* Pools hold locators type-erased to [Obj.t]: values of every ['a]
   share one uniform representation, and a refill overwrites both value
   fields before the locator is re-exposed, so the [Obj.magic] at
   [take_locator] never lets one incarnation's payload escape into
   another's type.  (The locator record also carries the non-value
   [owner]/[gen] fields, so it can never be subject to the flat-float
   representation — fields are always boxed uniformly.) *)
type erased = Obj.t locator

let dummy_locator : erased =
  { owner = Txn.committed_sentinel; old_v = Obj.repr 0; new_v = Obj.repr 0; gen = Atomic.make 0 }

(* A unique block that is never a locator, marking an idle hazard
   slot. *)
let no_hazard : Obj.t = Obj.repr (ref 0)

type pool = {
  mutable items : erased array;  (** Freelist stack, owner-domain only. *)
  mutable len : int;
  mutable last_hit : bool;
      (** Whether the most recent [take_locator] was a freelist refill
          (out-of-band so the hot path returns the locator unboxed,
          with no tuple). *)
  hazard : Obj.t Atomic.t;
      (** The locator this domain is currently dereferencing (or
          [no_hazard]).  Written only by the owning domain; read by
          every domain's freelist pop. *)
}

let pool_cap = 64

(* All live hazard slots, scanned by [take_locator].  One slot per
   domain-with-a-pool; domains are few, so a list scan per pool pop is
   cheap.  A slot is removed when its domain exits (the domain runs no
   transaction by then, so the slot is idle) — otherwise workloads that
   churn short-lived domains would grow the list without bound and
   every pop would scan the full history. *)
let hazard_registry : Obj.t Atomic.t list Atomic.t = Atomic.make []

let rec register_hazard h =
  let l = Atomic.get hazard_registry in
  if not (Atomic.compare_and_set hazard_registry l (h :: l)) then register_hazard h

let rec unregister_hazard h =
  let l = Atomic.get hazard_registry in
  let l' = List.filter (fun x -> x != h) l in
  if not (Atomic.compare_and_set hazard_registry l l') then unregister_hazard h

let hazard_slot_count () = List.length (Atomic.get hazard_registry)

let pool_key =
  Domain.DLS.new_key (fun () ->
      let hazard = Atomic.make no_hazard in
      register_hazard hazard;
      Domain.at_exit (fun () -> unregister_hazard hazard);
      { items = Array.make pool_cap dummy_locator; len = 0; last_hit = false; hazard })

let domain_pool () = Domain.DLS.get pool_key

let pool_size p = p.len
let last_take_hit p = p.last_hit

let protect (p : pool) (loc : 'a locator) = Atomic.set p.hazard (Obj.repr loc)
let unprotect (p : pool) = Atomic.set p.hazard no_hazard

let rec hazard_held hs (o : Obj.t) =
  match hs with
  | [] -> false
  | h :: rest -> Atomic.get h == o || hazard_held rest o

(* Pop a freelist entry no hazard slot currently holds; [dummy_locator]
   signals an empty freelist (it is never pushed, so the sentinel is
   unambiguous — and returning it instead of an option keeps the pop
   allocation-free).  A held candidate is dropped for the GC — the
   holder may dereference it arbitrarily late, so it must never be
   refilled. *)
let rec pop_free (p : pool) : erased =
  if p.len = 0 then dummy_locator
  else begin
    let n = p.len - 1 in
    p.len <- n;
    let c = p.items.(n) in
    p.items.(n) <- dummy_locator;
    if hazard_held (Atomic.get hazard_registry) (Obj.repr c) then pop_free p
    else c
  end

(** Take a locator owned by [owner] carrying the given value slots
    (the tentative value is preset {e before} publication, so the
    writer needs no store into the locator after its install CAS),
    refilled from the domain freelist when possible.  [last_take_hit]
    reports whether this call was a refill.  A refill is bracketed by
    two generation bumps (even → odd → even): the first precedes every
    field store — as an SC RMW it also fences them — and marks the
    refill in flight, the second publishes the completed incarnation.
    A seqlock reader racing the refill either sees a changed
    generation or the odd in-flight value, and retries either way; it
    can never validate fields that mix incarnations. *)
let take_locator (type a) (p : pool) ~(owner : Txn.t) ~(old_v : a) ~(new_v : a) :
    a locator =
  let c = pop_free p in
  if c == dummy_locator then begin
    p.last_hit <- false;
    { owner; old_v; new_v; gen = Atomic.make 0 }
  end
  else begin
      p.last_hit <- true;
      Atomic.incr c.gen (* even -> odd: refill in flight *);
      let l : a locator = Obj.magic c in
      l.owner <- owner;
      l.old_v <- old_v;
      l.new_v <- new_v;
      Atomic.incr c.gen (* odd -> even: incarnation complete *);
      l
  end

(** Return a locator to the domain freelist.  {b Reclamation rule}
    (caller's obligation): the locator's [owner] status must be
    decided, and the locator must be unlinked from its variable — i.e.
    the caller displaced it with a successful CAS, or it was never
    published at all (a CAS-loser).  Returns [false] when the pool is
    full and the locator was dropped for the GC instead. *)
let recycle_locator (p : pool) (loc : 'a locator) =
  if p.len >= pool_cap then false
  else begin
    p.items.(p.len) <- (Obj.magic loc : erased);
    p.len <- p.len + 1;
    true
  end

(* ------------------------------------------------------------------ *)
(* Construction & inspection                                           *)
(* ------------------------------------------------------------------ *)

(* An empty reader slot.  The sentinel is permanently committed, hence
   never an active reader, so scans need no separate emptiness test. *)
let no_reader = Txn.committed_sentinel

let make v =
  {
    id = Txid.next_tvar_id ();
    loc =
      Atomic.make
        { owner = Txn.committed_sentinel; old_v = v; new_v = v; gen = Atomic.make 0 };
    version = Atomic.make 0;
    reader_slots =
      [| Atomic.make no_reader; Atomic.make no_reader; Atomic.make no_reader;
         Atomic.make no_reader |];
    reader_overflow = Atomic.make [];
  }

let id t = t.id

(** Non-transactional store for bulk preloading, installing a fresh
    committed locator.  Only sound while the variable is {e
    unpublished} — no concurrent transaction (on either backend) may
    have seen it: the store bypasses conflict detection entirely, so a
    racing reader could validate against the displaced locator.  Both
    backends read the committed value as [new_v] of a
    committed-sentinel locator, which is exactly what this installs;
    the structure-level [unsafe_preload]s build million-entry stores
    through it without paying a commit per variable. *)
let unsafe_init t v =
  Atomic.set t.loc
    { owner = Txn.committed_sentinel; old_v = v; new_v = v; gen = Atomic.make 0 }

(** Value of a locator as seen by an outside observer, given the
    owner's status read {e after} the locator itself.  Only meaningful
    on a locator known stable: one the caller owns, holds under its
    hazard slot, or validates with the seqlock generation afterwards. *)
let value_of_locator (loc : 'a locator) : 'a =
  match Txn.status loc.owner with
  | Status.Committed -> loc.new_v
  | Status.Active | Status.Aborted -> loc.old_v

(** Latest committed value, for non-transactional inspection (tests,
    debugging).  Linearizes at the linked re-check below; the seqlock
    re-check guards against the locator being recycled mid-read.

    The linked re-check after the first generation sample is load-
    bearing: generation stability alone only proves the fields came
    from a {e single} incarnation, not that the incarnation belongs to
    {e this} variable.  Without it, a reader preempted between the
    locator load and the generation sample can find the record
    displaced, recycled and refilled for a different variable — with a
    new {e even} generation — and the seqlock happily validates the
    other variable's value.  Re-checking the link inside the stable-
    generation window pins the incarnation to this variable: the
    record is linked here at the re-check, and the unchanged
    generation across the window rules out any refill in between. *)
let rec peek t =
  let loc = Atomic.get t.loc in
  let g = Atomic.get loc.gen in
  if (not (gen_stable g)) || Atomic.get t.loc != loc then peek t
  else
    let owner = loc.owner in
    let v =
      match Txn.status owner with Status.Committed -> loc.new_v | _ -> loc.old_v
    in
    if Atomic.get loc.gen = g then v else peek t

(* ------------------------------------------------------------------ *)
(* Visible readers                                                     *)
(* ------------------------------------------------------------------ *)

(* Filter out dead readers, reporting whether any died, in one pass. *)
let rec live_readers acc died = function
  | [] -> (List.rev acc, died)
  | r :: rest ->
      if Txn.is_active r then live_readers (r :: acc) died rest
      else live_readers acc true rest

(* The registration loops live at top level: local recursive functions
   would close over the variable and the transaction, allocating two
   closures per visible read — the read path must stay
   allocation-free. *)
let rec rr_overflow t (txn : Txn.t) =
  let rs = Atomic.get t.reader_overflow in
  if List.memq txn rs then ()
  else
    let live, _ = live_readers [] false rs in
    if not (Atomic.compare_and_set t.reader_overflow rs (txn :: live)) then
      rr_overflow t txn

let rec rr_slot t (txn : Txn.t) slots n i =
  if i = n then rr_overflow t txn
  else
    let cell = slots.(i) in
    let r = Atomic.get cell in
    if r == txn then ()
    else if Txn.is_active r then rr_slot t txn slots n (i + 1)
    else if Atomic.compare_and_set cell r txn then ()
    else rr_slot t txn slots n i (* lost the race for this slot; re-examine it *)

(** Register [txn] as a visible reader.  The scan stops at the first
    slot that already holds [txn] or at the first claimable (dead)
    slot, so the common case — a lone reader claiming slot 0, or
    re-reading a variable it already registered on — costs one load
    and at most one CAS, with no allocation.  The early exit tolerates
    the occasional duplicate registration (a transaction can claim an
    earlier slot than the one it already holds): visibility only
    requires {e at least} one live entry, writers drain until no
    active reader remains, and dead duplicates are reclaimed lazily
    like any other entry.  Only when every slot holds a live reader
    does registration fall back to the CAS'd overflow list. *)
let register_reader t (txn : Txn.t) =
  rr_slot t txn t.reader_slots (Array.length t.reader_slots) 0

let rec far_overflow (txn : Txn.t) = function
  | [] -> None
  | r :: rest -> if r != txn && Txn.is_active r then Some r else far_overflow txn rest

let rec far_slot t (txn : Txn.t) slots n i =
  if i = n then far_overflow txn (Atomic.get t.reader_overflow)
  else
    let r = Atomic.get slots.(i) in
    if r != txn && Txn.is_active r then Some r else far_slot t txn slots n (i + 1)

(** First active reader other than [txn], if any.  Allocation-free
    while the overflow list is empty. *)
let find_active_reader t (txn : Txn.t) =
  far_slot t txn t.reader_slots (Array.length t.reader_slots) 0

(** Opportunistically drop dead reader entries: dead slots are reset to
    the sentinel, and the overflow list is rebuilt in a single pass —
    the CAS is skipped entirely when nothing died. *)
let purge_readers t =
  Array.iter
    (fun s ->
      let r = Atomic.get s in
      if r != no_reader && not (Txn.is_active r) then
        ignore (Atomic.compare_and_set s r no_reader))
    t.reader_slots;
  match Atomic.get t.reader_overflow with
  | [] -> ()
  | rs ->
      let live, died = live_readers [] false rs in
      if died then ignore (Atomic.compare_and_set t.reader_overflow rs live)
