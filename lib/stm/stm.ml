(** Public facade of the STM substrate.

    Two interchangeable runtime backends sit behind this module — the
    obstruction-free DSTM/SXM locator runtime ({!Runtime}) and the
    lock-based TL2-style runtime ({!Tl2}), both implementing
    {!Runtime_intf.S} — selected per runtime at {!create} time.  The
    structures and the workload harness are written against this
    facade only, so they run unmodified on either backend.

    Typical use:

    {[
      let cm = Tcm_core.Registry.find_exn "greedy" in
      let rt = Stm.create ~backend:Stm.Tl2_backend cm in
      let acct = Stm.Tvar.make 100 in
      Stm.atomically rt (fun tx ->
          let v = Stm.read tx acct in
          Stm.write tx acct (v + 1))
    ]}

    Dispatch is one variant match per operation; the per-attempt
    wrapper closure plus [tx] variant cost a handful of minor words,
    within the write-path allocation budget (the write-cost bench
    gates this).  A given [Tvar.t] must be used under a single
    backend: the two protocols publish values through different
    mechanisms and do not observe each other's ownership. *)

module Status = Status
module Splitmix = Splitmix
module Txid = Txid
module Txn = Txn
module Decision = Decision
module Cm_intf = Cm_intf
module Tvar = Tvar
module Runtime_intf = Runtime_intf
module Runtime = Runtime
module Tl2 = Tl2

type config = Runtime.config = {
  read_mode : Runtime.read_mode;
  max_attempts : int option;
  block_poll_usec : int;
  backoff_cap_usec : int;
}

let default_config = Runtime.default_config

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type backend = Locator | Tl2_backend

let all_backends = [ Locator; Tl2_backend ]

let backend_name = function
  | Locator -> Runtime.backend_name
  | Tl2_backend -> Tl2.backend_name

let backend_of_name = function
  | "locator" -> Some Locator
  | "tl2" -> Some Tl2_backend
  | _ -> None

type runtime = Locator_rt of Runtime.t | Tl2_rt of Tl2.t
type tx = Locator_tx of Runtime.tx | Tl2_tx of Tl2.tx

let create ?config ?(backend = Locator) cm =
  match backend with
  | Locator -> Locator_rt (Runtime.create ?config cm)
  | Tl2_backend -> Tl2_rt (Tl2.create ?config cm)

let backend_of = function Locator_rt _ -> Locator | Tl2_rt _ -> Tl2_backend

let atomically rt f =
  match rt with
  | Locator_rt r -> Runtime.atomically r (fun t -> f (Locator_tx t))
  | Tl2_rt r -> Tl2.atomically r (fun t -> f (Tl2_tx t))

let read tx v =
  match tx with Locator_tx t -> Runtime.read t v | Tl2_tx t -> Tl2.read t v

let write tx v x =
  match tx with Locator_tx t -> Runtime.write t v x | Tl2_tx t -> Tl2.write t v x

let read_for_write tx v =
  match tx with
  | Locator_tx t -> Runtime.read_for_write t v
  | Tl2_tx t -> Tl2.read_for_write t v

let modify tx v f =
  match tx with Locator_tx t -> Runtime.modify t v f | Tl2_tx t -> Tl2.modify t v f

let retry_now tx =
  match tx with Locator_tx t -> Runtime.retry_now t | Tl2_tx t -> Tl2.retry_now t

let retry_wait tx =
  match tx with Locator_tx t -> Runtime.retry_wait t | Tl2_tx t -> Tl2.retry_wait t

let check tx cond =
  match tx with Locator_tx t -> Runtime.check t cond | Tl2_tx t -> Tl2.check t cond

let stats = function Locator_rt r -> Runtime.stats r | Tl2_rt r -> Tl2.stats r

let manager_name = function
  | Locator_rt r -> Runtime.manager_name r
  | Tl2_rt r -> Tl2.manager_name r

let current_txn = function
  | Locator_rt r -> Runtime.current_txn r
  | Tl2_rt r -> Tl2.current_txn r
