(** Shared surface of the runtime backends.

    The repo carries two interchangeable STM engines — the
    obstruction-free DSTM/SXM locator runtime ({!Runtime}) and the
    lock-based TL2-style runtime ({!Tl2}) — behind one signature
    ({!S}), so structures, the workload harness and the benches are
    backend-agnostic.  Everything both engines share lives here:

    - the configuration record and its default;
    - the statistics snapshot and the per-domain shard layout it is
      folded from;
    - the control-flow exceptions (shared so the facade in {!Stm} can
      re-raise and catch uniformly, and so tests written against one
      backend's exceptions hold for the other);
    - the adaptive-wait ladder used while blocked behind an enemy.

    Both backends re-export the types with equations
    ([type config = Runtime_intf.config = {...}]), so existing callers
    that name them through [Runtime] keep compiling unchanged. *)

exception Abort_attempt
(** Internal control flow: the current attempt is (being) aborted and
    must restart. *)

exception Too_many_attempts of int
(** Raised when [max_attempts] is exceeded. *)

exception Retry_wait
(** Internal control flow for [retry_wait]/[check]: abort the attempt
    and re-run after a pause, i.e. block until the world changes. *)

type read_mode = [ `Visible | `Invisible ]
(** Locator backend only; the TL2 backend's reads are always invisible
    (validated against the global clock) and ignore this field. *)

type config = {
  read_mode : read_mode;
  max_attempts : int option;  (** [None] = retry forever. *)
  block_poll_usec : int;
      (** Cap on the sleeping period while blocked on an enemy (the
          wait spins, then yields, then sleeps with geometrically
          growing pauses up to this cap). *)
  backoff_cap_usec : int;  (** Upper bound applied to [Backoff] verdicts. *)
}

let default_config =
  { read_mode = `Visible; max_attempts = None; block_poll_usec = 50; backoff_cap_usec = 100_000 }

(* ------------------------------------------------------------------ *)
(* Statistics: per-domain shards                                       *)
(* ------------------------------------------------------------------ *)

(* Each domain increments only its own shard, so the per-commit /
   per-conflict counters never ping-pong cache lines between cores.  A
   shard is one flat (unboxed) [int array]: counters sit a cache line
   (8 words) apart, with a line of slack at each end so no counter
   shares a line with a neighbouring heap block — a layout the GC
   cannot break, unlike a record of boxed [Atomic.t] cells, where each
   counter is its own heap block and record padding pads nothing.
   Only the owning domain ever writes a counter; [stats] reads them
   from other domains, which is a benign race on monotone int cells
   (OCaml plain-int reads cannot tear): a concurrent snapshot may lag
   a few events, and a snapshot ordered after the counting domain's
   work — joined domains, as in the harness and every test — is
   exact. *)
module Shard = struct
  type t = int array

  let line_words = 8 (* ints per 64-byte cache line *)
  let n_counters = 7
  let counter_ix i = (i + 1) * line_words
  let make () : t = Array.make ((n_counters + 2) * line_words) 0

  let ix_commits = counter_ix 0
  let ix_aborts = counter_ix 1
  let ix_conflicts = counter_ix 2
  let ix_enemy_aborts = counter_ix 3 (* times we aborted an enemy *)
  let ix_self_aborts = counter_ix 4
  let ix_blocks = counter_ix 5
  let ix_backoffs = counter_ix 6
  let tick (s : t) ix = s.(ix) <- s.(ix) + 1
end

type stats_snapshot = {
  n_commits : int;
  n_aborts : int;
  n_conflicts : int;
  n_enemy_aborts : int;
  n_self_aborts : int;
  n_blocks : int;
  n_backoffs : int;
}

let empty_stats =
  {
    n_commits = 0;
    n_aborts = 0;
    n_conflicts = 0;
    n_enemy_aborts = 0;
    n_self_aborts = 0;
    n_blocks = 0;
    n_backoffs = 0;
  }

let stats_of_shards (shards : Shard.t list) =
  List.fold_left
    (fun acc (s : Shard.t) ->
      {
        n_commits = acc.n_commits + s.(Shard.ix_commits);
        n_aborts = acc.n_aborts + s.(Shard.ix_aborts);
        n_conflicts = acc.n_conflicts + s.(Shard.ix_conflicts);
        n_enemy_aborts = acc.n_enemy_aborts + s.(Shard.ix_enemy_aborts);
        n_self_aborts = acc.n_self_aborts + s.(Shard.ix_self_aborts);
        n_blocks = acc.n_blocks + s.(Shard.ix_blocks);
        n_backoffs = acc.n_backoffs + s.(Shard.ix_backoffs);
      })
    empty_stats shards

let pp_stats fmt s =
  Format.fprintf fmt "commits=%d aborts=%d conflicts=%d enemy-aborts=%d blocks=%d backoffs=%d"
    s.n_commits s.n_aborts s.n_conflicts s.n_enemy_aborts s.n_blocks s.n_backoffs

(* ------------------------------------------------------------------ *)
(* Adaptive waiting                                                    *)
(* ------------------------------------------------------------------ *)

let sleep_usec usec = if usec > 0 then Unix.sleepf (float_of_int usec *. 1e-6)

(* Adaptive waiting: spin on the CPU hint first (an enemy on another
   core often finishes within nanoseconds), then yield the timeslice,
   then sleep with geometrically growing pauses capped at [cap_usec].
   The wall clock is consulted only once a wait reaches the sleeping
   phase — never in the spin loop. *)
let spin_rounds = 32
let yield_rounds = 16

let wait_step ~round ~cap_usec =
  if round < spin_rounds then Domain.cpu_relax ()
  else if round < spin_rounds + yield_rounds then Unix.sleepf 0.
  else
    let r = round - spin_rounds - yield_rounds in
    sleep_usec (min cap_usec (1 lsl min r 10))

(* Block until [other] is no longer active, or starts waiting itself,
   or the timeout expires.  Sets [me]'s public waiting flag for the
   duration, so that greedy enemies may abort the blocked party
   (Rule 1); raises {!Abort_attempt} when [me] is aborted while
   waiting.  Shared by both backends — the locator runtime blocks at
   open time, the TL2 runtime at commit-time lock acquisition — so the
   cycle-breaking dynamics (a wait ends when the enemy starts waiting,
   and the manager is then re-consulted with the enemy's waiting flag
   visible) are identical on both. *)
let block_on ~(me : Txn.t) ~(other : Txn.t) ~(shard : Shard.t)
    ~(mx : Tcm_metrics.Conventions.t) ~(obs : Tcm_obs.Ledger.t) ~cap_usec
    ~timeout_usec =
  Shard.tick shard Shard.ix_blocks;
  Atomic.set me.Txn.waiting true;
  Tcm_trace.Sink.wait_begin ~me:(Txn.timestamp me) ~enemy:(Txn.timestamp other) ~tick:0;
  (* Wall clock only when metrics or the obs ledger are on; the spin
     loop itself never consults it. *)
  let m_t0 =
    if Tcm_metrics.enabled () || Tcm_obs.Ledger.enabled () then
      Unix.gettimeofday ()
    else 0.
  in
  (* [rounds] is how far the spin/yield ladder got — the wait's cost
     in ladder ticks.  The duration is computed once and fed to both
     the metrics histogram and the obs ledger (each self-gates), which
     is what makes [Ledger.reconcile]'s wait-cost check exact when
     both layers are enabled over the same span. *)
  let finish rounds =
    Atomic.set me.Txn.waiting false;
    Tcm_trace.Sink.wait_end ~me:(Txn.timestamp me) ~enemy:(Txn.timestamp other) ~tick:0;
    if m_t0 > 0. then begin
      let duration = int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6) in
      Tcm_metrics.Conventions.wait mx ~duration;
      Tcm_obs.Ledger.charge_wait obs ~cost:duration ~ticks:rounds
    end
  in
  let deadline =
    match timeout_usec with
    | None -> infinity
    | Some us -> Unix.gettimeofday () +. (float_of_int us *. 1e-6)
  in
  let rec wait round =
    if not (Txn.is_active me) then begin
      finish round;
      raise Abort_attempt
    end;
    if
      Txn.is_active other
      && (not (Txn.is_waiting other))
      && (deadline = infinity || round < spin_rounds || Unix.gettimeofday () < deadline)
    then begin
      wait_step ~round ~cap_usec;
      wait (round + 1)
    end
    else round
  in
  finish (wait 0)

let decision_trace_code = function
  | Decision.Abort_other -> Tcm_trace.Event.d_abort_other
  | Decision.Abort_self -> Tcm_trace.Event.d_abort_self
  | Decision.Block _ -> Tcm_trace.Event.d_block
  | Decision.Backoff _ -> Tcm_trace.Event.d_backoff

(* ------------------------------------------------------------------ *)
(* The backend signature                                               *)
(* ------------------------------------------------------------------ *)

(** What a runtime backend must provide.  [Stm] dispatches over the
    two implementations; both are checked against this signature, so a
    drift in either surface is a compile error. *)
module type S = sig
  val backend_name : string

  type t
  type tx

  val create : ?config:config -> Cm_intf.factory -> t
  val manager_name : t -> string
  val stats : t -> stats_snapshot
  val atomically : t -> (tx -> 'a) -> 'a
  val read : tx -> 'a Tvar.t -> 'a
  val write : tx -> 'a Tvar.t -> 'a -> unit
  val read_for_write : tx -> 'a Tvar.t -> 'a
  val modify : tx -> 'a Tvar.t -> ('a -> 'a) -> unit
  val retry_now : tx -> 'a
  val retry_wait : tx -> 'a
  val check : tx -> bool -> unit
  val current_txn : t -> Txn.t option

  val consult : Cm_intf.packed -> me:Txn.t -> other:Txn.t -> attempts:int -> Decision.t
  (** The backend's conflict adapter: ask the packed manager instance
      for a verdict on the [me]/[other] conflict.  Exposed so tests
      can drive a scripted duel through both backends and assert the
      verdicts agree (the execution of a verdict differs — the locator
      backend aborts enemies in place, the TL2 backend maps
      [Abort_other] to a lock steal — but the verdict itself must
      not). *)
end
