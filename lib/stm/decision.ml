(** Contention-manager decisions.

    When transaction [A] is about to perform an access that conflicts
    with transaction [B], [A]'s contention manager returns one of these
    verdicts.  The runtime executes the verdict and, unless it was
    terminal for [A], calls the manager again with an incremented
    [attempts] counter until the conflict is gone. *)

type t =
  | Abort_other  (** Abort the enemy attempt (CAS its status). *)
  | Abort_self   (** Abort and restart the calling transaction. *)
  | Block of { timeout_usec : int option }
      (** Greedy-style wait: set our public [waiting] flag and block
          until the enemy commits, aborts or starts waiting itself —
          or until the optional timeout expires.  Either way the
          manager is consulted again afterwards. *)
  | Backoff of { usec : int }
      (** Sleep for the given duration, then consult the manager
          again.  Used by Polite/Polka-style managers. *)

let pp fmt = function
  | Abort_other -> Format.pp_print_string fmt "abort-other"
  | Abort_self -> Format.pp_print_string fmt "abort-self"
  | Block { timeout_usec = None } -> Format.pp_print_string fmt "block"
  | Block { timeout_usec = Some t } -> Format.fprintf fmt "block(%dus)" t
  | Backoff { usec } -> Format.fprintf fmt "backoff(%dus)" usec

(* ------------------------------------------------------------------ *)
(* Flyweights                                                          *)
(* ------------------------------------------------------------------ *)

(* [Block] and [Backoff] are the two non-constant constructors, so
   building one on the consult path costs minor words — the last
   allocation the contention managers were still making per conflict.
   The constructors below return preallocated records instead:
   durations are snapped onto a quantization grid (exact up to
   [exact_max], then [coarse_step]-spaced up to [max_usec]) and each
   grid point's record is built once at module init.  The grid loses
   at most [coarse_step - 1] us off a duration that is jitter-randomized
   anyway; both runtime backends share the very same records, so
   cross-backend verdict equality is unaffected. *)

let exact_max = 4_096
let coarse_step = 128
let coarse_n = 1_024
let max_usec = exact_max + ((coarse_n - 1) * coarse_step)

let quantize usec =
  if usec <= 0 then 0
  else if usec < exact_max then usec
  else exact_max + (min (coarse_n - 1) ((usec - exact_max) / coarse_step) * coarse_step)

let backoff_exact = Array.init exact_max (fun usec -> Backoff { usec })
let backoff_coarse =
  Array.init coarse_n (fun i -> Backoff { usec = exact_max + (i * coarse_step) })
let block_exact =
  Array.init exact_max (fun t -> Block { timeout_usec = Some t })
let block_coarse =
  Array.init coarse_n (fun i ->
      Block { timeout_usec = Some (exact_max + (i * coarse_step)) })

let backoff ~usec =
  if usec < exact_max then backoff_exact.(max 0 usec)
  else backoff_coarse.(min (coarse_n - 1) ((usec - exact_max) / coarse_step))

let block ~usec =
  if usec < exact_max then block_exact.(max 0 usec)
  else block_coarse.(min (coarse_n - 1) ((usec - exact_max) / coarse_step))

let abort_other = Abort_other
let abort_self = Abort_self
let block_forever = Block { timeout_usec = None }
