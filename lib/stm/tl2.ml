(** The TL2-style lock-based runtime backend.

    A {e progressive} (lock-based) STM in the style of Dice, Shalev
    and Shavit's TL2, sharing {!Runtime_intf} with the obstruction-free
    locator runtime so the two are swappable under every structure,
    workload and bench:

    - a {b global version clock} (the same stamp clock the locator
      backend's invisible mode uses, [Tvar.now]/[Tvar.next_stamp]);
    - a {b striped ownership-record table}: a fixed global array of
      orecs, each a version cell (stamp of the last committed write)
      plus an owner cell that doubles as the write lock
      ([Txn.committed_sentinel] = unlocked); variables hash to stripes
      by id, so the table adds no per-variable storage;
    - {b invisible reads} validated at read time: sample the orec
      version, read the value, re-check version and owner; a version
      beyond the attempt's read stamp [rv] triggers a read-set
      extension (revalidate everything at the current clock), exactly
      TinySTM's timebase extension;
    - {b lazy write buffering}: writes land in a flat redo log (erased
      [Obj.t] pairs, per the PR-4 allocation discipline: growable
      scratch arrays on a per-domain context, scrubbed at attempt
      end), invisible to other transactions until commit;
    - {b commit-time lock acquisition}: lock every written stripe
      (CAS on the owner cell), draw the write version [wv] from the
      clock, validate the read set against [rv], flip the attempt's
      status to Committed, write values back into the variables'
      permanently-linked locators, then release each stripe with its
      version advanced to [wv].

    {1 Contention management}

    The same 13-manager zoo runs unmodified.  The manager is consulted
    wherever this backend can observe a conflict: at commit-time lock
    acquisition (the owner recorded in the orec is the enemy — both
    parties are live [Txn.t]s, so [resolve] gets real timestamps,
    priorities and waiting flags), and at read time when a stripe is
    locked by a live writer.  Verdicts map as:

    - [Abort_other] → abort the enemy's status word, then {e steal}
      its lock (CAS owner enemy→me).  Stealing is safe because an
      aborted attempt never writes values back: write-back is gated by
      the owner's own Active→Committed CAS, which is mutually
      exclusive with our Active→Aborted CAS on the same cell.
    - [Abort_self] → release the locks acquired so far and restart.
    - [Block] → the shared bounded spin-then-retry ladder
      ({!Runtime_intf.block_on}): spin, yield, sleep geometrically;
      return when the enemy is decided or starts waiting itself, then
      re-consult.  Greedy's Rule 1 dynamics (abort a waiting enemy)
      carry over unchanged because the waiting flag lives on [Txn.t].
    - [Backoff] → sleep, capped by the configuration, re-consult.

    {1 Progress and consistency caveats}

    This backend is {e progressive}, not obstruction-free: a writer
    that stalls between lock acquisition and release blocks every
    later writer of those stripes (managers with timeouts — greedy-ft,
    killblocked — recover by aborting it and stealing, which is why
    lock-steal is part of the verdict mapping, not an optimisation).
    Read postvalidation brackets a plain value load between two atomic
    loads; the publication argument needs load-load and store-store
    ordering (x86-TSO gives both; on weakly-ordered targets the value
    load could theoretically be satisfied late — same class of caveat
    as the locator backend's documented invisible-mode window, see
    DESIGN.md "Runtime backends").

    A given [Tvar.t] must be used under a single backend: this backend
    stores committed values through the variable's permanently-linked
    committed-sentinel locator and never installs locators, so locator
    writers and TL2 writers sharing one variable would not observe
    each other's ownership. *)

exception Abort_attempt = Runtime_intf.Abort_attempt
exception Too_many_attempts = Runtime_intf.Too_many_attempts
exception Retry_wait = Runtime_intf.Retry_wait

type config = Runtime_intf.config = {
  read_mode : Runtime_intf.read_mode;
  max_attempts : int option;
  block_poll_usec : int;
  backoff_cap_usec : int;
}

let default_config = Runtime_intf.default_config

type stats_snapshot = Runtime_intf.stats_snapshot

let backend_name = "tl2"

module Shard = Runtime_intf.Shard

(* ------------------------------------------------------------------ *)
(* The ownership-record table                                          *)
(* ------------------------------------------------------------------ *)

(* [o_owner] doubles as the write lock: [no_owner] (the committed
   sentinel, compared physically) means unlocked; any other value is
   the attempt holding the stripe.  [o_version] is the stamp of the
   last committed write, written only by the lock holder and read by
   validators.  Locking CASes the owner cell directly — no separate
   lock word — so a contender always reads a coherent (owner, status)
   pair: the owner it sees is the very attempt whose status word
   arbitration goes through. *)
type orec = { o_version : int Atomic.t; o_owner : Txn.t Atomic.t }

let no_owner = Txn.committed_sentinel

let orec_bits = 12
let n_orecs = 1 lsl orec_bits
let orec_mask = n_orecs - 1

(* One global table, shared by every TL2 runtime in the process (the
   classic address-hashed lock table).  The atomics are allocated with
   dead padding between consecutive orecs so stripes land on separate
   cache lines in the minor heap (best effort: a compacting major GC
   may repack them; the stripes are contended only under write
   conflicts, where the protocol cost dominates). *)
let orecs : orec array =
  Array.init n_orecs (fun _ ->
      let o = { o_version = Atomic.make 0; o_owner = Atomic.make no_owner } in
      ignore (Sys.opaque_identity (Array.make Shard.line_words 0));
      o)

(* Stripe hash: ids are sequential, so multiply by an odd constant
   (golden-ratio) to decorrelate neighbouring variables — e.g. the
   nodes of one structure — before masking.  The stripe index is also
   the hot-key identity this backend reports to [Tcm_obs.Hot]. *)
let stripe_of_id id = (id * 0x9E3779B1) land orec_mask
let orec_for_id id = orecs.(stripe_of_id id)

let dummy_orec = { o_version = Atomic.make 0; o_owner = Atomic.make no_owner }

(* ------------------------------------------------------------------ *)
(* Runtime and per-attempt context                                     *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  cm : Cm_intf.factory;
  shards : Shard.t list Atomic.t;  (** One per domain that used this runtime. *)
  dls : per_domain Domain.DLS.key;
}

and per_domain = {
  cm_state : Cm_intf.packed;
  shard : Shard.t;
  mx : Tcm_metrics.Conventions.t;
  obs : Tcm_obs.Ledger.t;
      (** Wasted-work ledger handle, same family labels as [mx]. *)
  hot : Tcm_obs.Hot.t;
      (** This domain's hot-key sketch; fed orec stripe indices. *)
  scratch : tx;
      (** The domain's reusable transaction context; reset (by lengths
          and field stores, never reallocation) at each attempt start. *)
  mutable running : bool;
}

and tx = {
  cfg : config;
  dom : per_domain;
  mutable txn : Txn.t;  (** Current attempt; fresh per attempt. *)
  mutable rv : int;
      (** Read version: the whole read set is known valid at this
          clock value; advanced by successful extensions. *)
  mutable rs : orec array;  (** Read set: stripes sampled by reads. *)
  mutable rs_len : int;
  mutable ws_var : Obj.t array;  (** Redo log: written variables, erased. *)
  mutable ws_val : Obj.t array;  (** Redo log: buffered values, erased. *)
  mutable ws_len : int;
  mutable locked : orec array;  (** Stripes this attempt holds (commit). *)
  mutable locked_len : int;
  mutable n_opens : int;  (** Objects opened (reads and writes). *)
}

let empty_orecs : orec array = [||]
let empty_objs : Obj.t array = [||]

let create ?(config = default_config) cm =
  let shards = Atomic.make [] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let shard = Shard.make () in
        let rec register () =
          let l = Atomic.get shards in
          if not (Atomic.compare_and_set shards l (shard :: l)) then register ()
        in
        register ();
        let rec dom =
          {
            cm_state = Cm_intf.instantiate cm;
            shard;
            mx =
              Tcm_metrics.Conventions.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            obs =
              Tcm_obs.Ledger.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            hot =
              Tcm_obs.Hot.for_manager ~runtime:"live" ~backend:backend_name
                (Cm_intf.name cm);
            scratch;
            running = false;
          }
        and scratch =
          {
            cfg = config;
            dom;
            txn = Txn.committed_sentinel;
            rv = 0;
            rs = empty_orecs;
            rs_len = 0;
            ws_var = empty_objs;
            ws_val = empty_objs;
            ws_len = 0;
            locked = empty_orecs;
            locked_len = 0;
            n_opens = 0;
          }
        in
        dom)
  in
  { config; cm; shards; dls }

let manager_name t = Cm_intf.name t.cm
let stats t = Runtime_intf.stats_of_shards (Atomic.get t.shards)

(* ------------------------------------------------------------------ *)
(* Attempt-local helpers                                               *)
(* ------------------------------------------------------------------ *)

let check_self tx = if not (Txn.is_active tx.txn) then raise Abort_attempt

(* The conflict adapter (see {!Runtime_intf.S.consult}). *)
let consult (Cm_intf.Packed ((module M), st)) ~me ~other ~attempts =
  M.resolve st ~me ~other ~attempts

(* How this backend executes each verdict; the registry duel test
   asserts the mapping stays total and the verdicts themselves agree
   with the locator backend's adapter. *)
type action = Steal_lock | Release_and_abort | Spin_then_retry | Backoff_then_retry

let action_of_decision = function
  | Decision.Abort_other -> Steal_lock
  | Decision.Abort_self -> Release_and_abort
  | Decision.Block _ -> Spin_then_retry
  | Decision.Backoff _ -> Backoff_then_retry

(* Execute one contention-manager verdict for a conflict with [other].
   Returns when the caller should re-examine the stripe; the lock
   steal itself happens at the caller, which re-reads the owner and
   finds it aborted. *)
let resolve_conflict tx ~(other : Txn.t) ~attempts =
  check_self tx;
  Shard.tick tx.dom.shard Shard.ix_conflicts;
  let verdict = consult tx.dom.cm_state ~me:tx.txn ~other ~attempts in
  if Tcm_trace.Sink.enabled () then
    Tcm_trace.Sink.conflict ~me:(Txn.timestamp tx.txn) ~other:(Txn.timestamp other)
      ~decision:(Runtime_intf.decision_trace_code verdict)
      ~tick:0;
  Tcm_metrics.Conventions.resolve tx.dom.mx (Runtime_intf.decision_trace_code verdict);
  match verdict with
  | Decision.Abort_other ->
      if Txn.try_abort other then Shard.tick tx.dom.shard Shard.ix_enemy_aborts
  | Decision.Abort_self ->
      Shard.tick tx.dom.shard Shard.ix_self_aborts;
      ignore (Txn.try_abort tx.txn);
      raise Abort_attempt
  | Decision.Block { timeout_usec } ->
      Runtime_intf.block_on ~me:tx.txn ~other ~shard:tx.dom.shard ~mx:tx.dom.mx
        ~obs:tx.dom.obs ~cap_usec:tx.cfg.block_poll_usec ~timeout_usec
  | Decision.Backoff { usec } ->
      Shard.tick tx.dom.shard Shard.ix_backoffs;
      Runtime_intf.sleep_usec (min usec tx.cfg.backoff_cap_usec);
      check_self tx

let cm_opened tx =
  tx.n_opens <- tx.n_opens + 1;
  Txn.record_open tx.txn;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  M.opened st tx.txn

(* ------------------------------------------------------------------ *)
(* Scratch-log plumbing                                                *)
(* ------------------------------------------------------------------ *)

let obj_dummy = Obj.repr 0

let push_rs tx o =
  let cap = Array.length tx.rs in
  if tx.rs_len = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) dummy_orec in
    Array.blit tx.rs 0 a 0 cap;
    tx.rs <- a
  end;
  tx.rs.(tx.rs_len) <- o;
  tx.rs_len <- tx.rs_len + 1

let push_ws tx var value =
  let cap = Array.length tx.ws_var in
  if tx.ws_len = cap then begin
    let nv = Array.make (if cap = 0 then 8 else 2 * cap) obj_dummy in
    let nl = Array.make (if cap = 0 then 8 else 2 * cap) obj_dummy in
    Array.blit tx.ws_var 0 nv 0 cap;
    Array.blit tx.ws_val 0 nl 0 cap;
    tx.ws_var <- nv;
    tx.ws_val <- nl
  end;
  tx.ws_var.(tx.ws_len) <- var;
  tx.ws_val.(tx.ws_len) <- value;
  tx.ws_len <- tx.ws_len + 1

let push_locked tx o =
  let cap = Array.length tx.locked in
  if tx.locked_len = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) dummy_orec in
    Array.blit tx.locked 0 a 0 cap;
    tx.locked <- a
  end;
  tx.locked.(tx.locked_len) <- o;
  tx.locked_len <- tx.locked_len + 1

(* Redo-log lookup, newest entry first (repeat writes overwrite in
   place, so the scan is only for distinct-variable counts typical of
   the structures here: single digits). *)
let ws_find tx (k : Obj.t) =
  let i = ref (tx.ws_len - 1) in
  while !i >= 0 && tx.ws_var.(!i) != k do
    decr i
  done;
  !i

(* Scratch arrays above this capacity are replaced rather than kept: a
   single huge transaction must not pin a huge log on the domain
   forever. *)
let log_retain_cap = 1024

(* Scrub the scratch logs when an attempt ends: the redo log holds
   user variables and values, which must not stay reachable from the
   domain's scratch context after the transaction finished.  The read
   set holds only global orecs, so resetting its length suffices. *)
let clear_logs tx =
  if Array.length tx.rs > log_retain_cap then tx.rs <- empty_orecs;
  tx.rs_len <- 0;
  if Array.length tx.ws_var > log_retain_cap then begin
    tx.ws_var <- empty_objs;
    tx.ws_val <- empty_objs
  end
  else if tx.ws_len > 0 then begin
    Array.fill tx.ws_var 0 tx.ws_len obj_dummy;
    Array.fill tx.ws_val 0 tx.ws_len obj_dummy
  end;
  tx.ws_len <- 0;
  if Array.length tx.locked > log_retain_cap then tx.locked <- empty_orecs;
  tx.locked_len <- 0

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

(* The committed value lives in the variable's permanently-linked
   committed-sentinel locator; this backend never swaps the locator,
   so the load is one indirection with no generation protocol (the
   locator pool never sees these locators). *)
let[@inline] committed_value (tvar : 'a Tvar.t) : 'a = (Atomic.get tvar.Tvar.loc).Tvar.new_v

(* Extend the read set to the current clock: every sampled stripe must
   still be unlocked (or locked by a decided-dead attempt, which never
   writes back) with a version at or below the {e old} read stamp —
   i.e. nothing we read has been overwritten — after which the whole
   set is valid at the clock value sampled before the scan.  A locked
   stripe fails the extension even if its version has not moved: the
   holder may already have drawn a write version below our new [rv]. *)
let extend tx =
  let g = Tvar.now () in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.rs_len do
    let o = tx.rs.(!i) in
    let owner = Atomic.get o.o_owner in
    if
      Atomic.get o.o_version > tx.rv
      || (owner != no_owner && not (Txn.is_aborted owner))
    then ok := false;
    incr i
  done;
  if not !ok then begin
    ignore (Txn.try_abort tx.txn);
    raise Abort_attempt
  end;
  tx.rv <- g

let rec read_fresh : 'a. tx -> 'a Tvar.t -> orec -> int -> 'a =
  fun tx tvar o attempts ->
   check_self tx;
   let v1 = Atomic.get o.o_version in
   let owner = Atomic.get o.o_owner in
   if owner != no_owner && not (Txn.is_aborted owner) then
     if Txn.is_active owner then begin
       (* Locked by a live writer: a read-write conflict, resolved
          through the manager exactly like a write-write one. *)
       Tcm_obs.Hot.record tx.dom.hot (stripe_of_id tvar.Tvar.id);
       resolve_conflict tx ~other:owner ~attempts;
       read_fresh tx tvar o (attempts + 1)
     end
     else begin
       (* Committed holder mid-write-back; it releases in nanoseconds. *)
       Domain.cpu_relax ();
       read_fresh tx tvar o attempts
     end
   else begin
     let v = committed_value tvar in
     let v2 = Atomic.get o.o_version in
     let owner2 = Atomic.get o.o_owner in
     if v2 <> v1 || owner2 != owner then read_fresh tx tvar o attempts
     else if v1 > tx.rv then begin
       (* Written after our read stamp: extend the read set to the
          current clock, which re-checks every earlier read, then
          re-read under the new stamp. *)
       extend tx;
       read_fresh tx tvar o attempts
     end
     else begin
       push_rs tx o;
       cm_opened tx;
       v
     end
   end

let read : 'a. tx -> 'a Tvar.t -> 'a =
 fun tx tvar ->
  let i = ws_find tx (Obj.repr tvar) in
  if i >= 0 then Obj.obj tx.ws_val.(i) else read_fresh tx tvar (orec_for_id tvar.Tvar.id) 0

(* ------------------------------------------------------------------ *)
(* Writes (redo-log buffering)                                         *)
(* ------------------------------------------------------------------ *)

let write : 'a. tx -> 'a Tvar.t -> 'a -> unit =
 fun tx tvar v ->
  check_self tx;
  let k = Obj.repr tvar in
  let i = ws_find tx k in
  if i >= 0 then tx.ws_val.(i) <- Obj.repr v
  else begin
    push_ws tx k (Obj.repr v);
    cm_opened tx;
    Tcm_trace.Sink.acquired ~txid:(Txn.timestamp tx.txn) ~obj:tvar.Tvar.id ~write:true
      ~tick:0
  end

(* Read-modify-write: the read goes through the validated read path
   (so the value is pinned by commit-time validation of its stripe)
   and the variable joins the redo log at its current value. *)
let read_for_write : 'a. tx -> 'a Tvar.t -> 'a =
 fun tx tvar ->
  let i = ws_find tx (Obj.repr tvar) in
  if i >= 0 then Obj.obj tx.ws_val.(i)
  else begin
    let v = read_fresh tx tvar (orec_for_id tvar.Tvar.id) 0 in
    push_ws tx (Obj.repr tvar) (Obj.repr v);
    Tcm_trace.Sink.acquired ~txid:(Txn.timestamp tx.txn) ~obj:tvar.Tvar.id ~write:true
      ~tick:0;
    v
  end

let modify tx tvar f = write tx tvar (f (read_for_write tx tvar))

let retry_now tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Abort_attempt

let retry_wait tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Retry_wait

let check tx cond = if not cond then retry_wait tx

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

(* Release every stripe this attempt holds without writing back (the
   abort path).  CAS rather than plain store: an enemy that aborted us
   may already have stolen a stripe, and the release must not knock
   out {e its} ownership. *)
let release_locked tx =
  for i = 0 to tx.locked_len - 1 do
    let o = tx.locked.(i) in
    ignore (Atomic.compare_and_set o.o_owner tx.txn no_owner)
  done;
  tx.locked_len <- 0

(* Acquire one stripe.  The owner cell is the lock: an unlocked CAS
   claims it; an aborted holder is dispossessed by CAS (lock steal —
   safe, see the module comment); a committed holder is finishing its
   write-back, over in nanoseconds; a live holder is a conflict for
   the manager. *)
let rec acquire tx o ~stripe ~attempts ~round =
  check_self tx;
  let owner = Atomic.get o.o_owner in
  if owner == tx.txn then () (* stripe collision with an earlier write *)
  else if owner == no_owner then begin
    if Atomic.compare_and_set o.o_owner no_owner tx.txn then push_locked tx o
    else acquire tx o ~stripe ~attempts ~round
  end
  else
    match Txn.status owner with
    | Status.Aborted ->
        if Atomic.compare_and_set o.o_owner owner tx.txn then push_locked tx o
        else acquire tx o ~stripe ~attempts ~round
    | Status.Committed ->
        Runtime_intf.wait_step ~round ~cap_usec:tx.cfg.block_poll_usec;
        acquire tx o ~stripe ~attempts ~round:(round + 1)
    | Status.Active ->
        Tcm_obs.Hot.record tx.dom.hot stripe;
        resolve_conflict tx ~other:owner ~attempts;
        acquire tx o ~stripe ~attempts:(attempts + 1) ~round

(* Commit-time read validation: every sampled stripe unlocked (or
   held by us, or by a decided-dead attempt) with its version at or
   below [rv].  Skipped when [wv = rv + 1]: no transaction committed
   since our read stamp, so nothing can have been overwritten. *)
let validate_reads tx =
  for i = 0 to tx.rs_len - 1 do
    let o = tx.rs.(i) in
    let owner = Atomic.get o.o_owner in
    if
      Atomic.get o.o_version > tx.rv
      || (owner != no_owner && owner != tx.txn && not (Txn.is_aborted owner))
    then begin
      ignore (Txn.try_abort tx.txn);
      raise Abort_attempt
    end
  done

let lock_and_validate tx =
  for i = 0 to tx.ws_len - 1 do
    let tv : Obj.t Tvar.t = Obj.obj tx.ws_var.(i) in
    let stripe = stripe_of_id tv.Tvar.id in
    acquire tx orecs.(stripe) ~stripe ~attempts:0 ~round:0
  done;
  let wv = Tvar.next_stamp () in
  if wv > tx.rv + 1 then validate_reads tx;
  wv

let commit tx =
  if tx.ws_len = 0 then
    (* Read-only fast path: every read was validated against [rv] at
       read time, so the read set is a consistent snapshot already —
       no locks, no validation, no clock tick, no status CAS. *)
    true
  else
    match lock_and_validate tx with
    | exception Abort_attempt ->
        release_locked tx;
        false
    | wv ->
        if Txn.try_commit tx.txn then begin
          (* Write back, then publish: each stripe's version moves to
             [wv] before its lock is dropped, so a reader that finds
             the stripe unlocked either sees the old version (and the
             old value: our value store is not yet visible to it,
             store-store ordering) or the new version (beyond its read
             stamp, forcing extension).  Plain stores suffice for the
             release: no thief can dispossess a Committed holder. *)
          for i = 0 to tx.ws_len - 1 do
            let tv : Obj.t Tvar.t = Obj.obj tx.ws_var.(i) in
            let loc = Atomic.get tv.Tvar.loc in
            loc.Tvar.new_v <- tx.ws_val.(i);
            loc.Tvar.old_v <- tx.ws_val.(i)
          done;
          for i = 0 to tx.locked_len - 1 do
            let o = tx.locked.(i) in
            Atomic.set o.o_version wv;
            Atomic.set o.o_owner no_owner
          done;
          tx.locked_len <- 0;
          true
        end
        else begin
          release_locked tx;
          false
        end

(* ------------------------------------------------------------------ *)
(* The atomic block                                                    *)
(* ------------------------------------------------------------------ *)

let m_us m_t0 = int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6)

let finish_abort dom tx m_t0 =
  ignore (Txn.try_abort tx.txn);
  Atomic.set tx.txn.Txn.waiting false;
  (* Defensive: locks are normally released inside [commit]; an abort
     raised while any are held must not leave stripes locked forever. *)
  if tx.locked_len > 0 then release_locked tx;
  clear_logs tx;
  Tcm_trace.Sink.attempt_abort ~txid:(Txn.timestamp tx.txn) ~attempt:tx.txn.Txn.attempt_id
    ~tick:0;
  if m_t0 > 0. then Tcm_metrics.Conventions.attempt_abort dom.mx ~duration:(m_us m_t0);
  (* The dead attempt's work — everything it opened — is what the
     abort wastes, in the cost model's unit. *)
  Tcm_obs.Ledger.charge_abort dom.obs ~work:tx.n_opens;
  Shard.tick dom.shard Shard.ix_aborts;
  let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
  M.aborted cm_st tx.txn;
  dom.running <- false

let rec attempt_loop : 'a. t -> per_domain -> tx -> (tx -> 'a) -> Txn.shared -> int -> int -> 'a
    =
  fun rt dom tx f shared wait_round n ->
   (match rt.config.max_attempts with
   | Some m when n > m -> raise (Too_many_attempts n)
   | _ -> ());
   let txn = Txn.new_attempt shared in
   tx.txn <- txn;
   tx.rv <- Tvar.now ();
   tx.rs_len <- 0;
   tx.ws_len <- 0;
   tx.locked_len <- 0;
   tx.n_opens <- 0;
   dom.running <- true;
   let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
   M.begin_attempt cm_st txn;
   Tcm_trace.Sink.attempt_begin ~txid:(Txn.timestamp txn) ~attempt:txn.Txn.attempt_id
     ~tick:0;
   let m_t0 = if Tcm_metrics.enabled () then Unix.gettimeofday () else 0. in
   Tcm_metrics.Conventions.attempt_begin dom.mx;
   match f tx with
   | v ->
       if commit tx then begin
         clear_logs tx;
         Shard.tick dom.shard Shard.ix_commits;
         Tcm_trace.Sink.attempt_commit ~txid:(Txn.timestamp txn)
           ~attempt:txn.Txn.attempt_id ~tick:0;
         if m_t0 > 0. then
           Tcm_metrics.Conventions.attempt_commit dom.mx ~duration:(m_us m_t0)
             ~read_set:tx.n_opens;
         Tcm_obs.Ledger.note_commit dom.obs ~work:tx.n_opens;
         M.committed cm_st txn;
         dom.running <- false;
         v
       end
       else begin
         finish_abort dom tx m_t0;
         attempt_loop rt dom tx f shared 0 (n + 1)
       end
   | exception Abort_attempt ->
       finish_abort dom tx m_t0;
       attempt_loop rt dom tx f shared 0 (n + 1)
   | exception Retry_wait ->
       finish_abort dom tx m_t0;
       if wait_round = 0 then Unix.sleepf 0.
       else
         Runtime_intf.sleep_usec
           (min rt.config.backoff_cap_usec
              (rt.config.block_poll_usec * (1 lsl min (wait_round - 1) 12)));
       attempt_loop rt dom tx f shared (wait_round + 1) (n + 1)
   | exception e ->
       finish_abort dom tx m_t0;
       raise e

let atomically rt f =
  let dom = Domain.DLS.get rt.dls in
  if dom.running then
    if Txn.is_active dom.scratch.txn then
      (* Nested atomically: flatten into the enclosing transaction. *)
      f dom.scratch
    else
      (* The enclosing attempt was aborted by an enemy but has not yet
         noticed; abort it rather than alias its reused context. *)
      raise Abort_attempt
  else attempt_loop rt dom dom.scratch f (Txn.new_shared ()) 0 1

let current_txn rt =
  let dom = Domain.DLS.get rt.dls in
  if dom.running then Some dom.scratch.txn else None

(* ------------------------------------------------------------------ *)
(* Test hooks                                                          *)
(* ------------------------------------------------------------------ *)

module Internal = struct
  let orec_version tvar = Atomic.get (orec_for_id (Tvar.id tvar)).o_version

  let lock_for_test tvar (txn : Txn.t) =
    let o = orec_for_id (Tvar.id tvar) in
    let rec go () =
      let cur = Atomic.get o.o_owner in
      if
        not
          ((cur == no_owner || Txn.is_aborted cur)
          && Atomic.compare_and_set o.o_owner cur txn)
      then begin
        Domain.cpu_relax ();
        go ()
      end
    in
    go ()

  let unlock_for_test tvar (txn : Txn.t) =
    let o = orec_for_id (Tvar.id tvar) in
    ignore (Atomic.compare_and_set o.o_owner txn no_owner)
end
