(** The STM execution engine.

    [atomically rt f] runs [f] as a transaction under the runtime's
    contention manager, retrying on abort until the commit CAS
    succeeds.  Conflicts are detected eagerly, at access time, exactly
    as in DSTM/SXM: the acquirer consults its local manager and either
    aborts the enemy or stands back. *)

val backend_name : string
(** ["locator"]. *)

exception Abort_attempt
(** Internal control flow: the current attempt is aborted and must
    restart.  User code inside [atomically] should let it propagate.
    (Equal to {!Runtime_intf.Abort_attempt}, shared with the TL2
    backend.) *)

exception Too_many_attempts of int
(** Raised when [max_attempts] is exceeded.  (Equal to
    {!Runtime_intf.Too_many_attempts}.) *)

type read_mode = [ `Visible | `Invisible ]
(** [`Visible] (default): readers register on the variable; writers
    resolve each active reader through the manager after acquiring —
    read-write conflicts go through the manager, and executions are
    serializable without commit-time validation.  [`Invisible]:
    DSTM-style invisible reads with incremental (stamp-watermark)
    validation — O(1) per read in the common case, full revalidation
    only when a variable's stamp moved — provided for the ablation
    benchmarks (see DESIGN.md for the caveat). *)

type config = Runtime_intf.config = {
  read_mode : read_mode;
  max_attempts : int option;  (** [None] = retry forever. *)
  block_poll_usec : int;
      (** Cap on the sleep period while blocked on an enemy; the wait
          spins, then yields, then sleeps geometrically up to this. *)
  backoff_cap_usec : int;  (** Cap applied to [Backoff] verdicts. *)
}

val default_config : config

type t
(** A runtime: configuration + contention-manager factory + statistics.
    Create one per experiment; it instantiates one manager per domain
    via domain-local storage. *)

type tx
(** Per-attempt context threaded through transactional operations. *)

type stats_snapshot = Runtime_intf.stats_snapshot = {
  n_commits : int;
  n_aborts : int;
  n_conflicts : int;
  n_enemy_aborts : int;
  n_self_aborts : int;
  n_blocks : int;
  n_backoffs : int;
}

val create : ?config:config -> Cm_intf.factory -> t
val manager_name : t -> string
val stats : t -> stats_snapshot
val pp_stats : Format.formatter -> stats_snapshot -> unit

val atomically : t -> (tx -> 'a) -> 'a
(** Run a transaction to commit, retrying on aborts.  Nested calls on
    the same domain flatten into the enclosing transaction.  [f] may
    run several times and so must be free of non-transactional side
    effects.  User exceptions abort the transaction and propagate. *)

val read : tx -> 'a Tvar.t -> 'a
val write : tx -> 'a Tvar.t -> 'a -> unit

val read_for_write : tx -> 'a Tvar.t -> 'a
(** Read through the write path (acquires the variable exclusively);
    use for read-modify-write accesses to avoid upgrade conflicts. *)

val modify : tx -> 'a Tvar.t -> ('a -> 'a) -> unit

val retry_now : tx -> 'a
(** Abort the current attempt and restart the transaction. *)

val retry_wait : tx -> 'a
(** Blocking retry (Harris-et-al style): abort and re-run after a
    geometrically growing pause — wait for the state read so far to
    change. *)

val check : tx -> bool -> unit
(** [check tx cond] proceeds if [cond] holds, else blocks via
    {!retry_wait} until a re-execution sees it hold. *)

val current_txn : t -> Txn.t option
(** Descriptor of the transaction currently running on this domain. *)

val consult : Cm_intf.packed -> me:Txn.t -> other:Txn.t -> attempts:int -> Decision.t
(** The backend's conflict adapter (see {!Runtime_intf.S.consult});
    exposed for the cross-backend verdict-agreement test. *)
