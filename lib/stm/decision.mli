(** Contention-manager decisions.

    When transaction [A] is about to perform an access that conflicts
    with transaction [B], [A]'s manager returns one of these verdicts;
    the runtime executes it and, unless it was terminal for [A],
    consults the manager again with an incremented attempt counter
    until the conflict is gone. *)

type t =
  | Abort_other  (** Abort the enemy attempt (CAS on its status). *)
  | Abort_self  (** Abort and restart the calling transaction. *)
  | Block of { timeout_usec : int option }
      (** Greedy-style wait: set the public [waiting] flag and block
          until the enemy commits, aborts or starts waiting itself — or
          the optional timeout expires. *)
  | Backoff of { usec : int }  (** Sleep, then ask again. *)

val pp : Format.formatter -> t -> unit

(** {1 Flyweights}

    Preallocated verdicts for the consult path.  [Block] and [Backoff]
    are non-constant constructors, so building one per conflict costs
    minor words; managers use the constructors below instead, which
    return records built once at module init.  Durations are snapped
    onto a quantization grid — exact below [exact_max] microseconds,
    then [coarse_step]-spaced — which loses at most [coarse_step - 1]
    us off durations that the managers jitter-randomize anyway. *)

val abort_other : t
val abort_self : t

val block_forever : t
(** [Block { timeout_usec = None }]. *)

val backoff : usec:int -> t
(** Preallocated [Backoff] with the duration quantized (see
    {!quantize}); never allocates. *)

val block : usec:int -> t
(** Preallocated bounded [Block], quantized likewise; never
    allocates. *)

val quantize : int -> int
(** The grid: identity on [0 .. exact_max), then rounded down to a
    [coarse_step] multiple, clamped at [max_usec].  Exposed so tests
    can state expected durations exactly. *)

val exact_max : int
val coarse_step : int
val max_usec : int
