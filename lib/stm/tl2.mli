(** The TL2-style lock-based runtime backend.

    A progressive (lock-based) STM: global version clock, striped
    ownership-record table whose owner cells double as versioned write
    locks, invisible clock-validated reads, lazy write buffering with
    commit-time lock acquisition.  Shares {!Runtime_intf.S} with the
    obstruction-free locator runtime ({!Runtime}); the contention
    manager zoo runs unmodified, consulted at lock-acquire and at
    locked-stripe reads ([Abort_other] maps to lock-steal, [Block] to
    the shared bounded spin-then-retry ladder).

    Progress caveat: progressive, not obstruction-free — a stalled
    lock holder blocks later writers of its stripes until a manager
    verdict aborts it and steals the lock.  A given [Tvar.t] must be
    used under a single backend (see the implementation comment).

    The control-flow exceptions, [config] and [stats_snapshot] are the
    shared ones from {!Runtime_intf} (equal to {!Runtime}'s). *)

exception Abort_attempt
exception Too_many_attempts of int
exception Retry_wait

type config = Runtime_intf.config = {
  read_mode : Runtime_intf.read_mode;
      (** Ignored by this backend: TL2 reads are always invisible. *)
  max_attempts : int option;
  block_poll_usec : int;
  backoff_cap_usec : int;
}

val default_config : config

type stats_snapshot = Runtime_intf.stats_snapshot

val backend_name : string
(** ["tl2"]. *)

type t
type tx

val create : ?config:config -> Cm_intf.factory -> t
val manager_name : t -> string
val stats : t -> stats_snapshot
val atomically : t -> (tx -> 'a) -> 'a
val read : tx -> 'a Tvar.t -> 'a
val write : tx -> 'a Tvar.t -> 'a -> unit

val read_for_write : tx -> 'a Tvar.t -> 'a
(** Validated read that also enters the variable into the redo log, so
    the commit locks its stripe — the read-modify-write idiom. *)

val modify : tx -> 'a Tvar.t -> ('a -> 'a) -> unit
val retry_now : tx -> 'a
val retry_wait : tx -> 'a
val check : tx -> bool -> unit
val current_txn : t -> Txn.t option

val consult : Cm_intf.packed -> me:Txn.t -> other:Txn.t -> attempts:int -> Decision.t
(** The backend's conflict adapter (see {!Runtime_intf.S.consult});
    exposed for the cross-backend verdict-agreement test. *)

(** How this backend executes each manager verdict; total by
    construction (the registry duel test pins the mapping). *)
type action = Steal_lock | Release_and_abort | Spin_then_retry | Backoff_then_retry

val action_of_decision : Decision.t -> action

(** Test hooks: fabricate and release stripe locks deterministically
    (the TL2 trace test locks a variable's stripe under a scripted
    enemy attempt to force a conflict without racing domains). *)
module Internal : sig
  val orec_version : 'a Tvar.t -> int
  (** Version of the variable's stripe (post-commit it carries the
      committing attempt's write stamp). *)

  val lock_for_test : 'a Tvar.t -> Txn.t -> unit
  (** Acquire the variable's stripe on behalf of [txn] (spins out any
      unlocked/dead-owner state first). *)

  val unlock_for_test : 'a Tvar.t -> Txn.t -> unit
  (** Release the stripe if [txn] still holds it (a lock-steal by a
      live transaction may already have dispossessed it). *)
end
