(** The Eruption manager (Scherer & Scott).

    Like Karma, priority reflects accumulated opens — but when a
    transaction blocks behind an enemy it adds its own momentum to the
    enemy's priority ("pressure erupts through the blocker"), so a
    transaction blocking many others quickly gains enough priority to
    finish and unblock them. *)

open Tcm_stm

let name = "eruption"

let backoff_usec = 40

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me ~other ~attempts =
  if Txn.priority me + attempts > Txn.priority other then Decision.Abort_other
  else begin
    (* Transfer our momentum to the transaction in our way, once per
       conflict discovery. *)
    if attempts = 0 then Txn.add_priority other (max 1 (Txn.priority me));
    Decision.backoff ~usec:(backoff_usec + Cm_util.Prng.int t.prng backoff_usec)
  end
