(** Shared helpers for contention-manager implementations.

    {!Cm_state} is the allocation-discipline backbone of the manager
    zoo: flat slab storage carved into cache-line-strided [int array]
    slots, acquired once per manager instance (per domain) and released
    at domain exit.  {!Prng} and {!Table} are the two state shapes the
    managers need, both living entirely in slab cells so that the
    consult path — [resolve] plus all lifecycle hooks — allocates zero
    minor words for every manager. *)

open Tcm_stm

module Cm_state : sig
  type slot = {
    arr : int array;  (** Backing chunk; index via [base + i]. *)
    base : int;
    words : int;  (** Usable payload size requested at acquire. *)
    mutable released : bool;
  }

  val acquire : words:int -> slot
  (** Carve a zeroed slot of [words] ints off the slab and register a
      [Domain.at_exit] hook (on the calling domain) that releases it.
      Call once per manager instance from [create] — never on the
      consult path (it takes a mutex and may allocate a chunk). *)

  val release : slot -> unit
  (** Scrub the slot and return it to the freelist.  Idempotent: the
      domain-exit hook and an explicit release do not double-free. *)

  val get : slot -> int -> int
  val set : slot -> int -> int -> unit

  val live_slots : unit -> int
  (** Number of currently acquired slots — for leak regressions. *)

  val line_words : int

  val stride_of : int -> int
  (** Slot footprint in slab words for a given payload: rounded up to
      whole cache lines plus one slack line, so adjacent slots (which
      may belong to managers on different domains) never share a
      line. *)
end

(** Deterministic per-instance pseudo-random stream for backoff jitter
    and coin flips.  State is two slab cells; every draw is plain int
    arithmetic — no allocation (the previous [Splitmix]-based wrapper
    boxed an [Int64] per draw).  Seeded process-uniquely at creation. *)
module Prng : sig
  type t

  val state_words : int
  (** Cells of slab state a stream occupies (2). *)

  val create : unit -> t
  (** Stream in a freshly acquired slot of its own. *)

  val in_slot : Cm_state.slot -> int -> t
  (** [in_slot slot ix] places (and seeds) the stream's state at cells
      [ix, ix + 1] of [slot], for managers packing several pieces of
      state into one slot. *)

  val int : t -> int -> int
  (** [int t bound] is uniform-ish in [0, bound); [0] if [bound <= 1]. *)

  val bool : t -> bool
end

(** Bounded open-addressed int->int map in slab cells, for per-enemy
    manager memory (Kindergarten grudges, Greedy-FT timeout grants).
    Entries are generation-stamped: {!reset} forgets everything with a
    single int bump — no [Hashtbl.reset], no bucket-array churn.
    Capacity is fixed; when a probe window fills, the oldest probe
    position is evicted.  Dropping an entry under pressure is benign:
    the managers are heuristics over advisory state. *)
module Table : sig
  type t

  val probe_window : int

  val words : cap:int -> int
  (** Slab words a table of capacity [cap] occupies. *)

  val create : cap:int -> t
  (** Table in a freshly acquired slot of its own.  [cap] must be a
      power of two, at least {!probe_window}. *)

  val in_slot : Cm_state.slot -> ix:int -> cap:int -> t
  (** Place the table at cell offset [ix] of an existing slot. *)

  val reset : t -> unit
  (** Forget all entries (a generation bump — O(1), no allocation). *)

  val find : t -> int -> default:int -> int
  val mem : t -> int -> bool
  val put : t -> int -> int -> unit
end

val exp_backoff : ?base:int -> ?cap:int -> Prng.t -> int -> int
(** [exp_backoff prng n] is a truncated-exponential backoff duration in
    microseconds: [base * 2^n] capped at [cap], plus jitter. *)

val brief_backoff : Prng.t -> Decision.t
(** Short jittered backoff verdict (16–32 us) from the {!Decision}
    flyweight table — never allocates. *)

(** No-op lifecycle hooks for stateless managers. *)
module No_lifecycle : sig
  val begin_attempt : 'a -> 'b -> unit
  val opened : 'a -> 'b -> unit
  val committed : 'a -> 'b -> unit
  val aborted : 'a -> 'b -> unit
end
