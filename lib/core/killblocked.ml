(** The KillBlocked manager (Scherer & Scott).

    Abort the enemy immediately if it is itself blocked (waiting), on
    the theory that a blocked transaction is not making progress
    anyway; otherwise back off briefly and abort the enemy after a
    maximum wait.  The paper notes that the time-out reduces but does
    not eliminate the probability of livelock. *)

open Tcm_stm

let name = "killblocked"

let max_tries = 4

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me:_ ~other ~attempts =
  if Txn.is_waiting other then Decision.abort_other
  else if attempts >= max_tries then Decision.abort_other
  else Decision.backoff ~usec:(Cm_util.exp_backoff ~base:32 t.prng attempts)
