(** Name → contention-manager registry.

    All managers shipped with the library, looked up by the lowercase
    names used throughout the CLIs, benches and tests. *)

open Tcm_stm

let all : Cm_intf.factory list =
  [
    (module Greedy);
    (module Greedy_ft);
    (module Aggressive);
    (module Polite);
    (module Randomized);
    (module Timid);
    (module Killblocked);
    (module Kindergarten);
    (module Timestamp);
    (module Karma);
    (module Eruption);
    (module Polka);
    (module Queue_on_block);
    (module Sto_adaptive);
  ]

let names = List.map Cm_intf.name all

let find name =
  List.find_opt (fun m -> String.equal (Cm_intf.name m) (String.lowercase_ascii name)) all

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown contention manager %S (available: %s)" name
           (String.concat ", " names))

(** The five managers compared in the paper's Figures 1–4. *)
let paper_figures : Cm_intf.factory list =
  [
    (module Greedy);
    (module Karma);
    (module Eruption);
    (module Aggressive);
    (module Polite);
  ]
