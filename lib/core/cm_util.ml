(** Shared helpers for contention-manager implementations.

    The centre of gravity here is {!Cm_state}: a process-wide slab of
    flat [int array] storage from which every manager instance carves
    its mutable state as cache-line-strided slots.  The discipline
    mirrors the metrics shards and the PR-4 locator pool — all slab
    writes after [create] are plain int stores into a preallocated
    array, so the consult path ([resolve] plus the lifecycle hooks)
    allocates zero minor words for every manager in the zoo.  The two
    state shapes the managers actually need are built on top:

    - {!Prng}: a two-cell xorshift pseudo-random stream (the old
      [Splitmix] wrapper boxed an [Int64] per draw — one allocation
      per jittered backoff);
    - {!Table}: a generation-stamped bounded open-addressed int map
      (replacing the [Hashtbl]s in Kindergarten and Greedy-FT, whose
      inserts — and Kindergarten's per-commit [Hashtbl.reset] —
      allocated on the hot path).

    Slots are acquired once per manager instance (one instance per
    domain, created in the runtime's DLS initializer, which runs on
    the owning domain) and released automatically at that domain's
    exit, mirroring the PR-4 hazard-slot regression fix. *)

open Tcm_stm

(* ------------------------------------------------------------------ *)
(* The slab                                                            *)
(* ------------------------------------------------------------------ *)

module Cm_state = struct
  type slot = {
    arr : int array;
    base : int;
    words : int;
    mutable released : bool;
        (* Guards double-release: a slot freed explicitly must not be
           freed again by the domain-exit hook (a doubly-listed slot
           would be handed to two later managers, which then share
           state). *)
  }

  let line_words = 8 (* ints per 64-byte cache line *)

  (* Slot footprint: the payload rounded up to whole lines, plus one
     line of slack, so two adjacent slots never share a cache line —
     managers on different domains may be carved from one chunk. *)
  let stride_of words =
    (((words + line_words - 1) / line_words) * line_words) + line_words

  let chunk_words = 4_096

  (* One process-wide registry under a mutex.  Acquire/release happen
     once per manager instance per domain (plus domain exit), never on
     the consult path, so a mutex is plenty. *)
  type reg = {
    mutex : Mutex.t;
    free : (int, slot list) Hashtbl.t;  (* stride -> reusable slots *)
    mutable chunk : int array;
    mutable next : int;
    mutable live : int;
  }

  let reg =
    {
      mutex = Mutex.create ();
      free = Hashtbl.create 8;
      chunk = [||];
      next = 0;
      live = 0;
    }

  let scrub s = Array.fill s.arr s.base s.words 0

  let acquire_raw ~words =
    if words <= 0 then invalid_arg "Cm_state.acquire: words must be positive";
    let stride = stride_of words in
    Mutex.lock reg.mutex;
    let slot =
      match Hashtbl.find_opt reg.free stride with
      | Some (s :: rest) ->
          Hashtbl.replace reg.free stride rest;
          { arr = s.arr; base = s.base; words; released = false }
      | Some [] | None ->
          if reg.next + stride > Array.length reg.chunk then begin
            (* A line of slack at the chunk head keeps the first slot
               off the array-header line (same layout as the metrics
               shards). *)
            reg.chunk <- Array.make (max chunk_words (stride + line_words)) 0;
            reg.next <- line_words
          end;
          let base = reg.next in
          reg.next <- base + stride;
          { arr = reg.chunk; base; words; released = false }
    in
    reg.live <- reg.live + 1;
    Mutex.unlock reg.mutex;
    scrub slot;
    slot

  let release s =
    if not s.released then begin
      s.released <- true;
      scrub s;
      let stride = stride_of s.words in
      Mutex.lock reg.mutex;
      reg.live <- reg.live - 1;
      Hashtbl.replace reg.free stride
        (s :: Option.value (Hashtbl.find_opt reg.free stride) ~default:[]);
      Mutex.unlock reg.mutex
    end

  (* Manager instances are per-domain and live as long as the domain:
     tie the slot's lifetime to the domain the way PR 4 ties hazard
     slots, so a spawned-and-joined domain leaves nothing behind. *)
  let acquire ~words =
    let s = acquire_raw ~words in
    Domain.at_exit (fun () -> release s);
    s

  let live_slots () =
    Mutex.lock reg.mutex;
    let n = reg.live in
    Mutex.unlock reg.mutex;
    n

  let get s i = s.arr.(s.base + i)
  let set s i v = s.arr.(s.base + i) <- v
end

(* ------------------------------------------------------------------ *)
(* Slab-backed PRNG                                                    *)
(* ------------------------------------------------------------------ *)

(** Deterministic per-instance pseudo-random stream for jitter and coin
    flips, with its two words of state living in slab cells.  Every
    draw is plain int arithmetic on those cells — unlike the previous
    [Splitmix] wrapper, whose boxed [Int64] state allocated on each
    [next].  Seeded from a process-unique [Splitmix] stream at create
    time (create-time allocation is fine; draw-time is not). *)
module Prng = struct
  type t = { arr : int array; ix : int }  (* state cells at ix, ix + 1 *)

  let seed_cells arr ix =
    let s = Splitmix.create_self_seeded () in
    let nonzero v d = if v = 0 then d else v in
    arr.(ix) <- nonzero (Int64.to_int (Splitmix.next s) land max_int) 0x9E3779B9;
    arr.(ix + 1) <- nonzero (Int64.to_int (Splitmix.next s) land max_int) 0x6C078965

  let in_slot (slot : Cm_state.slot) ix =
    let t = { arr = slot.Cm_state.arr; ix = slot.Cm_state.base + ix } in
    seed_cells t.arr t.ix;
    t

  let state_words = 2

  let create () = in_slot (Cm_state.acquire ~words:state_words) 0

  (* xorshift128+-style step over the two cells.  All-zero state is
     the only degenerate orbit and a nonzero seed can never reach it
     (each step's new pair is zero only if the old pair was). *)
  let next t =
    let a = t.arr and i = t.ix in
    let s0 = a.(i) and s1 = a.(i + 1) in
    let x = s1 lxor (s1 lsl 23) in
    let x = x lxor (x lsr 17) lxor s0 lxor (s0 lsr 26) in
    a.(i) <- s1;
    a.(i + 1) <- x;
    (x + s1) land max_int

  let int t bound = if bound <= 1 then 0 else next t mod bound
  let bool t = next t land 1 = 1
end

(* ------------------------------------------------------------------ *)
(* Generation-stamped bounded table                                    *)
(* ------------------------------------------------------------------ *)

(** A bounded open-addressed int->int map in slab cells, for per-enemy
    manager memory (Kindergarten's grudges, Greedy-FT's timeout
    grants).  Layout: one generation header cell, then [cap] entries
    of three cells (key, value, entry-generation); an entry is live
    iff its generation equals the header's, so {!reset} — "forget
    everything" — is a single int bump instead of a [Hashtbl.reset]
    (which allocated a fresh bucket array on every Kindergarten
    commit).  Lookups probe a bounded linear window; a full window
    evicts the oldest probe position.  Dropping a memory under
    pressure is benign — the managers are heuristics over advisory
    state, and a forgotten grudge merely re-runs the polite round. *)
module Table = struct
  type t = { arr : int array; base : int; cap : int }

  let probe_window = 8

  let words ~cap = 1 + (3 * cap)

  let in_slot (slot : Cm_state.slot) ~ix ~cap =
    if cap < probe_window || cap land (cap - 1) <> 0 then
      invalid_arg "Table.in_slot: cap must be a power of two >= probe_window";
    let t = { arr = slot.Cm_state.arr; base = slot.Cm_state.base + ix; cap } in
    (* Scrubbed cells carry generation 0; starting the header at 1
       makes them all stale without touching them. *)
    t.arr.(t.base) <- 1;
    t

  let create ~cap = in_slot (Cm_state.acquire ~words:(words ~cap)) ~ix:0 ~cap

  let reset t = t.arr.(t.base) <- t.arr.(t.base) + 1

  (* The probe loops below are top-level functions taking all their
     state as arguments: a local [let rec] capturing [t]/[key] would
     allocate its closure on every call, which is exactly the cost
     this module exists to eliminate. *)

  let entry t key k =
    t.base + 1 + (3 * (((key * 0x9E3779B1) + k) land (t.cap - 1)))

  let rec find_from t gen key k ~default =
    if k = probe_window then default
    else
      let e = entry t key k in
      if t.arr.(e + 2) = gen && t.arr.(e) = key then t.arr.(e + 1)
      else find_from t gen key (k + 1) ~default

  let find t key ~default = find_from t t.arr.(t.base) key 0 ~default

  let rec mem_from t gen key k =
    if k = probe_window then false
    else
      let e = entry t key k in
      (t.arr.(e + 2) = gen && t.arr.(e) = key) || mem_from t gen key (k + 1)

  let mem t key = mem_from t t.arr.(t.base) key 0

  let install t gen key value e =
    t.arr.(e) <- key;
    t.arr.(e + 1) <- value;
    t.arr.(e + 2) <- gen

  (* Claim the first stale hole, else evict probe 0. *)
  let rec claim_from t gen key value k =
    if k = probe_window then install t gen key value (entry t key 0)
    else
      let e = entry t key k in
      if t.arr.(e + 2) <> gen then install t gen key value e
      else claim_from t gen key value (k + 1)

  (* Update a live match first, so a stale hole earlier in the window
     cannot shadow an existing entry with a duplicate. *)
  let rec put_from t gen key value k =
    if k = probe_window then claim_from t gen key value 0
    else
      let e = entry t key k in
      if t.arr.(e + 2) = gen && t.arr.(e) = key then t.arr.(e + 1) <- value
      else put_from t gen key value (k + 1)

  let put t key value = put_from t t.arr.(t.base) key value 0
end

(* ------------------------------------------------------------------ *)
(* Backoff helpers                                                     *)
(* ------------------------------------------------------------------ *)

(** Truncated exponential backoff: [base * 2^n] capped, with up to
    [base]-sized jitter drawn from [prng]. *)
let exp_backoff ?(base = 16) ?(cap = 65_536) prng n =
  let n = min n 20 in
  let d = min cap (base * (1 lsl n)) in
  d + Prng.int prng (max 1 (d / 2))

(** Default decision for managers that do not care: defer briefly.
    Allocation-free — the verdict comes from {!Decision.backoff}'s
    flyweight table. *)
let brief_backoff prng = Decision.backoff ~usec:(16 + Prng.int prng 16)

(** A no-op lifecycle implementation managers can reuse. *)
module No_lifecycle = struct
  let begin_attempt _ _ = ()
  let opened _ _ = ()
  let committed _ _ = ()
  let aborted _ _ = ()
end
