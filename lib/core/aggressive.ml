(** The Aggressive manager (Scherer & Scott): always abort the enemy.

    Trivially keeps the aggressor running but is prone to livelock —
    two transactions repeatedly aborting each other make no progress.
    The paper cites it as one extreme of the design space. *)

let name = "aggressive"

type t = unit

let create () = ()

include Cm_util.No_lifecycle

let resolve () ~me:_ ~other:_ ~attempts:_ = Tcm_stm.Decision.abort_other
