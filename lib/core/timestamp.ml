(** The Timestamp manager (Scherer & Scott).

    Abort the enemy if it started later than us; otherwise wait for a
    series of fixed intervals, flagging the enemy as potentially
    defunct, and kill it once the patience budget is exhausted.  This
    is the one pre-greedy manager the paper credits with progress in
    the presence of prematurely halted transactions, thanks to the
    time-out. *)

open Tcm_stm

let name = "timestamp"

let quantum_usec = 150
let max_quanta = 8

type t = unit

let create () = ()

include Cm_util.No_lifecycle

let resolve () ~me ~other ~attempts =
  if Txn.older_than me other then Decision.abort_other
  else if attempts >= max_quanta then Decision.abort_other
  else Decision.block ~usec:quantum_usec
