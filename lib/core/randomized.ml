(** The Randomized manager (Scherer & Scott): flip a coin between
    aborting the enemy and backing off a random duration.  Provides no
    deterministic guarantee (paper, Section 6). *)

open Tcm_stm

let name = "randomized"

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me:_ ~other:_ ~attempts:_ =
  if Cm_util.Prng.bool t.prng then Decision.abort_other
  else Decision.backoff ~usec:(16 + Cm_util.Prng.int t.prng 112)
