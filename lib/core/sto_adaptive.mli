(** STO-style adaptive manager (after the contention manager in STO,
    EuroSys 2016): timid while young — abort self on any conflict —
    until {!ts_threshold} objects have been opened in the current
    attempt; then acquire a global-timestamp stamp (published through
    [Txn.cm_stamp]) and fight, aborting younger or dead enemies and
    otherwise waiting out a randomized interval scaled by the run of
    successive aborts, bounded by {!max_fight_rounds}. *)

include Tcm_stm.Cm_intf.S

val ts_threshold : int
val succ_aborts_max : int
val wait_usec_per_abort : int
val max_fight_rounds : int

val succ_aborts : t -> int
(** Current successive-abort run (capped at {!succ_aborts_max});
    exposed for tests. *)
