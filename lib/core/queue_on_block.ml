(** The QueueOnBlock manager (Scherer & Scott).

    Wait behind the enemy in FIFO spirit: block until it finishes.
    The paper points out this manager is prone to dependency cycles —
    our implementation bounds each wait with a generous timeout (after
    which the enemy is presumed cyclic or dead and is aborted), because
    an unbounded version can deadlock two real threads; the simulator
    demonstrates the unbounded cycle safely. *)

open Tcm_stm

let name = "queueonblock"

let patience_usec = 2_000
let max_waits = 4

type t = unit

let create () = ()

include Cm_util.No_lifecycle

let resolve () ~me:_ ~other:_ ~attempts =
  if attempts >= max_waits then Decision.abort_other
  else Decision.block ~usec:patience_usec
