(** The greedy contention manager (Section 3 of the paper).

    State per transaction: a timestamp taken at (logical) birth and
    retained across aborts, the status word, and a public [waiting]
    flag.  Two rules, for a transaction [A] about to conflict with
    [B]:

    + If [B] has lower priority (a later timestamp) than [A], {e or}
      [B] is waiting for another transaction, then [A] aborts [B].
    + If [B] has higher priority and is not waiting, [A] waits until
      [B] commits, aborts, or starts waiting (in which case Rule 1
      applies).

    The highest-priority transaction never waits and is never aborted,
    which yields both Theorem 1 (bounded commit delay, since only a
    bounded number of transactions carry earlier timestamps) and the
    pending-commit property used by Theorem 9. *)

open Tcm_stm

let name = "greedy"

type t = unit

let create () = ()

include Cm_util.No_lifecycle

let resolve () ~me ~other ~attempts:_ =
  if Txn.older_than me other || Txn.is_waiting other then Decision.abort_other
  else Decision.block_forever
