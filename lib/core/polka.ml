(** The Polka manager (Scherer & Scott 2005): Polite + Karma.

    Karma's priority accounting combined with Polite's randomized
    exponential backoff: back off a number of rounds equal to the
    priority gap, with exponentially growing intervals, then abort the
    enemy.  The 2005 paper found it the best all-rounder; our Figure
    1–2 reproduction shows it and Karma leading under high contention,
    matching the paper's reading. *)

open Tcm_stm

let name = "polka"

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me ~other ~attempts =
  let gap = Txn.priority other - Txn.priority me in
  if attempts >= max 1 gap then Decision.abort_other
  else Decision.backoff ~usec:(Cm_util.exp_backoff t.prng attempts)
