(** The Timid manager: always abort yourself on conflict.

    The dual of {!Aggressive}; never impedes the enemy but starves
    under any recurring conflict.  Included as the other extreme of
    the design space for the decision-table tests and ablations. *)

let name = "timid"

type t = unit

let create () = ()

include Cm_util.No_lifecycle

let resolve () ~me:_ ~other:_ ~attempts:_ = Tcm_stm.Decision.abort_self
