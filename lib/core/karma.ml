(** The Karma manager (Scherer & Scott).

    Priority = accumulated work: each object opened adds one karma
    point; karma survives aborts (the investment is carried over to the
    retry) and is spent on commit.  On conflict, abort the enemy if our
    karma plus the number of rounds we have already fought for this
    spot exceeds the enemy's karma; otherwise back off a fixed,
    karma-independent amount.

    The runtime increments [Txn.priority] on every successful open, so
    karma is readable by enemies through the shared descriptor.  The
    paper's Section 6 remark — a transaction can still starve if
    newcomers keep out-investing it between its aborts — is exercised
    in the simulator tests. *)

open Tcm_stm

let name = "karma"

let backoff_usec = 40

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me ~other ~attempts =
  if Txn.priority me + attempts > Txn.priority other then Decision.abort_other
  else Decision.backoff ~usec:(backoff_usec + Cm_util.Prng.int t.prng backoff_usec)
