(** Fault-tolerant greedy (Section 6 of the paper).

    Identical to {!Greedy}, except that a transaction [A] waits for a
    higher-priority [B] only until a timeout expires; the timeout is
    proportional to the number of times [A] already had to wait for [B]
    and then aborted it — doubling on each such discovery.  This copes
    with transactions that halt undetectably: a crashed [B] delays [A]
    by at most the current timeout, after which [A] aborts it. *)

open Tcm_stm

let name = "greedy-ft"

type t = {
  (* timeout currently granted to each enemy, keyed by its (stable)
     timestamp; doubled every time a wait on that enemy expires.  A
     slab-resident bounded table: evicting a grant under pressure
     merely restarts that enemy at [base_usec]. *)
  grants : Cm_util.Table.t;
  base_usec : int;
}

let base_usec = 200
let grants_cap = 64

let create () = { grants = Cm_util.Table.create ~cap:grants_cap; base_usec }

include Cm_util.No_lifecycle

let resolve t ~me ~other ~attempts =
  if Txn.older_than me other || Txn.is_waiting other then Decision.abort_other
  else
    let key = Txn.timestamp other in
    let granted = Cm_util.Table.find t.grants key ~default:t.base_usec in
    if attempts > 0 then begin
      (* Our previous wait on this enemy timed out: abort it and double
         the patience we will extend to it next time. *)
      Cm_util.Table.put t.grants key (granted * 2);
      Decision.abort_other
    end
    else Decision.block ~usec:granted
