(** STO-style adaptive manager (Herman et al., "Type-aware transactions
    for faster concurrent code", EuroSys 2016 — the [ContentionManager]
    in STO's runtime).

    A transaction is {e timid} while young: on any conflict it aborts
    itself, never impeding an enemy, on the theory that little work is
    lost.  Once it has opened {!ts_threshold} objects in the current
    attempt, it acquires a stamp from a global counter — publishing it
    through the shared descriptor's [cm_stamp] field — and starts to
    {e fight}: it aborts enemies that are younger (larger stamp, which
    includes every still-timid enemy, whose stamp is the [max_int]
    sentinel) or already aborted, and otherwise waits out a randomized
    bounded interval proportional to its own run of successive aborts
    (STO's [SUCC_ABORTS_MAX] / [WAIT_CYCLES_MULTIPLICATOR] scheme)
    before consulting again, giving up the spot after
    {!max_fight_rounds} rounds.

    In the paper's terms this sits between Timid and Greedy: timid
    conflicts are resolved at minimum wasted-work price, while
    long-running transactions get Greedy-style seniority — exactly the
    priced trade-off the EXPERIMENTS ranking probes.

    All state is slab-resident plain ints (two counters plus the
    PRNG's two cells in one {!Cm_util.Cm_state} slot); [resolve] and
    the lifecycle hooks allocate nothing. *)

open Tcm_stm

let name = "sto-adaptive"

let ts_threshold = 10
(** Opens in the current attempt before the transaction buys a stamp
    and starts fighting. *)

let succ_aborts_max = 10
(** Cap on the successive-abort count that scales the fight-phase
    wait (STO's [SUCC_ABORTS_MAX]). *)

let wait_usec_per_abort = 8
(** Wait scale: each successive abort adds up to this many us to the
    randomized fight-phase wait (STO's [WAIT_CYCLES_MULTIPLICATOR],
    rescaled from cycles to microseconds). *)

let max_fight_rounds = 32
(** Fight rounds for one spot before conceding with [Abort_self] —
    bounds the cycle-wait so two stamped transactions cannot spin on
    each other forever. *)

(* The global stamp counter.  Monotone; a smaller stamp = earlier
   threshold crossing = higher priority.  Starts at 1 so stamp 0 is
   never handed out ([Txn.committed_sentinel] carries cm_stamp 0 and
   must read as infinitely old). *)
let next_stamp = Atomic.make 1

(* Slot layout *)
let ix_opens = 0 (* opens in the current attempt *)
let ix_succ_aborts = 1 (* successive aborts of the logical txn *)
let ix_prng = 2

type t = { slot : Cm_util.Cm_state.slot; prng : Cm_util.Prng.t }

let create () =
  let slot = Cm_util.Cm_state.acquire ~words:(ix_prng + Cm_util.Prng.state_words) in
  { slot; prng = Cm_util.Prng.in_slot slot ix_prng }

let succ_aborts t = Cm_util.Cm_state.get t.slot ix_succ_aborts
(** Exposed for the phase-transition and wait-cap tests. *)

(* STO's start(): every attempt begins timid.  The successive-abort
   counter is deliberately NOT touched — it tracks the logical
   transaction across attempts. *)
let begin_attempt t me =
  Cm_util.Cm_state.set t.slot ix_opens 0;
  Txn.set_cm_stamp me Txn.no_cm_stamp

let opened t me =
  let opens = Cm_util.Cm_state.get t.slot ix_opens + 1 in
  Cm_util.Cm_state.set t.slot ix_opens opens;
  if opens = ts_threshold && Txn.cm_stamp me = Txn.no_cm_stamp then
    Txn.set_cm_stamp me (Atomic.fetch_and_add next_stamp 1)

let committed t _ = Cm_util.Cm_state.set t.slot ix_succ_aborts 0

let aborted t _ =
  Cm_util.Cm_state.set t.slot ix_succ_aborts
    (min (succ_aborts t + 1) succ_aborts_max)

let resolve t ~me ~other ~attempts =
  let my_stamp = Txn.cm_stamp me in
  if my_stamp = Txn.no_cm_stamp then
    (* Timid phase: concede immediately. *)
    Decision.abort_self
  else if Txn.is_aborted other || Txn.cm_stamp other > my_stamp then
    (* Fight: the enemy is dead already, or younger — every timid
       enemy reads as youngest of all via the max_int sentinel. *)
    Decision.abort_other
  else if attempts >= max_fight_rounds then
    (* Seniority lost and the bounded cycle-wait is exhausted. *)
    Decision.abort_self
  else
    (* Randomized bounded wait keyed to our successive-abort run:
       the more we have been losing, the longer we are willing to
       stand aside before asking again. *)
    Decision.backoff
      ~usec:(1 + Cm_util.Prng.int t.prng ((succ_aborts t + 1) * wait_usec_per_abort))
