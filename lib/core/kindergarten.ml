(** The Kindergarten manager (Scherer & Scott): "taking turns".

    A transaction maintains the set of enemies in whose favour it has
    already backed off.  The first time it meets a given enemy it
    politely backs off (a bounded number of rounds); if the same enemy
    blocks it again, it is the enemy's turn to be aborted. *)

open Tcm_stm

let name = "kindergarten"

let rounds_per_turn = 3

let deferred_cap = 64

type t = {
  deferred_to : Cm_util.Table.t;  (* enemy timestamps we yielded to *)
  prng : Cm_util.Prng.t;
}

(* Table and prng packed into one slab slot: the grudge set first,
   then the two prng cells. *)
let create () =
  let words = Cm_util.Table.words ~cap:deferred_cap + Cm_util.Prng.state_words in
  let slot = Cm_util.Cm_state.acquire ~words in
  {
    deferred_to = Cm_util.Table.in_slot slot ~ix:0 ~cap:deferred_cap;
    prng = Cm_util.Prng.in_slot slot (Cm_util.Table.words ~cap:deferred_cap);
  }

let begin_attempt _ _ = ()
let opened _ _ = ()
let aborted _ _ = ()

(* Forget old grudges when we finally commit: a generation bump, where
   [Hashtbl.reset] used to rebuild the bucket array on every commit. *)
let committed t _ = Cm_util.Table.reset t.deferred_to

let resolve t ~me:_ ~other ~attempts =
  let key = Txn.timestamp other in
  if Cm_util.Table.mem t.deferred_to key then Decision.abort_other
  else if attempts >= rounds_per_turn then begin
    (* We gave this enemy its turn; remember that and abort it next
       time, but let it win this round by restarting ourselves. *)
    Cm_util.Table.put t.deferred_to key 1;
    Decision.abort_self
  end
  else Decision.backoff ~usec:(Cm_util.exp_backoff ~base:24 t.prng attempts)
