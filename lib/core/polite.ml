(** The Polite manager (Scherer & Scott), a.k.a. adaptive backoff.

    On conflict, spin-wait with randomized exponential backoff for up
    to [max_tries] rounds, then abort the enemy.  Works well when
    transactions are short and uniform; long transactions behind short
    ones defeat it (Section 1 of the paper). *)

open Tcm_stm

let name = "backoff"

let max_tries = 10

type t = { prng : Cm_util.Prng.t }

let create () = { prng = Cm_util.Prng.create () }

include Cm_util.No_lifecycle

let resolve t ~me:_ ~other:_ ~attempts =
  if attempts >= max_tries then Decision.abort_other
  else Decision.backoff ~usec:(Cm_util.exp_backoff t.prng attempts)
