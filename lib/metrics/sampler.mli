(** Windowed sampler: periodic snapshots turned into per-window
    counter deltas (throughput-over-time series).  Pull-based — the
    driving thread calls {!poll} from its wait loop. *)

type window = {
  w_t0 : float;
  w_t1 : float;
  w_name : string;
  w_labels : (string * string) list;
  w_delta : int;
}

type t

val create : ?period_s:float -> unit -> t
(** [period_s] defaults to 0.05 s. *)

val poll : t -> unit
(** Snapshot if at least [period_s] elapsed since the last one. *)

val force : t -> unit
(** Snapshot unconditionally (bracket a run with exact endpoints). *)

val snapshots : t -> Snapshot.t list
(** Oldest first. *)

val windows : t -> window list
(** Adjacent-pair counter deltas, oldest window first; zero deltas are
    dropped. *)

val series :
  t -> name:string -> labels:(string * string) list -> (float * float * int) list
(** The windows of one series: [(t0, t1, delta)], oldest first. *)
