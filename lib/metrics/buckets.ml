(** Log2 bucketing shared by the histogram record path and the
    percentile estimators.

    Bucket [0] holds samples in [[0, 1]]; bucket [i >= 1] holds
    samples in [[2^i, 2^(i+1) - 1]]; the last bucket absorbs
    everything at or above its lower bound.  The record-path index
    computation is a branch-free-ish binary search on the highest set
    bit — O(1), no allocation, no floats. *)

(* Floor of log2; [v] must be positive.  Binary search on the highest
   set bit so the histogram record path never touches floats. *)
let floor_log2 v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let index ~buckets v = if v <= 1 then 0 else min (buckets - 1) (floor_log2 v)

let lower_bound i = if i <= 0 then 0 else 1 lsl i

(** Inclusive upper edge of bucket [i]; [max_int] ("+Inf") for the
    last bucket. *)
let upper_bound ~buckets i = if i >= buckets - 1 then max_int else (1 lsl (i + 1)) - 1

(** Nearest-rank percentile estimated from bucket counts, with linear
    interpolation inside the bucket (the true value is only known to
    within its power-of-two bucket).  [nan] on an empty histogram,
    mirroring [Stats.percentile] on an empty sample. *)
let percentile ~counts p =
  let buckets = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 || buckets = 0 then nan
  else begin
    let rank =
      max 1 (min total (int_of_float (ceil (p /. 100. *. float_of_int total))))
    in
    let rec go i cum =
      let c = counts.(i) in
      if cum + c >= rank || i = buckets - 1 then begin
        let lo = float_of_int (lower_bound i) in
        let hi =
          if i >= buckets - 1 then (if lo = 0. then 1. else lo *. 2.)
          else float_of_int (lower_bound (i + 1))
        in
        let n = max 1 c in
        lo +. ((hi -. lo) *. (float_of_int (rank - cum) -. 0.5) /. float_of_int n)
      end
      else go (i + 1) (cum + c)
    in
    go 0 0
  end
