(** The metric registry and its per-domain sharded storage.

    Counters and histograms allocate fixed cache-line-aligned slices
    of one flat [int array] per domain (the STM stats-shard layout);
    the record path is a plain int store by the owning domain, one
    [Atomic.get] + branch when metrics are disabled (the default), and
    never allocates.  Registration deduplicates on (name, label set)
    under a mutex, so components may re-create handles freely. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every shard (all series).  Registered metrics survive. *)

module Counter : sig
  type t

  val create : ?help:string -> ?labels:(string * string) list -> string -> t
  (** Idempotent per (name, label set).
      @raise Invalid_argument if the series exists as a histogram. *)

  val incr : t -> unit
  val add : t -> int -> unit
end

module Histogram : sig
  type t

  val default_buckets : int
  (** 24: log2 buckets spanning [0, 2^23), last bucket unbounded. *)

  val create :
    ?help:string -> ?labels:(string * string) list -> ?buckets:int -> string -> t

  val observe : t -> int -> unit
  (** Record one sample (negative samples count in bucket 0 and add
      nothing to the sum). *)
end

val snapshot : unit -> Snapshot.t
(** Merge every domain's shard into a point-in-time snapshot.  Safe to
    call concurrently with recording: a concurrent snapshot may lag a
    few events; one ordered after the recording domains joined is
    exact. *)
