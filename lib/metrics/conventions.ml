(** The standard instrument set shared by the live STM runtime, the
    deterministic simulator and the workload harness.

    Both runtimes record under the same metric names so a live run and
    a simulated run of the same workload produce directly comparable
    series; the [runtime] label ("live" / "sim") keeps their units
    apart (durations are microseconds on the live runtime and ticks in
    the simulator).  Handles are created once per component (cold
    path); every emit helper below is one enabled-check branch and a
    couple of int stores when metrics are on, a single branch when
    off. *)

type t = {
  attempts : Core.Counter.t;
  commits : Core.Counter.t;
  aborts : Core.Counter.t;
  resolve : Core.Counter.t array;  (** Indexed by verdict code 0..3. *)
  pool : Core.Counter.t array;  (** Indexed by pool-event code 0..2. *)
  wait_d : Core.Histogram.t;
  attempt_d : Core.Histogram.t;
  read_set : Core.Histogram.t;
}

(* Verdict codes, aligned with [Tcm_trace.Event.d_*]. *)
let v_abort_other = 0
let v_abort_self = 1
let v_block = 2
let v_backoff = 3
let verdict_names = [| "abort_other"; "abort_self"; "block"; "backoff" |]

(* Locator-pool event codes: [hit] = write acquired a recycled locator,
   [miss] = the freelist was empty (or every candidate hazard-held) and
   a locator was freshly allocated, [recycled] = a displaced dead
   locator was returned to the freelist. *)
let p_hit = 0
let p_miss = 1
let p_recycled = 2
let pool_event_names = [| "hit"; "miss"; "recycled" |]

let n_attempts = "tcm_attempts_total"
let n_commits = "tcm_commits_total"
let n_aborts = "tcm_aborts_total"
let n_resolve = "tcm_resolve_total"
let n_pool = "tcm_pool_total"
let n_wait = "tcm_wait_duration"
let n_attempt_d = "tcm_attempt_duration"
let n_read_set = "tcm_read_set_size"

let for_manager ?(backend = "locator") ~runtime manager =
  let labels = [ ("backend", backend); ("manager", manager); ("runtime", runtime) ] in
  {
    attempts = Core.Counter.create n_attempts ~labels ~help:"Transaction attempts started.";
    commits = Core.Counter.create n_commits ~labels ~help:"Attempts that committed.";
    aborts = Core.Counter.create n_aborts ~labels ~help:"Attempts that aborted.";
    resolve =
      Array.map
        (fun v ->
          Core.Counter.create n_resolve
            ~labels:(("verdict", v) :: labels)
            ~help:"Contention-manager verdicts, by kind.")
        verdict_names;
    pool =
      Array.map
        (fun e ->
          Core.Counter.create n_pool
            ~labels:(("event", e) :: labels)
            ~help:"Locator-pool events: hit / miss / recycled.")
        pool_event_names;
    wait_d =
      Core.Histogram.create n_wait ~labels
        ~help:"Time blocked behind an enemy (us live / ticks sim).";
    attempt_d =
      Core.Histogram.create n_attempt_d ~labels
        ~help:"Attempt latency, commit or abort (us live / ticks sim).";
    read_set =
      Core.Histogram.create n_read_set ~labels
        ~help:"Objects opened by the committed attempt.";
  }

let[@inline] attempt_begin h = Core.Counter.incr h.attempts

let[@inline] attempt_commit h ~duration ~read_set =
  Core.Counter.incr h.commits;
  Core.Histogram.observe h.attempt_d duration;
  Core.Histogram.observe h.read_set read_set

let[@inline] attempt_abort h ~duration =
  Core.Counter.incr h.aborts;
  Core.Histogram.observe h.attempt_d duration

let[@inline] resolve h code =
  if code >= 0 && code < Array.length h.resolve then Core.Counter.incr h.resolve.(code)

let[@inline] wait h ~duration = Core.Histogram.observe h.wait_d duration

let[@inline] pool_event h code =
  if code >= 0 && code < Array.length h.pool then Core.Counter.incr h.pool.(code)

(* ------------------------------------------------------------------ *)
(* Per-workload labels (harness)                                       *)
(* ------------------------------------------------------------------ *)

type workload = {
  w_commits : Core.Counter.t;
  w_aborts : Core.Counter.t;
  w_conflicts : Core.Counter.t;
  w_elapsed_us : Core.Counter.t;
}

let for_workload ~workload ~manager =
  let labels = [ ("workload", workload); ("manager", manager); ("runtime", "live") ] in
  {
    w_commits =
      Core.Counter.create "tcm_workload_commits_total" ~labels
        ~help:"Committed transactions, per harness workload.";
    w_aborts =
      Core.Counter.create "tcm_workload_aborts_total" ~labels
        ~help:"Aborted attempts, per harness workload.";
    w_conflicts =
      Core.Counter.create "tcm_workload_conflicts_total" ~labels
        ~help:"Conflicts resolved, per harness workload.";
    w_elapsed_us =
      Core.Counter.create "tcm_workload_runtime_us_total" ~labels
        ~help:"Measured wall-clock time, per harness workload.";
  }

let workload_outcome w ~commits ~aborts ~conflicts ~elapsed_us =
  Core.Counter.add w.w_commits commits;
  Core.Counter.add w.w_aborts aborts;
  Core.Counter.add w.w_conflicts conflicts;
  Core.Counter.add w.w_elapsed_us elapsed_us

(* ------------------------------------------------------------------ *)
(* Per-class service labels (tcm.service)                              *)
(* ------------------------------------------------------------------ *)

type service = {
  s_requests : Core.Counter.t;
  s_dropped : Core.Counter.t;
  s_slo_ok : Core.Counter.t;
  s_latency : Core.Histogram.t;
}

let n_service_requests = "tcm_service_requests_total"
let n_service_dropped = "tcm_service_dropped_total"
let n_service_slo_ok = "tcm_service_slo_ok_total"
let n_service_latency = "tcm_service_latency"

(* The [class] label carries the transaction class ("read" / "scan" /
   "rmw").  Latency is arrival-to-commit in microseconds — it includes
   admission-queue time, which is where open-loop overload shows up. *)
let for_service ?(backend = "locator") ~manager ~cls () =
  let labels =
    [ ("backend", backend); ("class", cls); ("manager", manager); ("runtime", "live") ]
  in
  {
    s_requests =
      Core.Counter.create n_service_requests ~labels
        ~help:"Service requests generated (admitted or dropped).";
    s_dropped =
      Core.Counter.create n_service_dropped ~labels
        ~help:"Requests shed by the bounded admission queue.";
    s_slo_ok =
      Core.Counter.create n_service_slo_ok ~labels
        ~help:"Requests completed within their class SLO.";
    s_latency =
      Core.Histogram.create n_service_latency ~labels
        ~help:"Arrival-to-commit latency, queue time included (us).";
  }

let[@inline] service_request h = Core.Counter.incr h.s_requests
let[@inline] service_drop h = Core.Counter.incr h.s_dropped

let[@inline] service_complete h ~latency_us ~within_slo =
  Core.Histogram.observe h.s_latency latency_us;
  if within_slo then Core.Counter.incr h.s_slo_ok

(* ------------------------------------------------------------------ *)
(* Per-shard admission-queue labels (tcm.service)                      *)
(* ------------------------------------------------------------------ *)

type shard = {
  q_pushed : Core.Counter.t;
  q_shed : Core.Counter.t;
  q_spill : Core.Counter.t;
  q_occupancy : Core.Histogram.t;
}

let n_shard_pushed = "tcm_service_shard_pushed_total"
let n_shard_shed = "tcm_service_shard_shed_total"
let n_shard_spill = "tcm_service_shard_spill_total"
let n_shard_occupancy = "tcm_service_shard_occupancy"

(* One handle per admission-queue shard.  Recorded by the generator at
   push time (the single producer), so every emit is int stores on
   already-created handles — the admission hot loop stays
   allocation-free. *)
let for_shard ?(backend = "locator") ~manager ~shard () =
  let labels =
    [
      ("backend", backend);
      ("manager", manager);
      ("runtime", "live");
      ("shard", string_of_int shard);
    ]
  in
  {
    q_pushed =
      Core.Counter.create n_shard_pushed ~labels
        ~help:"Requests admitted to this admission-queue shard.";
    q_shed =
      Core.Counter.create n_shard_shed ~labels
        ~help:"Requests shed with this shard as the round-robin target.";
    q_spill =
      Core.Counter.create n_shard_spill ~labels
        ~help:"Pushes that overflowed their round-robin target onto this shard.";
    q_occupancy =
      Core.Histogram.create n_shard_occupancy ~labels
        ~help:"Shard occupancy observed just after each push.";
  }

let[@inline] shard_push h ~occupancy ~spilled =
  Core.Counter.incr h.q_pushed;
  if spilled then Core.Counter.incr h.q_spill;
  Core.Histogram.observe h.q_occupancy occupancy

let[@inline] shard_shed h = Core.Counter.incr h.q_shed
