(** Contention health report: one row per (backend, manager, runtime)
    triple in a snapshot — abort/commit ratio, wasted-work fraction,
    latency and wait percentiles, and the resolve-verdict breakdown;
    the backend split puts the locator and TL2 runtimes side by
    side. *)

type row = {
  backend : string;  (** "locator" or "tl2". *)
  manager : string;
  runtime : string;  (** "live" (durations in us) or "sim" (ticks). *)
  attempts : int;
  commits : int;
  aborts : int;
  abort_commit_ratio : float;  (** [inf] when commits = 0 and aborts > 0. *)
  wasted_frac : float;  (** Fraction of attempts that aborted. *)
  attempt_p50 : float;
  attempt_p99 : float;
  wait_p50 : float;  (** [nan] when the manager never blocked. *)
  wait_p99 : float;
  read_set_p50 : float;
  pool_eff : float;
      (** Locator-pool hit rate, [hits /. (hits + misses)]; [nan] when
          the series never took a locator (read-only load, sim, or the
          TL2 backend — no locator pool). *)
  verdicts : (string * int) list;
}

val managers : Snapshot.t -> (string option * string * string) list
(** (backend, manager, runtime) triples found in the snapshot, in
    registration order.  The backend is [None] for snapshots written
    before the backend label existed (such rows render as
    "locator"). *)

val rows : Snapshot.t -> row list
(** One row per triple from {!managers} that recorded at least one
    attempt (idle registered series are dropped). *)

val pp : Format.formatter -> row list -> unit
