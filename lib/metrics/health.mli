(** Contention health report: one row per (backend, manager, runtime)
    triple in a snapshot — abort/commit ratio, wasted-work fraction,
    latency and wait percentiles, and the resolve-verdict breakdown;
    the backend split puts the locator and TL2 runtimes side by
    side. *)

type row = {
  backend : string;  (** "locator" or "tl2". *)
  manager : string;
  runtime : string;  (** "live" (durations in us) or "sim" (ticks). *)
  attempts : int;
  commits : int;
  aborts : int;
  abort_commit_ratio : float;  (** [inf] when commits = 0 and aborts > 0. *)
  wasted_frac : float;  (** Fraction of attempts that aborted. *)
  attempt_p50 : float;
  attempt_p99 : float;
  wait_p50 : float;  (** [nan] when the manager never blocked. *)
  wait_p99 : float;
  read_set_p50 : float;
  pool_eff : float;
      (** Locator-pool hit rate, [hits /. (hits + misses)]; [nan] when
          the series never took a locator (read-only load, sim, or the
          TL2 backend — no locator pool). *)
  verdicts : (string * int) list;
}

val managers : Snapshot.t -> (string option * string * string) list
(** (backend, manager, runtime) triples found in the snapshot, in
    registration order.  The backend is [None] for snapshots written
    before the backend label existed (such rows render as
    "locator"). *)

val rows : Snapshot.t -> row list
(** One row per triple from {!managers} that recorded at least one
    attempt (idle registered series are dropped). *)

val pp : Format.formatter -> row list -> unit

(** Service SLO table: one row per (backend, manager, class) triple
    recorded by the [tcm.service] engine. *)

type slo_row = {
  s_backend : string;
  s_manager : string;
  s_class : string;
  requests : int;  (** Generated, admitted or shed. *)
  completed : int;  (** Samples in the latency histogram. *)
  dropped : int;
  slo_ok : int;
  attainment : float;
      (** [slo_ok /. requests]; drops and over-SLO completions both
          count against the class.  [nan] with no requests. *)
  latency_p50 : float;  (** Arrival-to-commit, queue time included (us). *)
  latency_p99 : float;
}

val slo_rows : Snapshot.t -> slo_row list
(** Rows for every triple that generated at least one request, in
    registration order. *)

val pp_slo : Format.formatter -> slo_row list -> unit
