(** Contention health report: one row per (manager, runtime) pair in a
    snapshot — abort/commit ratio, wasted-work fraction, latency and
    wait percentiles, and the resolve-verdict breakdown. *)

type row = {
  manager : string;
  runtime : string;  (** "live" (durations in us) or "sim" (ticks). *)
  attempts : int;
  commits : int;
  aborts : int;
  abort_commit_ratio : float;  (** [inf] when commits = 0 and aborts > 0. *)
  wasted_frac : float;  (** Fraction of attempts that aborted. *)
  attempt_p50 : float;
  attempt_p99 : float;
  wait_p50 : float;  (** [nan] when the manager never blocked. *)
  wait_p99 : float;
  read_set_p50 : float;
  pool_eff : float;
      (** Locator-pool hit rate, [hits /. (hits + misses)]; [nan] when
          the series never took a locator (read-only load or sim). *)
  verdicts : (string * int) list;
}

val managers : Snapshot.t -> (string * string) list
(** (manager, runtime) pairs found in the snapshot, in registration
    order. *)

val rows : Snapshot.t -> row list
(** One row per pair from {!managers} that recorded at least one
    attempt (idle registered series are dropped). *)

val pp : Format.formatter -> row list -> unit
