(** The contention health report: one row per (backend, manager,
    runtime) triple found in a snapshot, summarizing commit/abort
    balance, wasted work, latency percentiles and the resolve-verdict
    mix — the at-a-glance answer to "which manager is healthy under
    this contention regime", now split per runtime backend so the
    locator and TL2 protocols can be compared manager by manager. *)

type row = {
  backend : string;  (** "locator" or "tl2". *)
  manager : string;
  runtime : string;  (** "live" (durations in us) or "sim" (ticks). *)
  attempts : int;
  commits : int;
  aborts : int;
  abort_commit_ratio : float;  (** [aborts /. commits]; [inf] when commits = 0. *)
  wasted_frac : float;
      (** Fraction of attempts that aborted — work thrown away. *)
  attempt_p50 : float;
  attempt_p99 : float;
  wait_p50 : float;  (** [nan] when the manager never blocked. *)
  wait_p99 : float;
  read_set_p50 : float;
  pool_eff : float;
      (** Locator-pool efficiency, [hits /. (hits + misses)]; [nan]
          when the runtime never took a locator (read-only load, a sim
          run, or the TL2 backend — which has no locator pool). *)
  verdicts : (string * int) list;  (** Resolve breakdown, by verdict name. *)
}

let ratio a b = if b = 0 then if a = 0 then 0. else infinity else float_of_int a /. float_of_int b

let pcts h p = match h with None -> nan | Some h -> Snapshot.hist_percentile h p

(* [backend = None] keys a pre-backend-label snapshot (an old dump):
   the lookup then omits the label and the row displays the only
   runtime that existed when such dumps were written. *)
let row_of (s : Snapshot.t) ~backend ~manager ~runtime : row =
  let labels =
    (match backend with None -> [] | Some b -> [ ("backend", b) ])
    @ [ ("manager", manager); ("runtime", runtime) ]
  in
  let c name = Snapshot.counter_value s ~name ~labels in
  let h name = Snapshot.hist_value s ~name ~labels in
  let attempts = c Conventions.n_attempts in
  let commits = c Conventions.n_commits in
  let aborts = c Conventions.n_aborts in
  let attempt_d = h Conventions.n_attempt_d in
  let wait_d = h Conventions.n_wait in
  let read_set = h Conventions.n_read_set in
  {
    backend = Option.value backend ~default:"locator";
    manager;
    runtime;
    attempts;
    commits;
    aborts;
    abort_commit_ratio = ratio aborts commits;
    wasted_frac = ratio aborts attempts;
    attempt_p50 = pcts attempt_d 50.;
    attempt_p99 = pcts attempt_d 99.;
    wait_p50 = pcts wait_d 50.;
    wait_p99 = pcts wait_d 99.;
    read_set_p50 = pcts read_set 50.;
    pool_eff =
      (let ev e =
         Snapshot.counter_value s ~name:Conventions.n_pool
           ~labels:(("event", e) :: labels)
       in
       let hits = ev "hit" and misses = ev "miss" in
       if hits + misses = 0 then nan
       else float_of_int hits /. float_of_int (hits + misses));
    verdicts =
      Array.to_list
        (Array.map
           (fun v ->
             ( v,
               Snapshot.counter_value s ~name:Conventions.n_resolve
                 ~labels:(("verdict", v) :: labels) ))
           Conventions.verdict_names);
  }

(* (backend, manager, runtime) triples, in first-appearance order of
   the attempts counter — i.e. instrument registration order.  The
   backend is [None] for entries written before the label existed. *)
let managers (s : Snapshot.t) : (string option * string * string) list =
  List.filter_map
    (fun (e : Snapshot.entry) ->
      if e.Snapshot.name = Conventions.n_attempts then
        match (Snapshot.label e "manager", Snapshot.label e "runtime") with
        | Some m, Some r -> Some (Snapshot.label e "backend", m, r)
        | _ -> None
      else None)
    s.Snapshot.entries

(* Idle series (registered — e.g. by a run with metrics disabled — but
   never recorded into) carry no health signal; drop their rows. *)
let rows (s : Snapshot.t) : row list =
  List.filter
    (fun r -> r.attempts > 0)
    (List.map
       (fun (backend, manager, runtime) -> row_of s ~backend ~manager ~runtime)
       (managers s))

let fnum v =
  if Float.is_nan v then "-"
  else if v = infinity then "inf"
  else if v >= 1000. then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let pp fmt (rows : row list) =
  Format.fprintf fmt
    "%-14s %-8s %-5s %9s %9s %8s %6s %7s %8s %8s %8s %8s %6s %6s  %s@." "manager"
    "backend" "rt" "attempts" "commits" "aborts" "ab/cm" "wasted%" "p50-att" "p99-att"
    "p50-wait" "p99-wait" "p50-rs" "pool%" "verdicts other/self/block/backoff";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-14s %-8s %-5s %9d %9d %8d %6s %6.1f%% %8s %8s %8s %8s %6s %6s  %s@." r.manager
        r.backend r.runtime r.attempts r.commits r.aborts
        (fnum r.abort_commit_ratio)
        (100. *. r.wasted_frac)
        (fnum r.attempt_p50) (fnum r.attempt_p99) (fnum r.wait_p50) (fnum r.wait_p99)
        (fnum r.read_set_p50)
        (fnum (100. *. r.pool_eff))
        (String.concat "/" (List.map (fun (_, n) -> string_of_int n) r.verdicts)))
    rows;
  Format.fprintf fmt
    "(durations: us on runtime=live, ticks on runtime=sim; p50-rs = median read-set \
     size at commit; pool%% = locator-pool hit rate, \"-\" on tl2: no locator pool)@."

(* ------------------------------------------------------------------ *)
(* Service SLO table (tcm.service per-class series)                    *)
(* ------------------------------------------------------------------ *)

type slo_row = {
  s_backend : string;
  s_manager : string;
  s_class : string;
  requests : int;  (** Generated, admitted or shed. *)
  completed : int;  (** Samples in the latency histogram. *)
  dropped : int;
  slo_ok : int;
  attainment : float;
      (** [slo_ok /. requests] — drops and over-SLO completions both
          count against the class. *)
  latency_p50 : float;  (** Arrival-to-commit, queue time included (us). *)
  latency_p99 : float;
}

let slo_row_of (s : Snapshot.t) ~backend ~manager ~cls : slo_row =
  let labels =
    [ ("backend", backend); ("class", cls); ("manager", manager); ("runtime", "live") ]
  in
  let c name = Snapshot.counter_value s ~name ~labels in
  let lat = Snapshot.hist_value s ~name:Conventions.n_service_latency ~labels in
  let requests = c Conventions.n_service_requests in
  let slo_ok = c Conventions.n_service_slo_ok in
  {
    s_backend = backend;
    s_manager = manager;
    s_class = cls;
    requests;
    completed = (match lat with None -> 0 | Some h -> Snapshot.hist_count h);
    dropped = c Conventions.n_service_dropped;
    slo_ok;
    attainment = (if requests = 0 then nan else ratio slo_ok requests);
    latency_p50 = pcts lat 50.;
    latency_p99 = pcts lat 99.;
  }

(** One row per (backend, manager, class) triple that generated at
    least one request, in instrument registration order. *)
let slo_rows (s : Snapshot.t) : slo_row list =
  List.filter_map
    (fun (e : Snapshot.entry) ->
      if e.Snapshot.name = Conventions.n_service_requests then
        match
          (Snapshot.label e "backend", Snapshot.label e "manager", Snapshot.label e "class")
        with
        | Some backend, Some manager, Some cls ->
            let r = slo_row_of s ~backend ~manager ~cls in
            if r.requests > 0 then Some r else None
        | _ -> None
      else None)
    s.Snapshot.entries

let pp_slo fmt (rows : slo_row list) =
  Format.fprintf fmt "%-14s %-8s %-5s %9s %9s %8s %8s %9s %9s %7s@." "manager" "backend"
    "class" "requests" "complete" "dropped" "slo-ok" "p50-lat" "p99-lat" "attain";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s %-8s %-5s %9d %9d %8d %8d %9s %9s %6.1f%%@." r.s_manager
        r.s_backend r.s_class r.requests r.completed r.dropped r.slo_ok
        (fnum r.latency_p50) (fnum r.latency_p99)
        (100. *. r.attainment))
    rows;
  Format.fprintf fmt
    "(latency = arrival-to-commit us, queue time included; attain = slo-ok/requests, \
     so shed requests count against the class)@."
