(** The metric registry and its per-domain sharded storage.

    Every registered metric owns a fixed, cache-line-aligned slice of
    one flat [int array] per domain — the same strided layout as the
    STM runtime's stats shards: counters sit a cache line apart and a
    line of slack at each array end keeps them from sharing a line
    with a neighbouring heap block.  A domain increments only its own
    shard, so the record path is a plain int store: no CAS, no
    allocation, no cache-line ping-pong.  {!snapshot} reads the shards
    from the calling domain, which is a benign race on monotone int
    cells (plain-int reads cannot tear): a concurrent snapshot may lag
    a few events, and one ordered after the counting domains' work —
    joined domains, as in the harness — is exact.

    Disabled (the default) costs one [Atomic.get] and a branch per
    record call, exactly like [Tcm_trace.Sink]'s emitters; call
    {!enable} to start counting.  Registration (by [Counter.create] /
    [Histogram.create]) is the cold path: it takes a mutex and
    deduplicates on (name, label set), so instrumented components may
    re-create their handles freely. *)

let line_words = 8 (* ints per 64-byte cache line *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let[@inline] enabled () = Atomic.get enabled_flag

type kind = K_counter | K_histogram of int  (** payload: bucket count *)

type def = {
  name : string;
  help : string;
  labels : (string * string) list;  (** Canonical (sorted). *)
  kind : kind;
  offset : int;  (** Word offset into each shard; line-aligned. *)
  words : int;  (** Payload words (counter: 1; histogram: buckets + 1). *)
}

(* Registration state.  [defs] is newest-first; [total_words] includes
   the leading slack line.  Mutated only under [mu]. *)
let mu = Mutex.create ()
let defs : def list ref = ref []
let by_key : (string, def) Hashtbl.t = Hashtbl.create 64
let total_words = ref line_words

let key_of name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let register ~name ~help ~labels kind payload_words =
  Mutex.lock mu;
  let labels = Snapshot.canon_labels labels in
  let k = key_of name labels in
  let d =
    match Hashtbl.find_opt by_key k with
    | Some d ->
        if d.kind <> kind then begin
          Mutex.unlock mu;
          invalid_arg
            (Printf.sprintf "Tcm_metrics: %s re-registered with a different kind" name)
        end;
        d
    | None ->
        let offset = !total_words in
        let lines = (payload_words + line_words - 1) / line_words in
        total_words := !total_words + (lines * line_words);
        let d = { name; help; labels; kind; offset; words = payload_words } in
        Hashtbl.add by_key k d;
        defs := d :: !defs;
        d
  in
  Mutex.unlock mu;
  d

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type shard = { mutable arr : int array }

let shards : shard list Atomic.t = Atomic.make []

let shard_size () = !total_words + line_words (* trailing slack line *)

let dls =
  Domain.DLS.new_key (fun () ->
      let s = { arr = Array.make (shard_size ()) 0 } in
      let rec reg () =
        let l = Atomic.get shards in
        if not (Atomic.compare_and_set shards l (s :: l)) then reg ()
      in
      reg ();
      s)

(* The domain's shard array, grown if a metric was registered after
   the shard was created (rare: instruments register at component
   creation).  Only the owning domain replaces [arr]; a concurrent
   snapshot that still reads the old array merely lags. *)
let[@inline never] grow (d : def) (s : shard) =
  let n = Array.make (max (shard_size ()) (d.offset + d.words + line_words)) 0 in
  Array.blit s.arr 0 n 0 (Array.length s.arr);
  s.arr <- n;
  n

let[@inline] slots (d : def) =
  let s = Domain.DLS.get dls in
  let a = s.arr in
  if d.offset + d.words <= Array.length a then a else grow d s

let reset () =
  List.iter (fun s -> Array.fill s.arr 0 (Array.length s.arr) 0) (Atomic.get shards)

(* ------------------------------------------------------------------ *)
(* Metric handles                                                      *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = def

  let create ?(help = "") ?(labels = []) name = register ~name ~help ~labels K_counter 1

  let[@inline] add c n =
    if Atomic.get enabled_flag then begin
      let a = slots c in
      a.(c.offset) <- a.(c.offset) + n
    end

  let[@inline] incr c = add c 1
end

module Histogram = struct
  type t = def

  (* 24 log2 buckets span [0, 2^23): ~8.4 s in microseconds, and any
     plausible tick or read-set count; the last bucket absorbs the
     rest. *)
  let default_buckets = 24

  let create ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
    if buckets < 2 then invalid_arg "Histogram.create: need at least 2 buckets";
    register ~name ~help ~labels (K_histogram buckets) (buckets + 1)

  let[@inline] observe h v =
    if Atomic.get enabled_flag then begin
      let a = slots h in
      let b = h.words - 1 in
      let i = Buckets.index ~buckets:b v in
      a.(h.offset + i) <- a.(h.offset + i) + 1;
      a.(h.offset + b) <- a.(h.offset + b) + if v > 0 then v else 0
    end
end

(* ------------------------------------------------------------------ *)
(* Snapshot: merge the shards                                          *)
(* ------------------------------------------------------------------ *)

let snapshot () : Snapshot.t =
  Mutex.lock mu;
  let ds = List.rev !defs in
  Mutex.unlock mu;
  let shard_arrays = List.map (fun s -> s.arr) (Atomic.get shards) in
  let entries =
    List.map
      (fun d ->
        let value =
          match d.kind with
          | K_counter ->
              Snapshot.Counter
                (List.fold_left
                   (fun acc a -> if d.offset < Array.length a then acc + a.(d.offset) else acc)
                   0 shard_arrays)
          | K_histogram b ->
              let counts = Array.make b 0 in
              let sum = ref 0 in
              List.iter
                (fun a ->
                  if d.offset + b < Array.length a then begin
                    for i = 0 to b - 1 do
                      counts.(i) <- counts.(i) + a.(d.offset + i)
                    done;
                    sum := !sum + a.(d.offset + b)
                  end)
                shard_arrays;
              Snapshot.Histogram { Snapshot.counts; sum = !sum }
        in
        { Snapshot.name = d.name; labels = d.labels; help = d.help; value })
      ds
  in
  { Snapshot.time = Unix.gettimeofday (); entries }
