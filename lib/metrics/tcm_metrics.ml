(** [tcm.metrics]: always-on low-overhead metrics.

    A global registry of named series — per-domain sharded counters
    and log2-bucketed histograms — with an O(1), allocation-free
    record path and a one-branch disabled fast path (the default).
    {!Conventions} defines the instrument set shared by the live STM
    runtime and the simulator; {!Sampler} turns periodic snapshots
    into throughput-over-time windows; {!Export} speaks Prometheus
    text format and JSONL; {!Health} renders the per-manager
    contention health table ([bin/tcm_metrics_cli.ml report]). *)

module Buckets = Buckets
module Snapshot = Snapshot
module Core = Core
module Counter = Core.Counter
module Histogram = Core.Histogram
module Conventions = Conventions
module Sampler = Sampler
module Export = Export
module Health = Health

let enable = Core.enable
let disable = Core.disable
let enabled = Core.enabled
let reset = Core.reset
let snapshot = Core.snapshot
