(** Point-in-time aggregation of the metric registry: plain data, keyed
    by (name, canonical label set).  Values add pointwise, so {!merge}
    is associative and commutative; {!diff} produces windowed deltas. *)

type hist = { counts : int array; sum : int }
(** [counts.(i)] samples in log2 bucket [i] (see {!Buckets}); [sum]
    the total of raw samples. *)

type value = Counter of int | Histogram of hist

type entry = {
  name : string;
  labels : (string * string) list;  (** Sorted (canonical). *)
  help : string;
  value : value;
}

type t = { time : float; entries : entry list }

val empty : t
val canon_labels : (string * string) list -> (string * string) list
val key : entry -> string * (string * string) list
val label : entry -> string -> string option

val find : t -> name:string -> labels:(string * string) list -> entry option
(** Exact match on name and canonicalized label set. *)

val counter_value : t -> name:string -> labels:(string * string) list -> int
(** 0 when the series is absent. *)

val hist_value : t -> name:string -> labels:(string * string) list -> hist option
val hist_count : hist -> int

val hist_sum : hist -> int
(** Exact total of the raw samples (what [tcm.obs] reconciles wait cost against). *)

val hist_percentile : hist -> float -> float
(** See {!Buckets.percentile}; [nan] when empty. *)

val hist_mean : hist -> float

val merge : t -> t -> t
(** Pointwise sum; series present in only one operand pass through.
    @raise Invalid_argument when a series changes kind. *)

val diff : earlier:t -> later:t -> t
(** [later - earlier] pointwise, clamped at zero. *)
