(** Exporters — Prometheus text exposition format and JSONL — plus the
    matching parsers, so both formats can be machine-checked
    round-trip. *)

val schema : string
(** ["tcm-metrics/1"], carried in the JSONL header line. *)

(** {1 JSONL}

    One header line ([schema], snapshot [time], entry/window counts),
    then one line per series ([counter] / [histogram]) and one per
    sampler window. *)

val output_jsonl : ?windows:Sampler.window list -> out_channel -> Snapshot.t -> unit
val write_jsonl : ?windows:Sampler.window list -> string -> Snapshot.t -> unit

val read_jsonl : string -> Snapshot.t * Sampler.window list
(** @raise Failure on malformed input, [Sys_error] on I/O errors.
    Help strings are not round-tripped (they are registry metadata). *)

(** {1 Prometheus} *)

val to_prometheus : Snapshot.t -> string
(** Text exposition format: HELP/TYPE headers, counters as plain
    samples, histograms as cumulative [_bucket] series (integer [le]
    edges from {!Buckets.upper_bound}, last bucket ["+Inf"]) plus
    [_sum] and [_count]. *)

val write_prometheus : string -> Snapshot.t -> unit

type prom_sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

val parse_prometheus : string -> prom_sample list
(** Parse exposition-format text back into flat samples (comments
    skipped); used by the round-trip tests and the CLI self-check.
    @raise Failure on lines the writer would never emit. *)
