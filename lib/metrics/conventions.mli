(** The standard instrument set shared by the live STM runtime, the
    simulator and the workload harness: identical metric names, with a
    [runtime] label ("live" / "sim") separating microsecond series
    from tick series. *)

type t
(** Per-(runtime, manager) handles; create once per component. *)

(** Verdict codes, aligned with [Tcm_trace.Event.d_*]. *)

val v_abort_other : int
val v_abort_self : int
val v_block : int
val v_backoff : int
val verdict_names : string array

(** Locator-pool event codes ([tcm_pool_total{event=...}]). *)

val p_hit : int
val p_miss : int
val p_recycled : int
val pool_event_names : string array

(** Metric names (shared with {!Health} and the tests). *)

val n_attempts : string
val n_commits : string
val n_aborts : string
val n_resolve : string
val n_pool : string
val n_wait : string
val n_attempt_d : string
val n_read_set : string

val for_manager : ?backend:string -> runtime:string -> string -> t
(** Handles labelled [{backend; manager; runtime}].  [backend]
    defaults to ["locator"]; the TL2 runtime passes ["tl2"], and the
    simulator pins ["locator"] explicitly (it models the eager locator
    protocol). *)

val attempt_begin : t -> unit
val attempt_commit : t -> duration:int -> read_set:int -> unit
val attempt_abort : t -> duration:int -> unit

val resolve : t -> int -> unit
(** Record one contention-manager verdict by code (out-of-range codes
    are dropped). *)

val wait : t -> duration:int -> unit

val pool_event : t -> int -> unit
(** Record one locator-pool event by code (out-of-range codes are
    dropped). *)

type workload
(** Per-(workload, manager) counters recorded by the harness. *)

val for_workload : workload:string -> manager:string -> workload

val workload_outcome :
  workload -> commits:int -> aborts:int -> conflicts:int -> elapsed_us:int -> unit

(** Per-(backend, manager, class) service instruments recorded by the
    [tcm.service] engine.  The [class] label carries the transaction
    class ("read" / "scan" / "rmw"); latency is arrival-to-commit in
    microseconds, admission-queue time included. *)

type service

val n_service_requests : string
val n_service_dropped : string
val n_service_slo_ok : string
val n_service_latency : string

val for_service : ?backend:string -> manager:string -> cls:string -> unit -> service

val service_request : service -> unit
(** One request generated (whether admitted or shed). *)

val service_drop : service -> unit
(** One request shed by the bounded admission queue. *)

val service_complete : service -> latency_us:int -> within_slo:bool -> unit
(** One request completed: observe its arrival-to-commit latency and
    count it against the class SLO. *)

(** Per-(backend, manager, shard) admission-queue instruments,
    recorded by the generator (the queue's single producer) at push
    time; emits are int stores only, keeping the admission hot loop
    allocation-free. *)

type shard

val n_shard_pushed : string
val n_shard_shed : string
val n_shard_spill : string
val n_shard_occupancy : string

val for_shard : ?backend:string -> manager:string -> shard:int -> unit -> shard

val shard_push : shard -> occupancy:int -> spilled:bool -> unit
(** One request admitted: occupancy just after the push, and whether
    the push spilled off its round-robin target. *)

val shard_shed : shard -> unit
(** One request shed with this shard as the round-robin target. *)
