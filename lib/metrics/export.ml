(** Exporters: Prometheus text exposition format and JSONL, plus the
    matching parsers (the smoke tests and the CLI re-read both
    formats, so neither can rot silently). *)

let schema = "tcm-metrics/1"

(* ------------------------------------------------------------------ *)
(* Shared string helpers                                               *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then -1 else if String.sub line i m = pat then i else go (i + 1)
  in
  go 0

(* Scan a double-quoted string starting at [line.[j] = '"']; returns
   the unescaped contents and the index past the closing quote. *)
let scan_string line j =
  let n = String.length line in
  if j >= n || line.[j] <> '"' then failwith ("expected string at: " ^ line);
  let buf = Buffer.create 16 in
  let rec go j =
    if j >= n then failwith ("unterminated string: " ^ line)
    else
      match line.[j] with
      | '"' -> (Buffer.contents buf, j + 1)
      | '\\' when j + 1 < n ->
          Buffer.add_char buf
            (match line.[j + 1] with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c);
          go (j + 2)
      | c ->
          Buffer.add_char buf c;
          go (j + 1)
  in
  go (j + 1)

let num_end line start =
  let n = String.length line in
  let j = ref start in
  while
    !j < n
    &&
    match line.[!j] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  do
    incr j
  done;
  !j

let int_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "metrics line missing %S: %s" key line)
  else
    let start = i + String.length pat in
    let stop = num_end line start in
    if stop = start then failwith ("metrics line bad int for " ^ key ^ ": " ^ line)
    else int_of_string (String.sub line start (stop - start))

let float_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "metrics line missing %S: %s" key line)
  else
    let start = i + String.length pat in
    let stop = num_end line start in
    if stop = start then failwith ("metrics line bad number for " ^ key ^ ": " ^ line)
    else float_of_string (String.sub line start (stop - start))

let str_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let i = find_sub line pat in
  if i < 0 then failwith (Printf.sprintf "metrics line missing %S: %s" key line)
  else fst (scan_string line (i + String.length pat))

(* The {"k":"v",...} object after "labels": *)
let labels_field line =
  let pat = "\"labels\":{" in
  let i = find_sub line pat in
  if i < 0 then failwith ("metrics line missing labels: " ^ line)
  else begin
    let n = String.length line in
    let rec pairs acc j =
      if j >= n then failwith ("unterminated labels: " ^ line)
      else
        match line.[j] with
        | '}' -> List.rev acc
        | ',' -> pairs acc (j + 1)
        | '"' ->
            let k, j = scan_string line j in
            if j >= n || line.[j] <> ':' then failwith ("bad label pair: " ^ line);
            let v, j = scan_string line (j + 1) in
            pairs ((k, v) :: acc) j
        | _ -> failwith ("bad labels object: " ^ line)
    in
    pairs [] (i + String.length pat)
  end

(* The [a,b,...] int array after "counts": *)
let counts_field line =
  let pat = "\"counts\":[" in
  let i = find_sub line pat in
  if i < 0 then failwith ("metrics line missing counts: " ^ line)
  else begin
    let n = String.length line in
    let rec ints acc j =
      if j >= n then failwith ("unterminated counts: " ^ line)
      else
        match line.[j] with
        | ']' -> List.rev acc
        | ',' -> ints acc (j + 1)
        | _ ->
            let stop = num_end line j in
            if stop = j then failwith ("bad counts array: " ^ line)
            else ints (int_of_string (String.sub line j (stop - j)) :: acc) stop
    in
    Array.of_list (ints [] (i + String.length pat))
  end

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) labels)
  ^ "}"

let output_jsonl ?(windows = []) oc (s : Snapshot.t) =
  Printf.fprintf oc "{\"schema\":\"%s\",\"time\":%.6f,\"entries\":%d,\"windows\":%d}\n"
    schema s.Snapshot.time
    (List.length s.Snapshot.entries)
    (List.length windows);
  List.iter
    (fun (e : Snapshot.entry) ->
      match e.value with
      | Snapshot.Counter v ->
          Printf.fprintf oc "{\"type\":\"counter\",\"name\":\"%s\",\"labels\":%s,\"value\":%d}\n"
            (escape e.name) (labels_json e.labels) v
      | Snapshot.Histogram h ->
          Printf.fprintf oc
            "{\"type\":\"histogram\",\"name\":\"%s\",\"labels\":%s,\"sum\":%d,\"counts\":[%s]}\n"
            (escape e.name) (labels_json e.labels) h.Snapshot.sum
            (String.concat "," (Array.to_list (Array.map string_of_int h.Snapshot.counts))))
    s.Snapshot.entries;
  List.iter
    (fun (w : Sampler.window) ->
      Printf.fprintf oc
        "{\"type\":\"window\",\"name\":\"%s\",\"labels\":%s,\"t0\":%.6f,\"t1\":%.6f,\"delta\":%d}\n"
        (escape w.Sampler.w_name)
        (labels_json w.Sampler.w_labels)
        w.Sampler.w_t0 w.Sampler.w_t1 w.Sampler.w_delta)
    windows

let write_jsonl ?windows path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_jsonl ?windows oc s)

let read_jsonl path : Snapshot.t * Sampler.window list =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let time = ref 0. in
      let entries = ref [] in
      let windows = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if find_sub line "\"schema\"" >= 0 then begin
             let s = str_field line "schema" in
             if s <> schema then failwith ("unknown metrics schema: " ^ s);
             time := float_field line "time"
           end
           else
             match str_field line "type" with
             | "counter" ->
                 entries :=
                   {
                     Snapshot.name = str_field line "name";
                     labels = Snapshot.canon_labels (labels_field line);
                     help = "";
                     value = Snapshot.Counter (int_field line "value");
                   }
                   :: !entries
             | "histogram" ->
                 entries :=
                   {
                     Snapshot.name = str_field line "name";
                     labels = Snapshot.canon_labels (labels_field line);
                     help = "";
                     value =
                       Snapshot.Histogram
                         { Snapshot.counts = counts_field line; sum = int_field line "sum" };
                   }
                   :: !entries
             | "window" ->
                 windows :=
                   {
                     Sampler.w_name = str_field line "name";
                     w_labels = Snapshot.canon_labels (labels_field line);
                     w_t0 = float_field line "t0";
                     w_t1 = float_field line "t1";
                     w_delta = int_field line "delta";
                   }
                   :: !windows
             | t -> failwith ("unknown metrics line type: " ^ t)
         done
       with End_of_file -> ());
      ( { Snapshot.time = !time; entries = List.rev !entries },
        List.rev !windows ))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format                                   *)
(* ------------------------------------------------------------------ *)

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels)
      ^ "}"

(* Group families: the exposition format wants every sample of one
   metric name contiguous, after its HELP/TYPE header. *)
let to_prometheus (s : Snapshot.t) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let names = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Snapshot.entry) ->
      if not (Hashtbl.mem seen e.Snapshot.name) then begin
        Hashtbl.add seen e.Snapshot.name ();
        names := e.Snapshot.name :: !names
      end)
    s.Snapshot.entries;
  List.iter
    (fun name ->
      let family =
        List.filter (fun (e : Snapshot.entry) -> e.Snapshot.name = name) s.Snapshot.entries
      in
      (match family with
      | [] -> ()
      | e :: _ ->
          if e.help <> "" then out "# HELP %s %s\n" name e.help;
          out "# TYPE %s %s\n" name
            (match e.value with Snapshot.Counter _ -> "counter" | _ -> "histogram"));
      List.iter
        (fun (e : Snapshot.entry) ->
          match e.value with
          | Snapshot.Counter v -> out "%s%s %d\n" name (prom_labels e.labels) v
          | Snapshot.Histogram h ->
              let buckets = Array.length h.counts in
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                  cum := !cum + c;
                  let le =
                    if i = buckets - 1 then "+Inf"
                    else string_of_int (Buckets.upper_bound ~buckets i)
                  in
                  out "%s_bucket%s %d\n" name
                    (prom_labels (e.labels @ [ ("le", le) ]))
                    !cum)
                h.counts;
              out "%s_sum%s %d\n" name (prom_labels e.labels) h.Snapshot.sum;
              out "%s_count%s %d\n" name (prom_labels e.labels) !cum)
        family)
    (List.rev !names);
  Buffer.contents buf

let write_prometheus path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus s))

type prom_sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(* Line parser for the exposition format we emit (name{labels} value);
   comments and blank lines are skipped. *)
let parse_prometheus text : prom_sample list =
  let lines = String.split_on_char '\n' text in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else begin
        let n = String.length line in
        let name_end = ref 0 in
        while
          !name_end < n
          &&
          match line.[!name_end] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
          | _ -> false
        do
          incr name_end
        done;
        if !name_end = 0 then failwith ("bad prometheus line: " ^ line);
        let name = String.sub line 0 !name_end in
        let labels, j =
          if !name_end < n && line.[!name_end] = '{' then begin
            let rec pairs acc j =
              if j >= n then failwith ("unterminated prometheus labels: " ^ line)
              else
                match line.[j] with
                | '}' -> (List.rev acc, j + 1)
                | ',' | ' ' -> pairs acc (j + 1)
                | _ ->
                    let stop = String.index_from line j '=' in
                    let k = String.sub line j (stop - j) in
                    let v, j = scan_string line (stop + 1) in
                    pairs ((k, v) :: acc) j
            in
            pairs [] (!name_end + 1)
          end
          else ([], !name_end)
        in
        let rest = String.trim (String.sub line j (n - j)) in
        let value = if rest = "+Inf" then infinity else float_of_string rest in
        Some { s_name = name; s_labels = labels; s_value = value }
      end)
    lines
