(** Point-in-time aggregation of the metric registry.

    A snapshot is plain data: the shard merge in [Core.snapshot]
    produces one, the exporters consume one, and [merge]/[diff] turn
    several into cross-process aggregates or windowed deltas.  Series
    are keyed by (name, canonical label set); values add pointwise, so
    [merge] is associative and commutative. *)

type hist = { counts : int array; sum : int }
(** [counts.(i)] samples in log2 bucket [i] (see {!Buckets}); [sum]
    the total of all raw samples, for means. *)

type value = Counter of int | Histogram of hist

type entry = {
  name : string;
  labels : (string * string) list;  (** Sorted (canonical). *)
  help : string;
  value : value;
}

type t = { time : float; entries : entry list }

let canon_labels l = List.sort compare l
let key (e : entry) = (e.name, e.labels)
let label (e : entry) k = List.assoc_opt k e.labels

let empty = { time = 0.; entries = [] }

let find t ~name ~labels =
  let labels = canon_labels labels in
  List.find_opt (fun e -> e.name = name && e.labels = labels) t.entries

let counter_value t ~name ~labels =
  match find t ~name ~labels with
  | Some { value = Counter v; _ } -> v
  | _ -> 0

let hist_value t ~name ~labels =
  match find t ~name ~labels with
  | Some { value = Histogram h; _ } -> Some h
  | _ -> None

let hist_count (h : hist) = Array.fold_left ( + ) 0 h.counts
let hist_sum (h : hist) = h.sum
let hist_percentile (h : hist) p = Buckets.percentile ~counts:h.counts p

let hist_mean (h : hist) =
  match hist_count h with
  | 0 -> nan
  | n -> float_of_int h.sum /. float_of_int n

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Histogram x, Histogram y ->
      let n = max (Array.length x.counts) (Array.length y.counts) in
      let counts =
        Array.init n (fun i ->
            (if i < Array.length x.counts then x.counts.(i) else 0)
            + if i < Array.length y.counts then y.counts.(i) else 0)
      in
      Histogram { counts; sum = x.sum + y.sum }
  | _ -> invalid_arg "Snapshot.merge: counter/histogram kind mismatch for a series"

(* [later - earlier], clamped at zero (a reset between the two
   snapshots would otherwise produce negative deltas). *)
let sub_value later earlier =
  match (later, earlier) with
  | Counter x, Counter y -> Counter (max 0 (x - y))
  | Histogram x, Histogram y ->
      let counts =
        Array.mapi
          (fun i c -> max 0 (c - if i < Array.length y.counts then y.counts.(i) else 0))
          x.counts
      in
      Histogram { counts; sum = max 0 (x.sum - y.sum) }
  | v, _ -> v

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (e : entry) -> Hashtbl.replace tbl (key e) e.value) b.entries;
  let merged_a =
    List.map
      (fun e ->
        match Hashtbl.find_opt tbl (key e) with
        | Some v ->
            Hashtbl.remove tbl (key e);
            { e with value = merge_value e.value v }
        | None -> e)
      a.entries
  in
  let rest = List.filter (fun e -> Hashtbl.mem tbl (key e)) b.entries in
  { time = Float.max a.time b.time; entries = merged_a @ rest }

let diff ~earlier ~later =
  {
    later with
    entries =
      List.map
        (fun (e : entry) ->
          match find earlier ~name:e.name ~labels:e.labels with
          | Some pe -> { e with value = sub_value e.value pe.value }
          | None -> e)
        later.entries;
  }
