(** Log2 bucketing: bucket [0] holds [[0, 1]], bucket [i >= 1] holds
    [[2^i, 2^(i+1) - 1]], the last bucket absorbs everything above its
    lower bound. *)

val floor_log2 : int -> int
(** Floor of log2; the argument must be positive. *)

val index : buckets:int -> int -> int
(** Bucket index for a sample, clamped to [[0, buckets - 1]].
    Negative samples land in bucket 0. *)

val lower_bound : int -> int
(** Smallest sample landing in bucket [i] (0 for bucket 0). *)

val upper_bound : buckets:int -> int -> int
(** Largest sample landing in bucket [i]; [max_int] for the last
    bucket (rendered as ["+Inf"] by the Prometheus exporter). *)

val percentile : counts:int array -> float -> float
(** [percentile ~counts p] with [p] in [[0, 100]]: nearest-rank
    percentile estimated from bucket counts, linearly interpolated
    inside the winning bucket; [nan] when the histogram is empty.
    Log2 buckets bound the error: the estimate is within a factor of
    two of the exact sample percentile. *)
