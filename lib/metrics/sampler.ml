(** Windowed sampler: periodic snapshots turned into per-window counter
    deltas — the throughput-over-time series a Figures 1–4 style plot
    needs.

    Pull-based: the driving thread calls {!poll} from its wait loop
    (e.g. the harness duration wait); a snapshot is taken whenever at
    least [period_s] elapsed since the previous one.  {!force} brackets
    a run with exact start/end points. *)

type window = {
  w_t0 : float;
  w_t1 : float;
  w_name : string;
  w_labels : (string * string) list;
  w_delta : int;
}

type t = {
  period_s : float;
  mutable snaps : Snapshot.t list;  (** Newest first. *)
  mutable last : float;
}

let create ?(period_s = 0.05) () = { period_s; snaps = []; last = neg_infinity }

let force t =
  let s = Core.snapshot () in
  t.snaps <- s :: t.snaps;
  t.last <- s.Snapshot.time

let poll t = if Unix.gettimeofday () -. t.last >= t.period_s then force t

let snapshots t = List.rev t.snaps

(* Adjacent-pair counter deltas; zero deltas are dropped so idle
   series don't bloat the export. *)
let windows t : window list =
  let rec pairs acc = function
    | s0 :: (s1 :: _ as rest) ->
        let d = Snapshot.diff ~earlier:s0 ~later:s1 in
        let ws =
          List.filter_map
            (fun (e : Snapshot.entry) ->
              match e.value with
              | Snapshot.Counter v when v > 0 ->
                  Some
                    {
                      w_t0 = s0.Snapshot.time;
                      w_t1 = s1.Snapshot.time;
                      w_name = e.name;
                      w_labels = e.labels;
                      w_delta = v;
                    }
              | _ -> None)
            d.Snapshot.entries
        in
        pairs (ws :: acc) rest
    | _ -> List.concat (List.rev acc)
  in
  pairs [] (snapshots t)

(* Per-window deltas of one series, oldest first. *)
let series t ~name ~labels =
  let labels = Snapshot.canon_labels labels in
  List.filter_map
    (fun w ->
      if w.w_name = name && w.w_labels = labels then Some (w.w_t0, w.w_t1, w.w_delta)
      else None)
    (windows t)
