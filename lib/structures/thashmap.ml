(** Transactional hash map (int keys), bucketed into per-bucket
    association lists each held in its own [Tvar] — so transactions on
    different buckets never conflict, giving adopters a lower-contention
    alternative to the intset structures for key-value state.

    {1 Incremental power-of-two resize}

    The table doubles {e one bucket at a time}.  Every physical bucket
    carries its own split depth [d]: a bucket at index [b] with depth
    [d] holds exactly the keys whose hash satisfies
    [h land (base·2^d − 1) = b].  Splitting such a bucket partitions
    its items on the next hash bit: the low half stays at [b] with
    depth [d + 1], the high half moves to the buddy
    [b + base·2^d] (a previously [Fresh] bucket) — two bucket writes
    inside the splitting transaction, so {e a concurrent transaction
    conflicts with a split only if it touches the bucket being split
    or its buddy}; the rest of the table is untouched.

    A key's candidate buckets form the chain [idx(h, j) =
    h land (base·2^j − 1)] for growing [j]; exactly one live bucket on
    that chain covers the key.  {!locate} walks the chain from a
    relaxed depth hint: a [Fresh] bucket means the home is shallower, a
    live bucket whose depth says the key hashes elsewhere means it is
    deeper.  Under a consistent snapshot the walk is monotone and
    terminates; the fuel guard documents that invariant.

    Buddy buckets live in lazily allocated {e segments} (segment [s]
    covers indices [[base·2^(s−1), base·2^s))), so the bucket [Tvar]s
    never move — growing the table never invalidates an index another
    transaction already read. *)

open Tcm_stm

type 'v bucket =
  | Fresh  (** Not yet part of the table; contents live at an ancestor. *)
  | Items of { depth : int; items : (int * 'v) list }

type 'v t = {
  base : int;  (** Initial bucket count; power of two. *)
  seg0 : 'v bucket Tvar.t array;
  segs : 'v bucket Tvar.t array Atomic.t array;
      (** [segs.(s-1)] covers indices [base·2^(s−1), base·2^s);
          [[||]] marks a segment not yet allocated. *)
  seg_lock : Mutex.t;  (** Serializes segment allocation only. *)
  depth_hint : int Atomic.t;
      (** Monotone max published split depth — a locate starting
          point, never load-bearing for correctness. *)
  size : int Atomic.t;  (** Approximate binding count (see size_hint). *)
}

let default_buckets = 64

(* Beyond [max_extra] doublings the table refuses to split further
   (the bucket just grows) — at base >= 64 that is a 2^30-bucket
   ceiling, far past anything the service drives. *)
let max_extra = 24

let split_threshold = 8

(* Global mutation counters (tcm.metrics): the conflict-free feed
   behind [size_hint]-style monitoring — watching mutation rates never
   opens a transaction.  Lazy so programs that never touch a hashmap
   register nothing. *)
let m_inserts =
  lazy
    (Tcm_metrics.Core.Counter.create "tcm_hashmap_inserts_total"
       ~help:"Bindings inserted into transactional hashmaps.")

let m_removes =
  lazy
    (Tcm_metrics.Core.Counter.create "tcm_hashmap_removes_total"
       ~help:"Bindings removed from transactional hashmaps.")

let m_splits =
  lazy
    (Tcm_metrics.Core.Counter.create "tcm_hashmap_splits_total"
       ~help:"Incremental bucket splits performed by transactional hashmaps.")

(* Round up to a power of two so the masks work. *)
let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(* Target occupancy when sizing from an expected population: low
   single digits, comfortably under the split threshold. *)
let expect_occupancy = 4

let create ?buckets ?expect () =
  let requested =
    match (buckets, expect) with
    | Some b, _ -> b
    | None, Some e -> max default_buckets (e / expect_occupancy)
    | None, None -> default_buckets
  in
  let n = pow2_at_least (max 1 requested) 1 in
  {
    base = n;
    seg0 = Array.init n (fun _ -> Tvar.make (Items { depth = 0; items = [] }));
    segs = Array.init max_extra (fun _ -> Atomic.make [||]);
    seg_lock = Mutex.create ();
    depth_hint = Atomic.make 0;
    size = Atomic.make 0;
  }

let n_buckets t =
  Array.fold_left
    (fun acc s -> acc + Array.length (Atomic.get s))
    t.base t.segs

let depth t = Atomic.get t.depth_hint

let size_hint t = Atomic.get t.size

(* Finalizing multiplicative hash; keys are often sequential. *)
let hash k =
  let h = k * 0x9E3779B1 in
  h lxor (h lsr 16)

(* Segment number of global bucket index [b] (>= base): smallest s
   with b < base·2^s. *)
let seg_of t b =
  let s = ref 1 in
  while b >= t.base lsl !s do
    incr s
  done;
  !s

(** The bucket Tvar at global index [b]; only called on indices whose
    segment is known allocated (the home bucket of a located key, or a
    buddy after {!ensure_segment}). *)
let tvar_of t b =
  if b < t.base then t.seg0.(b)
  else begin
    let s = seg_of t b in
    let seg = Atomic.get t.segs.(s - 1) in
    seg.(b - (t.base lsl (s - 1)))
  end

(* Allocate (once) the segment containing index [b].  Buckets start
   [Fresh]; publication is a single [Atomic.set], so readers either
   see the whole segment or treat it as all-Fresh — both correct. *)
let ensure_segment t b =
  let s = seg_of t b in
  let cell = t.segs.(s - 1) in
  if Array.length (Atomic.get cell) = 0 then begin
    Mutex.lock t.seg_lock;
    if Array.length (Atomic.get cell) = 0 then
      Atomic.set cell
        (Array.init (t.base lsl (s - 1)) (fun _ -> Tvar.make Fresh));
    Mutex.unlock t.seg_lock
  end

(* Transactional bucket-state read that treats an unallocated segment
   as [Fresh] without materializing it: a key whose chain passes
   through a hole is still protected by the read of its real home
   bucket (any split that would move it writes that bucket). *)
let read_state tx t b =
  if b < t.base then Stm.read tx t.seg0.(b)
  else begin
    let s = seg_of t b in
    let seg = Atomic.get t.segs.(s - 1) in
    if Array.length seg = 0 then Fresh
    else Stm.read tx seg.(b - (t.base lsl (s - 1)))
  end

let locate_fuel = 2 * (max_extra + 2)

(** Walk key [h]'s bucket chain from level [j] to its home bucket:
    returns (index, depth, items).  [Fresh] ⇒ home is shallower; a
    live bucket that does not cover [h] (its depth-masked hash differs)
    ⇒ home is deeper.  Terminates under snapshot consistency (both
    backends are opaque); the fuel bound turns a violated invariant
    into a loud failure instead of a spin. *)
let rec locate tx t h j fuel =
  if fuel < 0 then failwith "Thashmap.locate: no progress (snapshot inconsistency?)";
  let j = if j < 0 then 0 else if j > max_extra then max_extra else j in
  let b = h land ((t.base lsl j) - 1) in
  match read_state tx t b with
  | Fresh -> locate tx t h (j - 1) (fuel - 1)
  | Items { depth; items } ->
      if depth <= j || h land ((t.base lsl depth) - 1) = b then (b, depth, items)
      else locate tx t h (j + 1) (fuel - 1)

let find tx t k =
  let _, _, items = locate tx t (hash k) (Atomic.get t.depth_hint) locate_fuel in
  List.assoc_opt k items

let mem tx t k = find tx t k <> None

(* Monotone max on the depth hint; losing the race is fine (the hint
   only seeds locate). *)
let rec bump_depth t d =
  let cur = Atomic.get t.depth_hint in
  if d > cur && not (Atomic.compare_and_set t.depth_hint cur d) then bump_depth t d

(* Split bucket [b] (depth [d], contents [items]) inside the calling
   transaction: low half stays, high half moves to the buddy.  Both
   buckets enter the write set — the only Tvars a concurrent
   transaction can conflict with. *)
let split tx t b d items =
  let bit = t.base lsl d in
  let buddy = b + bit in
  ensure_segment t buddy;
  let bv = tvar_of t b and qv = tvar_of t buddy in
  let low, high = List.partition (fun (k, _) -> hash k land bit = 0) items in
  ignore (Stm.read_for_write tx bv);
  ignore (Stm.read_for_write tx qv);
  Stm.write tx bv (Items { depth = d + 1; items = low });
  Stm.write tx qv (Items { depth = d + 1; items = high });
  if Tcm_metrics.enabled () then
    Tcm_metrics.Core.Counter.incr (Lazy.force m_splits);
  bump_depth t (d + 1)

(* The size hint is maintained with plain atomic bumps at the point of
   the transactional write: an attempt that later aborts leaves its
   bump behind, so the hint is approximate under contention — exactly
   the trade that keeps reading it conflict-free. *)
let bump_size t delta c =
  ignore (Atomic.fetch_and_add t.size delta);
  if Tcm_metrics.enabled () then Tcm_metrics.Core.Counter.incr (Lazy.force c)

(** Insert or replace.  Inserting a fresh key conses onto the bucket
    without rebuilding it; only a replace pays the [remove_assoc]
    copy.  An insert that leaves the bucket at the split threshold
    first splits it (possibly repeatedly) so occupancy stays bounded
    as the map grows. *)
let add tx t k v =
  let h = hash k in
  let rec go () =
    let b, d, items = locate tx t h (Atomic.get t.depth_hint) locate_fuel in
    let present = List.mem_assoc k items in
    if (not present) && List.length items >= split_threshold && d < max_extra
    then begin
      split tx t b d items;
      go () (* the key now homes at depth d+1: re-locate. *)
    end
    else begin
      let items = if present then List.remove_assoc k items else items in
      let bv = tvar_of t b in
      ignore (Stm.read_for_write tx bv);
      Stm.write tx bv (Items { depth = d; items = (k, v) :: items });
      if not present then bump_size t 1 m_inserts
    end
  in
  go ()

(** [true] if the key was present.  Removing a missing key neither
    copies nor writes the bucket. *)
let remove tx t k =
  let h = hash k in
  let b, d, items = locate tx t h (Atomic.get t.depth_hint) locate_fuel in
  if List.mem_assoc k items then begin
    let bv = tvar_of t b in
    ignore (Stm.read_for_write tx bv);
    Stm.write tx bv (Items { depth = d; items = List.remove_assoc k items });
    bump_size t (-1) m_removes;
    true
  end
  else false

(** Atomically update one binding: [f None] inserts, [f (Some v)]
    replaces; returning [None] deletes.  The bucket is only rebuilt
    when the key was present, and a delete of an absent key writes
    nothing at all. *)
let update tx t k f =
  let h = hash k in
  let b, d, items = locate tx t h (Atomic.get t.depth_hint) locate_fuel in
  let old_v = List.assoc_opt k items in
  let rest =
    match old_v with None -> items | Some _ -> List.remove_assoc k items
  in
  match (f old_v, old_v) with
  | Some v, _ ->
      let bv = tvar_of t b in
      ignore (Stm.read_for_write tx bv);
      Stm.write tx bv (Items { depth = d; items = (k, v) :: rest });
      if old_v = None then bump_size t 1 m_inserts
  | None, Some _ ->
      let bv = tvar_of t b in
      ignore (Stm.read_for_write tx bv);
      Stm.write tx bv (Items { depth = d; items = rest });
      bump_size t (-1) m_removes
  | None, None -> ()

let fold_buckets tx t f acc =
  let acc = ref acc in
  let scan arr =
    Array.iter
      (fun bv ->
        match Stm.read tx bv with
        | Fresh -> ()
        | Items { items; _ } -> acc := f !acc items)
      arr
  in
  scan t.seg0;
  Array.iter (fun s -> scan (Atomic.get s)) t.segs;
  !acc

let length tx t = fold_buckets tx t (fun acc l -> acc + List.length l) 0

(** All bindings, sorted by key. *)
let bindings tx t =
  fold_buckets tx t (fun acc l -> List.rev_append l acc) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Bulk-load distinct keys into a {e freshly created, not yet
    published} map — no transactions: base buckets are stitched with
    {!Tvar.unsafe_init}, which is only sound before any concurrent
    transaction can observe the map.  The load goes entirely into the
    depth-0 table (no splits), so size the map with [~expect] when
    preloading large populations.
    @raise Invalid_argument if the map has ever been written. *)
let unsafe_preload t pairs =
  if Atomic.get t.size <> 0 || Atomic.get t.depth_hint <> 0 then
    invalid_arg "Thashmap.unsafe_preload: map not fresh";
  let acc = Array.make t.base [] in
  Array.iter
    (fun ((k, _) as kv) ->
      let b = hash k land (t.base - 1) in
      acc.(b) <- kv :: acc.(b))
    pairs;
  for b = 0 to t.base - 1 do
    match acc.(b) with
    | [] -> ()
    | items -> Tvar.unsafe_init t.seg0.(b) (Items { depth = 0; items })
  done;
  ignore (Atomic.fetch_and_add t.size (Array.length pairs))
