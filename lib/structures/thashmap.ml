(** Transactional hash map (int keys), bucketed into per-bucket
    association lists each held in its own [Tvar] — so transactions on
    different buckets never conflict, giving adopters a lower-contention
    alternative to the intset structures for key-value state. *)

open Tcm_stm

type 'v t = { buckets : (int * 'v) list Tvar.t array; mask : int }

let default_buckets = 64

(* Round up to a power of two so the mask works. *)
let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(buckets = default_buckets) () =
  let n = pow2_at_least (max 1 buckets) 1 in
  { buckets = Array.init n (fun _ -> Tvar.make []); mask = n - 1 }

let n_buckets t = Array.length t.buckets

(* Finalizing multiplicative hash; keys are often sequential. *)
let slot t k =
  let h = k * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  t.buckets.(h land t.mask)

let find tx t k = List.assoc_opt k (Stm.read tx (slot t k))

let mem tx t k = find tx t k <> None

(** Insert or replace.  Inserting a fresh key conses onto the bucket
    without rebuilding it; only a replace pays the [remove_assoc]
    copy. *)
let add tx t k v =
  let b = slot t k in
  let l = Stm.read_for_write tx b in
  let l = if List.mem_assoc k l then List.remove_assoc k l else l in
  Stm.write tx b ((k, v) :: l)

(** [true] if the key was present.  Removing a missing key neither
    copies nor writes the bucket. *)
let remove tx t k =
  let b = slot t k in
  let l = Stm.read_for_write tx b in
  if List.mem_assoc k l then begin
    Stm.write tx b (List.remove_assoc k l);
    true
  end
  else false

(** Atomically update one binding: [f None] inserts, [f (Some v)]
    replaces; returning [None] deletes.  The bucket is only rebuilt
    when the key was present, and a delete of an absent key writes
    nothing at all. *)
let update tx t k f =
  let b = slot t k in
  let l = Stm.read_for_write tx b in
  let old_v = List.assoc_opt k l in
  let rest = match old_v with None -> l | Some _ -> List.remove_assoc k l in
  match (f old_v, old_v) with
  | Some v, _ -> Stm.write tx b ((k, v) :: rest)
  | None, Some _ -> Stm.write tx b rest
  | None, None -> ()

let length tx t =
  Array.fold_left (fun acc b -> acc + List.length (Stm.read tx b)) 0 t.buckets

(** All bindings, sorted by key. *)
let bindings tx t =
  Array.fold_left (fun acc b -> List.rev_append (Stm.read tx b) acc) [] t.buckets
  |> List.sort (fun (a, _) (b, _) -> compare a b)
