(** Transactional hash map (int keys): per-bucket association lists in
    individual [Tvar]s, so transactions on different buckets never
    conflict.  The table resizes {e incrementally}: one bucket splits
    at a time (two bucket writes inside the splitting transaction), so
    growth conflicts only with transactions touching the split bucket
    or its buddy — never the whole map. *)

type 'v t

val default_buckets : int

val create : ?buckets:int -> ?expect:int -> unit -> 'v t
(** Bucket count is rounded up to a power of two.

    Sizing: each bucket is one [Tvar] holding an association list, so
    a transaction touching a bucket conflicts with every other
    transaction on that bucket and pays O(occupancy) to replace or
    remove a binding.  [~expect:n] sizes the initial table for [n]
    keys at low single-digit occupancy (a million-key store gets
    ~256k buckets); [~buckets] overrides it exactly.  With neither,
    the default (64) suits the paper's 256-key micro-workloads —
    larger populations then grow the table by incremental splits. *)

val n_buckets : 'v t -> int
(** Currently allocated physical buckets (grows as the table splits). *)

val depth : 'v t -> int
(** Maximum published split depth (0 until the first split). *)

val split_threshold : int
(** Occupancy at which an insert splits its bucket. *)

val find : Tcm_stm.Stm.tx -> 'v t -> int -> 'v option
val mem : Tcm_stm.Stm.tx -> 'v t -> int -> bool

val add : Tcm_stm.Stm.tx -> 'v t -> int -> 'v -> unit
(** Insert or replace; may split the target bucket (two bucket writes)
    when its occupancy reaches {!split_threshold}. *)

val remove : Tcm_stm.Stm.tx -> 'v t -> int -> bool
(** [true] if the key was present. *)

val update : Tcm_stm.Stm.tx -> 'v t -> int -> ('v option -> 'v option) -> unit
(** Atomic read-modify-write of one binding; [None] deletes. *)

val length : Tcm_stm.Stm.tx -> 'v t -> int
(** {b Warning}: reads {e every} bucket Tvar, so the calling
    transaction conflicts with every concurrent writer — a monitoring
    transaction built on [length] serializes the whole map.  Prefer
    {!size_hint} for observability. *)

val bindings : Tcm_stm.Stm.tx -> 'v t -> (int * 'v) list
(** Sorted by key.  {b Warning}: same full-table read set as
    {!length}; use for tests and offline dumps, not monitoring. *)

val size_hint : 'v t -> int
(** Conflict-free {e approximate} binding count: maintained by plain
    atomic bumps at the mutation sites (an aborted attempt's bump is
    not rolled back), and mirrored into the global [tcm.metrics]
    counters [tcm_hashmap_inserts_total] / [tcm_hashmap_removes_total]
    so monitoring never opens a transaction.  Exact when no mutation
    ever aborted. *)

val unsafe_preload : 'v t -> (int * 'v) array -> unit
(** Bulk-load distinct keys into a freshly created map,
    non-transactionally ({!Tcm_stm.Tvar.unsafe_init}) — only sound
    {e before} the map is published to any transaction.  Loads into
    the depth-0 table without splitting: size with [~expect].
    @raise Invalid_argument if the map has ever been written. *)
