(** Transactional hash map (int keys): per-bucket association lists in
    individual [Tvar]s, so transactions on different buckets never
    conflict. *)

type 'v t

val default_buckets : int

val create : ?buckets:int -> unit -> 'v t
(** Bucket count is rounded up to a power of two.

    Sizing: each bucket is one [Tvar] holding an association list, so
    a transaction touching a bucket conflicts with every other
    transaction on that bucket and pays O(occupancy) to replace or
    remove a binding.  The default (64) suits the paper's 256-key
    micro-workloads; service-scale stores should size [buckets] to
    keep occupancy in the low single digits — e.g. [~buckets:(n / 4)]
    for [n] keys, which for a million-key store means ~256k buckets
    (~2 MB of [Tvar] array, amortized by the conflict and copy costs
    saved on every access). *)

val n_buckets : 'v t -> int
val find : Tcm_stm.Stm.tx -> 'v t -> int -> 'v option
val mem : Tcm_stm.Stm.tx -> 'v t -> int -> bool

val add : Tcm_stm.Stm.tx -> 'v t -> int -> 'v -> unit
(** Insert or replace. *)

val remove : Tcm_stm.Stm.tx -> 'v t -> int -> bool
(** [true] if the key was present. *)

val update : Tcm_stm.Stm.tx -> 'v t -> int -> ('v option -> 'v option) -> unit
(** Atomic read-modify-write of one binding; [None] deletes. *)

val length : Tcm_stm.Stm.tx -> 'v t -> int

val bindings : Tcm_stm.Stm.tx -> 'v t -> (int * 'v) list
(** Sorted by key. *)
