(** Transactional skiplist (Figure 2's application) with per-level
    forward pointers in [Tvar]s and deterministic level choice.  The
    level cap is per structure: {!create} keeps the historical default
    (8, right for ~256-key micro-benchmarks); million-key index use
    goes through {!create_sized}. *)

include Intset.S

val default_max_level : int
(** Level cap used by {!create} (8). *)

val level_for : expect:int -> int
(** Size-derived level cap: ceil(log2 [expect]), clamped to [4, 30]
    (1M keys ⇒ 20). *)

val create_sized : ?max_level:int -> expect:int -> unit -> t
(** A skiplist whose level cap suits an expected population of
    [expect] keys ({!level_for}, overridable).
    @raise Invalid_argument on a cap outside [1, 30]. *)

val level_cap : t -> int
(** This structure's maximum tower height. *)

val range : Tcm_stm.Stm.tx -> t -> lo:int -> len:int -> int list
(** Ascending keys >= [lo], at most [len] of them: one O(log n)
    descent plus [len] bottom-level hops. *)

val unsafe_preload : t -> int array -> unit
(** Bulk-build from strictly ascending keys, non-transactionally
    ({!Tcm_stm.Tvar.unsafe_init}) — only sound on an empty structure
    {e before} it is published to any transaction.  Levels come from
    the same deterministic stream as transactional inserts.
    @raise Invalid_argument on a non-empty structure or unsorted
    keys. *)

val level_counts : t -> int array
(** [counts.(l)] = nodes of tower height [l + 1], read via [Tvar.peek]
    (test probe; racy under concurrent writers). *)
