(** Transactional skiplist (Figure 2's application) with per-level
    forward pointers in [Tvar]s and deterministic level choice. *)

include Intset.S

val max_level : int

val range : Tcm_stm.Stm.tx -> t -> lo:int -> len:int -> int list
(** Ascending keys >= [lo], at most [len] of them: one O(log n)
    descent plus [len] bottom-level hops. *)
