(** Transactional skiplist (the paper's "Skiplist application",
    Figure 2).

    A classic skiplist with per-level forward pointers held in [Tvar]s.
    Node levels are drawn from a deterministic splitmix stream seeded
    per structure, so runs are reproducible regardless of thread
    interleaving (the level only affects performance, never
    correctness). *)

open Tcm_stm

let name = "skiplist"

let max_level = 8

type link = Nil | N of node

and node = { key : int; forward : link Tvar.t array }

type t = {
  head : link Tvar.t array;  (** head.(lvl) = first node at that level. *)
  level_seed : int Atomic.t;
}

let create () =
  {
    head = Array.init max_level (fun _ -> Tvar.make Nil);
    level_seed = Atomic.make 0x2545F491;
  }

(* Geometric level in [1, max_level]: count trailing ones of a hashed
   counter (p = 1/2 per level). *)
let random_level t =
  let x = Atomic.fetch_and_add t.level_seed 0x61c88647 in
  let h = x * 0x45d9f3b in
  let h = (h lxor (h lsr 16)) * 0x45d9f3b in
  let h = h lxor (h lsr 16) in
  let rec count l h = if l >= max_level || h land 1 = 0 then l else count (l + 1) (h lsr 1) in
  max 1 (count 0 h + 1) |> min max_level

(* Collect, for each level, the slot (pointer tvar) whose content is
   the first link with key >= k; the search descends through
   predecessor nodes in the usual skiplist fashion.  The predecessor
   found at level l necessarily reaches level l, so indexing its
   forward array at l-1 is safe. *)
let find_slots tx t k : link Tvar.t array * link =
  let slots = Array.make max_level t.head.(0) in
  let pred = ref None in
  for lvl = max_level - 1 downto 0 do
    let slot =
      ref (match !pred with None -> t.head.(lvl) | Some n -> n.forward.(lvl))
    in
    let continue = ref true in
    while !continue do
      match Stm.read tx !slot with
      | N ({ key; forward } as n) when key < k ->
          pred := Some n;
          slot := forward.(lvl)
      | Nil | N _ -> continue := false
    done;
    slots.(lvl) <- !slot
  done;
  (slots, Stm.read tx slots.(0))

let member tx t k =
  match find_slots tx t k with
  | _, N { key; _ } -> key = k
  | _, Nil -> false

let insert tx t k =
  let slots, found = find_slots tx t k in
  match found with
  | N { key; _ } when key = k -> false
  | _ ->
      let lvl = random_level t in
      let forward = Array.init lvl (fun i -> Tvar.make (Stm.read tx slots.(i))) in
      let node = N { key = k; forward } in
      for i = 0 to lvl - 1 do
        Stm.write tx slots.(i) node
      done;
      true

let remove tx t k =
  let slots, found = find_slots tx t k in
  match found with
  | N { key; forward } when key = k ->
      let lvl = Array.length forward in
      for i = 0 to lvl - 1 do
        (* The slot at level i points at our node iff the node reaches
           that level; splice it out. *)
        match Stm.read tx slots.(i) with
        | N { key = key'; _ } when key' = k -> Stm.write tx slots.(i) (Stm.read tx forward.(i))
        | _ -> ()
      done;
      true
  | _ -> false

(** Ascending keys >= [lo], at most [len] of them — the ordered range
    scan backing the service layer's scan transactions.  Costs one
    O(log n) descent plus [len] level-0 hops. *)
let range tx t ~lo ~len =
  if len <= 0 then []
  else begin
    let _, first = find_slots tx t lo in
    let rec go link k acc =
      if k = 0 then List.rev acc
      else
        match link with
        | Nil -> List.rev acc
        | N { key; forward } -> go (Stm.read tx forward.(0)) (k - 1) (key :: acc)
    in
    go first len []
  end

let to_list tx t =
  let rec go link acc =
    match link with
    | Nil -> List.rev acc
    | N { key; forward } -> go (Stm.read tx forward.(0)) (key :: acc)
  in
  go (Stm.read tx t.head.(0)) []
