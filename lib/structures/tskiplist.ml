(** Transactional skiplist (the paper's "Skiplist application",
    Figure 2).

    A classic skiplist with per-level forward pointers held in [Tvar]s.
    Node levels are drawn from a deterministic splitmix stream seeded
    per structure, so runs are reproducible regardless of thread
    interleaving (the level only affects performance, never
    correctness).

    The level cap is per structure: the historical default (8) is right
    for the paper's 256-key micro-benchmarks, but a cap of [l] bounds
    the index at [2^l] keys — beyond that the bottom level degrades
    toward a linked list.  {!create_sized} derives the cap from the
    expected population (1M keys ⇒ 20 levels), and {!unsafe_preload}
    bulk-builds a sorted population without paying an STM commit per
    node. *)

open Tcm_stm

let name = "skiplist"

let default_max_level = 8

(** Smallest cap that keeps O(log n) behavior for [expect] keys:
    ceil(log2 expect), clamped to [4, 30]. *)
let level_for ~expect =
  let rec go l = if l >= 30 || 1 lsl l >= expect then l else go (l + 1) in
  max 4 (go 1)

type link = Nil | N of node

and node = { key : int; forward : link Tvar.t array }

type t = {
  head : link Tvar.t array;  (** head.(lvl) = first node at that level. *)
  level_seed : int Atomic.t;
}

let make_head max_level =
  if max_level < 1 || max_level > 30 then
    invalid_arg "Tskiplist: max_level in [1, 30]";
  Array.init max_level (fun _ -> Tvar.make Nil)

let create () =
  { head = make_head default_max_level; level_seed = Atomic.make 0x2545F491 }

let create_sized ?max_level ~expect () =
  let ml = match max_level with Some l -> l | None -> level_for ~expect in
  { head = make_head ml; level_seed = Atomic.make 0x2545F491 }

let level_cap t = Array.length t.head

(* Geometric level in [1, level_cap]: count trailing ones of a hashed
   counter (p = 1/2 per level). *)
let random_level t =
  let max_level = level_cap t in
  let x = Atomic.fetch_and_add t.level_seed 0x61c88647 in
  let h = x * 0x45d9f3b in
  let h = (h lxor (h lsr 16)) * 0x45d9f3b in
  let h = h lxor (h lsr 16) in
  let rec count l h = if l >= max_level || h land 1 = 0 then l else count (l + 1) (h lsr 1) in
  max 1 (count 0 h + 1) |> min max_level

(* Collect, for each level, the slot (pointer tvar) whose content is
   the first link with key >= k; the search descends through
   predecessor nodes in the usual skiplist fashion.  The predecessor
   found at level l necessarily reaches level l, so indexing its
   forward array at l-1 is safe. *)
let find_slots tx t k : link Tvar.t array * link =
  let max_level = level_cap t in
  let slots = Array.make max_level t.head.(0) in
  let pred = ref None in
  for lvl = max_level - 1 downto 0 do
    let slot =
      ref (match !pred with None -> t.head.(lvl) | Some n -> n.forward.(lvl))
    in
    let continue = ref true in
    while !continue do
      match Stm.read tx !slot with
      | N ({ key; forward } as n) when key < k ->
          pred := Some n;
          slot := forward.(lvl)
      | Nil | N _ -> continue := false
    done;
    slots.(lvl) <- !slot
  done;
  (slots, Stm.read tx slots.(0))

let member tx t k =
  match find_slots tx t k with
  | _, N { key; _ } -> key = k
  | _, Nil -> false

let insert tx t k =
  let slots, found = find_slots tx t k in
  match found with
  | N { key; _ } when key = k -> false
  | _ ->
      let lvl = random_level t in
      let forward = Array.init lvl (fun i -> Tvar.make (Stm.read tx slots.(i))) in
      let node = N { key = k; forward } in
      for i = 0 to lvl - 1 do
        Stm.write tx slots.(i) node
      done;
      true

let remove tx t k =
  let slots, found = find_slots tx t k in
  match found with
  | N { key; forward } when key = k ->
      let lvl = Array.length forward in
      for i = 0 to lvl - 1 do
        (* The slot at level i points at our node iff the node reaches
           that level; splice it out. *)
        match Stm.read tx slots.(i) with
        | N { key = key'; _ } when key' = k -> Stm.write tx slots.(i) (Stm.read tx forward.(i))
        | _ -> ()
      done;
      true
  | _ -> false

(** Ascending keys >= [lo], at most [len] of them — the ordered range
    scan backing the service layer's scan transactions.  Costs one
    O(log n) descent plus [len] level-0 hops. *)
let range tx t ~lo ~len =
  if len <= 0 then []
  else begin
    let _, first = find_slots tx t lo in
    let rec go link k acc =
      if k = 0 then List.rev acc
      else
        match link with
        | Nil -> List.rev acc
        | N { key; forward } -> go (Stm.read tx forward.(0)) (k - 1) (key :: acc)
    in
    go first len []
  end

let to_list tx t =
  let rec go link acc =
    match link with
    | Nil -> List.rev acc
    | N { key; forward } -> go (Stm.read tx forward.(0)) (key :: acc)
  in
  go (Stm.read tx t.head.(0)) []

(** Bulk-build from strictly ascending [keys] into an {e empty, not
    yet published} structure — no transactions, no commits: the node
    chain is stitched with {!Tvar.unsafe_init}, which is only sound
    before any concurrent transaction can observe the structure.
    Node levels come from the same deterministic stream as
    transactional inserts, so a preloaded structure is
    indistinguishable (level-for-level) from one built by inserting
    the same keys in order.
    @raise Invalid_argument if the structure is non-empty or [keys]
    is not strictly ascending. *)
let unsafe_preload t keys =
  (match Tvar.peek t.head.(0) with
  | N _ -> invalid_arg "Tskiplist.unsafe_preload: structure not empty"
  | Nil -> ());
  let n = Array.length keys in
  for i = 1 to n - 1 do
    if keys.(i) <= keys.(i - 1) then
      invalid_arg "Tskiplist.unsafe_preload: keys must be strictly ascending"
  done;
  let max_level = level_cap t in
  (* Levels are drawn in ascending-key order (the stream equivalence
     with transactional inserts), but nodes are built highest key
     first: building right-to-left means every forward pointer's final
     target is known at node construction, so each link costs one
     [Tvar.make] instead of a placeholder plus a restitch — on a
     million-key preload that halves the locator allocations. *)
  let levels = Array.make n 0 in
  for i = 0 to n - 1 do
    levels.(i) <- random_level t
  done;
  (* nexts.(l): the first already-built node reaching level l — the
     successor the next (lower-keyed) node links to. *)
  let nexts = Array.make max_level Nil in
  for i = n - 1 downto 0 do
    let lvl = levels.(i) in
    let forward = Array.init lvl (fun l -> Tvar.make nexts.(l)) in
    let node = N { key = keys.(i); forward } in
    for l = 0 to lvl - 1 do
      nexts.(l) <- node
    done
  done;
  for l = 0 to max_level - 1 do
    match nexts.(l) with
    | Nil -> ()
    | node -> Tvar.unsafe_init t.head.(l) node
  done

(** Per-level node counts ([counts.(l)] = nodes whose tower height is
    [l + 1]), read non-transactionally via {!Tvar.peek} — a debugging /
    test probe for the level distribution; racy under concurrent
    writers. *)
let level_counts t =
  let counts = Array.make (level_cap t) 0 in
  let rec go link =
    match link with
    | Nil -> ()
    | N { forward; _ } ->
        let l = Array.length forward - 1 in
        counts.(l) <- counts.(l) + 1;
        go (Tvar.peek forward.(0))
  in
  go (Tvar.peek t.head.(0));
  counts
