(** Shared distribution samplers, re-exported from
    {!Tcm_dist.Samplers}: the canonical [tcm.workload] Zipf(θ) and
    Poisson samplers.  The implementation sits in [tcm_dist] so the
    simulator (which this library depends on) can draw scenario skew
    from the very same distribution. *)

include Tcm_dist.Samplers
