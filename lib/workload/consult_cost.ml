(** Consult-path cost probe: ns and GC minor words per [resolve], per
    manager × backend.

    The measurement core behind [bench/consult_cost.exe] (the
    @cm-smoke gate) and [bench --consult].  Each row drives one
    manager instance exactly as the runtimes do — [begin_attempt],
    enough [opened] events to push the STO-style adaptive manager past
    its timid threshold, then a tight loop of backend [consult] calls
    with cycling attempt counts — and reports the per-resolve latency
    and minor-heap allocation from [Gc.quick_stat] deltas around the
    loop.  Everything runs on one domain, so the single-domain GC
    counters are exact.

    Rows exist for both STM backends (whose [consult] entry points are
    distinct code paths) and for the simulator's policy table, which
    shares the allocation discipline.  The gates in {!check} are the
    teeth: at most {!max_minor_words} minor words per resolve (i.e.
    zero, with room for measurement noise), an absolute latency
    ceiling, and a flatness band across managers of the same backend —
    a manager whose consult is an order of magnitude off its peers has
    smuggled work onto the decision path. *)

open Tcm_stm

type row = {
  manager : string;
  backend : string;  (** "locator", "tl2" or "sim". *)
  ns_per_resolve : float;
  minor_words_per_resolve : float;
}

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

let max_minor_words = 0.01
(** Per-resolve minor-words budget: the discipline is zero; the slack
    only absorbs one-off allocations amortised over the loop. *)

let max_ns = 2_000.
(** Absolute per-resolve latency ceiling — generous, catches only
    pathology (a syscall or a table rebuild on the decision path). *)

let flatness_ratio = 16.
(** Within one backend, slowest / fastest manager bound. *)

let flatness_floor_ns = 30.
(** Managers cheaper than this are clamped to it before the flatness
    ratio, so sub-noise differences between trivial managers don't
    trip the band. *)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* Opens driven before measuring: past Sto_adaptive.ts_threshold, so
   the adaptive manager is measured in its fight phase (the phase with
   actual work on the path). *)
let warm_opens = 12

let sink = ref 0

let measure_loop ~iters f =
  f (max 1 (iters / 10));
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f iters;
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  ( (t1 -. t0) /. float_of_int iters *. 1e9,
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int iters )

(* A conflict pair the way the runtimes present one: [me] younger than
   [other] (so age-based managers exercise their non-trivial branch),
   both active, enemy not waiting, and the enemy carrying a real
   cm_stamp so the adaptive manager's fight phase reaches its
   randomized-wait arm rather than short-circuiting on the timid
   sentinel. *)
let conflict_pair () =
  let other = Txn.new_attempt (Txn.new_shared ()) in
  let me = Txn.new_attempt (Txn.new_shared ()) in
  Txn.set_cm_stamp other 1;
  (me, other)

let backend_consult = function
  | Stm.Locator -> Runtime.consult
  | Stm.Tl2_backend -> Tl2.consult

let measure_manager ~iters backend factory =
  let (Cm_intf.Packed ((module M), st) as packed) =
    Cm_intf.instantiate factory
  in
  let me, other = conflict_pair () in
  M.begin_attempt st me;
  for _ = 1 to warm_opens do
    M.opened st me
  done;
  let consult = backend_consult backend in
  let ns, minor =
    measure_loop ~iters (fun n ->
        for i = 1 to n do
          (* Cycle the attempt count through each manager's give-up
             branches; count verdicts into [sink] so the loop body
             cannot be considered dead. *)
          match consult packed ~me ~other ~attempts:(i land 3) with
          | Decision.Abort_other -> incr sink
          | _ -> ()
        done)
  in
  {
    manager = M.name;
    backend = Stm.backend_name backend;
    ns_per_resolve = ns;
    minor_words_per_resolve = minor;
  }

(* Sim rows: one cached view per party (as the engine keeps them),
   parameters chosen so age- and priority-based policies take their
   non-trivial branches and the adaptive analogue is in its fight
   phase on both sides. *)
let measure_policy ~iters (p : Tcm_sim.Policy.t) =
  let view id ts pri =
    {
      Tcm_sim.Policy.id;
      timestamp = ts;
      waiting = false;
      priority = ref pri;
      aborts = 2;
      opens = 20;
    }
  in
  let me = view 0 2 5 and other = view 1 1 6 in
  let ns, minor =
    measure_loop ~iters (fun n ->
        for i = 1 to n do
          match
            p.Tcm_sim.Policy.resolve ~me ~other ~attempts:(i land 3) ~now:i
          with
          | Tcm_sim.Policy.Abort_other -> incr sink
          | _ -> ()
        done)
  in
  {
    manager = p.Tcm_sim.Policy.name;
    backend = "sim";
    ns_per_resolve = ns;
    minor_words_per_resolve = minor;
  }

let measure_backend ?(iters = 200_000) backend =
  List.map (measure_manager ~iters backend) Tcm_core.Registry.all

let measure_sim ?(iters = 200_000) () =
  List.map (measure_policy ~iters) (Tcm_sim.Policy.all ~seed:42 ())

let measure_all ?iters () =
  measure_backend ?iters Stm.Locator
  @ measure_backend ?iters Stm.Tl2_backend
  @ measure_sim ?iters ()

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

(** Violation messages for the allocation, latency and flatness gates;
    empty means the discipline holds. *)
let check (rows : row list) : string list =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  List.iter
    (fun r ->
      if r.minor_words_per_resolve > max_minor_words then
        add "%s/%s: %.4f minor words per resolve (budget %.4f)" r.backend
          r.manager r.minor_words_per_resolve max_minor_words;
      if r.ns_per_resolve > max_ns then
        add "%s/%s: %.0f ns per resolve (ceiling %.0f)" r.backend r.manager
          r.ns_per_resolve max_ns)
    rows;
  let backends = List.sort_uniq compare (List.map (fun r -> r.backend) rows) in
  List.iter
    (fun b ->
      let band =
        List.filter_map
          (fun r ->
            if r.backend = b then Some (max flatness_floor_ns r.ns_per_resolve)
            else None)
          rows
      in
      match band with
      | [] -> ()
      | ns :: rest ->
          let lo = List.fold_left min ns rest
          and hi = List.fold_left max ns rest in
          if hi > lo *. flatness_ratio then
            add "%s: consult latency band not flat (%.0f..%.0f ns, ratio %.1f > %.1f)"
              b lo hi (hi /. lo) flatness_ratio)
    backends;
  List.rev !violations
