(** Consult-path cost probe: ns and GC minor words per [resolve], per
    manager × backend ("locator", "tl2", plus the simulator's policy
    table as backend "sim").  Measurement core shared by
    [bench/consult_cost.exe] (the @cm-smoke gate) and [bench
    --consult]; {!check} holds the gate thresholds. *)

type row = {
  manager : string;
  backend : string;  (** "locator", "tl2" or "sim". *)
  ns_per_resolve : float;
  minor_words_per_resolve : float;
}

val max_minor_words : float
val max_ns : float
val flatness_ratio : float
val flatness_floor_ns : float

val measure_backend : ?iters:int -> Tcm_stm.Stm.backend -> row list
(** One row per registered manager, driven through the given backend's
    [consult] entry point. *)

val measure_sim : ?iters:int -> unit -> row list
(** One row per simulator policy ([Tcm_sim.Policy.all]). *)

val measure_all : ?iters:int -> unit -> row list
(** Both backends, then the simulator. *)

val check : row list -> string list
(** Violation messages for the allocation (≤ {!max_minor_words} minor
    words/resolve), latency (≤ {!max_ns} ns) and per-backend flatness
    (≤ {!flatness_ratio} between slowest and fastest manager, after
    clamping to {!flatness_floor_ns}) gates; empty means all hold. *)
