(** Shared distribution samplers (re-export of
    {!Tcm_dist.Samplers}). *)

include module type of struct
  include Tcm_dist.Samplers
end
