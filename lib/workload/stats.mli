(** Statistics helpers (re-export of {!Tcm_dist.Stats}). *)

include module type of struct
  include Tcm_dist.Stats
end
