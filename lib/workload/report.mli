(** Plain-text rendering of figure sweeps, in the paper's layout
    (threads on the x-axis, one series per manager). *)

val float_to_string : float -> string

val print_figure : Format.formatter -> Figures.result -> unit

val winners : Figures.result -> (int * string) list
(** Best manager per thread count. *)

val print_kv_table :
  Format.formatter -> title:string -> (string * string) list -> unit

(** Minimal JSON document tree; [to_string] emits compact JSON with
    non-finite floats rendered as [null] (they have no JSON form —
    e.g. the [nan] an empty latency sample produces). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  exception Parse_error of string

  val of_string : string -> t
  (** Strict-JSON parser for the dialect {!to_string} emits, so the
      analyzer CLIs can re-read bench dumps without an external
      dependency.  @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on missing keys and non-objects. *)
end

val json_of_outcome : Harness.outcome -> Json.t
(** Throughput, p50/p99 latency and the full abort breakdown of one
    harness run. *)

val json_of_service_figure : Tcm_service.Service.summary -> Json.t
(** One open-loop service run as a figure entry ([kind = "service"]):
    per-class arrival-to-commit latency (queue time included), SLO
    attainment with sheds charged against the class, the abort /
    conflict deltas of the run, and (tcm-bench/5) the observability
    self-description: trace drops and whether metrics / trace were
    enabled. *)

val json_of_obs_figure :
  row:Tcm_obs.Ledger.row -> hot:Tcm_obs.Sketch.entry list -> Json.t
(** One conflict-attribution entry ([kind = "obs"]): a ledger family's
    priced wasted work plus its hottest conflict keys. *)

val json_of_consult_figure : Consult_cost.row -> Json.t
(** One consult-cost entry ([kind = "consult"]): ns and minor words
    per resolve for a (backend | "sim") × manager pair. *)

val json_of_ladder_figure : Tcm_service.Ladder.curve -> Json.t
(** One rate-ladder entry ([kind = "ladder"]): a (backend, manager)
    saturation sweep — per-rung offered rate, overall attainment,
    pooled p50/p99, sheds and shard spills — plus the detected knee
    (first rung under the 99% attainment threshold, [null] when every
    rung held). *)

val bench_schema : string
(** The schema the writer emits: ["tcm-bench/7"]. *)

val bench_schemas : string list
(** Every schema a reader must accept: tcm-bench/1 (original),
    /2 (adds GC words), /3 (adds the per-figure backend field),
    /4 (adds the per-figure "kind" discriminator and open-loop
    service figures), /5 (adds observability self-description on
    service figures and kind = "obs" attribution entries),
    /6 (adds kind = "consult" consult-cost microbench entries),
    /7 (adds kind = "ladder" saturation-sweep entries and pooled
    latency / spill / generator-allocation fields on service
    entries). *)

val bench_schema_of : Json.t -> (string, string) result
(** Validate a parsed bench dump's schema header.  [Error _] when the
    [schema] field is missing, not a string, or names a version not in
    {!bench_schemas} — readers must refuse such documents rather than
    misrender half-recognized fields. *)

val bench_json :
  ?extra:(string * Json.t) list ->
  ?service_figures:Tcm_service.Service.summary list ->
  ?obs_figures:(Tcm_obs.Ledger.row * Tcm_obs.Sketch.entry list) list ->
  ?consult_figures:Consult_cost.row list ->
  ?ladder_figures:Tcm_service.Ladder.curve list ->
  mode:string ->
  duration_s:float ->
  seed:int ->
  (Figures.spec * string * Figures.detailed_row list) list ->
  string
(** The bench's machine-readable dump ([--json FILE]): schema header
    plus one entry per (figure, backend-name) pair with
    per-thread-count, per-manager outcomes; [service_figures] append
    open-loop service entries, [obs_figures] conflict-attribution
    entries, [consult_figures] consult-cost entries and
    [ladder_figures] rate-ladder curves to the same figures array. *)
