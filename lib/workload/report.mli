(** Plain-text rendering of figure sweeps, in the paper's layout
    (threads on the x-axis, one series per manager). *)

val float_to_string : float -> string

val print_figure : Format.formatter -> Figures.result -> unit

val winners : Figures.result -> (int * string) list
(** Best manager per thread count. *)

val print_kv_table :
  Format.formatter -> title:string -> (string * string) list -> unit

(** Minimal JSON document tree; [to_string] emits compact JSON with
    non-finite floats rendered as [null] (they have no JSON form —
    e.g. the [nan] an empty latency sample produces). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  exception Parse_error of string

  val of_string : string -> t
  (** Strict-JSON parser for the dialect {!to_string} emits, so the
      analyzer CLIs can re-read bench dumps without an external
      dependency.  @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on missing keys and non-objects. *)
end

val json_of_outcome : Harness.outcome -> Json.t
(** Throughput, p50/p99 latency and the full abort breakdown of one
    harness run. *)

val bench_json :
  ?extra:(string * Json.t) list ->
  mode:string ->
  duration_s:float ->
  seed:int ->
  (Figures.spec * Figures.detailed_row list) list ->
  string
(** The bench's machine-readable dump ([--json FILE]): schema header
    plus one entry per figure with per-thread-count, per-manager
    outcomes. *)
