(** Real-thread benchmark harness.

    Reproduces the paper's experimental setup on the live STM: a number
    of threads (OCaml domains) continuously insert and remove elements
    taken from a small set of integers, forcing contention, with a
    configurable update rate and an optional uncontended computation at
    the end of each transaction (the paper's Figure 3 "low contention"
    variant).  Reported metric: committed transactions per second. *)

open Tcm_stm

type structure = List_s | Skiplist_s | Rbtree_s | Rbforest_s

let structure_name = function
  | List_s -> "list"
  | Skiplist_s -> "skiplist"
  | Rbtree_s -> "rbtree"
  | Rbforest_s -> "rbforest"

let structure_of_name = function
  | "list" -> List_s
  | "skiplist" -> Skiplist_s
  | "rbtree" -> Rbtree_s
  | "rbforest" -> Rbforest_s
  | s -> invalid_arg (Printf.sprintf "unknown structure %S" s)

type config = {
  structure : structure;
  manager : Cm_intf.factory;
  threads : int;
  duration_s : float;
  key_range : int;  (** The paper uses 256. *)
  update_pct : int;  (** The paper uses 100. *)
  post_work : int;
      (** Iterations of computation unrelated to the transaction,
          performed inside the transaction after its accesses — the
          paper's low-contention tail (Figure 3). *)
  prefill : int;  (** Keys inserted before measuring (half-full set). *)
  seed : int;
  read_mode : Runtime.read_mode;
  backend : Stm.backend;
      (** Which runtime executes the workload: the obstruction-free
          locator STM or the lock-based TL2-style STM.  Structures are
          created fresh per run, so the single-backend-per-variable
          rule holds by construction. *)
}

let default =
  {
    structure = List_s;
    manager = (module Tcm_core.Greedy : Cm_intf.S);
    threads = 2;
    duration_s = 0.25;
    key_range = 256;
    update_pct = 100;
    post_work = 0;
    prefill = 128;
    seed = 42;
    read_mode = `Visible;
    backend = Stm.Locator;
  }

type outcome = {
  commits : int;
  aborts : int;
  conflicts : int;
  throughput : float;  (** Committed transactions per second. *)
  per_thread : int array;
  elapsed_s : float;
  latency_p50_us : float;  (** Median transaction latency, sampled. *)
  latency_p99_us : float;
      (** Tail latency: where contention-manager fairness shows up. *)
  minor_words : float;
      (** Minor-heap words allocated by the worker domains during the
          measurement window ([Gc.quick_stat] deltas, summed — the
          counters are per-domain in OCaml 5).  Divide by [commits]
          for the allocation cost per committed transaction. *)
  major_words : float;  (** Major-heap words, same accounting. *)
  stats : Tcm_stm.Runtime.stats_snapshot;
      (** Full runtime counters (enemy/self aborts, blocks, backoffs)
          for detailed reporting, e.g. the bench's JSON dump. *)
}

(* Sample every k-th operation's latency to keep overhead negligible. *)
let latency_sample_period = 16

let make_ops structure : Tcm_structures.Intset.ops =
  let module I = Tcm_structures.Intset in
  match structure with
  | List_s -> I.ops_of (module Tcm_structures.Tlist) (Tcm_structures.Tlist.create ())
  | Skiplist_s -> I.ops_of (module Tcm_structures.Tskiplist) (Tcm_structures.Tskiplist.create ())
  | Rbtree_s -> I.ops_of (module Tcm_structures.Trbtree) (Tcm_structures.Trbtree.create ())
  | Rbforest_s -> Tcm_structures.Trbforest.ops (Tcm_structures.Trbforest.create ())

(* Opaque spin so the compiler cannot drop the low-contention tail. *)
let sink = Atomic.make 0

let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i land 7)
  done;
  if !acc = -1 then Atomic.incr sink

(* Polling granularity for the measurement wait: fine enough for the
   metrics sampler's windows, coarse enough to stay out of the way. *)
let poll_step_s = 0.01

let run ?poll (cfg : config) : outcome =
  let config = { Runtime.default_config with read_mode = cfg.read_mode } in
  let rt = Stm.create ~config ~backend:cfg.backend cfg.manager in
  let ops = make_ops cfg.structure in
  (* Prefill with every other key so inserts and removes both hit. *)
  let prefill_rng = Splitmix.create cfg.seed in
  for k = 0 to cfg.prefill - 1 do
    let key = k * 2 mod cfg.key_range in
    ignore
      (Stm.atomically rt (fun tx ->
           ops.Tcm_structures.Intset.insert tx ~key
             ~r:(Splitmix.int prefill_rng max_int)))
  done;
  let stop = Atomic.make false in
  let per_thread = Array.make cfg.threads 0 in
  let latencies = Array.make cfg.threads [] in
  let minor_w = Array.make cfg.threads 0. in
  let major_w = Array.make cfg.threads 0. in
  let body tid () =
    let g0 = Gc.quick_stat () in
    let rng = Splitmix.create (cfg.seed + (tid * 7919) + 1) in
    let count = ref 0 in
    let samples = ref [] in
    while not (Atomic.get stop) do
      let key = Splitmix.int rng cfg.key_range in
      let r = Splitmix.int rng max_int in
      let updating = Splitmix.int rng 100 < cfg.update_pct in
      let inserting = Splitmix.bool rng in
      let sampling = !count mod latency_sample_period = 0 in
      let t0 = if sampling then Unix.gettimeofday () else 0. in
      ignore
        (Stm.atomically rt (fun tx ->
             let res =
               if not updating then ops.Tcm_structures.Intset.member tx ~key ~r
               else if inserting then ops.Tcm_structures.Intset.insert tx ~key ~r
               else ops.Tcm_structures.Intset.remove tx ~key ~r
             in
             if cfg.post_work > 0 then spin cfg.post_work;
             res));
      if sampling then samples := (Unix.gettimeofday () -. t0) *. 1e6 :: !samples;
      incr count
    done;
    per_thread.(tid) <- !count;
    latencies.(tid) <- !samples;
    let g1 = Gc.quick_stat () in
    minor_w.(tid) <- g1.Gc.minor_words -. g0.Gc.minor_words;
    major_w.(tid) <- g1.Gc.major_words -. g0.Gc.major_words
  in
  let t0 = Unix.gettimeofday () in
  let doms = List.init cfg.threads (fun tid -> Domain.spawn (body tid)) in
  (match poll with
  | None -> Unix.sleepf cfg.duration_s
  | Some poll ->
      (* Poll from the driver thread so samplers see throughput evolve
         without a background thread of their own. *)
      let deadline = t0 +. cfg.duration_s in
      let rec loop () =
        let left = deadline -. Unix.gettimeofday () in
        if left > 0. then begin
          Unix.sleepf (Float.min poll_step_s left);
          poll ();
          loop ()
        end
      in
      loop ());
  Atomic.set stop true;
  List.iter Domain.join doms;
  let elapsed = Unix.gettimeofday () -. t0 in
  let s = Stm.stats rt in
  let commits = Array.fold_left ( + ) 0 per_thread in
  let all_latencies = Array.fold_left (fun acc l -> List.rev_append l acc) [] latencies in
  let wx =
    Tcm_metrics.Conventions.for_workload
      ~workload:(structure_name cfg.structure)
      ~manager:(Cm_intf.name cfg.manager)
  in
  Tcm_metrics.Conventions.workload_outcome wx ~commits ~aborts:s.Runtime.n_aborts
    ~conflicts:s.Runtime.n_conflicts
    ~elapsed_us:(int_of_float (elapsed *. 1e6));
  {
    commits;
    aborts = s.Runtime.n_aborts;
    conflicts = s.Runtime.n_conflicts;
    throughput = float_of_int commits /. elapsed;
    per_thread;
    elapsed_s = elapsed;
    latency_p50_us = Stats.percentile 50. all_latencies;
    latency_p99_us = Stats.percentile 99. all_latencies;
    minor_words = Array.fold_left ( +. ) 0. minor_w;
    major_words = Array.fold_left ( +. ) 0. major_w;
    stats = s;
  }
