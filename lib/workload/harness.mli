(** Real-thread benchmark harness: N OCaml domains continuously insert
    and remove elements from a small key set (the paper's setup),
    reporting committed transactions per second. *)

open Tcm_stm

type structure = List_s | Skiplist_s | Rbtree_s | Rbforest_s

val structure_name : structure -> string

val structure_of_name : string -> structure
(** @raise Invalid_argument on unknown names. *)

type config = {
  structure : structure;
  manager : Cm_intf.factory;
  threads : int;
  duration_s : float;
  key_range : int;  (** The paper uses 256. *)
  update_pct : int;  (** The paper uses 100. *)
  post_work : int;
      (** Unrelated computation inside the transaction after its
          accesses — the Figure 3 low-contention tail. *)
  prefill : int;
  seed : int;
  read_mode : Runtime.read_mode;
  backend : Stm.backend;
      (** Which runtime executes the workload (defaults to the
          locator STM); structures are created fresh per run, so the
          single-backend-per-variable rule holds by construction. *)
}

val default : config

type outcome = {
  commits : int;
  aborts : int;
  conflicts : int;
  throughput : float;  (** Committed transactions per second. *)
  per_thread : int array;
  elapsed_s : float;
  latency_p50_us : float;  (** Median sampled transaction latency. *)
  latency_p99_us : float;  (** Tail latency (fairness indicator). *)
  minor_words : float;
      (** Minor-heap words allocated by the worker domains during the
          window (per-domain [Gc.quick_stat] deltas, summed); divide
          by [commits] for the per-transaction allocation cost. *)
  major_words : float;  (** Major-heap words, same accounting. *)
  stats : Runtime.stats_snapshot;  (** Full runtime counters. *)
}

val make_ops : structure -> Tcm_structures.Intset.ops
(** A fresh instance of the structure with its operation closures. *)

val run : ?poll:(unit -> unit) -> config -> outcome
(** [?poll] is called from the driver thread every ~10 ms during the
    measurement window — hook for {!Tcm_metrics.Sampler.poll} so
    throughput-over-time windows can be cut without a background
    thread. *)
