(** Plain-text rendering of figure sweeps and theory tables, printed in
    the same layout as the paper's plots (threads on the x-axis, one
    series per contention manager). *)

let float_to_string v =
  if v >= 10_000. then Printf.sprintf "%.0f" v
  else if v >= 100. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let print_figure fmt (r : Figures.result) =
  let mode_label =
    match r.Figures.mode with
    | Figures.Real { duration_s } -> Printf.sprintf "real, %.2fs per point" duration_s
    | Figures.Sim { horizon } -> Printf.sprintf "sim, %d ticks per point" horizon
  in
  Format.fprintf fmt "== %s: %s (%s; %s) ==@." r.Figures.spec.Figures.id
    r.Figures.spec.Figures.title mode_label r.Figures.unit_label;
  (match r.Figures.rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf fmt "%8s" "threads";
      List.iter (fun (name, _) -> Format.fprintf fmt " %12s" name) first.Figures.cells;
      Format.fprintf fmt "@.";
      List.iter
        (fun row ->
          Format.fprintf fmt "%8d" row.Figures.threads;
          List.iter
            (fun (_, v) -> Format.fprintf fmt " %12s" (float_to_string v))
            row.Figures.cells;
          Format.fprintf fmt "@.")
        r.Figures.rows);
  Format.fprintf fmt "@."

(** Winner per thread count — handy for eyeballing shape claims. *)
let winners (r : Figures.result) : (int * string) list =
  List.map
    (fun row ->
      let name, _ =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
          ("", neg_infinity) row.Figures.cells
      in
      (row.Figures.threads, name))
    r.Figures.rows

let print_kv_table fmt ~title rows =
  Format.fprintf fmt "== %s ==@." title;
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-40s %s@." k v) rows;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* JSON rendering (the bench's machine-readable trajectory dump)       *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* nan/inf have no JSON representation. *)
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
        else Buffer.add_string buf "null"
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf (Str k);
            Buffer.add_char buf ':';
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 4096 in
    emit buf t;
    Buffer.contents buf

  exception Parse_error of string

  (* Recursive-descent parser for the dialect [emit] writes (strict
     JSON; numbers with a '.', 'e' or 'E' become [Float], the rest
     [Int]).  Enough for the analyzer CLIs to re-read bench dumps
     without an external dependency. *)
  let of_string str =
    let n = String.length str in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then str.[!pos] else '\255' in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
    in
    let keyword w v =
      if !pos + String.length w <= n && String.sub str !pos (String.length w) = w then begin
        pos := !pos + String.length w;
        v
      end
      else fail (Printf.sprintf "expected %s" w)
    in
    let utf8 buf cp =
      (* Encode one code point; surrogate pairs are not recombined
         ([emit] never writes them — it only escapes C0 controls). *)
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match str.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape");
            (match str.[!pos] with
            | '"' -> Buffer.add_char buf '"'; incr pos
            | '\\' -> Buffer.add_char buf '\\'; incr pos
            | '/' -> Buffer.add_char buf '/'; incr pos
            | 'b' -> Buffer.add_char buf '\b'; incr pos
            | 'f' -> Buffer.add_char buf '\012'; incr pos
            | 'n' -> Buffer.add_char buf '\n'; incr pos
            | 'r' -> Buffer.add_char buf '\r'; incr pos
            | 't' -> Buffer.add_char buf '\t'; incr pos
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub str (!pos + 1) 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> utf8 buf cp
                | None -> fail "bad \\u escape");
                pos := !pos + 5
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char str.[!pos] do
        incr pos
      done;
      let tok = String.sub str start (!pos - start) in
      let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
      if floaty then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> keyword "null" Null
      | 't' -> keyword "true" (Bool true)
      | 'f' -> keyword "false" (Bool false)
      | '"' -> Str (parse_string ())
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  elems (v :: acc)
              | ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
          end
      | '{' ->
          incr pos;
          skip_ws ();
          if peek () = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let member () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec members acc =
              let kv = member () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  members (kv :: acc)
              | '}' ->
                  incr pos;
                  List.rev (kv :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | '-' | '0' .. '9' -> parse_number ()
      | '\255' -> fail "unexpected end of input"
      | c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let json_of_outcome (o : Harness.outcome) : Json.t =
  let s = o.Harness.stats in
  Json.Obj
    [
      ("throughput", Json.Float o.Harness.throughput);
      ("commits", Json.Int o.Harness.commits);
      ("aborts", Json.Int o.Harness.aborts);
      ("conflicts", Json.Int o.Harness.conflicts);
      ("latency_p50_us", Json.Float o.Harness.latency_p50_us);
      ("latency_p99_us", Json.Float o.Harness.latency_p99_us);
      (* tcm-bench/2: GC allocation during the measurement window
         (summed per-domain quick_stat deltas). *)
      ("minor_words", Json.Float o.Harness.minor_words);
      ("major_words", Json.Float o.Harness.major_words);
      ("enemy_aborts", Json.Int s.Tcm_stm.Runtime.n_enemy_aborts);
      ("self_aborts", Json.Int s.Tcm_stm.Runtime.n_self_aborts);
      ("blocks", Json.Int s.Tcm_stm.Runtime.n_blocks);
      ("backoffs", Json.Int s.Tcm_stm.Runtime.n_backoffs);
      ("elapsed_s", Json.Float o.Harness.elapsed_s);
    ]

let json_of_detailed_figure ~backend (spec : Figures.spec)
    (rows : Figures.detailed_row list) : Json.t =
  Json.Obj
    [
      ("id", Json.Str spec.Figures.id);
      ("title", Json.Str spec.Figures.title);
      (* tcm-bench/4: figure entries carry a "kind" discriminator so
         readers can tell closed-loop sweeps from open-loop service
         figures without sniffing fields. *)
      ("kind", Json.Str "sweep");
      (* tcm-bench/3: the runtime backend that executed this sweep
         ("locator" | "tl2").  One figure entry per (figure, backend)
         pair, so a dump can carry the head-to-head comparison. *)
      ("backend", Json.Str backend);
      ("structure", Json.Str (Harness.structure_name spec.Figures.structure));
      ("post_work", Json.Int spec.Figures.post_work);
      ( "rows",
        Json.Arr
          (List.map
             (fun (r : Figures.detailed_row) ->
               Json.Obj
                 [
                   ("threads", Json.Int r.Figures.d_threads);
                   ( "managers",
                     Json.Arr
                       (List.map
                          (fun (name, o) ->
                            match json_of_outcome o with
                            | Json.Obj kvs -> Json.Obj (("name", Json.Str name) :: kvs)
                            | j -> j)
                          r.Figures.outcomes) );
                 ])
             rows) );
    ]

let json_of_class_stats (c : Tcm_service.Service.class_stats) : Json.t =
  Json.Obj
    [
      ("class", Json.Str (Tcm_service.Sclass.name c.Tcm_service.Service.cls));
      ("submitted", Json.Int c.Tcm_service.Service.submitted);
      ("completed", Json.Int c.Tcm_service.Service.completed);
      ("dropped", Json.Int c.Tcm_service.Service.dropped);
      ("slo_us", Json.Float c.Tcm_service.Service.slo_us);
      ("slo_ok", Json.Int c.Tcm_service.Service.slo_ok);
      ("slo_attainment", Json.Float c.Tcm_service.Service.attainment);
      ("latency_p50_us", Json.Float c.Tcm_service.Service.p50_us);
      ("latency_p99_us", Json.Float c.Tcm_service.Service.p99_us);
      ("latency_mean_us", Json.Float c.Tcm_service.Service.mean_us);
    ]

(* tcm-bench/4: open-loop service figures — one entry per (backend,
   manager) pair, per-class latency measured arrival-to-commit with
   queue time included, and SLO attainment charged for sheds. *)
let json_of_service_figure (s : Tcm_service.Service.summary) : Json.t =
  let open Tcm_service.Service in
  Json.Obj
    [
      ("id", Json.Str "service-kv");
      ("title", Json.Str "open-loop transactional KV service");
      ("kind", Json.Str "service");
      ("backend", Json.Str s.backend);
      ("manager", Json.Str s.manager);
      ("process", Json.Str s.process);
      ("submitted", Json.Int s.submitted);
      ("completed", Json.Int s.completed);
      ("dropped", Json.Int s.dropped);
      ("aborts", Json.Int s.aborts);
      ("conflicts", Json.Int s.conflicts);
      ("elapsed_s", Json.Float s.elapsed_s);
      ("throughput", Json.Float s.throughput);
      ("offered", Json.Float s.offered);
      (* tcm-bench/7: pooled latency, shard-spill count and generator
         allocation per request. *)
      ("latency_p50_us", Json.Float s.p50_us);
      ("latency_p99_us", Json.Float s.p99_us);
      ("queue_high_water", Json.Int s.queue_high_water);
      ("queue_spills", Json.Int s.queue_spills);
      ("gen_minor_words_per_req", Json.Float s.gen_minor_words_per_req);
      (* tcm-bench/5: every service figure is self-describing about
         observability overhead — which layers were live and how many
         trace events the rings dropped. *)
      ("trace_drops", Json.Int s.trace_drops);
      ("metrics_enabled", Json.Bool s.metrics_on);
      ("trace_enabled", Json.Bool s.trace_on);
      ("classes", Json.Arr (List.map json_of_class_stats s.classes));
    ]

(* tcm-bench/5: conflict-attribution figures from tcm.obs — one entry
   per ledger family, wasted work priced in Alistarh et al.'s cost
   model plus the family's hottest conflict keys from the
   space-saving sketches. *)
let json_of_obs_figure ~(row : Tcm_obs.Ledger.row)
    ~(hot : Tcm_obs.Sketch.entry list) : Json.t =
  Json.Obj
    [
      ("id", Json.Str "obs-attribution");
      ("title", Json.Str "priced wasted-work attribution");
      ("kind", Json.Str "obs");
      ("backend", Json.Str row.Tcm_obs.Ledger.backend);
      ("manager", Json.Str row.Tcm_obs.Ledger.manager);
      ("runtime", Json.Str row.Tcm_obs.Ledger.runtime);
      ("class", Json.Str row.Tcm_obs.Ledger.cls);
      ("commits", Json.Int row.Tcm_obs.Ledger.commits);
      ("aborts", Json.Int row.Tcm_obs.Ledger.aborts);
      ("useful_work", Json.Int row.Tcm_obs.Ledger.useful_work);
      ("wasted_work", Json.Int row.Tcm_obs.Ledger.wasted_work);
      ("waits", Json.Int row.Tcm_obs.Ledger.waits);
      ("wait_cost", Json.Int row.Tcm_obs.Ledger.wait_cost);
      ("wait_ticks", Json.Int row.Tcm_obs.Ledger.wait_ticks);
      ("price", Json.Int (Tcm_obs.Ledger.price row));
      ( "hot_keys",
        Json.Arr
          (List.map
             (fun (e : Tcm_obs.Sketch.entry) ->
               Json.Obj
                 [
                   ("key", Json.Int e.key);
                   ("count", Json.Int e.count);
                   ("err", Json.Int e.err);
                 ])
             hot) );
    ]

(* tcm-bench/6: consult-path microbench figures — one entry per
   (backend, manager), latency and minor-heap allocation per resolve
   from the consult-cost probe (backend "sim" rows cover the simulator
   policy table). *)
let json_of_consult_figure (r : Consult_cost.row) : Json.t =
  Json.Obj
    [
      ("id", Json.Str "consult-cost");
      ("title", Json.Str "consult-path cost per resolve");
      ("kind", Json.Str "consult");
      ("backend", Json.Str r.Consult_cost.backend);
      ("manager", Json.Str r.Consult_cost.manager);
      ("ns_per_resolve", Json.Float r.Consult_cost.ns_per_resolve);
      ( "minor_words_per_resolve",
        Json.Float r.Consult_cost.minor_words_per_resolve );
    ]

(* tcm-bench/7: overload-regime rate-ladder figures — one entry per
   (backend, manager) curve, one row per rung with the rung's offered
   rate, overall attainment and pooled p50/p99, plus the detected
   knee (first rung whose attainment fell under 99%). *)
let json_of_ladder_figure (c : Tcm_service.Ladder.curve) : Json.t =
  let open Tcm_service in
  Json.Obj
    [
      ("id", Json.Str "service-ladder");
      ("title", Json.Str "offered-load rate ladder (saturation sweep)");
      ("kind", Json.Str "ladder");
      ("backend", Json.Str c.Ladder.backend);
      ("manager", Json.Str c.Ladder.manager);
      ("knee_threshold", Json.Float Ladder.knee_threshold);
      ( "knee_rps",
        match c.Ladder.knee_rps with
        | Some r -> Json.Float r
        | None -> Json.Null );
      ( "rungs",
        Json.Arr
          (List.map
             (fun (r : Ladder.rung) ->
               let s = r.Ladder.summary in
               Json.Obj
                 [
                   ("offered_rps", Json.Float r.Ladder.offered_rps);
                   ("attainment", Json.Float (Ladder.attainment s));
                   ("submitted", Json.Int s.Service.submitted);
                   ("completed", Json.Int s.Service.completed);
                   ("dropped", Json.Int s.Service.dropped);
                   ("aborts", Json.Int s.Service.aborts);
                   ("throughput", Json.Float s.Service.throughput);
                   ("latency_p50_us", Json.Float s.Service.p50_us);
                   ("latency_p99_us", Json.Float s.Service.p99_us);
                   ("queue_high_water", Json.Int s.Service.queue_high_water);
                   ("queue_spills", Json.Int s.Service.queue_spills);
                   ( "gen_minor_words_per_req",
                     Json.Float s.Service.gen_minor_words_per_req );
                   ( "classes",
                     Json.Arr (List.map json_of_class_stats s.Service.classes)
                   );
                 ])
             c.Ladder.rungs) );
    ]

(* Schema lineage of the bench dump:
   - tcm-bench/1: throughput + latency + abort breakdown;
   - tcm-bench/2: adds per-window GC words (minor/major);
   - tcm-bench/3: adds the per-figure "backend" field (locator | tl2);
   - tcm-bench/4: figure entries carry a "kind" discriminator
     ("sweep" | "service") and service entries report per-class
     arrival-to-commit latency and SLO attainment;
   - tcm-bench/5: service entries are self-describing about
     observability (trace_drops, metrics_enabled, trace_enabled) and
     the dump may carry kind = "obs" conflict-attribution entries
     (per-family priced wasted work + hot-key list from tcm.obs);
   - tcm-bench/6: the dump may carry kind = "consult" entries — the
     consult-cost microbench's ns + minor words per resolve, per
     (backend | "sim") × manager;
   - tcm-bench/7: the dump may carry kind = "ladder" entries — the
     offered-load rate ladder per (backend, manager), one row per
     rung (attainment, pooled p50/p99, sheds, spills) plus the
     detected saturation knee; service entries additionally report
     pooled p50/p99, queue spills and generator allocation per
     request.
   Readers accept every shipped version; the writer always emits the
   newest. *)
let bench_schema = "tcm-bench/7"

let bench_schemas =
  [
    "tcm-bench/1";
    "tcm-bench/2";
    "tcm-bench/3";
    "tcm-bench/4";
    "tcm-bench/5";
    "tcm-bench/6";
    bench_schema;
  ]

let bench_schema_of (j : Json.t) : (string, string) result =
  match Json.member "schema" j with
  | None -> Error "missing \"schema\" field (not a bench dump?)"
  | Some (Json.Str s) when List.mem s bench_schemas -> Ok s
  | Some (Json.Str s) ->
      Error
        (Printf.sprintf "unknown schema %S (expected %s)" s
           (String.concat " or " bench_schemas))
  | Some _ -> Error "\"schema\" field is not a string"

(** The bench's machine-readable dump: per-figure live-STM sweeps with
    throughput, p50/p99 latency and the abort breakdown per manager,
    one figure entry per (figure, backend) pair.  [service_figures]
    are open-loop service summaries appended to the same "figures"
    array with [kind = "service"]; [obs_figures] are conflict-
    attribution entries appended with [kind = "obs"];
    [consult_figures] are consult-cost microbench rows appended with
    [kind = "consult"]; [ladder_figures] are rate-ladder curves
    appended with [kind = "ladder"].  [extra] lets the caller attach
    more top-level sections. *)
let bench_json ?(extra = []) ?(service_figures = []) ?(obs_figures = [])
    ?(consult_figures = []) ?(ladder_figures = []) ~mode ~duration_s ~seed
    (figures : (Figures.spec * string * Figures.detailed_row list) list) : string =
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.Str bench_schema);
          ("mode", Json.Str mode);
          ("duration_s_per_point", Json.Float duration_s);
          ("seed", Json.Int seed);
          ( "figures",
            Json.Arr
              (List.map
                 (fun (spec, backend, rows) -> json_of_detailed_figure ~backend spec rows)
                 figures
              @ List.map json_of_service_figure service_figures
              @ List.map (fun (row, hot) -> json_of_obs_figure ~row ~hot) obs_figures
              @ List.map json_of_consult_figure consult_figures
              @ List.map json_of_ladder_figure ladder_figures) );
        ]
       @ extra))
