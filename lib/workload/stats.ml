(** Statistics helpers, re-exported from {!Tcm_dist.Stats} so existing
    [Tcm_workload.Stats] callers keep working; the implementation lives
    in [tcm_dist] where the service layer (which must not depend on the
    workload library) can share it. *)

include Tcm_dist.Stats
