(** Parameter sweeps reproducing the paper's Figures 1–4 with the
    paper's manager line-up (greedy, karma, eruption, aggressive,
    backoff). *)

type mode =
  | Real of { duration_s : float }  (** Live STM on domains. *)
  | Sim of { horizon : int }  (** Deterministic simulation. *)

type spec = {
  id : string;
  title : string;
  structure : Harness.structure;
  post_work : int;
  sim_tail : int;
}

(** List application. *)
val fig1 : spec

(** Skiplist application. *)
val fig2 : spec

(** Red-black tree, low contention. *)
val fig3 : spec

(** Red-black forest. *)
val fig4 : spec
val all : spec list
val of_id : string -> spec option

val default_threads : int list

type row = { threads : int; cells : (string * float) list }

type result = {
  spec : spec;
  mode : mode;
  unit_label : string;
  rows : row list;
}

type detailed_row = { d_threads : int; outcomes : (string * Harness.outcome) list }
(** One thread count with the full per-manager outcome (latency
    percentiles, abort breakdown) — the raw material of the bench's
    JSON dump. *)

val run_real_detailed :
  ?threads_list:int list ->
  ?seed:int ->
  ?backend:Tcm_stm.Stm.backend ->
  duration_s:float ->
  spec ->
  detailed_row list
(** [backend] (default locator) selects the runtime executing the
    sweep; managers and access patterns are identical either way, so
    the same sweep run under both backends is the locator-vs-TL2
    head-to-head. *)

val run :
  ?threads_list:int list ->
  ?seed:int ->
  ?backend:Tcm_stm.Stm.backend ->
  mode:mode ->
  spec ->
  result
(** [backend] applies to [Real] mode only; the simulator models the
    locator protocol. *)
