(** Parameter sweeps reproducing the paper's Figures 1–4.

    Each figure sweeps thread counts for a fixed application and
    reports committed transactions per second (real mode) or per 1000
    simulated ticks (sim mode) for each contention manager.  The five
    managers plotted are the paper's: Greedy, Karma, Eruption,
    Aggressive and Backoff (Polite). *)

open Tcm_stm

type mode =
  | Real of { duration_s : float }
      (** Live STM on OCaml domains.  Wall-clock dependent; on a
          single-core host the curves flatten but relative manager
          behaviour under conflicts survives. *)
  | Sim of { horizon : int }
      (** Deterministic discrete-event simulation of the same access
          patterns; reproduces the paper's shapes hardware-
          independently. *)

type spec = {
  id : string;
  title : string;
  structure : Harness.structure;
  post_work : int;  (** Real mode: uncontended tail iterations. *)
  sim_tail : int;  (** Sim mode: uncontended tail ticks. *)
}

let fig1 = { id = "fig1"; title = "List application"; structure = Harness.List_s; post_work = 0; sim_tail = 0 }

let fig2 =
  { id = "fig2"; title = "Skiplist application"; structure = Harness.Skiplist_s; post_work = 0; sim_tail = 0 }

let fig3 =
  {
    id = "fig3";
    title = "Red-black application (low contention)";
    structure = Harness.Rbtree_s;
    post_work = 4_000;
    sim_tail = 20;
  }

let fig4 =
  {
    id = "fig4";
    title = "Red-black forest application";
    structure = Harness.Rbforest_s;
    post_work = 0;
    sim_tail = 0;
  }

let all = [ fig1; fig2; fig3; fig4 ]

let of_id id = List.find_opt (fun f -> String.equal f.id id) all

let default_threads = [ 1; 2; 4; 8; 16; 24; 32 ]

type row = { threads : int; cells : (string * float) list }

type result = {
  spec : spec;
  mode : mode;
  unit_label : string;
  rows : row list;
}

type detailed_row = { d_threads : int; outcomes : (string * Harness.outcome) list }

(* Managers for real mode; names are shared with sim policies. *)
let real_managers : Cm_intf.factory list = Tcm_core.Registry.paper_figures

let sim_policies ~seed () = Tcm_sim.Policy.paper_figures ~seed ()

(* Full per-manager outcomes (latency percentiles, abort breakdown);
   the throughput-only [run] below and the bench's JSON dump are both
   views of this sweep.  [backend] selects the runtime executing the
   workload (locator or TL2) — the managers, structures and access
   patterns are identical, so the sweep doubles as the head-to-head
   comparison of the two protocols. *)
let run_real_detailed ?(threads_list = default_threads) ?(seed = 42)
    ?(backend = Stm.Locator) ~duration_s (spec : spec) : detailed_row list =
  List.map
    (fun threads ->
      let outcomes =
        List.map
          (fun manager ->
            let cfg =
              {
                Harness.default with
                structure = spec.structure;
                manager;
                threads;
                duration_s;
                post_work = spec.post_work;
                seed;
                backend;
              }
            in
            (Cm_intf.name manager, Harness.run cfg))
          real_managers
      in
      { d_threads = threads; outcomes })
    threads_list

let run ?(threads_list = default_threads) ?(seed = 42) ?(backend = Stm.Locator)
    ~mode (spec : spec) : result =
  match mode with
  | Real { duration_s } ->
      let rows =
        List.map
          (fun { d_threads; outcomes } ->
            {
              threads = d_threads;
              cells = List.map (fun (name, o) -> (name, o.Harness.throughput)) outcomes;
            })
          (run_real_detailed ~threads_list ~seed ~backend ~duration_s spec)
      in
      { spec; mode; unit_label = "committed txns/sec"; rows }
  | Sim { horizon } ->
      let model = Sim_load.model_of_structure spec.structure in
      let rows =
        List.map
          (fun threads ->
            let cells =
              List.map
                (fun policy ->
                  let o =
                    Sim_load.run ~horizon ~seed ~tail:spec.sim_tail ~threads ~policy model
                  in
                  (policy.Tcm_sim.Policy.name, o.Sim_load.throughput))
                (sim_policies ~seed ())
            in
            { threads; cells })
          threads_list
      in
      { spec; mode; unit_label = "committed txns / 1000 ticks"; rows }
