(** Transaction classes of the service workload: point reads, ordered
    range scans and read-modify-writes, each with its own latency SLO
    and mix weight. *)

type t = Read | Scan | Rmw

val all : t array
val count : int
val index : t -> int
val name : t -> string
val of_name : string -> t option

(** Offered mix, by weight (need not sum to 1). *)
type mix = { read_w : float; scan_w : float; rmw_w : float }

val default_mix : mix
(** 80% point reads, 5% scans, 15% RMW. *)

val weights : mix -> float array
(** Indexed like {!all}. *)

val pick : mix -> Tcm_stm.Splitmix.t -> t
(** Weighted class draw (zero-weight classes never picked). *)

val default_slo_us : t -> float
(** Arrival-to-commit SLO target in microseconds. *)

val default_slos : float array
(** {!default_slo_us} indexed like {!all}. *)
