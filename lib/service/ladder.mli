(** Offered-load rate ladder over the service engine: one
    {!Service.run} per rung at a rising Poisson rate, overall
    SLO-attainment per rung, and knee detection (first rung under the
    99% threshold) — the attainment-vs-load and latency-degradation
    curves behind the overload-regime figures. *)

type rung = { offered_rps : float; summary : Service.summary }

type curve = {
  backend : string;
  manager : string;
  rungs : rung list;  (** Ascending offered-rate order. *)
  knee_rps : float option;
      (** First rung under {!knee_threshold}; [None] when every rung
          held its SLOs. *)
}

val knee_threshold : float
(** 0.99. *)

val attainment : Service.summary -> float
(** Overall SLO attainment, classes pooled (drops count as misses);
    [nan] when nothing was submitted. *)

val knee : rung list -> float option
(** First rung (ascending order assumed) whose attainment is below
    {!knee_threshold}. *)

val quick_rates : float array
(** 3-rung mini-ladder (8k / 64k / 512k rps) for smoke gates — the top
    rung sits well past single-host capacity. *)

val default_rates : float array
(** 6 rungs, 12k → 384k rps, crossing the knee mid-ladder. *)

val run : ?rates:float array -> Service.config -> curve
(** Run every rung with [cfg]'s arrival process replaced by a Poisson
    at the rung's rate; everything else held fixed. *)
