(** The offered-load rate ladder: run the service engine at a rising
    sequence of Poisson rates until both sides of the saturation knee
    are visible.

    Each rung is one full {!Service.run} at a fixed offered rate;
    attainment is the overall SLO attainment (all classes pooled,
    drops counted as misses).  The {e knee} is the first rung whose
    attainment falls below the threshold (99%) — below it the service
    keeps its SLOs, above it queueing delay and load shedding take
    over.  The paper's contention managers only differentiate past the
    knee, which is exactly the regime the single-mutex admission queue
    could never reach. *)

type rung = { offered_rps : float; summary : Service.summary }

type curve = {
  backend : string;
  manager : string;
  rungs : rung list;  (** In ascending offered-rate order. *)
  knee_rps : float option;
      (** First rung whose overall attainment dropped below
          {!knee_threshold}; [None] when every rung held. *)
}

let knee_threshold = 0.99

(** Overall SLO attainment of one summary: [Σ slo_ok / Σ submitted]
    across classes (drops miss by construction); [nan] when nothing
    was submitted. *)
let attainment (s : Service.summary) =
  let ok, sub =
    List.fold_left
      (fun (ok, sub) (c : Service.class_stats) -> (ok + c.slo_ok, sub + c.submitted))
      (0, 0) s.classes
  in
  if sub = 0 then nan else float_of_int ok /. float_of_int sub

(** First rung (ascending order assumed) whose attainment is below
    {!knee_threshold}. *)
let knee rungs =
  List.find_map
    (fun r ->
      let a = attainment r.summary in
      if (not (Float.is_nan a)) && a < knee_threshold then Some r.offered_rps
      else None)
    rungs

(* Rung sequences: both cross saturation comfortably on the reference
   single-socket host, where capacity sits near 10^5 rps (the knee
   lands mid-ladder for every backend × manager pair measured, so the
   curves show both the flat SLO-holding regime and the collapse). *)
let quick_rates = [| 8_000.; 64_000.; 512_000. |]
let default_rates =
  [| 12_000.; 24_000.; 48_000.; 96_000.; 192_000.; 384_000. |]

(** Run the ladder: [cfg] with its arrival process replaced by
    [Poisson rate] per rung, everything else (backend, manager,
    workers, store sizing, mix, SLOs, seed) held fixed. *)
let run ?(rates = default_rates) (cfg : Service.config) : curve =
  let rungs =
    Array.to_list rates
    |> List.map (fun rate ->
           let summary =
             Service.run { cfg with process = Arrival.Poisson { rate } }
           in
           { offered_rps = rate; summary })
  in
  {
    backend = Tcm_stm.Stm.backend_name cfg.backend;
    manager = Tcm_stm.Cm_intf.name cfg.manager;
    rungs;
    knee_rps = knee rungs;
  }
