(** Transaction classes of the service workload.

    Three classes cover the mixes the contention-manager question
    cares about: [Read] (point-get dominated, tiny read sets), [Scan]
    (long ordered range reads — the transactions that lose under
    kill-the-reader managers), and [Rmw] (read-modify-write on hot
    keys — the transactions that fight).  Each class carries its own
    latency SLO; the mix weights set the offered blend. *)

type t = Read | Scan | Rmw

let all = [| Read; Scan; Rmw |]
let count = Array.length all

let index = function Read -> 0 | Scan -> 1 | Rmw -> 2

let name = function Read -> "read" | Scan -> "scan" | Rmw -> "rmw"

let of_name = function
  | "read" -> Some Read
  | "scan" -> Some Scan
  | "rmw" -> Some Rmw
  | _ -> None

(** Offered mix, by weight (need not sum to 1). *)
type mix = { read_w : float; scan_w : float; rmw_w : float }

(** Read-heavy default: 80% point reads, 5% scans, 15% RMW. *)
let default_mix = { read_w = 0.80; scan_w = 0.05; rmw_w = 0.15 }

let weights mix = [| mix.read_w; mix.scan_w; mix.rmw_w |]

let pick mix rng : t =
  all.(Tcm_dist.Samplers.pick_weighted rng ~weights:(weights mix))

(** Default per-class arrival-to-commit SLO targets (us).  Scans are
    allowed an order of magnitude more than point reads. *)
let default_slo_us = function Read -> 2_000. | Scan -> 20_000. | Rmw -> 5_000.

let default_slos = Array.map default_slo_us all
