(** Transactional KV store: values in a {!Tcm_structures.Thashmap},
    ordered key index in a {!Tcm_structures.Tskiplist} for range
    scans.  Keyspace fixed at prefill ([0 .. n_keys - 1]). *)

open Tcm_stm

type t

val create : ?buckets:int -> n_keys:int -> unit -> t
(** Hashmap sized for [n_keys] at low occupancy ([buckets] overrides),
    skiplist level cap derived from [n_keys].
    @raise Invalid_argument on [n_keys < 1]. *)

val preload : t -> unit
(** Insert keys [0 .. n_keys - 1] (value = key) {e non-transactionally}
    — only sound on a fresh store before any worker can see it.  The
    fast path for million-key stores. *)

val prefill : Stm.runtime -> t -> unit
(** Insert keys [0 .. n_keys - 1] (value = key), batched into small
    transactions — the slow reference build {!preload} is checked
    against. *)

val n_keys : t -> int
val get : Stm.tx -> t -> int -> int option
val put : Stm.tx -> t -> int -> int -> unit

val rmw : Stm.tx -> t -> int -> (int option -> int option) -> unit
(** Atomic read-modify-write of one binding. *)

val scan : Stm.tx -> t -> lo:int -> len:int -> int * int
(** Up to [len] bindings from the smallest key >= [lo], in order;
    returns (bindings read, sum of values). *)
