(** The service engine: a user-scale transactional KV service driven
    by open-loop traffic.

    One generator domain schedules arrivals from an {!Arrival} process
    (Poisson or bursty), draws each request's class from the
    {!Sclass.mix} and its keys from the shared Zipf(θ) sampler, and
    pushes into a bounded {!Squeue}; [workers] domains pop and execute
    each request as one STM transaction against the {!Store}, on
    either runtime backend under any registered contention manager.

    Latency is measured arrival-to-commit — from the *scheduled*
    arrival time, not the dequeue time — so admission-queue delay is
    charged to the service and overload cannot hide behind a slowing
    generator (no coordinated omission).  A full queue sheds the
    request and counts it against the class's SLO attainment. *)

open Tcm_stm

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  cls : Sclass.t;
  arrival_s : float;  (** Scheduled arrival, seconds from run start. *)
  keys : int array;  (** Pre-drawn Zipf keys (scan: the start key). *)
}

(** Arrival-to-commit latency in microseconds, [now_s] in seconds from
    run start.  Clamped at 0 against clock slop. *)
let request_latency_us ~arrival_s ~now_s = Float.max 0. ((now_s -. arrival_s) *. 1e6)

(* ------------------------------------------------------------------ *)
(* Per-class accounting                                                *)
(* ------------------------------------------------------------------ *)

type class_stats = {
  cls : Sclass.t;
  submitted : int;  (** Generated: admitted + dropped. *)
  completed : int;
  dropped : int;
  slo_us : float;
  slo_ok : int;  (** Completed within the class SLO. *)
  attainment : float;
      (** [slo_ok /. submitted]: drops and over-SLO completions both
          miss.  [nan] when nothing was submitted. *)
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

(** Pure per-class aggregation, separated from the engine so the SLO
    arithmetic (queue time included, drops count as misses) is
    testable deterministically.  Each domain owns a private [t];
    results are merged after join. *)
module Agg = struct
  type t = {
    slo_us : float array;
    submitted : int array;
    dropped : int array;
    slo_ok : int array;
    lats : float list array;  (** Per-class completion latencies, us. *)
  }

  let create ~slo_us =
    if Array.length slo_us <> Sclass.count then
      invalid_arg "Service.Agg.create: one SLO per class";
    {
      slo_us = Array.copy slo_us;
      submitted = Array.make Sclass.count 0;
      dropped = Array.make Sclass.count 0;
      slo_ok = Array.make Sclass.count 0;
      lats = Array.make Sclass.count [];
    }

  let submit t c =
    let i = Sclass.index c in
    t.submitted.(i) <- t.submitted.(i) + 1

  let drop t c =
    let i = Sclass.index c in
    t.dropped.(i) <- t.dropped.(i) + 1

  let complete t c ~latency_us =
    let i = Sclass.index c in
    t.lats.(i) <- latency_us :: t.lats.(i);
    if latency_us <= t.slo_us.(i) then t.slo_ok.(i) <- t.slo_ok.(i) + 1

  let within_slo t c ~latency_us = latency_us <= t.slo_us.(Sclass.index c)

  let merge_into ~into src =
    for i = 0 to Sclass.count - 1 do
      into.submitted.(i) <- into.submitted.(i) + src.submitted.(i);
      into.dropped.(i) <- into.dropped.(i) + src.dropped.(i);
      into.slo_ok.(i) <- into.slo_ok.(i) + src.slo_ok.(i);
      into.lats.(i) <- List.rev_append src.lats.(i) into.lats.(i)
    done

  let class_stats t : class_stats list =
    Array.to_list
      (Array.map
         (fun c ->
           let i = Sclass.index c in
           let lats = t.lats.(i) in
           {
             cls = c;
             submitted = t.submitted.(i);
             completed = List.length lats;
             dropped = t.dropped.(i);
             slo_us = t.slo_us.(i);
             slo_ok = t.slo_ok.(i);
             attainment =
               (if t.submitted.(i) = 0 then nan
                else float_of_int t.slo_ok.(i) /. float_of_int t.submitted.(i));
             p50_us = Tcm_dist.Stats.percentile 50. lats;
             p99_us = Tcm_dist.Stats.percentile 99. lats;
             mean_us = Tcm_dist.Stats.mean lats;
           })
         Sclass.all)
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  backend : Stm.backend;
  manager : Cm_intf.factory;
  workers : int;
  duration_s : float;
  process : Arrival.process;
  queue_cap : int;
  n_keys : int;
  buckets : int option;  (** Hashmap sizing override (see Store). *)
  theta : float;  (** Zipf key skew, [0, 1). *)
  mix : Sclass.mix;
  reads_per_txn : int;  (** Point gets in one Read transaction. *)
  rmws_per_txn : int;  (** Increments in one Rmw transaction. *)
  scan_len : int;  (** Bindings per Scan transaction. *)
  slo_us : float array;  (** Per-class SLO, indexed like {!Sclass.all}. *)
  seed : int;
  flight : Tcm_obs.Flight.t option;
      (** SLO-breach flight recorder.  When set, the engine arms the
          [tcm.trace] rings for the run and reports every completion
          and shed to the recorder, which snapshots ring + ledger +
          hot-key bundles on breach. *)
}

let default =
  {
    backend = Stm.Locator;
    manager = (module Tcm_core.Greedy : Cm_intf.S);
    workers = 2;
    duration_s = 0.5;
    process = Arrival.Poisson { rate = 2_000. };
    queue_cap = 512;
    n_keys = 8_192;
    buckets = None;
    theta = 0.9;
    mix = Sclass.default_mix;
    reads_per_txn = 8;
    rmws_per_txn = 2;
    scan_len = 32;
    slo_us = Sclass.default_slos;
    seed = 42;
    flight = None;
  }

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  backend : string;
  manager : string;
  process : string;
  classes : class_stats list;
  submitted : int;
  completed : int;
  dropped : int;
  aborts : int;  (** STM aborts during the measurement (prefill excluded). *)
  conflicts : int;
  elapsed_s : float;
  throughput : float;  (** Completed requests per second. *)
  offered : float;  (** Generated requests per second. *)
  queue_high_water : int;
  trace_drops : int;  (** Ring-buffer drops during the run. *)
  metrics_on : bool;  (** Whether [tcm.metrics] was enabled. *)
  trace_on : bool;  (** Whether the [tcm.trace] rings were armed. *)
}

(* ------------------------------------------------------------------ *)
(* Transaction bodies                                                  *)
(* ------------------------------------------------------------------ *)

let execute rt store ~scan_len (req : request) =
  match req.cls with
  | Sclass.Read ->
      ignore
        (Stm.atomically rt (fun tx ->
             let acc = ref 0 in
             Array.iter
               (fun k ->
                 match Store.get tx store k with
                 | Some v -> acc := !acc + v
                 | None -> ())
               req.keys;
             !acc))
  | Sclass.Scan ->
      ignore
        (Stm.atomically rt (fun tx -> Store.scan tx store ~lo:req.keys.(0) ~len:scan_len))
  | Sclass.Rmw ->
      ignore
        (Stm.atomically rt (fun tx ->
             Array.iter
               (fun k ->
                 Store.rmw tx store k (function None -> Some 1 | Some v -> Some (v + 1)))
               req.keys;
             0))

let keys_for cfg cls zipf rng =
  let draw () = Tcm_dist.Samplers.Zipf.draw zipf rng in
  let n =
    match cls with
    | Sclass.Read -> max 1 cfg.reads_per_txn
    | Sclass.Scan -> 1
    | Sclass.Rmw -> max 1 cfg.rmws_per_txn
  in
  Array.init n (fun _ -> draw ())

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) : summary =
  Arrival.validate cfg.process;
  if cfg.workers < 1 then invalid_arg "Service.run: workers >= 1";
  if cfg.duration_s <= 0. then invalid_arg "Service.run: duration_s > 0";
  let rt = Stm.create ~backend:cfg.backend cfg.manager in
  let store = Store.create ?buckets:cfg.buckets ~n_keys:cfg.n_keys () in
  Store.prefill rt store;
  let s0 = Stm.stats rt in
  let mname = Cm_intf.name cfg.manager in
  let bname = Stm.backend_name cfg.backend in
  let mx =
    Array.map
      (fun c ->
        Tcm_metrics.Conventions.for_service ~backend:bname ~manager:mname
          ~cls:(Sclass.name c) ())
      Sclass.all
  in
  (* Obs class slots: the worker sets its domain's current slot around
     [execute], so ledger charges from inside the transaction land on
     the request's class. *)
  let obs_cls = Array.map (fun c -> Tcm_obs.Ledger.class_slot (Sclass.name c)) Sclass.all in
  (* A flight recorder needs the rings armed for the whole run; leave
     them armed at exit so the caller can flush a final bundle. *)
  (match cfg.flight with
  | Some _ when not (Tcm_trace.Sink.enabled ()) -> Tcm_trace.Sink.start ()
  | _ -> ());
  let trace_on = Tcm_trace.Sink.enabled () in
  let drops0 = if trace_on then Tcm_trace.Sink.drops () else 0 in
  let q : request Squeue.t = Squeue.create cfg.queue_cap in
  let gen_agg = Agg.create ~slo_us:cfg.slo_us in
  let worker_aggs = Array.init cfg.workers (fun _ -> Agg.create ~slo_us:cfg.slo_us) in
  let t0 = Unix.gettimeofday () in
  let generator () =
    let rng = Splitmix.create ((cfg.seed * 31) + 1) in
    let zipf = Tcm_dist.Samplers.Zipf.create ~n:cfg.n_keys ~theta:cfg.theta in
    let t = ref (Arrival.next cfg.process rng ~t:0.) in
    while !t < cfg.duration_s do
      (* Sleep until the scheduled arrival; when the generator itself
         runs late it pushes immediately and the schedule does not
         slip — the arrival clock is the process's, not ours. *)
      let wait = t0 +. !t -. Unix.gettimeofday () in
      if wait > 0. then Unix.sleepf wait;
      let cls = Sclass.pick cfg.mix rng in
      let keys = keys_for cfg cls zipf rng in
      Agg.submit gen_agg cls;
      Tcm_metrics.Conventions.service_request mx.(Sclass.index cls);
      if not (Squeue.try_push q { cls; arrival_s = !t; keys }) then begin
        Agg.drop gen_agg cls;
        Tcm_metrics.Conventions.service_drop mx.(Sclass.index cls);
        match cfg.flight with
        | Some f -> Tcm_obs.Flight.note_drop f
        | None -> ()
      end;
      t := Arrival.next cfg.process rng ~t:!t
    done
  in
  let worker wid () =
    let agg = worker_aggs.(wid) in
    let rec loop () =
      match Squeue.pop q with
      | None -> ()
      | Some req ->
          let ci = Sclass.index req.cls in
          if Tcm_obs.enabled () then Tcm_obs.Ledger.set_class obs_cls.(ci);
          execute rt store ~scan_len:cfg.scan_len req;
          if Tcm_obs.enabled () then Tcm_obs.Ledger.set_class 0;
          let now_s = Unix.gettimeofday () -. t0 in
          let lat = request_latency_us ~arrival_s:req.arrival_s ~now_s in
          Agg.complete agg req.cls ~latency_us:lat;
          let within = Agg.within_slo agg req.cls ~latency_us:lat in
          Tcm_metrics.Conventions.service_complete mx.(ci)
            ~latency_us:(int_of_float lat) ~within_slo:within;
          (match cfg.flight with
          | Some f ->
              Tcm_obs.Flight.note_completion f ~cls:(Sclass.name req.cls)
                ~within_slo:within
          | None -> ());
          loop ()
    in
    loop ()
  in
  let workers = List.init cfg.workers (fun wid -> Domain.spawn (worker wid)) in
  let gen = Domain.spawn generator in
  Domain.join gen;
  (* Admissions stop at the deadline; queued requests drain (their
     latency keeps accruing — late completions are still charged). *)
  Squeue.close q;
  List.iter Domain.join workers;
  let elapsed = Unix.gettimeofday () -. t0 in
  let s1 = Stm.stats rt in
  let total = Agg.create ~slo_us:cfg.slo_us in
  Agg.merge_into ~into:total gen_agg;
  Array.iter (fun a -> Agg.merge_into ~into:total a) worker_aggs;
  let classes = Agg.class_stats total in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 classes in
  let submitted = sum (fun c -> c.submitted) in
  let completed = sum (fun c -> c.completed) in
  let dropped = sum (fun c -> c.dropped) in
  {
    backend = bname;
    manager = mname;
    process = Arrival.describe cfg.process;
    classes;
    submitted;
    completed;
    dropped;
    aborts = s1.Runtime.n_aborts - s0.Runtime.n_aborts;
    conflicts = s1.Runtime.n_conflicts - s0.Runtime.n_conflicts;
    elapsed_s = elapsed;
    throughput = float_of_int completed /. elapsed;
    offered = float_of_int submitted /. elapsed;
    queue_high_water = Squeue.high_water q;
    trace_drops = (if trace_on then Tcm_trace.Sink.drops () - drops0 else 0);
    metrics_on = Tcm_metrics.enabled ();
    trace_on;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fnum v =
  if Float.is_nan v then "-"
  else if v >= 10_000. then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "%s/%s  %s: offered %.0f rps, served %.0f rps, dropped %d, aborts %d, queue-hw %d@."
    s.manager s.backend s.process s.offered s.throughput s.dropped s.aborts
    s.queue_high_water;
  List.iter
    (fun c ->
      Format.fprintf fmt
        "    %-5s submitted %6d completed %6d dropped %5d p50 %8s us p99 %8s us \
         slo %6.0f us attain %5.1f%%@."
        (Sclass.name c.cls) c.submitted c.completed c.dropped (fnum c.p50_us)
        (fnum c.p99_us) c.slo_us
        (100. *. if Float.is_nan c.attainment then 0. else c.attainment))
    s.classes
