(** The service engine: a user-scale transactional KV service driven
    by open-loop traffic.

    The whole run's traffic is {e precomputed} before any domain
    spawns: arrival times (via {!Arrival.schedule}), per-request
    classes and pre-drawn Zipf keys land in flat arrays, so the
    generator's hot loop is sleep-until-deadline, a couple of counter
    bumps, and an int push into the sharded {!Squeue} — nothing is
    allocated per request, and the generator can drive both backends
    past saturation.  [workers] domains each own one queue shard, pop
    request indices and execute each request as one STM transaction
    against the {!Store}, on either runtime backend under any
    registered contention manager.

    Latency is measured arrival-to-commit — from the *scheduled*
    arrival time, not the dequeue time — so admission-queue delay is
    charged to the service and overload cannot hide behind a slowing
    generator (no coordinated omission).  A full queue sheds the
    request and counts it against the class's SLO attainment. *)

open Tcm_stm

(** Arrival-to-commit latency in microseconds, [now_s] in seconds from
    run start.  Clamped at 0 against clock slop. *)
let request_latency_us ~arrival_s ~now_s = Float.max 0. ((now_s -. arrival_s) *. 1e6)

(* ------------------------------------------------------------------ *)
(* Per-class accounting                                                *)
(* ------------------------------------------------------------------ *)

type class_stats = {
  cls : Sclass.t;
  submitted : int;  (** Generated: admitted + dropped. *)
  completed : int;
  dropped : int;
  slo_us : float;
  slo_ok : int;  (** Completed within the class SLO. *)
  attainment : float;
      (** [slo_ok /. submitted]: drops and over-SLO completions both
          miss.  [nan] when nothing was submitted. *)
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

(** Pure per-class aggregation, separated from the engine so the SLO
    arithmetic (queue time included, drops count as misses) is
    testable deterministically.  Each domain owns a private [t];
    results are merged after join. *)
module Agg = struct
  type t = {
    slo_us : float array;
    submitted : int array;
    dropped : int array;
    slo_ok : int array;
    lats : float list array;  (** Per-class completion latencies, us. *)
  }

  let create ~slo_us =
    if Array.length slo_us <> Sclass.count then
      invalid_arg "Service.Agg.create: one SLO per class";
    {
      slo_us = Array.copy slo_us;
      submitted = Array.make Sclass.count 0;
      dropped = Array.make Sclass.count 0;
      slo_ok = Array.make Sclass.count 0;
      lats = Array.make Sclass.count [];
    }

  let submit t c =
    let i = Sclass.index c in
    t.submitted.(i) <- t.submitted.(i) + 1

  let drop t c =
    let i = Sclass.index c in
    t.dropped.(i) <- t.dropped.(i) + 1

  let complete t c ~latency_us =
    let i = Sclass.index c in
    t.lats.(i) <- latency_us :: t.lats.(i);
    if latency_us <= t.slo_us.(i) then t.slo_ok.(i) <- t.slo_ok.(i) + 1

  let within_slo t c ~latency_us = latency_us <= t.slo_us.(Sclass.index c)

  let merge_into ~into src =
    for i = 0 to Sclass.count - 1 do
      into.submitted.(i) <- into.submitted.(i) + src.submitted.(i);
      into.dropped.(i) <- into.dropped.(i) + src.dropped.(i);
      into.slo_ok.(i) <- into.slo_ok.(i) + src.slo_ok.(i);
      into.lats.(i) <- List.rev_append src.lats.(i) into.lats.(i)
    done

  (** Every completion latency, classes pooled — feeds the overall
      latency-degradation percentiles of the rate ladder. *)
  let all_lats t = Array.fold_left (fun acc l -> List.rev_append l acc) [] t.lats

  let class_stats t : class_stats list =
    Array.to_list
      (Array.map
         (fun c ->
           let i = Sclass.index c in
           let lats = t.lats.(i) in
           {
             cls = c;
             submitted = t.submitted.(i);
             completed = List.length lats;
             dropped = t.dropped.(i);
             slo_us = t.slo_us.(i);
             slo_ok = t.slo_ok.(i);
             attainment =
               (if t.submitted.(i) = 0 then nan
                else float_of_int t.slo_ok.(i) /. float_of_int t.submitted.(i));
             p50_us = Tcm_dist.Stats.percentile 50. lats;
             p99_us = Tcm_dist.Stats.percentile 99. lats;
             mean_us = Tcm_dist.Stats.mean lats;
           })
         Sclass.all)
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  backend : Stm.backend;
  manager : Cm_intf.factory;
  workers : int;
  duration_s : float;
  process : Arrival.process;
  queue_cap : int;
  n_keys : int;
  buckets : int option;  (** Hashmap sizing override (see Store). *)
  theta : float;  (** Zipf key skew, [0, 1). *)
  mix : Sclass.mix;
  reads_per_txn : int;  (** Point gets in one Read transaction. *)
  rmws_per_txn : int;  (** Increments in one Rmw transaction. *)
  scan_len : int;  (** Bindings per Scan transaction. *)
  slo_us : float array;  (** Per-class SLO, indexed like {!Sclass.all}. *)
  seed : int;
  flight : Tcm_obs.Flight.t option;
      (** SLO-breach flight recorder.  When set, the engine arms the
          [tcm.trace] rings for the run and reports every completion
          and shed to the recorder, which snapshots ring + ledger +
          hot-key bundles on breach. *)
}

let default =
  {
    backend = Stm.Locator;
    manager = (module Tcm_core.Greedy : Cm_intf.S);
    workers = 2;
    duration_s = 0.5;
    process = Arrival.Poisson { rate = 2_000. };
    queue_cap = 512;
    n_keys = 8_192;
    buckets = None;
    theta = 0.9;
    mix = Sclass.default_mix;
    reads_per_txn = 8;
    rmws_per_txn = 2;
    scan_len = 32;
    slo_us = Sclass.default_slos;
    seed = 42;
    flight = None;
  }

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  backend : string;
  manager : string;
  process : string;
  classes : class_stats list;
  submitted : int;
  completed : int;
  dropped : int;
  aborts : int;  (** STM aborts during the measurement (preload excluded). *)
  conflicts : int;
  elapsed_s : float;
  throughput : float;  (** Completed requests per second. *)
  offered : float;  (** Generated requests per second. *)
  p50_us : float;  (** Overall completion latency, classes pooled. *)
  p99_us : float;
  queue_high_water : int;  (** Max single-shard occupancy observed. *)
  queue_spills : int;
      (** Pushes that overflowed their round-robin shard onto the
          least-loaded one — the imbalance signature. *)
  gen_minor_words_per_req : float;
      (** Generator-domain minor words allocated per generated request
          (clock reads only on the precomputed-schedule path — a
          regression gate against per-request allocation creep). *)
  trace_drops : int;  (** Ring-buffer drops during the run. *)
  metrics_on : bool;  (** Whether [tcm.metrics] was enabled. *)
  trace_on : bool;  (** Whether the [tcm.trace] rings were armed. *)
}

(* ------------------------------------------------------------------ *)
(* The precomputed request schedule                                    *)
(* ------------------------------------------------------------------ *)

(* Flat arrays, one slot per request: arrival time, class index, and a
   [key_off]-delimited slice of the shared flat key array.  Workers
   and generator share it read-only, and a queued request is just its
   index. *)
type schedule = {
  times : float array;
  cls : int array;
  key_off : int array;  (** Length [n + 1]; request i's keys are
                            [keys.(key_off.(i)) .. keys.(key_off.(i+1) - 1)]. *)
  keys : int array;
}

let keys_per_class cfg ci =
  match Sclass.all.(ci) with
  | Sclass.Read -> max 1 cfg.reads_per_txn
  | Sclass.Scan -> 1
  | Sclass.Rmw -> max 1 cfg.rmws_per_txn

let build_schedule cfg =
  let rng = Splitmix.create ((cfg.seed * 31) + 1) in
  let zipf = Tcm_dist.Samplers.Zipf.create ~n:cfg.n_keys ~theta:cfg.theta in
  let times = Arrival.schedule cfg.process rng ~horizon:cfg.duration_s in
  let n = Array.length times in
  let cls = Array.make n 0 in
  let key_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let ci = Sclass.index (Sclass.pick cfg.mix rng) in
    cls.(i) <- ci;
    key_off.(i + 1) <- key_off.(i) + keys_per_class cfg ci
  done;
  let keys =
    Array.init key_off.(n) (fun _ -> Tcm_dist.Samplers.Zipf.draw zipf rng)
  in
  { times; cls; key_off; keys }

(* ------------------------------------------------------------------ *)
(* Transaction bodies                                                  *)
(* ------------------------------------------------------------------ *)

let execute rt store ~scan_len sched i =
  let lo = sched.key_off.(i) in
  let hi = sched.key_off.(i + 1) in
  match Sclass.all.(sched.cls.(i)) with
  | Sclass.Read ->
      ignore
        (Stm.atomically rt (fun tx ->
             let acc = ref 0 in
             for j = lo to hi - 1 do
               match Store.get tx store sched.keys.(j) with
               | Some v -> acc := !acc + v
               | None -> ()
             done;
             !acc))
  | Sclass.Scan ->
      ignore
        (Stm.atomically rt (fun tx ->
             Store.scan tx store ~lo:sched.keys.(lo) ~len:scan_len))
  | Sclass.Rmw ->
      ignore
        (Stm.atomically rt (fun tx ->
             for j = lo to hi - 1 do
               Store.rmw tx store sched.keys.(j) (function
                 | None -> Some 1
                 | Some v -> Some (v + 1))
             done;
             0))

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) : summary =
  Arrival.validate cfg.process;
  if cfg.workers < 1 then invalid_arg "Service.run: workers >= 1";
  if cfg.duration_s <= 0. then invalid_arg "Service.run: duration_s > 0";
  let rt = Stm.create ~backend:cfg.backend cfg.manager in
  let store = Store.create ?buckets:cfg.buckets ~n_keys:cfg.n_keys () in
  (* Direct preload: the store is not yet visible to any worker, so
     the non-transactional build is sound — and it is what makes
     million-key configurations practical. *)
  Store.preload store;
  let sched = build_schedule cfg in
  let n_requests = Array.length sched.times in
  let s0 = Stm.stats rt in
  let mname = Cm_intf.name cfg.manager in
  let bname = Stm.backend_name cfg.backend in
  let mx =
    Array.map
      (fun c ->
        Tcm_metrics.Conventions.for_service ~backend:bname ~manager:mname
          ~cls:(Sclass.name c) ())
      Sclass.all
  in
  let smx =
    Array.init cfg.workers (fun shard ->
        Tcm_metrics.Conventions.for_shard ~backend:bname ~manager:mname ~shard ())
  in
  (* Obs class slots: the worker sets its domain's current slot around
     [execute], so ledger charges from inside the transaction land on
     the request's class. *)
  let obs_cls = Array.map (fun c -> Tcm_obs.Ledger.class_slot (Sclass.name c)) Sclass.all in
  (* A flight recorder needs the rings armed for the whole run; leave
     them armed at exit so the caller can flush a final bundle. *)
  (match cfg.flight with
  | Some _ when not (Tcm_trace.Sink.enabled ()) -> Tcm_trace.Sink.start ()
  | _ -> ());
  let trace_on = Tcm_trace.Sink.enabled () in
  let drops0 = if trace_on then Tcm_trace.Sink.drops () else 0 in
  let q = Squeue.create ~shards:cfg.workers cfg.queue_cap in
  let gen_agg = Agg.create ~slo_us:cfg.slo_us in
  let worker_aggs = Array.init cfg.workers (fun _ -> Agg.create ~slo_us:cfg.slo_us) in
  (* Out-params written by the generator domain before it exits, read
     after join. *)
  let gen_minor_words = Array.make 1 0. in
  let gen_spills = Array.make 1 0 in
  let t0 = Unix.gettimeofday () in
  let generator () =
    let spills = ref 0 in
    let mw0 = Gc.minor_words () in
    for i = 0 to n_requests - 1 do
      (* Sleep until the scheduled arrival; when the generator itself
         runs late it pushes immediately and the schedule does not
         slip — the arrival clock is the process's, not ours. *)
      let wait = t0 +. sched.times.(i) -. Unix.gettimeofday () in
      if wait > 0. then Unix.sleepf wait;
      let ci = sched.cls.(i) in
      Agg.submit gen_agg Sclass.all.(ci);
      Tcm_metrics.Conventions.service_request mx.(ci);
      if Squeue.try_push q i then begin
        if Squeue.last_spilled q then incr spills;
        Tcm_metrics.Conventions.shard_push smx.(Squeue.last_shard q)
          ~occupancy:(Squeue.last_occupancy q) ~spilled:(Squeue.last_spilled q)
      end
      else begin
        Agg.drop gen_agg Sclass.all.(ci);
        Tcm_metrics.Conventions.service_drop mx.(ci);
        Tcm_metrics.Conventions.shard_shed smx.(Squeue.last_shard q);
        match cfg.flight with
        | Some f -> Tcm_obs.Flight.note_drop f
        | None -> ()
      end
    done;
    gen_minor_words.(0) <- Gc.minor_words () -. mw0;
    gen_spills.(0) <- !spills
  in
  let worker wid () =
    let agg = worker_aggs.(wid) in
    let rec loop () =
      let i = Squeue.pop q ~shard:wid in
      if i >= 0 then begin
        let ci = sched.cls.(i) in
        let cls = Sclass.all.(ci) in
        if Tcm_obs.enabled () then Tcm_obs.Ledger.set_class obs_cls.(ci);
        execute rt store ~scan_len:cfg.scan_len sched i;
        if Tcm_obs.enabled () then Tcm_obs.Ledger.set_class 0;
        let now_s = Unix.gettimeofday () -. t0 in
        let lat = request_latency_us ~arrival_s:sched.times.(i) ~now_s in
        Agg.complete agg cls ~latency_us:lat;
        let within = Agg.within_slo agg cls ~latency_us:lat in
        Tcm_metrics.Conventions.service_complete mx.(ci)
          ~latency_us:(int_of_float lat) ~within_slo:within;
        (match cfg.flight with
        | Some f ->
            Tcm_obs.Flight.note_completion f ~cls:(Sclass.name cls) ~within_slo:within
        | None -> ());
        loop ()
      end
    in
    loop ()
  in
  let workers = List.init cfg.workers (fun wid -> Domain.spawn (worker wid)) in
  let gen = Domain.spawn generator in
  Domain.join gen;
  (* Admissions stop at the deadline; queued requests drain (their
     latency keeps accruing — late completions are still charged). *)
  Squeue.close q;
  List.iter Domain.join workers;
  let elapsed = Unix.gettimeofday () -. t0 in
  let s1 = Stm.stats rt in
  let total = Agg.create ~slo_us:cfg.slo_us in
  Agg.merge_into ~into:total gen_agg;
  Array.iter (fun a -> Agg.merge_into ~into:total a) worker_aggs;
  let classes = Agg.class_stats total in
  let all_lats = Agg.all_lats total in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 classes in
  let submitted = sum (fun c -> c.submitted) in
  let completed = sum (fun c -> c.completed) in
  let dropped = sum (fun c -> c.dropped) in
  {
    backend = bname;
    manager = mname;
    process = Arrival.describe cfg.process;
    classes;
    submitted;
    completed;
    dropped;
    aborts = s1.Runtime.n_aborts - s0.Runtime.n_aborts;
    conflicts = s1.Runtime.n_conflicts - s0.Runtime.n_conflicts;
    elapsed_s = elapsed;
    throughput = float_of_int completed /. elapsed;
    offered = float_of_int submitted /. elapsed;
    p50_us = Tcm_dist.Stats.percentile 50. all_lats;
    p99_us = Tcm_dist.Stats.percentile 99. all_lats;
    queue_high_water = Squeue.high_water q;
    queue_spills = gen_spills.(0);
    gen_minor_words_per_req =
      (if submitted = 0 then 0. else gen_minor_words.(0) /. float_of_int submitted);
    trace_drops = (if trace_on then Tcm_trace.Sink.drops () - drops0 else 0);
    metrics_on = Tcm_metrics.enabled ();
    trace_on;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fnum v =
  if Float.is_nan v then "-"
  else if v >= 10_000. then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "%s/%s  %s: offered %.0f rps, served %.0f rps, dropped %d, aborts %d, \
     queue-hw %d, spills %d, gen-alloc %.1f w/req@."
    s.manager s.backend s.process s.offered s.throughput s.dropped s.aborts
    s.queue_high_water s.queue_spills s.gen_minor_words_per_req;
  List.iter
    (fun (c : class_stats) ->
      Format.fprintf fmt
        "    %-5s submitted %6d completed %6d dropped %5d p50 %8s us p99 %8s us \
         slo %6.0f us attain %5.1f%%@."
        (Sclass.name c.cls) c.submitted c.completed c.dropped (fnum c.p50_us)
        (fnum c.p99_us) c.slo_us
        (100. *. if Float.is_nan c.attainment then 0. else c.attainment))
    s.classes
