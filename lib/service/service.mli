(** The service engine: open-loop transactional KV traffic with
    Zipf-skewed keys, mixed transaction classes and per-class SLO
    accounting, on either runtime backend under any contention
    manager.  The whole run's arrivals, classes and keys are
    precomputed into flat arrays, so the generator allocates nothing
    per request and can drive both backends past saturation.  Latency
    is arrival-to-commit (admission-queue time included); a full queue
    sheds the request and the shed counts against SLO attainment. *)

open Tcm_stm

val request_latency_us : arrival_s:float -> now_s:float -> float
(** Arrival-to-commit latency in us — measured from the scheduled
    arrival, so time spent queued is included; clamped at 0. *)

type class_stats = {
  cls : Sclass.t;
  submitted : int;  (** Generated: admitted + dropped. *)
  completed : int;
  dropped : int;
  slo_us : float;
  slo_ok : int;  (** Completed within the class SLO. *)
  attainment : float;
      (** [slo_ok /. submitted]: drops and over-SLO completions both
          miss; [nan] when nothing was submitted. *)
  p50_us : float;
  p99_us : float;
  mean_us : float;
}

(** Pure per-class aggregation (one instance per domain, merged after
    join) — exposed so the SLO arithmetic is testable without running
    the engine. *)
module Agg : sig
  type t

  val create : slo_us:float array -> t
  (** @raise Invalid_argument unless one SLO per class. *)

  val submit : t -> Sclass.t -> unit
  val drop : t -> Sclass.t -> unit
  val complete : t -> Sclass.t -> latency_us:float -> unit
  val within_slo : t -> Sclass.t -> latency_us:float -> bool
  val merge_into : into:t -> t -> unit

  val all_lats : t -> float list
  (** Every completion latency, classes pooled. *)

  val class_stats : t -> class_stats list
end

type config = {
  backend : Stm.backend;
  manager : Cm_intf.factory;
  workers : int;
  duration_s : float;
  process : Arrival.process;
  queue_cap : int;
  n_keys : int;
  buckets : int option;  (** Hashmap sizing override (see {!Store}). *)
  theta : float;  (** Zipf key skew, [0, 1). *)
  mix : Sclass.mix;
  reads_per_txn : int;
  rmws_per_txn : int;
  scan_len : int;
  slo_us : float array;  (** Per-class SLO, indexed like {!Sclass.all}. *)
  seed : int;
  flight : Tcm_obs.Flight.t option;
      (** SLO-breach flight recorder ([None] by default).  When set,
          the engine arms the [tcm.trace] rings for the run, reports
          every completion and shed to the recorder, and tags ledger
          charges with the request's class. *)
}

val default : config
(** Locator backend, greedy manager, 2 workers, Poisson 2k rps, 8192
    keys at θ = 0.9, the default mix and SLOs. *)

type summary = {
  backend : string;
  manager : string;
  process : string;
  classes : class_stats list;
  submitted : int;
  completed : int;
  dropped : int;
  aborts : int;  (** STM aborts during the run (preload excluded). *)
  conflicts : int;
  elapsed_s : float;
  throughput : float;  (** Completed requests per second. *)
  offered : float;  (** Generated requests per second. *)
  p50_us : float;  (** Overall completion latency, classes pooled. *)
  p99_us : float;
  queue_high_water : int;  (** Max single-shard occupancy observed. *)
  queue_spills : int;
      (** Pushes that overflowed their round-robin shard onto the
          least-loaded one. *)
  gen_minor_words_per_req : float;
      (** Generator minor words allocated per generated request —
          should stay in the single digits on the precomputed-schedule
          path (clock reads only). *)
  trace_drops : int;  (** Ring-buffer drops during the run (0 unarmed). *)
  metrics_on : bool;  (** Whether [tcm.metrics] was enabled. *)
  trace_on : bool;  (** Whether the [tcm.trace] rings were armed. *)
}

val run : config -> summary
(** Preload the store (directly, without transactions), precompute the
    request schedule, then drive [duration_s] of open-loop traffic
    through one queue shard per worker; returns after the admission
    queue has drained.  At return, [submitted = completed + dropped].
    @raise Invalid_argument on a non-positive duration or worker
    count, or an invalid arrival process. *)

val pp_summary : Format.formatter -> summary -> unit
