(** Bounded admission queue between the open-loop generator and the
    worker pool.

    A fixed-capacity ring under one mutex: [try_push] never blocks —
    a full queue sheds the request and counts the drop, so overload
    surfaces as queueing delay and load shedding rather than
    generator slowdown.  Workers block in [pop] until a request or
    [close]-plus-drained; [close] lets in-flight requests finish, so
    at shutdown every admitted request is either completed or still
    counted in the queue (never silently lost). *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;  (** Next pop slot. *)
  mutable tail : int;  (** Next push slot. *)
  mutable len : int;
  mutable high_water : int;
  mutable dropped : int;
  mutable closed : bool;
  m : Mutex.t;
  nonempty : Condition.t;
}

let create cap =
  if cap < 1 then invalid_arg "Squeue.create: capacity >= 1";
  {
    buf = Array.make cap None;
    head = 0;
    tail = 0;
    len = 0;
    high_water = 0;
    dropped = 0;
    closed = false;
    m = Mutex.create ();
    nonempty = Condition.create ();
  }

let capacity t = Array.length t.buf

(** [false] when the queue was full (the request is shed and counted)
    or already closed. *)
let try_push t x =
  Mutex.lock t.m;
  let ok =
    if t.closed || t.len = Array.length t.buf then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      t.buf.(t.tail) <- Some x;
      t.tail <- (t.tail + 1) mod Array.length t.buf;
      t.len <- t.len + 1;
      if t.len > t.high_water then t.high_water <- t.len;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.m;
  ok

(** Blocks until a request is available or the queue is closed and
    drained ([None]). *)
let pop t =
  Mutex.lock t.m;
  while t.len = 0 && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.len <- t.len - 1;
      x
    end
  in
  Mutex.unlock t.m;
  r

(** Stop admissions and wake every blocked popper; queued requests
    still drain. *)
let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

let dropped t =
  Mutex.lock t.m;
  let n = t.dropped in
  Mutex.unlock t.m;
  n

let high_water t =
  Mutex.lock t.m;
  let n = t.high_water in
  Mutex.unlock t.m;
  n
