(** Bounded admission queue between the open-loop generator and the
    worker pool — sharded.

    The original queue was one mutex-guarded ring: every [try_push]
    from the generator, every [pop] from every worker, and even the
    stat reads serialized on a single lock, which caps the admission
    rate far below where either STM backend saturates.  This version
    keeps the same contract — non-blocking shed-on-full push, blocking
    pop, close-then-drain, exact [submitted = completed + dropped]
    conservation — over {e per-worker SPSC ring shards}:

    - One producer (the generator) round-robins pushes across shards
      and {e spills to the least-loaded shard} when the round-robin
      target is full; only when every shard is full is the request
      shed (charged to the round-robin target's drop counter).  A
      single producer keeps every ring single-producer even with
      spilling.
    - One consumer per shard (worker [i] owns shard [i]) pops with two
      atomic loads and a store — no lock, no CAS.  An empty shard
      parks the consumer on a per-shard condition variable; the
      producer takes that shard's mutex {e only} when the consumer has
      published that it is waiting (eventcount-style), so the
      saturated steady state never touches a lock.
    - Every stat accessor reads relaxed atomics and never takes a
      mutex, so a metrics poller cannot contend the admission path.
      Snapshots may lag in-flight operations by a few events; totals
      read after the producing/consuming domains joined are exact.

    Payloads are non-negative ints (indices into a precomputed request
    schedule); [-1] is the closed-and-drained sentinel.  Head and tail
    are monotone positions (never wrapped), so occupancy is one
    subtraction and the ABA problem cannot arise. *)

type shard = {
  buf : int array;
  cap : int;
  head : int Atomic.t;  (** Next pop position; consumer-advanced. *)
  tail : int Atomic.t;  (** Next push position; producer-advanced. *)
  pushed : int Atomic.t;  (** Requests admitted to this shard. *)
  shed : int Atomic.t;  (** Drops charged to this shard. *)
  hw : int Atomic.t;  (** Max occupancy seen by the producer. *)
  waiting : bool Atomic.t;  (** Consumer parked: producer must signal. *)
  m : Mutex.t;
  nonempty : Condition.t;
}

type t = {
  shards : shard array;
  closed : bool Atomic.t;
  (* Producer-only state (single-producer invariant): the round-robin
     cursor and the out-of-band result of the last push, exposed so the
     engine can record shard metrics without the push allocating. *)
  mutable rr : int;
  mutable last_shard : int;
  mutable last_spilled : bool;
  mutable last_occupancy : int;
}

let create ?(shards = 1) cap =
  if cap < 1 then invalid_arg "Squeue.create: capacity >= 1";
  if shards < 1 then invalid_arg "Squeue.create: shards >= 1";
  let per = (cap + shards - 1) / shards in
  let mk _ =
    {
      buf = Array.make per 0;
      cap = per;
      head = Atomic.make 0;
      tail = Atomic.make 0;
      pushed = Atomic.make 0;
      shed = Atomic.make 0;
      hw = Atomic.make 0;
      waiting = Atomic.make false;
      m = Mutex.create ();
      nonempty = Condition.create ();
    }
  in
  {
    shards = Array.init shards mk;
    closed = Atomic.make false;
    rr = 0;
    last_shard = 0;
    last_spilled = false;
    last_occupancy = 0;
  }

let shards t = Array.length t.shards
let capacity t = Array.fold_left (fun acc sh -> acc + sh.cap) 0 t.shards

let[@inline] shard_len sh = Atomic.get sh.tail - Atomic.get sh.head

(* Wake the shard's consumer iff it published that it is parked.  The
   signal is sent under the shard mutex, and the consumer re-checks
   emptiness under the same mutex before waiting, so the wakeup cannot
   be lost; the lock is simply skipped while the consumer is running. *)
let[@inline] wake sh =
  if Atomic.get sh.waiting then begin
    Mutex.lock sh.m;
    Condition.signal sh.nonempty;
    Mutex.unlock sh.m
  end

(** [false] when every shard was full (the request is shed and
    counted) or the queue is closed.  Never blocks; single producer
    only. *)
let try_push t x =
  if x < 0 then invalid_arg "Squeue.try_push: payload >= 0";
  let n = Array.length t.shards in
  let target = t.rr in
  t.rr <- (if target + 1 = n then 0 else target + 1);
  if Atomic.get t.closed then begin
    Atomic.incr t.shards.(target).shed;
    t.last_shard <- target;
    t.last_spilled <- false;
    false
  end
  else begin
    let chosen = ref target in
    let spilled = ref false in
    if shard_len t.shards.(target) >= t.shards.(target).cap then begin
      (* Round-robin target full: spill to the least-loaded shard. *)
      let best = ref target and best_len = ref max_int in
      for i = 0 to n - 1 do
        let l = shard_len t.shards.(i) in
        if l < !best_len then begin
          best := i;
          best_len := l
        end
      done;
      chosen := !best;
      spilled := true
    end;
    let sh = t.shards.(!chosen) in
    let tl = Atomic.get sh.tail in
    let len = tl - Atomic.get sh.head in
    if len >= sh.cap then begin
      (* Every shard full: shed, charged to the round-robin target. *)
      Atomic.incr t.shards.(target).shed;
      t.last_shard <- target;
      t.last_spilled <- false;
      t.last_occupancy <- len;
      false
    end
    else begin
      sh.buf.(tl mod sh.cap) <- x;
      let occ = len + 1 in
      if occ > Atomic.get sh.hw then Atomic.set sh.hw occ;
      Atomic.incr sh.pushed;
      Atomic.set sh.tail (tl + 1) (* release publication *);
      wake sh;
      t.last_shard <- !chosen;
      t.last_spilled <- !spilled;
      t.last_occupancy <- occ;
      true
    end
  end

(** Blocks until shard [shard]'s next request is available, or the
    queue is closed and that shard is drained ([-1]).  One consumer
    per shard. *)
let pop t ~shard =
  let sh = t.shards.(shard) in
  let rec loop () =
    let hd = Atomic.get sh.head in
    if Atomic.get sh.tail - hd > 0 then begin
      let x = sh.buf.(hd mod sh.cap) in
      Atomic.set sh.head (hd + 1);
      x
    end
    else if Atomic.get t.closed then
      (* A push may have landed between the emptiness check and the
         closed check; drain it rather than losing it. *)
      if Atomic.get sh.tail - hd > 0 then loop () else -1
    else begin
      (* Park.  [waiting] is set before the locked re-check, and the
         producer signals under the mutex whenever it sees it set, so
         a push that races the park either wins the re-check or wakes
         us — never both lost. *)
      Atomic.set sh.waiting true;
      Mutex.lock sh.m;
      if shard_len sh = 0 && not (Atomic.get t.closed) then
        Condition.wait sh.nonempty sh.m;
      Atomic.set sh.waiting false;
      Mutex.unlock sh.m;
      loop ()
    end
  in
  loop ()

(** Stop admissions and wake every parked consumer; queued requests
    still drain. *)
let close t =
  Atomic.set t.closed true;
  Array.iter
    (fun sh ->
      Mutex.lock sh.m;
      Condition.broadcast sh.nonempty;
      Mutex.unlock sh.m)
    t.shards

(* --- Relaxed stat snapshots: atomic loads only, never a lock. --- *)

let length t = Array.fold_left (fun acc sh -> acc + shard_len sh) 0 t.shards
let dropped t = Array.fold_left (fun acc sh -> acc + Atomic.get sh.shed) 0 t.shards
let pushed t = Array.fold_left (fun acc sh -> acc + Atomic.get sh.pushed) 0 t.shards

let high_water t =
  Array.fold_left (fun acc sh -> max acc (Atomic.get sh.hw)) 0 t.shards

let shard_length t i = shard_len t.shards.(i)
let shard_dropped t i = Atomic.get t.shards.(i).shed
let shard_pushed t i = Atomic.get t.shards.(i).pushed
let shard_capacity t i = t.shards.(i).cap

let last_shard t = t.last_shard
let last_spilled t = t.last_spilled
let last_occupancy t = t.last_occupancy

(** The original single-mutex bounded ring, kept verbatim as the
    measurement baseline for the sharded design (the @service-smoke
    gate asserts sharded push+pop beats this at worker counts >= 4)
    and as a behavioral reference in tests. *)
module Single_mutex = struct
  type 'a t = {
    buf : 'a option array;
    mutable head : int;
    mutable tail : int;
    mutable len : int;
    mutable high_water : int;
    mutable dropped : int;
    mutable closed : bool;
    m : Mutex.t;
    nonempty : Condition.t;
  }

  let create cap =
    if cap < 1 then invalid_arg "Squeue.Single_mutex.create: capacity >= 1";
    {
      buf = Array.make cap None;
      head = 0;
      tail = 0;
      len = 0;
      high_water = 0;
      dropped = 0;
      closed = false;
      m = Mutex.create ();
      nonempty = Condition.create ();
    }

  let try_push t x =
    Mutex.lock t.m;
    let ok =
      if t.closed || t.len = Array.length t.buf then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else begin
        t.buf.(t.tail) <- Some x;
        t.tail <- (t.tail + 1) mod Array.length t.buf;
        t.len <- t.len + 1;
        if t.len > t.high_water then t.high_water <- t.len;
        Condition.signal t.nonempty;
        true
      end
    in
    Mutex.unlock t.m;
    ok

  let pop t =
    Mutex.lock t.m;
    while t.len = 0 && not t.closed do
      Condition.wait t.nonempty t.m
    done;
    let r =
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end
    in
    Mutex.unlock t.m;
    r

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m

  let dropped t =
    Mutex.lock t.m;
    let n = t.dropped in
    Mutex.unlock t.m;
    n
end
