(** Open-loop arrival processes.

    The generator schedules request arrival times from one of these
    processes without ever waiting on the service — that is the
    open-loop discipline: when the service falls behind, requests pile
    up in the admission queue (and the latency accounting charges the
    queueing delay to the service), instead of the generator silently
    slowing down and hiding the overload (the closed-loop
    coordinated-omission trap). *)

module Rng = Tcm_stm.Splitmix

type process =
  | Poisson of { rate : float }  (** Requests per second. *)
  | Bursty of {
      base_rate : float;
      burst_rate : float;
      period_s : float;  (** One on+off cycle. *)
      burst_frac : float;  (** Fraction of the period spent bursting. *)
    }
      (** On/off-modulated Poisson: [burst_rate] for the first
          [burst_frac] of every [period_s], [base_rate] for the rest. *)

let validate = function
  | Poisson { rate } ->
      if not (rate > 0.) then invalid_arg "Arrival: rate > 0"
  | Bursty { base_rate; burst_rate; period_s; burst_frac } ->
      if not (base_rate > 0. && burst_rate > 0.) then
        invalid_arg "Arrival: rates > 0";
      if not (period_s > 0.) then invalid_arg "Arrival: period_s > 0";
      if not (burst_frac >= 0. && burst_frac <= 1.) then
        invalid_arg "Arrival: burst_frac in [0, 1]"

let rate_at process ~t =
  match process with
  | Poisson { rate } -> rate
  | Bursty { base_rate; burst_rate; period_s; burst_frac } ->
      let phase = Float.rem t period_s in
      if phase < burst_frac *. period_s then burst_rate else base_rate

let peak_rate = function
  | Poisson { rate } -> rate
  | Bursty { base_rate; burst_rate; _ } -> Float.max base_rate burst_rate

(** Next arrival strictly after time [t] (seconds from run start).
    Non-homogeneous Poisson via thinning against the peak rate, so
    inter-arrival gaps stay exactly exponential within each phase of a
    bursty process.  Deterministic in the rng stream. *)
let next process rng ~t =
  let peak = peak_rate process in
  let rec go t =
    let t = t +. Tcm_dist.Samplers.exp_draw rng ~rate:peak in
    if Rng.float rng *. peak <= rate_at process ~t then t else go t
  in
  go t

(** The whole run's arrival times at once (strictly increasing, in
    [0, horizon)), via {!Tcm_dist.Samplers.Schedule} — the same
    thinning discipline as {!next}, materialized ahead of the run so
    the generator's hot loop allocates nothing per request. *)
let schedule process rng ~horizon =
  validate process;
  Tcm_dist.Samplers.Schedule.arrivals rng
    ~rate_at:(fun t -> rate_at process ~t)
    ~peak:(peak_rate process) ~horizon

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(%.0f rps)" rate
  | Bursty { base_rate; burst_rate; period_s; burst_frac } ->
      Printf.sprintf "bursty(%.0f/%.0f rps, %.2fs period, %.0f%% on)" base_rate
        burst_rate period_s (100. *. burst_frac)
