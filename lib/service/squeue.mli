(** Bounded admission queue: non-blocking shed-on-full push (the
    open-loop contract), blocking pop, close-then-drain shutdown. *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument on capacity < 1. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when full or closed; the request is shed and counted in
    {!dropped}.  Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until a request arrives or the queue is closed and drained
    ([None]). *)

val close : 'a t -> unit
(** Stop admissions, wake blocked poppers; queued requests still
    drain. *)

val length : 'a t -> int
val dropped : 'a t -> int

val high_water : 'a t -> int
(** Maximum occupancy ever observed — the queueing-depth signature of
    a traffic spike. *)
