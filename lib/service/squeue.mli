(** Sharded bounded admission queue: per-worker SPSC ring shards fed
    by one producer (round-robin with least-loaded spill), non-blocking
    shed-on-full push, lock-free pop with eventcount-style parking,
    close-then-drain shutdown, and relaxed (never-locking) stat
    snapshots.  Payloads are non-negative ints — indices into a
    precomputed request schedule. *)

type t

val create : ?shards:int -> int -> t
(** [create ~shards cap]: total capacity [cap] split evenly across
    [shards] rings (default 1).  Single producer; one consumer per
    shard.  @raise Invalid_argument on capacity or shards < 1. *)

val shards : t -> int

val capacity : t -> int
(** Total capacity (per-shard capacities summed; rounding the even
    split up may exceed the requested total by < shards). *)

val try_push : t -> int -> bool
(** [false] when every shard is full or the queue is closed; the
    request is shed and counted in {!dropped} (charged to the
    round-robin target shard).  Never blocks.  Producer-only.
    @raise Invalid_argument on a negative payload. *)

val pop : t -> shard:int -> int
(** Next request from the given shard, blocking while it is empty;
    [-1] once the queue is closed and the shard drained.  One consumer
    per shard. *)

val close : t -> unit
(** Stop admissions, wake parked consumers; queued requests still
    drain. *)

(** {2 Relaxed stats}

    Atomic loads only — never a mutex — so polling cannot contend the
    admission path.  A concurrent snapshot may lag in-flight events;
    totals read after the producer/consumers joined are exact, and
    then [pushed = Σ completed pops] and
    [submitted = pushed + dropped]. *)

val length : t -> int
val dropped : t -> int

val pushed : t -> int
(** Requests admitted (popped or still queued). *)

val high_water : t -> int
(** Max occupancy observed on any {e single shard} — the per-shard
    queueing-depth signature of a traffic spike. *)

val shard_length : t -> int -> int
val shard_dropped : t -> int -> int
val shard_pushed : t -> int -> int
val shard_capacity : t -> int -> int

(** {2 Producer-side probes}

    Out-of-band results of the last {!try_push} (valid on the producer
    only), so the engine can record per-shard metrics without the push
    allocating a result. *)

val last_shard : t -> int
(** Shard the last push landed on (or was charged to, when shed). *)

val last_spilled : t -> bool
(** Whether the last push overflowed its round-robin target onto the
    least-loaded shard. *)

val last_occupancy : t -> int
(** Occupancy of the landing shard just after the last push. *)

(** The original single-mutex ring, kept as the measurement baseline
    the sharded queue is gated against (and as a behavioral reference
    in tests). *)
module Single_mutex : sig
  type 'a t

  val create : int -> 'a t
  val try_push : 'a t -> 'a -> bool
  val pop : 'a t -> 'a option
  val close : 'a t -> unit
  val dropped : 'a t -> int
end
