(** Open-loop arrival processes: Poisson and on/off-modulated (bursty)
    Poisson, sampled by thinning — deterministic in the rng stream. *)

module Rng = Tcm_stm.Splitmix

type process =
  | Poisson of { rate : float }  (** Requests per second. *)
  | Bursty of {
      base_rate : float;
      burst_rate : float;
      period_s : float;  (** One on+off cycle. *)
      burst_frac : float;  (** Fraction of the period spent bursting. *)
    }

val validate : process -> unit
(** @raise Invalid_argument on non-positive rates/period or
    [burst_frac] outside [0, 1]. *)

val rate_at : process -> t:float -> float
(** Instantaneous rate at time [t] (seconds from run start). *)

val peak_rate : process -> float

val next : process -> Rng.t -> t:float -> float
(** Next arrival strictly after [t]. *)

val schedule : process -> Rng.t -> horizon:float -> float array
(** Every arrival in [0, horizon) at once (strictly increasing): the
    precomputed form the allocation-free generator replays.
    @raise Invalid_argument on an invalid process or non-positive
    horizon. *)

val describe : process -> string
