(** The transactional key-value store behind the service: values in a
    {!Tcm_structures.Thashmap} (point ops conflict only per bucket)
    with a {!Tcm_structures.Tskiplist} key index for ordered range
    scans.

    The keyspace is fixed at prefill: the service draws every key from
    [0 .. n_keys - 1], so [put]/[rmw] hit existing bindings and never
    have to update the index — scans and point ops then conflict only
    through the hashmap buckets and the skiplist nodes they actually
    read. *)

open Tcm_stm
module H = Tcm_structures.Thashmap
module S = Tcm_structures.Tskiplist

type t = { map : int H.t; index : S.t; n_keys : int }

(* Batch size for prefill transactions: big enough to amortize the
   per-transaction cost over millions of keys, small enough to keep
   each prefill write set trivial for either backend. *)
let prefill_batch = 64

let create ?buckets ~n_keys () =
  if n_keys < 1 then invalid_arg "Store.create: n_keys >= 1";
  (* Low single-digit hashmap occupancy and a log2-sized skiplist by
     default (see the structures' sizing notes); [buckets] still
     overrides the hashmap exactly. *)
  { map = H.create ?buckets ~expect:n_keys ();
    index = S.create_sized ~expect:n_keys ();
    n_keys }

(** Populate keys [0 .. n_keys - 1] (value = key) directly, without
    transactions — only sound before the store is published to any
    worker.  This is how a service run builds a million-key store in
    tens of milliseconds instead of minutes of STM commits; {!prefill}
    remains as the transactional reference build. *)
let preload t =
  H.unsafe_preload t.map (Array.init t.n_keys (fun k -> (k, k)));
  S.unsafe_preload t.index (Array.init t.n_keys (fun k -> k))

(** Populate keys [0 .. n_keys - 1] (value = key), batched. *)
let prefill rt t =
  let k = ref 0 in
  while !k < t.n_keys do
    let hi = min t.n_keys (!k + prefill_batch) in
    let lo = !k in
    ignore
      (Stm.atomically rt (fun tx ->
           for key = lo to hi - 1 do
             H.add tx t.map key key;
             ignore (S.insert tx t.index key)
           done;
           hi - lo));
    k := hi
  done

let n_keys t = t.n_keys

let get tx t k = H.find tx t.map k

let put tx t k v = H.add tx t.map k v

(** Read-modify-write one binding (insert-if-absent included). *)
let rmw tx t k f = H.update tx t.map k f

(** Ordered scan: up to [len] keys starting at the smallest key >=
    [lo], each followed by a point lookup of its value; returns the
    number of bindings read and the sum of their values (forcing the
    reads). *)
let scan tx t ~lo ~len =
  let keys = S.range tx t.index ~lo ~len in
  List.fold_left
    (fun (n, sum) k ->
      match H.find tx t.map k with
      | Some v -> (n + 1, sum + v)
      | None -> (n, sum))
    (0, 0) keys
