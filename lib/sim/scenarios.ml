(** Canonical simulation scenarios.

    Includes the Section 4 adversarial chain, random instances for the
    Theorem 9 bound sweep, and the dependency-cycle instance that
    defeats unbounded FIFO waiting. *)

(* Deterministic splitmix64 for instance generation. *)
module Prng = Policy.Prng

(** The Section 4 chain, in ticks of [granularity] per paper time unit
    (>= 2 so the late access lands strictly before the commit, the
    paper's [1 - epsilon]).

    Thread [i] plays transaction [T_i]: every [T_i] runs one time
    unit; [T_i] (0 < i < s) opens [X_{i+1}] at time 0 and [X_i] at time
    [1 - epsilon]; [T_0] opens only [X_1] at time 0; [T_s] opens only
    [X_s] at [1 - epsilon].  [T_i] has an earlier timestamp than
    [T_{i-1}], so the returned ranks are inverted. *)
let adversarial_chain ?(granularity = 2) ~s () : Spec.instance * int array =
  if s < 1 then invalid_arg "Scenarios.adversarial_chain: s >= 1";
  if granularity < 2 then invalid_arg "Scenarios.adversarial_chain: granularity >= 2";
  let m = granularity in
  let obj x = x - 1 in
  let txn_of i =
    let accesses =
      if i = 0 then [ Spec.write ~at:0 ~obj:(obj 1) ]
      else if i = s then [ Spec.write ~at:(m - 1) ~obj:(obj s) ]
      else [ Spec.write ~at:0 ~obj:(obj (i + 1)); Spec.write ~at:(m - 1) ~obj:(obj i) ]
    in
    Spec.txn ~dur:m accesses
  in
  let inst = Spec.instance (List.init (s + 1) txn_of) in
  (* T_i older than T_{i-1}: rank s - i + 1 (T_s gets rank 1). *)
  let ranks = Array.init (s + 1) (fun i -> s - i + 1) in
  (inst, ranks)

(** Two transactions that each open the other's first object late —
    under unbounded FIFO waiting ([Policy.queue_on_block
    ~mode:`Unbounded]) they cycle forever. *)
let dependency_cycle () : Spec.instance =
  Spec.instance
    [
      Spec.txn ~dur:4 [ Spec.write ~at:0 ~obj:0; Spec.write ~at:3 ~obj:1 ];
      Spec.txn ~dur:4 [ Spec.write ~at:0 ~obj:1; Spec.write ~at:3 ~obj:0 ];
    ]

(** Fault-injection instance (Section 6): thread 0 acquires the hot
    object and then halts undetectably, still holding it; threads
    1..[n-1] need the object to commit.  Pure greedy waits on the
    corpse forever (its Rule 2 wait is unbounded); greedy-ft and the
    timeout-based managers abort it and finish. *)
let halted_owner ?(n = 4) () : Spec.instance =
  let victim = Spec.txn ~halts_at:1 ~dur:10 [ Spec.write ~at:0 ~obj:0 ] in
  let others = List.init (n - 1) (fun _ -> Spec.txn ~dur:2 [ Spec.write ~at:0 ~obj:0 ]) in
  Spec.instance (victim :: others)

(** Random one-shot instance: [n] transactions over [s] objects,
    durations in [1, max_dur], each transaction making 1..[max_acc]
    write accesses at random progress points.  Deterministic in
    [seed]. *)
let random_instance ~seed ~n ~s ?(max_dur = 6) ?(max_acc = 3) () : Spec.instance =
  let prng = Prng.create seed in
  let txn_of _ =
    let dur = 1 + Prng.int prng max_dur in
    let k = 1 + Prng.int prng max_acc in
    let accesses =
      List.init k (fun _ -> Spec.write ~at:(Prng.int prng dur) ~obj:(Prng.int prng s))
    in
    (* Deduplicate objects: keep the earliest access to each. *)
    let seen = Hashtbl.create 8 in
    let accesses =
      List.filter
        (fun a ->
          if Hashtbl.mem seen a.Spec.obj then false
          else begin
            Hashtbl.add seen a.Spec.obj ();
            true
          end)
        (List.sort (fun a b -> compare a.Spec.at b.Spec.at) accesses)
    in
    Spec.txn ~dur accesses
  in
  Spec.instance (List.init n txn_of)

(** A contended hot-spot workload: every transaction updates one of
    [s] objects chosen Zipf([theta])-distributed (object 0 hottest),
    for throughput shapes.  Draws come from the shared
    {!Tcm_dist.Samplers.Zipf} sampler — the same distribution the
    service layer skews its keys with — and stay deterministic in
    [seed]. *)
let hotspot_instance ~seed ~n ~s ?(theta = 0.9) ~dur () : Spec.instance =
  let prng = Prng.create seed in
  let zipf = Tcm_dist.Samplers.Zipf.create ~n:s ~theta in
  let txn_of _ =
    let o = Tcm_dist.Samplers.Zipf.draw zipf prng in
    Spec.txn ~dur [ Spec.write ~at:(Prng.int prng dur) ~obj:o ]
  in
  Spec.instance (List.init n txn_of)
