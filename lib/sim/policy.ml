(** Simulated contention-manager policies.

    These mirror the real managers in [Tcm_core] but operate on the
    simulator's deterministic tick clock, so theory experiments are
    exactly reproducible.  A policy sees only the public view of the
    two parties — timestamp, waiting flag, accumulated priority, abort
    count — matching the decentralised model of Section 2. *)

type view = {
  id : int;
  mutable timestamp : int;  (** Smaller = older = higher priority. *)
  mutable waiting : bool;
  priority : int ref;
      (** Karma-style accumulated priority.  A [ref] shared with the
          engine so Eruption can push pressure onto the blocker. *)
  mutable aborts : int;
  mutable opens : int;
}
(* Mutable so the engine can keep one cached view per simulated thread
   and refresh it in place before each resolve, instead of allocating
   two records per conflict (the same discipline as the live runtime's
   slab-resident manager state).  Policies must read fields during
   [resolve] only, never retain a view. *)

type decision =
  | Abort_other
  | Abort_self
  | Block of { timeout : int option }  (** Ticks. *)
  | Backoff of int  (** Ticks. *)

(* Flyweights for the two non-constant verdicts, mirroring
   [Tcm_stm.Decision]: tick durations are small, so a flat table
   covers every duration the shipped policies produce; anything
   larger falls back to a fresh record (rare, correct, just not
   free). *)
let fw_max = 4_096
let backoff_fw = Array.init fw_max (fun i -> Backoff i)
let block_fw = Array.init fw_max (fun i -> Block { timeout = Some i })
let block_forever = Block { timeout = None }
let backoff d = if d >= 0 && d < fw_max then backoff_fw.(d) else Backoff d

let block_for d =
  if d >= 0 && d < fw_max then block_fw.(d) else Block { timeout = Some d }

(* Deterministic stream for scenario generation (cold path; exported
   for [Scenarios]). *)
module Prng = Tcm_stm.Splitmix

(* Allocation-free jitter stream for the policies' hot path: two plain
   int cells of xorshift state, seeded deterministically from the
   policy seed via splitmix.  [Splitmix] itself boxes an [Int64] per
   draw, which would put an allocation on every randomized resolve. *)
module Jitter = struct
  type t = { mutable s0 : int; mutable s1 : int }

  let create seed =
    let s = Prng.create seed in
    let cell d =
      match Int64.to_int (Prng.next s) land max_int with 0 -> d | v -> v
    in
    { s0 = cell 0x9E3779B9; s1 = cell 0x6C078965 }

  let next t =
    let s0 = t.s0 and s1 = t.s1 in
    let x = s1 lxor (s1 lsl 23) in
    let x = x lxor (x lsr 17) lxor s0 lxor (s0 lsr 26) in
    t.s0 <- s1;
    t.s1 <- x;
    (x + s1) land max_int

  let int t bound = if bound <= 1 then 0 else next t mod bound
  let bool t = next t land 1 = 1
end

type t = {
  name : string;
  resolve : me:view -> other:view -> attempts:int -> now:int -> decision;
}

let older_than a b = a.timestamp < b.timestamp

(** The greedy manager, Section 3: abort younger or waiting enemies,
    wait (unboundedly) behind older non-waiting ones. *)
let greedy () =
  {
    name = "greedy";
    resolve =
      (fun ~me ~other ~attempts:_ ~now:_ ->
        if older_than me other || other.waiting then Abort_other
        else block_forever);
  }

(** Fault-tolerant greedy, Section 6: wait behind older enemies only up
    to a per-enemy timeout that doubles after each expiry. *)
let greedy_ft ?(base = 4) () =
  let grants = Hashtbl.create 16 in
  {
    name = "greedy-ft";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if older_than me other || other.waiting then Abort_other
        else
          (* [find] + [Not_found], not [find_opt]: the option would box
             on every consult against a known enemy.  The doubling is
             capped inside the {!block_for} flyweight range, so repeat
             offenders cannot push the verdict off the table either. *)
          let granted =
            try Hashtbl.find grants other.timestamp with Not_found -> base
          in
          if attempts > 0 then begin
            Hashtbl.replace grants other.timestamp (min (granted * 2) 1_024);
            Abort_other
          end
          else block_for granted);
  }

let aggressive () =
  { name = "aggressive"; resolve = (fun ~me:_ ~other:_ ~attempts:_ ~now:_ -> Abort_other) }

let timid () =
  { name = "timid"; resolve = (fun ~me:_ ~other:_ ~attempts:_ ~now:_ -> Abort_self) }

let polite ?(max_tries = 6) ?(base = 1) ~seed () =
  let prng = Jitter.create seed in
  {
    name = "backoff";
    resolve =
      (fun ~me:_ ~other:_ ~attempts ~now:_ ->
        if attempts >= max_tries then Abort_other
        else
          let d = base * (1 lsl min attempts 10) in
          backoff (d + Jitter.int prng (max 1 d)));
  }

let randomized ~seed () =
  let prng = Jitter.create seed in
  {
    name = "randomized";
    resolve =
      (fun ~me:_ ~other:_ ~attempts:_ ~now:_ ->
        if Jitter.bool prng then Abort_other else backoff (1 + Jitter.int prng 4));
  }

let karma ?(backoff_ticks = 2) () =
  {
    name = "karma";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if !(me.priority) + attempts > !(other.priority) then Abort_other
        else backoff backoff_ticks);
  }

let eruption ?(backoff_ticks = 2) () =
  {
    name = "eruption";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if !(me.priority) + attempts > !(other.priority) then Abort_other
        else begin
          if attempts = 0 then other.priority := !(other.priority) + max 1 !(me.priority);
          backoff backoff_ticks
        end);
  }

let kindergarten ?(rounds = 2) () =
  let deferred = Hashtbl.create 16 in
  {
    name = "kindergarten";
    resolve =
      (fun ~me:_ ~other ~attempts ~now:_ ->
        if Hashtbl.mem deferred other.timestamp then Abort_other
        else if attempts >= rounds then begin
          Hashtbl.replace deferred other.timestamp ();
          Abort_self
        end
        else backoff 1);
  }

let timestamp ?(quantum = 2) ?(max_quanta = 4) () =
  {
    name = "timestamp";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if older_than me other then Abort_other
        else if attempts >= max_quanta then Abort_other
        else block_for quantum);
  }

let killblocked ?(max_tries = 3) () =
  {
    name = "killblocked";
    resolve =
      (fun ~me:_ ~other ~attempts ~now:_ ->
        if other.waiting then Abort_other
        else if attempts >= max_tries then Abort_other
        else backoff 1);
  }

let polka ?(base = 1) ~seed () =
  let prng = Jitter.create seed in
  {
    name = "polka";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        let gap = !(other.priority) - !(me.priority) in
        if attempts >= max 1 gap then Abort_other
        else
          let d = base * (1 lsl min attempts 10) in
          backoff (d + Jitter.int prng (max 1 d)));
  }

(** Randomized-priority greedy — a stab at the paper's closing open
    problem ("can one use randomization to implement a contention
    manager that is proved to behave well with high probability?").
    Greedy's rules, but priorities are random ranks drawn once per
    logical transaction instead of arrival timestamps: each transaction
    hashes its (stable) timestamp through a keyed mix, so the rank is
    retained across aborts yet independent of arrival order.  Every
    conflict still has a strict winner, so the pending-commit property
    and Theorem 9 carry over; what randomization buys is immunity to
    adversaries that exploit arrival order (the Section 4 chain), at
    the price of only probabilistic — not deterministic — bounds on any
    one transaction's commit time. *)
let randomized_greedy ~seed () =
  let rank ts =
    (* splitmix-style keyed hash of the stable timestamp, in plain int
       arithmetic (boxed Int64 mixing would allocate per resolve). *)
    let z = (ts + ((seed + 1) * 0x9E3779B97F4A7C1)) land max_int in
    let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B land max_int in
    let z = (z lxor (z lsr 27)) * 0x94D049BB133111E land max_int in
    (z lxor (z lsr 31)) land 0x3FFFFFFFFFFFFFF
  in
  {
    name = "rand-greedy";
    resolve =
      (fun ~me ~other ~attempts:_ ~now:_ ->
        (* Ties broken by the underlying timestamp, so a strict total
           order survives hashing collisions; compared field-wise so no
           tuple is built per resolve. *)
        let rm = rank me.timestamp and ro = rank other.timestamp in
        if
          rm < ro
          || (rm = ro && me.timestamp < other.timestamp)
          || other.waiting
        then Abort_other
        else block_forever);
  }

(** Unbounded FIFO waiting: the manager the paper calls prone to
    dependency cycles.  [`Unbounded`] reproduces the deadlock in the
    simulator (the engine's horizon turns it into a detected livelock);
    [`Bounded] matches the defensive real implementation. *)
let queue_on_block ?(mode = `Bounded) () =
  {
    name = "queueonblock";
    resolve =
      (fun ~me:_ ~other:_ ~attempts ~now:_ ->
        match mode with
        | `Unbounded -> block_forever
        | `Bounded -> if attempts >= 3 then Abort_other else block_for 8);
  }

(** Tick-clock analogue of [Tcm_core.Sto_adaptive].  The live manager
    counts opens per attempt to decide when to leave the timid phase;
    here the engine's priority counter (reset per transaction,
    incremented per open, retained across aborts like karma's
    investment) is the phase proxy, and the stable arrival timestamp
    stands in for the acquired global stamp — a still-timid enemy
    (below threshold) reads as youngest of all, exactly like the
    [max_int] stamp sentinel.  The fight-phase wait is randomized and
    scaled by the own abort count, bounded by [max_rounds]. *)
let sto_adaptive ?(threshold = 3) ?(max_rounds = 8) ~seed () =
  let prng = Jitter.create seed in
  {
    name = "sto-adaptive";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if !(me.priority) < threshold then Abort_self
        else if !(other.priority) < threshold then Abort_other
        else if older_than me other then Abort_other
        else if attempts >= max_rounds then Abort_self
        else backoff (1 + Jitter.int prng (min me.aborts 10 + 1)));
  }

(** Everything comparable, for sweeps.  [seed] feeds the randomized
    policies so whole sweeps stay deterministic. *)
let all ~seed () =
  [
    greedy ();
    greedy_ft ();
    randomized_greedy ~seed ();
    aggressive ();
    polite ~seed ();
    randomized ~seed ();
    karma ();
    eruption ();
    kindergarten ();
    timestamp ();
    killblocked ();
    polka ~seed ();
    queue_on_block ();
    timid ();
    sto_adaptive ~seed ();
  ]

(** The paper's Figure 1–4 line-up. *)
let paper_figures ~seed () =
  [ greedy (); karma (); eruption (); aggressive (); polite ~seed () ]
