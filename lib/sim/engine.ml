(** Deterministic two-phase tick engine.

    Each simulated thread executes a stream of transactions.  A tick
    has two phases:

    - {b Phase A} (access phase, thread-id order): threads start
      pending transactions, re-check waits and backoffs, and attempt
      the object accesses due at their current progress point.
      Conflicts are resolved through the policy; aborts take effect
      immediately (the victim restarts at the next tick, keeping its
      timestamp).
    - {b Phase B} (work phase): every thread still running advances one
      tick of work; a thread completing its duration commits at the end
      of the tick.

    Accesses thus happen strictly before the commits of the same tick,
    which reproduces the paper's "at time 1 - epsilon, T1 accesses X1,
    aborting T0" scheduling of the Section 4 chain exactly.

    Everything is deterministic: thread-id order breaks ties, policies
    draw randomness from seeded streams, and timestamps are assigned in
    arrival order. *)

type cell_kind = Run | Wait | Back | Idle | Done

type cell = { attempt : int; kind : cell_kind }

type thread_status =
  | Idle_s
  | Running_s
  | Waiting_s of {
      obj : int;
      enemy : int * int;
      deadline : int option;
      since : int;  (** Tick the wait started — the wait-duration sample. *)
    }
  | Backing_off_s of { until : int }
  | Finished_s

type tstate = {
  tid : int;
  stream : int -> Spec.txn option;
  mutable txn_index : int;
  mutable txn : Spec.txn option;
  mutable timestamp : int;
  mutable attempt : int;  (** Global per-thread attempt counter. *)
  mutable attempt_uid : int;
      (** Trace-level attempt identity, from the same counter the STM
          runtime draws [Txn.attempt_id] from, so merged traces never
          collide. *)
  mutable status : thread_status;
  mutable attempt_start : int;  (** Tick the current attempt began (metrics). *)
  mutable opens_base : int;
      (** [opens] at the current attempt's start; the difference is the
          attempt's read-set size ([opens] itself is cumulative, the
          policies read it as pressure). *)
  mutable progress : int;
  mutable pending : Spec.access list;
  mutable held : int list;  (** Objects owned for writing. *)
  mutable reading : int list;  (** Objects registered as reader. *)
  mutable waiting_flag : bool;
  priority : int ref;
  mutable aborts : int;
  mutable opens : int;
  mutable stuck : int;  (** Consecutive resolves at the current access. *)
  mutable commits : int;
  mutable cur_aborts : int;  (** Restarts of the current transaction. *)
  mutable aborted_this_tick : bool;
  view : Policy.view;
      (** Cached policy view, refreshed in place by [view_of] before
          each resolve — no per-conflict allocation. *)
}

type obj_state = { mutable owner : int option; mutable readers : int list }

type result = {
  ticks : int;
  completed : bool;  (** All streams exhausted within the horizon. *)
  makespan : int option;  (** Tick of the last commit, when [completed]. *)
  commits : int;
  aborts : int;
  commit_log : (int * int * int) list;
      (** [(thread, txn_index, tick)] in commit order. *)
  per_thread_commits : int array;
  per_thread_aborts : int array;
  max_aborts_one_txn : int;
      (** Worst number of restarts any single transaction needed — the
          starvation metric for the timestamp-retention ablation. *)
  grid : cell array array;  (** [grid.(tick).(thread)], possibly empty. *)
  policy_name : string;
}

let default_horizon = 1_000_000

let view_of (t : tstate) : Policy.view =
  let v = t.view in
  v.Policy.timestamp <- t.timestamp;
  v.Policy.waiting <- t.waiting_flag;
  v.Policy.aborts <- t.aborts;
  v.Policy.opens <- t.opens;
  v

let run ?(horizon = default_horizon) ?(record_grid = false) ?ranks
    ?(ts_on_restart = `Keep) ~(policy : Policy.t) ~n_objects
    (streams : (int -> Spec.txn option) array) : result =
  let n = Array.length streams in
  (* Same instrument names as the live runtime; runtime="sim" keeps the
     units (ticks vs us) apart in the registry.  The simulator models
     the eager locator protocol, so its series carry backend="locator"
     explicitly. *)
  let mx =
    Tcm_metrics.Conventions.for_manager ~runtime:"sim" ~backend:"locator"
      policy.Policy.name
  in
  (* Matching obs handles: aborts/waits priced in ticks, conflict keys
     are the scenario's object ids. *)
  let obs =
    Tcm_obs.Ledger.for_manager ~runtime:"sim" ~backend:"locator"
      policy.Policy.name
  in
  let hot =
    Tcm_obs.Hot.for_manager ~runtime:"sim" ~backend:"locator" policy.Policy.name
  in
  let ts_counter =
    (* Later transactions must be younger than any explicit rank. *)
    ref (match ranks with None -> 0 | Some r -> Array.fold_left max 0 r)
  in
  let fresh_timestamp () =
    incr ts_counter;
    !ts_counter
  in
  let initial_timestamp tid =
    match ranks with
    | Some r when tid < Array.length r -> r.(tid)
    | _ -> fresh_timestamp ()
  in
  let threads =
    Array.init n (fun tid ->
        (* The cached view shares the [priority] ref with the thread
           state, so Eruption's pressure transfer lands in both. *)
        let priority = ref 0 in
        {
          tid;
          stream = streams.(tid);
          txn_index = 0;
          txn = None;
          timestamp = max_int;
          attempt = 0;
          attempt_uid = 0;
          status = Idle_s;
          attempt_start = 0;
          opens_base = 0;
          progress = 0;
          pending = [];
          held = [];
          reading = [];
          waiting_flag = false;
          priority;
          aborts = 0;
          opens = 0;
          stuck = 0;
          commits = 0;
          cur_aborts = 0;
          aborted_this_tick = false;
          view =
            {
              Policy.id = tid;
              timestamp = max_int;
              waiting = false;
              priority;
              aborts = 0;
              opens = 0;
            };
        })
  in
  let objs = Array.init n_objects (fun _ -> { owner = None; readers = [] }) in
  let total_aborts = ref 0 in
  let total_commits = ref 0 in
  let max_aborts_one_txn = ref 0 in
  let commit_log = ref [] in
  let grid = ref [] in

  (* Fault injection: a halted transaction stops acting but stays
     active and keeps its objects (Section 6's "transactions that stop
     prematurely").  Its thread is dead: if an enemy aborts it, the
     thread is finished rather than restarted. *)
  let is_halted (t : tstate) =
    match t.txn with
    | Some { Spec.halts_at = Some p; _ } -> t.progress >= p
    | _ -> false
  in

  let release (t : tstate) =
    List.iter (fun o -> if objs.(o).owner = Some t.tid then objs.(o).owner <- None) t.held;
    List.iter
      (fun o -> objs.(o).readers <- List.filter (fun r -> r <> t.tid) objs.(o).readers)
      t.reading;
    t.held <- [];
    t.reading <- []
  in

  let abort (victim : tstate) ~now =
    let halted = is_halted victim in
    Tcm_trace.Sink.attempt_abort ~txid:victim.timestamp
      ~attempt:victim.attempt_uid ~tick:now;
    Tcm_metrics.Conventions.attempt_abort mx ~duration:(now - victim.attempt_start);
    Tcm_obs.Ledger.charge_abort obs ~work:(victim.opens - victim.opens_base);
    release victim;
    victim.waiting_flag <- false;
    victim.aborts <- victim.aborts + 1;
    victim.cur_aborts <- victim.cur_aborts + 1;
    max_aborts_one_txn := max !max_aborts_one_txn victim.cur_aborts;
    if halted then begin
      (* The thread behind it is dead; clearing the objects is all an
         enemy can do. *)
      victim.txn <- None;
      victim.status <- Finished_s;
      victim.aborted_this_tick <- true
    end
    else begin
      (* Ablation hook: the paper's greedy retains the timestamp across
         aborts; [`Fresh] deliberately breaks that to demonstrate why. *)
      (match ts_on_restart with
      | `Keep -> ()
      | `Fresh -> victim.timestamp <- fresh_timestamp ());
      victim.progress <- 0;
      victim.stuck <- 0;
      victim.pending <- (match victim.txn with Some t -> t.Spec.accesses | None -> []);
      victim.aborted_this_tick <- true;
      (* Restart (same timestamp, same txn) at the next tick. *)
      victim.status <- Backing_off_s { until = now + 1 };
      victim.attempt <- victim.attempt + 1;
      victim.attempt_uid <- Tcm_stm.Txid.next_attempt_id ();
      victim.attempt_start <- now + 1;
      victim.opens_base <- victim.opens;
      Tcm_metrics.Conventions.attempt_begin mx;
      Tcm_trace.Sink.attempt_begin ~txid:victim.timestamp
        ~attempt:victim.attempt_uid ~tick:(now + 1)
    end;
    incr total_aborts
  in

  (* First conflicting party for an access, if any. *)
  let conflict_of (t : tstate) (a : Spec.access) : tstate option =
    let o = objs.(a.Spec.obj) in
    let owner_conflict =
      match o.owner with Some w when w <> t.tid -> Some threads.(w) | _ -> None
    in
    match a.Spec.kind with
    | Spec.Read -> owner_conflict
    | Spec.Write -> (
        match owner_conflict with
        | Some _ as c -> c
        | None -> (
            match List.find_opt (fun r -> r <> t.tid) o.readers with
            | Some r -> Some threads.(r)
            | None -> None))
  in

  let do_acquire (t : tstate) (a : Spec.access) ~now =
    let o = objs.(a.Spec.obj) in
    (match a.Spec.kind with
    | Spec.Write ->
        o.owner <- Some t.tid;
        o.readers <- List.filter (fun r -> r <> t.tid) o.readers;
        if not (List.mem a.Spec.obj t.held) then t.held <- a.Spec.obj :: t.held;
        t.reading <- List.filter (fun x -> x <> a.Spec.obj) t.reading
    | Spec.Read ->
        if o.owner <> Some t.tid && not (List.mem t.tid o.readers) then begin
          o.readers <- t.tid :: o.readers;
          t.reading <- a.Spec.obj :: t.reading
        end);
    t.opens <- t.opens + 1;
    t.priority := !(t.priority) + 1;
    t.stuck <- 0;
    Tcm_trace.Sink.acquired ~txid:t.timestamp ~obj:a.Spec.obj
      ~write:(a.Spec.kind = Spec.Write) ~tick:now
  in

  (* Attempt all accesses due at the current progress point.  Returns
     when the thread is no longer Running or all due accesses are in. *)
  let rec process_accesses (t : tstate) ~now =
    match t.pending with
    | a :: rest when a.Spec.at <= t.progress -> (
        if
          (* Already own it for writing: nothing to do. *)
          objs.(a.Spec.obj).owner = Some t.tid
        then begin
          t.pending <- rest;
          t.stuck <- 0;
          process_accesses t ~now
        end
        else
          match conflict_of t a with
          | None ->
              do_acquire t a ~now;
              t.pending <- rest;
              process_accesses t ~now
          | Some enemy -> (
              let d =
                policy.Policy.resolve ~me:(view_of t) ~other:(view_of enemy) ~attempts:t.stuck
                  ~now
              in
              (* Trace decision codes double as metrics verdict codes. *)
              let dcode =
                match d with
                | Policy.Abort_other -> Tcm_trace.Event.d_abort_other
                | Policy.Abort_self -> Tcm_trace.Event.d_abort_self
                | Policy.Block _ -> Tcm_trace.Event.d_block
                | Policy.Backoff _ -> Tcm_trace.Event.d_backoff
              in
              if Tcm_trace.Sink.enabled () then
                Tcm_trace.Sink.conflict ~me:t.timestamp ~other:enemy.timestamp
                  ~decision:dcode ~tick:now;
              Tcm_metrics.Conventions.resolve mx dcode;
              Tcm_obs.Hot.record hot a.Spec.obj;
              t.stuck <- t.stuck + 1;
              match d with
              | Policy.Abort_other ->
                  abort enemy ~now;
                  process_accesses t ~now
              | Policy.Abort_self -> abort t ~now
              | Policy.Block { timeout } ->
                  t.waiting_flag <- true;
                  Tcm_trace.Sink.wait_begin ~me:t.timestamp
                    ~enemy:enemy.timestamp ~tick:now;
                  t.status <-
                    Waiting_s
                      {
                        obj = a.Spec.obj;
                        enemy = (enemy.tid, enemy.attempt);
                        deadline = Option.map (fun d -> now + d) timeout;
                        since = now;
                      }
              | Policy.Backoff d ->
                  t.status <- Backing_off_s { until = now + max 1 d }))
    | _ -> ()
  in

  let start_next_txn (t : tstate) ~now =
    match t.stream t.txn_index with
    | None -> t.status <- Finished_s
    | Some txn ->
        t.txn <- Some txn;
        t.timestamp <-
          (if t.txn_index = 0 then initial_timestamp t.tid else fresh_timestamp ());
        t.cur_aborts <- 0;
        t.progress <- 0;
        t.pending <- txn.Spec.accesses;
        t.stuck <- 0;
        t.priority := 0;
        t.attempt <- t.attempt + 1;
        t.attempt_uid <- Tcm_stm.Txid.next_attempt_id ();
        t.attempt_start <- now;
        t.opens_base <- t.opens;
        Tcm_metrics.Conventions.attempt_begin mx;
        Tcm_trace.Sink.attempt_begin ~txid:t.timestamp ~attempt:t.attempt_uid
          ~tick:now;
        t.status <- Running_s;
        process_accesses t ~now
  in

  let phase_a now =
    Array.iter
      (fun t ->
        t.aborted_this_tick <- false;
        match t.status with
        | Finished_s -> ()
        | Idle_s -> start_next_txn t ~now
        | Running_s -> if not (is_halted t) then process_accesses t ~now
        | Backing_off_s { until } ->
            if now >= until then begin
              t.status <- Running_s;
              process_accesses t ~now
            end
        | Waiting_s { obj; enemy = enemy_tid, enemy_attempt; deadline; since } ->
            let resume =
              (match objs.(obj).owner with
              | None -> true
              | Some w ->
                  w <> enemy_tid
                  || threads.(w).attempt <> enemy_attempt
                  || threads.(w).waiting_flag)
              || match deadline with Some d -> now >= d | None -> false
            in
            if resume then begin
              t.waiting_flag <- false;
              Tcm_metrics.Conventions.wait mx ~duration:(now - since);
              (* Ticks are the sim's native duration, so cost and the
                 ladder-tick pricing coincide (and the metrics
                 histogram sum reconciles exactly). *)
              Tcm_obs.Ledger.charge_wait obs ~cost:(now - since)
                ~ticks:(now - since);
              Tcm_trace.Sink.wait_end ~me:t.timestamp
                ~enemy:threads.(enemy_tid).timestamp ~tick:now;
              t.status <- Running_s;
              process_accesses t ~now
            end)
      threads
  in

  let phase_b now =
    Array.iter
      (fun t ->
        match t.status with
        | Running_s when (not t.aborted_this_tick) && not (is_halted t) -> (
            match t.txn with
            | None -> ()
            | Some txn ->
                t.progress <- t.progress + 1;
                if t.progress >= txn.Spec.dur then begin
                  release t;
                  Tcm_trace.Sink.attempt_commit ~txid:t.timestamp
                    ~attempt:t.attempt_uid ~tick:(now + 1);
                  Tcm_metrics.Conventions.attempt_commit mx
                    ~duration:(now + 1 - t.attempt_start)
                    ~read_set:(t.opens - t.opens_base);
                  Tcm_obs.Ledger.note_commit obs ~work:(t.opens - t.opens_base);
                  t.commits <- t.commits + 1;
                  incr total_commits;
                  commit_log := (t.tid, t.txn_index, now + 1) :: !commit_log;
                  t.txn <- None;
                  t.txn_index <- t.txn_index + 1;
                  t.priority := 0;
                  t.status <- Idle_s
                end)
        | _ -> ())
      threads
  in

  let snapshot () =
    Array.map
      (fun t ->
        let kind =
          match t.status with
          | Running_s -> Run
          | Waiting_s _ -> Wait
          | Backing_off_s _ -> Back
          | Idle_s -> Idle
          | Finished_s -> Done
        in
        { attempt = t.attempt; kind })
      threads
  in

  let all_finished () = Array.for_all (fun t -> t.status = Finished_s) threads in

  let tick = ref 0 in
  (* Threads discover stream exhaustion when Idle; prime the check. *)
  while (not (all_finished ())) && !tick < horizon do
    phase_a !tick;
    if record_grid then grid := snapshot () :: !grid;
    phase_b !tick;
    incr tick
  done;
  let completed = all_finished () in
  let commit_log = List.rev !commit_log in
  let makespan =
    if completed then
      Some (List.fold_left (fun acc (_, _, t) -> max acc t) 0 commit_log)
    else None
  in
  {
    ticks = !tick;
    completed;
    makespan;
    commits = !total_commits;
    aborts = !total_aborts;
    commit_log;
    per_thread_commits = Array.map (fun (t : tstate) -> t.commits) threads;
    per_thread_aborts = Array.map (fun (t : tstate) -> t.aborts) threads;
    max_aborts_one_txn = !max_aborts_one_txn;
    grid = Array.of_list (List.rev !grid);
    policy_name = policy.Policy.name;
  }

(** One transaction per thread, all arriving at tick 0.  Without
    [ranks], thread order is priority order (thread 0 oldest);
    [ranks.(i)] overrides the timestamp of thread [i]'s transaction
    (smaller = older). *)
let run_instance ?horizon ?record_grid ?ranks ?ts_on_restart ~policy (inst : Spec.instance) :
    result =
  let streams =
    Array.map (fun txn k -> if k = 0 then Some txn else None) inst.txns
  in
  run ?horizon ?record_grid ?ranks ?ts_on_restart ~policy ~n_objects:inst.n_objects streams
