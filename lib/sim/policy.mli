(** Simulated contention-manager policies, mirroring [Tcm_core] on the
    deterministic tick clock.  A policy sees only the public view of
    the two parties (Section 2's decentralised model). *)

type view = {
  id : int;
  mutable timestamp : int;  (** Smaller = older = higher priority. *)
  mutable waiting : bool;
  priority : int ref;  (** Shared with the engine; Eruption mutates it. *)
  mutable aborts : int;
  mutable opens : int;
}
(** Mutable so the engine can keep one cached view per simulated thread
    and refresh it in place before each resolve (no per-conflict
    allocation).  Policies read fields during [resolve] only — a view
    must never be retained across calls. *)

type decision =
  | Abort_other
  | Abort_self
  | Block of { timeout : int option }  (** Ticks. *)
  | Backoff of int  (** Ticks. *)

val backoff : int -> decision
(** Preallocated [Backoff] for tick durations below an internal bound
    (larger durations fall back to a fresh record). *)

val block_for : int -> decision
(** Preallocated bounded [Block], likewise. *)

val block_forever : decision

module Prng = Tcm_stm.Splitmix

type t = {
  name : string;
  resolve : me:view -> other:view -> attempts:int -> now:int -> decision;
}

val older_than : view -> view -> bool

val greedy : unit -> t
val greedy_ft : ?base:int -> unit -> t
val aggressive : unit -> t
val timid : unit -> t
val polite : ?max_tries:int -> ?base:int -> seed:int -> unit -> t
val randomized : seed:int -> unit -> t
val karma : ?backoff_ticks:int -> unit -> t
val eruption : ?backoff_ticks:int -> unit -> t
val kindergarten : ?rounds:int -> unit -> t
val timestamp : ?quantum:int -> ?max_quanta:int -> unit -> t
val killblocked : ?max_tries:int -> unit -> t
val polka : ?base:int -> seed:int -> unit -> t

val randomized_greedy : seed:int -> unit -> t
(** Greedy with random (hash-of-timestamp) priorities retained across
    aborts — an experiment on the paper's closing open problem.  Keeps
    the pending-commit property (strict total order on ranks) but is
    immune to adversaries that exploit arrival order. *)

val queue_on_block : ?mode:[ `Bounded | `Unbounded ] -> unit -> t
(** [`Unbounded] reproduces the dependency-cycle livelock the paper
    warns about; [`Bounded] matches the defensive real manager. *)

val sto_adaptive : ?threshold:int -> ?max_rounds:int -> seed:int -> unit -> t
(** Tick-clock analogue of [Tcm_core.Sto_adaptive]: abort self while
    the current transaction's investment (priority counter) is below
    [threshold], then fight greedy-by-age — still-timid enemies read
    as youngest — with a randomized, abort-scaled, [max_rounds]-bounded
    wait. *)

val all : seed:int -> unit -> t list

val paper_figures : seed:int -> unit -> t list
(** The Figure 1–4 line-up: greedy, karma, eruption, aggressive,
    backoff. *)
