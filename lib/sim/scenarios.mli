(** Canonical simulation scenarios. *)

module Prng = Policy.Prng

val adversarial_chain :
  ?granularity:int -> s:int -> unit -> Spec.instance * int array
(** The Section 4 chain in [granularity] ticks per paper time unit
    (>= 2).  Returns the instance and the inverted priority ranks
    ([T_i] older than [T_{i-1}]).
    @raise Invalid_argument if [s < 1] or [granularity < 2]. *)

val dependency_cycle : unit -> Spec.instance
(** Two transactions that each open the other's first object late:
    unbounded FIFO waiting cycles forever. *)

val halted_owner : ?n:int -> unit -> Spec.instance
(** Thread 0 halts holding the hot object (Section 6); threads
    [1..n-1] need it to commit. *)

val random_instance :
  seed:int -> n:int -> s:int -> ?max_dur:int -> ?max_acc:int -> unit -> Spec.instance

val hotspot_instance :
  seed:int -> n:int -> s:int -> ?theta:float -> dur:int -> unit -> Spec.instance
(** [n] single-write transactions over [s] objects with Zipf([theta])
    skew (default 0.9, object 0 hottest), via the shared
    {!Tcm_dist.Samplers.Zipf} sampler; deterministic in [seed]. *)
