(** Tests for the STM substrate: transactional variables, transaction
    descriptors, the runtime's read/write/commit semantics (both read
    modes), nesting, abort handling, statistics, and multi-domain
    atomicity stress. *)

open Tcm_stm

let rt_with ?config name = Stm.create ?config (Tcm_core.Registry.find_exn name)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Splitmix                                                            *)
(* ------------------------------------------------------------------ *)

let t_splitmix_deterministic () =
  let a = Splitmix.create 7 and b = Splitmix.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let t_splitmix_bounds () =
  let r = Splitmix.create 3 in
  for _ = 1 to 1000 do
    let v = Splitmix.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  check_int "bound 1 yields 0" 0 (Splitmix.int r 1);
  check_int "bound 0 yields 0" 0 (Splitmix.int r 0)

let t_splitmix_float () =
  let r = Splitmix.create 11 in
  for _ = 1 to 1000 do
    let v = Splitmix.float r in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let t_splitmix_bool_balanced () =
  let r = Splitmix.create 13 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Splitmix.bool r then incr trues
  done;
  check_bool "roughly balanced" true (!trues > 400 && !trues < 600)

(* ------------------------------------------------------------------ *)
(* Txn descriptors                                                     *)
(* ------------------------------------------------------------------ *)

let t_txn_lifecycle () =
  let t = Txn.new_attempt (Txn.new_shared ()) in
  check_bool "starts active" true (Txn.is_active t);
  check_bool "abort succeeds" true (Txn.try_abort t);
  check_bool "is aborted" true (Txn.is_aborted t);
  check_bool "second abort reports aborted" true (Txn.try_abort t);
  check_bool "commit after abort fails" false (Txn.try_commit t);
  check_int "abort counted once" 1 (Txn.abort_count t)

let t_txn_commit_blocks_abort () =
  let t = Txn.new_attempt (Txn.new_shared ()) in
  check_bool "commit succeeds" true (Txn.try_commit t);
  check_bool "abort after commit fails" false (Txn.try_abort t);
  check_bool "still committed" true (Txn.is_committed t)

let t_txn_timestamps_monotonic () =
  let a = Txn.new_shared () in
  let b = Txn.new_shared () in
  check_bool "later shared is younger" true (a.Txn.timestamp < b.Txn.timestamp)

let t_txn_shared_across_attempts () =
  let shared = Txn.new_shared () in
  let a1 = Txn.new_attempt shared in
  ignore (Txn.try_abort a1);
  let a2 = Txn.new_attempt shared in
  check_int "timestamp retained" (Txn.timestamp a1) (Txn.timestamp a2);
  check_int "abort count carried" 1 (Txn.abort_count a2);
  check_bool "distinct attempt ids" true (a1.Txn.attempt_id <> a2.Txn.attempt_id)

let t_txn_priority_ops () =
  let t = Txn.new_attempt (Txn.new_shared ()) in
  Txn.record_open t;
  Txn.record_open t;
  check_int "opens" 2 (Txn.open_count t);
  check_int "priority follows opens" 2 (Txn.priority t);
  Txn.add_priority t 5;
  check_int "explicit add" 7 (Txn.priority t)

let t_sentinel () =
  check_bool "sentinel committed" true (Txn.is_committed Txn.committed_sentinel);
  check_int "sentinel timestamp" 0 (Txn.timestamp Txn.committed_sentinel)

(* ------------------------------------------------------------------ *)
(* Tvar                                                                *)
(* ------------------------------------------------------------------ *)

let t_tvar_peek () =
  let v = Tvar.make 42 in
  check_int "initial" 42 (Tvar.peek v)

let t_tvar_ids_unique () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  check_bool "distinct ids" true (Tvar.id a <> Tvar.id b)

let t_tvar_readers () =
  let v = Tvar.make 0 in
  let t1 = Txn.new_attempt (Txn.new_shared ()) in
  let t2 = Txn.new_attempt (Txn.new_shared ()) in
  Tvar.register_reader v t1;
  Tvar.register_reader v t1;
  (* idempotent *)
  Tvar.register_reader v t2;
  (match Tvar.find_active_reader v t1 with
  | Some r -> check_int "finds the other reader" t2.Txn.attempt_id r.Txn.attempt_id
  | None -> Alcotest.fail "expected an active reader");
  ignore (Txn.try_abort t2);
  check_bool "dead readers skipped" true (Tvar.find_active_reader v t1 = None);
  Tvar.purge_readers v;
  ignore (Txn.try_abort t1)

(* ------------------------------------------------------------------ *)
(* Runtime: single-threaded semantics                                  *)
(* ------------------------------------------------------------------ *)

let t_read_write () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 1 in
  let r =
    Stm.atomically rt (fun tx ->
        let x = Stm.read tx v in
        Stm.write tx v (x + 10);
        Stm.read tx v)
  in
  check_int "read-your-writes" 11 r;
  check_int "committed" 11 (Tvar.peek v)

let t_modify_and_read_for_write () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 5 in
  Stm.atomically rt (fun tx -> Stm.modify tx v (fun x -> x * 3));
  check_int "modify" 15 (Tvar.peek v);
  let r = Stm.atomically rt (fun tx -> Stm.read_for_write tx v) in
  check_int "read_for_write" 15 r

let t_multiple_tvars () =
  let rt = rt_with "greedy" in
  let vars = Array.init 10 (fun i -> Tvar.make i) in
  Stm.atomically rt (fun tx -> Array.iter (fun v -> Stm.modify tx v (fun x -> x + 100)) vars);
  Array.iteri (fun i v -> check_int "each updated" (i + 100) (Tvar.peek v)) vars

let t_user_exception_aborts () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 1 in
  (try
     Stm.atomically rt (fun tx ->
         Stm.write tx v 99;
         failwith "boom")
   with Failure _ -> ());
  check_int "write discarded" 1 (Tvar.peek v);
  let s = Stm.stats rt in
  check_int "no commit" 0 s.Runtime.n_commits;
  check_int "one abort" 1 s.Runtime.n_aborts

let t_retry_now () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 0 in
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        Stm.write tx v !attempts;
        if !attempts < 3 then Stm.retry_now tx else !attempts)
  in
  check_int "ran three times" 3 r;
  check_int "only final attempt committed" 3 (Tvar.peek v)

let t_max_attempts () =
  let config = { Runtime.default_config with max_attempts = Some 4 } in
  let rt = Stm.create ~config (module Tcm_core.Greedy) in
  let hits = ref 0 in
  check_bool "raises Too_many_attempts" true
    (try
       Stm.atomically rt (fun tx ->
           incr hits;
           Stm.retry_now tx)
     with Runtime.Too_many_attempts _ -> true);
  check_int "ran exactly max_attempts times" 4 !hits

let t_nested_flattens () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 0 in
  Stm.atomically rt (fun tx ->
      Stm.write tx v 1;
      (* The nested atomically reuses the enclosing transaction, so it
         sees the uncommitted write. *)
      let inner = Stm.atomically rt (fun tx' -> Stm.read tx' v) in
      check_int "nested sees outer write" 1 inner;
      Stm.write tx v (inner + 1));
  check_int "single commit" 2 (Tvar.peek v);
  check_int "one commit counted" 1 (Stm.stats rt).Runtime.n_commits

let t_stats_accumulate () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 0 in
  for _ = 1 to 5 do
    Stm.atomically rt (fun tx -> Stm.modify tx v succ)
  done;
  check_int "five commits" 5 (Stm.stats rt).Runtime.n_commits;
  check_int "value" 5 (Tvar.peek v)

let t_manager_name () =
  Alcotest.(check string) "exposed" "karma" (Stm.manager_name (rt_with "karma"))

let t_invisible_mode_semantics () =
  let config = { Runtime.default_config with read_mode = `Invisible } in
  let rt = Stm.create ~config (module Tcm_core.Greedy) in
  let v = Tvar.make 7 in
  let r =
    Stm.atomically rt (fun tx ->
        let a = Stm.read tx v in
        Stm.write tx v (a + 1);
        Stm.read tx v)
  in
  check_int "invisible read-your-writes" 8 r;
  check_int "committed" 8 (Tvar.peek v)

let t_atomic_return_value () =
  let rt = rt_with "greedy" in
  Alcotest.(check string) "passes value through" "hello"
    (Stm.atomically rt (fun _ -> "hello"))

(* A transaction that only reads commits without touching anything. *)
let t_read_only () =
  let rt = rt_with "greedy" in
  let v = Tvar.make 3 in
  check_int "read-only" 3 (Stm.atomically rt (fun tx -> Stm.read tx v));
  check_int "still one commit" 1 (Stm.stats rt).Runtime.n_commits

(* ------------------------------------------------------------------ *)
(* Runtime: concurrency                                                *)
(* ------------------------------------------------------------------ *)

let conservation_run manager_name =
  let rt = rt_with manager_name in
  let a = Tvar.make 500 and b = Tvar.make 500 in
  let n_domains = 4 and iters = 250 in
  let doms =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Splitmix.create (d + 1) in
            for _ = 1 to iters do
              let amt = 1 + Splitmix.int rng 5 in
              Stm.atomically rt (fun tx ->
                  let x = Stm.read tx a in
                  Stm.write tx a (x - amt);
                  Stm.write tx b (Stm.read tx b + amt))
            done))
  in
  List.iter Domain.join doms;
  check_int
    (Printf.sprintf "conservation under %s" manager_name)
    1000
    (Tvar.peek a + Tvar.peek b);
  check_int "all committed" (n_domains * iters) (Stm.stats rt).Runtime.n_commits

let t_snapshot_isolation () =
  (* Writers keep x + y constant; concurrent readers snapshot both and
     must never observe a broken invariant — the classic isolation
     check for visible reads. *)
  let rt = rt_with "greedy" in
  let x = Tvar.make 500 and y = Tvar.make 500 in
  let violations = Atomic.make 0 in
  let stop = Atomic.make false in
  let writer d =
    Domain.spawn (fun () ->
        let rng = Splitmix.create (d + 3) in
        for _ = 1 to 400 do
          let amt = 1 + Splitmix.int rng 20 in
          Stm.atomically rt (fun tx ->
              let vx = Stm.read tx x in
              Stm.write tx x (vx - amt);
              Stm.write tx y (Stm.read tx y + amt))
        done)
  in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let sum = Stm.atomically rt (fun tx -> Stm.read tx x + Stm.read tx y) in
          if sum <> 1000 then Atomic.incr violations
        done)
  in
  let ws = [ writer 1; writer 2 ] in
  List.iter Domain.join ws;
  Atomic.set stop true;
  Domain.join reader;
  check_int "no isolation violations" 0 (Atomic.get violations);
  check_int "final sum conserved" 1000 (Tvar.peek x + Tvar.peek y)

let t_check_and_retry_wait () =
  let rt = rt_with "greedy" in
  let gate = Tvar.make false in
  let results = Tvar.make 0 in
  let waiter =
    Domain.spawn (fun () ->
        Stm.atomically rt (fun tx ->
            Stm.check tx (Stm.read tx gate);
            Stm.modify tx results succ))
  in
  (* The waiter blocks until the gate opens. *)
  Unix.sleepf 0.02;
  check_int "not yet" 0 (Tvar.peek results);
  Stm.atomically rt (fun tx -> Stm.write tx gate true);
  Domain.join waiter;
  check_int "ran once the gate opened" 1 (Tvar.peek results)

let t_check_true_is_noop () =
  let rt = rt_with "greedy" in
  let v =
    Stm.atomically rt (fun tx ->
        Stm.check tx true;
        42)
  in
  check_int "passes through" 42 v

let t_conservation_greedy () = conservation_run "greedy"
let t_conservation_karma () = conservation_run "karma"
let t_conservation_aggressive () = conservation_run "aggressive"
let t_conservation_polka () = conservation_run "polka"

let t_counter_exact () =
  let rt = rt_with "greedy" in
  let c = Tvar.make 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Stm.atomically rt (fun tx -> Stm.modify tx c succ)
            done))
  in
  List.iter Domain.join doms;
  check_int "no lost updates" 2000 (Tvar.peek c)

let t_disjoint_domains () =
  let rt = rt_with "greedy" in
  let vars = Array.init 4 (fun _ -> Tvar.make 0) in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 300 do
              Stm.atomically rt (fun tx -> Stm.modify tx vars.(d) succ)
            done))
  in
  List.iter Domain.join doms;
  Array.iter (fun v -> check_int "disjoint counters exact" 300 (Tvar.peek v)) vars

let t_concurrent_invisible () =
  let config = { Runtime.default_config with read_mode = `Invisible } in
  let rt = Stm.create ~config (module Tcm_core.Greedy) in
  let c = Tvar.make 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 300 do
              (* Write-path read: exact even with invisible readers. *)
              Stm.atomically rt (fun tx -> Stm.write tx c (Stm.read_for_write tx c + 1))
            done))
  in
  List.iter Domain.join doms;
  check_int "invisible mode, write-path counter" 1200 (Tvar.peek c)

(* ------------------------------------------------------------------ *)
(* Invisible-read validation                                           *)
(* ------------------------------------------------------------------ *)

let invisible_rt () =
  let config = { Runtime.default_config with read_mode = `Invisible } in
  Stm.create ~config (module Tcm_core.Greedy)

(* Run [f] to a commit on another domain, deterministically in the
   middle of the calling transaction's attempt. *)
let enemy_commit rt f = Domain.join (Domain.spawn (fun () -> Stm.atomically rt f))

let t_inv_upgrade_commits () =
  let rt = invisible_rt () in
  let v = Tvar.make 10 in
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx v in
        (* Read-then-write of the same variable: the acquire flips the
           read entry to its upgrade branch, which must validate. *)
        Stm.write tx v (x + 1);
        Stm.read tx v)
  in
  check_int "upgrade read-your-write" 11 r;
  check_int "single attempt" 1 !attempts;
  check_int "committed" 11 (Tvar.peek v)

let t_inv_upgrade_enemy () =
  let rt = invisible_rt () in
  let v = Tvar.make 1 in
  let first = ref true in
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx v in
        if !first then begin
          first := false;
          enemy_commit rt (fun tx' -> Stm.write tx' v 2)
        end;
        (* The upgrade acquire must notice the value it read is stale
           and abort this attempt rather than overwrite blindly. *)
        Stm.write tx v (x + 10);
        Stm.read tx v)
  in
  check_int "two attempts" 2 !attempts;
  check_int "built on the enemy's value" 12 r;
  check_int "committed" 12 (Tvar.peek v)

let t_inv_extension_consistent () =
  let rt = invisible_rt () in
  let a = Tvar.make 1 and b = Tvar.make 100 in
  let first = ref true in
  let attempts = ref 0 in
  let sum =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx a in
        if !first then begin
          first := false;
          enemy_commit rt (fun tx' -> Stm.write tx' b 200)
        end;
        (* [b]'s stamp moved past the watermark, so this read takes the
           slow path; [a] is untouched, so validation extends and the
           attempt survives with a consistent (pre-commit a, post-commit
           b) snapshot. *)
        x + Stm.read tx b)
  in
  check_int "extension keeps the attempt alive" 1 !attempts;
  check_int "sees the committed b" 201 sum

let t_inv_validation_failure () =
  let rt = invisible_rt () in
  let a = Tvar.make 1 and b = Tvar.make 100 in
  let first = ref true in
  let attempts = ref 0 in
  let sum =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx a in
        if !first then begin
          first := false;
          enemy_commit rt (fun tx' ->
              Stm.write tx' a 2;
              Stm.write tx' b 200)
        end;
        (* Reading [b] forces revalidation, which must notice [a]
           changed and abort instead of returning the torn 1 + 200. *)
        x + Stm.read tx b)
  in
  check_int "aborted the torn snapshot" 2 !attempts;
  check_int "consistent final snapshot" 202 sum

let t_inv_commit_validation () =
  let rt = invisible_rt () in
  let a = Tvar.make 5 in
  let first = ref true in
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx a in
        if !first then begin
          first := false;
          enemy_commit rt (fun tx' -> Stm.write tx' a 6)
        end;
        x)
  in
  check_int "retried after commit-time failure" 2 !attempts;
  check_int "returns the enemy's value" 6 r

(* Regression: commit publication writes stamps *before* the status
   CAS, so a reader can record an entry against a still-Active owner
   whose stamp cell already holds that owner's commit stamp.  The
   owner's later status flip then invalidates the entry without moving
   any stamp — validation must recheck such entries anyway instead of
   trusting the unchanged stamp (which would let the torn snapshot
   pass commit-time validation). *)
let t_inv_published_stamp_race () =
  let rt = invisible_rt () in
  let a = Tvar.make 100 in
  (* Hand-build an enemy frozen between publication and its status
     CAS: locator installed, commit stamp published, still Active. *)
  let enemy = Txn.new_attempt (Txn.new_shared ()) in
  Atomic.set a.Tvar.loc
    { Tvar.owner = enemy; old_v = 100; new_v = 200; gen = Atomic.make 0 };
  Tvar.bump_version a;
  Tvar.advance_stamp (Tvar.stamp_cell a) (Tvar.next_stamp ());
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        (* The reader starts after the publication stamp was drawn, so
           the stamp sits at or below its watermark and can never move
           again for this commit. *)
        let x = Stm.read tx a in
        if !attempts = 1 then begin
          check_int "resolved the pre-commit value" 100 x;
          ignore (Txn.try_commit enemy)
        end;
        x)
  in
  check_int "caught the stamp-free status flip" 2 !attempts;
  check_int "returns the committed value" 200 r

let t_stamp_monotone () =
  let cell = Atomic.make 10 in
  Tvar.advance_stamp cell 5;
  check_int "lagging publication cannot move a stamp backward" 10 (Atomic.get cell);
  Tvar.advance_stamp cell 12;
  check_int "newer stamp still advances" 12 (Atomic.get cell)

(* ------------------------------------------------------------------ *)
(* Locator pool (PR 4: allocation-free write path)                     *)
(* ------------------------------------------------------------------ *)

let t_pool_reuse_lifo () =
  let p = Tvar.domain_pool () in
  let owner = Txn.new_attempt (Txn.new_shared ()) in
  let l1 = Tvar.take_locator p ~owner ~old_v:1 ~new_v:2 in
  let g1 = Tvar.locator_gen l1 in
  ignore (Txn.try_commit owner);
  (* Owner decided + never published: recyclable. *)
  check_bool "recycled" true (Tvar.recycle_locator p l1);
  let l2 = Tvar.take_locator p ~owner ~old_v:3 ~new_v:4 in
  check_bool "freelist is LIFO: same locator back" true (l2 == l1);
  check_bool "reported as a hit" true (Tvar.last_take_hit p);
  (* Two-phase seqlock: odd while the refill stores are in flight,
     back to even once the incarnation is complete. *)
  check_int "generation bumped twice per reuse" (g1 + 2) (Tvar.locator_gen l2);
  check_bool "generation even after refill" true
    (Tvar.gen_stable (Tvar.locator_gen l2));
  check_int "fields refilled" 3 l2.Tvar.old_v;
  check_int "tentative value preset" 4 l2.Tvar.new_v

let t_pool_hazard_blocks_reuse () =
  let p = Tvar.domain_pool () in
  let owner = Txn.new_attempt (Txn.new_shared ()) in
  ignore (Txn.try_commit owner);
  let l = Tvar.take_locator p ~owner ~old_v:1 ~new_v:2 in
  let g = Tvar.locator_gen l in
  check_bool "recycled" true (Tvar.recycle_locator p l);
  (* A published hazard freezes the incarnation: the pop must drop the
     held candidate, never hand it back. *)
  Tvar.protect p l;
  let l' = Tvar.take_locator p ~owner ~old_v:5 ~new_v:6 in
  check_bool "held locator not reused" true (not (l' == l));
  check_int "held incarnation untouched" g (Tvar.locator_gen l);
  check_int "held fields untouched" 1 l.Tvar.old_v;
  Tvar.unprotect p;
  (* Dropped, not deferred: the slot was consumed by the scan. *)
  let l'' = Tvar.take_locator p ~owner ~old_v:7 ~new_v:8 in
  check_bool "dropped candidate stays dropped" true (not (l'' == l))

let t_pool_capacity_bounded () =
  let p = Tvar.domain_pool () in
  let owner = Txn.new_attempt (Txn.new_shared ()) in
  ignore (Txn.try_commit owner);
  (* Push fresh locators until the cap rejects one: retention is
     bounded, overflow is dropped for the GC rather than queued. *)
  let rejected = ref false in
  let pushes = ref 0 in
  while (not !rejected) && !pushes < 10_000 do
    incr pushes;
    let l = { Tvar.owner; old_v = 0; new_v = 0; gen = Atomic.make 0 } in
    if not (Tvar.recycle_locator p l) then rejected := true
  done;
  check_bool "cap rejects the overflow push" true !rejected;
  check_bool "freelist stays bounded" true (!pushes <= 65 && Tvar.pool_size p <= 64)

(* Hazard slots are unregistered when their domain exits: spawning and
   joining short-lived domains must not grow the registry (which every
   freelist pop scans) without bound. *)
let t_pool_hazard_registry_compacts () =
  (* Ensure this domain's slot exists before taking the baseline. *)
  ignore (Tvar.domain_pool ());
  let base = Tvar.hazard_slot_count () in
  for _ = 1 to 16 do
    Domain.join (Domain.spawn (fun () -> ignore (Tvar.domain_pool ())))
  done;
  check_int "dead domains' slots unregistered" base (Tvar.hazard_slot_count ())

(* Read-only commits in invisible mode skip publication entirely — but
   must still abort on a stale read set (deterministic regression for
   the fast path). *)
let t_read_only_fast_path_still_validates () =
  let rt = invisible_rt () in
  let a = Tvar.make 10 and b = Tvar.make 20 in
  let attempts = ref 0 in
  let sum =
    Stm.atomically rt (fun tx ->
        incr attempts;
        let x = Stm.read tx a in
        if !attempts = 1 then
          enemy_commit rt (fun tx' ->
              Stm.write tx' a 11;
              Stm.write tx' b 19);
        (* No writes: commit takes the validate-only fast path, which
           must notice [a] moved rather than publish the torn sum. *)
        x + Stm.read tx b)
  in
  check_int "fast path aborted the stale snapshot" 2 !attempts;
  check_int "second attempt sees a consistent pair" 30 sum

(* Multi-domain ABA hammer: writers continuously displace and recycle
   locators on a shared pair while readers race them.  A reader that
   trusts a recycled locator's fields (the classic pooling ABA) would
   observe a torn pair and break the invariant a + b = 0.  Run once
   per read mode — each mode homogeneous, since a runtime's conflict
   detection only covers peers of its own mode (visible writers drain
   reader slots; invisible writers publish stamps). *)
let pool_aba_hammer read_mode () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  (* Churn variables so writer pools constantly recycle. *)
  let churn = Array.init 8 (fun _ -> Tvar.make 0) in
  let rt =
    Stm.create
      ~config:{ Runtime.default_config with read_mode }
      (module Tcm_core.Greedy)
  in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let writer seed () =
    let rng = Splitmix.create seed in
    while not (Atomic.get stop) do
      Stm.atomically rt (fun tx ->
          let x = Stm.read tx a in
          Stm.write tx a (x + 1);
          Stm.write tx b (-(x + 1));
          let c = churn.(Splitmix.int rng (Array.length churn)) in
          Stm.write tx c x)
    done
  in
  let reader () =
    while not (Atomic.get stop) do
      let s = Stm.atomically rt (fun tx -> Stm.read tx a + Stm.read tx b) in
      if s <> 0 then Atomic.incr torn;
      (* Non-transactional peeks exercise the seqlock path too. *)
      ignore (Tvar.peek a)
    done
  in
  let doms =
    [
      Domain.spawn (writer 1);
      Domain.spawn (writer 2);
      Domain.spawn (writer 3);
      Domain.spawn (reader);
      Domain.spawn (reader);
    ]
  in
  Unix.sleepf 0.3;
  Atomic.set stop true;
  List.iter Domain.join doms;
  check_int "no torn reads through recycled locators" 0 (Atomic.get torn);
  check_int "final pair consistent" 0 (Tvar.peek a + Tvar.peek b)

let t_pool_aba_hammer_visible () = pool_aba_hammer `Visible ()
let t_pool_aba_hammer_invisible () = pool_aba_hammer `Invisible ()

(* ------------------------------------------------------------------ *)
(* TL2 backend                                                         *)
(* ------------------------------------------------------------------ *)

(* The same facade operations through the second runtime backend.  A
   tvar is bound to one backend for its lifetime, so every test below
   creates its variables fresh under a TL2 runtime. *)
let tl2_rt ?config name =
  Stm.create ?config ~backend:Stm.Tl2_backend (Tcm_core.Registry.find_exn name)

let t_tl2_read_write () =
  let rt = tl2_rt "greedy" in
  let v = Tvar.make 1 in
  let r =
    Stm.atomically rt (fun tx ->
        let x = Stm.read tx v in
        Stm.write tx v (x + 10);
        Stm.read tx v)
  in
  check_int "read-your-writes through the write buffer" 11 r;
  check_int "writeback visible to peek" 11 (Tvar.peek v)

let t_tl2_modify_and_read_for_write () =
  let rt = tl2_rt "greedy" in
  let v = Tvar.make 5 in
  Stm.atomically rt (fun tx -> Stm.modify tx v (fun x -> x * 3));
  check_int "modify" 15 (Tvar.peek v);
  let r = Stm.atomically rt (fun tx -> Stm.read_for_write tx v) in
  check_int "read_for_write" 15 r

let t_tl2_user_exception_aborts () =
  let rt = tl2_rt "greedy" in
  let v = Tvar.make 1 in
  (try
     Stm.atomically rt (fun tx ->
         Stm.write tx v 99;
         failwith "boom")
   with Failure _ -> ());
  check_int "buffered write discarded" 1 (Tvar.peek v);
  let s = Stm.stats rt in
  check_int "no commit" 0 s.Runtime.n_commits;
  check_int "one abort" 1 s.Runtime.n_aborts

let t_tl2_retry_now () =
  let rt = tl2_rt "greedy" in
  let v = Tvar.make 0 in
  let attempts = ref 0 in
  let r =
    Stm.atomically rt (fun tx ->
        incr attempts;
        Stm.write tx v !attempts;
        if !attempts < 3 then Stm.retry_now tx else !attempts)
  in
  check_int "ran three times" 3 r;
  check_int "only final attempt committed" 3 (Tvar.peek v)

let t_tl2_version_clock () =
  let rt = tl2_rt "greedy" in
  let v = Tvar.make 0 in
  let v0 = Tl2.Internal.orec_version v in
  (* Read-only commit is the zero-CAS fast path: no version movement. *)
  ignore (Stm.atomically rt (fun tx -> Stm.read tx v));
  check_int "read-only commit leaves the stripe version" v0
    (Tl2.Internal.orec_version v);
  Stm.atomically rt (fun tx -> Stm.write tx v 1);
  check_bool "writing commit advances the stripe version" true
    (Tl2.Internal.orec_version v > v0)

let t_tl2_counter_exact () =
  let rt = tl2_rt "greedy" in
  let c = Tvar.make 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Stm.atomically rt (fun tx -> Stm.modify tx c succ)
            done))
  in
  List.iter Domain.join doms;
  check_int "no lost updates under commit-time locking" 2000 (Tvar.peek c)

let t_tl2_snapshot_isolation () =
  (* Same invariant as the locator test: clock-validated reads must
     never observe x + y off its conserved total, even though TL2
     readers take no locks and register nowhere. *)
  let rt = tl2_rt "greedy" in
  let x = Tvar.make 500 and y = Tvar.make 500 in
  let violations = Atomic.make 0 in
  let stop = Atomic.make false in
  let writer d =
    Domain.spawn (fun () ->
        let rng = Splitmix.create (d + 3) in
        for _ = 1 to 400 do
          let amt = 1 + Splitmix.int rng 20 in
          Stm.atomically rt (fun tx ->
              let vx = Stm.read tx x in
              Stm.write tx x (vx - amt);
              Stm.write tx y (Stm.read tx y + amt))
        done)
  in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let sum = Stm.atomically rt (fun tx -> Stm.read tx x + Stm.read tx y) in
          if sum <> 1000 then Atomic.incr violations
        done)
  in
  let ws = [ writer 1; writer 2 ] in
  List.iter Domain.join ws;
  Atomic.set stop true;
  Domain.join reader;
  check_int "no isolation violations" 0 (Atomic.get violations);
  check_int "final sum conserved" 1000 (Tvar.peek x + Tvar.peek y)

let t_tl2_lock_steal () =
  (* A fabricated enemy holds the stripe for [v]; an aggressive-managed
     transaction must execute the Abort_other verdict as a lock steal:
     the enemy ends up aborted and the commit goes through. *)
  let rt = tl2_rt "aggressive" in
  let v = Tvar.make 0 in
  let enemy = Txn.new_attempt (Txn.new_shared ()) in
  Tl2.Internal.lock_for_test v enemy;
  Stm.atomically rt (fun tx -> Stm.write tx v 7);
  check_int "commit went through over the held lock" 7 (Tvar.peek v);
  check_bool "enemy was aborted by the steal" true (Txn.is_aborted enemy);
  Tl2.Internal.unlock_for_test v enemy

let t_tl2_dead_owner_lock_is_free () =
  (* A lock whose owner already aborted is free for the taking without
     consulting the manager — the timid manager (always Abort_self)
     would otherwise livelock here. *)
  let rt = tl2_rt "timid" in
  let v = Tvar.make 0 in
  let enemy = Txn.new_attempt (Txn.new_shared ()) in
  Tl2.Internal.lock_for_test v enemy;
  check_bool "enemy marked dead" true (Txn.try_abort enemy);
  Stm.atomically rt (fun tx -> Stm.write tx v 3);
  check_int "dead-owner lock reclaimed" 3 (Tvar.peek v);
  Tl2.Internal.unlock_for_test v enemy

let t_tl2_max_attempts () =
  let config = { Runtime.default_config with max_attempts = Some 4 } in
  let rt = tl2_rt ~config "greedy" in
  let hits = ref 0 in
  (try
     Stm.atomically rt (fun tx ->
         incr hits;
         Stm.retry_now tx)
   with Runtime.Too_many_attempts _ -> ());
  check_int "gave up after the configured attempts" 4 !hits

(* The tcm.obs ledger rides both backends: the commits and aborts it
   attributes to the (backend, manager) family under forced conflicts
   must equal the runtime's own stats — the runtime is the single
   charge site for both. *)
let obs_ledger_run backend backend_name =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  let rt = Stm.create ~backend (Tcm_core.Registry.find_exn "karma") in
  let c = Tvar.make 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              Stm.atomically rt (fun tx -> Stm.modify tx c succ)
            done))
  in
  List.iter Domain.join doms;
  Tcm_obs.disable ();
  let stats = Stm.stats rt in
  let commits, aborts =
    List.fold_left
      (fun (cs, ab) (r : Tcm_obs.Ledger.row) ->
        if
          r.Tcm_obs.Ledger.backend = backend_name
          && r.Tcm_obs.Ledger.manager = "karma"
          && r.Tcm_obs.Ledger.runtime = "live"
        then (cs + r.Tcm_obs.Ledger.commits, ab + r.Tcm_obs.Ledger.aborts)
        else (cs, ab))
      (0, 0)
      (Tcm_obs.Ledger.rows ())
  in
  check_int
    (Printf.sprintf "ledger commits = runtime commits (%s)" backend_name)
    stats.Runtime.n_commits commits;
  check_int
    (Printf.sprintf "ledger aborts = runtime aborts (%s)" backend_name)
    stats.Runtime.n_aborts aborts;
  check_int "counter exact" 800 (Tvar.peek c)

let t_obs_ledger_locator () = obs_ledger_run Stm.Locator "locator"
let t_obs_ledger_tl2 () = obs_ledger_run Stm.Tl2_backend "tl2"

(* qcheck: arbitrary interleavings of single-threaded transactions on a
   register behave like plain assignments. *)
let prop_register_semantics =
  QCheck.Test.make ~name:"sequential register semantics" ~count:50
    QCheck.(small_list (int_bound 100))
    (fun writes ->
      let rt = rt_with "greedy" in
      let v = Tvar.make (-1) in
      List.iter (fun w -> Stm.atomically rt (fun tx -> Stm.write tx v w)) writes;
      let expect = match List.rev writes with [] -> -1 | last :: _ -> last in
      Tvar.peek v = expect)

let () =
  Alcotest.run "stm"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick t_splitmix_deterministic;
          Alcotest.test_case "int bounds" `Quick t_splitmix_bounds;
          Alcotest.test_case "float range" `Quick t_splitmix_float;
          Alcotest.test_case "bool balance" `Quick t_splitmix_bool_balanced;
        ] );
      ( "txn",
        [
          Alcotest.test_case "lifecycle" `Quick t_txn_lifecycle;
          Alcotest.test_case "commit blocks abort" `Quick t_txn_commit_blocks_abort;
          Alcotest.test_case "timestamps monotonic" `Quick t_txn_timestamps_monotonic;
          Alcotest.test_case "shared state across attempts" `Quick t_txn_shared_across_attempts;
          Alcotest.test_case "priority bookkeeping" `Quick t_txn_priority_ops;
          Alcotest.test_case "committed sentinel" `Quick t_sentinel;
        ] );
      ( "tvar",
        [
          Alcotest.test_case "peek" `Quick t_tvar_peek;
          Alcotest.test_case "unique ids" `Quick t_tvar_ids_unique;
          Alcotest.test_case "reader registration" `Quick t_tvar_readers;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "read / write / read-your-writes" `Quick t_read_write;
          Alcotest.test_case "modify and read_for_write" `Quick t_modify_and_read_for_write;
          Alcotest.test_case "many tvars in one txn" `Quick t_multiple_tvars;
          Alcotest.test_case "user exception aborts" `Quick t_user_exception_aborts;
          Alcotest.test_case "retry_now reruns" `Quick t_retry_now;
          Alcotest.test_case "max_attempts enforced" `Quick t_max_attempts;
          Alcotest.test_case "nested atomically flattens" `Quick t_nested_flattens;
          Alcotest.test_case "stats accumulate" `Quick t_stats_accumulate;
          Alcotest.test_case "manager name" `Quick t_manager_name;
          Alcotest.test_case "invisible-read semantics" `Quick t_invisible_mode_semantics;
          Alcotest.test_case "return value" `Quick t_atomic_return_value;
          Alcotest.test_case "read-only transaction" `Quick t_read_only;
          QCheck_alcotest.to_alcotest prop_register_semantics;
        ] );
      ( "invisible validation",
        [
          Alcotest.test_case "upgrade commits" `Quick t_inv_upgrade_commits;
          Alcotest.test_case "upgrade detects enemy commit" `Quick t_inv_upgrade_enemy;
          Alcotest.test_case "extension keeps consistent snapshot" `Quick
            t_inv_extension_consistent;
          Alcotest.test_case "torn snapshot aborted" `Quick t_inv_validation_failure;
          Alcotest.test_case "commit-time validation retries" `Quick t_inv_commit_validation;
          Alcotest.test_case "published stamp under active owner" `Quick
            t_inv_published_stamp_race;
          Alcotest.test_case "stamps are monotone" `Quick t_stamp_monotone;
        ] );
      ( "locator pool",
        [
          Alcotest.test_case "reuse is LIFO with a generation bump" `Quick t_pool_reuse_lifo;
          Alcotest.test_case "hazard blocks reuse" `Quick t_pool_hazard_blocks_reuse;
          Alcotest.test_case "capacity bounded" `Quick t_pool_capacity_bounded;
          Alcotest.test_case "hazard registry compacts on domain exit" `Quick
            t_pool_hazard_registry_compacts;
          Alcotest.test_case "read-only fast path still validates" `Quick
            t_read_only_fast_path_still_validates;
          Alcotest.test_case "ABA hammer (visible)" `Quick t_pool_aba_hammer_visible;
          Alcotest.test_case "ABA hammer (invisible)" `Quick t_pool_aba_hammer_invisible;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "check blocks until condition" `Quick t_check_and_retry_wait;
          Alcotest.test_case "check true is a no-op" `Quick t_check_true_is_noop;
          Alcotest.test_case "snapshot isolation under writers" `Quick t_snapshot_isolation;
          Alcotest.test_case "conservation (greedy)" `Quick t_conservation_greedy;
          Alcotest.test_case "conservation (karma)" `Quick t_conservation_karma;
          Alcotest.test_case "conservation (aggressive)" `Quick t_conservation_aggressive;
          Alcotest.test_case "conservation (polka)" `Quick t_conservation_polka;
          Alcotest.test_case "counter has no lost updates" `Quick t_counter_exact;
          Alcotest.test_case "disjoint domains never conflict" `Quick t_disjoint_domains;
          Alcotest.test_case "invisible mode write-path counter" `Quick t_concurrent_invisible;
        ] );
      ( "tl2",
        [
          Alcotest.test_case "read / write / read-your-writes" `Quick t_tl2_read_write;
          Alcotest.test_case "modify and read_for_write" `Quick
            t_tl2_modify_and_read_for_write;
          Alcotest.test_case "user exception aborts" `Quick t_tl2_user_exception_aborts;
          Alcotest.test_case "retry_now reruns" `Quick t_tl2_retry_now;
          Alcotest.test_case "version clock movement" `Quick t_tl2_version_clock;
          Alcotest.test_case "counter has no lost updates" `Quick t_tl2_counter_exact;
          Alcotest.test_case "snapshot isolation under writers" `Quick
            t_tl2_snapshot_isolation;
          Alcotest.test_case "lock steal executes Abort_other" `Quick t_tl2_lock_steal;
          Alcotest.test_case "dead-owner lock is free" `Quick t_tl2_dead_owner_lock_is_free;
          Alcotest.test_case "max_attempts enforced" `Quick t_tl2_max_attempts;
        ] );
      ( "obs",
        [
          Alcotest.test_case "ledger matches stats (locator)" `Quick
            t_obs_ledger_locator;
          Alcotest.test_case "ledger matches stats (tl2)" `Quick
            t_obs_ledger_tl2;
        ] );
    ]
