(** Tests for tcm.metrics: log2 bucketing, cross-domain shard merging,
    snapshot algebra, the disabled fast path, percentile accuracy
    against the exact sample percentile, and both exporters
    round-tripping. *)

module M = Tcm_metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test runs against the one global registry; bracket with a
   clean slate so order does not matter. *)
let fresh () =
  M.disable ();
  M.reset ()

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)
(* ------------------------------------------------------------------ *)

let t_bucket_boundaries () =
  let b = 24 in
  check_int "0 -> bucket 0" 0 (M.Buckets.index ~buckets:b 0);
  check_int "1 -> bucket 0" 0 (M.Buckets.index ~buckets:b 1);
  check_int "negative -> bucket 0" 0 (M.Buckets.index ~buckets:b (-5));
  check_int "2 -> bucket 1" 1 (M.Buckets.index ~buckets:b 2);
  check_int "3 -> bucket 1" 1 (M.Buckets.index ~buckets:b 3);
  check_int "4 -> bucket 2" 2 (M.Buckets.index ~buckets:b 4);
  check_int "overflow clamps to last" (b - 1) (M.Buckets.index ~buckets:b max_int);
  (* Each bucket's bounds are tight: both edges map back to it, and the
     neighbours' edges do not. *)
  for i = 0 to b - 2 do
    check_int "lower edge" i (M.Buckets.index ~buckets:b (M.Buckets.lower_bound i));
    check_int "upper edge" i (M.Buckets.index ~buckets:b (M.Buckets.upper_bound ~buckets:b i));
    check_int "upper edge + 1 spills" (i + 1)
      (M.Buckets.index ~buckets:b (M.Buckets.upper_bound ~buckets:b i + 1))
  done;
  check_int "last bucket unbounded" max_int (M.Buckets.upper_bound ~buckets:b (b - 1))

let t_floor_log2 () =
  check_int "1" 0 (M.Buckets.floor_log2 1);
  check_int "2" 1 (M.Buckets.floor_log2 2);
  check_int "1023" 9 (M.Buckets.floor_log2 1023);
  check_int "1024" 10 (M.Buckets.floor_log2 1024);
  (* 63-bit native ints: max_int = 2^62 - 1. *)
  check_int "max_int" 61 (M.Buckets.floor_log2 max_int)

(* ------------------------------------------------------------------ *)
(* Percentiles: estimate vs exact                                      *)
(* ------------------------------------------------------------------ *)

let t_percentile_vs_exact () =
  (* Log2 buckets promise a within-2x estimate; check against the exact
     nearest-rank percentile from lib/workload's Stats on a spread
     deterministic sample. *)
  let rng = Tcm_stm.Splitmix.create 11 in
  let samples = List.init 500 (fun _ -> 1 + Tcm_stm.Splitmix.int rng 10_000) in
  let counts = Array.make 24 0 in
  List.iter
    (fun v ->
      let i = M.Buckets.index ~buckets:24 v in
      counts.(i) <- counts.(i) + 1)
    samples;
  List.iter
    (fun p ->
      let exact = Tcm_workload.Stats.percentile p (List.map float_of_int samples) in
      let est = M.Buckets.percentile ~counts p in
      check_bool
        (Printf.sprintf "p%.0f within 2x (exact %.0f, est %.0f)" p exact est)
        true
        (est >= exact /. 2. && est <= exact *. 2.))
    [ 50.; 90.; 99. ];
  check_bool "empty is nan" true (Float.is_nan (M.Buckets.percentile ~counts:(Array.make 8 0) 50.))

(* ------------------------------------------------------------------ *)
(* Core: sharded recording                                             *)
(* ------------------------------------------------------------------ *)

let t_counter_across_domains () =
  fresh ();
  M.enable ();
  let c = M.Counter.create ~labels:[ ("who", "spawned") ] "test_domains_total" in
  let per_domain = 1000 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.Counter.incr c
            done))
  in
  List.iter Domain.join doms;
  M.Counter.add c 5;
  M.disable ();
  let s = M.snapshot () in
  check_int "shards merge to the global total" ((4 * per_domain) + 5)
    (M.Snapshot.counter_value s ~name:"test_domains_total" ~labels:[ ("who", "spawned") ])

let t_histogram_across_domains () =
  fresh ();
  M.enable ();
  let h = M.Histogram.create "test_hist_domains" in
  let doms =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              M.Histogram.observe h (i + (d * 100))
            done))
  in
  List.iter Domain.join doms;
  M.disable ();
  let s = M.snapshot () in
  match M.Snapshot.hist_value s ~name:"test_hist_domains" ~labels:[] with
  | None -> Alcotest.fail "histogram series missing"
  | Some hv ->
      check_int "all samples counted" 200 (M.Snapshot.hist_count hv);
      check_int "sum is exact" (List.fold_left ( + ) 0 (List.init 200 (fun i -> i + 1)))
        hv.M.Snapshot.sum

let t_disabled_records_nothing () =
  fresh ();
  let c = M.Counter.create "test_disabled_total" in
  let h = M.Histogram.create "test_disabled_hist" in
  M.Counter.incr c;
  M.Counter.add c 100;
  M.Histogram.observe h 42;
  let s = M.snapshot () in
  check_int "counter untouched" 0
    (M.Snapshot.counter_value s ~name:"test_disabled_total" ~labels:[]);
  (match M.Snapshot.hist_value s ~name:"test_disabled_hist" ~labels:[] with
  | None -> Alcotest.fail "histogram series missing"
  | Some hv -> check_int "histogram untouched" 0 (M.Snapshot.hist_count hv));
  (* Re-creating the same series yields the same storage, not a clash. *)
  let c2 = M.Counter.create "test_disabled_total" in
  M.enable ();
  M.Counter.incr c;
  M.Counter.incr c2;
  M.disable ();
  let s = M.snapshot () in
  check_int "dedup shares storage" 2
    (M.Snapshot.counter_value s ~name:"test_disabled_total" ~labels:[])

let t_kind_clash_rejected () =
  fresh ();
  ignore (M.Counter.create "test_kind_clash");
  check_bool "histogram over counter raises" true
    (try
       ignore (M.Histogram.create "test_kind_clash");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Snapshot algebra                                                    *)
(* ------------------------------------------------------------------ *)

let synth time entries = { M.Snapshot.time; entries }

let centry ?(labels = []) name v =
  { M.Snapshot.name; labels = M.Snapshot.canon_labels labels; help = ""; value = M.Snapshot.Counter v }

let hentry ?(labels = []) name counts sum =
  {
    M.Snapshot.name;
    labels = M.Snapshot.canon_labels labels;
    help = "";
    value = M.Snapshot.Histogram { M.Snapshot.counts; sum };
  }

let t_merge_associative () =
  let a = synth 1. [ centry "x" 1; hentry "h" [| 1; 0 |] 1 ] in
  let b = synth 2. [ centry "x" 2; centry ~labels:[ ("k", "v") ] "x" 7 ] in
  let c = synth 3. [ hentry "h" [| 0; 3 |] 12; centry "y" 5 ] in
  let l = M.Snapshot.merge (M.Snapshot.merge a b) c in
  let r = M.Snapshot.merge a (M.Snapshot.merge b c) in
  let v s name labels = M.Snapshot.counter_value s ~name ~labels in
  List.iter
    (fun (name, labels, want) ->
      check_int (name ^ " left-assoc") want (v l name labels);
      check_int (name ^ " right-assoc") want (v r name labels))
    [ ("x", [], 3); ("x", [ ("k", "v") ], 7); ("y", [], 5) ];
  let hl = Option.get (M.Snapshot.hist_value l ~name:"h" ~labels:[]) in
  let hr = Option.get (M.Snapshot.hist_value r ~name:"h" ~labels:[]) in
  check_int "hist counts assoc" (M.Snapshot.hist_count hl) (M.Snapshot.hist_count hr);
  check_int "hist total" 4 (M.Snapshot.hist_count hl);
  check_int "hist sum" 13 hl.M.Snapshot.sum;
  check_bool "kind clash raises" true
    (try
       ignore (M.Snapshot.merge (synth 0. [ centry "z" 1 ]) (synth 0. [ hentry "z" [| 1 |] 1 ]));
       false
     with Invalid_argument _ -> true)

let t_diff_clamps () =
  let earlier = synth 1. [ centry "x" 10 ] in
  let later = synth 2. [ centry "x" 4; centry "y" 3 ] in
  let d = M.Snapshot.diff ~earlier ~later in
  check_int "regressions clamp to 0" 0 (M.Snapshot.counter_value d ~name:"x" ~labels:[]);
  check_int "new series pass through" 3 (M.Snapshot.counter_value d ~name:"y" ~labels:[])

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let with_tmp f =
  let path = Filename.temp_file "tcm_metrics_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let populated () =
  fresh ();
  M.enable ();
  let mx = M.Conventions.for_manager ~runtime:"live" "testmgr" in
  M.Conventions.attempt_begin mx;
  M.Conventions.resolve mx M.Conventions.v_block;
  M.Conventions.wait mx ~duration:37;
  M.Conventions.attempt_commit mx ~duration:120 ~read_set:9;
  M.Conventions.attempt_begin mx;
  M.Conventions.attempt_abort mx ~duration:4000;
  M.Conventions.pool_event mx M.Conventions.p_hit;
  M.Conventions.pool_event mx M.Conventions.p_hit;
  M.Conventions.pool_event mx M.Conventions.p_hit;
  M.Conventions.pool_event mx M.Conventions.p_miss;
  M.Conventions.pool_event mx M.Conventions.p_recycled;
  M.Conventions.pool_event mx 99 (* out of range: dropped *);
  M.disable ();
  M.snapshot ()

let t_jsonl_roundtrip () =
  let s = populated () in
  with_tmp (fun path ->
      M.Export.write_jsonl path s;
      let s', windows = M.Export.read_jsonl path in
      check_int "no windows written, none read" 0 (List.length windows);
      check_int "entry count survives" (List.length s.M.Snapshot.entries)
        (List.length s'.M.Snapshot.entries);
      (* [for_manager] stamps the backend label (default "locator"). *)
      let labels = [ ("backend", "locator"); ("manager", "testmgr"); ("runtime", "live") ] in
      check_int "counter survives" 2
        (M.Snapshot.counter_value s' ~name:M.Conventions.n_attempts ~labels);
      let h = Option.get (M.Snapshot.hist_value s' ~name:M.Conventions.n_wait ~labels) in
      check_int "hist count survives" 1 (M.Snapshot.hist_count h);
      check_int "hist sum survives" 37 h.M.Snapshot.sum)

let t_prometheus_roundtrip () =
  let s = populated () in
  let text = M.Export.to_prometheus s in
  let samples = M.Export.parse_prometheus text in
  let labels =
    M.Snapshot.canon_labels
      [ ("backend", "locator"); ("manager", "testmgr"); ("runtime", "live") ]
  in
  let value name extra =
    match
      (* The parser keeps emission order; compare canonicalized. *)
      List.find_opt
        (fun (p : M.Export.prom_sample) ->
          p.s_name = name
          && M.Snapshot.canon_labels p.s_labels = M.Snapshot.canon_labels (extra @ labels))
        samples
    with
    | Some p -> p.s_value
    | None -> Alcotest.fail (Printf.sprintf "sample %s missing" name)
  in
  Alcotest.(check (float 1e-9)) "attempts" 2. (value M.Conventions.n_attempts []);
  Alcotest.(check (float 1e-9)) "commits" 1. (value M.Conventions.n_commits []);
  Alcotest.(check (float 1e-9))
    "resolve verdict carried" 1.
    (value M.Conventions.n_resolve [ ("verdict", "block") ]);
  Alcotest.(check (float 1e-9))
    "pool hits carried" 3.
    (value M.Conventions.n_pool [ ("event", "hit") ]);
  Alcotest.(check (float 1e-9))
    "pool misses carried" 1.
    (value M.Conventions.n_pool [ ("event", "miss") ]);
  Alcotest.(check (float 1e-9))
    "pool recycles carried" 1.
    (value M.Conventions.n_pool [ ("event", "recycled") ]);
  (* Histogram exposition: _count and _sum lines, plus a cumulative
     +Inf bucket equal to _count. *)
  Alcotest.(check (float 1e-9)) "wait count" 1. (value (M.Conventions.n_wait ^ "_count") []);
  Alcotest.(check (float 1e-9)) "wait sum" 37. (value (M.Conventions.n_wait ^ "_sum") []);
  Alcotest.(check (float 1e-9))
    "wait +Inf bucket" 1.
    (value (M.Conventions.n_wait ^ "_bucket") [ ("le", "+Inf") ]);
  check_bool "samples parsed" true (List.length samples > 10)

(* ------------------------------------------------------------------ *)
(* Conventions + health plumbing                                       *)
(* ------------------------------------------------------------------ *)

let t_health_rows () =
  let s = populated () in
  match M.Health.rows s with
  | [ r ] ->
      Alcotest.(check string) "manager" "testmgr" r.M.Health.manager;
      Alcotest.(check string) "runtime" "live" r.M.Health.runtime;
      check_int "attempts" 2 r.M.Health.attempts;
      check_int "commits" 1 r.M.Health.commits;
      check_int "aborts" 1 r.M.Health.aborts;
      Alcotest.(check (float 1e-9)) "ab/cm" 1. r.M.Health.abort_commit_ratio;
      Alcotest.(check (float 1e-9)) "wasted" 0.5 r.M.Health.wasted_frac;
      check_int "verdict mix" 1 (List.assoc "block" r.M.Health.verdicts);
      check_int "other verdicts zero" 0 (List.assoc "abort_self" r.M.Health.verdicts);
      check_bool "wait p50 sane" true (r.M.Health.wait_p50 >= 32. && r.M.Health.wait_p50 <= 64.);
      (* 3 hits / (3 hits + 1 miss); the out-of-range event was dropped. *)
      Alcotest.(check (float 1e-9)) "pool efficiency" 0.75 r.M.Health.pool_eff
  | rows -> Alcotest.fail (Printf.sprintf "expected one row, got %d" (List.length rows))

(* A series that never takes a locator (e.g. the simulator) has no
   pool hit rate, not a zero one. *)
let t_health_pool_idle () =
  fresh ();
  M.enable ();
  let mx = M.Conventions.for_manager ~runtime:"sim" "simmgr" in
  M.Conventions.attempt_begin mx;
  M.Conventions.attempt_commit mx ~duration:3 ~read_set:1;
  M.disable ();
  match M.Health.rows (M.snapshot ()) with
  | [ r ] -> check_bool "pool_eff is nan" true (Float.is_nan r.M.Health.pool_eff)
  | rows -> Alcotest.fail (Printf.sprintf "expected one row, got %d" (List.length rows))

(* The same manager under both runtime backends lands in distinct
   series and distinct health rows — the locator-vs-TL2 split the
   backend label exists for. *)
let t_health_backend_split () =
  fresh ();
  M.enable ();
  let loc = M.Conventions.for_manager ~runtime:"live" "duelmgr" in
  let tl2 = M.Conventions.for_manager ~backend:"tl2" ~runtime:"live" "duelmgr" in
  M.Conventions.attempt_begin loc;
  M.Conventions.attempt_commit loc ~duration:10 ~read_set:1;
  M.Conventions.attempt_begin tl2;
  M.Conventions.attempt_begin tl2;
  M.Conventions.attempt_commit tl2 ~duration:20 ~read_set:2;
  M.Conventions.attempt_abort tl2 ~duration:30;
  M.disable ();
  match M.Health.rows (M.snapshot ()) with
  | [ a; b ] ->
      let find backend =
        if a.M.Health.backend = backend then a
        else if b.M.Health.backend = backend then b
        else Alcotest.fail (Printf.sprintf "no %s row" backend)
      in
      let rl = find "locator" and rt = find "tl2" in
      check_int "locator attempts" 1 rl.M.Health.attempts;
      check_int "tl2 attempts" 2 rt.M.Health.attempts;
      check_int "tl2 aborts" 1 rt.M.Health.aborts;
      Alcotest.(check string) "same manager" rl.M.Health.manager rt.M.Health.manager
  | rows -> Alcotest.fail (Printf.sprintf "expected two rows, got %d" (List.length rows))

let t_sampler_windows () =
  fresh ();
  M.enable ();
  let c = M.Counter.create "test_sampled_total" in
  let sampler = M.Sampler.create ~period_s:0.0 () in
  M.Sampler.force sampler;
  M.Counter.add c 10;
  M.Sampler.force sampler;
  M.Counter.add c 32;
  M.Sampler.force sampler;
  M.disable ();
  let deltas =
    List.map
      (fun (_, _, d) -> d)
      (M.Sampler.series sampler ~name:"test_sampled_total" ~labels:[])
  in
  Alcotest.(check (list int)) "per-window deltas" [ 10; 32 ] deltas

let () =
  Alcotest.run "metrics"
    [
      ( "buckets",
        [
          Alcotest.test_case "bucket boundaries" `Quick t_bucket_boundaries;
          Alcotest.test_case "floor_log2" `Quick t_floor_log2;
          Alcotest.test_case "percentile vs exact" `Quick t_percentile_vs_exact;
        ] );
      ( "core",
        [
          Alcotest.test_case "counter across domains" `Quick t_counter_across_domains;
          Alcotest.test_case "histogram across domains" `Quick t_histogram_across_domains;
          Alcotest.test_case "disabled records nothing" `Quick t_disabled_records_nothing;
          Alcotest.test_case "kind clash rejected" `Quick t_kind_clash_rejected;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "merge associative" `Quick t_merge_associative;
          Alcotest.test_case "diff clamps" `Quick t_diff_clamps;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick t_jsonl_roundtrip;
          Alcotest.test_case "prometheus roundtrip" `Quick t_prometheus_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "health rows" `Quick t_health_rows;
          Alcotest.test_case "health pool idle" `Quick t_health_pool_idle;
          Alcotest.test_case "health backend split" `Quick t_health_backend_split;
          Alcotest.test_case "sampler windows" `Quick t_sampler_windows;
        ] );
    ]
