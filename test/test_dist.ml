(* Statistical tests for the shared tcm.dist samplers: the Zipf(θ)
   rank-frequency law, the Poisson inter-arrival distribution, and the
   weighted class picker.  Sample sizes and tolerances are chosen so
   the checks are deterministic under the fixed seeds yet would catch
   a broken formula (wrong exponent, off-by-one rank, biased picker) by
   a wide margin. *)

module S = Tcm_dist.Samplers
module Rng = Tcm_stm.Splitmix

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let zipf_counts ~n ~theta ~draws ~seed =
  let z = S.Zipf.create ~n ~theta in
  let rng = Rng.create seed in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = S.Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let t_zipf_bounds_and_determinism () =
  let n = 100 and theta = 0.9 in
  let z = S.Zipf.create ~n ~theta in
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let k = S.Zipf.draw z rng in
    check_bool "draw in [0, n)" true (k >= 0 && k < n)
  done;
  (* Same seed, same stream. *)
  let a = zipf_counts ~n ~theta ~draws:5_000 ~seed:3 in
  let b = zipf_counts ~n ~theta ~draws:5_000 ~seed:3 in
  check_bool "deterministic under a fixed seed" true (a = b);
  Alcotest.(check int) "accessor n" n (S.Zipf.n z);
  Alcotest.(check (float 1e-9)) "accessor theta" theta (S.Zipf.theta z)

let t_zipf_invalid () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "n = 0 rejected" true (raises (fun () -> S.Zipf.create ~n:0 ~theta:0.5));
  check_bool "theta = 1 rejected" true (raises (fun () -> S.Zipf.create ~n:10 ~theta:1.0));
  check_bool "theta < 0 rejected" true (raises (fun () -> S.Zipf.create ~n:10 ~theta:(-0.1)))

(* Rank-frequency law: for Zipf(θ), log f(rank) is linear in
   log (rank+1) with slope -θ.  Least-squares fit over the
   well-populated head (every one of the first 20 ranks gets thousands
   of hits at these sizes) must recover the exponent. *)
let t_zipf_rank_frequency_slope () =
  List.iter
    (fun theta ->
      let n = 1_000 and draws = 200_000 in
      let counts = zipf_counts ~n ~theta ~draws ~seed:17 in
      let head = 20 in
      let xs = Array.init head (fun r -> log (float_of_int (r + 1))) in
      let ys =
        Array.init head (fun r ->
            check_bool "head rank populated" true (counts.(r) > 0);
            log (float_of_int counts.(r)))
      in
      let mean a = Array.fold_left ( +. ) 0. a /. float_of_int head in
      let mx = mean xs and my = mean ys in
      let num = ref 0. and den = ref 0. in
      for i = 0 to head - 1 do
        num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
        den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
      done;
      let slope = !num /. !den in
      if Float.abs (slope +. theta) > 0.08 then
        Alcotest.failf "theta=%.2f: fitted slope %.3f (expected %.3f +- 0.08)" theta
          slope (-.theta))
    [ 0.5; 0.9 ]

let t_zipf_monotone_and_skewed () =
  let n = 50 and draws = 100_000 in
  let counts = zipf_counts ~n ~theta:0.9 ~draws ~seed:23 in
  (* Item 0 must be the hottest, and dominate its uniform share by a
     wide margin (theta = 0.9 gives it ~20% of the mass here vs 2%
     uniform). *)
  Array.iteri
    (fun i c -> if i > 0 then check_bool "item 0 hottest" true (counts.(0) >= c))
    counts;
  check_bool "heavily skewed" true (counts.(0) > 5 * draws / n)

let t_zipf_theta_zero_uniform () =
  let n = 20 and draws = 100_000 in
  let counts = zipf_counts ~n ~theta:0. ~draws ~seed:29 in
  let expect = float_of_int draws /. float_of_int n in
  Array.iter
    (fun c ->
      (* 10% relative tolerance; 5000 expected per bucket, sd ~ 70. *)
      if Float.abs (float_of_int c -. expect) > 0.1 *. expect then
        Alcotest.failf "theta=0 not uniform: bucket has %d, expected ~%.0f" c expect)
    counts

(* ------------------------------------------------------------------ *)
(* Poisson inter-arrivals                                              *)
(* ------------------------------------------------------------------ *)

(* Exponential gaps: mean 1/rate and coefficient of variation 1 are
   the fingerprints of a Poisson process (a deterministic or uniform
   generator would show CV well below 1). *)
let t_exp_draw_mean_and_cv () =
  let rate = 500. in
  let rng = Rng.create 31 in
  let draws = 100_000 in
  let xs = List.init draws (fun _ -> S.exp_draw rng ~rate) in
  List.iter (fun x -> check_bool "gap positive" true (x >= 0.)) xs;
  let mean = Tcm_dist.Stats.mean xs in
  let cv = Tcm_dist.Stats.cv xs in
  if Float.abs (mean -. (1. /. rate)) > 0.03 /. rate then
    Alcotest.failf "mean gap %.6f, expected ~%.6f" mean (1. /. rate);
  if Float.abs (cv -. 1.) > 0.03 then
    Alcotest.failf "inter-arrival CV %.3f, expected ~1 (Poisson)" cv

let t_exp_draw_invalid () =
  let rng = Rng.create 1 in
  check_bool "rate = 0 rejected" true
    (try ignore (S.exp_draw rng ~rate:0.); false with Invalid_argument _ -> true)

(* The service's bursty process must also produce CV ~ 1 *within* each
   phase; spot-check the thinning acceptance logic end to end instead:
   arrivals generated over whole cycles land in the burst window at
   the burst/base rate ratio. *)
let t_bursty_thinning_ratio () =
  let process =
    Tcm_service.Arrival.Bursty
      { base_rate = 500.; burst_rate = 2_000.; period_s = 0.1; burst_frac = 0.25 }
  in
  let rng = Rng.create 37 in
  let in_burst = ref 0 and total = ref 0 in
  let t = ref 0. in
  while !t < 50. do
    t := Tcm_service.Arrival.next process rng ~t:!t;
    if !t < 50. then begin
      incr total;
      if Float.rem !t 0.1 < 0.025 then incr in_burst
    end
  done;
  (* Expected share of arrivals inside the burst window:
     (2000 * 0.025) / (2000 * 0.025 + 500 * 0.075) = 4/7 ~ 0.571. *)
  let share = float_of_int !in_burst /. float_of_int !total in
  if Float.abs (share -. 4. /. 7.) > 0.03 then
    Alcotest.failf "burst-window share %.3f, expected ~0.571" share;
  (* Overall rate ~ 875/s. *)
  let rate = float_of_int !total /. 50. in
  if Float.abs (rate -. 875.) > 40. then
    Alcotest.failf "offered rate %.0f/s, expected ~875/s" rate

(* ------------------------------------------------------------------ *)
(* Precomputed arrival schedules                                       *)
(* ------------------------------------------------------------------ *)

let t_schedule_shape_and_rate () =
  let rate = 2_000. and horizon = 20. in
  let arr =
    S.Schedule.arrivals (Rng.create 53) ~rate_at:(fun _ -> rate) ~peak:rate
      ~horizon
  in
  let n = Array.length arr in
  (* Poisson count: mean 40k, sd 200; +-5 sd. *)
  check_bool "count near rate * horizon" true
    (Float.abs (float_of_int n -. (rate *. horizon)) < 1_000.);
  let ok = ref true in
  Array.iteri
    (fun i t ->
      if t < 0. || t >= horizon then ok := false;
      if i > 0 && t <= arr.(i - 1) then ok := false)
    arr;
  check_bool "strictly increasing within [0, horizon)" true !ok;
  (* Same seed, same schedule — the engine replays these verbatim. *)
  let again =
    S.Schedule.arrivals (Rng.create 53) ~rate_at:(fun _ -> rate) ~peak:rate
      ~horizon
  in
  check_bool "deterministic in the seed" true (arr = again)

let t_schedule_thinning () =
  (* rate_at = peak/4 everywhere: thinning must keep ~1/4 of the
     dominating process, not all of it. *)
  let peak = 4_000. and horizon = 10. in
  let arr =
    S.Schedule.arrivals (Rng.create 59) ~rate_at:(fun _ -> peak /. 4.) ~peak
      ~horizon
  in
  let n = float_of_int (Array.length arr) in
  check_bool "thinned to the instantaneous rate" true
    (Float.abs (n -. (peak /. 4. *. horizon)) < 500.);
  (* A zero-rate region must produce no arrivals at all. *)
  let gated =
    S.Schedule.arrivals (Rng.create 61)
      ~rate_at:(fun t -> if t < 5. then 1_000. else 0.)
      ~peak:1_000. ~horizon
  in
  check_bool "zero-rate tail is empty" true
    (Array.for_all (fun t -> t < 5.) gated)

let t_schedule_invalid () =
  let reject name f =
    check_bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  reject "peak = 0 rejected" (fun () ->
      S.Schedule.arrivals (Rng.create 1) ~rate_at:(fun _ -> 1.) ~peak:0. ~horizon:1.);
  reject "horizon = 0 rejected" (fun () ->
      S.Schedule.arrivals (Rng.create 1) ~rate_at:(fun _ -> 1.) ~peak:1. ~horizon:0.)

(* ------------------------------------------------------------------ *)
(* Weighted pick                                                       *)
(* ------------------------------------------------------------------ *)

let t_pick_weighted_proportions () =
  let weights = [| 0.5; 0.; 0.3; 0.2 |] in
  let rng = Rng.create 41 in
  let draws = 100_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to draws do
    let i = S.pick_weighted rng ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  Array.iteri
    (fun i w ->
      if w > 0. then
        let got = float_of_int counts.(i) /. float_of_int draws in
        if Float.abs (got -. w) > 0.01 then
          Alcotest.failf "index %d drawn %.3f, expected %.3f" i got w)
    weights

let t_pick_weighted_invalid () =
  let rng = Rng.create 1 in
  check_bool "all-zero weights rejected" true
    (try ignore (S.pick_weighted rng ~weights:[| 0.; 0. |]); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "dist"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds and determinism" `Quick t_zipf_bounds_and_determinism;
          Alcotest.test_case "invalid parameters" `Quick t_zipf_invalid;
          Alcotest.test_case "rank-frequency slope ~ -theta" `Quick
            t_zipf_rank_frequency_slope;
          Alcotest.test_case "monotone and skewed" `Quick t_zipf_monotone_and_skewed;
          Alcotest.test_case "theta=0 is uniform" `Quick t_zipf_theta_zero_uniform;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "mean gap and CV ~ 1" `Quick t_exp_draw_mean_and_cv;
          Alcotest.test_case "invalid rate" `Quick t_exp_draw_invalid;
          Alcotest.test_case "bursty thinning ratio" `Quick t_bursty_thinning_ratio;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "shape, rate and determinism" `Quick
            t_schedule_shape_and_rate;
          Alcotest.test_case "thinning follows rate_at" `Quick t_schedule_thinning;
          Alcotest.test_case "invalid parameters" `Quick t_schedule_invalid;
        ] );
      ( "pick-weighted",
        [
          Alcotest.test_case "proportions" `Quick t_pick_weighted_proportions;
          Alcotest.test_case "invalid weights" `Quick t_pick_weighted_invalid;
        ] );
    ]
