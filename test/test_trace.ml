(** Tests for the tcm.trace subsystem: the SPSC ring (wraparound, drop
    accounting, drain-while-writing), the sink lifecycle and disabled
    fast path (zero events, no allocation), the emit sites in the STM
    runtime and the simulator engine, the trace analyses on hand-built
    and simulator traces, and the JSONL / Chrome exporters. *)

module Event = Tcm_trace.Event
module Ring = Tcm_trace.Ring
module Sink = Tcm_trace.Sink
module Analysis = Tcm_trace.Analysis
module Export = Tcm_trace.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let push_n r ~from n =
  for i = from to from + n - 1 do
    Ring.push r ~seq:i ~kind:(i mod 7) ~a:(i * 3) ~b:(i * 5) ~c:(i * 7) ~tick:i
  done

let drain_list r =
  let acc = ref [] in
  let n =
    Ring.drain r ~f:(fun ~seq ~kind ~a ~b ~c ~tick ->
        acc := (seq, kind, a, b, c, tick) :: !acc)
  in
  (n, List.rev !acc)

let t_ring_wraparound () =
  let r = Ring.create ~capacity:8 ~dom:0 () in
  check_int "capacity rounded" 8 (Ring.capacity r);
  (* Several full laps around the buffer, draining between laps. *)
  let from = ref 0 in
  for _ = 1 to 5 do
    push_n r ~from:!from 8;
    let n, evs = drain_list r in
    check_int "lap drains all" 8 n;
    List.iteri
      (fun i (seq, kind, a, b, c, tick) ->
        let e = !from + i in
        check_int "seq" e seq;
        check_int "kind" (e mod 7) kind;
        check_int "a" (e * 3) a;
        check_int "b" (e * 5) b;
        check_int "c" (e * 7) c;
        check_int "tick" e tick)
      evs;
    from := !from + 8
  done;
  check_int "no drops" 0 (Ring.dropped r)

let t_ring_drops_when_full () =
  let r = Ring.create ~capacity:8 ~dom:0 () in
  push_n r ~from:0 11;
  check_int "drops counted" 3 (Ring.dropped r);
  let n, evs = drain_list r in
  check_int "kept the first capacity-many" 8 n;
  let seqs = List.map (fun (s, _, _, _, _, _) -> s) evs in
  Alcotest.(check (list int)) "oldest events kept" [ 0; 1; 2; 3; 4; 5; 6; 7 ] seqs;
  (* Space freed by the drain is usable again. *)
  push_n r ~from:100 4;
  let n, _ = drain_list r in
  check_int "post-drain pushes land" 4 n

let t_ring_drain_while_writing () =
  let total = 10_000 in
  (* Capacity >= total: the concurrency is real but no push can drop, so
     the expected event set is deterministic. *)
  let r = Ring.create ~capacity:total ~dom:1 () in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to total - 1 do
          Ring.push r ~seq:i ~kind:0 ~a:i ~b:0 ~c:0 ~tick:0
        done)
  in
  let seen = ref 0 in
  let expect = ref 0 in
  while !seen < total do
    ignore
      (Ring.drain r ~f:(fun ~seq ~kind:_ ~a:_ ~b:_ ~c:_ ~tick:_ ->
           check_int "drained in push order" !expect seq;
           incr expect;
           incr seen))
  done;
  Domain.join writer;
  check_int "all events seen" total !seen;
  check_int "no drops" 0 (Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

let emit_one_of_each () =
  Sink.attempt_begin ~txid:10 ~attempt:100 ~tick:1;
  Sink.acquired ~txid:10 ~obj:7 ~write:true ~tick:2;
  Sink.conflict ~me:10 ~other:11 ~decision:Event.d_block ~tick:3;
  Sink.wait_begin ~me:10 ~enemy:11 ~tick:4;
  Sink.wait_end ~me:10 ~enemy:11 ~tick:5;
  Sink.attempt_abort ~txid:10 ~attempt:100 ~tick:6;
  Sink.attempt_commit ~txid:10 ~attempt:101 ~tick:7

let t_sink_roundtrip () =
  Sink.start ();
  check_bool "enabled after start" true (Sink.enabled ());
  emit_one_of_each ();
  Sink.stop ();
  check_bool "disabled after stop" false (Sink.enabled ());
  let tr = Sink.collect () in
  check_int "seven events" 7 (Array.length tr);
  let kinds = Array.map (fun (e : Event.t) -> e.kind) tr in
  Alcotest.(check bool)
    "kinds in emit order" true
    (kinds
    = [|
        Event.Begin; Event.Open; Event.Resolve; Event.Wait_begin; Event.Wait_end;
        Event.Abort; Event.Commit;
      |]);
  Array.iteri (fun i (e : Event.t) -> check_int "seq is dense" i e.seq) tr;
  let r = tr.(2) in
  check_int "resolve me" 10 r.a;
  check_int "resolve other" 11 r.b;
  check_int "resolve decision" Event.d_block r.c;
  check_int "resolve tick" 3 r.tick;
  let o = tr.(1) in
  check_int "open obj" 7 o.b;
  check_int "open write flag" 1 o.c;
  check_int "sink drops" 0 (Sink.drops ());
  check_int "second collect returns nothing new" 0 (Array.length (Sink.collect ()))

let t_sink_disabled_no_events () =
  Sink.start ();
  Sink.stop ();
  for _ = 1 to 1000 do
    emit_one_of_each ()
  done;
  check_int "no events while stopped" 0 (Array.length (Sink.collect ()))

let t_sink_disabled_no_alloc () =
  Sink.stop ();
  (* Warm up the code paths (and any lazy DLS slot for this domain). *)
  emit_one_of_each ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Sink.attempt_begin ~txid:1 ~attempt:2 ~tick:0;
    Sink.conflict ~me:1 ~other:2 ~decision:0 ~tick:0;
    Sink.acquired ~txid:1 ~obj:3 ~write:false ~tick:0
  done;
  let after = Gc.minor_words () in
  (* The measurement itself allocates a couple of boxed floats; anything
     beyond a small constant means the disabled path allocates. *)
  check_bool
    (Printf.sprintf "disabled emits allocate nothing (delta=%.0f words)" (after -. before))
    true
    (after -. before < 256.)

let t_sink_generation_isolation () =
  Sink.start ();
  emit_one_of_each ();
  Sink.stop ();
  (* A new capture must not see the previous capture's events. *)
  Sink.start ();
  Sink.attempt_begin ~txid:99 ~attempt:999 ~tick:0;
  Sink.stop ();
  let tr = Sink.collect () in
  check_int "only the new capture" 1 (Array.length tr);
  check_int "fresh seq counter" 0 tr.(0).Event.seq;
  check_int "new event" 99 tr.(0).Event.a

(* ------------------------------------------------------------------ *)
(* STM runtime emit sites                                              *)
(* ------------------------------------------------------------------ *)

let t_stm_trace_sanity () =
  let open Tcm_stm in
  let rt = Stm.create (Tcm_core.Registry.find_exn "greedy") in
  let v = Stm.Tvar.make 0 in
  Sink.start ();
  for _ = 1 to 50 do
    Stm.atomically rt (fun tx -> Stm.write tx v (Stm.read tx v + 1))
  done;
  Sink.stop ();
  let tr = Sink.collect () in
  check_int "final value" 50 (Stm.atomically rt (fun tx -> Stm.read tx v));
  let count k =
    Array.fold_left (fun n (e : Event.t) -> if e.kind = k then n + 1 else n) 0 tr
  in
  check_int "one begin per attempt" 50 (count Event.Begin);
  check_int "uncontended: all commit" 50 (count Event.Commit);
  check_int "uncontended: no aborts" 0 (count Event.Abort);
  check_int "one locator install per txn" 50 (count Event.Open);
  let wa = Analysis.wasted_work tr in
  check_int "no wasted opens" 0 wa.Analysis.opens_wasted;
  let pc = Analysis.pending_commit tr in
  check_int "no conflicts" 0 pc.Analysis.conflicts

(* The TL2 backend must speak the same event schema through the same
   sink: uncontended increments produce the begin/open/commit shape the
   analyses expect, with no backend-specific event kinds. *)
let t_tl2_trace_sanity () =
  let open Tcm_stm in
  let rt =
    Stm.create ~backend:Stm.Tl2_backend (Tcm_core.Registry.find_exn "greedy")
  in
  let v = Stm.Tvar.make 0 in
  Sink.start ();
  for _ = 1 to 50 do
    Stm.atomically rt (fun tx -> Stm.write tx v (Stm.read tx v + 1))
  done;
  Sink.stop ();
  let tr = Sink.collect () in
  check_int "final value" 50 (Stm.atomically rt (fun tx -> Stm.read tx v));
  let count k =
    Array.fold_left (fun n (e : Event.t) -> if e.kind = k then n + 1 else n) 0 tr
  in
  check_int "one begin per attempt" 50 (count Event.Begin);
  check_int "uncontended: all commit" 50 (count Event.Commit);
  check_int "uncontended: no aborts" 0 (count Event.Abort);
  check_int "one buffered-write open per txn" 50 (count Event.Open);
  let pc = Analysis.pending_commit tr in
  check_int "no conflicts" 0 pc.Analysis.conflicts

(* Deterministic TL2 conflict: a fabricated enemy holds the stripe for
   [v], so the committing transaction's lock acquisition consults the
   manager exactly once; Aggressive says abort_other and the steal
   succeeds on the first try.  The capture must carry the resolve event
   (same d_* code namespace as the locator backend) and pending-commit
   must hold — the stealer commits. *)
let t_tl2_trace_forced_conflict () =
  let open Tcm_stm in
  let rt =
    Stm.create ~backend:Stm.Tl2_backend (Tcm_core.Registry.find_exn "aggressive")
  in
  let v = Stm.Tvar.make 0 in
  let enemy = Txn.new_attempt (Txn.new_shared ()) in
  Tl2.Internal.lock_for_test v enemy;
  Sink.start ();
  Stm.atomically rt (fun tx -> Stm.write tx v 7);
  Sink.stop ();
  let tr = Sink.collect () in
  Tl2.Internal.unlock_for_test v enemy;
  check_int "committed over the held lock" 7 (Stm.Tvar.peek v);
  let count p = Array.fold_left (fun n e -> if p e then n + 1 else n) 0 tr in
  check_int "one begin" 1 (count (fun (e : Event.t) -> e.kind = Event.Begin));
  check_int "one commit" 1 (count (fun (e : Event.t) -> e.kind = Event.Commit));
  check_int "no aborts" 0 (count (fun (e : Event.t) -> e.kind = Event.Abort));
  check_int "exactly one abort_other resolve" 1
    (count (fun (e : Event.t) -> e.kind = Event.Resolve && e.c = Event.d_abort_other));
  let pc = Analysis.pending_commit tr in
  check_int "the conflict was captured" 1 pc.Analysis.conflicts;
  check_int "pending-commit holds: the stealer commits" 0 pc.Analysis.violations

(* ------------------------------------------------------------------ *)
(* Analysis on hand-built traces                                       *)
(* ------------------------------------------------------------------ *)

let ev seq kind a b c : Event.t = { Event.seq; dom = 0; tick = 0; kind; a; b; c }

(* Two transactions duel; both end up aborted: a pending-commit
   violation at both resolves. *)
let t_analysis_violation () =
  let tr =
    [|
      ev 0 Event.Begin 1 101 0;
      ev 1 Event.Begin 2 102 0;
      ev 2 Event.Resolve 1 2 Event.d_abort_other;
      ev 3 Event.Abort 2 102 0;
      ev 4 Event.Begin 2 103 0;
      ev 5 Event.Resolve 2 1 Event.d_abort_other;
      ev 6 Event.Abort 1 101 0;
      ev 7 Event.Abort 2 103 0;
    |]
  in
  let pc = Analysis.pending_commit tr in
  check_int "conflicts" 2 pc.Analysis.conflicts;
  check_int "both violate" 2 pc.Analysis.violations;
  check_int "none undecidable" 0 pc.Analysis.undecidable;
  check_int "first violation" 2 pc.Analysis.first_violation_seq

(* The paper's own chain shape: T2 aborts T1, T3 later aborts T2, T3
   commits.  Both conflict parties of the first resolve die, yet the
   property holds because T3 is live and commits — the checker must be
   global, not per-pair. *)
let t_analysis_chain_ok () =
  let tr =
    [|
      ev 0 Event.Begin 1 101 0;
      ev 1 Event.Begin 2 102 0;
      ev 2 Event.Begin 3 103 0;
      ev 3 Event.Resolve 2 1 Event.d_abort_other;
      ev 4 Event.Abort 1 101 0;
      ev 5 Event.Resolve 3 2 Event.d_abort_other;
      ev 6 Event.Abort 2 102 0;
      ev 7 Event.Commit 3 103 0;
    |]
  in
  let pc = Analysis.pending_commit tr in
  check_int "no violations on the chain" 0 pc.Analysis.violations;
  check_int "all conflicts seen" 2 pc.Analysis.conflicts;
  let ca = Analysis.cascades tr in
  check_int "cascade length two" 2 ca.Analysis.max_cascade;
  check_int "two enemy aborts" 2 ca.Analysis.enemy_aborts

let t_analysis_undecidable () =
  let tr =
    [|
      ev 0 Event.Begin 1 101 0;
      ev 1 Event.Begin 2 102 0;
      ev 2 Event.Resolve 1 2 Event.d_abort_other;
      ev 3 Event.Abort 2 102 0;
      (* Txn 1 never terminates in the trace (truncated capture). *)
    |]
  in
  let pc = Analysis.pending_commit tr in
  check_int "not a violation" 0 pc.Analysis.violations;
  check_int "undecidable instead" 1 pc.Analysis.undecidable

let t_analysis_wasted_work () =
  let tr =
    [|
      ev 0 Event.Begin 1 101 0;
      ev 1 Event.Open 1 7 1;
      ev 2 Event.Open 1 8 1;
      ev 3 Event.Abort 1 101 0;
      ev 4 Event.Begin 1 102 0;
      ev 5 Event.Open 1 7 1;
      ev 6 Event.Commit 1 102 0;
    |]
  in
  let wa = Analysis.wasted_work tr in
  check_int "attempts" 2 wa.Analysis.attempts;
  check_int "aborted" 1 wa.Analysis.aborted;
  check_int "total opens" 3 wa.Analysis.opens_total;
  check_int "opens in the aborted attempt" 2 wa.Analysis.opens_wasted

(* ------------------------------------------------------------------ *)
(* Simulator traces                                                    *)
(* ------------------------------------------------------------------ *)

let t_sim_greedy_chain () =
  let s = 6 in
  let granularity = 2 in
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~granularity ~s () in
  Sink.start ();
  let r = Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst in
  Sink.stop ();
  let tr = Sink.collect () in
  let pc = Analysis.pending_commit tr in
  check_bool "chain produces conflicts" true (pc.Analysis.conflicts > 0);
  check_int "greedy holds pending-commit" 0 pc.Analysis.violations;
  check_int "trace and engine agree on makespan"
    (Option.get r.Tcm_sim.Engine.makespan)
    (Analysis.empirical_makespan tr);
  let mk =
    Analysis.makespan_report
      ~optimal:(granularity * Tcm_sched.Adversarial.optimal_makespan ~s)
      ~bound_factor:(Tcm_sched.Bounds.pending_commit_factor ~s)
      tr
  in
  check_bool "within the s(s+1)+2 bound" true mk.Analysis.within_bound;
  (* Every begin is balanced by a terminal event in a completed run. *)
  let count k =
    Array.fold_left (fun n (e : Event.t) -> if e.kind = k then n + 1 else n) 0 tr
  in
  check_int "attempts balance" (count Event.Begin)
    (count Event.Commit + count Event.Abort)

let t_sim_aggressive_duel_violates () =
  let streams =
    Array.init 2 (fun _ ->
        fun _ -> Some (Tcm_sim.Spec.txn ~dur:3 [ Tcm_sim.Spec.write ~at:0 ~obj:0 ]))
  in
  Sink.start ();
  let r =
    Tcm_sim.Engine.run ~horizon:60 ~policy:(Tcm_sim.Policy.aggressive ()) ~n_objects:1
      streams
  in
  Sink.stop ();
  let tr = Sink.collect () in
  check_int "livelock: nothing commits" 0 r.Tcm_sim.Engine.commits;
  let pc = Analysis.pending_commit tr in
  check_bool "conflicts happened" true (pc.Analysis.conflicts > 0);
  check_bool "aggressive violates pending-commit" true (pc.Analysis.violations > 0)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "tcm_trace_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let t_export_jsonl_roundtrip () =
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s:4 () in
  Sink.start ();
  ignore (Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst);
  Sink.stop ();
  let tr = Sink.collect () in
  check_bool "nonempty trace" true (Array.length tr > 0);
  with_temp_file (fun path ->
      Export.write_jsonl ~drops:3 path tr;
      let tr', drops = Export.read_jsonl path in
      check_int "drops from header" 3 drops;
      check_int "same length" (Array.length tr) (Array.length tr');
      Array.iteri
        (fun i e -> check_bool "events roundtrip" true (e = tr'.(i)))
        tr)

(* Multi-section dumps (one header per manager, as bench --trace now
   writes them): [read_jsonl_sections] keeps the sections and their
   names apart, and the flat [read_jsonl] concatenates them with
   re-offset seqs so downstream analyses still see a strictly
   increasing order. *)
let t_export_jsonl_sections () =
  let mk base n =
    Array.init n (fun i -> ev (base + i) Event.Open 1 i 1)
  in
  let a = mk 0 4 and b = mk 1 3 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Export.output_jsonl ~drops:1 ~manager:"greedy" oc a;
      Export.output_jsonl ~drops:2 ~manager:"backoff" oc b;
      close_out oc;
      (match Export.read_jsonl_sections path with
      | [ (Some "greedy", a', d1); (Some "backoff", b', d2) ] ->
          check_int "first section intact" (Array.length a) (Array.length a');
          check_int "second section intact" (Array.length b) (Array.length b');
          check_int "per-section drops" 1 d1;
          check_int "per-section drops" 2 d2;
          check_int "section seqs unshifted" 1 b'.(0).Event.seq
      | sections ->
          Alcotest.failf "expected 2 named sections, got %d"
            (List.length sections));
      let all, drops = Export.read_jsonl path in
      check_int "concatenated" 7 (Array.length all);
      check_int "drops summed" 3 drops;
      Array.iteri
        (fun i e ->
          if i > 0 then
            check_bool "seqs strictly increasing after re-offset" true
              (e.Event.seq > all.(i - 1).Event.seq))
        all)

(* Single-section files written by the old writer keep reading the
   same way: one anonymous section. *)
let t_export_jsonl_single_section () =
  with_temp_file (fun path ->
      Export.write_jsonl ~drops:0 path [| ev 5 Event.Begin 1 101 0 |];
      match Export.read_jsonl_sections path with
      | [ (None, a, 0) ] -> check_int "one event" 1 (Array.length a)
      | _ -> Alcotest.fail "expected one anonymous section")

let t_export_jsonl_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "{\"seq\":not-a-number}\n";
      close_out oc;
      match Export.read_jsonl path with
      | _ -> Alcotest.fail "malformed line accepted"
      | exception Failure _ -> ())

let t_export_chrome_shape () =
  let tr =
    [|
      ev 0 Event.Begin 1 101 0;
      ev 1 Event.Open 1 7 1;
      ev 2 Event.Resolve 1 2 Event.d_block;
      ev 3 Event.Wait_begin 1 2 0;
      (* Aborted while waiting: no Wait_end — the exporter must close
         the wait slice before closing the attempt slice. *)
      ev 4 Event.Abort 1 101 0;
    |]
  in
  with_temp_file (fun path ->
      Export.write_chrome path tr;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let has sub =
        let n = String.length body and m = String.length sub in
        let rec go i = i + m <= n && (String.sub body i m = sub || go (i + 1)) in
        go 0
      in
      check_bool "is a traceEvents doc" true (has "{\"traceEvents\":[");
      check_bool "has begin slice" true (has "\"ph\":\"B\"");
      check_bool "has end slice" true (has "\"ph\":\"E\"");
      check_bool "has instants" true (has "\"ph\":\"i\"");
      let count sub =
        let n = String.length body and m = String.length sub in
        let c = ref 0 in
        for i = 0 to n - m do
          if String.sub body i m = sub then incr c
        done;
        !c
      in
      check_int "B/E slices balance" (count "\"ph\":\"B\"") (count "\"ph\":\"E\""))

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick t_ring_wraparound;
          Alcotest.test_case "drops when full" `Quick t_ring_drops_when_full;
          Alcotest.test_case "drain while writing" `Quick t_ring_drain_while_writing;
        ] );
      ( "sink",
        [
          Alcotest.test_case "roundtrip" `Quick t_sink_roundtrip;
          Alcotest.test_case "disabled: no events" `Quick t_sink_disabled_no_events;
          Alcotest.test_case "disabled: no allocation" `Quick t_sink_disabled_no_alloc;
          Alcotest.test_case "generations isolate captures" `Quick
            t_sink_generation_isolation;
        ] );
      ( "stm",
        [
          Alcotest.test_case "emit sites" `Quick t_stm_trace_sanity;
          Alcotest.test_case "tl2 emit sites" `Quick t_tl2_trace_sanity;
          Alcotest.test_case "tl2 forced conflict" `Quick t_tl2_trace_forced_conflict;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "violation detected" `Quick t_analysis_violation;
          Alcotest.test_case "chain is not a violation" `Quick t_analysis_chain_ok;
          Alcotest.test_case "truncated is undecidable" `Quick t_analysis_undecidable;
          Alcotest.test_case "wasted work" `Quick t_analysis_wasted_work;
        ] );
      ( "sim",
        [
          Alcotest.test_case "greedy chain holds pending-commit" `Quick
            t_sim_greedy_chain;
          Alcotest.test_case "aggressive duel violates" `Quick
            t_sim_aggressive_duel_violates;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick t_export_jsonl_roundtrip;
          Alcotest.test_case "jsonl sections roundtrip" `Quick
            t_export_jsonl_sections;
          Alcotest.test_case "jsonl single anonymous section" `Quick
            t_export_jsonl_single_section;
          Alcotest.test_case "jsonl rejects garbage" `Quick t_export_jsonl_rejects_garbage;
          Alcotest.test_case "chrome shape" `Quick t_export_chrome_shape;
        ] );
    ]
