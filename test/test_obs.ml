(* tcm.obs: the space-saving sketch's guarantees, the wasted-work
   ledger and its reconciliation against tcm.metrics on forced-conflict
   runs (both live backends and the simulator), the flight recorder's
   triggers and bundle round-trip, and the priced conflict scorer. *)

open Tcm_stm
module Sketch = Tcm_obs.Sketch
module Ledger = Tcm_obs.Ledger
module Hot = Tcm_obs.Hot
module Flight = Tcm_obs.Flight

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sketch                                                              *)
(* ------------------------------------------------------------------ *)

(* Capacity >= distinct keys: the sketch degenerates to exact counts
   with zero error. *)
let t_sketch_exact () =
  let sk = Sketch.create 16 in
  for k = 0 to 9 do
    for _ = 1 to k + 1 do
      Sketch.record sk k
    done
  done;
  let entries = Sketch.entries sk in
  check_int "distinct keys" 10 (List.length entries);
  check_int "total" 55 (Sketch.total sk);
  check_int "no eviction error" 0 (Sketch.max_error sk);
  List.iter
    (fun (e : Sketch.entry) ->
      check_int (Printf.sprintf "exact count of key %d" e.key) (e.key + 1)
        e.count;
      check_int "exact entries carry no error" 0 e.err)
    entries;
  (* Deterministic order: count desc, key asc. *)
  match entries with
  | first :: _ -> check_int "heaviest first" 9 first.key
  | [] -> Alcotest.fail "empty entries"

(* Over-capacity stream: totals are preserved, every reported count is
   an overestimate bounded by its err, and any key with true frequency
   above total/k is guaranteed present (the space-saving guarantee). *)
let t_sketch_bounds () =
  let sk = Sketch.create 4 in
  let truth = Hashtbl.create 32 in
  let feed key n =
    Hashtbl.replace truth key (n + Option.value ~default:0 (Hashtbl.find_opt truth key));
    for _ = 1 to n do
      Sketch.record sk key
    done
  in
  feed 0 100;
  feed 1 50;
  for k = 2 to 21 do
    feed k 1
  done;
  check_int "total preserved" 170 (Sketch.total sk);
  let entries = Sketch.entries sk in
  check_int "at most k entries" 4 (List.length entries);
  List.iter
    (fun (e : Sketch.entry) ->
      let true_count = Option.value ~default:0 (Hashtbl.find_opt truth e.key) in
      check_bool
        (Printf.sprintf "count >= truth for key %d" e.key)
        true (e.count >= true_count);
      check_bool
        (Printf.sprintf "count - err <= truth for key %d" e.key)
        true
        (e.count - e.err <= true_count))
    entries;
  (* freq(0)=100 and freq(1)=50 both exceed 170/4: guaranteed in. *)
  let keys = List.map (fun (e : Sketch.entry) -> e.key) entries in
  check_bool "heavy hitter 0 present" true (List.mem 0 keys);
  check_bool "heavy hitter 1 present" true (List.mem 1 keys);
  check_bool "error bound <= total/k" true (Sketch.max_error sk <= 170 / 4)

let t_sketch_merge_order_independent () =
  let mk seed n =
    let sk = Sketch.create 8 in
    let rng = Splitmix.create seed in
    for _ = 1 to n do
      Sketch.record sk (Splitmix.int rng 12)
    done;
    sk
  in
  let a = mk 1 200 and b = mk 2 150 and c = mk 3 75 in
  let norm l = List.map (fun (e : Sketch.entry) -> (e.key, e.count, e.err)) l in
  let m1 = norm (Sketch.merged [ a; b; c ]) in
  List.iter
    (fun perm ->
      Alcotest.(check (list (triple int int int)))
        "merge is order-independent" m1
        (norm (Sketch.merged perm)))
    [ [ a; c; b ]; [ b; a; c ]; [ b; c; a ]; [ c; a; b ]; [ c; b; a ] ];
  (* Merged totals add. *)
  let sum =
    List.fold_left (fun acc (_, c, _) -> acc + c) 0 m1
  in
  check_bool "merged counts bounded by total" true
    (sum <= Sketch.total a + Sketch.total b + Sketch.total c)

(* ------------------------------------------------------------------ *)
(* Ledger basics                                                       *)
(* ------------------------------------------------------------------ *)

let find_row ~backend ~manager ~runtime ~cls rows =
  List.find_opt
    (fun (r : Ledger.row) ->
      r.backend = backend && r.manager = manager && r.runtime = runtime
      && r.cls = cls)
    rows

let t_ledger_charges () =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  let l = Ledger.for_manager ~backend:"testb" ~runtime:"test" "m1" in
  Ledger.charge_abort l ~work:3;
  Ledger.charge_abort l ~work:4;
  Ledger.charge_wait l ~cost:7 ~ticks:2;
  Ledger.note_commit l ~work:5;
  Tcm_obs.disable ();
  match find_row ~backend:"testb" ~manager:"m1" ~runtime:"test" ~cls:"-"
          (Ledger.rows ())
  with
  | None -> Alcotest.fail "charged row missing"
  | Some r ->
      check_int "aborts" 2 r.aborts;
      check_int "wasted work" 7 r.wasted_work;
      check_int "waits" 1 r.waits;
      check_int "wait cost" 7 r.wait_cost;
      check_int "wait ticks" 2 r.wait_ticks;
      check_int "commits" 1 r.commits;
      check_int "useful work" 5 r.useful_work;
      check_int "price = wasted + wait ticks" 9 (Ledger.price r)

let t_ledger_disabled_is_off () =
  Tcm_obs.reset ();
  (* Disabled: charges must vanish. *)
  let l = Ledger.for_manager ~backend:"testb" ~runtime:"test" "m2" in
  Ledger.charge_abort l ~work:3;
  Ledger.note_commit l ~work:5;
  check_bool "no row materializes when disabled" true
    (find_row ~backend:"testb" ~manager:"m2" ~runtime:"test" ~cls:"-"
       (Ledger.rows ())
    = None)

let t_ledger_classes () =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  let slot = Ledger.class_slot "scan" in
  check_bool "registered class gets a non-zero slot" true (slot > 0);
  let l = Ledger.for_manager ~backend:"testb" ~runtime:"test" "m3" in
  Ledger.set_class slot;
  Ledger.charge_abort l ~work:2;
  Ledger.set_class 0;
  Ledger.charge_abort l ~work:1;
  Tcm_obs.disable ();
  let rows = Ledger.rows () in
  (match find_row ~backend:"testb" ~manager:"m3" ~runtime:"test" ~cls:"scan" rows with
  | None -> Alcotest.fail "class row missing"
  | Some r -> check_int "charge landed in the set class" 2 r.wasted_work);
  match find_row ~backend:"testb" ~manager:"m3" ~runtime:"test" ~cls:"-" rows with
  | None -> Alcotest.fail "unclassified row missing"
  | Some r -> check_int "reset class lands in slot 0" 1 r.wasted_work

(* ------------------------------------------------------------------ *)
(* Ledger vs metrics reconciliation (the tentpole invariant)           *)
(* ------------------------------------------------------------------ *)

(* Forced conflicts: every domain hammers the same two tvars, so
   aborts and CM waits are guaranteed; with metrics and obs enabled
   over exactly the same span, [Ledger.reconcile] must hold with zero
   tolerance — both layers observe the same integers. *)
let reconcile_live backend backend_name =
  Tcm_metrics.reset ();
  Tcm_obs.reset ();
  Tcm_metrics.enable ();
  Tcm_obs.enable ();
  let rt = Stm.create ~backend (Tcm_core.Registry.find_exn "greedy") in
  let a = Tvar.make 0 and b = Tvar.make 0 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Splitmix.create (d + 11) in
            for _ = 1 to 300 do
              Stm.atomically rt (fun tx ->
                  let x = Stm.read tx a in
                  Stm.write tx a (x + 1);
                  if Splitmix.bool rng then
                    Stm.write tx b (Stm.read tx b + 1))
            done))
  in
  List.iter Domain.join doms;
  Tcm_metrics.disable ();
  Tcm_obs.disable ();
  let ok, msgs = Ledger.reconcile (Tcm_metrics.snapshot ()) in
  check_bool
    (Printf.sprintf "ledger reconciles with metrics (%s): %s" backend_name
       (String.concat "; " msgs))
    true ok;
  check_int "all increments committed" 1200 (Tvar.peek a);
  (* The ledger saw the same 1200 commits the runtime reports. *)
  let commits =
    List.fold_left
      (fun acc (r : Ledger.row) ->
        if r.backend = backend_name && r.manager = "greedy" then
          acc + r.commits
        else acc)
      0 (Ledger.rows ())
  in
  check_int "ledger commits = runtime commits" (Stm.stats rt).Runtime.n_commits
    commits

let t_reconcile_locator () = reconcile_live Stm.Locator "locator"
let t_reconcile_tl2 () = reconcile_live Stm.Tl2_backend "tl2"

(* Simulator: deterministic forced conflicts (every stream writes
   object 0), wait costs in ticks — reconciliation is exact including
   the wait-cost sum. *)
let t_reconcile_sim () =
  Tcm_metrics.reset ();
  Tcm_obs.reset ();
  Tcm_metrics.enable ();
  Tcm_obs.enable ();
  let streams =
    Array.init 4 (fun _ ->
        fun idx ->
         if idx >= 12 then None
         else Some (Tcm_sim.Spec.txn ~dur:3 [ Tcm_sim.Spec.write ~at:0 ~obj:0 ]))
  in
  ignore
    (Tcm_sim.Engine.run ~horizon:4_000 ~policy:(Tcm_sim.Policy.greedy ())
       ~n_objects:1 streams);
  Tcm_metrics.disable ();
  Tcm_obs.disable ();
  let ok, msgs = Ledger.reconcile (Tcm_metrics.snapshot ()) in
  check_bool
    (Printf.sprintf "sim ledger reconciles: %s" (String.concat "; " msgs))
    true ok;
  (* The duel actually produced conflict activity to attribute. *)
  match
    find_row ~backend:"locator" ~manager:"greedy" ~runtime:"sim" ~cls:"-"
      (Ledger.rows ())
  with
  | None -> Alcotest.fail "sim family missing from ledger"
  | Some r ->
      check_bool "sim run committed" true (r.commits > 0);
      check_bool "forced conflicts priced something" true (Ledger.price r > 0)

(* ------------------------------------------------------------------ *)
(* Hot-key tracking                                                    *)
(* ------------------------------------------------------------------ *)

let t_hot_snapshot () =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  let h = Hot.for_manager ~backend:"testb" ~runtime:"test" "m4" in
  for _ = 1 to 10 do
    Hot.record h 77
  done;
  Hot.record h 5;
  Tcm_obs.disable ();
  let fams = Hot.snapshot () in
  match
    List.find_opt
      (fun ((f : Hot.family), _) -> f.manager = "m4" && f.backend = "testb")
      fams
  with
  | None -> Alcotest.fail "hot family missing"
  | Some (_, entries) -> (
      match entries with
      | (e : Sketch.entry) :: _ ->
          check_int "hottest key" 77 e.key;
          check_int "hottest count" 10 e.count
      | [] -> Alcotest.fail "no hot entries")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let temp_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" name (Unix.getpid ()))
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let t_flight_trigger_and_roundtrip () =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  let l = Ledger.for_manager ~backend:"testb" ~runtime:"test" "m5" in
  Ledger.charge_abort l ~work:6;
  Ledger.note_commit l ~work:2;
  let h = Hot.for_manager ~backend:"testb" ~runtime:"test" "m5" in
  Hot.record h 42;
  Hot.record h 42;
  Tcm_trace.Sink.start ();
  Tcm_trace.Sink.attempt_begin ~txid:1 ~attempt:101 ~tick:0;
  Tcm_trace.Sink.acquired ~txid:1 ~obj:42 ~write:true ~tick:0;
  Tcm_trace.Sink.attempt_abort ~txid:1 ~attempt:101 ~tick:0;
  let dir = temp_dir "tcm-flight-test" in
  let f =
    Flight.create ~window:4 ~miss_frac:0.5 ~min_interval_s:0. ~dir ~tag:"t" ()
  in
  (* Three in-window completions do not trigger... *)
  for _ = 1 to 3 do
    Flight.note_completion f ~cls:"read" ~within_slo:false
  done;
  check_int "no bundle before the window closes" 0 (Flight.count f);
  (* ...the fourth closes the window at 100% missed: breach. *)
  Flight.note_completion f ~cls:"read" ~within_slo:false;
  check_int "breach dumped a bundle" 1 (Flight.count f);
  Flight.force f ~trigger:"manual";
  check_int "force always dumps" 2 (Flight.count f);
  Tcm_trace.Sink.stop ();
  Tcm_obs.disable ();
  let paths = Flight.bundles dir in
  check_int "two bundles on disk" 2 (List.length paths);
  let b = Flight.read_bundle (List.hd paths) in
  Alcotest.(check string) "trigger" "slo_breach" b.Flight.b_trigger;
  Alcotest.(check string) "tag" "t" b.Flight.b_tag;
  check_int "the armed ring's events are in the bundle" 3
    (Array.length b.Flight.b_events);
  check_bool "ledger rows round-trip" true
    (match
       find_row ~backend:"testb" ~manager:"m5" ~runtime:"test" ~cls:"-"
         b.Flight.b_ledger
     with
    | Some r -> r.aborts = 1 && r.wasted_work = 6 && r.commits = 1
    | None -> false);
  check_bool "hot entries round-trip" true
    (List.exists
       (fun ((fam : Hot.family), entries) ->
         fam.manager = "m5"
         && List.exists
              (fun (e : Sketch.entry) -> e.key = 42 && e.count = 2)
              entries)
       b.Flight.b_hot);
  (* Events come back in seq order. *)
  let seqs = Array.to_list (Array.map (fun (e : Tcm_trace.Event.t) -> e.seq) b.Flight.b_events) in
  Alcotest.(check (list int)) "sorted by seq" (List.sort compare seqs) seqs

let t_flight_shed_spike () =
  Tcm_obs.reset ();
  let dir = temp_dir "tcm-flight-shed" in
  let f =
    Flight.create ~shed_spike:3 ~min_interval_s:0. ~dir ~tag:"shed" ()
  in
  Flight.note_drop f;
  Flight.note_drop f;
  check_int "below the spike threshold" 0 (Flight.count f);
  Flight.note_drop f;
  check_int "spike dumped" 1 (Flight.count f);
  let b = Flight.read_bundle (List.hd (Flight.bundles dir)) in
  Alcotest.(check string) "trigger" "shed_spike" b.Flight.b_trigger

(* ------------------------------------------------------------------ *)
(* Priced conflict scorer (Analysis.price)                             *)
(* ------------------------------------------------------------------ *)

let ev seq kind a b c tick = { Tcm_trace.Event.seq; dom = 0; tick; kind; a; b; c }

let t_price_synthetic () =
  let open Tcm_trace.Event in
  (* tx1: two opens then abort (both wasted); tx2: one open, a priced
     wait of 1 seq unit, then commit (open useful). *)
  let trace =
    [|
      ev 0 Begin 1 101 0 0;
      ev 1 Open 1 10 1 0;
      ev 2 Open 1 11 1 0;
      ev 3 Begin 2 201 0 0;
      ev 4 Open 2 10 1 0;
      ev 5 Wait_begin 2 1 0 0;
      ev 6 Wait_end 2 1 0 0;
      ev 7 Abort 1 101 0 0;
      ev 8 Commit 2 201 0 0;
    |]
  in
  let p = Tcm_trace.Analysis.price trace in
  check_int "attempts" 2 p.Tcm_trace.Analysis.p_attempts;
  check_int "committed" 1 p.Tcm_trace.Analysis.p_committed;
  check_int "aborted" 1 p.Tcm_trace.Analysis.p_aborted;
  check_int "work total" 3 p.Tcm_trace.Analysis.work_total;
  check_int "work wasted" 2 p.Tcm_trace.Analysis.work_wasted;
  check_int "waits" 1 p.Tcm_trace.Analysis.waits;
  check_int "wait cost (seq units)" 1 p.Tcm_trace.Analysis.wait_cost;
  check_int "price" 3 p.Tcm_trace.Analysis.price;
  Alcotest.(check (float 1e-9))
    "price per commit" 3.0 p.Tcm_trace.Analysis.price_per_commit

let t_price_wait_closed_by_abort () =
  let open Tcm_trace.Event in
  (* An attempt aborted while blocked never emits Wait_end: the abort
     closes (and prices) the interval. *)
  let trace =
    [|
      ev 0 Begin 1 101 0 0;
      ev 1 Wait_begin 1 2 0 0;
      ev 4 Abort 1 101 0 0;
    |]
  in
  let p = Tcm_trace.Analysis.price trace in
  check_int "wait closed at terminal event" 1 p.Tcm_trace.Analysis.waits;
  check_int "wait priced to the abort" 3 p.Tcm_trace.Analysis.wait_cost;
  check_bool "no commits: price per commit is infinite" true
    (p.Tcm_trace.Analysis.price_per_commit = infinity)

(* Live capture: the scorer's wasted work is bounded by the ledger's
   on the same run — the trace records Open events at write installs
   only, while the ledger's n_opens counts reads too, so trace-side
   waste is a per-attempt subset of ledger-side waste. *)
let t_price_live_vs_ledger () =
  Tcm_obs.reset ();
  Tcm_obs.enable ();
  Tcm_trace.Sink.start ();
  let rt = Stm.create (Tcm_core.Registry.find_exn "greedy") in
  let a = Tvar.make 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              Stm.atomically rt (fun tx -> Stm.modify tx a succ)
            done))
  in
  List.iter Domain.join doms;
  Tcm_trace.Sink.stop ();
  Tcm_obs.disable ();
  let trace = Tcm_trace.Sink.collect () in
  let p = Tcm_trace.Analysis.price trace in
  let wasted_ledger =
    List.fold_left
      (fun acc (r : Ledger.row) ->
        if r.backend = "locator" && r.manager = "greedy" && r.runtime = "live"
        then acc + r.wasted_work
        else acc)
      0 (Ledger.rows ())
  in
  check_bool "trace captured the run" true
    (p.Tcm_trace.Analysis.work_total > 0);
  check_bool
    (Printf.sprintf "trace waste (%d) bounded by ledger waste (%d)"
       p.Tcm_trace.Analysis.work_wasted wasted_ledger)
    true
    (p.Tcm_trace.Analysis.work_wasted <= wasted_ledger)

let () =
  Alcotest.run "tcm_obs"
    [
      ( "sketch",
        [
          Alcotest.test_case "exact under capacity" `Quick t_sketch_exact;
          Alcotest.test_case "space-saving bounds" `Quick t_sketch_bounds;
          Alcotest.test_case "merge order-independent" `Quick
            t_sketch_merge_order_independent;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "charges accumulate" `Quick t_ledger_charges;
          Alcotest.test_case "disabled is off" `Quick t_ledger_disabled_is_off;
          Alcotest.test_case "class slots" `Quick t_ledger_classes;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "locator forced conflicts" `Quick
            t_reconcile_locator;
          Alcotest.test_case "tl2 forced conflicts" `Quick t_reconcile_tl2;
          Alcotest.test_case "simulator duel" `Quick t_reconcile_sim;
        ] );
      ( "hot",
        [ Alcotest.test_case "snapshot merges domains" `Quick t_hot_snapshot ] );
      ( "flight",
        [
          Alcotest.test_case "breach trigger + round-trip" `Quick
            t_flight_trigger_and_roundtrip;
          Alcotest.test_case "shed spike trigger" `Quick t_flight_shed_spike;
        ] );
      ( "price",
        [
          Alcotest.test_case "synthetic trace" `Quick t_price_synthetic;
          Alcotest.test_case "wait closed by abort" `Quick
            t_price_wait_closed_by_abort;
          Alcotest.test_case "live capture vs ledger" `Quick
            t_price_live_vs_ledger;
        ] );
    ]
