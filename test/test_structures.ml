(** Tests for the transactional data structures: model-based checks of
    the set semantics, red-black invariants, skiplist behaviour, the
    forest's one-vs-all dynamics, and multi-domain stress. *)

open Tcm_stm
module S = Tcm_structures

let rt () = Stm.create (module Tcm_core.Greedy)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Generic INTSET behaviour, instantiated per structure                *)
(* ------------------------------------------------------------------ *)

let basic_suite (module M : S.Intset.S) =
  let t_empty () =
    let rt = rt () in
    let s = M.create () in
    check_bool "member on empty" false (Stm.atomically rt (fun tx -> M.member tx s 5));
    check_bool "remove on empty" false (Stm.atomically rt (fun tx -> M.remove tx s 5));
    check_ilist "to_list empty" [] (Stm.atomically rt (fun tx -> M.to_list tx s))
  in
  let t_insert_remove () =
    let rt = rt () in
    let s = M.create () in
    check_bool "fresh insert" true (Stm.atomically rt (fun tx -> M.insert tx s 3));
    check_bool "duplicate insert" false (Stm.atomically rt (fun tx -> M.insert tx s 3));
    check_bool "member" true (Stm.atomically rt (fun tx -> M.member tx s 3));
    check_bool "remove present" true (Stm.atomically rt (fun tx -> M.remove tx s 3));
    check_bool "remove again" false (Stm.atomically rt (fun tx -> M.remove tx s 3));
    check_bool "gone" false (Stm.atomically rt (fun tx -> M.member tx s 3))
  in
  let t_sorted () =
    let rt = rt () in
    let s = M.create () in
    List.iter (fun k -> ignore (Stm.atomically rt (fun tx -> M.insert tx s k))) [ 5; 1; 9; 3; 7 ];
    check_ilist "sorted" [ 1; 3; 5; 7; 9 ] (Stm.atomically rt (fun tx -> M.to_list tx s))
  in
  let t_boundaries () =
    let rt = rt () in
    let s = M.create () in
    List.iter
      (fun k -> check_bool "insert extremes" true (Stm.atomically rt (fun tx -> M.insert tx s k)))
      [ 0; max_int / 2; 1 ];
    check_bool "middle removable" true (Stm.atomically rt (fun tx -> M.remove tx s 1));
    check_ilist "extremes stay" [ 0; max_int / 2 ] (Stm.atomically rt (fun tx -> M.to_list tx s))
  in
  let t_model_random () =
    let rt = rt () in
    let s = M.create () in
    let model = Hashtbl.create 64 in
    let rng = Splitmix.create 97 in
    for _ = 1 to 1500 do
      let k = Splitmix.int rng 48 in
      match Splitmix.int rng 3 with
      | 0 ->
          let got = Stm.atomically rt (fun tx -> M.insert tx s k) in
          check_bool "insert agrees with model" (not (Hashtbl.mem model k)) got;
          Hashtbl.replace model k ()
      | 1 ->
          let got = Stm.atomically rt (fun tx -> M.remove tx s k) in
          check_bool "remove agrees with model" (Hashtbl.mem model k) got;
          Hashtbl.remove model k
      | _ ->
          check_bool "member agrees with model" (Hashtbl.mem model k)
            (Stm.atomically rt (fun tx -> M.member tx s k))
    done;
    let expect = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
    check_ilist "final contents" expect (Stm.atomically rt (fun tx -> M.to_list tx s))
  in
  let t_concurrent_balance () =
    let rt = rt () in
    let s = M.create () in
    let doms =
      List.init 4 (fun d ->
          Domain.spawn (fun () ->
              let rng = Splitmix.create (d + 11) in
              let bal = ref 0 in
              for _ = 1 to 300 do
                let k = Splitmix.int rng 32 in
                if Splitmix.bool rng then begin
                  if Stm.atomically rt (fun tx -> M.insert tx s k) then incr bal
                end
                else if Stm.atomically rt (fun tx -> M.remove tx s k) then decr bal
              done;
              !bal))
    in
    let balance = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
    let size = List.length (Stm.atomically rt (fun tx -> M.to_list tx s)) in
    check_int "size equals net insertions" balance size
  in
  [
    Alcotest.test_case "empty set" `Quick t_empty;
    Alcotest.test_case "insert/remove/member" `Quick t_insert_remove;
    Alcotest.test_case "to_list sorted" `Quick t_sorted;
    Alcotest.test_case "boundary keys" `Quick t_boundaries;
    Alcotest.test_case "random ops match model" `Quick t_model_random;
    Alcotest.test_case "concurrent balance conserved" `Quick t_concurrent_balance;
  ]

(* qcheck: a batch of inserts then removes behaves like a set, for each
   structure. *)
let prop_set_semantics (module M : S.Intset.S) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s behaves like a set" M.name)
    ~count:60
    QCheck.(pair (small_list (int_bound 40)) (small_list (int_bound 40)))
    (fun (ins, dels) ->
      let rt = rt () in
      let s = M.create () in
      List.iter (fun k -> ignore (Stm.atomically rt (fun tx -> M.insert tx s k))) ins;
      List.iter (fun k -> ignore (Stm.atomically rt (fun tx -> M.remove tx s k))) dels;
      let expect =
        List.sort_uniq compare (List.filter (fun k -> not (List.mem k dels)) ins)
      in
      Stm.atomically rt (fun tx -> M.to_list tx s) = expect)

(* ------------------------------------------------------------------ *)
(* Red-black specifics                                                 *)
(* ------------------------------------------------------------------ *)

let rb_check rt t =
  match Stm.atomically rt (fun tx -> S.Trbtree.check_invariants tx t) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "red-black invariant broken: %s" e

let t_rb_invariants_random () =
  let rt = rt () in
  let t = S.Trbtree.create () in
  let rng = Splitmix.create 5 in
  for _ = 1 to 3000 do
    let k = Splitmix.int rng 96 in
    ignore
      (Stm.atomically rt (fun tx ->
           if Splitmix.bool rng then S.Trbtree.insert tx t k else S.Trbtree.remove tx t k));
    ()
  done;
  rb_check rt t

let t_rb_invariants_each_step () =
  let rt = rt () in
  let t = S.Trbtree.create () in
  let rng = Splitmix.create 23 in
  for _ = 1 to 400 do
    let k = Splitmix.int rng 24 in
    ignore
      (Stm.atomically rt (fun tx ->
           if Splitmix.int rng 3 < 2 then S.Trbtree.insert tx t k else S.Trbtree.remove tx t k));
    rb_check rt t
  done

let t_rb_ascending_descending () =
  let rt = rt () in
  let t = S.Trbtree.create () in
  for k = 1 to 64 do
    ignore (Stm.atomically rt (fun tx -> S.Trbtree.insert tx t k))
  done;
  rb_check rt t;
  (match Stm.atomically rt (fun tx -> S.Trbtree.check_invariants tx t) with
  | Ok bh -> check_bool "logarithmic black height" true (bh <= 8)
  | Error e -> Alcotest.failf "broken: %s" e);
  for k = 64 downto 1 do
    check_bool "delete descending" true (Stm.atomically rt (fun tx -> S.Trbtree.remove tx t k));
    rb_check rt t
  done;
  check_ilist "empty at the end" [] (Stm.atomically rt (fun tx -> S.Trbtree.to_list tx t))

let t_rb_delete_cases () =
  let rt = rt () in
  let t = S.Trbtree.create () in
  (* Build a small known tree and delete nodes with 0, 1, 2 children
     and the root. *)
  List.iter
    (fun k -> ignore (Stm.atomically rt (fun tx -> S.Trbtree.insert tx t k)))
    [ 50; 25; 75; 12; 37; 62; 87; 6 ];
  rb_check rt t;
  check_bool "leaf delete" true (Stm.atomically rt (fun tx -> S.Trbtree.remove tx t 6));
  rb_check rt t;
  check_bool "one-child / internal delete" true
    (Stm.atomically rt (fun tx -> S.Trbtree.remove tx t 12));
  rb_check rt t;
  check_bool "two-children delete" true (Stm.atomically rt (fun tx -> S.Trbtree.remove tx t 25));
  rb_check rt t;
  check_bool "root delete" true (Stm.atomically rt (fun tx -> S.Trbtree.remove tx t 50));
  rb_check rt t;
  check_ilist "remaining" [ 37; 62; 75; 87 ] (Stm.atomically rt (fun tx -> S.Trbtree.to_list tx t))

let prop_rb_invariants =
  QCheck.Test.make ~name:"rbtree invariants after arbitrary op sequences" ~count:60
    QCheck.(small_list (pair bool (int_bound 32)))
    (fun ops ->
      let rt = rt () in
      let t = S.Trbtree.create () in
      List.iter
        (fun (ins, k) ->
          ignore
            (Stm.atomically rt (fun tx ->
                 if ins then S.Trbtree.insert tx t k else S.Trbtree.remove tx t k)))
        ops;
      match Stm.atomically rt (fun tx -> S.Trbtree.check_invariants tx t) with
      | Ok _ -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Skiplist specifics                                                  *)
(* ------------------------------------------------------------------ *)

let t_skiplist_dense () =
  let rt = rt () in
  let s = S.Tskiplist.create () in
  for k = 0 to 200 do
    check_bool "insert" true (Stm.atomically rt (fun tx -> S.Tskiplist.insert tx s k))
  done;
  check_int "all present" 201
    (List.length (Stm.atomically rt (fun tx -> S.Tskiplist.to_list tx s)));
  for k = 0 to 200 do
    check_bool "member after mass insert" true
      (Stm.atomically rt (fun tx -> S.Tskiplist.member tx s k))
  done

let t_skiplist_interleaved_removal () =
  let rt = rt () in
  let s = S.Tskiplist.create () in
  for k = 0 to 99 do
    ignore (Stm.atomically rt (fun tx -> S.Tskiplist.insert tx s k))
  done;
  for k = 0 to 99 do
    if k mod 2 = 0 then
      check_bool "remove evens" true (Stm.atomically rt (fun tx -> S.Tskiplist.remove tx s k))
  done;
  let remaining = Stm.atomically rt (fun tx -> S.Tskiplist.to_list tx s) in
  check_ilist "odds remain" (List.init 50 (fun i -> (2 * i) + 1)) remaining

(* Ordered range reads (the service layer's scan primitive): up to
   [len] keys starting from the smallest key >= [lo]. *)
let t_skiplist_range () =
  let rt = rt () in
  let s = S.Tskiplist.create () in
  List.iter
    (fun k -> ignore (Stm.atomically rt (fun tx -> S.Tskiplist.insert tx s k)))
    [ 9; 1; 5; 3; 7 ];
  let range ~lo ~len = Stm.atomically rt (fun tx -> S.Tskiplist.range tx s ~lo ~len) in
  check_ilist "mid-range, between keys" [ 3; 5; 7 ] (range ~lo:2 ~len:3);
  check_ilist "lo on an existing key" [ 5; 7 ] (range ~lo:5 ~len:2);
  check_ilist "whole set" [ 1; 3; 5; 7; 9 ] (range ~lo:0 ~len:10);
  check_ilist "truncated at the tail" [ 9 ] (range ~lo:8 ~len:5);
  check_ilist "past the tail" [] (range ~lo:10 ~len:3);
  check_ilist "len zero" [] (range ~lo:0 ~len:0);
  check_ilist "len negative" [] (range ~lo:0 ~len:(-1));
  check_ilist "empty list" []
    (let s2 = S.Tskiplist.create () in
     Stm.atomically rt (fun tx -> S.Tskiplist.range tx s2 ~lo:0 ~len:5))

(* ------------------------------------------------------------------ *)
(* Store scaling: sized skiplists and the non-transactional preload    *)
(* ------------------------------------------------------------------ *)

let t_skiplist_sized_levels () =
  check_int "1M keys cap at 20" 20 (S.Tskiplist.level_for ~expect:1_000_000);
  check_int "tiny populations clamp at 4" 4 (S.Tskiplist.level_for ~expect:1);
  check_int "huge populations clamp at 30" 30 (S.Tskiplist.level_for ~expect:max_int);
  check_int "default create keeps the historical cap" S.Tskiplist.default_max_level
    (S.Tskiplist.level_cap (S.Tskiplist.create ()));
  check_int "explicit override wins" 12
    (S.Tskiplist.level_cap (S.Tskiplist.create_sized ~max_level:12 ~expect:64 ()));
  (* Tower heights under a parametric cap: every tower fits the cap,
     every node is counted once, and the distribution is geometric-ish
     (ground level dominates, tall towers are rare). *)
  let n = 4096 in
  let s = S.Tskiplist.create_sized ~expect:n () in
  check_int "expect-derived cap" (S.Tskiplist.level_for ~expect:n)
    (S.Tskiplist.level_cap s);
  S.Tskiplist.unsafe_preload s (Array.init n (fun i -> i));
  let counts = S.Tskiplist.level_counts s in
  check_int "counts array spans the cap" (S.Tskiplist.level_cap s)
    (Array.length counts);
  check_int "every node counted once" n (Array.fold_left ( + ) 0 counts);
  check_bool "ground towers dominate" true (counts.(0) > n / 3);
  check_bool "tall towers are rare" true (counts.(0) > 8 * counts.(4))

let t_skiplist_preload_equiv () =
  (* The preload must be observationally identical to a transactional
     build of the same keys: same contents, same range reads, and —
     because levels come from the same deterministic stream — the same
     tower-height histogram. *)
  let keys = Array.init 500 (fun i -> 3 * i) in
  let pre = S.Tskiplist.create_sized ~expect:500 () in
  S.Tskiplist.unsafe_preload pre keys;
  let rt = rt () in
  let txn = S.Tskiplist.create_sized ~expect:500 () in
  Array.iter
    (fun k -> ignore (Stm.atomically rt (fun tx -> S.Tskiplist.insert tx txn k)))
    keys;
  let contents t = Stm.atomically rt (fun tx -> S.Tskiplist.to_list tx t) in
  check_ilist "same contents" (contents txn) (contents pre);
  Alcotest.(check (array int))
    "same level histogram"
    (S.Tskiplist.level_counts txn)
    (S.Tskiplist.level_counts pre);
  let range t ~lo ~len =
    Stm.atomically rt (fun tx -> S.Tskiplist.range tx t ~lo ~len)
  in
  List.iter
    (fun (lo, len) ->
      check_ilist
        (Printf.sprintf "same range lo=%d len=%d" lo len)
        (range txn ~lo ~len) (range pre ~lo ~len))
    [ (0, 10); (7, 64); (1_200, 500); (1_497, 5); (1_500, 5) ];
  (* Preloaded structures stay fully transactional afterwards. *)
  check_bool "insert after preload" true
    (Stm.atomically rt (fun tx -> S.Tskiplist.insert tx pre 1));
  check_bool "remove after preload" true
    (Stm.atomically rt (fun tx -> S.Tskiplist.remove tx pre 0));
  check_bool "member after preload" true
    (Stm.atomically rt (fun tx -> S.Tskiplist.member tx pre 3))

let t_skiplist_preload_rejects () =
  let s = S.Tskiplist.create ()
  and sorted = [| 1; 2; 3 |] in
  Alcotest.check_raises "unsorted keys" (Invalid_argument
    "Tskiplist.unsafe_preload: keys must be strictly ascending")
    (fun () -> S.Tskiplist.unsafe_preload (S.Tskiplist.create ()) [| 2; 1 |]);
  S.Tskiplist.unsafe_preload s sorted;
  Alcotest.check_raises "non-empty structure"
    (Invalid_argument "Tskiplist.unsafe_preload: structure not empty")
    (fun () -> S.Tskiplist.unsafe_preload s sorted)

(* ------------------------------------------------------------------ *)
(* Forest specifics                                                    *)
(* ------------------------------------------------------------------ *)

let t_forest_all_trees () =
  let rt = rt () in
  let f = S.Trbforest.create ~n_trees:8 ~all_pct:100 () in
  (* all_pct=100: every op touches every tree. *)
  check_bool "insert everywhere" true (Stm.atomically rt (fun tx -> S.Trbforest.insert tx f ~r:1 5));
  check_bool "member from any r" true
    (Stm.atomically rt (fun tx -> S.Trbforest.member tx f ~r:123456 5));
  check_bool "remove everywhere" true
    (Stm.atomically rt (fun tx -> S.Trbforest.remove tx f ~r:99 5));
  check_ilist "empty union" [] (Stm.atomically rt (fun tx -> S.Trbforest.to_list tx f))

let t_forest_single_tree () =
  let rt = rt () in
  let f = S.Trbforest.create ~n_trees:8 ~all_pct:0 () in
  (* all_pct=0: each op touches exactly the tree selected by r. *)
  check_bool "insert in tree 3" true
    (Stm.atomically rt (fun tx -> S.Trbforest.insert tx f ~r:(300 + 50) 5));
  check_bool "same r finds it" true
    (Stm.atomically rt (fun tx -> S.Trbforest.member tx f ~r:(300 + 50) 5));
  check_bool "different tree misses" false
    (Stm.atomically rt (fun tx -> S.Trbforest.member tx f ~r:(400 + 50) 5));
  check_ilist "union sees it" [ 5 ] (Stm.atomically rt (fun tx -> S.Trbforest.to_list tx f))

let t_forest_pick () =
  let f = S.Trbforest.create ~n_trees:10 ~all_pct:10 () in
  check_bool "r below pct picks all" true (S.Trbforest.pick f 5 = `All);
  check_bool "r above pct picks one" true
    (match S.Trbforest.pick f 1234 with `One i -> i >= 0 && i < 10 | `All -> false);
  check_int "tree count" 10 (S.Trbforest.n_trees f)

let t_forest_ops_wrapper () =
  let rt = rt () in
  let f = S.Trbforest.create ~n_trees:4 ~all_pct:100 () in
  let ops = S.Trbforest.ops f in
  check_bool "ops insert" true (Stm.atomically rt (fun tx -> ops.S.Intset.insert tx ~key:9 ~r:0));
  check_ilist "ops snapshot" [ 9 ] (Stm.atomically rt (fun tx -> ops.S.Intset.snapshot tx))

(* ------------------------------------------------------------------ *)
(* Array                                                               *)
(* ------------------------------------------------------------------ *)

let t_array_basics () =
  let rt = rt () in
  let a = S.Tarray.init 8 (fun i -> i * 10) in
  check_int "length" 8 (S.Tarray.length a);
  check_int "get" 30 (Stm.atomically rt (fun tx -> S.Tarray.get tx a 3));
  Stm.atomically rt (fun tx -> S.Tarray.set tx a 3 99);
  Stm.atomically rt (fun tx -> S.Tarray.modify tx a 0 succ);
  Alcotest.(check (array int)) "peek" [| 1; 10; 20; 99; 40; 50; 60; 70 |] (S.Tarray.peek a)

let t_array_swap_snapshot () =
  let rt = rt () in
  let a = S.Tarray.init 4 Fun.id in
  Stm.atomically rt (fun tx -> S.Tarray.swap tx a 0 3);
  Alcotest.(check (array int)) "swapped" [| 3; 1; 2; 0 |]
    (Stm.atomically rt (fun tx -> S.Tarray.snapshot tx a));
  Stm.atomically rt (fun tx -> S.Tarray.swap tx a 1 1);
  check_int "self-swap no-op" 1 (Stm.atomically rt (fun tx -> S.Tarray.get tx a 1));
  check_int "fold" 6 (Stm.atomically rt (fun tx -> S.Tarray.fold tx ( + ) 0 a))

let t_array_validation () =
  check_bool "negative length" true
    (try
       ignore (S.Tarray.make (-1) 0);
       false
     with Invalid_argument _ -> true)

let t_array_concurrent_swaps () =
  (* Random swaps preserve the multiset of elements. *)
  let rt = rt () in
  let n = 16 in
  let a = S.Tarray.init n Fun.id in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Splitmix.create (d + 40) in
            for _ = 1 to 300 do
              let i = Splitmix.int rng n and j = Splitmix.int rng n in
              Stm.atomically rt (fun tx -> S.Tarray.swap tx a i j)
            done))
  in
  List.iter Domain.join doms;
  let final = Array.to_list (S.Tarray.peek a) |> List.sort compare in
  Alcotest.(check (list int)) "permutation preserved" (List.init n Fun.id) final

let t_queue_pop_wait () =
  let rt = rt () in
  let q = S.Tqueue.create () in
  let consumer =
    Domain.spawn (fun () ->
        List.init 3 (fun _ -> Stm.atomically rt (fun tx -> S.Tqueue.pop_wait tx q)))
  in
  Unix.sleepf 0.02;
  List.iter (fun v -> Stm.atomically rt (fun tx -> S.Tqueue.push tx q v)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "blocking pops in order" [ 1; 2; 3 ] (Domain.join consumer)

(* ------------------------------------------------------------------ *)
(* Hash map                                                            *)
(* ------------------------------------------------------------------ *)

let t_hashmap_basics () =
  let rt = rt () in
  let m = S.Thashmap.create ~buckets:8 () in
  check_int "power-of-two buckets" 8 (S.Thashmap.n_buckets m);
  check_bool "find on empty" true (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 1) = None);
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 1 "one");
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 2 "two");
  Alcotest.(check (option string)) "find" (Some "one")
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 1));
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 1 "uno");
  Alcotest.(check (option string)) "replace" (Some "uno")
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 1));
  check_int "length" 2 (Stm.atomically rt (fun tx -> S.Thashmap.length tx m));
  check_bool "remove" true (Stm.atomically rt (fun tx -> S.Thashmap.remove tx m 1));
  check_bool "remove again" false (Stm.atomically rt (fun tx -> S.Thashmap.remove tx m 1));
  check_bool "mem" true (Stm.atomically rt (fun tx -> S.Thashmap.mem tx m 2))

let t_hashmap_update () =
  let rt = rt () in
  let m = S.Thashmap.create () in
  Stm.atomically rt (fun tx ->
      S.Thashmap.update tx m 7 (function None -> Some 1 | Some v -> Some (v + 1)));
  Stm.atomically rt (fun tx ->
      S.Thashmap.update tx m 7 (function None -> Some 1 | Some v -> Some (v + 1)));
  Alcotest.(check (option int)) "upsert twice" (Some 2)
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 7));
  Stm.atomically rt (fun tx -> S.Thashmap.update tx m 7 (fun _ -> None));
  Alcotest.(check (option int)) "update to None deletes" None
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 7))

(* The write-avoidance paths: insert-new, remove-missing and
   delete-of-absent no longer rewrite the bucket, so they must stay
   semantically identical while touching fewer tvars.  The observable
   contract: a transaction doing only a no-op mutation takes the
   read-only commit path (no conflicts possible), and the map is
   unchanged. *)
let t_hashmap_noop_mutations () =
  let rt = rt () in
  let m = S.Thashmap.create ~buckets:4 () in
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 1 10);
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 5 50);
  (* Same bucket as key 1 (4 buckets): insert-new must not disturb the
     existing binding. *)
  Stm.atomically rt (fun tx -> S.Thashmap.add tx m 9 90);
  Alcotest.(check (option int)) "neighbor intact" (Some 10)
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx m 1));
  check_bool "remove-missing is false" false
    (Stm.atomically rt (fun tx -> S.Thashmap.remove tx m 13));
  Stm.atomically rt (fun tx -> S.Thashmap.update tx m 13 (fun _ -> None));
  check_int "delete-of-absent leaves length" 3
    (Stm.atomically rt (fun tx -> S.Thashmap.length tx m));
  Alcotest.(check (list (pair int int))) "bindings unchanged"
    [ (1, 10); (5, 50); (9, 90) ]
    (Stm.atomically rt (fun tx -> S.Thashmap.bindings tx m))

let t_hashmap_bucket_rounding () =
  check_int "rounds up" 16 (S.Thashmap.n_buckets (S.Thashmap.create ~buckets:9 ()));
  check_int "minimum one" 1 (S.Thashmap.n_buckets (S.Thashmap.create ~buckets:0 ()))

let prop_hashmap_model =
  QCheck.Test.make ~name:"hashmap matches Hashtbl model" ~count:60
    QCheck.(small_list (pair (int_bound 64) (option (int_bound 100))))
    (fun ops ->
      (* (k, Some v) = add; (k, None) = remove. *)
      let rt = rt () in
      let m = S.Thashmap.create ~buckets:8 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          match op with
          | Some v ->
              Stm.atomically rt (fun tx -> S.Thashmap.add tx m k v);
              Hashtbl.replace model k v
          | None ->
              ignore (Stm.atomically rt (fun tx -> S.Thashmap.remove tx m k));
              Hashtbl.remove model k)
        ops;
      let expect =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Stm.atomically rt (fun tx -> S.Thashmap.bindings tx m) = expect)

let t_hashmap_concurrent () =
  let rt = rt () in
  let m = S.Thashmap.create ~buckets:16 () in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              let k = ((d * 200) + i) mod 64 in
              Stm.atomically rt (fun tx ->
                  S.Thashmap.update tx m k (function None -> Some 1 | Some v -> Some (v + 1)))
            done))
  in
  List.iter Domain.join doms;
  let total =
    Stm.atomically rt (fun tx ->
        List.fold_left (fun acc (_, v) -> acc + v) 0 (S.Thashmap.bindings tx m))
  in
  check_int "no lost increments" 800 total

(* Incremental splits must not lose or corrupt bindings: a map forced
   through many doublings keeps exact point lookups and sorted dumps. *)
let t_hashmap_split_correctness () =
  let rt = rt () in
  let m = S.Thashmap.create ~buckets:1 () in
  let n = 400 in
  for k = 0 to n - 1 do
    Stm.atomically rt (fun tx -> S.Thashmap.add tx m k (k * 7))
  done;
  check_bool "table actually split" true (S.Thashmap.depth m > 0);
  check_bool "buckets grew" true (S.Thashmap.n_buckets m > 1);
  check_int "length survives splits" n
    (Stm.atomically rt (fun tx -> S.Thashmap.length tx m));
  for k = 0 to n - 1 do
    check_bool "find after splits" true
      (Stm.atomically rt (fun tx -> S.Thashmap.find tx m k) = Some (k * 7))
  done;
  check_ilist "bindings sorted and complete"
    (List.init n (fun k -> k))
    (List.map fst (Stm.atomically rt (fun tx -> S.Thashmap.bindings tx m)));
  check_int "size_hint exact without aborts" n (S.Thashmap.size_hint m)

(* Resize under concurrent transactional writers, on both runtime
   backends: 4 domains insert disjoint key ranges into a deliberately
   undersized table, so bucket splits race with inserts into the
   splitting bucket's buddy range.  Every binding must survive. *)
let t_hashmap_resize_concurrent backend () =
  let rt = Stm.create ~backend (module Tcm_core.Greedy) in
  let m = S.Thashmap.create ~buckets:2 () in
  let per = 150 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = (d * per) + i in
              Stm.atomically rt (fun tx -> S.Thashmap.add tx m k (k + 1))
            done))
  in
  List.iter Domain.join doms;
  let n = 4 * per in
  check_bool "splits happened under contention" true (S.Thashmap.depth m > 0);
  check_int "no bindings lost across racing splits" n
    (Stm.atomically rt (fun tx -> S.Thashmap.length tx m));
  let bad =
    Stm.atomically rt (fun tx ->
        List.filter (fun (k, v) -> v <> k + 1) (S.Thashmap.bindings tx m))
  in
  check_int "no bindings corrupted" 0 (List.length bad)

(* The bulk preload must agree with a transactional build of the same
   bindings — contents only: preload targets the depth-0 table, so the
   physical layout legitimately differs from a split-as-you-go build. *)
let t_hashmap_preload_equiv () =
  let rt = rt () in
  let n = 300 in
  let entries = Array.init n (fun i -> (i * 5, i)) in
  let pre = S.Thashmap.create ~expect:n () in
  S.Thashmap.unsafe_preload pre entries;
  let txn = S.Thashmap.create ~expect:n () in
  Array.iter
    (fun (k, v) -> Stm.atomically rt (fun tx -> S.Thashmap.add tx txn k v))
    entries;
  let dump m = Stm.atomically rt (fun tx -> S.Thashmap.bindings tx m) in
  Alcotest.(check (list (pair int int))) "same bindings" (dump txn) (dump pre);
  check_int "same length" n
    (Stm.atomically rt (fun tx -> S.Thashmap.length tx pre));
  check_int "size_hint primed by preload" n (S.Thashmap.size_hint pre);
  (* Preloaded maps stay live: mutations and splits keep working. *)
  Stm.atomically rt (fun tx -> S.Thashmap.add tx pre 1 99);
  check_bool "find after preload" true
    (Stm.atomically rt (fun tx -> S.Thashmap.find tx pre 1) = Some 99);
  check_bool "remove after preload" true
    (Stm.atomically rt (fun tx -> S.Thashmap.remove tx pre 0))

(* ------------------------------------------------------------------ *)
(* Counter and queue                                                   *)
(* ------------------------------------------------------------------ *)

let t_counter () =
  let rt = rt () in
  let c = S.Tcounter.create ~init:5 () in
  Stm.atomically rt (fun tx -> S.Tcounter.add tx c 10);
  Stm.atomically rt (fun tx -> S.Tcounter.incr tx c);
  check_int "adds" 16 (S.Tcounter.peek c);
  check_int "get inside txn" 16 (Stm.atomically rt (fun tx -> S.Tcounter.get tx c));
  Stm.atomically rt (fun tx -> S.Tcounter.set tx c 0);
  check_int "set" 0 (S.Tcounter.peek c)

let t_queue_fifo () =
  let rt = rt () in
  let q = S.Tqueue.create () in
  check_bool "empty" true (Stm.atomically rt (fun tx -> S.Tqueue.is_empty tx q));
  Stm.atomically rt (fun tx -> S.Tqueue.push tx q "a");
  Stm.atomically rt (fun tx -> S.Tqueue.push tx q "b");
  Stm.atomically rt (fun tx -> S.Tqueue.push tx q "c");
  check_int "length" 3 (Stm.atomically rt (fun tx -> S.Tqueue.length tx q));
  Alcotest.(check (option string)) "fifo 1" (Some "a") (Stm.atomically rt (fun tx -> S.Tqueue.pop tx q));
  Stm.atomically rt (fun tx -> S.Tqueue.push tx q "d");
  Alcotest.(check (option string)) "fifo 2" (Some "b") (Stm.atomically rt (fun tx -> S.Tqueue.pop tx q));
  Alcotest.(check (option string)) "fifo 3" (Some "c") (Stm.atomically rt (fun tx -> S.Tqueue.pop tx q));
  Alcotest.(check (option string)) "fifo 4" (Some "d") (Stm.atomically rt (fun tx -> S.Tqueue.pop tx q));
  Alcotest.(check (option string)) "drained" None (Stm.atomically rt (fun tx -> S.Tqueue.pop tx q))

let prop_queue_model =
  QCheck.Test.make ~name:"queue matches list model" ~count:60
    QCheck.(small_list (option (int_bound 50)))
    (fun ops ->
      (* Some k = push k; None = pop. *)
      let rt = rt () in
      let q = S.Tqueue.create () in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
              Stm.atomically rt (fun tx -> S.Tqueue.push tx q k);
              Queue.push k model;
              true
          | None ->
              let got = Stm.atomically rt (fun tx -> S.Tqueue.pop tx q) in
              let want = Queue.take_opt model in
              got = want)
        ops
      && Stm.atomically rt (fun tx -> S.Tqueue.to_list tx q)
         = List.of_seq (Queue.to_seq model))

let t_queue_concurrent () =
  let rt = rt () in
  let q = S.Tqueue.create () in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to 249 do
              Stm.atomically rt (fun tx -> S.Tqueue.push tx q ((p * 1000) + i))
            done))
  in
  let popped = Atomic.make 0 in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let mine = ref 0 in
            let tries = ref 0 in
            while !mine < 200 && !tries < 1_000_000 do
              incr tries;
              match Stm.atomically rt (fun tx -> S.Tqueue.pop tx q) with
              | Some _ -> incr mine
              | None -> Domain.cpu_relax ()
            done;
            ignore (Atomic.fetch_and_add popped !mine)))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  let remaining = Stm.atomically rt (fun tx -> S.Tqueue.length tx q) in
  check_int "pushed = popped + remaining" 500 (Atomic.get popped + remaining)

let () =
  Alcotest.run "structures"
    [
      ("list", basic_suite (module S.Tlist));
      ("skiplist", basic_suite (module S.Tskiplist));
      ("rbtree", basic_suite (module S.Trbtree));
      ( "set-properties",
        [
          QCheck_alcotest.to_alcotest (prop_set_semantics (module S.Tlist));
          QCheck_alcotest.to_alcotest (prop_set_semantics (module S.Tskiplist));
          QCheck_alcotest.to_alcotest (prop_set_semantics (module S.Trbtree));
        ] );
      ( "rbtree-invariants",
        [
          Alcotest.test_case "random workload" `Quick t_rb_invariants_random;
          Alcotest.test_case "checked after every op" `Quick t_rb_invariants_each_step;
          Alcotest.test_case "ascending insert, descending delete" `Quick
            t_rb_ascending_descending;
          Alcotest.test_case "delete shapes" `Quick t_rb_delete_cases;
          QCheck_alcotest.to_alcotest prop_rb_invariants;
        ] );
      ( "skiplist-specifics",
        [
          Alcotest.test_case "dense inserts" `Quick t_skiplist_dense;
          Alcotest.test_case "interleaved removal" `Quick t_skiplist_interleaved_removal;
          Alcotest.test_case "range reads" `Quick t_skiplist_range;
          Alcotest.test_case "sized level caps and tower histogram" `Quick
            t_skiplist_sized_levels;
          Alcotest.test_case "preload equivalent to transactional build" `Quick
            t_skiplist_preload_equiv;
          Alcotest.test_case "preload rejects unsound input" `Quick
            t_skiplist_preload_rejects;
        ] );
      ( "forest",
        [
          Alcotest.test_case "all-trees operations" `Quick t_forest_all_trees;
          Alcotest.test_case "single-tree operations" `Quick t_forest_single_tree;
          Alcotest.test_case "pick rule" `Quick t_forest_pick;
          Alcotest.test_case "ops wrapper" `Quick t_forest_ops_wrapper;
        ] );
      ( "array",
        [
          Alcotest.test_case "basics" `Quick t_array_basics;
          Alcotest.test_case "swap and snapshot" `Quick t_array_swap_snapshot;
          Alcotest.test_case "validation" `Quick t_array_validation;
          Alcotest.test_case "concurrent swaps preserve permutation" `Quick
            t_array_concurrent_swaps;
          Alcotest.test_case "blocking queue pop" `Quick t_queue_pop_wait;
        ] );
      ( "hashmap",
        [
          Alcotest.test_case "basics" `Quick t_hashmap_basics;
          Alcotest.test_case "atomic update" `Quick t_hashmap_update;
          Alcotest.test_case "no-op mutations" `Quick t_hashmap_noop_mutations;
          Alcotest.test_case "bucket rounding" `Quick t_hashmap_bucket_rounding;
          QCheck_alcotest.to_alcotest prop_hashmap_model;
          Alcotest.test_case "concurrent increments" `Quick t_hashmap_concurrent;
          Alcotest.test_case "split correctness" `Quick t_hashmap_split_correctness;
          Alcotest.test_case "concurrent resize (locator)" `Quick
            (t_hashmap_resize_concurrent Stm.Locator);
          Alcotest.test_case "concurrent resize (tl2)" `Quick
            (t_hashmap_resize_concurrent Stm.Tl2_backend);
          Alcotest.test_case "preload equivalent to transactional build" `Quick
            t_hashmap_preload_equiv;
        ] );
      ( "counter-queue",
        [
          Alcotest.test_case "counter" `Quick t_counter;
          Alcotest.test_case "queue fifo" `Quick t_queue_fifo;
          QCheck_alcotest.to_alcotest prop_queue_model;
          Alcotest.test_case "queue concurrent conservation" `Quick t_queue_concurrent;
        ] );
    ]
