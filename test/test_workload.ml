(** Tests for the workload layer: statistics, the live-STM harness, the
    simulator-backed figure models, the figure sweeps and the report
    rendering. *)

open Tcm_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let t_mean () =
  check_float "empty" 0. (Stats.mean []);
  check_float "values" 2. (Stats.mean [ 1.; 2.; 3. ])

let t_stddev () =
  check_float "empty" 0. (Stats.stddev []);
  check_float "singleton" 0. (Stats.stddev [ 5. ]);
  check_float "known sample" 1. (Stats.stddev [ 1.; 2.; 3. ])

let t_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile 50. xs);
  check_float "p99" 99. (Stats.percentile 99. xs);
  check_float "p100" 100. (Stats.percentile 100. xs);
  check_float "median alias" 50. (Stats.median xs);
  (* An empty sample has no percentiles: nan, not a fake 0. *)
  check_bool "empty is nan" true (Float.is_nan (Stats.percentile 50. []));
  check_bool "empty median is nan" true (Float.is_nan (Stats.median []))

let t_json_emit () =
  let open Report.Json in
  Alcotest.(check string) "compact; non-finite floats are null"
    {|{"a":1,"b":null,"c":[true,"x\n"],"d":2.5}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", Float Float.nan);
            ("c", Arr [ Bool true; Str "x\n" ]);
            ("d", Float 2.5);
          ]))

let t_json_parse_roundtrip () =
  let open Report.Json in
  let v =
    Obj
      [
        ("schema", Str "tcm-bench/2");
        ("seed", Int 42);
        ("minor_words", Float 8123.5);
        ("empty", Arr []);
        ("rows", Arr [ Obj [ ("threads", Int 2); ("ok", Bool true); ("gap", Null) ] ]);
        ("text", Str "a\"b\\c\nd\twide: \xc3\xa9");
      ]
  in
  (match of_string (to_string v) with
  | v' when v' = v -> ()
  | v' -> Alcotest.fail (Printf.sprintf "roundtrip drifted: %s" (to_string v')));
  (* Whitespace and \u escapes, as other emitters write them. *)
  (match of_string "  { \"a\" : [ 1 , 2.5 , \"\\u0041\\u00e9\" ] }\n" with
  | Obj [ ("a", Arr [ Int 1; Float 2.5; Str "A\xc3\xa9" ]) ] -> ()
  | j -> Alcotest.fail (Printf.sprintf "unexpected parse: %s" (to_string j)));
  check_bool "member finds" true (member "seed" v = Some (Int 42));
  check_bool "member misses" true (member "nope" v = None);
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (try
           ignore (of_string bad);
           false
         with Parse_error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let t_cv () =
  check_float "no spread" 0. (Stats.cv [ 4.; 4.; 4. ]);
  check_float "zero mean" 0. (Stats.cv [ 0.; 0. ]);
  check_bool "high variance detected" true (Stats.cv [ 1.; 1.; 1.; 100. ] > 1.)

let t_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [ 0.5; 1.5; 1.6; 3.9; 7. ] in
  Alcotest.(check (array int)) "buckets" [| 1; 2; 0; 1 |] h

let t_histogram_upper_edge () =
  (* Regression: a sample exactly at [hi] (the p100 of a latency run)
     must land in the last bucket, not vanish. *)
  let h = Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [ 0.; 4. ] in
  Alcotest.(check (array int)) "both edges kept" [| 1; 0; 0; 1 |] h;
  let n = Array.fold_left ( + ) 0 (Stats.histogram ~buckets:8 ~lo:0. ~hi:10. [ 10.; 10. ]) in
  check_int "no sample at hi dropped" 2 n

(* ------------------------------------------------------------------ *)
(* Harness (live STM)                                                  *)
(* ------------------------------------------------------------------ *)

let t_structure_names () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        "roundtrip" (Harness.structure_name s)
        (Harness.structure_name (Harness.structure_of_name (Harness.structure_name s))))
    [ Harness.List_s; Harness.Skiplist_s; Harness.Rbtree_s; Harness.Rbforest_s ];
  check_bool "unknown raises" true
    (try
       ignore (Harness.structure_of_name "heap");
       false
     with Invalid_argument _ -> true)

let t_harness_runs () =
  let cfg =
    { Harness.default with threads = 2; duration_s = 0.05; structure = Harness.Skiplist_s }
  in
  let o = Harness.run cfg in
  check_bool "commits happened" true (o.Harness.commits > 0);
  check_int "per-thread adds up" o.Harness.commits (Array.fold_left ( + ) 0 o.Harness.per_thread);
  check_bool "throughput positive" true (o.Harness.throughput > 0.);
  check_bool "latency sampled" true (o.Harness.latency_p50_us > 0.);
  check_bool "p99 >= p50" true (o.Harness.latency_p99_us >= o.Harness.latency_p50_us);
  (* The GC accounting must see the worker domains' allocation (the
     skiplist workload allocates per txn). *)
  check_bool "minor words counted" true (o.Harness.minor_words > 0.);
  check_bool "major words non-negative" true (o.Harness.major_words >= 0.)

let t_harness_post_work_slows () =
  let base = { Harness.default with threads = 1; duration_s = 0.05 } in
  let fast = Harness.run base in
  let slow = Harness.run { base with post_work = 50_000 } in
  check_bool "uncontended tail lowers throughput" true
    (slow.Harness.throughput < fast.Harness.throughput)

let t_make_ops_all () =
  List.iter
    (fun s ->
      let ops = Harness.make_ops s in
      Alcotest.(check string) "named" (Harness.structure_name s) ops.Tcm_structures.Intset.name)
    [ Harness.List_s; Harness.Skiplist_s; Harness.Rbtree_s; Harness.Rbforest_s ]

(* ------------------------------------------------------------------ *)
(* Sim workload models                                                 *)
(* ------------------------------------------------------------------ *)

let models =
  [
    Sim_load.list_model; Sim_load.skiplist_model; Sim_load.rbtree_model; Sim_load.rbforest_model;
  ]

let t_models_generate_valid_txns () =
  List.iter
    (fun (m : Sim_load.model) ->
      let rng = Tcm_stm.Splitmix.create 3 in
      for _ = 1 to 200 do
        let txn = m.Sim_load.gen rng ~tail:2 in
        List.iter
          (fun a ->
            check_bool (m.Sim_load.name ^ " access in range") true
              (a.Tcm_sim.Spec.obj >= 0 && a.Tcm_sim.Spec.obj < m.Sim_load.n_objects);
            check_bool (m.Sim_load.name ^ " access before end") true
              (a.Tcm_sim.Spec.at < txn.Tcm_sim.Spec.dur))
          txn.Tcm_sim.Spec.accesses
      done)
    models

let t_model_names () =
  Alcotest.(check (list string)) "model names"
    [ "list"; "skiplist"; "rbtree"; "rbforest" ]
    (List.map (fun (m : Sim_load.model) -> m.Sim_load.name) models)

let t_model_of_structure () =
  Alcotest.(check string) "mapping" "rbtree"
    (Sim_load.model_of_structure Harness.Rbtree_s).Sim_load.name

let t_forest_long_txns_exist () =
  (* Over many draws, the forest model must emit both short and very
     long transactions — the paper's high-variance claim. *)
  let rng = Tcm_stm.Splitmix.create 5 in
  let durs =
    List.init 500 (fun _ ->
        (Sim_load.rbforest_model.Sim_load.gen rng ~tail:0).Tcm_sim.Spec.dur)
  in
  let short = List.exists (fun d -> d <= Sim_load.rb_dur) durs in
  let long = List.exists (fun d -> d >= 50 * Sim_load.rb_dur) durs in
  check_bool "short transactions occur" true short;
  check_bool "50-tree transactions occur" true long;
  check_bool "length variance is high" true
    (Stats.cv (List.map float_of_int durs) > 1.)

let t_sim_run_deterministic () =
  let run () =
    Sim_load.run ~horizon:800 ~seed:9 ~threads:4 ~policy:(Tcm_sim.Policy.karma ())
      Sim_load.rbtree_model
  in
  let a = run () and b = run () in
  check_int "same commits" a.Sim_load.commits b.Sim_load.commits;
  check_int "same aborts" a.Sim_load.aborts b.Sim_load.aborts

let t_sim_run_scales () =
  let thr n =
    (Sim_load.run ~horizon:800 ~threads:n ~policy:(Tcm_sim.Policy.greedy ())
       Sim_load.rbtree_model)
      .Sim_load.throughput
  in
  check_bool "more threads, more throughput (tree)" true (thr 8 > thr 1)

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let t_figure_ids () =
  Alcotest.(check (list string)) "ids" [ "fig1"; "fig2"; "fig3"; "fig4" ]
    (List.map (fun f -> f.Figures.id) Figures.all);
  check_bool "of_id hit" true (Figures.of_id "fig2" <> None);
  check_bool "of_id miss" true (Figures.of_id "fig9" = None)

let t_figure_sim_rows () =
  let r =
    Figures.run ~threads_list:[ 1; 2 ] ~mode:(Figures.Sim { horizon = 300 }) Figures.fig2
  in
  check_int "two rows" 2 (List.length r.Figures.rows);
  List.iter
    (fun row ->
      check_int "five managers" 5 (List.length row.Figures.cells);
      List.iter (fun (_, v) -> check_bool "non-negative" true (v >= 0.)) row.Figures.cells)
    r.Figures.rows;
  Alcotest.(check string) "unit label" "committed txns / 1000 ticks" r.Figures.unit_label

let t_figure_real_rows () =
  let r =
    Figures.run ~threads_list:[ 1 ] ~mode:(Figures.Real { duration_s = 0.03 }) Figures.fig1
  in
  check_int "one row" 1 (List.length r.Figures.rows);
  List.iter
    (fun row -> List.iter (fun (_, v) -> check_bool "positive" true (v > 0.)) row.Figures.cells)
    r.Figures.rows

let t_winners () =
  let r =
    Figures.run ~threads_list:[ 1; 4 ] ~mode:(Figures.Sim { horizon = 300 }) Figures.fig3
  in
  let ws = Report.winners r in
  check_int "one winner per row" 2 (List.length ws);
  List.iter (fun (_, name) -> check_bool "winner is a manager" true (String.length name > 0)) ws

let string_contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let t_report_prints () =
  let r =
    Figures.run ~threads_list:[ 1 ] ~mode:(Figures.Sim { horizon = 200 }) Figures.fig4
  in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.print_figure fmt r;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  check_bool "mentions the figure" true (string_contains out "fig4");
  check_bool "mentions greedy" true (string_contains out "greedy")

let t_float_to_string () =
  Alcotest.(check string) "large" "12346" (Report.float_to_string 12345.6);
  Alcotest.(check string) "medium" "123.5" (Report.float_to_string 123.45);
  Alcotest.(check string) "small" "1.23" (Report.float_to_string 1.234)

(* ------------------------------------------------------------------ *)
(* Bench dump schema validation                                        *)
(* ------------------------------------------------------------------ *)

(* One regression case per shipped schema version: a reader must keep
   accepting every dump this repo has ever written (tcm-bench/1 from
   before the GC columns, /2 before the backend split, /3 before the
   figure-kind discriminator, /4 before the observability fields,
   /5 before the consult-cost entries, /6 before the rate-ladder
   figures and per-run latency/admission fields, /7 current). *)
let t_bench_schema_accepts_all_versions () =
  List.iter
    (fun v ->
      match Report.bench_schema_of (Report.Json.Obj [ ("schema", Report.Json.Str v) ]) with
      | Ok got -> Alcotest.(check string) ("accepts " ^ v) v got
      | Error e -> Alcotest.failf "%s rejected: %s" v e)
    [
      "tcm-bench/1";
      "tcm-bench/2";
      "tcm-bench/3";
      "tcm-bench/4";
      "tcm-bench/5";
      "tcm-bench/6";
      "tcm-bench/7";
    ];
  Alcotest.(check (list string)) "the accept list is exactly the lineage"
    [
      "tcm-bench/1";
      "tcm-bench/2";
      "tcm-bench/3";
      "tcm-bench/4";
      "tcm-bench/5";
      "tcm-bench/6";
      "tcm-bench/7";
    ]
    Report.bench_schemas;
  Alcotest.(check string) "writer emits the newest" "tcm-bench/7" Report.bench_schema

let t_bench_schema_rejects () =
  let open Report.Json in
  let reject name j =
    match Report.bench_schema_of j with
    | Ok v -> Alcotest.failf "%s accepted as %s" name v
    | Error _ -> ()
  in
  reject "missing schema field" (Obj [ ("figures", Arr []) ]);
  reject "unknown version" (Obj [ ("schema", Str "tcm-bench/99") ]);
  reject "wrong family" (Obj [ ("schema", Str "tcm-trace/1") ]);
  reject "non-string schema" (Obj [ ("schema", Int 3) ])

(* A hand-built service summary, so the schema tests stay fast and
   deterministic (no engine run). *)
let fake_service_summary () : Tcm_service.Service.summary =
  let open Tcm_service.Service in
  let cls cls submitted completed dropped =
    {
      cls;
      submitted;
      completed;
      dropped;
      slo_us = 2_000.;
      slo_ok = completed;
      attainment = float_of_int completed /. float_of_int submitted;
      p50_us = 120.;
      p99_us = 900.;
      mean_us = 180.;
    }
  in
  {
    backend = "tl2";
    manager = "greedy";
    process = "poisson(1000/s)";
    classes =
      [
        cls Tcm_service.Sclass.Read 80 78 2;
        cls Tcm_service.Sclass.Scan 5 5 0;
        cls Tcm_service.Sclass.Rmw 15 15 0;
      ];
    submitted = 100;
    completed = 98;
    dropped = 2;
    aborts = 3;
    conflicts = 4;
    elapsed_s = 0.1;
    throughput = 980.;
    offered = 1_000.;
    queue_high_water = 7;
    queue_spills = 3;
    p50_us = 150.;
    p99_us = 950.;
    gen_minor_words_per_req = 0.5;
    trace_drops = 1;
    metrics_on = true;
    trace_on = false;
  }

(* The writer side: a real (tiny) detailed run serialized through
   [bench_json] must carry the current schema header, a backend and
   kind field on every figure entry, and service figures appended to
   the same array — and reparse as valid. *)
let t_bench_json_emits_current_schema () =
  let open Report.Json in
  let rows =
    Figures.run_real_detailed ~threads_list:[ 1 ] ~duration_s:0.02
      ~backend:Tcm_stm.Stm.Tl2_backend Figures.fig1
  in
  let fake_obs_row : Tcm_obs.Ledger.row =
    {
      backend = "tl2";
      manager = "greedy";
      runtime = "live";
      cls = "read";
      aborts = 4;
      wasted_work = 9;
      waits = 2;
      wait_cost = 120;
      wait_ticks = 7;
      commits = 40;
      useful_work = 80;
    }
  in
  let fake_hot = [ { Tcm_obs.Sketch.key = 17; count = 5; err = 1 } ] in
  let fake_consult_row : Consult_cost.row =
    {
      backend = "tl2";
      manager = "greedy";
      ns_per_resolve = 12.5;
      minor_words_per_resolve = 0.;
    }
  in
  let fake_ladder_curve : Tcm_service.Ladder.curve =
    {
      backend = "tl2";
      manager = "greedy";
      rungs =
        [
          { Tcm_service.Ladder.offered_rps = 1_000.; summary = fake_service_summary () };
          { Tcm_service.Ladder.offered_rps = 4_000.; summary = fake_service_summary () };
        ];
      knee_rps = Some 4_000.;
    }
  in
  let doc =
    of_string
      (Report.bench_json ~mode:"real" ~duration_s:0.02 ~seed:42
         ~service_figures:[ fake_service_summary () ]
         ~obs_figures:[ (fake_obs_row, fake_hot) ]
         ~consult_figures:[ fake_consult_row ]
         ~ladder_figures:[ fake_ladder_curve ]
         [ (Figures.fig1, "tl2", rows) ])
  in
  (match Report.bench_schema_of doc with
  | Ok v -> Alcotest.(check string) "emitted schema validates" Report.bench_schema v
  | Error e -> Alcotest.failf "fresh dump rejected: %s" e);
  match member "figures" doc with
  | Some (Arr ((fig :: _) as figs)) ->
      check_bool "figure entry carries the backend" true
        (member "backend" fig = Some (Str "tl2"));
      check_bool "sweep entries carry kind=sweep" true
        (member "kind" fig = Some (Str "sweep"));
      let svc =
        List.filter (fun f -> member "kind" f = Some (Str "service")) figs
      in
      (match svc with
      | [ s ] ->
          check_bool "service figure carries the manager" true
            (member "manager" s = Some (Str "greedy"));
          (* tcm-bench/5: the observability self-description. *)
          check_bool "service figure carries trace_drops" true
            (member "trace_drops" s = Some (Int 1));
          check_bool "service figure carries metrics_enabled" true
            (member "metrics_enabled" s = Some (Bool true));
          check_bool "service figure carries trace_enabled" true
            (member "trace_enabled" s = Some (Bool false));
          (match member "classes" s with
          | Some (Arr (c :: _ as cs)) ->
              Alcotest.(check int) "one entry per class" 3 (List.length cs);
              List.iter
                (fun k ->
                  check_bool (k ^ " present on class entries") true
                    (member k c <> None))
                [ "class"; "slo_attainment"; "latency_p50_us"; "latency_p99_us" ]
          | _ -> Alcotest.fail "service figure has no classes array")
      | _ -> Alcotest.fail "expected exactly one kind=service figure");
      (* tcm-bench/5: kind=obs attribution entries. *)
      (match
         List.filter (fun f -> member "kind" f = Some (Str "obs")) figs
       with
      | [ o ] ->
          List.iter
            (fun (k, v) ->
              check_bool (k ^ " on obs entry") true (member k o = Some v))
            [
              ("backend", Str "tl2");
              ("manager", Str "greedy");
              ("runtime", Str "live");
              ("class", Str "read");
              ("aborts", Int 4);
              ("wasted_work", Int 9);
              ("wait_ticks", Int 7);
              ("price", Int 16);
            ];
          (match member "hot_keys" o with
          | Some (Arr [ h ]) ->
              check_bool "hot key round-trips" true
                (member "key" h = Some (Int 17) && member "count" h = Some (Int 5))
          | _ -> Alcotest.fail "obs entry has no hot_keys array")
      | _ -> Alcotest.fail "expected exactly one kind=obs figure");
      (* tcm-bench/6: kind=consult consult-cost entries. *)
      (match
         List.filter (fun f -> member "kind" f = Some (Str "consult")) figs
       with
      | [ c ] ->
          List.iter
            (fun (k, v) ->
              check_bool (k ^ " on consult entry") true (member k c = Some v))
            [
              ("backend", Str "tl2");
              ("manager", Str "greedy");
              ("ns_per_resolve", Float 12.5);
              (* A zero float prints as "0" (%.6g) and reparses as Int —
                 and zero is exactly what the allocation gate enforces. *)
              ("minor_words_per_resolve", Int 0);
            ]
      | _ -> Alcotest.fail "expected exactly one kind=consult figure");
      (* tcm-bench/7: kind=ladder saturation-sweep entries. *)
      (match
         List.filter (fun f -> member "kind" f = Some (Str "ladder")) figs
       with
      | [ l ] ->
          check_bool "ladder figure carries the backend" true
            (member "backend" l = Some (Str "tl2"));
          check_bool "ladder figure carries the knee" true
            (member "knee_rps" l = Some (Int 4_000));
          (match member "rungs" l with
          | Some (Arr (r :: _ as rs)) ->
              Alcotest.(check int) "one entry per rung" 2 (List.length rs);
              List.iter
                (fun k ->
                  check_bool (k ^ " present on rung entries") true
                    (member k r <> None))
                [
                  "offered_rps";
                  "attainment";
                  "submitted";
                  "completed";
                  "dropped";
                  "latency_p50_us";
                  "latency_p99_us";
                  "queue_spills";
                  "gen_minor_words_per_req";
                ]
          | _ -> Alcotest.fail "ladder figure has no rungs array")
      | _ -> Alcotest.fail "expected exactly one kind=ladder figure")
  | _ -> Alcotest.fail "dump has no figures array"

let () =
  Alcotest.run "workload"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick t_mean;
          Alcotest.test_case "stddev" `Quick t_stddev;
          Alcotest.test_case "percentiles" `Quick t_percentile;
          Alcotest.test_case "json emitter" `Quick t_json_emit;
          Alcotest.test_case "json parse roundtrip" `Quick t_json_parse_roundtrip;
          Alcotest.test_case "coefficient of variation" `Quick t_cv;
          Alcotest.test_case "histogram" `Quick t_histogram;
          Alcotest.test_case "histogram upper edge" `Quick t_histogram_upper_edge;
        ] );
      ( "harness",
        [
          Alcotest.test_case "structure names" `Quick t_structure_names;
          Alcotest.test_case "harness runs" `Quick t_harness_runs;
          Alcotest.test_case "post-work lowers throughput" `Quick t_harness_post_work_slows;
          Alcotest.test_case "ops for every structure" `Quick t_make_ops_all;
        ] );
      ( "sim-models",
        [
          Alcotest.test_case "models generate valid transactions" `Quick
            t_models_generate_valid_txns;
          Alcotest.test_case "model names" `Quick t_model_names;
          Alcotest.test_case "structure mapping" `Quick t_model_of_structure;
          Alcotest.test_case "forest length variance" `Quick t_forest_long_txns_exist;
          Alcotest.test_case "sim runs are deterministic" `Quick t_sim_run_deterministic;
          Alcotest.test_case "throughput scales with threads" `Quick t_sim_run_scales;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure ids" `Quick t_figure_ids;
          Alcotest.test_case "sim rows well-formed" `Quick t_figure_sim_rows;
          Alcotest.test_case "real rows well-formed" `Quick t_figure_real_rows;
          Alcotest.test_case "winners" `Quick t_winners;
          Alcotest.test_case "report prints" `Quick t_report_prints;
          Alcotest.test_case "float formatting" `Quick t_float_to_string;
        ] );
      ( "bench-schema",
        [
          Alcotest.test_case "accepts every shipped version" `Quick
            t_bench_schema_accepts_all_versions;
          Alcotest.test_case "rejects missing and unknown" `Quick t_bench_schema_rejects;
          Alcotest.test_case "writer emits current schema" `Quick
            t_bench_json_emits_current_schema;
        ] );
    ]
