(* tcm.service: deterministic unit tests for the admission queue and
   the per-class SLO accounting, store semantics on both backends, and
   a small end-to-end engine run whose bookkeeping invariants
   (submitted = completed + dropped, attainment in [0,1]) must hold
   exactly. *)

module Service = Tcm_service.Service
module Sclass = Tcm_service.Sclass
module Squeue = Tcm_service.Squeue
module Store = Tcm_service.Store
module Stm = Tcm_stm.Stm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let t_squeue_fifo () =
  let q = Squeue.create 4 in
  List.iter (fun x -> check_bool "push" true (Squeue.try_push q x)) [ 1; 2; 3 ];
  check_int "length" 3 (Squeue.length q);
  Squeue.close q;
  Alcotest.(check (list int)) "drains in order" [ 1; 2; 3 ]
    (List.map (fun _ -> Squeue.pop q ~shard:0) [ (); (); () ]);
  check_int "closed and drained" (-1) (Squeue.pop q ~shard:0)

let t_squeue_overflow_counts () =
  let q = Squeue.create 2 in
  check_bool "fits" true (Squeue.try_push q 1);
  check_bool "fits" true (Squeue.try_push q 2);
  check_bool "full sheds" false (Squeue.try_push q 3);
  check_bool "full sheds again" false (Squeue.try_push q 4);
  check_int "dropped counted" 2 (Squeue.dropped q);
  check_int "high water" 2 (Squeue.high_water q);
  check_int "pop makes room" 1 (Squeue.pop q ~shard:0);
  check_bool "room again" true (Squeue.try_push q 5);
  check_int "drops don't reset" 2 (Squeue.dropped q)

let t_squeue_closed_rejects () =
  let q = Squeue.create 2 in
  check_bool "pre-close admits" true (Squeue.try_push q 1);
  Squeue.close q;
  check_bool "post-close sheds" false (Squeue.try_push q 2);
  check_int "queued item drains" 1 (Squeue.pop q ~shard:0);
  check_int "then the sentinel" (-1) (Squeue.pop q ~shard:0);
  check_int "post-close shed counted" 1 (Squeue.dropped q)

(* Round-robin dispatch, and the spill rule: a push whose round-robin
   target is full lands on the least-loaded shard instead of
   shedding. *)
let t_squeue_least_loaded_spill () =
  let q = Squeue.create ~shards:2 4 in
  check_int "two shards" 2 (Squeue.shards q);
  check_int "per-shard capacity" 2 (Squeue.shard_capacity q 0);
  List.iter
    (fun x -> check_bool "push" true (Squeue.try_push q x))
    [ 10; 11; 12; 13 ];
  check_int "round-robin filled shard 0" 2 (Squeue.shard_pushed q 0);
  check_int "round-robin filled shard 1" 2 (Squeue.shard_pushed q 1);
  check_bool "no spill while targets had room" false (Squeue.last_spilled q);
  (* Drain one slot of shard 1; the next push's round-robin target is
     the (still full) shard 0, so it must spill onto shard 1. *)
  check_int "consumer drains shard 1" 11 (Squeue.pop q ~shard:1);
  check_bool "spilled push admitted" true (Squeue.try_push q 14);
  check_bool "marked as a spill" true (Squeue.last_spilled q);
  check_int "landed on the least-loaded shard" 1 (Squeue.last_shard q);
  check_int "charged to shard 1's pushed" 3 (Squeue.shard_pushed q 1);
  check_int "nothing shed" 0 (Squeue.dropped q);
  check_int "totals add up" 5 (Squeue.pushed q)

(* Sheds are charged to the round-robin target shard, and per-shard
   drop counters sum to the queue total. *)
let t_squeue_per_shard_shed () =
  let q = Squeue.create ~shards:2 4 in
  for x = 0 to 3 do
    check_bool "fill" true (Squeue.try_push q x)
  done;
  check_bool "all full: shed" false (Squeue.try_push q 4);
  check_int "charged to the rr target (shard 0)" 0 (Squeue.last_shard q);
  check_bool "a shed is not a spill" false (Squeue.last_spilled q);
  check_bool "all full: shed again" false (Squeue.try_push q 5);
  check_int "next shed charged to shard 1" 1 (Squeue.last_shard q);
  check_int "shard 0 shed" 1 (Squeue.shard_dropped q 0);
  check_int "shard 1 shed" 1 (Squeue.shard_dropped q 1);
  check_int "per-shard sheds sum to the total" (Squeue.dropped q)
    (Squeue.shard_dropped q 0 + Squeue.shard_dropped q 1);
  check_int "conservation: submitted = pushed + dropped" 6
    (Squeue.pushed q + Squeue.dropped q)

(* Multi-domain hammer: one producer, one consumer domain per shard,
   relaxed stat reads racing the traffic.  After close + join the
   conservation identities must hold exactly: every successfully
   pushed payload is popped exactly once, and
   submitted = pushed + dropped. *)
let t_squeue_conservation_hammer () =
  let shards = 3 in
  let n = 20_000 in
  let q = Squeue.create ~shards 48 in
  let consumers =
    Array.init shards (fun shard ->
        Domain.spawn (fun () ->
            let count = ref 0 and sum = ref 0 in
            let rec go () =
              let x = Squeue.pop q ~shard in
              if x >= 0 then begin
                incr count;
                sum := !sum + x;
                go ()
              end
            in
            go ();
            (!count, !sum)))
  in
  let pushed_ok = ref 0 and pushed_sum = ref 0 in
  for x = 1 to n do
    if Squeue.try_push q x then begin
      incr pushed_ok;
      pushed_sum := !pushed_sum + x
    end;
    (* Exercise the relaxed stat reads against live traffic. *)
    if x land 1023 = 0 then begin
      ignore (Squeue.length q);
      ignore (Squeue.pushed q);
      ignore (Squeue.dropped q);
      ignore (Squeue.high_water q)
    end;
    if x land 255 = 0 then Domain.cpu_relax ()
  done;
  Squeue.close q;
  let results = Array.map Domain.join consumers in
  let popped = Array.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let popped_sum = Array.fold_left (fun acc (_, s) -> acc + s) 0 results in
  check_int "every admitted request popped exactly once" !pushed_ok popped;
  check_int "payloads conserved" !pushed_sum popped_sum;
  check_int "pushed counter exact after join" !pushed_ok (Squeue.pushed q);
  check_int "submitted = pushed + dropped" n
    (Squeue.pushed q + Squeue.dropped q);
  check_int "per-shard pushed sums to the total" (Squeue.pushed q)
    (List.fold_left
       (fun acc i -> acc + Squeue.shard_pushed q i)
       0
       (List.init shards Fun.id));
  (* The sharded queue must agree with the single-mutex reference on
     the sequential contract. *)
  let r = Squeue.Single_mutex.create 2 in
  check_bool "ref fits" true (Squeue.Single_mutex.try_push r 1);
  check_bool "ref fits" true (Squeue.Single_mutex.try_push r 2);
  check_bool "ref sheds" false (Squeue.Single_mutex.try_push r 3);
  check_int "ref dropped" 1 (Squeue.Single_mutex.dropped r);
  Squeue.Single_mutex.close r;
  check_bool "ref drains" true (Squeue.Single_mutex.pop r = Some 1)

(* ------------------------------------------------------------------ *)
(* SLO accounting                                                      *)
(* ------------------------------------------------------------------ *)

(* Deterministic accounting check with hand-computable numbers: 4 read
   submissions (one dropped, one over-SLO), 1 scan, 1 rmw. *)
let t_agg_slo_accounting () =
  let slo_us = [| 1_000.; 10_000.; 2_000. |] in
  let a = Service.Agg.create ~slo_us in
  let submit_complete cls lat =
    Service.Agg.submit a cls;
    Service.Agg.complete a cls ~latency_us:lat
  in
  submit_complete Sclass.Read 100.;
  submit_complete Sclass.Read 999.;
  submit_complete Sclass.Read 5_000.;
  (* over SLO *)
  Service.Agg.submit a Sclass.Read;
  Service.Agg.drop a Sclass.Read;
  (* shed: counts against attainment *)
  submit_complete Sclass.Scan 9_000.;
  submit_complete Sclass.Rmw 2_000.;
  (* boundary: <= is within *)
  let stats = Service.Agg.class_stats a in
  let find cls =
    List.find (fun (c : Service.class_stats) -> c.cls = cls) stats
  in
  let r = find Sclass.Read in
  check_int "read submitted" 4 r.submitted;
  check_int "read completed" 3 r.completed;
  check_int "read dropped" 1 r.dropped;
  check_int "read slo_ok" 2 r.slo_ok;
  Alcotest.(check (float 1e-9)) "read attainment (drop and miss charged)" 0.5
    r.attainment;
  let s = find Sclass.Scan in
  Alcotest.(check (float 1e-9)) "scan attainment" 1.0 s.attainment;
  let m = find Sclass.Rmw in
  check_int "rmw boundary within SLO" 1 m.slo_ok;
  (* Merge: a second (worker) accumulator folds in exactly. *)
  let b = Service.Agg.create ~slo_us in
  Service.Agg.submit b Sclass.Read;
  Service.Agg.complete b Sclass.Read ~latency_us:50.;
  Service.Agg.merge_into ~into:a b;
  let r' =
    List.find
      (fun (c : Service.class_stats) -> c.cls = Sclass.Read)
      (Service.Agg.class_stats a)
  in
  check_int "merged submitted" 5 r'.submitted;
  check_int "merged slo_ok" 3 r'.slo_ok

(* Queue time is part of the latency: a request that waited is charged
   from its scheduled arrival, not from dequeue. *)
let t_latency_includes_queue_time () =
  let lat = Service.request_latency_us ~arrival_s:1.0 ~now_s:1.25 in
  Alcotest.(check (float 1e-6)) "250ms arrival-to-commit" 250_000. lat;
  (* A worker that starts the txn 200ms late cannot report only its
     100ms of service time. *)
  check_bool "queue wait dominates" true (lat > 100_000.);
  Alcotest.(check (float 1e-9)) "clamped at 0" 0.
    (Service.request_latency_us ~arrival_s:2.0 ~now_s:1.9)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let store_ops backend () =
  let rt = Stm.create ~backend (module Tcm_core.Greedy : Tcm_stm.Cm_intf.S) in
  let st = Store.create ~n_keys:128 () in
  Store.prefill rt st;
  check_int "n_keys" 128 (Store.n_keys st);
  let got = Stm.atomically rt (fun tx -> Store.get tx st 7) in
  check_bool "prefilled value = key" true (got = Some 7);
  Stm.atomically rt (fun tx -> Store.put tx st 7 700);
  check_bool "put visible" true
    (Stm.atomically rt (fun tx -> Store.get tx st 7) = Some 700);
  Stm.atomically rt (fun tx ->
      Store.rmw tx st 9 (function None -> Some 1 | Some v -> Some (v + 1)));
  check_bool "rmw incremented" true
    (Stm.atomically rt (fun tx -> Store.get tx st 9) = Some 10);
  (* Ordered scan over [5, ...): 5+6+..+9 with the updates above. *)
  let n, sum = Stm.atomically rt (fun tx -> Store.scan tx st ~lo:5 ~len:5) in
  check_int "scan reads len bindings" 5 n;
  check_int "scan sums updated values" (700 + 5 + 6 + 8 + 10) sum;
  (* Scan beyond the keyspace tail returns what exists. *)
  let n, _ = Stm.atomically rt (fun tx -> Store.scan tx st ~lo:126 ~len:10) in
  check_int "tail scan truncates" 2 n

(* ------------------------------------------------------------------ *)
(* Engine end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let small_config backend process =
  {
    Service.default with
    backend;
    workers = 2;
    duration_s = 0.08;
    process;
    queue_cap = 64;
    n_keys = 512;
    seed = 9;
  }

let t_run_invariants backend () =
  let s =
    Service.run
      (small_config backend (Tcm_service.Arrival.Poisson { rate = 1_500. }))
  in
  check_bool "generated traffic" true (s.Service.submitted > 0);
  check_int "submitted = completed + dropped" s.Service.submitted
    (s.Service.completed + s.Service.dropped);
  List.iter
    (fun (c : Service.class_stats) ->
      check_int
        (Sclass.name c.cls ^ " class conservation")
        c.submitted
        (c.completed + c.dropped);
      if c.submitted > 0 then
        check_bool
          (Sclass.name c.cls ^ " attainment in [0,1]")
          true
          (c.attainment >= 0. && c.attainment <= 1.);
      if c.completed > 0 then
        check_bool (Sclass.name c.cls ^ " p99 >= p50") true (c.p99_us >= c.p50_us))
    s.Service.classes;
  (* The class totals are the run totals. *)
  check_int "class totals sum" s.Service.submitted
    (List.fold_left
       (fun acc (c : Service.class_stats) -> acc + c.submitted)
       0 s.Service.classes);
  (* tcm-bench/7 fields: pooled latency orders, and the precomputed-
     schedule generator allocates (at most) a handful of words per
     request — clock reads, never per-request records. *)
  if s.Service.completed > 0 then
    check_bool "pooled p99 >= p50" true (s.Service.p99_us >= s.Service.p50_us);
  check_bool "generator allocation-free (words/req)" true
    (Float.is_nan s.Service.gen_minor_words_per_req
    || s.Service.gen_minor_words_per_req < 32.);
  check_bool "spill counter non-negative" true (s.Service.queue_spills >= 0)

(* Overload: an all-scan mix (the slowest class) offered far beyond
   what one worker with a tiny queue can serve must shed, and the
   sheds must show up in the drop counters. *)
let t_run_overload_sheds () =
  let cfg =
    {
      (small_config Stm.Locator (Tcm_service.Arrival.Poisson { rate = 30_000. })) with
      Service.workers = 1;
      queue_cap = 8;
      duration_s = 0.05;
      mix = { Sclass.read_w = 0.; scan_w = 1.; rmw_w = 0. };
      scan_len = 256;
    }
  in
  let s = Service.run cfg in
  check_bool "overload drops requests" true (s.Service.dropped > 0);
  check_int "conservation under overload" s.Service.submitted
    (s.Service.completed + s.Service.dropped);
  check_int "queue hit its cap" 8 s.Service.queue_high_water

(* A metrics-enabled run must surface per-class SLO rows through
   tcm.metrics (the Health table the bench prints). *)
let t_run_metrics_slo_rows () =
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  let s =
    Service.run
      (small_config Stm.Tl2_backend (Tcm_service.Arrival.Poisson { rate = 1_000. }))
  in
  Tcm_metrics.disable ();
  let rows = Tcm_metrics.Health.slo_rows (Tcm_metrics.snapshot ()) in
  Tcm_metrics.reset ();
  check_bool "slo rows present" true (rows <> []);
  List.iter
    (fun (r : Tcm_metrics.Health.slo_row) ->
      check_bool "backend label" true (r.Tcm_metrics.Health.s_backend = "tl2");
      check_bool "manager label" true (r.Tcm_metrics.Health.s_manager = s.Service.manager);
      check_bool "class label is a known class" true
        (Sclass.of_name r.Tcm_metrics.Health.s_class <> None);
      let cls =
        List.find
          (fun (c : Service.class_stats) ->
            Sclass.name c.cls = r.Tcm_metrics.Health.s_class)
          s.Service.classes
      in
      check_int "metrics requests = engine submitted" cls.Service.submitted
        r.Tcm_metrics.Health.requests;
      check_int "metrics slo_ok = engine slo_ok" cls.Service.slo_ok
        r.Tcm_metrics.Health.slo_ok)
    rows

(* ------------------------------------------------------------------ *)
(* Rate ladder                                                         *)
(* ------------------------------------------------------------------ *)

module Ladder = Tcm_service.Ladder

(* Synthetic summaries with a hand-set attainment, for the pure knee
   arithmetic. *)
let mk_summary ~slo_ok ~submitted : Service.summary =
  {
    backend = "locator";
    manager = "greedy";
    process = "poisson";
    classes =
      [
        {
          Service.cls = Sclass.Read;
          submitted;
          completed = slo_ok;
          dropped = submitted - slo_ok;
          slo_us = 1_000.;
          slo_ok;
          attainment = float_of_int slo_ok /. float_of_int submitted;
          p50_us = 10.;
          p99_us = 20.;
          mean_us = 12.;
        };
      ];
    submitted;
    completed = slo_ok;
    dropped = submitted - slo_ok;
    aborts = 0;
    conflicts = 0;
    elapsed_s = 1.;
    throughput = float_of_int slo_ok;
    offered = float_of_int submitted;
    p50_us = 10.;
    p99_us = 20.;
    queue_high_water = 0;
    queue_spills = 0;
    gen_minor_words_per_req = 0.;
    trace_drops = 0;
    metrics_on = false;
    trace_on = false;
  }

let t_ladder_knee_arithmetic () =
  let rung rps slo_ok submitted =
    { Ladder.offered_rps = rps; summary = mk_summary ~slo_ok ~submitted }
  in
  Alcotest.(check (float 1e-9))
    "attainment pools classes" 0.95
    (Ladder.attainment (mk_summary ~slo_ok:95 ~submitted:100));
  check_bool "no knee while every rung holds" true
    (Ladder.knee [ rung 1_000. 100 100; rung 2_000. 995 1_000 ] = None);
  check_bool "knee = first rung under threshold" true
    (Ladder.knee
       [ rung 1_000. 100 100; rung 2_000. 980 1_000; rung 4_000. 500 1_000 ]
    = Some 2_000.);
  check_bool "empty rungs: no knee" true (Ladder.knee [] = None)

(* A two-rung mini-ladder on the live engine: the top rung offers far
   beyond single-host capacity into a tiny queue, so it must shed and
   fall under the attainment threshold — a knee exists and the rungs
   keep the run invariants. *)
let t_ladder_live_knee () =
  let cfg =
    {
      Service.default with
      Service.workers = 2;
      duration_s = 0.05;
      queue_cap = 64;
      n_keys = 512;
      seed = 11;
    }
  in
  let c = Ladder.run ~rates:[| 1_000.; 250_000. |] cfg in
  check_bool "backend name" true (c.Ladder.backend = "locator");
  check_int "one rung per rate" 2 (List.length c.Ladder.rungs);
  List.iter
    (fun (r : Ladder.rung) ->
      let s = r.Ladder.summary in
      check_int "rung conservation" s.Service.submitted
        (s.Service.completed + s.Service.dropped))
    c.Ladder.rungs;
  let top = List.nth c.Ladder.rungs 1 in
  check_bool "top rung saturates" true
    (Ladder.attainment top.Ladder.summary < Ladder.knee_threshold);
  check_bool "knee detected" true (c.Ladder.knee_rps <> None)

let t_run_rejects_bad_config () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero workers rejected" true
    (raises (fun () ->
         Service.run { Service.default with Service.workers = 0 }));
  check_bool "negative duration rejected" true
    (raises (fun () ->
         Service.run { Service.default with Service.duration_s = -1. }));
  check_bool "bad burst_frac rejected" true
    (raises (fun () ->
         Service.run
           {
             Service.default with
             Service.process =
               Tcm_service.Arrival.Bursty
                 { base_rate = 100.; burst_rate = 200.; period_s = 0.1; burst_frac = 1.5 };
           }))

let () =
  Alcotest.run "service"
    [
      ( "squeue",
        [
          Alcotest.test_case "fifo and close-drain" `Quick t_squeue_fifo;
          Alcotest.test_case "overflow counts sheds" `Quick t_squeue_overflow_counts;
          Alcotest.test_case "closed rejects, drains" `Quick t_squeue_closed_rejects;
          Alcotest.test_case "least-loaded spill" `Quick t_squeue_least_loaded_spill;
          Alcotest.test_case "per-shard shed accounting" `Quick
            t_squeue_per_shard_shed;
          Alcotest.test_case "multi-domain conservation" `Quick
            t_squeue_conservation_hammer;
        ] );
      ( "slo",
        [
          Alcotest.test_case "per-class accounting" `Quick t_agg_slo_accounting;
          Alcotest.test_case "latency includes queue time" `Quick
            t_latency_includes_queue_time;
        ] );
      ( "store",
        [
          Alcotest.test_case "ops (locator)" `Quick (store_ops Stm.Locator);
          Alcotest.test_case "ops (tl2)" `Quick (store_ops Stm.Tl2_backend);
        ] );
      ( "engine",
        [
          Alcotest.test_case "invariants (locator)" `Quick (t_run_invariants Stm.Locator);
          Alcotest.test_case "invariants (tl2)" `Quick
            (t_run_invariants Stm.Tl2_backend);
          Alcotest.test_case "overload sheds" `Quick t_run_overload_sheds;
          Alcotest.test_case "metrics slo rows" `Quick t_run_metrics_slo_rows;
          Alcotest.test_case "config validation" `Quick t_run_rejects_bad_config;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "knee arithmetic" `Quick t_ladder_knee_arithmetic;
          Alcotest.test_case "live knee past saturation" `Quick t_ladder_live_knee;
        ] );
    ]
