(* tcm.service: deterministic unit tests for the admission queue and
   the per-class SLO accounting, store semantics on both backends, and
   a small end-to-end engine run whose bookkeeping invariants
   (submitted = completed + dropped, attainment in [0,1]) must hold
   exactly. *)

module Service = Tcm_service.Service
module Sclass = Tcm_service.Sclass
module Squeue = Tcm_service.Squeue
module Store = Tcm_service.Store
module Stm = Tcm_stm.Stm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let t_squeue_fifo () =
  let q = Squeue.create 4 in
  List.iter (fun x -> check_bool "push" true (Squeue.try_push q x)) [ 1; 2; 3 ];
  check_int "length" 3 (Squeue.length q);
  Squeue.close q;
  Alcotest.(check (list int)) "drains in order" [ 1; 2; 3 ]
    (List.filter_map (fun _ -> Squeue.pop q) [ (); (); () ]);
  check_bool "closed and drained" true (Squeue.pop q = None)

let t_squeue_overflow_counts () =
  let q = Squeue.create 2 in
  check_bool "fits" true (Squeue.try_push q 1);
  check_bool "fits" true (Squeue.try_push q 2);
  check_bool "full sheds" false (Squeue.try_push q 3);
  check_bool "full sheds again" false (Squeue.try_push q 4);
  check_int "dropped counted" 2 (Squeue.dropped q);
  check_int "high water" 2 (Squeue.high_water q);
  ignore (Squeue.pop q);
  check_bool "room again" true (Squeue.try_push q 5);
  check_int "drops don't reset" 2 (Squeue.dropped q)

let t_squeue_closed_rejects () =
  let q = Squeue.create 2 in
  check_bool "pre-close admits" true (Squeue.try_push q 1);
  Squeue.close q;
  check_bool "post-close sheds" false (Squeue.try_push q 2);
  check_bool "queued item drains" true (Squeue.pop q = Some 1);
  check_bool "then None" true (Squeue.pop q = None);
  check_int "post-close shed counted" 1 (Squeue.dropped q)

(* ------------------------------------------------------------------ *)
(* SLO accounting                                                      *)
(* ------------------------------------------------------------------ *)

(* Deterministic accounting check with hand-computable numbers: 4 read
   submissions (one dropped, one over-SLO), 1 scan, 1 rmw. *)
let t_agg_slo_accounting () =
  let slo_us = [| 1_000.; 10_000.; 2_000. |] in
  let a = Service.Agg.create ~slo_us in
  let submit_complete cls lat =
    Service.Agg.submit a cls;
    Service.Agg.complete a cls ~latency_us:lat
  in
  submit_complete Sclass.Read 100.;
  submit_complete Sclass.Read 999.;
  submit_complete Sclass.Read 5_000.;
  (* over SLO *)
  Service.Agg.submit a Sclass.Read;
  Service.Agg.drop a Sclass.Read;
  (* shed: counts against attainment *)
  submit_complete Sclass.Scan 9_000.;
  submit_complete Sclass.Rmw 2_000.;
  (* boundary: <= is within *)
  let stats = Service.Agg.class_stats a in
  let find cls =
    List.find (fun (c : Service.class_stats) -> c.cls = cls) stats
  in
  let r = find Sclass.Read in
  check_int "read submitted" 4 r.submitted;
  check_int "read completed" 3 r.completed;
  check_int "read dropped" 1 r.dropped;
  check_int "read slo_ok" 2 r.slo_ok;
  Alcotest.(check (float 1e-9)) "read attainment (drop and miss charged)" 0.5
    r.attainment;
  let s = find Sclass.Scan in
  Alcotest.(check (float 1e-9)) "scan attainment" 1.0 s.attainment;
  let m = find Sclass.Rmw in
  check_int "rmw boundary within SLO" 1 m.slo_ok;
  (* Merge: a second (worker) accumulator folds in exactly. *)
  let b = Service.Agg.create ~slo_us in
  Service.Agg.submit b Sclass.Read;
  Service.Agg.complete b Sclass.Read ~latency_us:50.;
  Service.Agg.merge_into ~into:a b;
  let r' =
    List.find
      (fun (c : Service.class_stats) -> c.cls = Sclass.Read)
      (Service.Agg.class_stats a)
  in
  check_int "merged submitted" 5 r'.submitted;
  check_int "merged slo_ok" 3 r'.slo_ok

(* Queue time is part of the latency: a request that waited is charged
   from its scheduled arrival, not from dequeue. *)
let t_latency_includes_queue_time () =
  let lat = Service.request_latency_us ~arrival_s:1.0 ~now_s:1.25 in
  Alcotest.(check (float 1e-6)) "250ms arrival-to-commit" 250_000. lat;
  (* A worker that starts the txn 200ms late cannot report only its
     100ms of service time. *)
  check_bool "queue wait dominates" true (lat > 100_000.);
  Alcotest.(check (float 1e-9)) "clamped at 0" 0.
    (Service.request_latency_us ~arrival_s:2.0 ~now_s:1.9)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let store_ops backend () =
  let rt = Stm.create ~backend (module Tcm_core.Greedy : Tcm_stm.Cm_intf.S) in
  let st = Store.create ~n_keys:128 () in
  Store.prefill rt st;
  check_int "n_keys" 128 (Store.n_keys st);
  let got = Stm.atomically rt (fun tx -> Store.get tx st 7) in
  check_bool "prefilled value = key" true (got = Some 7);
  Stm.atomically rt (fun tx -> Store.put tx st 7 700);
  check_bool "put visible" true
    (Stm.atomically rt (fun tx -> Store.get tx st 7) = Some 700);
  Stm.atomically rt (fun tx ->
      Store.rmw tx st 9 (function None -> Some 1 | Some v -> Some (v + 1)));
  check_bool "rmw incremented" true
    (Stm.atomically rt (fun tx -> Store.get tx st 9) = Some 10);
  (* Ordered scan over [5, ...): 5+6+..+9 with the updates above. *)
  let n, sum = Stm.atomically rt (fun tx -> Store.scan tx st ~lo:5 ~len:5) in
  check_int "scan reads len bindings" 5 n;
  check_int "scan sums updated values" (700 + 5 + 6 + 8 + 10) sum;
  (* Scan beyond the keyspace tail returns what exists. *)
  let n, _ = Stm.atomically rt (fun tx -> Store.scan tx st ~lo:126 ~len:10) in
  check_int "tail scan truncates" 2 n

(* ------------------------------------------------------------------ *)
(* Engine end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let small_config backend process =
  {
    Service.default with
    backend;
    workers = 2;
    duration_s = 0.08;
    process;
    queue_cap = 64;
    n_keys = 512;
    seed = 9;
  }

let t_run_invariants backend () =
  let s =
    Service.run
      (small_config backend (Tcm_service.Arrival.Poisson { rate = 1_500. }))
  in
  check_bool "generated traffic" true (s.Service.submitted > 0);
  check_int "submitted = completed + dropped" s.Service.submitted
    (s.Service.completed + s.Service.dropped);
  List.iter
    (fun (c : Service.class_stats) ->
      check_int
        (Sclass.name c.cls ^ " class conservation")
        c.submitted
        (c.completed + c.dropped);
      if c.submitted > 0 then
        check_bool
          (Sclass.name c.cls ^ " attainment in [0,1]")
          true
          (c.attainment >= 0. && c.attainment <= 1.);
      if c.completed > 0 then
        check_bool (Sclass.name c.cls ^ " p99 >= p50") true (c.p99_us >= c.p50_us))
    s.Service.classes;
  (* The class totals are the run totals. *)
  check_int "class totals sum" s.Service.submitted
    (List.fold_left
       (fun acc (c : Service.class_stats) -> acc + c.submitted)
       0 s.Service.classes)

(* Overload: an all-scan mix (the slowest class) offered far beyond
   what one worker with a tiny queue can serve must shed, and the
   sheds must show up in the drop counters. *)
let t_run_overload_sheds () =
  let cfg =
    {
      (small_config Stm.Locator (Tcm_service.Arrival.Poisson { rate = 30_000. })) with
      Service.workers = 1;
      queue_cap = 8;
      duration_s = 0.05;
      mix = { Sclass.read_w = 0.; scan_w = 1.; rmw_w = 0. };
      scan_len = 256;
    }
  in
  let s = Service.run cfg in
  check_bool "overload drops requests" true (s.Service.dropped > 0);
  check_int "conservation under overload" s.Service.submitted
    (s.Service.completed + s.Service.dropped);
  check_int "queue hit its cap" 8 s.Service.queue_high_water

(* A metrics-enabled run must surface per-class SLO rows through
   tcm.metrics (the Health table the bench prints). *)
let t_run_metrics_slo_rows () =
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  let s =
    Service.run
      (small_config Stm.Tl2_backend (Tcm_service.Arrival.Poisson { rate = 1_000. }))
  in
  Tcm_metrics.disable ();
  let rows = Tcm_metrics.Health.slo_rows (Tcm_metrics.snapshot ()) in
  Tcm_metrics.reset ();
  check_bool "slo rows present" true (rows <> []);
  List.iter
    (fun (r : Tcm_metrics.Health.slo_row) ->
      check_bool "backend label" true (r.Tcm_metrics.Health.s_backend = "tl2");
      check_bool "manager label" true (r.Tcm_metrics.Health.s_manager = s.Service.manager);
      check_bool "class label is a known class" true
        (Sclass.of_name r.Tcm_metrics.Health.s_class <> None);
      let cls =
        List.find
          (fun (c : Service.class_stats) ->
            Sclass.name c.cls = r.Tcm_metrics.Health.s_class)
          s.Service.classes
      in
      check_int "metrics requests = engine submitted" cls.Service.submitted
        r.Tcm_metrics.Health.requests;
      check_int "metrics slo_ok = engine slo_ok" cls.Service.slo_ok
        r.Tcm_metrics.Health.slo_ok)
    rows

let t_run_rejects_bad_config () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero workers rejected" true
    (raises (fun () ->
         Service.run { Service.default with Service.workers = 0 }));
  check_bool "negative duration rejected" true
    (raises (fun () ->
         Service.run { Service.default with Service.duration_s = -1. }));
  check_bool "bad burst_frac rejected" true
    (raises (fun () ->
         Service.run
           {
             Service.default with
             Service.process =
               Tcm_service.Arrival.Bursty
                 { base_rate = 100.; burst_rate = 200.; period_s = 0.1; burst_frac = 1.5 };
           }))

let () =
  Alcotest.run "service"
    [
      ( "squeue",
        [
          Alcotest.test_case "fifo and close-drain" `Quick t_squeue_fifo;
          Alcotest.test_case "overflow counts sheds" `Quick t_squeue_overflow_counts;
          Alcotest.test_case "closed rejects, drains" `Quick t_squeue_closed_rejects;
        ] );
      ( "slo",
        [
          Alcotest.test_case "per-class accounting" `Quick t_agg_slo_accounting;
          Alcotest.test_case "latency includes queue time" `Quick
            t_latency_includes_queue_time;
        ] );
      ( "store",
        [
          Alcotest.test_case "ops (locator)" `Quick (store_ops Stm.Locator);
          Alcotest.test_case "ops (tl2)" `Quick (store_ops Stm.Tl2_backend);
        ] );
      ( "engine",
        [
          Alcotest.test_case "invariants (locator)" `Quick (t_run_invariants Stm.Locator);
          Alcotest.test_case "invariants (tl2)" `Quick
            (t_run_invariants Stm.Tl2_backend);
          Alcotest.test_case "overload sheds" `Quick t_run_overload_sheds;
          Alcotest.test_case "metrics slo rows" `Quick t_run_metrics_slo_rows;
          Alcotest.test_case "config validation" `Quick t_run_rejects_bad_config;
        ] );
    ]
