(** Decision-table tests for every contention manager: given fabricated
    transaction descriptors (older/younger, waiting or not, various
    priorities), each manager must return the verdicts its published
    description prescribes. *)

open Tcm_stm
open Tcm_core

let decision : Decision.t Alcotest.testable =
  Alcotest.testable Decision.pp (fun a b -> a = b)

(* Fabricate a pair (older, younger): timestamps are drawn from the
   global counter, so creation order gives priority order. *)
let fresh_pair () =
  let older = Txn.new_attempt (Txn.new_shared ()) in
  let younger = Txn.new_attempt (Txn.new_shared ()) in
  (older, younger)

let set_waiting t v = Atomic.set t.Txn.waiting v

let resolve (type a) (module M : Cm_intf.S with type t = a) (st : a) ~me ~other ~attempts =
  M.resolve st ~me ~other ~attempts

let check_abort_other name d = Alcotest.check decision name Decision.Abort_other d
let check_abort_self name d = Alcotest.check decision name Decision.Abort_self d

let is_backoff = function Decision.Backoff _ -> true | _ -> false
let is_block = function Decision.Block _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Greedy                                                              *)
(* ------------------------------------------------------------------ *)

let t_greedy_rules () =
  let st = Greedy.create () in
  let older, younger = fresh_pair () in
  check_abort_other "rule 1: older aborts younger"
    (resolve (module Greedy) st ~me:older ~other:younger ~attempts:0);
  Alcotest.check decision "rule 2: younger waits unboundedly"
    (Decision.Block { timeout_usec = None })
    (resolve (module Greedy) st ~me:younger ~other:older ~attempts:0);
  set_waiting older true;
  check_abort_other "rule 1: waiting enemies are aborted regardless of priority"
    (resolve (module Greedy) st ~me:younger ~other:older ~attempts:0)

let t_greedy_no_wait_cycle () =
  (* Whoever is older aborts; the relation is a strict total order on
     timestamps, so two transactions can never both be told to wait. *)
  let st = Greedy.create () in
  let a, b = fresh_pair () in
  let da = resolve (module Greedy) st ~me:a ~other:b ~attempts:0 in
  let db = resolve (module Greedy) st ~me:b ~other:a ~attempts:0 in
  Alcotest.(check bool) "at most one side waits" false (is_block da && is_block db)

(* ------------------------------------------------------------------ *)
(* Greedy-FT                                                           *)
(* ------------------------------------------------------------------ *)

let t_greedy_ft_timeout_doubles () =
  let st = Greedy_ft.create () in
  let older, younger = fresh_pair () in
  (match resolve (module Greedy_ft) st ~me:younger ~other:older ~attempts:0 with
  | Decision.Block { timeout_usec = Some t } ->
      Alcotest.(check int) "initial grant" Greedy_ft.base_usec t
  | d -> Alcotest.failf "expected bounded block, got %a" Decision.pp d);
  (* The wait expired: abort the enemy... *)
  check_abort_other "expired wait aborts"
    (resolve (module Greedy_ft) st ~me:younger ~other:older ~attempts:1);
  (* ...and the next encounter with the same enemy gets double. *)
  match resolve (module Greedy_ft) st ~me:younger ~other:older ~attempts:0 with
  | Decision.Block { timeout_usec = Some t } ->
      Alcotest.(check int) "doubled grant" (2 * Greedy_ft.base_usec) t
  | d -> Alcotest.failf "expected doubled block, got %a" Decision.pp d

let t_greedy_ft_rule1_intact () =
  let st = Greedy_ft.create () in
  let older, younger = fresh_pair () in
  check_abort_other "older still aborts"
    (resolve (module Greedy_ft) st ~me:older ~other:younger ~attempts:0);
  set_waiting older true;
  check_abort_other "waiting enemies still aborted"
    (resolve (module Greedy_ft) st ~me:younger ~other:older ~attempts:0)

(* ------------------------------------------------------------------ *)
(* Aggressive / Timid / Randomized                                     *)
(* ------------------------------------------------------------------ *)

let t_aggressive () =
  let st = Aggressive.create () in
  let a, b = fresh_pair () in
  check_abort_other "always abort other"
    (resolve (module Aggressive) st ~me:b ~other:a ~attempts:0);
  check_abort_other "any attempts" (resolve (module Aggressive) st ~me:a ~other:b ~attempts:17)

let t_timid () =
  let st = Timid.create () in
  let a, b = fresh_pair () in
  check_abort_self "always abort self" (resolve (module Timid) st ~me:a ~other:b ~attempts:0)

let t_randomized_range () =
  let st = Randomized.create () in
  let a, b = fresh_pair () in
  let seen_abort = ref false and seen_backoff = ref false in
  for i = 0 to 63 do
    match resolve (module Randomized) st ~me:a ~other:b ~attempts:i with
    | Decision.Abort_other -> seen_abort := true
    | Decision.Backoff _ -> seen_backoff := true
    | d -> Alcotest.failf "unexpected verdict %a" Decision.pp d
  done;
  Alcotest.(check bool) "both outcomes occur" true (!seen_abort && !seen_backoff)

(* ------------------------------------------------------------------ *)
(* Polite (backoff)                                                    *)
(* ------------------------------------------------------------------ *)

let t_polite_backs_off_then_aborts () =
  let st = Polite.create () in
  let a, b = fresh_pair () in
  for i = 0 to Polite.max_tries - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "backoff at attempt %d" i)
      true
      (is_backoff (resolve (module Polite) st ~me:a ~other:b ~attempts:i))
  done;
  check_abort_other "aborts after max tries"
    (resolve (module Polite) st ~me:a ~other:b ~attempts:Polite.max_tries)

let t_polite_grows () =
  let st = Polite.create () in
  let a, b = fresh_pair () in
  let backoff i =
    match resolve (module Polite) st ~me:a ~other:b ~attempts:i with
    | Decision.Backoff { usec } -> usec
    | d -> Alcotest.failf "expected backoff, got %a" Decision.pp d
  in
  (* Exponential envelope: attempt 6 exceeds attempt 0's maximum jitter. *)
  Alcotest.(check bool) "grows" true (backoff 6 > backoff 0)

(* ------------------------------------------------------------------ *)
(* KillBlocked                                                         *)
(* ------------------------------------------------------------------ *)

let t_killblocked () =
  let st = Killblocked.create () in
  let a, b = fresh_pair () in
  set_waiting b true;
  check_abort_other "blocked enemies die"
    (resolve (module Killblocked) st ~me:a ~other:b ~attempts:0);
  set_waiting b false;
  Alcotest.(check bool) "otherwise backoff" true
    (is_backoff (resolve (module Killblocked) st ~me:a ~other:b ~attempts:0));
  check_abort_other "patience exhausted"
    (resolve (module Killblocked) st ~me:a ~other:b ~attempts:Killblocked.max_tries)

(* ------------------------------------------------------------------ *)
(* Kindergarten                                                        *)
(* ------------------------------------------------------------------ *)

let t_kindergarten_turns () =
  let st = Kindergarten.create () in
  let a, b = fresh_pair () in
  Alcotest.(check bool) "first meeting: polite backoff" true
    (is_backoff (resolve (module Kindergarten) st ~me:a ~other:b ~attempts:0));
  check_abort_self "after its rounds, yields by restarting"
    (resolve (module Kindergarten) st ~me:a ~other:b ~attempts:Kindergarten.rounds_per_turn);
  check_abort_other "second meeting with the same enemy: our turn"
    (resolve (module Kindergarten) st ~me:a ~other:b ~attempts:0)

let t_kindergarten_resets_on_commit () =
  let st = Kindergarten.create () in
  let a, b = fresh_pair () in
  ignore (resolve (module Kindergarten) st ~me:a ~other:b ~attempts:Kindergarten.rounds_per_turn);
  Kindergarten.committed st a;
  Alcotest.(check bool) "grudges forgotten" true
    (is_backoff (resolve (module Kindergarten) st ~me:a ~other:b ~attempts:0))

(* ------------------------------------------------------------------ *)
(* Timestamp                                                           *)
(* ------------------------------------------------------------------ *)

let t_timestamp () =
  let st = Timestamp.create () in
  let older, younger = fresh_pair () in
  check_abort_other "older kills younger"
    (resolve (module Timestamp) st ~me:older ~other:younger ~attempts:0);
  (match resolve (module Timestamp) st ~me:younger ~other:older ~attempts:0 with
  | Decision.Block { timeout_usec = Some t } ->
      Alcotest.(check int) "waits a quantum" Timestamp.quantum_usec t
  | d -> Alcotest.failf "expected quantum block, got %a" Decision.pp d);
  check_abort_other "presumed dead after max quanta"
    (resolve (module Timestamp) st ~me:younger ~other:older ~attempts:Timestamp.max_quanta)

(* ------------------------------------------------------------------ *)
(* Karma / Eruption / Polka                                            *)
(* ------------------------------------------------------------------ *)

let t_karma () =
  let st = Karma.create () in
  let a, b = fresh_pair () in
  Txn.add_priority b 5;
  Alcotest.(check bool) "poorer backs off" true
    (is_backoff (resolve (module Karma) st ~me:a ~other:b ~attempts:0));
  Txn.add_priority a 10;
  check_abort_other "richer aborts" (resolve (module Karma) st ~me:a ~other:b ~attempts:0)

let t_karma_attempts_accumulate () =
  let st = Karma.create () in
  let a, b = fresh_pair () in
  Txn.add_priority b 3;
  (* priority 0 + attempts 4 > 3: persistence pays the difference. *)
  check_abort_other "attempts count as karma"
    (resolve (module Karma) st ~me:a ~other:b ~attempts:4)

let t_eruption_pressure () =
  let st = Eruption.create () in
  let a, b = fresh_pair () in
  Txn.add_priority a 4;
  Txn.add_priority b 10;
  let before = Txn.priority b in
  Alcotest.(check bool) "blocked: backoff" true
    (is_backoff (resolve (module Eruption) st ~me:a ~other:b ~attempts:0));
  Alcotest.(check int) "pressure transferred" (before + 4) (Txn.priority b);
  Alcotest.(check bool) "second round still backoff" true
    (is_backoff (resolve (module Eruption) st ~me:a ~other:b ~attempts:1));
  Alcotest.(check int) "no repeat transfer" (before + 4) (Txn.priority b)

let t_polka () =
  let st = Polka.create () in
  let a, b = fresh_pair () in
  Txn.add_priority b 3;
  Alcotest.(check bool) "backs off while gap unpaid" true
    (is_backoff (resolve (module Polka) st ~me:a ~other:b ~attempts:0));
  check_abort_other "aborts after gap backoffs"
    (resolve (module Polka) st ~me:a ~other:b ~attempts:3);
  Txn.add_priority a 10;
  check_abort_other "richer aborts immediately"
    (resolve (module Polka) st ~me:a ~other:b ~attempts:1)

(* ------------------------------------------------------------------ *)
(* Sto-adaptive                                                        *)
(* ------------------------------------------------------------------ *)

(* Drive a stamped fight-phase transaction the way the runtime would:
   a fresh attempt followed by enough opens to cross the threshold. *)
let sto_warm st me =
  Sto_adaptive.begin_attempt st me;
  for _ = 1 to Sto_adaptive.ts_threshold do
    Sto_adaptive.opened st me
  done

let t_sto_timid () =
  let st = Sto_adaptive.create () in
  let older, younger = fresh_pair () in
  Sto_adaptive.begin_attempt st older;
  (* Below the open threshold the transaction concedes every conflict,
     seniority notwithstanding. *)
  check_abort_self "timid: older concedes too"
    (resolve (module Sto_adaptive) st ~me:older ~other:younger ~attempts:0);
  check_abort_self "timid: younger concedes"
    (resolve (module Sto_adaptive) st ~me:younger ~other:older ~attempts:0);
  for _ = 1 to Sto_adaptive.ts_threshold - 1 do
    Sto_adaptive.opened st older
  done;
  check_abort_self "still timid one open short of the threshold"
    (resolve (module Sto_adaptive) st ~me:older ~other:younger ~attempts:0)

let t_sto_phase_transition () =
  let st = Sto_adaptive.create () in
  let me, _ = fresh_pair () in
  Sto_adaptive.begin_attempt st me;
  Alcotest.(check bool) "no stamp while timid" true
    (Txn.cm_stamp me = Txn.no_cm_stamp);
  for _ = 1 to Sto_adaptive.ts_threshold do
    Sto_adaptive.opened st me
  done;
  Alcotest.(check bool) "threshold crossing buys a stamp" true
    (Txn.cm_stamp me <> Txn.no_cm_stamp);
  let stamp = Txn.cm_stamp me in
  Sto_adaptive.opened st me;
  Alcotest.(check int) "stamp is stable across further opens" stamp
    (Txn.cm_stamp me);
  (* A restart begins timid again. *)
  Sto_adaptive.begin_attempt st me;
  Alcotest.(check bool) "restart drops the stamp" true
    (Txn.cm_stamp me = Txn.no_cm_stamp)

let t_sto_fight_verdicts () =
  let st = Sto_adaptive.create () in
  let me, other = fresh_pair () in
  sto_warm st me;
  check_abort_other "stamped vs timid enemy: abort it"
    (resolve (module Sto_adaptive) st ~me ~other ~attempts:0);
  Txn.set_cm_stamp other (Txn.cm_stamp me + 1);
  check_abort_other "stamped vs younger stamp: abort it"
    (resolve (module Sto_adaptive) st ~me ~other ~attempts:0);
  Txn.set_cm_stamp other (Txn.cm_stamp me - 1);
  Alcotest.(check bool) "stamped vs older stamp: bounded wait" true
    (is_backoff (resolve (module Sto_adaptive) st ~me ~other ~attempts:0));
  check_abort_self "cycle-wait exhausted: concede"
    (resolve (module Sto_adaptive) st ~me ~other
       ~attempts:Sto_adaptive.max_fight_rounds);
  ignore (Txn.try_abort other);
  check_abort_other "dead enemies are cleared regardless of seniority"
    (resolve (module Sto_adaptive) st ~me ~other ~attempts:0)

let t_sto_succ_abort_cap () =
  let st = Sto_adaptive.create () in
  let me, other = fresh_pair () in
  Alcotest.(check int) "fresh instance" 0 (Sto_adaptive.succ_aborts st);
  for _ = 1 to Sto_adaptive.succ_aborts_max + 5 do
    Sto_adaptive.aborted st me
  done;
  Alcotest.(check int) "successive-abort run is capped"
    Sto_adaptive.succ_aborts_max
    (Sto_adaptive.succ_aborts st);
  (* The capped run bounds the fight-phase wait. *)
  sto_warm st me;
  Txn.set_cm_stamp other (Txn.cm_stamp me - 1);
  let bound =
    (Sto_adaptive.succ_aborts_max + 1) * Sto_adaptive.wait_usec_per_abort
  in
  for i = 0 to 63 do
    match resolve (module Sto_adaptive) st ~me ~other ~attempts:(i land 3) with
    | Decision.Backoff { usec } ->
        if usec < 1 || usec > bound then
          Alcotest.failf "wait %d outside [1, %d]" usec bound
    | d -> Alcotest.failf "expected backoff, got %a" Decision.pp d
  done;
  Sto_adaptive.committed st me;
  Alcotest.(check int) "commit ends the run" 0 (Sto_adaptive.succ_aborts st)

(* ------------------------------------------------------------------ *)
(* QueueOnBlock                                                        *)
(* ------------------------------------------------------------------ *)

let t_queue_on_block () =
  let st = Queue_on_block.create () in
  let a, b = fresh_pair () in
  Alcotest.(check bool) "waits FIFO-style" true
    (is_block (resolve (module Queue_on_block) st ~me:a ~other:b ~attempts:0));
  check_abort_other "defensive timeout"
    (resolve (module Queue_on_block) st ~me:a ~other:b ~attempts:Queue_on_block.max_waits)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let t_registry_finds_all () =
  List.iter
    (fun name ->
      match Registry.find name with
      | Some m -> Alcotest.(check string) "name matches" name (Cm_intf.name m)
      | None -> Alcotest.failf "manager %s not found" name)
    Registry.names

let t_registry_count () =
  Alcotest.(check int) "14 managers shipped" 14 (List.length Registry.all)

let t_registry_case_insensitive () =
  Alcotest.(check string) "case folded" "greedy" (Cm_intf.name (Registry.find_exn "GREEDY"))

let t_registry_unknown () =
  match Registry.find "nonsense" with
  | None -> ()
  | Some _ -> Alcotest.fail "found nonsense manager"

let t_registry_unknown_exn () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Registry.find_exn "nonsense");
       false
     with Invalid_argument _ -> true)

(* Completeness: every manager module in lib/core is registered under
   its own [name].  This list is the point — adding a manager module
   without registering it must fail here, which [Registry.names]-driven
   round-trips cannot catch. *)
let t_registry_complete () =
  let modules : Cm_intf.factory list =
    [
      (module Greedy);
      (module Greedy_ft);
      (module Aggressive);
      (module Polite);
      (module Randomized);
      (module Timid);
      (module Killblocked);
      (module Kindergarten);
      (module Timestamp);
      (module Karma);
      (module Eruption);
      (module Polka);
      (module Queue_on_block);
      (module Sto_adaptive);
    ]
  in
  Alcotest.(check int) "test list covers the registry" (List.length Registry.all)
    (List.length modules);
  List.iter
    (fun m ->
      let name = Cm_intf.name m in
      match Registry.find name with
      | None -> Alcotest.failf "module %s is not registered" name
      | Some found ->
          Alcotest.(check string) "registered under its own name" name
            (Cm_intf.name found))
    modules

let t_registry_names_unique () =
  let sorted = List.sort compare Registry.names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some n -> Alcotest.failf "duplicate registry name %S" n
  | None -> ()

let t_paper_lineup () =
  Alcotest.(check (list string)) "figure line-up"
    [ "greedy"; "karma"; "eruption"; "aggressive"; "backoff" ]
    (List.map Cm_intf.name Registry.paper_figures)

(* ------------------------------------------------------------------ *)
(* Cross-backend verdict agreement                                     *)
(* ------------------------------------------------------------------ *)

(* Both runtime backends expose the same conflict adapter
   ([Runtime.consult] and [Tl2.consult]): unpack the per-domain
   manager instance and ask it to resolve.  The manager zoo is the
   experiment under test in this repo, so the two backends must agree
   verdict-for-verdict on an identical conflict history — otherwise a
   locator-vs-TL2 benchmark difference could be a contention-policy
   difference in disguise.  The duel below scripts both priority
   directions, escalating attempt counts, and the waiting flag (the
   input Greedy-family rule 1 keys on); each backend replays it against
   its own fresh manager instance (stateful managers — Karma, Polite,
   Kindergarten — advance their state identically when fed identical
   inputs). *)

type duel_step = { me_older : bool; attempts : int; other_waiting : bool }

let duel_script =
  [
    { me_older = true; attempts = 0; other_waiting = false };
    { me_older = false; attempts = 0; other_waiting = false };
    { me_older = false; attempts = 1; other_waiting = false };
    { me_older = false; attempts = 2; other_waiting = true };
    { me_older = true; attempts = 1; other_waiting = true };
    { me_older = false; attempts = 5; other_waiting = false };
    { me_older = true; attempts = 0; other_waiting = false };
    { me_older = false; attempts = 9; other_waiting = false };
  ]

let replay consult ~older ~younger =
  List.map
    (fun { me_older; attempts; other_waiting } ->
      let me, other = if me_older then (older, younger) else (younger, older) in
      set_waiting other other_waiting;
      let d = consult ~me ~other ~attempts in
      set_waiting other false;
      d)
    duel_script

let t_backends_agree () =
  List.iter
    (fun factory ->
      let name = Cm_intf.name factory in
      (* One txn pair shared by both replays: timestamps, priorities
         and ids must be identical inputs, only the manager instance
         (and the adapter under test) differs. *)
      let older, younger = fresh_pair () in
      let via_locator =
        replay (Runtime.consult (Cm_intf.instantiate factory)) ~older ~younger
      in
      let via_tl2 = replay (Tl2.consult (Cm_intf.instantiate factory)) ~older ~younger in
      if String.equal name "randomized" then
        (* Coin-flipping manager: exact agreement is not required (nor
           meaningful); both backends must stay inside its published
           verdict range. *)
        List.iter
          (fun d ->
            match d with
            | Decision.Abort_other | Decision.Backoff _ -> ()
            | d -> Alcotest.failf "randomized out of range: %a" Decision.pp d)
          (via_locator @ via_tl2)
      else
        (* Backoff durations are jittered per manager instance (Polite
           and Polka draw from a private PRNG), so agreement there is
           up to the duration; every other verdict — including block
           timeouts, which Greedy-FT doubles deterministically — must
           match exactly. *)
        let agree a b =
          match (a, b) with
          | Decision.Backoff _, Decision.Backoff _ -> true
          | a, b -> a = b
        in
        List.iteri
          (fun i (dl, dt) ->
            if not (agree dl dt) then
              Alcotest.failf "%s: step %d disagrees: locator %a, tl2 %a" name i
                Decision.pp dl Decision.pp dt)
          (List.combine via_locator via_tl2))
    Registry.all

(* The registry-wide duel above exercises sto-adaptive only in its
   timid phase (no opens are replayed, so both backends deterministically
   see Abort_self).  Stamp both parties by hand to duel the fight phase
   too: verdict classes are deterministic given the stamps, with
   agreement up to the jittered backoff duration as usual. *)
let t_sto_fight_cross_backend () =
  let factory : Cm_intf.factory = (module Sto_adaptive) in
  let older, younger = fresh_pair () in
  Txn.set_cm_stamp older 1;
  Txn.set_cm_stamp younger 2;
  let via_locator =
    replay (Runtime.consult (Cm_intf.instantiate factory)) ~older ~younger
  in
  let via_tl2 =
    replay (Tl2.consult (Cm_intf.instantiate factory)) ~older ~younger
  in
  let agree a b =
    match (a, b) with
    | Decision.Backoff _, Decision.Backoff _ -> true
    | a, b -> a = b
  in
  List.iteri
    (fun i (dl, dt) ->
      if not (agree dl dt) then
        Alcotest.failf "fight step %d disagrees: locator %a, tl2 %a" i
          Decision.pp dl Decision.pp dt)
    (List.combine via_locator via_tl2)

(* The TL2 backend executes verdicts at commit-time lock acquisition;
   pin the verdict -> lock-action mapping so a refactor cannot quietly
   turn "abort the enemy" into "wait for the enemy". *)
let t_tl2_action_mapping () =
  let open Tl2 in
  Alcotest.(check bool) "Abort_other steals the lock" true
    (action_of_decision Decision.Abort_other = Steal_lock);
  Alcotest.(check bool) "Abort_self releases and aborts" true
    (action_of_decision Decision.Abort_self = Release_and_abort);
  Alcotest.(check bool) "bounded Block spins" true
    (action_of_decision (Decision.Block { timeout_usec = Some 100 }) = Spin_then_retry);
  Alcotest.(check bool) "unbounded Block spins" true
    (action_of_decision (Decision.Block { timeout_usec = None }) = Spin_then_retry);
  Alcotest.(check bool) "Backoff sleeps then retries" true
    (action_of_decision (Decision.Backoff { usec = 50 }) = Backoff_then_retry)

(* ------------------------------------------------------------------ *)
(* Cm_state slab lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let t_slab_slots_scrubbed () =
  let words = 6 in
  let s = Cm_util.Cm_state.acquire ~words in
  for i = 0 to words - 1 do
    Alcotest.(check int) "fresh slot is zero" 0 (Cm_util.Cm_state.get s i);
    Cm_util.Cm_state.set s i (1000 + i)
  done;
  Cm_util.Cm_state.release s;
  (* Same stride: the freelist hands the storage back — it must carry
     nothing of the previous tenant. *)
  let s2 = Cm_util.Cm_state.acquire ~words in
  for i = 0 to words - 1 do
    Alcotest.(check int) "recycled slot is scrubbed" 0 (Cm_util.Cm_state.get s2 i)
  done;
  Cm_util.Cm_state.release s2

let t_slab_release_idempotent () =
  let s = Cm_util.Cm_state.acquire ~words:4 in
  Cm_util.Cm_state.release s;
  let after_first = Cm_util.Cm_state.live_slots () in
  (* A second release (the domain-exit hook firing after an explicit
     release) must not double-free the slot into the freelist. *)
  Cm_util.Cm_state.release s;
  Alcotest.(check int) "double release is a no-op" after_first
    (Cm_util.Cm_state.live_slots ())

let t_slab_domain_exit_releases () =
  let baseline = Cm_util.Cm_state.live_slots () in
  let d =
    Domain.spawn (fun () ->
        (* A manager instance's worth of state, tied to this domain the
           way the runtime's DLS initializer ties it. *)
        let s = Cm_util.Cm_state.acquire ~words:8 in
        Cm_util.Cm_state.set s 0 42;
        Cm_util.Cm_state.live_slots ())
  in
  let inside = Domain.join d in
  Alcotest.(check int) "slot live while the domain runs" (baseline + 1) inside;
  Alcotest.(check int) "domain exit released the slot" baseline
    (Cm_util.Cm_state.live_slots ())

let t_slab_no_cross_domain_bleed () =
  let words = 6 and rounds = 2_000 in
  let worker tag () =
    let s = Cm_util.Cm_state.acquire ~words in
    let ok = ref true in
    for _ = 1 to rounds do
      for i = 0 to words - 1 do
        Cm_util.Cm_state.set s i tag
      done;
      Domain.cpu_relax ();
      for i = 0 to words - 1 do
        if Cm_util.Cm_state.get s i <> tag then ok := false
      done
    done;
    !ok
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker (d + 1))) in
  List.iteri
    (fun d dom ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d sees only its own writes" d)
        true (Domain.join dom))
    domains

let t_table_ops () =
  let t = Cm_util.Table.create ~cap:16 in
  Alcotest.(check int) "miss returns default" (-1)
    (Cm_util.Table.find t 5 ~default:(-1));
  Cm_util.Table.put t 5 99;
  Cm_util.Table.put t 7 11;
  Alcotest.(check int) "hit" 99 (Cm_util.Table.find t 5 ~default:(-1));
  Cm_util.Table.put t 5 100;
  Alcotest.(check int) "put updates in place" 100
    (Cm_util.Table.find t 5 ~default:(-1));
  Alcotest.(check bool) "mem" true (Cm_util.Table.mem t 7);
  Cm_util.Table.reset t;
  Alcotest.(check bool) "reset forgets everything" false
    (Cm_util.Table.mem t 5);
  Cm_util.Table.put t 5 1;
  Alcotest.(check int) "usable after reset" 1
    (Cm_util.Table.find t 5 ~default:(-1))

let t_table_bounded () =
  (* Overfill with colliding keys: the bounded window must keep the
     table usable (dropped memories are benign advisory state), never
     loop or grow. *)
  let cap = 16 in
  let t = Cm_util.Table.create ~cap in
  for k = 0 to 8 * cap do
    Cm_util.Table.put t k k
  done;
  let survivors = ref 0 in
  for k = 0 to 8 * cap do
    if Cm_util.Table.find t k ~default:(-1) = k then incr survivors
  done;
  Alcotest.(check bool) "some memories survive pressure" true (!survivors > 0)

let () =
  Alcotest.run "cm"
    [
      ( "greedy",
        [
          Alcotest.test_case "the two rules" `Quick t_greedy_rules;
          Alcotest.test_case "no mutual waiting" `Quick t_greedy_no_wait_cycle;
        ] );
      ( "greedy-ft",
        [
          Alcotest.test_case "timeout doubles per enemy" `Quick t_greedy_ft_timeout_doubles;
          Alcotest.test_case "rule 1 intact" `Quick t_greedy_ft_rule1_intact;
        ] );
      ( "extremes",
        [
          Alcotest.test_case "aggressive" `Quick t_aggressive;
          Alcotest.test_case "timid" `Quick t_timid;
          Alcotest.test_case "randomized stays in range" `Quick t_randomized_range;
        ] );
      ( "polite",
        [
          Alcotest.test_case "backs off then aborts" `Quick t_polite_backs_off_then_aborts;
          Alcotest.test_case "exponential growth" `Quick t_polite_grows;
        ] );
      ("killblocked", [ Alcotest.test_case "kills blocked enemies" `Quick t_killblocked ]);
      ( "kindergarten",
        [
          Alcotest.test_case "taking turns" `Quick t_kindergarten_turns;
          Alcotest.test_case "grudges reset on commit" `Quick t_kindergarten_resets_on_commit;
        ] );
      ("timestamp", [ Alcotest.test_case "quantum waits" `Quick t_timestamp ]);
      ( "karma-family",
        [
          Alcotest.test_case "karma comparisons" `Quick t_karma;
          Alcotest.test_case "karma attempts accumulate" `Quick t_karma_attempts_accumulate;
          Alcotest.test_case "eruption pressure transfer" `Quick t_eruption_pressure;
          Alcotest.test_case "polka gap backoffs" `Quick t_polka;
        ] );
      ("queueonblock", [ Alcotest.test_case "bounded FIFO waiting" `Quick t_queue_on_block ]);
      ( "sto-adaptive",
        [
          Alcotest.test_case "timid phase concedes" `Quick t_sto_timid;
          Alcotest.test_case "threshold buys a stamp" `Quick t_sto_phase_transition;
          Alcotest.test_case "fight verdicts" `Quick t_sto_fight_verdicts;
          Alcotest.test_case "successive-abort cap bounds the wait" `Quick
            t_sto_succ_abort_cap;
        ] );
      ( "registry",
        [
          Alcotest.test_case "finds every manager" `Quick t_registry_finds_all;
          Alcotest.test_case "manager count" `Quick t_registry_count;
          Alcotest.test_case "case insensitive" `Quick t_registry_case_insensitive;
          Alcotest.test_case "unknown name" `Quick t_registry_unknown;
          Alcotest.test_case "unknown name raises" `Quick t_registry_unknown_exn;
          Alcotest.test_case "every module registered" `Quick t_registry_complete;
          Alcotest.test_case "names unique" `Quick t_registry_names_unique;
          Alcotest.test_case "paper line-up" `Quick t_paper_lineup;
        ] );
      ( "cross-backend",
        [
          Alcotest.test_case "verdicts agree locator vs tl2" `Quick t_backends_agree;
          Alcotest.test_case "sto-adaptive fight phase agrees" `Quick
            t_sto_fight_cross_backend;
          Alcotest.test_case "tl2 verdict-action mapping" `Quick t_tl2_action_mapping;
        ] );
      ( "cm-state",
        [
          Alcotest.test_case "slots scrubbed on reuse" `Quick t_slab_slots_scrubbed;
          Alcotest.test_case "release is idempotent" `Quick t_slab_release_idempotent;
          Alcotest.test_case "domain exit releases" `Quick t_slab_domain_exit_releases;
          Alcotest.test_case "no cross-domain bleed" `Quick t_slab_no_cross_domain_bleed;
          Alcotest.test_case "table round-trip and reset" `Quick t_table_ops;
          Alcotest.test_case "table bounded under pressure" `Quick t_table_bounded;
        ] );
    ]
