(** Benchmark harness: regenerates every figure and table of the paper
    plus the ablations called out in DESIGN.md.

    Sections (all printed to stdout):

    + Figures 1–4 — deterministic simulator reproduction (the primary
      one on this single-core host) and a live-STM reproduction on
      OCaml domains.
    + Section 4 table — the adversarial chain: greedy vs optimal
      makespan for growing [s].
    + Theorem 9 sweep — greedy makespan vs optimal list schedule on
      random instances.
    + Lemma 7 demo — scores of random partitions of G(m, s).
    + Ablations — fresh-vs-retained timestamps, visible-vs-invisible
      reads, greedy-vs-greedy-ft under the chain.
    + Bechamel micro-benchmarks — one [Test.make] per figure workload
      (single-thread per-operation cost) and one for the simulator.

    Flags: [--quick] shrinks every sweep (used by CI/tests);
    [--no-real] skips the live-STM sweeps; [--no-micro] skips
    Bechamel; [--json FILE] additionally writes the live-STM figure
    sweeps (throughput, p50/p99 latency, abort breakdown) as JSON —
    the perf-trajectory format committed as BENCH_*.json;
    [--trace FILE] captures tcm.trace event dumps of live-STM runs
    (writes greedy/backoff/aggressive as named sections of FILE,
    JSONL) and prints empirical pending-commit / cascade /
    wasted-work reports; [--metrics FILE]
    runs every registered manager on the list workload plus a short
    simulator sweep with tcm.metrics enabled, prints the contention
    health table and writes the snapshot + throughput windows to FILE
    (JSONL); [--seed N] seeds
    every live-STM workload (default 42) so captures reproduce;
    [--backend locator|tl2|both] selects the runtime backend(s) for
    the live-STM sections ("both" makes the JSON dump the
    locator-vs-TL2 head-to-head); [--service] runs the open-loop
    tcm.service KV sweep (bursty arrivals, Zipf keys, mixed classes)
    across the full manager registry on the selected backend(s),
    prints the per-class SLO table and adds [kind = "service"] figure
    entries to the JSON dump.  [--service] runs even under
    [--no-real]; combined with [--no-real], the JSON dump carries only
    the service figures — the smoke-test configuration.  [--obs]
    (implies [--service]) runs the sweep with tcm.obs enabled: prints
    the priced wasted-work ranking of the manager zoo, the hot-key
    tables and the ledger-vs-metrics reconciliation, and adds
    [kind = "obs"] attribution entries to the JSON dump.  [--consult]
    runs the consult-path microbench (ns + minor words per resolve for
    every manager through both backend consult entry points and the
    simulator policy table) and adds [kind = "consult"] entries to the
    JSON dump. *)

open Tcm_workload

let quick = Array.exists (( = ) "--quick") Sys.argv
let no_real = Array.exists (( = ) "--no-real") Sys.argv
let no_micro = Array.exists (( = ) "--no-micro") Sys.argv
let with_obs = Array.exists (( = ) "--obs") Sys.argv

(* --obs rides on the service sweep (that is where transaction classes
   exist), so asking for it implies the sweep. *)
let with_service = with_obs || Array.exists (( = ) "--service") Sys.argv

(* --consult: the consult-path microbench (ns + minor words per
   resolve, every manager through both backend consult entry points
   plus the simulator policy table); prints the table and adds
   [kind = "consult"] entries to the JSON dump. *)
let with_consult = Array.exists (( = ) "--consult") Sys.argv

(* Fail fast on a flag with a missing argument: silently dropping
   --json or --trace would cost a full run and write nothing. *)
let flag_value name =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then
      if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1)
      else begin
        Printf.eprintf "bench: %s requires an argument\n" name;
        exit 2
      end
    else find (i + 1)
  in
  find 1

let json_path = flag_value "--json"
let trace_path = flag_value "--trace"
let metrics_path = flag_value "--metrics"

let seed =
  match flag_value "--seed" with
  | None -> 42
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          Printf.eprintf "bench: --seed requires an integer, got %S\n" s;
          exit 2)

(* Which runtime backend(s) the live-STM sections run on.  "both"
   doubles the real-mode sweeps and gives the JSON dump one figure
   entry per (figure, backend) pair — the locator-vs-TL2 head-to-head.
   The simulator sections are unaffected (the sim models the locator
   protocol). *)
let backends =
  match flag_value "--backend" with
  | None | Some "locator" -> [ Tcm_stm.Stm.Locator ]
  | Some "tl2" -> [ Tcm_stm.Stm.Tl2_backend ]
  | Some "both" -> Tcm_stm.Stm.all_backends
  | Some b ->
      Printf.eprintf "bench: --backend must be locator, tl2 or both, got %S\n" b;
      exit 2

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.=====================================================@.";
  Format.fprintf fmt "  %s@." title;
  Format.fprintf fmt "=====================================================@.@."

(* ------------------------------------------------------------------ *)
(* Figures 1-4                                                         *)
(* ------------------------------------------------------------------ *)

let sim_threads = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 24; 32 ]
let sim_horizon = if quick then 2_000 else 6_000

let run_sim_figures () =
  section "Figures 1-4 (simulator; committed txns / 1000 ticks)";
  List.iter
    (fun spec ->
      let r =
        Figures.run ~threads_list:sim_threads ~seed
          ~mode:(Figures.Sim { horizon = sim_horizon })
          spec
      in
      Report.print_figure fmt r;
      let ws = Report.winners r in
      Format.fprintf fmt "best manager per thread count: %s@.@."
        (String.concat ", " (List.map (fun (t, n) -> Printf.sprintf "%d->%s" t n) ws)))
    Figures.all

let real_threads = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ]
let real_duration = if quick then 0.05 else 0.15

let run_real_figures () =
  List.iter
    (fun backend ->
      section
        (Printf.sprintf
           "Figures 1-4 (live STM on domains, %s backend; single-core host, %d-thread sweep)"
           (Tcm_stm.Stm.backend_name backend)
           (List.length real_threads));
      List.iter
        (fun spec ->
          let r =
            Figures.run ~threads_list:real_threads ~seed ~backend
              ~mode:(Figures.Real { duration_s = real_duration })
              spec
          in
          Report.print_figure fmt r)
        Figures.all)
    backends

(* ------------------------------------------------------------------ *)
(* Theory tables                                                       *)
(* ------------------------------------------------------------------ *)

let run_adversarial_table () =
  section "Section 4 example: greedy vs optimal on the chain instance";
  Format.fprintf fmt "%6s %16s %16s %8s %24s@." "s" "greedy makespan" "optimal makespan" "ratio"
    "theorem-9 factor s(s+1)+2";
  let granularity = 2 in
  List.iter
    (fun s ->
      let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~granularity ~s () in
      let r = Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst in
      let greedy = Option.value r.Tcm_sim.Engine.makespan ~default:(-1) in
      let optimal = granularity * Tcm_sched.Adversarial.optimal_makespan ~s in
      Format.fprintf fmt "%6d %16d %16d %8.2f %24d@." s greedy optimal
        (float_of_int greedy /. float_of_int optimal)
        (Tcm_sched.Bounds.pending_commit_factor ~s))
    (if quick then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6; 8; 12; 16 ]);
  Format.fprintf fmt
    "@.(paper: greedy needs s+1 time units where an optimal list schedule needs 2;@.";
  Format.fprintf fmt " one time unit = 2 ticks here)@.@."

let run_theorem9_sweep () =
  section "Theorem 9 sweep: greedy makespan vs optimal list schedule (random instances)";
  let trials = if quick then 20 else 200 in
  let worst = ref 0. in
  let violations = ref 0 in
  List.iter
    (fun (n, s) ->
      for seed = 1 to trials do
        let inst = Tcm_sim.Scenarios.random_instance ~seed ~n ~s () in
        let r = Tcm_sim.Engine.run_instance ~policy:(Tcm_sim.Policy.greedy ()) inst in
        let rep = Tcm_sim.Props.theorem9_check ~inst r in
        if not rep.Tcm_sim.Props.ok then incr violations;
        if rep.Tcm_sim.Props.optimal > 0 then
          worst :=
            Float.max !worst
              (float_of_int rep.Tcm_sim.Props.measured
              /. float_of_int rep.Tcm_sim.Props.optimal)
      done)
    [ (4, 2); (5, 3); (6, 4) ];
  Format.fprintf fmt "instances: %d   violations of the s(s+1)+2 bound: %d@." (3 * trials)
    !violations;
  Format.fprintf fmt "worst measured/optimal ratio: %.2f (bound at s=4: %d)@.@." !worst
    (Tcm_sched.Bounds.pending_commit_factor ~s:4)

let run_lemma7_demo () =
  section "Lemma 7: scores of random partitions of G(m, s)";
  let open Tcm_sched in
  List.iter
    (fun (m, s) ->
      let g = Graph.g_m_s ~m ~s in
      let rng = Tcm_stm.Splitmix.create ((m * 31) + s) in
      let worst = ref max_int in
      let rounds = if quick then 5 else 25 in
      for _ = 1 to rounds do
        let parts = Graph.partition_edges g s (fun _ _ -> Tcm_stm.Splitmix.int rng s) in
        let max_x2, _ = Labeling.lemma7_check ~m parts in
        worst := min !worst max_x2
      done;
      Format.fprintf fmt
        "G(%d,%d): min over %d partitions of max_i S(H_i) = %.1f (lemma: >= %d)@." m s rounds
        (float_of_int !worst /. 2.)
        m)
    [ (2, 2); (3, 2); (2, 3) ];
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  section "Ablation: timestamps retained across aborts vs refreshed (Theorem 1)";
  (* One long transaction competing with seven streams of short ones on
     a hot object.  Retention bounds the long transaction's restarts by
     the number of concurrent competitors; refreshing starves it. *)
  let horizon = if quick then 2_000 else 8_000 in
  let long_dur = 32 and short_dur = 2 in
  let streams =
    Array.init 8 (fun tid ->
        if tid = 0 then fun _ -> Some (Tcm_sim.Spec.txn ~dur:long_dur [ Tcm_sim.Spec.write ~at:0 ~obj:0 ])
        else fun _ -> Some (Tcm_sim.Spec.txn ~dur:short_dur [ Tcm_sim.Spec.write ~at:0 ~obj:0 ]))
  in
  List.iter
    (fun (label, ts) ->
      let r =
        Tcm_sim.Engine.run ~horizon ~ts_on_restart:ts ~policy:(Tcm_sim.Policy.greedy ())
          ~n_objects:1 streams
      in
      Format.fprintf fmt
        "  greedy/%-22s long-txn commits=%4d  worst-restarts-of-one-txn=%5d  total commits=%5d@."
        label
        r.Tcm_sim.Engine.per_thread_commits.(0)
        r.Tcm_sim.Engine.max_aborts_one_txn r.Tcm_sim.Engine.commits)
    [ ("retained (paper)", `Keep); ("refreshed on restart", `Fresh) ];
  Format.fprintf fmt
    "  (retention bounds any transaction's restarts by its older competitors — Theorem 1;@.";
  Format.fprintf fmt "   refreshing starves the long transaction)@.@.";

  section "Section 6: progress with halted transactions";
  (* Thread 0 halts while holding the hot object; three short
     transactions need it.  Rule 2's unbounded wait dooms pure greedy;
     greedy-ft's doubling timeout recovers, as do the timeout-based
     Scherer-Scott managers. *)
  let inst = Tcm_sim.Scenarios.halted_owner ~n:4 () in
  List.iter
    (fun p ->
      let r = Tcm_sim.Engine.run_instance ~horizon:20_000 ~policy:p inst in
      Format.fprintf fmt "  %-12s survivors-committed=%d/3 finished=%b@."
        r.Tcm_sim.Engine.policy_name r.Tcm_sim.Engine.commits r.Tcm_sim.Engine.completed)
    [
      Tcm_sim.Policy.greedy ();
      Tcm_sim.Policy.greedy_ft ();
      Tcm_sim.Policy.timestamp ();
      Tcm_sim.Policy.killblocked ();
      Tcm_sim.Policy.aggressive ();
    ];
  Format.fprintf fmt "@.";

  section "Ablation: greedy vs greedy-ft on the chain (no failures)";
  List.iter
    (fun s ->
      let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s () in
      let m p =
        let r = Tcm_sim.Engine.run_instance ~ranks ~policy:p inst in
        Option.value r.Tcm_sim.Engine.makespan ~default:(-1)
      in
      Format.fprintf fmt "  s=%2d greedy=%4d greedy-ft=%4d@." s
        (m (Tcm_sim.Policy.greedy ()))
        (m (Tcm_sim.Policy.greedy_ft ())))
    (if quick then [ 4 ] else [ 4; 8; 12 ]);
  Format.fprintf fmt "@.";

  if not no_real then begin
    section "Ablation: visible vs invisible reads (live STM, rbtree)";
    List.iter
      (fun (label, read_mode) ->
        let cfg =
          {
            Harness.default with
            structure = Harness.Rbtree_s;
            threads = 4;
            duration_s = real_duration;
            seed;
            read_mode;
          }
        in
        let o = Harness.run cfg in
        Format.fprintf fmt "  %-10s commits=%6d aborts=%5d conflicts=%5d thr=%8.0f/s@." label
          o.Harness.commits o.Harness.aborts o.Harness.conflicts o.Harness.throughput)
      [ ("visible", `Visible); ("invisible", `Invisible) ];
    Format.fprintf fmt "@."
  end

(* ------------------------------------------------------------------ *)
(* Update-rate sweep (live STM)                                        *)
(* ------------------------------------------------------------------ *)

let run_update_rate_sweep () =
  section "Ablation: update rate (live STM, rbtree, 4 domains; the paper fixes 100 %)";
  Format.fprintf fmt "%-14s %12s %12s %12s@." "manager" "0% upd" "50% upd" "100% upd";
  List.iter
    (fun manager ->
      let cell update_pct =
        let cfg =
          {
            Harness.default with
            structure = Harness.Rbtree_s;
            manager;
            threads = 4;
            duration_s = real_duration;
            seed;
            update_pct;
          }
        in
        (Harness.run cfg).Harness.throughput
      in
      Format.fprintf fmt "%-14s %12.0f %12.0f %12.0f@."
        (Tcm_stm.Cm_intf.name manager)
        (cell 0) (cell 50) (cell 100))
    Tcm_core.Registry.paper_figures;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Latency table (live STM)                                            *)
(* ------------------------------------------------------------------ *)

let run_latency_table () =
  section "Transaction latency by manager (live STM, skiplist, 4 domains)";
  Format.fprintf fmt "%-14s %10s %12s %12s %8s@." "manager" "commits/s" "p50 (us)"
    "p99 (us)" "aborts";
  List.iter
    (fun manager ->
      let cfg =
        {
          Harness.default with
          structure = Harness.Skiplist_s;
          manager;
          threads = 4;
          duration_s = real_duration;
          seed;
        }
      in
      let o = Harness.run cfg in
      Format.fprintf fmt "%-14s %10.0f %12.1f %12.1f %8d@."
        (Tcm_stm.Cm_intf.name manager)
        o.Harness.throughput o.Harness.latency_p50_us o.Harness.latency_p99_us
        o.Harness.aborts)
    (if quick then Tcm_core.Registry.paper_figures else Tcm_core.Registry.all);
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Open problems (Section 6)                                           *)
(* ------------------------------------------------------------------ *)

let run_open_problems () =
  section "Open problem: randomized priorities on the adversarial chain";
  (* The chain is crafted against arrival-order priorities.  Random
     ranks (retained across aborts) keep the pending-commit property
     but randomize which cascades are possible: the expected makespan
     drops well below s+1 while the worst case stays bounded. *)
  let s = if quick then 6 else 10 in
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s () in
  let greedy_m =
    let r = Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst in
    Option.value r.Tcm_sim.Engine.makespan ~default:(-1)
  in
  let trials = if quick then 10 else 50 in
  let rand_ms =
    List.init trials (fun seed ->
        let r =
          Tcm_sim.Engine.run_instance ~ranks
            ~policy:(Tcm_sim.Policy.randomized_greedy ~seed ())
            inst
        in
        float_of_int (Option.value r.Tcm_sim.Engine.makespan ~default:(-1)))
  in
  Format.fprintf fmt "  s=%d  greedy(arrival order) makespan=%d ticks@." s greedy_m;
  Format.fprintf fmt
    "  rand-greedy over %d seeds: mean=%.1f  median=%.1f  max=%.1f  (optimal=4)@." trials
    (Stats.mean rand_ms) (Stats.median rand_ms)
    (List.fold_left Float.max 0. rand_ms);
  Format.fprintf fmt "@.";

  section "Open problem: threads running sequences of transactions";
  (* The paper leaves multi-transaction threads unanalysed; we measure
     greedy's makespan for k transactions per thread against the
     work-conservation lower bound (total work on the hottest object). *)
  let threads = 6 and k = if quick then 5 else 20 in
  let dur = 4 in
  let streams =
    Array.init threads (fun tid ->
        fun idx ->
         if idx >= k then None
         else
           (* Alternate between a hot object and a private one. *)
           let obj = if (tid + idx) mod 2 = 0 then 0 else 1 + tid in
           Some (Tcm_sim.Spec.txn ~dur [ Tcm_sim.Spec.write ~at:0 ~obj ]))
  in
  List.iter
    (fun (p : Tcm_sim.Policy.t) ->
      let r = Tcm_sim.Engine.run ~policy:p ~n_objects:(threads + 1) streams in
      let hot_work = threads * k / 2 * dur in
      match r.Tcm_sim.Engine.makespan with
      | Some m ->
          Format.fprintf fmt "  %-12s makespan=%5d ticks  hot-object lower bound=%d  ratio=%.2f@."
            r.Tcm_sim.Engine.policy_name m hot_work
            (float_of_int m /. float_of_int hot_work)
      | None -> Format.fprintf fmt "  %-12s did not finish@." r.Tcm_sim.Engine.policy_name)
    [ Tcm_sim.Policy.greedy (); Tcm_sim.Policy.karma (); Tcm_sim.Policy.aggressive () ];
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Open-loop service sweep (--service)                                 *)
(* ------------------------------------------------------------------ *)

(* Bursty on/off arrivals: the base rate is comfortably sustainable on
   this single-core host, the burst overdrives the admission queue so
   overload shows up as queueing delay and sheds, not as a slower
   generator. *)
let service_process =
  Tcm_service.Arrival.Bursty
    {
      base_rate = 1_200.;
      burst_rate = 4_000.;
      period_s = (if quick then 0.06 else 0.2);
      burst_frac = 0.25;
    }

let service_config ~backend ~manager =
  {
    Tcm_service.Service.default with
    backend;
    manager;
    duration_s = (if quick then 0.12 else 0.4);
    process = service_process;
    queue_cap = 256;
    n_keys = (if quick then 2_048 else 8_192);
    seed;
  }

let service_summaries : Tcm_service.Service.summary list ref = ref []

let obs_figures : (Tcm_obs.Ledger.row * Tcm_obs.Sketch.entry list) list ref =
  ref []

(* Conflict attribution for the sweep that just ran: the priced
   wasted-work ranking of the manager zoo, the hot-key tables, and the
   ledger-vs-metrics reconciliation (both layers were enabled over
   exactly the sweep, so counts and wait costs must agree). *)
let report_obs snap =
  let rows =
    List.sort
      (fun a b -> compare (Tcm_obs.Ledger.price b) (Tcm_obs.Ledger.price a))
      (Tcm_obs.Ledger.rows ())
  in
  let hot = Tcm_obs.Hot.snapshot () in
  let hot_for (r : Tcm_obs.Ledger.row) =
    match
      List.find_opt
        (fun ((f : Tcm_obs.Hot.family), _) ->
          f.backend = r.Tcm_obs.Ledger.backend
          && f.manager = r.Tcm_obs.Ledger.manager
          && f.runtime = r.Tcm_obs.Ledger.runtime)
        hot
    with
    | Some (_, entries) -> entries
    | None -> []
  in
  Format.fprintf fmt
    "conflict attribution (rows ranked by price = wasted opens + wait ticks)@.";
  Tcm_obs.Ledger.pp fmt rows;
  Tcm_obs.Hot.pp fmt (Tcm_obs.Hot.top ());
  let ok, msgs = Tcm_obs.Ledger.reconcile snap in
  if ok then Format.fprintf fmt "ledger/metrics reconcile: OK@.@."
  else begin
    Format.fprintf fmt "ledger/metrics reconcile: MISMATCH@.";
    List.iter (fun m -> Format.fprintf fmt "  %s@." m) msgs;
    Format.fprintf fmt "@."
  end;
  obs_figures := List.map (fun r -> (r, hot_for r)) rows

let run_service_sweep () =
  section
    (Printf.sprintf
       "tcm.service: open-loop KV sweep (%s; Zipf theta=%.2f; %s)"
       (Tcm_service.Arrival.describe service_process)
       Tcm_service.Service.default.Tcm_service.Service.theta
       (String.concat "+" (List.map Tcm_stm.Stm.backend_name backends)));
  (* Metrics on for the whole sweep so the per-class SLO table below
     covers every (backend, manager, class) triple from one snapshot. *)
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  if with_obs then begin
    Tcm_obs.reset ();
    Tcm_obs.enable ()
  end;
  let summaries =
    List.concat_map
      (fun backend ->
        List.map
          (fun manager ->
            let s =
              Tcm_service.Service.run (service_config ~backend ~manager)
            in
            Format.fprintf fmt "%a@." Tcm_service.Service.pp_summary s;
            s)
          Tcm_core.Registry.all)
      backends
  in
  (* The open-loop sweep above only contends when worker domains truly
     overlap; on a single-core host it prices clean runs.  The
     deterministic simulator contends by construction, so with tcm.obs
     on we also sweep the whole policy zoo over the fig1 list model —
     the priced ranking in EXPERIMENTS.md reads from the resulting
     runtime=sim ledger rows (same tick currency, same reconcile). *)
  if with_obs then begin
    Format.fprintf fmt
      "(tcm.obs: pricing the policy zoo on the sim list model, %d threads, \
       horizon %d)@.@."
      16 sim_horizon;
    List.iter
      (fun policy ->
        ignore
          (Sim_load.run ~horizon:sim_horizon ~seed ~threads:16 ~policy
             Sim_load.list_model))
      (Tcm_sim.Policy.all ~seed ())
  end;
  Tcm_metrics.disable ();
  let snap = Tcm_metrics.snapshot () in
  Tcm_metrics.Health.pp_slo fmt (Tcm_metrics.Health.slo_rows snap);
  Format.fprintf fmt "@.";
  if with_obs then begin
    report_obs snap;
    Tcm_obs.disable ()
  end;
  service_summaries := summaries

(* ------------------------------------------------------------------ *)
(* Offered-load rate ladder (rides on --service)                       *)
(* ------------------------------------------------------------------ *)

let ladder_curves : Tcm_service.Ladder.curve list ref = ref []

(* Saturation sweep: fixed-rate Poisson rungs rising past the knee on
   every backend × manager pair.  Quick mode runs the 3-rung
   mini-ladder on greedy only (the smoke configuration); full mode
   runs the 6-rung ladder over the paper's five managers. *)
let run_rate_ladder () =
  let rates =
    if quick then Tcm_service.Ladder.quick_rates
    else Tcm_service.Ladder.default_rates
  in
  let managers =
    if quick then [ Tcm_core.Registry.find_exn "greedy" ]
    else Tcm_core.Registry.paper_figures
  in
  section
    (Printf.sprintf
       "tcm.service: offered-load rate ladder (%d rungs, %.0f -> %.0f rps; \
        knee = first rung under %.0f%% attainment)"
       (Array.length rates) rates.(0)
       rates.(Array.length rates - 1)
       (100. *. Tcm_service.Ladder.knee_threshold));
  Format.fprintf fmt "%-8s %-14s %10s %12s %12s %12s %8s %8s@." "backend"
    "manager" "rps" "attainment" "p50 (us)" "p99 (us)" "dropped" "spills";
  let curves =
    List.concat_map
      (fun backend ->
        List.map
          (fun manager ->
            let cfg = service_config ~backend ~manager in
            let c = Tcm_service.Ladder.run ~rates cfg in
            List.iter
              (fun (r : Tcm_service.Ladder.rung) ->
                let s = r.Tcm_service.Ladder.summary in
                Format.fprintf fmt "%-8s %-14s %10.0f %11.1f%% %12.1f %12.1f %8d %8d@."
                  c.Tcm_service.Ladder.backend c.Tcm_service.Ladder.manager
                  r.Tcm_service.Ladder.offered_rps
                  (100. *. Tcm_service.Ladder.attainment s)
                  s.Tcm_service.Service.p50_us s.Tcm_service.Service.p99_us
                  s.Tcm_service.Service.dropped s.Tcm_service.Service.queue_spills)
              c.Tcm_service.Ladder.rungs;
            (match c.Tcm_service.Ladder.knee_rps with
            | Some r ->
                Format.fprintf fmt "  -> knee: %s/%s saturates at %.0f rps@."
                  c.Tcm_service.Ladder.backend c.Tcm_service.Ladder.manager r
            | None ->
                Format.fprintf fmt
                  "  -> no knee: %s/%s held its SLOs on every rung@."
                  c.Tcm_service.Ladder.backend c.Tcm_service.Ladder.manager);
            c)
          managers)
      backends
  in
  Format.fprintf fmt "@.";
  ladder_curves := curves

(* ------------------------------------------------------------------ *)
(* Consult-path microbench (--consult)                                 *)
(* ------------------------------------------------------------------ *)

let consult_figures : Consult_cost.row list ref = ref []

let run_consult_probe () =
  section "Consult-path cost (ns / minor words per resolve)";
  let iters = if quick then 50_000 else 200_000 in
  let rows = Consult_cost.measure_all ~iters () in
  Format.fprintf fmt "  %-10s %-14s %12s %14s@." "backend" "manager" "ns"
    "minor words";
  List.iter
    (fun (r : Consult_cost.row) ->
      Format.fprintf fmt "  %-10s %-14s %12.1f %14.4f@." r.Consult_cost.backend
        r.Consult_cost.manager r.Consult_cost.ns_per_resolve
        r.Consult_cost.minor_words_per_resolve)
    rows;
  (match Consult_cost.check rows with
  | [] -> Format.fprintf fmt "  (all managers within the @cm-smoke gates)@."
  | violations ->
      List.iter
        (fun v -> Format.fprintf fmt "  GATE VIOLATION: %s@." v)
        violations);
  Format.fprintf fmt "@.";
  consult_figures := rows

(* ------------------------------------------------------------------ *)
(* JSON dump (--json FILE)                                             *)
(* ------------------------------------------------------------------ *)

let run_json_dump path =
  section (Printf.sprintf "JSON dump (live-STM detailed sweeps) -> %s" path);
  (* Open the output before the sweeps so a bad path fails fast, not
     after minutes of measurement. *)
  let oc = open_out path in
  (* Under --no-real the closed-loop sweeps and the read-mode A/B are
     skipped: the dump then carries only the service figures — the
     fast @service-smoke configuration. *)
  let figures =
    if no_real then []
    else
      List.concat_map
        (fun backend ->
          List.map
            (fun spec ->
              ( spec,
                Tcm_stm.Stm.backend_name backend,
                Figures.run_real_detailed ~threads_list:real_threads ~seed ~backend
                  ~duration_s:real_duration spec ))
            Figures.all)
        backends
  in
  (* Visible-vs-invisible A/B on the read-heaviest structure, so the
     committed trajectory also tracks per-read validation cost. *)
  let extra =
    if no_real then []
    else
      [
        ( "read_modes_rbtree_2t",
          Report.Json.Obj
            (List.map
               (fun (label, read_mode) ->
                 let cfg =
                   {
                     Harness.default with
                     structure = Harness.Rbtree_s;
                     threads = 2;
                     duration_s = real_duration;
                     seed;
                     read_mode;
                   }
                 in
                 (label, Report.json_of_outcome (Harness.run cfg)))
               [ ("visible", `Visible); ("invisible", `Invisible) ]) );
      ]
  in
  let doc =
    Report.bench_json ~extra ~service_figures:!service_summaries
      ~obs_figures:!obs_figures ~consult_figures:!consult_figures
      ~ladder_figures:!ladder_curves
      ~mode:(if quick then "quick" else "full")
      ~duration_s:real_duration ~seed figures
  in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Format.fprintf fmt "wrote %s (%d bytes)@.@." path (String.length doc + 1)

(* ------------------------------------------------------------------ *)
(* Event traces (--trace FILE)                                         *)
(* ------------------------------------------------------------------ *)

let run_trace_capture path =
  section (Printf.sprintf "Event traces (tcm.trace) -> %s" path);
  (* Live STM: the same list workload under three managers.  Visible
     reads only — invisible validation lets the oldest transaction
     self-abort, which forfeits the pending-commit property by design. *)
  let capture manager =
    Tcm_trace.Sink.start ();
    let cfg =
      {
        Harness.default with
        structure = Harness.List_s;
        manager;
        threads = 4;
        duration_s = real_duration;
        seed;
      }
    in
    ignore (Harness.run cfg);
    Tcm_trace.Sink.stop ();
    (Tcm_trace.Sink.collect (), Tcm_trace.Sink.drops ())
  in
  Format.fprintf fmt "%-12s %8s %6s %9s %10s %11s %11s %13s@." "manager" "events"
    "drops" "conflicts" "violations" "undecidable" "max-cascade" "wasted-opens";
  (* All three managers land in one file as named sections, so the
     analyzer's per-manager breakdown (tcm_trace.exe stats) has
     something to chew on. *)
  let oc = open_out path in
  List.iter
    (fun name ->
      let manager = Tcm_core.Registry.find_exn name in
      let trace, drops = capture manager in
      let pc = Tcm_trace.Analysis.pending_commit trace in
      let ca = Tcm_trace.Analysis.cascades trace in
      let wa = Tcm_trace.Analysis.wasted_work trace in
      Format.fprintf fmt "%-12s %8d %6d %9d %10d %11d %11d %6d/%-6d@." name
        (Array.length trace) drops pc.Tcm_trace.Analysis.conflicts
        pc.Tcm_trace.Analysis.violations pc.Tcm_trace.Analysis.undecidable
        ca.Tcm_trace.Analysis.max_cascade wa.Tcm_trace.Analysis.opens_wasted
        wa.Tcm_trace.Analysis.opens_total;
      Tcm_trace.Export.output_jsonl ~drops ~manager:name oc trace)
    [ "greedy"; "backoff"; "aggressive" ];
  close_out oc;
  Format.fprintf fmt
    "(3 manager sections -> %s; analyze with bin/tcm_trace.exe)@.@." path;

  (* Deterministic simulator captures: greedy on the Section 4 chain
     holds pending-commit and the Theorem 9 bound; aggressive on a
     symmetric duel livelocks and violates it at every decided conflict. *)
  let s = 6 in
  let granularity = 2 in
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~granularity ~s () in
  Tcm_trace.Sink.start ();
  ignore (Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst);
  Tcm_trace.Sink.stop ();
  let chain = Tcm_trace.Sink.collect () in
  let pc = Tcm_trace.Analysis.pending_commit chain in
  let mk =
    Tcm_trace.Analysis.makespan_report
      ~optimal:(granularity * Tcm_sched.Adversarial.optimal_makespan ~s)
      ~bound_factor:(Tcm_sched.Bounds.pending_commit_factor ~s)
      chain
  in
  Format.fprintf fmt
    "sim chain (greedy, s=%d): conflicts=%d violations=%d makespan=%d optimal=%d \
     ratio=%.2f bound=%d -> %s@."
    s pc.Tcm_trace.Analysis.conflicts pc.Tcm_trace.Analysis.violations
    mk.Tcm_trace.Analysis.measured mk.Tcm_trace.Analysis.optimal
    mk.Tcm_trace.Analysis.ratio mk.Tcm_trace.Analysis.bound_factor
    (if mk.Tcm_trace.Analysis.within_bound then "within" else "EXCEEDED");
  Tcm_trace.Sink.start ();
  let duel =
    Array.init 2 (fun _ ->
        fun _ -> Some (Tcm_sim.Spec.txn ~dur:3 [ Tcm_sim.Spec.write ~at:0 ~obj:0 ]))
  in
  ignore
    (Tcm_sim.Engine.run ~horizon:60 ~policy:(Tcm_sim.Policy.aggressive ())
       ~n_objects:1 duel);
  Tcm_trace.Sink.stop ();
  let duel_tr = Tcm_trace.Sink.collect () in
  let pc2 = Tcm_trace.Analysis.pending_commit duel_tr in
  Format.fprintf fmt
    "sim duel (aggressive livelock): conflicts=%d violations=%d (expected: a \
     non-pending-commit manager)@.@."
    pc2.Tcm_trace.Analysis.conflicts pc2.Tcm_trace.Analysis.violations

(* ------------------------------------------------------------------ *)
(* Metrics capture (--metrics FILE)                                    *)
(* ------------------------------------------------------------------ *)

let run_metrics_capture path =
  section (Printf.sprintf "Metrics capture (tcm.metrics) -> %s" path);
  Tcm_metrics.reset ();
  Tcm_metrics.enable ();
  let sampler = Tcm_metrics.Sampler.create ~period_s:0.02 () in
  Tcm_metrics.Sampler.force sampler;
  (* Live STM: every registered manager on the list workload, so the
     health report covers the whole registry from one capture. *)
  List.iter
    (fun manager ->
      let cfg =
        {
          Harness.default with
          structure = Harness.List_s;
          manager;
          threads = 2;
          duration_s = real_duration;
          seed;
        }
      in
      ignore (Harness.run ~poll:(fun () -> Tcm_metrics.Sampler.poll sampler) cfg))
    Tcm_core.Registry.all;
  (* Simulator: the same instrument names under runtime="sim" (ticks),
     so live and simulated behaviour line up in one snapshot. *)
  List.iter
    (fun (p : Tcm_sim.Policy.t) ->
      let streams =
        Array.init 4 (fun tid ->
            fun idx ->
             if idx >= 20 then None
             else
               let obj = if (tid + idx) mod 2 = 0 then 0 else 1 + tid in
               Some (Tcm_sim.Spec.txn ~dur:3 [ Tcm_sim.Spec.write ~at:0 ~obj ]))
      in
      ignore (Tcm_sim.Engine.run ~horizon:5_000 ~policy:p ~n_objects:5 streams))
    [ Tcm_sim.Policy.greedy (); Tcm_sim.Policy.karma (); Tcm_sim.Policy.aggressive () ];
  Tcm_metrics.Sampler.force sampler;
  Tcm_metrics.disable ();
  let snap = Tcm_metrics.snapshot () in
  let windows = Tcm_metrics.Sampler.windows sampler in
  Tcm_metrics.Health.pp fmt (Tcm_metrics.Health.rows snap);
  Tcm_metrics.Export.write_jsonl ~windows path snap;
  Format.fprintf fmt "@.wrote %s (%d series, %d windows; analyze with bin/tcm_metrics.exe)@.@."
    path
    (List.length snap.Tcm_metrics.Snapshot.entries)
    (List.length windows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let op_test name structure =
    let cfg = { Harness.default with structure; threads = 1 } in
    let rt = Tcm_stm.Stm.create cfg.Harness.manager in
    let ops = Harness.make_ops structure in
    let rng = Tcm_stm.Splitmix.create 7 in
    for k = 0 to 127 do
      ignore
        (Tcm_stm.Stm.atomically rt (fun tx ->
             ops.Tcm_structures.Intset.insert tx ~key:(k * 2) ~r:k))
    done;
    Test.make ~name
      (Staged.stage (fun () ->
           let key = Tcm_stm.Splitmix.int rng 256 in
           let r = Tcm_stm.Splitmix.int rng max_int in
           ignore
             (Tcm_stm.Stm.atomically rt (fun tx ->
                  if Tcm_stm.Splitmix.bool rng then
                    ops.Tcm_structures.Intset.insert tx ~key ~r
                  else ops.Tcm_structures.Intset.remove tx ~key ~r))))
  in
  let sim_test =
    Test.make ~name:"table:sec4-chain-sim"
      (Staged.stage (fun () ->
           let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s:8 () in
           ignore (Tcm_sim.Engine.run_instance ~ranks ~policy:(Tcm_sim.Policy.greedy ()) inst)))
  in
  Test.make_grouped ~name:"tcm"
    [
      op_test "fig1:list-op" Harness.List_s;
      op_test "fig2:skiplist-op" Harness.Skiplist_s;
      op_test "fig3:rbtree-op" Harness.Rbtree_s;
      op_test "fig4:rbforest-op" Harness.Rbforest_s;
      sim_test;
    ]

let run_micro () =
  section "Bechamel micro-benchmarks (ns per op, single thread, greedy)";
  let open Bechamel in
  let quota = if quick then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols_result) ->
         let est =
           match Analyze.OLS.estimates ols_result with
           | Some (e :: _) -> Printf.sprintf "%12.1f ns/op" e
           | _ -> "n/a"
         in
         Format.fprintf fmt "  %-28s %s@." name est);
  Format.fprintf fmt "@."

let () =
  Format.fprintf fmt "tcm benchmark harness (%s mode)@." (if quick then "quick" else "full");
  run_sim_figures ();
  if not no_real then run_real_figures ();
  run_adversarial_table ();
  run_theorem9_sweep ();
  run_lemma7_demo ();
  run_ablations ();
  run_open_problems ();
  if not no_real then begin
    run_update_rate_sweep ();
    run_latency_table ()
  end;
  if with_service then begin
    run_service_sweep ();
    run_rate_ladder ()
  end;
  if with_consult then run_consult_probe ();
  Option.iter run_trace_capture trace_path;
  Option.iter run_metrics_capture metrics_path;
  if not no_micro then run_micro ();
  Option.iter run_json_dump json_path;
  Format.fprintf fmt "done.@."
