(** Focused per-read cost probe for the two read modes.

    Times transactions that read [k] distinct tvars ([k] on the command
    line, default 64) and transactions doing one insert/remove on a
    [Tlist] prefilled to the same size, in both read modes.  This is
    the A/B instrument for the read-validation hot path: invisible-mode
    full revalidation costs O(k^2) per transaction, incremental
    validation O(k).

    Usage: read_cost.exe [k] [iters] *)

open Tcm_stm

let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64
let iters = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 200_000

let time_per_txn f =
  (* One warmup pass, then the measured pass. *)
  f (iters / 10);
  let t0 = Unix.gettimeofday () in
  f iters;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

let sink = ref 0

let bench_reads read_mode =
  let config = { Runtime.default_config with read_mode } in
  let rt = Stm.create ~config (module Tcm_core.Greedy) in
  let vars = Array.init k (fun i -> Tvar.make i) in
  time_per_txn (fun n ->
      for _ = 1 to n do
        sink :=
          Stm.atomically rt (fun tx ->
              let acc = ref 0 in
              Array.iter (fun v -> acc := !acc + Stm.read tx v) vars;
              !acc)
      done)

let bench_list read_mode =
  let config = { Runtime.default_config with read_mode } in
  let rt = Stm.create ~config (module Tcm_core.Greedy) in
  let l = Tcm_structures.Tlist.create () in
  for i = 0 to k - 1 do
    ignore (Stm.atomically rt (fun tx -> Tcm_structures.Tlist.insert tx l (i * 2)))
  done;
  let rng = Splitmix.create 11 in
  time_per_txn (fun n ->
      for _ = 1 to n do
        let key = Splitmix.int rng (2 * k) in
        ignore
          (Stm.atomically rt (fun tx ->
               if Splitmix.bool rng then Tcm_structures.Tlist.insert tx l key
               else Tcm_structures.Tlist.remove tx l key))
      done)

let () =
  Printf.printf "read-cost probe: k=%d iters=%d (ns per txn)\n%!" k iters;
  List.iter
    (fun (label, mode) ->
      Printf.printf "  %-10s %d-tvar read txn: %10.1f   list update (%d elems): %10.1f\n%!"
        label k (bench_reads mode) k (bench_list mode))
    [ ("visible", `Visible); ("invisible", `Invisible) ]
