(** Focused per-read cost probe for the two read modes.

    Times transactions that read [k] distinct tvars ([k] on the command
    line, default 64) and transactions doing one insert/remove on a
    [Tlist] prefilled to the same size, in both read modes.  This is
    the A/B instrument for the read-validation hot path: invisible-mode
    full revalidation costs O(k^2) per transaction, incremental
    validation O(k).

    Usage: read_cost.exe [k] [iters] [--backend locator|tl2]

    On TL2 (clock-validated invisible reads only) a single row is
    printed per workload. *)

open Tcm_stm

(* Positional ints first, then flags — keep the historical CLI. *)
let positionals =
  let rec go i acc =
    if i >= Array.length Sys.argv then List.rev acc
    else if Sys.argv.(i) = "--backend" then go (i + 2) acc
    else go (i + 1) (Sys.argv.(i) :: acc)
  in
  go 1 []

let k = match positionals with x :: _ -> int_of_string x | [] -> 64
let iters = match positionals with _ :: x :: _ -> int_of_string x | _ -> 200_000

let backend =
  let rec find i =
    if i >= Array.length Sys.argv then Stm.Locator
    else if Sys.argv.(i) = "--backend" then
      if i + 1 >= Array.length Sys.argv then begin
        Printf.eprintf "read_cost: --backend requires an argument\n";
        exit 2
      end
      else
        match Stm.backend_of_name Sys.argv.(i + 1) with
        | Some b -> b
        | None ->
            Printf.eprintf "read_cost: unknown backend %S (locator or tl2)\n"
              Sys.argv.(i + 1);
            exit 2
    else find (i + 1)
  in
  find 1

let time_per_txn f =
  (* One warmup pass, then the measured pass. *)
  f (iters / 10);
  let t0 = Unix.gettimeofday () in
  f iters;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

let sink = ref 0

let bench_reads read_mode =
  let config = { Runtime.default_config with read_mode } in
  let rt = Stm.create ~config ~backend (module Tcm_core.Greedy) in
  let vars = Array.init k (fun i -> Tvar.make i) in
  time_per_txn (fun n ->
      for _ = 1 to n do
        sink :=
          Stm.atomically rt (fun tx ->
              let acc = ref 0 in
              Array.iter (fun v -> acc := !acc + Stm.read tx v) vars;
              !acc)
      done)

let bench_list read_mode =
  let config = { Runtime.default_config with read_mode } in
  let rt = Stm.create ~config ~backend (module Tcm_core.Greedy) in
  let l = Tcm_structures.Tlist.create () in
  for i = 0 to k - 1 do
    ignore (Stm.atomically rt (fun tx -> Tcm_structures.Tlist.insert tx l (i * 2)))
  done;
  let rng = Splitmix.create 11 in
  time_per_txn (fun n ->
      for _ = 1 to n do
        let key = Splitmix.int rng (2 * k) in
        ignore
          (Stm.atomically rt (fun tx ->
               if Splitmix.bool rng then Tcm_structures.Tlist.insert tx l key
               else Tcm_structures.Tlist.remove tx l key))
      done)

let () =
  Printf.printf "read-cost probe: backend=%s k=%d iters=%d (ns per txn)\n%!"
    (Stm.backend_name backend) k iters;
  let modes =
    match backend with
    | Stm.Locator -> [ ("visible", `Visible); ("invisible", `Invisible) ]
    | Stm.Tl2_backend -> [ ("tl2", `Visible) ]
  in
  List.iter
    (fun (label, mode) ->
      Printf.printf "  %-10s %d-tvar read txn: %10.1f   list update (%d elems): %10.1f\n%!"
        label k (bench_reads mode) k (bench_list mode))
    modes
