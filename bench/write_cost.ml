(** Write/commit-path cost probe: ns per transaction and GC words per
    commit for small-write-set transactions.

    The A/B instrument for the allocation-free write path: each row
    times transactions that write [w] distinct tvars (plus a read-only
    row exercising the read-only commit fast path), in both read
    modes, and reports the per-commit minor- and major-heap allocation
    measured from [Gc.quick_stat] deltas around the timed loop.  All
    loops run on one domain, so the single-domain GC counters are
    exact.

    Usage: write_cost.exe [iters] [--check]

    [--check] is the @write-smoke sanity bound: exit non-zero when the
    steady-state write path allocates more minor words per commit than
    the budgeted ceiling (catching an accidental reintroduction of
    per-open allocation). *)

open Tcm_stm

let iters =
  let rec find i =
    if i >= Array.length Sys.argv then 100_000
    else
      match int_of_string_opt Sys.argv.(i) with Some n -> n | None -> find (i + 1)
  in
  find 1

let checking = Array.exists (( = ) "--check") Sys.argv

type row = {
  label : string;
  ns_per_txn : float;
  minor_per_commit : float;
  major_per_commit : float;
}

(* Warm up (fills locator pools and grows scratch arrays to steady
   state), then measure one timed pass bracketed by [Gc.quick_stat]. *)
let measure label f =
  f (max 1 (iters / 10));
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f iters;
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let per v0 v1 = (v1 -. v0) /. float_of_int iters in
  {
    label;
    ns_per_txn = (t1 -. t0) /. float_of_int iters *. 1e9;
    minor_per_commit = per g0.Gc.minor_words g1.Gc.minor_words;
    major_per_commit = per g0.Gc.major_words g1.Gc.major_words;
  }

let sink = ref 0

let rt_of read_mode =
  let config = { Runtime.default_config with read_mode } in
  Stm.create ~config (module Tcm_core.Greedy)

(* [w] writes to [w] distinct tvars per transaction. *)
let bench_writes read_mode w =
  let rt = rt_of read_mode in
  let vars = Array.init w (fun i -> Tvar.make i) in
  let body tx =
    for i = 0 to w - 1 do
      Stm.write tx vars.(i) i
    done
  in
  measure
    (Printf.sprintf "%-9s w=%-3d write txn" (match read_mode with `Visible -> "visible" | `Invisible -> "invisible") w)
    (fun n ->
      for _ = 1 to n do
        Stm.atomically rt body
      done)

(* Read-modify-write of [w] tvars (the counter pattern). *)
let bench_rmw read_mode w =
  let rt = rt_of read_mode in
  let vars = Array.init w (fun i -> Tvar.make i) in
  let body tx =
    for i = 0 to w - 1 do
      Stm.write tx vars.(i) (Stm.read_for_write tx vars.(i) + 1)
    done
  in
  measure
    (Printf.sprintf "%-9s w=%-3d rmw txn" (match read_mode with `Visible -> "visible" | `Invisible -> "invisible") w)
    (fun n ->
      for _ = 1 to n do
        Stm.atomically rt body
      done)

(* Read-only transaction over [k] tvars: the commit fast path. *)
let bench_read_only read_mode k =
  let rt = rt_of read_mode in
  let vars = Array.init k (fun i -> Tvar.make i) in
  let body tx =
    let acc = ref 0 in
    for i = 0 to k - 1 do
      acc := !acc + Stm.read tx vars.(i)
    done;
    !acc
  in
  measure
    (Printf.sprintf "%-9s k=%-3d read-only txn" (match read_mode with `Visible -> "visible" | `Invisible -> "invisible") k)
    (fun n ->
      for _ = 1 to n do
        sink := Stm.atomically rt body
      done)

let () =
  Printf.printf "write-cost probe: iters=%d (per-txn figures; single domain)\n%!" iters;
  let rows =
    [
      bench_writes `Visible 1;
      bench_writes `Visible 4;
      bench_writes `Visible 16;
      bench_rmw `Visible 4;
      bench_read_only `Visible 8;
      bench_writes `Invisible 1;
      bench_writes `Invisible 4;
      bench_rmw `Invisible 4;
      bench_read_only `Invisible 8;
    ]
  in
  Printf.printf "  %-30s %12s %14s %14s\n" "workload" "ns/txn" "minor-w/txn" "major-w/txn";
  List.iter
    (fun r ->
      Printf.printf "  %-30s %12.1f %14.2f %14.2f\n" r.label r.ns_per_txn
        r.minor_per_commit r.major_per_commit)
    rows;
  if checking then begin
    (* Sanity ceiling for @write-smoke: the steady-state visible-mode
       4-write transaction must stay well under the pre-pooling cost
       (~138 minor words per commit; pooled it measures ~14.4 — the
       fixed per-attempt overhead, independent of write-set size).
       Generous enough to be scheduling-noise-proof, tight enough to
       catch a reintroduced per-open allocation (each write used to
       cost ~25 words). *)
    let budget = 24.0 in
    let w4 = List.nth rows 1 in
    if w4.minor_per_commit > budget then begin
      Printf.eprintf
        "write-smoke FAIL: %s allocates %.2f minor words per commit (budget %.1f)\n"
        w4.label w4.minor_per_commit budget;
      exit 1
    end;
    Printf.printf "write-smoke OK: %.2f minor words per commit (budget %.1f)\n"
      w4.minor_per_commit budget
  end
