(** Write/commit-path cost probe: ns per transaction and GC words per
    commit for small-write-set transactions.

    The A/B instrument for the allocation-free write path: each row
    times transactions that write [w] distinct tvars (plus a read-only
    row exercising the read-only commit fast path), and reports the
    per-commit minor- and major-heap allocation measured from
    [Gc.quick_stat] deltas around the timed loop.  All loops run on
    one domain, so the single-domain GC counters are exact.

    On the locator backend the rows cover both read modes; on TL2
    (always invisible, clock-validated) there is a single mode.

    Usage: write_cost.exe [iters] [--backend locator|tl2] [--check]

    [--check] is the @write-smoke / @tl2-smoke sanity bound.  On the
    locator backend it enforces the absolute minor-words budget for
    the steady-state 4-write transaction (catching an accidental
    reintroduction of per-open allocation).  On TL2 it additionally
    runs the same workload on the locator backend and fails if the
    TL2 uncontended commit allocates more minor words per commit than
    the locator's — the PR-4 allocation discipline must carry over to
    the second backend, not just to the first. *)

open Tcm_stm

let iters =
  let rec find i =
    if i >= Array.length Sys.argv then 100_000
    else
      match int_of_string_opt Sys.argv.(i) with Some n -> n | None -> find (i + 1)
  in
  find 1

let checking = Array.exists (( = ) "--check") Sys.argv

let backend =
  let rec find i =
    if i >= Array.length Sys.argv then Stm.Locator
    else if Sys.argv.(i) = "--backend" then
      if i + 1 >= Array.length Sys.argv then begin
        Printf.eprintf "write_cost: --backend requires an argument\n";
        exit 2
      end
      else
        match Stm.backend_of_name Sys.argv.(i + 1) with
        | Some b -> b
        | None ->
            Printf.eprintf "write_cost: unknown backend %S (locator or tl2)\n"
              Sys.argv.(i + 1);
            exit 2
    else find (i + 1)
  in
  find 1

type row = {
  label : string;
  ns_per_txn : float;
  minor_per_commit : float;
  major_per_commit : float;
}

(* Warm up (fills locator pools / scratch logs to steady state), then
   measure one timed pass bracketed by [Gc.quick_stat]. *)
let measure label f =
  f (max 1 (iters / 10));
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f iters;
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let per v0 v1 = (v1 -. v0) /. float_of_int iters in
  {
    label;
    ns_per_txn = (t1 -. t0) /. float_of_int iters *. 1e9;
    minor_per_commit = per g0.Gc.minor_words g1.Gc.minor_words;
    major_per_commit = per g0.Gc.major_words g1.Gc.major_words;
  }

let sink = ref 0

let rt_of ~backend read_mode =
  let config = { Runtime.default_config with read_mode } in
  Stm.create ~config ~backend (module Tcm_core.Greedy)

let mode_label ~backend read_mode =
  match backend with
  | Stm.Tl2_backend -> "tl2"
  | Stm.Locator -> (
      match read_mode with `Visible -> "visible" | `Invisible -> "invisible")

(* [w] writes to [w] distinct tvars per transaction. *)
let bench_writes ~backend read_mode w =
  let rt = rt_of ~backend read_mode in
  let vars = Array.init w (fun i -> Tvar.make i) in
  let body tx =
    for i = 0 to w - 1 do
      Stm.write tx vars.(i) i
    done
  in
  measure
    (Printf.sprintf "%-9s w=%-3d write txn" (mode_label ~backend read_mode) w)
    (fun n ->
      for _ = 1 to n do
        Stm.atomically rt body
      done)

(* Read-modify-write of [w] tvars (the counter pattern). *)
let bench_rmw ~backend read_mode w =
  let rt = rt_of ~backend read_mode in
  let vars = Array.init w (fun i -> Tvar.make i) in
  let body tx =
    for i = 0 to w - 1 do
      Stm.write tx vars.(i) (Stm.read_for_write tx vars.(i) + 1)
    done
  in
  measure
    (Printf.sprintf "%-9s w=%-3d rmw txn" (mode_label ~backend read_mode) w)
    (fun n ->
      for _ = 1 to n do
        Stm.atomically rt body
      done)

(* Read-only transaction over [k] tvars: the commit fast path. *)
let bench_read_only ~backend read_mode k =
  let rt = rt_of ~backend read_mode in
  let vars = Array.init k (fun i -> Tvar.make i) in
  let body tx =
    let acc = ref 0 in
    for i = 0 to k - 1 do
      acc := !acc + Stm.read tx vars.(i)
    done;
    !acc
  in
  measure
    (Printf.sprintf "%-9s k=%-3d read-only txn" (mode_label ~backend read_mode) k)
    (fun n ->
      for _ = 1 to n do
        sink := Stm.atomically rt body
      done)

let rows_for backend =
  match backend with
  | Stm.Locator ->
      [
        bench_writes ~backend `Visible 1;
        bench_writes ~backend `Visible 4;
        bench_writes ~backend `Visible 16;
        bench_rmw ~backend `Visible 4;
        bench_read_only ~backend `Visible 8;
        bench_writes ~backend `Invisible 1;
        bench_writes ~backend `Invisible 4;
        bench_rmw ~backend `Invisible 4;
        bench_read_only ~backend `Invisible 8;
      ]
  | Stm.Tl2_backend ->
      (* TL2 reads are always invisible; one mode. *)
      [
        bench_writes ~backend `Visible 1;
        bench_writes ~backend `Visible 4;
        bench_writes ~backend `Visible 16;
        bench_rmw ~backend `Visible 4;
        bench_read_only ~backend `Visible 8;
      ]

(* Index of the steady-state 4-write row in [rows_for] — the gated
   workload for both backends. *)
let w4_index = 1

let () =
  Printf.printf "write-cost probe: backend=%s iters=%d (per-txn figures; single domain)\n%!"
    (Stm.backend_name backend) iters;
  let rows = rows_for backend in
  Printf.printf "  %-30s %12s %14s %14s\n" "workload" "ns/txn" "minor-w/txn" "major-w/txn";
  List.iter
    (fun r ->
      Printf.printf "  %-30s %12.1f %14.2f %14.2f\n" r.label r.ns_per_txn
        r.minor_per_commit r.major_per_commit)
    rows;
  if checking then begin
    (* Absolute ceiling: the steady-state 4-write transaction must stay
       well under the pre-pooling cost (~138 minor words per commit;
       pooled it measures ~14.4 on the locator — the fixed per-attempt
       overhead, independent of write-set size).  Generous enough to be
       scheduling-noise-proof, tight enough to catch a reintroduced
       per-open allocation (each write used to cost ~25 words). *)
    let budget = 24.0 in
    let w4 = List.nth rows w4_index in
    if w4.minor_per_commit > budget then begin
      Printf.eprintf
        "write-smoke FAIL: %s allocates %.2f minor words per commit (budget %.1f)\n"
        w4.label w4.minor_per_commit budget;
      exit 1
    end;
    Printf.printf "write-smoke OK: %.2f minor words per commit (budget %.1f)\n"
      w4.minor_per_commit budget;
    match backend with
    | Stm.Locator -> ()
    | Stm.Tl2_backend ->
        (* Relative gate: TL2's uncontended commit must not allocate
           more than the locator's on the identical workload.  Both
           backends allocate exactly 20 words per 4-write commit
           (verified with an exact single-txn [Gc.minor_words] probe:
           the per-attempt descriptor plus the facade dispatch, shared
           by both paths); the amortized figure this bench reports
           drifts under that by up to ~1 word run to run, so the
           comparison allows sub-box slack — any genuine extra
           allocation site (a boxed log entry, a closure) costs at
           least one 2-word box and still trips it. *)
        let slack = 1.5 in
        let loc_w4 = List.nth (rows_for Stm.Locator) w4_index in
        if w4.minor_per_commit > loc_w4.minor_per_commit +. slack then begin
          Printf.eprintf
            "tl2-smoke FAIL: tl2 4-write commit allocates %.2f minor words per commit, \
             locator %.2f — the second backend must not allocate more\n"
            w4.minor_per_commit loc_w4.minor_per_commit;
          exit 1
        end;
        Printf.printf
          "tl2-smoke OK: tl2 %.2f vs locator %.2f minor words per commit\n"
          w4.minor_per_commit loc_w4.minor_per_commit
  end
