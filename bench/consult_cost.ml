(** Consult-path cost gate: ns + GC minor words per [resolve] for every
    registered manager, on both STM backends and the simulator's policy
    table.

    Usage: consult_cost.exe [iters] [--backend locator|tl2|sim|all] [--check]

    [--check] is the @cm-smoke bound: zero minor words per resolve
    (within noise), an absolute latency ceiling, and a per-backend
    flatness band — see [Tcm_workload.Consult_cost.check].  Without it
    the table is informational. *)

module C = Tcm_workload.Consult_cost

let iters =
  let rec find i =
    if i >= Array.length Sys.argv then 200_000
    else
      match int_of_string_opt Sys.argv.(i) with Some n -> n | None -> find (i + 1)
  in
  find 1

let checking = Array.exists (( = ) "--check") Sys.argv

let backend_arg =
  let rec find i =
    if i >= Array.length Sys.argv then "all"
    else if Sys.argv.(i) = "--backend" then
      if i + 1 >= Array.length Sys.argv then begin
        Printf.eprintf "consult_cost: --backend requires an argument\n";
        exit 2
      end
      else Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let rows =
  match backend_arg with
  | "all" -> C.measure_all ~iters ()
  | "sim" -> C.measure_sim ~iters ()
  | name -> (
      match Tcm_stm.Stm.backend_of_name name with
      | Some b -> C.measure_backend ~iters b
      | None ->
          Printf.eprintf
            "consult_cost: unknown backend %S (locator, tl2, sim or all)\n" name;
          exit 2)

let () =
  Printf.printf "consult-cost probe: iters=%d (per resolve)\n" iters;
  Printf.printf "  %-10s %-14s %12s %14s\n" "backend" "manager" "ns" "minor words";
  List.iter
    (fun (r : C.row) ->
      Printf.printf "  %-10s %-14s %12.1f %14.4f\n" r.backend r.manager
        r.ns_per_resolve r.minor_words_per_resolve)
    rows;
  if checking then begin
    match C.check rows with
    | [] ->
        Printf.printf
          "consult-cost check OK: <= %.2f minor words/resolve, <= %.0f ns, \
           flatness <= %.0fx\n"
          C.max_minor_words C.max_ns C.flatness_ratio
    | violations ->
        List.iter (fun v -> Printf.eprintf "consult-cost check FAILED: %s\n" v)
          violations;
        exit 1
  end
