# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Quick end-to-end bench including the --json emitter and the
# read-cost A/B probe; used as a smoke test so the JSON path can't rot.
bench-smoke:
	dune build @bench-smoke

# Full bench, regenerating the committed perf trajectory point.
bench:
	dune exec bench/main.exe -- --quick --no-micro --json BENCH_1.json

clean:
	dune clean
