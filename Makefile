# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench-smoke metrics-smoke write-smoke tl2-smoke service-smoke obs-smoke cm-smoke bench ci clean

# Perf-trajectory point number: `make bench N=2` writes BENCH_2.json.
N ?= 1

all: build

# @all includes examples/, so example rot is caught by tier-1.
build:
	dune build @all

test:
	dune runtest

# Quick end-to-end bench including the --json/--trace emitters, the
# analyzer CLI over the captured trace, and the read-cost A/B probe;
# used as a smoke test so none of those paths can rot.
bench-smoke:
	dune build @bench-smoke

# Short capture with tcm.metrics enabled, pushed through the metrics
# CLI (health report, Prometheus conversion with parse-back, series).
metrics-smoke:
	dune build @metrics-smoke

# Allocation regression gate: minor words per committed transaction on
# the pooled write path must stay under the budget in write_cost.ml.
write-smoke:
	dune build @write-smoke

# Same gate through the TL2 backend, plus the TL2-vs-locator relative
# allocation check (the second backend must not allocate more).
tl2-smoke:
	dune build @tl2-smoke

# Open-loop service sweep on both backends across the full manager
# registry, with the JSON dump pushed through the tcm-bench/4 schema
# validator (bin/tcm_service.exe validate).
service-smoke:
	dune build @service-smoke

# Forced-overload service run with the flight recorder armed: bundles
# must land and round-trip through the tcm_obs.exe inspector, and the
# allocation/read-cost gates must still pass with tcm.obs disabled.
obs-smoke:
	dune build @obs-smoke

# Consult-path allocation/latency gate: every registered manager's
# resolve must allocate zero minor words and stay within the latency
# band, on both backends and in the simulator (bench/consult_cost.ml).
cm-smoke:
	dune build @cm-smoke

# Full bench, regenerating the committed perf trajectory point
# (closed-loop sweeps plus the open-loop service figures, the
# conflict-attribution entries and the consult-cost microbench on
# both backends).
bench:
	dune exec bench/main.exe -- --quick --no-micro --service --obs --consult --backend both --json BENCH_$(N).json

ci: build test bench-smoke metrics-smoke write-smoke tl2-smoke service-smoke obs-smoke cm-smoke

clean:
	dune clean
