(** Quickstart: the smallest useful program.

    Two accounts, four domains moving money between them atomically
    under the greedy contention manager.  The invariant — total balance
    is conserved — holds no matter how transactions interleave, abort
    and retry.

    Run with: [dune exec examples/quickstart.exe] *)

open Tcm_stm

let () =
  (* 1. Pick a contention manager and create a runtime. *)
  let rt = Stm.create (module Tcm_core.Greedy) in

  (* 2. Shared state lives in transactional variables. *)
  let alice = Tvar.make 1_000 in
  let bob = Tvar.make 1_000 in

  (* 3. A transaction: read, decide, write.  If a conflicting
     transaction interferes, the runtime consults the contention
     manager and retries as needed — the function may run several
     times, so it must be free of non-transactional side effects. *)
  let transfer ~from ~into amount =
    Stm.atomically rt (fun tx ->
        let b = Stm.read tx from in
        if b >= amount then begin
          Stm.write tx from (b - amount);
          Stm.write tx into (Stm.read tx into + amount);
          true
        end
        else false)
  in

  (* 4. Hammer it from several domains. *)
  let worker i () =
    let rng = Splitmix.create i in
    for _ = 1 to 1_000 do
      let amount = 1 + Splitmix.int rng 10 in
      if Splitmix.bool rng then ignore (transfer ~from:alice ~into:bob amount)
      else ignore (transfer ~from:bob ~into:alice amount)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;

  let a = Tvar.peek alice and b = Tvar.peek bob in
  Printf.printf "alice=%d bob=%d total=%d (expected 2000)\n" a b (a + b);
  let s = Stm.stats rt in
  Printf.printf "commits=%d aborts=%d conflicts=%d\n" s.Runtime.n_commits s.Runtime.n_aborts
    s.Runtime.n_conflicts;
  assert (a + b = 2_000)
