examples/bank.mli:
