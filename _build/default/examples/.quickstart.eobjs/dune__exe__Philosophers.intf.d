examples/philosophers.mli:
