examples/bank.ml: Array Atomic Domain List Printf Runtime Splitmix Stm Sys Tcm_core Tcm_stm Tvar Unix
