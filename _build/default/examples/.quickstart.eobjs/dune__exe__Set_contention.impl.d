examples/set_contention.ml: Array Harness List Printf Sys Tcm_core Tcm_stm Tcm_workload
