examples/makespan_demo.mli:
