examples/quickstart.mli:
