examples/set_contention.mli:
