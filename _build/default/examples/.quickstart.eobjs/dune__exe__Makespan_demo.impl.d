examples/makespan_demo.ml: Array List Option Printf Sys Tcm_sched Tcm_sim
