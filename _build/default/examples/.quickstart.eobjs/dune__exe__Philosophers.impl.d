examples/philosophers.ml: Array Atomic Domain List Printf Runtime Stm Sys Tcm_core Tcm_stm Tvar Unix
