examples/quickstart.ml: Domain List Printf Runtime Splitmix Stm Tcm_core Tcm_stm Tvar
