(** Side-by-side manager comparison on one workload — a miniature of
    the paper's experiment, runnable in a couple of seconds.

    Usage:
    [dune exec examples/set_contention.exe -- [structure] [threads] [secs]]
    e.g. [dune exec examples/set_contention.exe -- skiplist 8 0.3]. *)

open Tcm_workload

let () =
  let structure =
    if Array.length Sys.argv > 1 then Harness.structure_of_name Sys.argv.(1)
    else Harness.Skiplist_s
  in
  let threads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let duration_s = if Array.length Sys.argv > 3 then float_of_string Sys.argv.(3) else 0.25 in
  Printf.printf "structure=%s threads=%d duration=%.2fs (256 keys, 100%% updates)\n\n"
    (Harness.structure_name structure) threads duration_s;
  Printf.printf "%-14s %10s %8s %9s %s\n" "manager" "commits/s" "aborts" "conflicts"
    "aborts/commit";
  List.iter
    (fun manager ->
      let cfg = { Harness.default with structure; manager; threads; duration_s } in
      let o = Harness.run cfg in
      Printf.printf "%-14s %10.0f %8d %9d %12.4f\n"
        (Tcm_stm.Cm_intf.name manager)
        o.Harness.throughput o.Harness.aborts o.Harness.conflicts
        (float_of_int o.Harness.aborts /. float_of_int (max 1 o.Harness.commits)))
    Tcm_core.Registry.all
