(** A bank with many accounts and concurrent transfers, plus an
    auditing transaction that snapshots every balance — the classic
    long-reader-vs-short-writer workload the contention-manager
    literature cares about.

    Usage: [dune exec examples/bank.exe -- [manager] [threads]]
    e.g. [dune exec examples/bank.exe -- karma 8].

    The audit is a long transaction reading all accounts; transfers are
    short.  Under managers without priority accumulation the audit can
    starve; greedy guarantees it eventually commits (its timestamp only
    gets older).  The program prints how many attempts the audits
    needed per manager. *)

open Tcm_stm

let n_accounts = 64
let initial = 100

let () =
  let manager_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "greedy" in
  let threads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let manager = Tcm_core.Registry.find_exn manager_name in
  let rt = Stm.create manager in
  let accounts = Array.init n_accounts (fun _ -> Tvar.make initial) in

  let transfer rng =
    let src = Splitmix.int rng n_accounts in
    let dst = Splitmix.int rng n_accounts in
    let amount = 1 + Splitmix.int rng 5 in
    Stm.atomically rt (fun tx ->
        let b = Stm.read tx accounts.(src) in
        if src <> dst && b >= amount then begin
          Stm.write tx accounts.(src) (b - amount);
          Stm.write tx accounts.(dst) (Stm.read tx accounts.(dst) + amount)
        end)
  in

  (* Long transaction: a consistent snapshot of all balances. *)
  let audit () =
    Stm.atomically rt (fun tx ->
        Array.fold_left (fun acc a -> acc + Stm.read tx a) 0 accounts)
  in

  let stop = Atomic.make false in
  let audit_total = Atomic.make 0 in
  let audit_runs = Atomic.make 0 in
  let workers =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            let rng = Splitmix.create (i + 1) in
            while not (Atomic.get stop) do
              transfer rng
            done))
  in
  let auditor =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let total = audit () in
          Atomic.incr audit_runs;
          Atomic.set audit_total total;
          Unix.sleepf 0.01
        done)
  in
  Unix.sleepf 1.0;
  Atomic.set stop true;
  List.iter Domain.join workers;
  Domain.join auditor;

  let final = Array.fold_left (fun acc a -> acc + Tvar.peek a) 0 accounts in
  let s = Stm.stats rt in
  Printf.printf "manager=%s threads=%d\n" manager_name threads;
  Printf.printf "final total=%d (expected %d)   last audit=%d over %d audits\n" final
    (n_accounts * initial) (Atomic.get audit_total) (Atomic.get audit_runs);
  Printf.printf "commits=%d aborts=%d conflicts=%d blocks=%d\n" s.Runtime.n_commits
    s.Runtime.n_aborts s.Runtime.n_conflicts s.Runtime.n_blocks;
  assert (final = n_accounts * initial)
