(** Dining philosophers on the STM — a fairness showcase.

    Each meal is one transaction that picks up both forks (writes both
    fork tvars), so deadlock is impossible by construction; what
    distinguishes contention managers here is {e fairness} and
    {e livelock}: under Aggressive two neighbours can abort each other
    repeatedly, under Greedy the older philosopher always prevails and
    everyone eventually eats (Theorem 1 in miniature).

    Usage: [dune exec examples/philosophers.exe -- [manager] [n] [secs]] *)

open Tcm_stm

let () =
  let manager_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "greedy" in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5 in
  let secs = if Array.length Sys.argv > 3 then float_of_string Sys.argv.(3) else 0.5 in
  let rt = Stm.create (Tcm_core.Registry.find_exn manager_name) in
  (* fork.(i) counts how often it has been used; writing both forks in
     one transaction is the mutual exclusion. *)
  let forks = Array.init n (fun _ -> Tvar.make 0) in
  let meals = Array.make n 0 in
  let stop = Atomic.make false in
  let philosopher i () =
    let left = forks.(i) and right = forks.((i + 1) mod n) in
    while not (Atomic.get stop) do
      Stm.atomically rt (fun tx ->
          Stm.modify tx left succ;
          (* think a little while holding the first fork, to force the
             neighbour overlap that makes this interesting *)
          for _ = 1 to 200 do
            ignore (Sys.opaque_identity i)
          done;
          Stm.modify tx right succ);
      meals.(i) <- meals.(i) + 1
    done
  in
  let doms = List.init n (fun i -> Domain.spawn (philosopher i)) in
  Unix.sleepf secs;
  Atomic.set stop true;
  List.iter Domain.join doms;
  let total_meals = Array.fold_left ( + ) 0 meals in
  let fork_uses = Array.fold_left (fun acc f -> acc + Tvar.peek f) 0 forks in
  Printf.printf "manager=%s philosophers=%d\n" manager_name n;
  Array.iteri (fun i m -> Printf.printf "  philosopher %d ate %d times\n" i m) meals;
  let s = Stm.stats rt in
  Printf.printf "total meals=%d fork uses=%d (expect 2x meals)  aborts=%d conflicts=%d\n"
    total_meals fork_uses s.Runtime.n_aborts s.Runtime.n_conflicts;
  assert (fork_uses = 2 * total_meals);
  let hungriest = Array.fold_left min max_int meals in
  Printf.printf "least-served philosopher ate %d times (starvation check)\n" hungriest
