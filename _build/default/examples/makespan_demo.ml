(** A walk through the paper's Section 4 worst-case example.

    Builds the chain instance T0..Ts over objects X1..Xs, runs it under
    the simulated greedy manager, prints the commit order, and compares
    against the even/odd optimal list schedule — showing greedy's
    makespan growing linearly in s while the optimum stays at 2 time
    units, and that the Theorem 9 bound still holds.

    Usage: [dune exec examples/makespan_demo.exe -- [s]] *)

let () =
  let s = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  let granularity = 2 in
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~granularity ~s () in
  Printf.printf "Chain instance: %d transactions over %d objects.\n" (s + 1) s;
  Printf.printf "T_i opens X_(i+1) at time 0 and X_i at time 1-eps; T_i is older than T_(i-1).\n\n";
  let r =
    Tcm_sim.Engine.run_instance ~ranks ~record_grid:true ~policy:(Tcm_sim.Policy.greedy ()) inst
  in
  Printf.printf "Commit order under greedy (tick = %d per paper time unit):\n" granularity;
  List.iter
    (fun (thread, _, tick) -> Printf.printf "  T%-2d commits at time %.1f\n" thread
        (float_of_int tick /. float_of_int granularity))
    r.Tcm_sim.Engine.commit_log;
  let greedy = Option.value r.Tcm_sim.Engine.makespan ~default:(-1) in
  let optimal = granularity * Tcm_sched.Adversarial.optimal_makespan ~s in
  Printf.printf "\ngreedy makespan : %.1f time units (paper: s+1 = %d)\n"
    (float_of_int greedy /. float_of_int granularity)
    (s + 1);
  Printf.printf "optimal makespan: %.1f time units (paper: 2)\n"
    (float_of_int optimal /. float_of_int granularity);
  Printf.printf "ratio %.2f <= theorem-9 factor s(s+1)+2 = %d : %b\n"
    (float_of_int greedy /. float_of_int optimal)
    (Tcm_sched.Bounds.pending_commit_factor ~s)
    (greedy <= Tcm_sched.Bounds.pending_commit_factor ~s * optimal);
  Printf.printf "pending-commit property held throughout: %b\n" (Tcm_sim.Props.pending_commit r);
  Printf.printf "\nTimeline (thread i plays T_i):\n%s" (Tcm_sim.Timeline.render r)
