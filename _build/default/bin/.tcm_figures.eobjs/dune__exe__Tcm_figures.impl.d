bin/tcm_figures.ml: Arg Cmd Cmdliner Figures Format List Printf Report String Tcm_workload Term
