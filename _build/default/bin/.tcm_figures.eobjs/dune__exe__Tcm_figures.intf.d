bin/tcm_figures.mli:
