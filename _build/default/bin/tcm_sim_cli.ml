(** CLI for the theory experiments.

    Subcommands:
    - [adversarial]: the Section 4 chain, greedy vs optimal makespans.
    - [bound-sweep]: Theorem 9 check over random instances.
    - [lemma7]: scores of random partitions of G(m, s).
    - [cycle]: the dependency cycle that defeats unbounded FIFO
      waiting, run under every policy.
    - [policies]: one-shot random instance across all policies. *)

open Cmdliner

let adversarial s_max =
  Printf.printf "%6s %16s %16s %8s %12s\n" "s" "greedy" "optimal" "ratio" "bound";
  for s = 1 to s_max do
    let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s () in
    let r =
      Tcm_sim.Engine.run_instance ~ranks ~record_grid:true ~policy:(Tcm_sim.Policy.greedy ())
        inst
    in
    let greedy = Option.value r.Tcm_sim.Engine.makespan ~default:(-1) in
    let optimal = 2 * Tcm_sched.Adversarial.optimal_makespan ~s in
    Printf.printf "%6d %16d %16d %8.2f %12d  pending-commit=%b\n" s greedy optimal
      (float_of_int greedy /. float_of_int optimal)
      (Tcm_sched.Bounds.pending_commit_factor ~s)
      (Tcm_sim.Props.pending_commit r)
  done

let bound_sweep trials n s =
  let worst = ref 0. in
  let violations = ref 0 in
  for seed = 1 to trials do
    let inst = Tcm_sim.Scenarios.random_instance ~seed ~n ~s () in
    let r = Tcm_sim.Engine.run_instance ~policy:(Tcm_sim.Policy.greedy ()) inst in
    let rep = Tcm_sim.Props.theorem9_check ~inst r in
    if not rep.Tcm_sim.Props.ok then incr violations;
    if rep.Tcm_sim.Props.optimal > 0 then
      worst :=
        Float.max !worst
          (float_of_int rep.Tcm_sim.Props.measured /. float_of_int rep.Tcm_sim.Props.optimal);
    ()
  done;
  Printf.printf "n=%d s=%d trials=%d  violations=%d  worst-ratio=%.2f  bound=%d\n" n s trials
    !violations !worst
    (Tcm_sched.Bounds.pending_commit_factor ~s)

let lemma7 m s rounds =
  let open Tcm_sched in
  let g = Graph.g_m_s ~m ~s in
  Printf.printf "G(%d,%d): %d vertices, %d edges, S(G)=%.1f\n" m s (Graph.n_vertices g)
    (Graph.n_edges g) (Labeling.score g);
  let rng = Tcm_stm.Splitmix.create ((m * 131) + s) in
  let worst = ref max_int in
  for _ = 1 to rounds do
    let parts = Graph.partition_edges g s (fun _ _ -> Tcm_stm.Splitmix.int rng s) in
    let max_x2, ok = Labeling.lemma7_check ~m parts in
    if not ok then Printf.printf "VIOLATION: max score %.1f < %d\n" (float_of_int max_x2 /. 2.) m;
    worst := min !worst max_x2
  done;
  Printf.printf "min over %d random partitions of max_i S(H_i): %.1f (lemma: >= %d)\n" rounds
    (float_of_int !worst /. 2.)
    m

let cycle () =
  let inst = Tcm_sim.Scenarios.dependency_cycle () in
  List.iter
    (fun p ->
      let r = Tcm_sim.Engine.run_instance ~horizon:100_000 ~policy:p inst in
      Printf.printf "%-14s completed=%-5b makespan=%s aborts=%d\n" r.Tcm_sim.Engine.policy_name
        r.Tcm_sim.Engine.completed
        (match r.Tcm_sim.Engine.makespan with Some m -> string_of_int m | None -> "-")
        r.Tcm_sim.Engine.aborts)
    (Tcm_sim.Policy.queue_on_block ~mode:`Unbounded ()
    :: Tcm_sim.Policy.all ~seed:1 ())

let timeline s policy_name =
  let inst, ranks = Tcm_sim.Scenarios.adversarial_chain ~s () in
  let policy =
    match
      List.find_opt
        (fun p -> String.equal p.Tcm_sim.Policy.name policy_name)
        (Tcm_sim.Policy.all ~seed:1 ())
    with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown policy %S\n" policy_name;
        exit 2
  in
  let r = Tcm_sim.Engine.run_instance ~ranks ~record_grid:true ~horizon:5_000 ~policy inst in
  Printf.printf "chain s=%d under %s (thread i plays T_i):\n%s" s policy_name
    (Tcm_sim.Timeline.render r)

let halted n =
  let inst = Tcm_sim.Scenarios.halted_owner ~n () in
  List.iter
    (fun p ->
      let r = Tcm_sim.Engine.run_instance ~horizon:50_000 ~policy:p inst in
      Printf.printf "%-14s finished=%-5b survivors-committed=%d/%d\n"
        r.Tcm_sim.Engine.policy_name r.Tcm_sim.Engine.completed r.Tcm_sim.Engine.commits (n - 1))
    (Tcm_sim.Policy.all ~seed:1 ())

let policies seed n s =
  let inst = Tcm_sim.Scenarios.random_instance ~seed ~n ~s () in
  List.iter
    (fun p ->
      let r = Tcm_sim.Engine.run_instance ~horizon:100_000 ~policy:p inst in
      Printf.printf "%-14s makespan=%-6s commits=%d aborts=%d\n" r.Tcm_sim.Engine.policy_name
        (match r.Tcm_sim.Engine.makespan with Some m -> string_of_int m | None -> "-")
        r.Tcm_sim.Engine.commits r.Tcm_sim.Engine.aborts)
    (Tcm_sim.Policy.all ~seed ())

let s_arg = Arg.(value & opt int 8 & info [ "s" ] ~doc:"Number of shared objects.")
let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of transactions.")
let trials_arg = Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Number of random instances.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
let m_arg = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Lemma 7 parameter m.")
let rounds_arg = Arg.(value & opt int 25 & info [ "rounds" ] ~doc:"Random partitions to test.")

let cmds =
  [
    Cmd.v (Cmd.info "adversarial" ~doc:"Section 4 chain: greedy vs optimal.")
      Term.(const adversarial $ s_arg);
    Cmd.v
      (Cmd.info "bound-sweep" ~doc:"Theorem 9 bound check over random instances.")
      Term.(const bound_sweep $ trials_arg $ n_arg $ Arg.(value & opt int 3 & info [ "s" ]));
    Cmd.v (Cmd.info "lemma7" ~doc:"Scores of random partitions of G(m,s).")
      Term.(const lemma7 $ m_arg $ Arg.(value & opt int 2 & info [ "s" ]) $ rounds_arg);
    Cmd.v (Cmd.info "cycle" ~doc:"Dependency cycle under each policy.") Term.(const cycle $ const ());
    Cmd.v
      (Cmd.info "halted" ~doc:"Halted transaction holding a hot object, under each policy.")
      Term.(const halted $ n_arg);
    Cmd.v
      (Cmd.info "timeline" ~doc:"ASCII timeline of the chain under a chosen policy.")
      Term.(
        const timeline
        $ Arg.(value & opt int 5 & info [ "s" ])
        $ Arg.(value & opt string "greedy" & info [ "policy" ]));
    Cmd.v (Cmd.info "policies" ~doc:"One random instance across all policies.")
      Term.(const policies $ seed_arg $ n_arg $ Arg.(value & opt int 3 & info [ "s" ]));
  ]

let () =
  let doc = "Theory experiments for the transactional contention-manager reproduction." in
  exit (Cmd.eval (Cmd.group (Cmd.info "tcm-sim" ~doc) cmds))
