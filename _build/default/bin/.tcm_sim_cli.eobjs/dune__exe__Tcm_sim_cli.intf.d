bin/tcm_sim_cli.mli:
