bin/tcm_sim_cli.ml: Arg Cmd Cmdliner Float Graph Labeling List Option Printf String Tcm_sched Tcm_sim Tcm_stm Term
