(** CLI for the Figure 1–4 reproductions.

    Examples:

    {v
    tcm_figures fig1
    tcm_figures fig3 --mode real --threads 1,2,4 --duration 0.2
    tcm_figures all --mode sim --horizon 8000
    v} *)

open Cmdliner
open Tcm_workload

let figure_arg =
  let doc = "Figure to run: fig1, fig2, fig3, fig4 or all." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc)

let mode_arg =
  let doc = "Execution mode: 'sim' (deterministic discrete-event) or 'real' (live STM)." in
  Arg.(value & opt string "sim" & info [ "mode" ] ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts." in
  Arg.(value & opt string "1,2,4,8,16,24,32" & info [ "threads" ] ~doc)

let duration_arg =
  let doc = "Seconds per data point (real mode)." in
  Arg.(value & opt float 0.2 & info [ "duration" ] ~doc)

let horizon_arg =
  let doc = "Ticks per data point (sim mode)." in
  Arg.(value & opt int 6000 & info [ "horizon" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let parse_threads s =
  String.split_on_char ',' s |> List.filter (fun x -> x <> "") |> List.map int_of_string

let run figure mode threads duration horizon seed =
  let specs =
    match figure with
    | "all" -> Figures.all
    | id -> (
        match Figures.of_id id with
        | Some f -> [ f ]
        | None -> (
            Printf.eprintf "unknown figure %S (fig1..fig4 or all)\n" id;
            exit 2))
  in
  let mode =
    match mode with
    | "sim" -> Figures.Sim { horizon }
    | "real" -> Figures.Real { duration_s = duration }
    | m ->
        Printf.eprintf "unknown mode %S (sim or real)\n" m;
        exit 2
  in
  let threads_list = parse_threads threads in
  List.iter
    (fun spec ->
      let r = Figures.run ~threads_list ~seed ~mode spec in
      Report.print_figure Format.std_formatter r)
    specs

let cmd =
  let doc = "Reproduce the figures of 'Toward a Theory of Transactional Contention Managers'." in
  Cmd.v
    (Cmd.info "tcm-figures" ~doc)
    Term.(const run $ figure_arg $ mode_arg $ threads_arg $ duration_arg $ horizon_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
