(** Fault-tolerant greedy (Section 6 of the paper).

    Identical to {!Greedy}, except that a transaction [A] waits for a
    higher-priority [B] only until a timeout expires; the timeout is
    proportional to the number of times [A] already had to wait for [B]
    and then aborted it — doubling on each such discovery.  This copes
    with transactions that halt undetectably: a crashed [B] delays [A]
    by at most the current timeout, after which [A] aborts it. *)

open Tcm_stm

let name = "greedy-ft"

type t = {
  (* timeout currently granted to each enemy, keyed by its (stable)
     timestamp; doubled every time a wait on that enemy expires. *)
  grants : (int, int) Hashtbl.t;
  base_usec : int;
}

let base_usec = 200

let create () = { grants = Hashtbl.create 16; base_usec }

include Cm_util.No_lifecycle

let resolve t ~me ~other ~attempts =
  if Txn.older_than me other || Txn.is_waiting other then Decision.Abort_other
  else
    let key = Txn.timestamp other in
    let granted = Option.value (Hashtbl.find_opt t.grants key) ~default:t.base_usec in
    if attempts > 0 then begin
      (* Our previous wait on this enemy timed out: abort it and double
         the patience we will extend to it next time. *)
      Hashtbl.replace t.grants key (granted * 2);
      Decision.Abort_other
    end
    else Decision.Block { timeout_usec = Some granted }
