(** The Timid manager: always abort yourself — the dual of
    {!Aggressive}; starves under any recurring conflict. *)

include Tcm_stm.Cm_intf.S
