(** The Karma manager (Scherer & Scott): priority = accumulated opens,
    kept across aborts and spent on commit.  Abort the enemy once our
    karma plus the rounds already fought exceeds its karma; otherwise a
    fixed-size backoff. *)

include Tcm_stm.Cm_intf.S
