lib/core/greedy.ml: Cm_util Decision Tcm_stm Txn
