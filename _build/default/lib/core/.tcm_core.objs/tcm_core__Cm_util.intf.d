lib/core/cm_util.mli: Tcm_stm
