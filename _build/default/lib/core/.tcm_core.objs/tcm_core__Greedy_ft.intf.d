lib/core/greedy_ft.mli: Tcm_stm
