lib/core/timid.ml: Cm_util Tcm_stm
