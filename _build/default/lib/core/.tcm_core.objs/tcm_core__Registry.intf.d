lib/core/registry.mli: Cm_intf Tcm_stm
