lib/core/timestamp.mli: Tcm_stm
