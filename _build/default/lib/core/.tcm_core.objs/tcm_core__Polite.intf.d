lib/core/polite.mli: Tcm_stm
