lib/core/aggressive.ml: Cm_util Tcm_stm
