lib/core/greedy.mli: Tcm_stm
