lib/core/killblocked.mli: Tcm_stm
