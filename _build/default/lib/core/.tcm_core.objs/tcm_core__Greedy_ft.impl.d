lib/core/greedy_ft.ml: Cm_util Decision Hashtbl Option Tcm_stm Txn
