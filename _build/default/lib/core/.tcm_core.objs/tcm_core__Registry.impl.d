lib/core/registry.ml: Aggressive Cm_intf Eruption Greedy Greedy_ft Karma Killblocked Kindergarten List Polite Polka Printf Queue_on_block Randomized String Tcm_stm Timestamp Timid
