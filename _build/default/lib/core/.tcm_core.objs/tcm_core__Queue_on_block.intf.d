lib/core/queue_on_block.mli: Tcm_stm
