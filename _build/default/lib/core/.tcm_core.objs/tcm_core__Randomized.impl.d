lib/core/randomized.ml: Cm_util Decision Tcm_stm
