lib/core/polka.mli: Tcm_stm
