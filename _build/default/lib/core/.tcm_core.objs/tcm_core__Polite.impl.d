lib/core/polite.ml: Cm_util Decision Tcm_stm
