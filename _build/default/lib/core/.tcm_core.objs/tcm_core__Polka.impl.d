lib/core/polka.ml: Cm_util Decision Tcm_stm Txn
