lib/core/killblocked.ml: Cm_util Decision Tcm_stm Txn
