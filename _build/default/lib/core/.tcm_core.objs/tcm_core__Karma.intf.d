lib/core/karma.mli: Tcm_stm
