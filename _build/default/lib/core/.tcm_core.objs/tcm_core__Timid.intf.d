lib/core/timid.mli: Tcm_stm
