lib/core/randomized.mli: Tcm_stm
