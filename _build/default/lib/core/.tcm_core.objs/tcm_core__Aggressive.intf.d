lib/core/aggressive.mli: Tcm_stm
