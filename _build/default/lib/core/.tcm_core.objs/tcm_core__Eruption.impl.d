lib/core/eruption.ml: Cm_util Decision Tcm_stm Txn
