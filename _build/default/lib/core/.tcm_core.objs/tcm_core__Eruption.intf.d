lib/core/eruption.mli: Tcm_stm
