lib/core/cm_util.ml: Decision Splitmix Tcm_stm
