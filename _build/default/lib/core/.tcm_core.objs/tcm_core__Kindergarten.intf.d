lib/core/kindergarten.mli: Tcm_stm
