lib/core/queue_on_block.ml: Cm_util Decision Tcm_stm
