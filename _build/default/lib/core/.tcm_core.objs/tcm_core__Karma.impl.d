lib/core/karma.ml: Cm_util Decision Tcm_stm Txn
