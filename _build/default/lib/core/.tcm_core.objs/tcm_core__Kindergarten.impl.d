lib/core/kindergarten.ml: Cm_util Decision Hashtbl Tcm_stm Txn
