lib/core/timestamp.ml: Cm_util Decision Tcm_stm Txn
