(** The KillBlocked manager (Scherer & Scott): abort enemies that are
    themselves blocked; otherwise back off briefly, killing the enemy
    after {!max_tries} rounds. *)

include Tcm_stm.Cm_intf.S

val max_tries : int
