(** Name-indexed registry of all shipped contention managers. *)

open Tcm_stm

val all : Cm_intf.factory list
val names : string list

val find : string -> Cm_intf.factory option
(** Case-insensitive lookup. *)

val find_exn : string -> Cm_intf.factory
(** @raise Invalid_argument on unknown names, listing the options. *)

val paper_figures : Cm_intf.factory list
(** The five managers compared in the paper's Figures 1–4:
    greedy, karma, eruption, aggressive, backoff. *)
