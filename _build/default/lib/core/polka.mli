(** The Polka manager (Scherer & Scott 2005): Polite + Karma — back off
    a number of rounds equal to the priority gap with exponentially
    growing randomized intervals, then abort the enemy. *)

include Tcm_stm.Cm_intf.S
