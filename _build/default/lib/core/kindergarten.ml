(** The Kindergarten manager (Scherer & Scott): "taking turns".

    A transaction maintains the set of enemies in whose favour it has
    already backed off.  The first time it meets a given enemy it
    politely backs off (a bounded number of rounds); if the same enemy
    blocks it again, it is the enemy's turn to be aborted. *)

open Tcm_stm

let name = "kindergarten"

let rounds_per_turn = 3

type t = {
  deferred_to : (int, unit) Hashtbl.t;  (* enemy timestamps we yielded to *)
  prng : Cm_util.Prng.t;
}

let create () = { deferred_to = Hashtbl.create 16; prng = Cm_util.Prng.create () }

let begin_attempt _ _ = ()
let opened _ _ = ()
let aborted _ _ = ()

(* Forget old grudges when we finally commit. *)
let committed t _ = Hashtbl.reset t.deferred_to

let resolve t ~me:_ ~other ~attempts =
  let key = Txn.timestamp other in
  if Hashtbl.mem t.deferred_to key then Decision.Abort_other
  else if attempts >= rounds_per_turn then begin
    (* We gave this enemy its turn; remember that and abort it next
       time, but let it win this round by restarting ourselves. *)
    Hashtbl.replace t.deferred_to key ();
    Decision.Abort_self
  end
  else Decision.Backoff { usec = Cm_util.exp_backoff ~base:24 t.prng attempts }
