(** The QueueOnBlock manager: FIFO-style waiting behind the enemy.  The
    paper notes it is prone to dependency cycles; this implementation
    bounds each wait ({!max_waits} waits of a generous timeout) so real
    threads cannot deadlock — the simulator demonstrates the unbounded
    cycle safely. *)

include Tcm_stm.Cm_intf.S

val patience_usec : int
val max_waits : int
