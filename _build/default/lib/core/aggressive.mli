(** The Aggressive manager (Scherer & Scott): always abort the enemy.
    One extreme of the design space; prone to livelock. *)

include Tcm_stm.Cm_intf.S
