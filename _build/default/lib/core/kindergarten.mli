(** The Kindergarten manager (Scherer & Scott): "taking turns" — defer
    to a given enemy once ({!rounds_per_turn} polite rounds, then
    restart yourself); abort it on the next encounter.  Grudges are
    forgotten on commit. *)

include Tcm_stm.Cm_intf.S

val rounds_per_turn : int
