(** The Polite manager (Scherer & Scott), a.k.a. adaptive backoff:
    randomized exponential backoff for up to {!max_tries} rounds, then
    abort the enemy. *)

include Tcm_stm.Cm_intf.S

val max_tries : int
