(** Shared helpers for contention-manager implementations. *)

(** Per-instance deterministic pseudo-random stream (process-unique
    seed), so managers never touch the global [Random] state. *)
module Prng : sig
  type t = Tcm_stm.Splitmix.t

  val create : unit -> t
  val next : t -> int64
  val int : t -> int -> int
  val bool : t -> bool
  val float : t -> float
end

val exp_backoff : ?base:int -> ?cap:int -> Prng.t -> int -> int
(** Truncated exponential backoff in microseconds with jitter. *)

val brief_backoff : Prng.t -> Tcm_stm.Decision.t

(** No-op lifecycle hooks for managers that do not track events. *)
module No_lifecycle : sig
  val begin_attempt : 'st -> Tcm_stm.Txn.t -> unit
  val opened : 'st -> Tcm_stm.Txn.t -> unit
  val committed : 'st -> Tcm_stm.Txn.t -> unit
  val aborted : 'st -> Tcm_stm.Txn.t -> unit
end
