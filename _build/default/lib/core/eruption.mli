(** The Eruption manager (Scherer & Scott): Karma, plus blocked
    transactions add their momentum to the blocker's priority so a
    transaction blocking many others quickly gains enough priority to
    finish and unblock them. *)

include Tcm_stm.Cm_intf.S
