(** Shared helpers for contention-manager implementations. *)

open Tcm_stm

(** Deterministic per-instance pseudo-random stream, used for jitter
    and coin flips so that managers never need the global [Random]
    state shared across domains. *)
module Prng = struct
  include Splitmix

  let create () = Splitmix.create_self_seeded ()
end

(** Truncated exponential backoff: [base * 2^n] capped, with up to
    [base]-sized jitter drawn from [prng]. *)
let exp_backoff ?(base = 16) ?(cap = 65_536) prng n =
  let n = min n 20 in
  let d = min cap (base * (1 lsl n)) in
  d + Prng.int prng (max 1 (d / 2))

(** Default decision for managers that do not care: defer briefly. *)
let brief_backoff prng = Decision.Backoff { usec = 16 + Prng.int prng 16 }

(** A no-op lifecycle implementation managers can reuse. *)
module No_lifecycle = struct
  let begin_attempt _ _ = ()
  let opened _ _ = ()
  let committed _ _ = ()
  let aborted _ _ = ()
end
