(** The Randomized manager (Scherer & Scott): coin-flip between
    aborting the enemy and a short random backoff.  No deterministic
    guarantee. *)

include Tcm_stm.Cm_intf.S
