(** The Timestamp manager (Scherer & Scott): abort younger enemies;
    wait for older ones in fixed quanta, presuming them dead after
    {!max_quanta}.  The one pre-greedy manager the paper credits with
    progress under prematurely halted transactions. *)

include Tcm_stm.Cm_intf.S

val quantum_usec : int
val max_quanta : int
