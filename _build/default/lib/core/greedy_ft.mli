(** Fault-tolerant greedy (Section 6).

    Like {!Greedy}, but waits behind a higher-priority enemy only until
    a per-enemy timeout expires, doubling the enemy's grant after each
    expiry — so a transaction that halted undetectably delays its
    victims by at most the current timeout. *)

include Tcm_stm.Cm_intf.S

val base_usec : int
(** Initial per-enemy patience. *)
