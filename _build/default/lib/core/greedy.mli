(** The greedy contention manager (Section 3 of the paper).

    Two rules for a transaction [A] conflicting with [B]:
    + if [B] is lower priority (later timestamp) or waiting, abort [B];
    + otherwise wait until [B] commits, aborts, or starts waiting.

    The highest-priority transaction never waits and is never aborted,
    giving Theorem 1 (bounded commit) and the pending-commit property
    behind Theorem 9's [s(s+1)+2] competitive bound. *)

include Tcm_stm.Cm_intf.S
