(** Plain-text rendering of figure sweeps and theory tables, printed in
    the same layout as the paper's plots (threads on the x-axis, one
    series per contention manager). *)

let float_to_string v =
  if v >= 10_000. then Printf.sprintf "%.0f" v
  else if v >= 100. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let print_figure fmt (r : Figures.result) =
  let mode_label =
    match r.Figures.mode with
    | Figures.Real { duration_s } -> Printf.sprintf "real, %.2fs per point" duration_s
    | Figures.Sim { horizon } -> Printf.sprintf "sim, %d ticks per point" horizon
  in
  Format.fprintf fmt "== %s: %s (%s; %s) ==@." r.Figures.spec.Figures.id
    r.Figures.spec.Figures.title mode_label r.Figures.unit_label;
  (match r.Figures.rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf fmt "%8s" "threads";
      List.iter (fun (name, _) -> Format.fprintf fmt " %12s" name) first.Figures.cells;
      Format.fprintf fmt "@.";
      List.iter
        (fun row ->
          Format.fprintf fmt "%8d" row.Figures.threads;
          List.iter
            (fun (_, v) -> Format.fprintf fmt " %12s" (float_to_string v))
            row.Figures.cells;
          Format.fprintf fmt "@.")
        r.Figures.rows);
  Format.fprintf fmt "@."

(** Winner per thread count — handy for eyeballing shape claims. *)
let winners (r : Figures.result) : (int * string) list =
  List.map
    (fun row ->
      let name, _ =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
          ("", neg_infinity) row.Figures.cells
      in
      (row.Figures.threads, name))
    r.Figures.rows

let print_kv_table fmt ~title rows =
  Format.fprintf fmt "== %s ==@." title;
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-40s %s@." k v) rows;
  Format.fprintf fmt "@."
