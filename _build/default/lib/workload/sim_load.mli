(** Simulator-backed figure workloads: each benchmark structure's
    access pattern modelled as simulator transactions, yielding
    deterministic, hardware-independent reproductions of the Figure 1–4
    shapes (see DESIGN.md for the substitution argument). *)

open Tcm_sim

val key_space : int

type model = {
  name : string;
  n_objects : int;
  gen : Tcm_stm.Splitmix.t -> tail:int -> Spec.txn;
}

val list_model : model
val skiplist_model : model
val rbtree_model : model
val rbforest_model : model

val rb_dur : int
(** Ticks of one red-black path transaction (forest building block). *)

val model_of_structure : Harness.structure -> model

type outcome = {
  commits : int;
  aborts : int;
  ticks : int;
  throughput : float;  (** Commits per 1000 ticks. *)
  max_aborts_one_txn : int;
  fairness_min_commits : int;
}

val run :
  ?horizon:int ->
  ?seed:int ->
  ?tail:int ->
  ?ts_on_restart:[ `Keep | `Fresh ] ->
  threads:int ->
  policy:Policy.t ->
  model ->
  outcome
(** [threads] infinite streams of the model's transactions for
    [horizon] ticks; deterministic in [seed]. *)
