(** Plain-text rendering of figure sweeps, in the paper's layout
    (threads on the x-axis, one series per manager). *)

val float_to_string : float -> string

val print_figure : Format.formatter -> Figures.result -> unit

val winners : Figures.result -> (int * string) list
(** Best manager per thread count. *)

val print_kv_table :
  Format.formatter -> title:string -> (string * string) list -> unit
