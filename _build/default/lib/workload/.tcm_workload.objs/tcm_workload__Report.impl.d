lib/workload/report.ml: Figures Format List Printf
