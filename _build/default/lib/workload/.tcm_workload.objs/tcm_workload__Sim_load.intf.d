lib/workload/sim_load.mli: Harness Policy Spec Tcm_sim Tcm_stm
