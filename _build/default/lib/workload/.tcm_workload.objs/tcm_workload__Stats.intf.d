lib/workload/stats.mli:
