lib/workload/figures.mli: Harness
