lib/workload/figures.ml: Cm_intf Harness List Sim_load String Tcm_core Tcm_sim Tcm_stm
