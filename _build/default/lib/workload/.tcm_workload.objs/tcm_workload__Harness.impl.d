lib/workload/harness.ml: Array Atomic Cm_intf Domain List Printf Runtime Splitmix Stats Stm Tcm_core Tcm_stm Tcm_structures Unix
