lib/workload/harness.mli: Cm_intf Runtime Tcm_stm Tcm_structures
