lib/workload/sim_load.ml: Array Engine Harness List Policy Spec Splitmix Tcm_sim Tcm_stm
