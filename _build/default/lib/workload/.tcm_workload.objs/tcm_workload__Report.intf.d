lib/workload/report.mli: Figures Format
