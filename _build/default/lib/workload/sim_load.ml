(** Simulator-backed figure workloads.

    The container running this reproduction has a single hardware
    thread, so the live multicore benchmark cannot exhibit the paper's
    1–32-thread scaling shapes.  This module models each benchmark
    structure's {e access pattern} as simulator transactions and runs
    them under the simulated contention-manager policies, which yields
    deterministic, hardware-independent reproductions of the Figure 1–4
    shapes:

    - {b list}: an operation on key [k] reads the [j] node slots before
      its position and rewrites slot [j] — long, heavily overlapping
      prefix traversals (the paper's most contended workload);
    - {b skiplist}: reads one marker per level along the search path,
      then writes the bottom slot — logarithmic footprint;
    - {b rbtree}: reads a root-to-leaf path (near-root objects shared
      by everyone), then writes the leaf and its parent (rebalance);
    - {b rbforest}: with small probability performs the rbtree pattern
      on {e all} trees (a very long transaction), otherwise on one —
      the paper's high-variance length distribution.

    The low-contention variant (Figure 3) appends an uncontended tail
    of ticks after the last access, modelling the paper's "computations
    unrelated to the effective transactions at the end". *)

open Tcm_stm
open Tcm_sim

let key_space = 64

type model = {
  name : string;
  n_objects : int;
  gen : Splitmix.t -> tail:int -> Spec.txn
}

(* --- list ---------------------------------------------------------- *)

let list_model =
  let gen rng ~tail =
    let k = Splitmix.int rng key_space in
    let reads = List.init k (fun i -> Spec.read ~at:i ~obj:i) in
    let accesses = reads @ [ Spec.write ~at:k ~obj:k ] in
    Spec.txn ~dur:(k + 1 + tail) accesses
  in
  { name = "list"; n_objects = key_space; gen }

(* --- skiplist ------------------------------------------------------ *)

let skiplist_levels = 6

let skiplist_model =
  (* Marker objects: level l (l = levels-1 .. 0) has key_space >> l
     markers, distinct object ranges per level. *)
  let base = Array.make skiplist_levels 0 in
  let () =
    let acc = ref 0 in
    for l = skiplist_levels - 1 downto 0 do
      base.(l) <- !acc;
      acc := !acc + (key_space lsr l)
    done
  in
  let n_objects =
    Array.fold_left max 0 (Array.mapi (fun l b -> b + (key_space lsr l)) base)
  in
  let gen rng ~tail =
    let k = Splitmix.int rng key_space in
    let reads =
      List.init skiplist_levels (fun i ->
          let l = skiplist_levels - 1 - i in
          Spec.read ~at:i ~obj:(base.(l) + (k lsr l)))
    in
    let accesses = reads @ [ Spec.write ~at:skiplist_levels ~obj:(base.(0) + k) ] in
    Spec.txn ~dur:(skiplist_levels + 1 + tail) accesses
  in
  { name = "skiplist"; n_objects; gen }

(* --- red-black tree ------------------------------------------------ *)

let rb_depth = 6 (* interior depths 0..5, leaves below *)

let rb_n_objects = (1 lsl (rb_depth + 1)) - 1 + key_space

(* Interior node at depth d on the path to key k. *)
let rb_interior d k = (1 lsl d) - 1 + (k lsr (rb_depth - d))

let rb_leaf k = (1 lsl rb_depth) - 1 + k

let rb_accesses ?(obj_offset = 0) ?(tick_offset = 0) k =
  let path =
    List.init rb_depth (fun d ->
        Spec.read ~at:(tick_offset + d) ~obj:(obj_offset + rb_interior d k))
  in
  path
  @ [
      Spec.write ~at:(tick_offset + rb_depth) ~obj:(obj_offset + rb_leaf k);
      (* Rebalance touches the leaf's parent. *)
      Spec.write ~at:(tick_offset + rb_depth)
        ~obj:(obj_offset + rb_interior (rb_depth - 1) k);
    ]

let rb_dur = rb_depth + 1

let rbtree_model =
  let gen rng ~tail =
    let k = Splitmix.int rng key_space in
    Spec.txn ~dur:(rb_dur + tail) (rb_accesses k)
  in
  { name = "rbtree"; n_objects = rb_n_objects; gen }

(* --- red-black forest ---------------------------------------------- *)

let forest_trees = 50
let forest_all_pct = 2

let rbforest_model =
  let gen rng ~tail =
    let k = Splitmix.int rng key_space in
    if Splitmix.int rng 100 < forest_all_pct then
      (* Long transaction: the rbtree pattern on every tree in turn. *)
      let accesses =
        List.concat
          (List.init forest_trees (fun tr ->
               rb_accesses ~obj_offset:(tr * rb_n_objects) ~tick_offset:(tr * rb_dur) k))
      in
      Spec.txn ~dur:((forest_trees * rb_dur) + tail) accesses
    else
      let tr = Splitmix.int rng forest_trees in
      Spec.txn ~dur:(rb_dur + tail) (rb_accesses ~obj_offset:(tr * rb_n_objects) k)
  in
  { name = "rbforest"; n_objects = forest_trees * rb_n_objects; gen }

let model_of_structure = function
  | Harness.List_s -> list_model
  | Harness.Skiplist_s -> skiplist_model
  | Harness.Rbtree_s -> rbtree_model
  | Harness.Rbforest_s -> rbforest_model

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  commits : int;
  aborts : int;
  ticks : int;
  throughput : float;  (** Commits per 1000 ticks. *)
  max_aborts_one_txn : int;
      (** Worst restart count of a single transaction (starvation). *)
  fairness_min_commits : int;
      (** Commits of the least-served thread. *)
}

(** Run [threads] infinite streams of the model's transactions under
    [policy] for [horizon] ticks.  Fully deterministic in [seed]. *)
let run ?(horizon = 6_000) ?(seed = 42) ?(tail = 0) ?ts_on_restart ~threads
    ~(policy : Policy.t) (model : model) : outcome =
  let stream tid idx =
    let rng = Splitmix.create ((seed * 1_000_003) + (tid * 7919) + idx) in
    Some (model.gen rng ~tail)
  in
  let streams = Array.init threads (fun tid -> stream tid) in
  let r = Engine.run ~horizon ?ts_on_restart ~policy ~n_objects:model.n_objects streams in
  {
    commits = r.Engine.commits;
    aborts = r.Engine.aborts;
    ticks = r.Engine.ticks;
    throughput = float_of_int r.Engine.commits *. 1000. /. float_of_int (max 1 r.Engine.ticks);
    max_aborts_one_txn = r.Engine.max_aborts_one_txn;
    fairness_min_commits = Array.fold_left min max_int r.Engine.per_thread_commits;
  }
