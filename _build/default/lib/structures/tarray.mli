(** Transactional array: one [Tvar] per slot; disjoint indices never
    conflict. *)

type 'a t

val make : int -> 'a -> 'a t
(** @raise Invalid_argument on negative length. *)

val init : int -> (int -> 'a) -> 'a t
val length : 'a t -> int
val get : Tcm_stm.Stm.tx -> 'a t -> int -> 'a
val set : Tcm_stm.Stm.tx -> 'a t -> int -> 'a -> unit
val modify : Tcm_stm.Stm.tx -> 'a t -> int -> ('a -> 'a) -> unit

val swap : Tcm_stm.Stm.tx -> 'a t -> int -> int -> unit
(** Atomic two-slot exchange. *)

val snapshot : Tcm_stm.Stm.tx -> 'a t -> 'a array
(** Consistent snapshot (reads every slot transactionally). *)

val fold : Tcm_stm.Stm.tx -> ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val peek : 'a t -> 'a array
(** Per-slot committed values; not a consistent cross-slot snapshot. *)
