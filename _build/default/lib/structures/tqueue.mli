(** Transactional FIFO queue (two-list functional queue in tvars). *)

type 'a t

val create : unit -> 'a t
val push : Tcm_stm.Stm.tx -> 'a t -> 'a -> unit
val pop : Tcm_stm.Stm.tx -> 'a t -> 'a option

(** Blocking pop: the transaction re-runs until an element is there. *)
val pop_wait : Tcm_stm.Stm.tx -> 'a t -> 'a
val is_empty : Tcm_stm.Stm.tx -> 'a t -> bool
val length : Tcm_stm.Stm.tx -> 'a t -> int
val to_list : Tcm_stm.Stm.tx -> 'a t -> 'a list
