lib/structures/trbtree.mli: Intset Tcm_stm
