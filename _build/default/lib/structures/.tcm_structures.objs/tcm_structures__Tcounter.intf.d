lib/structures/tcounter.mli: Tcm_stm
