lib/structures/trbforest.mli: Intset Tcm_stm
