lib/structures/tqueue.mli: Tcm_stm
