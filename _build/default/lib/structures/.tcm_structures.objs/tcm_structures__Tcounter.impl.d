lib/structures/tcounter.ml: Stm Tcm_stm Tvar
