lib/structures/tskiplist.mli: Intset
