lib/structures/trbforest.ml: Array Intset List Trbtree
