lib/structures/thashmap.ml: Array List Stm Tcm_stm Tvar
