lib/structures/tlist.mli: Intset
