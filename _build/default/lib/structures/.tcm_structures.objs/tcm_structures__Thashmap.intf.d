lib/structures/thashmap.mli: Tcm_stm
