lib/structures/trbtree.ml: Stm Tcm_stm Tvar
