lib/structures/intset.ml: Stm Tcm_stm
