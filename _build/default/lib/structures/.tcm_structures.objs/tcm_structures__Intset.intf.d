lib/structures/intset.mli: Stm Tcm_stm
