lib/structures/tlist.ml: List Stm Tcm_stm Tvar
