lib/structures/tqueue.ml: List Stm Tcm_stm Tvar
