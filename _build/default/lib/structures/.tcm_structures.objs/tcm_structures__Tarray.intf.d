lib/structures/tarray.mli: Tcm_stm
