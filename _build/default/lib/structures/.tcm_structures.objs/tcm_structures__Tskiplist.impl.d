lib/structures/tskiplist.ml: Array Atomic List Stm Tcm_stm Tvar
