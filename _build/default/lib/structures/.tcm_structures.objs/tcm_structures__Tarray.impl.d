lib/structures/tarray.ml: Array Stm Tcm_stm Tvar
