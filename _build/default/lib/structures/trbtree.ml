(** Transactional red-black tree (the paper's "Red-black application",
    Figure 3).

    An imperative CLRS-style red-black tree in which every node field —
    colour, children, parent — is a [Tvar], so transactions conflict at
    node granularity like the original DSTM benchmark.  Leaves are the
    immutable [Leaf] constant; the delete fix-up therefore carries the
    doubly-black position's parent explicitly instead of storing a
    parent in a sentinel. *)

open Tcm_stm

let name = "rbtree"

type color = Red | Black

type link = Leaf | N of node

and node = {
  key : int;
  color : color Tvar.t;
  left : link Tvar.t;
  right : link Tvar.t;
  parent : link Tvar.t;
}

type t = { root : link Tvar.t }

let create () = { root = Tvar.make Leaf }

let same_link a b =
  match (a, b) with Leaf, Leaf -> true | N x, N y -> x == y | _ -> false

let color_of tx = function Leaf -> Black | N n -> Stm.read tx n.color

let set_color tx link c =
  match link with
  | N n -> Stm.write tx n.color c
  | Leaf -> assert (c = Black)

let set_parent tx link p = match link with N n -> Stm.write tx n.parent p | Leaf -> ()

(* A shape the algorithm proves impossible was observed: under
   contention this means the attempt raced with an enemy's commit and
   is reading an inconsistent view — abort and re-run it rather than
   corrupt the tree.  (In a single-threaded run this would be a logic
   bug; the invariant-checking tests soak for that separately.) *)
let inconsistent tx : 'a = Stm.retry_now tx

(* Replace the child slot of [p] that currently holds [old_child] (or
   the root if [p] is Leaf) with [v]. *)
let replace_child tx t ~p ~old_child ~v =
  match p with
  | Leaf -> Stm.write tx t.root v
  | N pn ->
      if same_link (Stm.read tx pn.left) old_child then Stm.write tx pn.left v
      else Stm.write tx pn.right v

let rotate_left tx t (x : node) =
  match Stm.read tx x.right with
  | Leaf -> inconsistent tx
  | N y ->
      let yl = Stm.read tx y.left in
      Stm.write tx x.right yl;
      set_parent tx yl (N x);
      let xp = Stm.read tx x.parent in
      Stm.write tx y.parent xp;
      replace_child tx t ~p:xp ~old_child:(N x) ~v:(N y);
      Stm.write tx y.left (N x);
      Stm.write tx x.parent (N y)

let rotate_right tx t (x : node) =
  match Stm.read tx x.left with
  | Leaf -> inconsistent tx
  | N y ->
      let yr = Stm.read tx y.right in
      Stm.write tx x.left yr;
      set_parent tx yr (N x);
      let xp = Stm.read tx x.parent in
      Stm.write tx y.parent xp;
      replace_child tx t ~p:xp ~old_child:(N x) ~v:(N y);
      Stm.write tx y.right (N x);
      Stm.write tx x.parent (N y)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let rec find_link tx link k =
  match link with
  | Leaf -> Leaf
  | N n ->
      if k = n.key then link
      else if k < n.key then find_link tx (Stm.read tx n.left) k
      else find_link tx (Stm.read tx n.right) k

let member tx t k =
  match find_link tx (Stm.read tx t.root) k with Leaf -> false | N _ -> true

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let rec insert_fixup tx t (z : node) =
  let zp = Stm.read tx z.parent in
  if color_of tx zp = Red then begin
    match zp with
    | Leaf -> assert false
    | N p -> (
        let g = Stm.read tx p.parent in
        match g with
        | Leaf ->
            (* Red parent with no grandparent: parent is the root;
               recolouring below settles it. *)
            ()
        | N gn ->
            if same_link (Stm.read tx gn.left) zp then begin
              let uncle = Stm.read tx gn.right in
              if color_of tx uncle = Red then begin
                set_color tx zp Black;
                set_color tx uncle Black;
                set_color tx g Red;
                match g with Leaf -> () | N gnode -> insert_fixup tx t gnode
              end
              else begin
                let z, p =
                  if same_link (Stm.read tx p.right) (N z) then begin
                    rotate_left tx t p;
                    (p, match Stm.read tx p.parent with N q -> q | Leaf -> inconsistent tx)
                  end
                  else (z, p)
                in
                ignore z;
                Stm.write tx p.color Black;
                match Stm.read tx p.parent with
                | Leaf -> ()
                | N gn' ->
                    Stm.write tx gn'.color Red;
                    rotate_right tx t gn'
              end
            end
            else begin
              let uncle = Stm.read tx gn.left in
              if color_of tx uncle = Red then begin
                set_color tx zp Black;
                set_color tx uncle Black;
                set_color tx g Red;
                match g with Leaf -> () | N gnode -> insert_fixup tx t gnode
              end
              else begin
                let z, p =
                  if same_link (Stm.read tx p.left) (N z) then begin
                    rotate_right tx t p;
                    (p, match Stm.read tx p.parent with N q -> q | Leaf -> inconsistent tx)
                  end
                  else (z, p)
                in
                ignore z;
                Stm.write tx p.color Black;
                match Stm.read tx p.parent with
                | Leaf -> ()
                | N gn' ->
                    Stm.write tx gn'.color Red;
                    rotate_left tx t gn'
              end
            end)
  end;
  (* Re-blacken the root. *)
  set_color tx (Stm.read tx t.root) Black

let insert tx t k =
  let rec down link parent =
    match link with
    | Leaf ->
        let z =
          {
            key = k;
            color = Tvar.make Red;
            left = Tvar.make Leaf;
            right = Tvar.make Leaf;
            parent = Tvar.make parent;
          }
        in
        (match parent with
        | Leaf -> Stm.write tx t.root (N z)
        | N p -> if k < p.key then Stm.write tx p.left (N z) else Stm.write tx p.right (N z));
        insert_fixup tx t z;
        true
    | N n ->
        if k = n.key then false
        else if k < n.key then down (Stm.read tx n.left) link
        else down (Stm.read tx n.right) link
  in
  down (Stm.read tx t.root) Leaf

(* ------------------------------------------------------------------ *)
(* Deletion                                                            *)
(* ------------------------------------------------------------------ *)

let rec minimum tx (n : node) =
  match Stm.read tx n.left with Leaf -> n | N l -> minimum tx l

(* CLRS delete fix-up; [x] may be Leaf, so its parent [xp] is carried
   explicitly.  The doubly-black [x]'s sibling is never Leaf. *)
let rec delete_fixup tx t (x : link) (xp : link) =
  let root = Stm.read tx t.root in
  if same_link x root || color_of tx x = Red then set_color tx x Black
  else
    match xp with
    | Leaf -> set_color tx x Black
    | N p ->
        if same_link (Stm.read tx p.left) x then begin
          let w = Stm.read tx p.right in
          let w =
            if color_of tx w = Red then begin
              set_color tx w Black;
              Stm.write tx p.color Red;
              rotate_left tx t p;
              Stm.read tx p.right
            end
            else w
          in
          match w with
          | Leaf -> set_color tx x Black (* cannot happen in a valid tree *)
          | N wn ->
              if
                color_of tx (Stm.read tx wn.left) = Black
                && color_of tx (Stm.read tx wn.right) = Black
              then begin
                Stm.write tx wn.color Red;
                delete_fixup tx t (N p) (Stm.read tx p.parent)
              end
              else begin
                let wn =
                  if color_of tx (Stm.read tx wn.right) = Black then begin
                    set_color tx (Stm.read tx wn.left) Black;
                    Stm.write tx wn.color Red;
                    rotate_right tx t wn;
                    match Stm.read tx p.right with N w' -> w' | Leaf -> inconsistent tx
                  end
                  else wn
                in
                Stm.write tx wn.color (Stm.read tx p.color);
                Stm.write tx p.color Black;
                set_color tx (Stm.read tx wn.right) Black;
                rotate_left tx t p;
                set_color tx (Stm.read tx t.root) Black
              end
        end
        else begin
          let w = Stm.read tx p.left in
          let w =
            if color_of tx w = Red then begin
              set_color tx w Black;
              Stm.write tx p.color Red;
              rotate_right tx t p;
              Stm.read tx p.left
            end
            else w
          in
          match w with
          | Leaf -> set_color tx x Black
          | N wn ->
              if
                color_of tx (Stm.read tx wn.left) = Black
                && color_of tx (Stm.read tx wn.right) = Black
              then begin
                Stm.write tx wn.color Red;
                delete_fixup tx t (N p) (Stm.read tx p.parent)
              end
              else begin
                let wn =
                  if color_of tx (Stm.read tx wn.left) = Black then begin
                    set_color tx (Stm.read tx wn.right) Black;
                    Stm.write tx wn.color Red;
                    rotate_left tx t wn;
                    match Stm.read tx p.left with N w' -> w' | Leaf -> inconsistent tx
                  end
                  else wn
                in
                Stm.write tx wn.color (Stm.read tx p.color);
                Stm.write tx p.color Black;
                set_color tx (Stm.read tx wn.left) Black;
                rotate_right tx t p;
                set_color tx (Stm.read tx t.root) Black
              end
        end

(* Replace subtree rooted at [u] (a node) with [v] (a link). *)
let transplant tx t (u : node) (v : link) =
  let up = Stm.read tx u.parent in
  replace_child tx t ~p:up ~old_child:(N u) ~v;
  set_parent tx v up

let remove tx t k =
  match find_link tx (Stm.read tx t.root) k with
  | Leaf -> false
  | N z ->
      let y_color, x, xp =
        match (Stm.read tx z.left, Stm.read tx z.right) with
        | Leaf, zr ->
            let zp = Stm.read tx z.parent in
            transplant tx t z zr;
            (Stm.read tx z.color, zr, zp)
        | zl, Leaf ->
            let zp = Stm.read tx z.parent in
            transplant tx t z zl;
            (Stm.read tx z.color, zl, zp)
        | _, N zr ->
            let y = minimum tx zr in
            let y_color = Stm.read tx y.color in
            let x = Stm.read tx y.right in
            let xp =
              if same_link (Stm.read tx y.parent) (N z) then N y
              else begin
                let yp = Stm.read tx y.parent in
                transplant tx t y x;
                Stm.write tx y.right (Stm.read tx z.right);
                set_parent tx (Stm.read tx y.right) (N y);
                yp
              end
            in
            transplant tx t z (N y);
            Stm.write tx y.left (Stm.read tx z.left);
            set_parent tx (Stm.read tx y.left) (N y);
            Stm.write tx y.color (Stm.read tx z.color);
            (y_color, x, xp)
      in
      if y_color = Black then delete_fixup tx t x xp;
      true

(* ------------------------------------------------------------------ *)
(* Traversal and invariants                                            *)
(* ------------------------------------------------------------------ *)

let to_list tx t =
  let rec go link acc =
    match link with
    | Leaf -> acc
    | N n -> go (Stm.read tx n.left) (n.key :: go (Stm.read tx n.right) acc)
  in
  go (Stm.read tx t.root) []

(** Structural invariants, checked within a transaction: BST order, no
    red node with a red child, equal black heights, consistent parent
    pointers, black root.  Returns the black height. *)
let check_invariants tx t : (int, string) result =
  let exception Bad of string in
  let rec go link lo hi parent =
    match link with
    | Leaf -> 1
    | N n ->
        (match lo with Some l when n.key <= l -> raise (Bad "bst-order-lo") | _ -> ());
        (match hi with Some h when n.key >= h -> raise (Bad "bst-order-hi") | _ -> ());
        if not (same_link (Stm.read tx n.parent) parent) then raise (Bad "parent-pointer");
        let c = Stm.read tx n.color in
        let l = Stm.read tx n.left and r = Stm.read tx n.right in
        if c = Red && (color_of tx l = Red || color_of tx r = Red) then raise (Bad "red-red");
        let bl = go l lo (Some n.key) link in
        let br = go r (Some n.key) hi link in
        if bl <> br then raise (Bad "black-height");
        bl + (if c = Black then 1 else 0)
  in
  match
    let root = Stm.read tx t.root in
    if color_of tx root = Red then raise (Bad "red-root");
    go root None None Leaf
  with
  | bh -> Ok bh
  | exception Bad msg -> Error msg
