(** Sorted singly-linked transactional list (Figure 1's application):
    every [next] pointer is a [Tvar], maximising read-write conflicts
    between long overlapping traversals. *)

include Intset.S
