(** Transactional skiplist (Figure 2's application) with per-level
    forward pointers in [Tvar]s and deterministic level choice. *)

include Intset.S

val max_level : int
