(** Transactional hash map (int keys): per-bucket association lists in
    individual [Tvar]s, so transactions on different buckets never
    conflict. *)

type 'v t

val default_buckets : int

val create : ?buckets:int -> unit -> 'v t
(** Bucket count is rounded up to a power of two. *)

val n_buckets : 'v t -> int
val find : Tcm_stm.Stm.tx -> 'v t -> int -> 'v option
val mem : Tcm_stm.Stm.tx -> 'v t -> int -> bool

val add : Tcm_stm.Stm.tx -> 'v t -> int -> 'v -> unit
(** Insert or replace. *)

val remove : Tcm_stm.Stm.tx -> 'v t -> int -> bool
(** [true] if the key was present. *)

val update : Tcm_stm.Stm.tx -> 'v t -> int -> ('v option -> 'v option) -> unit
(** Atomic read-modify-write of one binding; [None] deletes. *)

val length : Tcm_stm.Stm.tx -> 'v t -> int

val bindings : Tcm_stm.Stm.tx -> 'v t -> (int * 'v) list
(** Sorted by key. *)
