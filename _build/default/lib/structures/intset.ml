(** Common interface of the transactional integer-set structures used
    by the paper's benchmarks (list, skiplist, red-black tree,
    red-black forest). *)

open Tcm_stm

module type S = sig
  val name : string

  type t

  val create : unit -> t

  val insert : Stm.tx -> t -> int -> bool
  (** [true] if the key was absent and is now present. *)

  val remove : Stm.tx -> t -> int -> bool
  (** [true] if the key was present and is now absent. *)

  val member : Stm.tx -> t -> int -> bool

  val to_list : Stm.tx -> t -> int list
  (** Sorted contents; used by tests. *)
end

(** Closure-style handle used by the workload harness: one instance of
    a structure with its operations, where [r] supplies per-operation
    randomness for structures that need it (the red-black forest picks
    one-vs-all trees from it; the others ignore it). *)
type ops = {
  name : string;
  insert : Stm.tx -> key:int -> r:int -> bool;
  remove : Stm.tx -> key:int -> r:int -> bool;
  member : Stm.tx -> key:int -> r:int -> bool;
  snapshot : Stm.tx -> int list;
}

let ops_of (type a) (module M : S with type t = a) (t : a) : ops =
  {
    name = M.name;
    insert = (fun tx ~key ~r:_ -> M.insert tx t key);
    remove = (fun tx ~key ~r:_ -> M.remove tx t key);
    member = (fun tx ~key ~r:_ -> M.member tx t key);
    snapshot = (fun tx -> M.to_list tx t);
  }
