(** Transactional FIFO queue (two-list functional queue in a pair of
    tvars), used by the examples. *)

open Tcm_stm

type 'a t = { front : 'a list Tvar.t; back : 'a list Tvar.t }

let create () = { front = Tvar.make []; back = Tvar.make [] }

let push tx t v = Stm.modify tx t.back (fun l -> v :: l)

let pop tx t =
  match Stm.read_for_write tx t.front with
  | v :: rest ->
      Stm.write tx t.front rest;
      Some v
  | [] -> (
      match List.rev (Stm.read_for_write tx t.back) with
      | [] -> None
      | v :: rest ->
          Stm.write tx t.back [];
          Stm.write tx t.front rest;
          Some v)

(** Blocking pop: waits (via {!Tcm_stm.Stm.check}) until an element is
    available. *)
let pop_wait tx t =
  match pop tx t with
  | Some v -> v
  | None -> Stm.retry_wait tx

let is_empty tx t = Stm.read tx t.front = [] && Stm.read tx t.back = []

let length tx t = List.length (Stm.read tx t.front) + List.length (Stm.read tx t.back)

let to_list tx t = Stm.read tx t.front @ List.rev (Stm.read tx t.back)
