(** Transactional array: one [Tvar] per slot, so transactions touching
    disjoint indices never conflict.  The building block for array-based
    workloads (banking, matrices, histogram counters). *)

open Tcm_stm

type 'a t = 'a Tvar.t array

let make n v : 'a t =
  if n < 0 then invalid_arg "Tarray.make: negative length";
  Array.init n (fun _ -> Tvar.make v)

let init n f : 'a t =
  if n < 0 then invalid_arg "Tarray.init: negative length";
  Array.init n (fun i -> Tvar.make (f i))

let length (t : 'a t) = Array.length t

let get tx (t : 'a t) i = Stm.read tx t.(i)

let set tx (t : 'a t) i v = Stm.write tx t.(i) v

let modify tx (t : 'a t) i f = Stm.modify tx t.(i) f

(** Atomic two-slot exchange — the canonical disjoint-access pattern. *)
let swap tx (t : 'a t) i j =
  if i <> j then begin
    let vi = Stm.read_for_write tx t.(i) in
    let vj = Stm.read_for_write tx t.(j) in
    Stm.write tx t.(i) vj;
    Stm.write tx t.(j) vi
  end

(** Consistent snapshot of the whole array (reads every slot inside the
    transaction). *)
let snapshot tx (t : 'a t) = Array.map (fun v -> Stm.read tx v) t

let fold tx f acc (t : 'a t) =
  Array.fold_left (fun acc v -> f acc (Stm.read tx v)) acc t

(** Committed contents without a transaction (test/debug aid): per-slot
    linearizable, not a consistent cross-slot snapshot. *)
let peek (t : 'a t) = Array.map Tvar.peek t
