(** Sorted singly-linked transactional list (the paper's "List
    application", Figure 1).

    Every [next] pointer is a [Tvar], so a traversal reads a chain of
    transactional objects and an update rewrites a single pointer —
    the classic DSTM IntSet benchmark, maximising read-write conflicts
    between long overlapping traversals under 100 % updates. *)

open Tcm_stm

let name = "list"

type node = Nil | Node of { key : int; next : node Tvar.t }

type t = { head : node Tvar.t }

let create () = { head = Tvar.make Nil }

(* Stops at the first position whose node key is >= k; returns the
   tvar holding that position and its current content. *)
let rec find tx (slot : node Tvar.t) k =
  match Stm.read tx slot with
  | Nil -> (slot, Nil)
  | Node { key; next } as n -> if key >= k then (slot, n) else find tx next k

let member tx t k =
  match find tx t.head k with
  | _, Node { key; _ } -> key = k
  | _, Nil -> false

let insert tx t k =
  let slot, n = find tx t.head k in
  match n with
  | Node { key; _ } when key = k -> false
  | _ ->
      Stm.write tx slot (Node { key = k; next = Tvar.make n });
      true

let remove tx t k =
  let slot, n = find tx t.head k in
  match n with
  | Node { key; next } when key = k ->
      Stm.write tx slot (Stm.read tx next);
      true
  | _ -> false

let to_list tx t =
  let rec go slot acc =
    match Stm.read tx slot with
    | Nil -> List.rev acc
    | Node { key; next } -> go next (key :: acc)
  in
  go t.head []
