(** Transactional counter: the smallest useful transactional object,
    used by examples and as a maximally contended workload. *)

open Tcm_stm

type t = int Tvar.t

let create ?(init = 0) () : t = Tvar.make init
let get tx (t : t) = Stm.read tx t
let set tx (t : t) v = Stm.write tx t v

(** Read-modify-write through the write path to avoid upgrade
    conflicts. *)
let add tx (t : t) n = Stm.modify tx t (fun v -> v + n)

let incr tx t = add tx t 1
let peek (t : t) = Tvar.peek t
