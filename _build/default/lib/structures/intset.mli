(** Common interface of the transactional integer-set structures used
    by the paper's benchmarks. *)

open Tcm_stm

module type S = sig
  val name : string

  type t

  val create : unit -> t

  val insert : Stm.tx -> t -> int -> bool
  (** [true] if the key was absent and is now present. *)

  val remove : Stm.tx -> t -> int -> bool
  (** [true] if the key was present and is now absent. *)

  val member : Stm.tx -> t -> int -> bool

  val to_list : Stm.tx -> t -> int list
  (** Sorted contents. *)
end

(** Closure-style handle used by the workload harness; [r] supplies
    per-operation randomness (the red-black forest picks one-vs-all
    trees from it, others ignore it). *)
type ops = {
  name : string;
  insert : Stm.tx -> key:int -> r:int -> bool;
  remove : Stm.tx -> key:int -> r:int -> bool;
  member : Stm.tx -> key:int -> r:int -> bool;
  snapshot : Stm.tx -> int list;
}

val ops_of : (module S with type t = 'a) -> 'a -> ops
