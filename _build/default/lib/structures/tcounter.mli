(** Transactional counter: the smallest useful transactional object. *)

type t = int Tcm_stm.Tvar.t

val create : ?init:int -> unit -> t
val get : Tcm_stm.Stm.tx -> t -> int
val set : Tcm_stm.Stm.tx -> t -> int -> unit
val add : Tcm_stm.Stm.tx -> t -> int -> unit
val incr : Tcm_stm.Stm.tx -> t -> unit
val peek : t -> int
