(** Transactional red-black forest (the paper's Figure 4 application).

    "A data structure made of fifty red-black trees, in which
    insertions and removals of elements proceed in either one or all
    trees on a random basis; the distribution of the lengths of the
    transactions [...] thus exhibits a high variance."

    An operation receives a random value [r]; with probability
    [all_pct]% it touches every tree (a long transaction), otherwise a
    single tree chosen from [r] (a short one). *)

let name = "rbforest"

let default_trees = 50
let default_all_pct = 2

type t = { trees : Trbtree.t array; all_pct : int }

let create ?(n_trees = default_trees) ?(all_pct = default_all_pct) () =
  { trees = Array.init n_trees (fun _ -> Trbtree.create ()); all_pct }

let n_trees t = Array.length t.trees

let pick t r =
  let r = abs r in
  if r mod 100 < t.all_pct then `All else `One ((r / 100) mod Array.length t.trees)

let insert tx t ~r k =
  match pick t r with
  | `All ->
      Array.fold_left (fun acc tree -> Trbtree.insert tx tree k || acc) false t.trees
  | `One i -> Trbtree.insert tx t.trees.(i) k

let remove tx t ~r k =
  match pick t r with
  | `All ->
      Array.fold_left (fun acc tree -> Trbtree.remove tx tree k || acc) false t.trees
  | `One i -> Trbtree.remove tx t.trees.(i) k

let member tx t ~r k =
  match pick t r with
  | `All -> Array.exists (fun tree -> Trbtree.member tx tree k) t.trees
  | `One i -> Trbtree.member tx t.trees.(i) k

(** Union of all trees' contents, sorted and deduplicated. *)
let to_list tx t =
  Array.fold_left (fun acc tree -> List.rev_append (Trbtree.to_list tx tree) acc) [] t.trees
  |> List.sort_uniq compare

let ops t : Intset.ops =
  {
    Intset.name;
    insert = (fun tx ~key ~r -> insert tx t ~r key);
    remove = (fun tx ~key ~r -> remove tx t ~r key);
    member = (fun tx ~key ~r -> member tx t ~r key);
    snapshot = (fun tx -> to_list tx t);
  }
