(** Transactional red-black forest (Figure 4's application): fifty
    red-black trees; operations touch one tree or all of them at
    random, yielding the paper's high-variance transaction lengths. *)

type t

val name : string
val default_trees : int
val default_all_pct : int

val create : ?n_trees:int -> ?all_pct:int -> unit -> t
val n_trees : t -> int

val pick : t -> int -> [ `All | `One of int ]
(** Tree-selection rule applied to the per-operation random value. *)

val insert : Tcm_stm.Stm.tx -> t -> r:int -> int -> bool
val remove : Tcm_stm.Stm.tx -> t -> r:int -> int -> bool
val member : Tcm_stm.Stm.tx -> t -> r:int -> int -> bool

val to_list : Tcm_stm.Stm.tx -> t -> int list
(** Sorted, deduplicated union of all trees. *)

val ops : t -> Intset.ops
