(** Transactional red-black tree (Figure 3's application): imperative
    CLRS-style tree in which every node field — colour, children,
    parent — is a [Tvar], so transactions conflict at node
    granularity. *)

include Intset.S

val check_invariants : Tcm_stm.Stm.tx -> t -> (int, string) result
(** BST order, no red-red edges, equal black heights, consistent
    parent pointers, black root.  Returns the black height. *)
