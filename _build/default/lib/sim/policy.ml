(** Simulated contention-manager policies.

    These mirror the real managers in [Tcm_core] but operate on the
    simulator's deterministic tick clock, so theory experiments are
    exactly reproducible.  A policy sees only the public view of the
    two parties — timestamp, waiting flag, accumulated priority, abort
    count — matching the decentralised model of Section 2. *)

type view = {
  id : int;
  timestamp : int;  (** Smaller = older = higher priority. *)
  waiting : bool;
  priority : int ref;
      (** Karma-style accumulated priority.  A [ref] shared with the
          engine so Eruption can push pressure onto the blocker. *)
  aborts : int;
  opens : int;
}

type decision =
  | Abort_other
  | Abort_self
  | Block of { timeout : int option }  (** Ticks. *)
  | Backoff of int  (** Ticks. *)

(* Deterministic stream for randomized policies. *)
module Prng = Tcm_stm.Splitmix

type t = {
  name : string;
  resolve : me:view -> other:view -> attempts:int -> now:int -> decision;
}

let older_than a b = a.timestamp < b.timestamp

(** The greedy manager, Section 3: abort younger or waiting enemies,
    wait (unboundedly) behind older non-waiting ones. *)
let greedy () =
  {
    name = "greedy";
    resolve =
      (fun ~me ~other ~attempts:_ ~now:_ ->
        if older_than me other || other.waiting then Abort_other
        else Block { timeout = None });
  }

(** Fault-tolerant greedy, Section 6: wait behind older enemies only up
    to a per-enemy timeout that doubles after each expiry. *)
let greedy_ft ?(base = 4) () =
  let grants = Hashtbl.create 16 in
  {
    name = "greedy-ft";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if older_than me other || other.waiting then Abort_other
        else
          let granted = Option.value (Hashtbl.find_opt grants other.timestamp) ~default:base in
          if attempts > 0 then begin
            Hashtbl.replace grants other.timestamp (granted * 2);
            Abort_other
          end
          else Block { timeout = Some granted });
  }

let aggressive () =
  { name = "aggressive"; resolve = (fun ~me:_ ~other:_ ~attempts:_ ~now:_ -> Abort_other) }

let timid () =
  { name = "timid"; resolve = (fun ~me:_ ~other:_ ~attempts:_ ~now:_ -> Abort_self) }

let polite ?(max_tries = 6) ?(base = 1) ~seed () =
  let prng = Prng.create seed in
  {
    name = "backoff";
    resolve =
      (fun ~me:_ ~other:_ ~attempts ~now:_ ->
        if attempts >= max_tries then Abort_other
        else
          let d = base * (1 lsl min attempts 10) in
          Backoff (d + Prng.int prng (max 1 d)));
  }

let randomized ~seed () =
  let prng = Prng.create seed in
  {
    name = "randomized";
    resolve =
      (fun ~me:_ ~other:_ ~attempts:_ ~now:_ ->
        if Prng.bool prng then Abort_other else Backoff (1 + Prng.int prng 4));
  }

let karma ?(backoff = 2) () =
  {
    name = "karma";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if !(me.priority) + attempts > !(other.priority) then Abort_other else Backoff backoff);
  }

let eruption ?(backoff = 2) () =
  {
    name = "eruption";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if !(me.priority) + attempts > !(other.priority) then Abort_other
        else begin
          if attempts = 0 then other.priority := !(other.priority) + max 1 !(me.priority);
          Backoff backoff
        end);
  }

let kindergarten ?(rounds = 2) () =
  let deferred = Hashtbl.create 16 in
  {
    name = "kindergarten";
    resolve =
      (fun ~me:_ ~other ~attempts ~now:_ ->
        if Hashtbl.mem deferred other.timestamp then Abort_other
        else if attempts >= rounds then begin
          Hashtbl.replace deferred other.timestamp ();
          Abort_self
        end
        else Backoff 1);
  }

let timestamp ?(quantum = 2) ?(max_quanta = 4) () =
  {
    name = "timestamp";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        if older_than me other then Abort_other
        else if attempts >= max_quanta then Abort_other
        else Block { timeout = Some quantum });
  }

let killblocked ?(max_tries = 3) () =
  {
    name = "killblocked";
    resolve =
      (fun ~me:_ ~other ~attempts ~now:_ ->
        if other.waiting then Abort_other
        else if attempts >= max_tries then Abort_other
        else Backoff 1);
  }

let polka ?(base = 1) ~seed () =
  let prng = Prng.create seed in
  {
    name = "polka";
    resolve =
      (fun ~me ~other ~attempts ~now:_ ->
        let gap = !(other.priority) - !(me.priority) in
        if attempts >= max 1 gap then Abort_other
        else
          let d = base * (1 lsl min attempts 10) in
          Backoff (d + Prng.int prng (max 1 d)));
  }

(** Randomized-priority greedy — a stab at the paper's closing open
    problem ("can one use randomization to implement a contention
    manager that is proved to behave well with high probability?").
    Greedy's rules, but priorities are random ranks drawn once per
    logical transaction instead of arrival timestamps: each transaction
    hashes its (stable) timestamp through a keyed mix, so the rank is
    retained across aborts yet independent of arrival order.  Every
    conflict still has a strict winner, so the pending-commit property
    and Theorem 9 carry over; what randomization buys is immunity to
    adversaries that exploit arrival order (the Section 4 chain), at
    the price of only probabilistic — not deterministic — bounds on any
    one transaction's commit time. *)
let randomized_greedy ~seed () =
  let rank ts =
    (* splitmix-style keyed hash of the stable timestamp. *)
    let z = Int64.add (Int64.of_int ts) (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L) in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)
  in
  {
    name = "rand-greedy";
    resolve =
      (fun ~me ~other ~attempts:_ ~now:_ ->
        (* Ties broken by the underlying timestamp, so a strict total
           order survives hashing collisions. *)
        let rm = (rank me.timestamp, me.timestamp)
        and ro = (rank other.timestamp, other.timestamp) in
        if rm < ro || other.waiting then Abort_other else Block { timeout = None });
  }

(** Unbounded FIFO waiting: the manager the paper calls prone to
    dependency cycles.  [`Unbounded`] reproduces the deadlock in the
    simulator (the engine's horizon turns it into a detected livelock);
    [`Bounded] matches the defensive real implementation. *)
let queue_on_block ?(mode = `Bounded) () =
  {
    name = "queueonblock";
    resolve =
      (fun ~me:_ ~other:_ ~attempts ~now:_ ->
        match mode with
        | `Unbounded -> Block { timeout = None }
        | `Bounded -> if attempts >= 3 then Abort_other else Block { timeout = Some 8 });
  }

(** Everything comparable, for sweeps.  [seed] feeds the randomized
    policies so whole sweeps stay deterministic. *)
let all ~seed () =
  [
    greedy ();
    greedy_ft ();
    randomized_greedy ~seed ();
    aggressive ();
    polite ~seed ();
    randomized ~seed ();
    karma ();
    eruption ();
    kindergarten ();
    timestamp ();
    killblocked ();
    polka ~seed ();
    queue_on_block ();
    timid ();
  ]

(** The paper's Figure 1–4 line-up. *)
let paper_figures ~seed () =
  [ greedy (); karma (); eruption (); aggressive (); polite ~seed () ]
