(** Executable checkers for the paper's properties. *)

val all_committed : Engine.result -> bool
(** Every thread finished all its transactions (Theorem 1 under
    greedy, given finite delays). *)

val pending_commit : Engine.result -> bool
(** Section 4.3: at any tick before the makespan, some running attempt
    runs uninterrupted until its commit.
    @raise Invalid_argument unless run with [~record_grid:true]. *)

type bound_report = {
  s : int;
  measured : int;
  optimal : int;
  factor : int;  (** s(s+1) + 2. *)
  ok : bool;
}

val theorem9_check : inst:Spec.instance -> Engine.result -> bound_report
(** Simulated makespan vs the best off-line list schedule. *)

val greedy_abort_budget : n:int -> Engine.result -> bool
(** Aggregate Theorem 1 check: one-shot aborts <= n(n-1)/2. *)
