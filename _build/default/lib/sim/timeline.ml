(** ASCII rendering of a recorded execution grid: one row per thread,
    one column per tick.

    Legend: ['R'] running, ['w'] waiting, ['b'] backing off / restart
    gap, ['.'] idle between transactions, ['C'] the tick whose end the
    thread committed at, ['X'] the tick in which the attempt was
    aborted (the attempt number changed afterwards), [' '] after the
    thread finished. *)

let cell_char (grid : Engine.cell array array) ~tick ~thread =
  let c = grid.(tick).(thread) in
  let next = if tick + 1 < Array.length grid then Some grid.(tick + 1).(thread) else None in
  match c.Engine.kind with
  | Engine.Done -> ' '
  | Engine.Idle -> '.'
  | Engine.Wait -> 'w'
  | Engine.Back -> 'b'
  | Engine.Run -> (
      match next with
      | Some n when n.Engine.kind = Engine.Idle || n.Engine.kind = Engine.Done -> 'C'
      | Some n when n.Engine.attempt <> c.Engine.attempt -> 'X'
      | None -> 'C'
      | Some _ -> 'R')

(** Render the grid of a result produced with [~record_grid:true]. *)
let render (r : Engine.result) : string =
  let grid = r.Engine.grid in
  if Array.length grid = 0 then "(no grid recorded; run with ~record_grid:true)"
  else begin
    let ticks = Array.length grid in
    let threads = Array.length grid.(0) in
    let buf = Buffer.create ((threads + 2) * (ticks + 16)) in
    (* Tick ruler every 10 columns. *)
    Buffer.add_string buf "        ";
    for t = 0 to ticks - 1 do
      Buffer.add_char buf (if t mod 10 = 0 then '|' else ' ')
    done;
    Buffer.add_char buf '\n';
    for i = 0 to threads - 1 do
      Buffer.add_string buf (Printf.sprintf "T%-3d    " i);
      for t = 0 to ticks - 1 do
        Buffer.add_char buf (cell_char grid ~tick:t ~thread:i)
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf
      "        R running  w waiting  b backoff/restart  . idle  C commit  X aborted\n";
    Buffer.contents buf
  end

let print fmt r = Format.pp_print_string fmt (render r)
