(** Transaction specifications for the discrete-event simulator.
    Time is integer ticks; an access fires once the transaction has
    completed [at] ticks of work; acquired objects are held to commit
    or abort. *)

type kind = Read | Write

type access = { at : int; obj : int; kind : kind }

type txn = {
  dur : int;
  accesses : access list;  (** Sorted by [at]. *)
  halts_at : int option;
      (** Fault injection (Section 6): stop progressing after this many
          ticks, staying active and holding objects. *)
}

val txn : ?halts_at:int -> dur:int -> access list -> txn
(** @raise Invalid_argument on non-positive durations or out-of-range
    access times / halt points. *)

val write : at:int -> obj:int -> access
val read : at:int -> obj:int -> access

val n_objects_of_txns : txn list -> int

type instance = { txns : txn array; n_objects : int }
(** One-shot instance: one transaction per thread. *)

val instance : txn list -> instance

val to_task_system : instance -> Tcm_sched.Task_system.t
(** The corresponding Garey–Graham task system (Section 4.2): same
    durations, updates use the whole object, reads use [1/n]. *)
