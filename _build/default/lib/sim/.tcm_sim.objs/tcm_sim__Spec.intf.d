lib/sim/spec.mli: Tcm_sched
