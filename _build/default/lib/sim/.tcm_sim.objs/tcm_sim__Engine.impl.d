lib/sim/engine.ml: Array List Option Policy Spec
