lib/sim/engine.mli: Policy Spec
