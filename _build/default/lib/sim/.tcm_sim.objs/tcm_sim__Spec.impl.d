lib/sim/spec.ml: Array Float List Tcm_sched
