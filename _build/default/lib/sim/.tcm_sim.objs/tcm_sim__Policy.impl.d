lib/sim/policy.ml: Hashtbl Int64 Option Tcm_stm
