lib/sim/scenarios.mli: Policy Spec
