lib/sim/timeline.mli: Engine Format
