lib/sim/timeline.ml: Array Buffer Engine Format Printf
