lib/sim/props.mli: Engine Spec
