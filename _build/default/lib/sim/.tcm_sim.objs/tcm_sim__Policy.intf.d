lib/sim/policy.mli: Tcm_stm
