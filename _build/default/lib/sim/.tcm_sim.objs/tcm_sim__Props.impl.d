lib/sim/props.ml: Array Engine Spec Tcm_sched
