lib/sim/scenarios.ml: Array Hashtbl List Policy Spec
