(** ASCII rendering of a recorded execution grid (one row per thread,
    one column per tick); requires the result to have been produced
    with [~record_grid:true]. *)

val cell_char : Engine.cell array array -> tick:int -> thread:int -> char

val render : Engine.result -> string

val print : Format.formatter -> Engine.result -> unit
