(** Property checkers over simulation results.

    These turn the paper's definitions into executable checks:
    the pending-commit property (Section 4.3), bounded commit delay
    (Theorem 1), and the Theorem 9 competitive bound against an optimal
    off-line list schedule. *)

(** Did every thread finish all its transactions? (Theorem 1 requires
    it under greedy whenever delays are finite.) *)
let all_committed (r : Engine.result) = r.Engine.completed

(** The pending-commit property: at any tick [t] before the makespan,
    some attempt running at [t] runs uninterrupted until its commit.
    Requires the result to carry a recorded grid. *)
let pending_commit (r : Engine.result) : bool =
  match r.Engine.makespan with
  | None -> false
  | Some makespan ->
      let grid = r.Engine.grid in
      if Array.length grid = 0 then invalid_arg "Props.pending_commit: run with ~record_grid:true";
      let n = Array.length grid.(0) in
      (* commit_tick.(thread) for each attempt that committed: derive
         from the grid — an attempt commits at tick t+1 if the thread is
         Run at t and at t+1 is a different attempt / Idle / Done. *)
      let ticks = Array.length grid in
      let runs_to_commit t i =
        (* Does the attempt running at tick t for thread i keep running
           continuously until it commits? *)
        let a = grid.(t).(i).Engine.attempt in
        let rec go u =
          if u >= ticks then false
          else
            let c = grid.(u).(i) in
            if c.Engine.kind <> Engine.Run || c.Engine.attempt <> a then false
            else if
              (* commits at end of tick u if next tick it is a new
                 txn/attempt in Idle/Run/Done with different attempt, or
                 the grid ends *)
              u + 1 >= ticks
              ||
              let nxt = grid.(u + 1).(i) in
              (nxt.Engine.kind = Engine.Idle || nxt.Engine.kind = Engine.Done
              || nxt.Engine.attempt <> a)
              && nxt.Engine.kind <> Engine.Back && nxt.Engine.kind <> Engine.Wait
            then true
            else go (u + 1)
        in
        go t
      in
      let ok = ref true in
      for t = 0 to min (makespan - 1) (ticks - 1) do
        let found = ref false in
        for i = 0 to n - 1 do
          if (not !found) && grid.(t).(i).Engine.kind = Engine.Run && runs_to_commit t i then
            found := true
        done;
        if not !found then ok := false
      done;
      !ok

(** Theorem 9 check on a one-shot instance: measured makespan vs the
    best off-line list schedule, against the [s(s+1)+2] factor. *)
type bound_report = {
  s : int;
  measured : int;  (** Simulated makespan, in ticks. *)
  optimal : int;  (** Best list-schedule makespan, in ticks. *)
  factor : int;  (** s(s+1) + 2. *)
  ok : bool;
}

let theorem9_check ~(inst : Spec.instance) (r : Engine.result) : bound_report =
  match r.Engine.makespan with
  | None ->
      let s = inst.Spec.n_objects in
      { s; measured = max_int; optimal = 0; factor = Tcm_sched.Bounds.pending_commit_factor ~s; ok = false }
  | Some measured ->
      let s = inst.Spec.n_objects in
      let ts = Spec.to_task_system inst in
      let optimal = Tcm_sched.Optimal.optimal_makespan ts in
      let factor = Tcm_sched.Bounds.pending_commit_factor ~s in
      { s; measured; optimal; factor; ok = measured <= factor * optimal }

(** Bounded-commit check (Theorem 1 flavour): under greedy, a
    transaction with [k] older concurrent transactions restarts at most
    [k] times.  We check the aggregate version: total aborts in a
    one-shot n-transaction run are at most n(n-1)/2. *)
let greedy_abort_budget ~n (r : Engine.result) : bool =
  r.Engine.aborts <= n * (n - 1) / 2
