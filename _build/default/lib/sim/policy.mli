(** Simulated contention-manager policies, mirroring [Tcm_core] on the
    deterministic tick clock.  A policy sees only the public view of
    the two parties (Section 2's decentralised model). *)

type view = {
  id : int;
  timestamp : int;  (** Smaller = older = higher priority. *)
  waiting : bool;
  priority : int ref;  (** Shared with the engine; Eruption mutates it. *)
  aborts : int;
  opens : int;
}

type decision =
  | Abort_other
  | Abort_self
  | Block of { timeout : int option }  (** Ticks. *)
  | Backoff of int  (** Ticks. *)

module Prng = Tcm_stm.Splitmix

type t = {
  name : string;
  resolve : me:view -> other:view -> attempts:int -> now:int -> decision;
}

val older_than : view -> view -> bool

val greedy : unit -> t
val greedy_ft : ?base:int -> unit -> t
val aggressive : unit -> t
val timid : unit -> t
val polite : ?max_tries:int -> ?base:int -> seed:int -> unit -> t
val randomized : seed:int -> unit -> t
val karma : ?backoff:int -> unit -> t
val eruption : ?backoff:int -> unit -> t
val kindergarten : ?rounds:int -> unit -> t
val timestamp : ?quantum:int -> ?max_quanta:int -> unit -> t
val killblocked : ?max_tries:int -> unit -> t
val polka : ?base:int -> seed:int -> unit -> t

val randomized_greedy : seed:int -> unit -> t
(** Greedy with random (hash-of-timestamp) priorities retained across
    aborts — an experiment on the paper's closing open problem.  Keeps
    the pending-commit property (strict total order on ranks) but is
    immune to adversaries that exploit arrival order. *)

val queue_on_block : ?mode:[ `Bounded | `Unbounded ] -> unit -> t
(** [`Unbounded] reproduces the dependency-cycle livelock the paper
    warns about; [`Bounded] matches the defensive real manager. *)

val all : seed:int -> unit -> t list

val paper_figures : seed:int -> unit -> t list
(** The Figure 1–4 line-up: greedy, karma, eruption, aggressive,
    backoff. *)
