(** Transaction specifications for the discrete-event simulator.

    Time is measured in integer ticks.  A transaction of duration [d]
    performs [d] ticks of work; an access [{ at; obj; kind }] is
    attempted when the transaction has completed [at] ticks ([0 <= at <
    d]), mirroring the paper's model where a transaction "requires the
    use of [Xi(Tj)] units of object [Xi] after some point in its
    execution".  Acquired objects are held until commit or abort. *)

type kind = Read | Write

type access = { at : int; obj : int; kind : kind }

type txn = {
  dur : int;  (** Ticks of work; > 0. *)
  accesses : access list;  (** Sorted by [at]. *)
  halts_at : int option;
      (** Fault injection (Section 6): if [Some p], the transaction
          stops making progress after completing [p] ticks — it stays
          active and keeps its objects, like a thread that halted
          undetectably.  Only timeout-based managers get past it. *)
}

let txn ?halts_at ~dur accesses =
  if dur <= 0 then invalid_arg "Spec.txn: dur must be positive";
  (match halts_at with
  | Some p when p < 0 || p >= dur -> invalid_arg "Spec.txn: halts_at out of range"
  | _ -> ());
  List.iter
    (fun a ->
      if a.at < 0 || a.at >= dur then invalid_arg "Spec.txn: access time out of range";
      if a.obj < 0 then invalid_arg "Spec.txn: negative object")
    accesses;
  { dur; accesses = List.stable_sort (fun a b -> compare a.at b.at) accesses; halts_at }

let write ~at ~obj = { at; obj; kind = Write }
let read ~at ~obj = { at; obj; kind = Read }

let n_objects_of_txns txns =
  List.fold_left
    (fun acc t -> List.fold_left (fun acc a -> max acc (a.obj + 1)) acc t.accesses)
    0 txns

(** One-shot instance: [threads.(i)] runs exactly one transaction;
    thread order is priority order (index 0 = oldest timestamp). *)
type instance = { txns : txn array; n_objects : int }

let instance txns =
  let txns = Array.of_list txns in
  { txns; n_objects = n_objects_of_txns (Array.to_list txns) }

(** The corresponding Garey–Graham task system (Section 4.2): the task
    for a transaction has the same duration, an update uses the whole
    object for that duration, a read uses [1/n]. *)
let to_task_system (inst : instance) : Tcm_sched.Task_system.t =
  let n = Array.length inst.txns in
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i t ->
           let needs =
             List.map
               (fun a ->
                 let amount =
                   match a.kind with
                   | Write -> Tcm_sched.Task_system.update_amount
                   | Read -> Tcm_sched.Task_system.read_amount ~n
                 in
                 (a.obj, amount))
               t.accesses
           in
           (* Merge duplicate objects, keeping the max amount. *)
           let needs =
             List.sort_uniq compare needs
             |> List.fold_left
                  (fun acc (r, a) ->
                    match acc with
                    | (r', a') :: rest when r' = r -> (r, Float.max a a') :: rest
                    | _ -> (r, a) :: acc)
                  []
             |> List.rev
           in
           Tcm_sched.Task_system.task ~id:i ~dur:t.dur needs)
         inst.txns)
  in
  Tcm_sched.Task_system.make tasks
