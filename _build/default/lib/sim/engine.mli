(** Deterministic two-phase tick engine.

    Each tick: {b Phase A} (thread-id order) starts pending
    transactions, re-checks waits/backoffs and performs the due object
    accesses, resolving conflicts through the policy — aborts take
    effect immediately, victims restart next tick with their timestamp
    retained.  {b Phase B} advances every still-running thread one tick
    of work; completed transactions commit at the end of the tick.
    Accesses thus strictly precede same-tick commits, reproducing the
    paper's "at time 1-eps, T1 accesses X1, aborting T0" exactly. *)

type cell_kind = Run | Wait | Back | Idle | Done

type cell = { attempt : int; kind : cell_kind }

type result = {
  ticks : int;
  completed : bool;  (** All streams exhausted within the horizon. *)
  makespan : int option;  (** Tick of the last commit, when completed. *)
  commits : int;
  aborts : int;
  commit_log : (int * int * int) list;
      (** [(thread, txn_index, tick)] in commit order. *)
  per_thread_commits : int array;
  per_thread_aborts : int array;
  max_aborts_one_txn : int;
      (** Worst restarts of a single transaction (starvation metric). *)
  grid : cell array array;  (** [grid.(tick).(thread)] when recorded. *)
  policy_name : string;
}

val default_horizon : int

val run :
  ?horizon:int ->
  ?record_grid:bool ->
  ?ranks:int array ->
  ?ts_on_restart:[ `Keep | `Fresh ] ->
  policy:Policy.t ->
  n_objects:int ->
  (int -> Spec.txn option) array ->
  result
(** [run ~policy ~n_objects streams]: thread [i] executes
    [streams.(i) 0], [streams.(i) 1], ... until [None].  [ranks]
    overrides the first transactions' timestamps; [ts_on_restart]
    is the Theorem 1 ablation hook ([`Fresh] breaks retention). *)

val run_instance :
  ?horizon:int ->
  ?record_grid:bool ->
  ?ranks:int array ->
  ?ts_on_restart:[ `Keep | `Fresh ] ->
  policy:Policy.t ->
  Spec.instance ->
  result
(** One transaction per thread, all arriving at tick 0; without
    [ranks], thread order is priority order. *)
