(** Deterministic splitmix64 pseudo-random stream.

    Used wherever randomness is needed — manager jitter, simulator
    policies, workload generators — so every experiment reproduces from
    its seed and nothing touches the global [Random] state shared
    across domains. *)

type t

val create : int -> t
(** Stream determined entirely by the seed. *)

val create_self_seeded : unit -> t
(** Fresh stream with a process-unique seed, for per-instance jitter
    where cross-run determinism is not required. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound <= 1] yields 0. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)
