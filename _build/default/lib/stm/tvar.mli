(** Transactional variables — the STM's shared objects, following the
    DSTM/SXM locator protocol.

    The variable atomically points at a {e locator}: the owning
    attempt, the last committed value [old_v], and the tentative value
    [new_v].  The logical value is [!new_v] if the owner committed,
    [old_v] otherwise.  Writers acquire by CAS-installing a fresh
    locator; [new_v] is mutated exclusively by the active owner and is
    published through the owner's atomic status transition
    (message-passing pattern, safe under the OCaml memory model).

    Readers are visible: they register in [readers] so writers resolve
    read-write conflicts through the contention manager, matching the
    paper's conflict definition. *)

type 'a locator = { owner : Txn.t; old_v : 'a; new_v : 'a ref }

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  readers : Txn.t list Atomic.t;
}

val make : 'a -> 'a t

val id : 'a t -> int

val value_of_locator : 'a locator -> 'a
(** Value as seen by an outside observer (owner status read after the
    locator itself). *)

val peek : 'a t -> 'a
(** Latest committed value, for non-transactional inspection (tests,
    debugging); linearizes at the atomic load of the locator. *)

val register_reader : 'a t -> Txn.t -> unit
(** Add a visible reader; idempotent, purges dead entries. *)

val find_active_reader : 'a t -> Txn.t -> Txn.t option
(** First active reader other than the given transaction. *)

val purge_readers : 'a t -> unit
(** Opportunistically drop dead reader entries. *)
