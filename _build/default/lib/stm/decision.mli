(** Contention-manager decisions.

    When transaction [A] is about to perform an access that conflicts
    with transaction [B], [A]'s manager returns one of these verdicts;
    the runtime executes it and, unless it was terminal for [A],
    consults the manager again with an incremented attempt counter
    until the conflict is gone. *)

type t =
  | Abort_other  (** Abort the enemy attempt (CAS on its status). *)
  | Abort_self  (** Abort and restart the calling transaction. *)
  | Block of { timeout_usec : int option }
      (** Greedy-style wait: set the public [waiting] flag and block
          until the enemy commits, aborts or starts waiting itself — or
          the optional timeout expires. *)
  | Backoff of { usec : int }  (** Sleep, then ask again. *)

val pp : Format.formatter -> t -> unit
