(** The contention-manager interface.

    A contention manager is a per-thread module instance consulted by
    the STM runtime whenever a conflict is discovered, and notified of
    the interesting transaction-lifecycle events.  Managers communicate
    with the rest of the system only through the public fields of the
    two transaction descriptors involved ([Txn.t]) — they are
    decentralised in exactly the sense of Section 2 of the paper: "one
    transaction decides whether to abort another based only on a
    comparison of the two transactions' states". *)

module type S = sig
  val name : string

  type t
  (** Per-thread manager state. *)

  val create : unit -> t

  val begin_attempt : t -> Txn.t -> unit
  (** Called when an attempt (initial or retry) starts. *)

  val opened : t -> Txn.t -> unit
  (** Called after each successful object open (read or write). *)

  val committed : t -> Txn.t -> unit
  (** Called after the attempt committed. *)

  val aborted : t -> Txn.t -> unit
  (** Called after the attempt aborted (by itself or an enemy). *)

  val resolve : t -> me:Txn.t -> other:Txn.t -> attempts:int -> Decision.t
  (** Conflict: [me] wants an object currently held by the active
      attempt [other].  [attempts] counts consecutive [resolve] calls
      for the same spot (0 on first discovery). *)
end

type factory = (module S)

(** Existential package of a manager module with its state, used by the
    runtime to keep one instance per domain. *)
type packed = Packed : (module S with type t = 'a) * 'a -> packed

let instantiate (module M : S) = Packed ((module M), M.create ())

let name (module M : S) = M.name
