lib/stm/decision.ml: Format
