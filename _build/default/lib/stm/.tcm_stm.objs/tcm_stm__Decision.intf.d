lib/stm/decision.mli: Format
