lib/stm/stm.ml: Cm_intf Decision Runtime Splitmix Status Tvar Txid Txn
