lib/stm/splitmix.ml: Atomic Int64
