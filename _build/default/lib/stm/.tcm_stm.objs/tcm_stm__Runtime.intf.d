lib/stm/runtime.mli: Cm_intf Format Tvar Txn
