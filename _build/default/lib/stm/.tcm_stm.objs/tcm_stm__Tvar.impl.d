lib/stm/tvar.ml: Atomic List Status Txid Txn
